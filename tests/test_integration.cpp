// Integration tests: full pipeline from trained float model through the
// YOLoC framework (BN fold -> int8 -> analog macro inference), and the
// transfer harness end to end at miniature scale.

#include <gtest/gtest.h>

#include "core/yoloc_framework.hpp"
#include "data/classification.hpp"
#include "nn/trainer.hpp"
#include "nn/zoo.hpp"
#include "rebranch/transfer.hpp"

namespace yoloc {
namespace {

ZooConfig mini_zoo() {
  ZooConfig cfg;
  cfg.image_size = 16;
  cfg.base_width = 4;
  cfg.num_classes = 4;
  return cfg;
}

DatasetSpec mini_spec() {
  DatasetSpec spec = mnist_like_spec(16);
  spec.num_classes = 4;
  spec.recipes.resize(4);
  return spec;
}

struct TrainedModel {
  LayerPtr net;
  LabeledDataset train;
  LabeledDataset test;
  double float_acc = 0.0;
};

TrainedModel train_mini_classifier() {
  TrainedModel out;
  const DatasetSpec spec = mini_spec();
  Rng rng(11);
  out.train = generate_classification(spec, 24, rng);
  out.test = generate_classification(spec, 12, rng);
  out.net = build_vgg8_lite(mini_zoo(), plain_conv_unit);
  TrainConfig cfg;
  cfg.epochs = 8;
  cfg.batch_size = 16;
  cfg.sgd.lr = 0.08f;
  (void)train_classifier(*out.net, out.train.images, out.train.labels, cfg);
  out.float_acc =
      evaluate_classifier(*out.net, out.test.images, out.test.labels);
  return out;
}

TEST(Integration, FloatModelLearnsMiniTask) {
  const TrainedModel tm = train_mini_classifier();
  EXPECT_GT(tm.float_acc, 0.7);
}

TEST(Integration, AnalogDeploymentPreservesAccuracy) {
  TrainedModel tm = train_mini_classifier();

  // Mark backbone ROM-resident so both engines are exercised.
  for (Parameter* p : tm.net->parameters()) {
    p->rom_resident = p->name.find("backbone") != std::string::npos;
  }
  Tensor calib = gather_batch(tm.train.images,
                              {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
  FrameworkOptions options;
  YolocFramework framework(std::move(tm.net), calib, options);
  EXPECT_GT(framework.quantized_layer_count(), 0);

  const double analog_acc = framework.evaluate_accuracy(tm.test);
  // Paper: almost no accuracy loss from the CiM datapath.
  EXPECT_GT(analog_acc, tm.float_acc - 0.1);
}

TEST(Integration, FrameworkMetersEnergyOnBothMacros) {
  TrainedModel tm = train_mini_classifier();
  for (Parameter* p : tm.net->parameters()) {
    p->rom_resident = p->name.find("backbone") != std::string::npos;
  }
  Tensor calib = gather_batch(tm.train.images, {0, 1, 2, 3});
  YolocFramework framework(std::move(tm.net), calib, FrameworkOptions{});
  EXPECT_DOUBLE_EQ(framework.total_energy_pj(), 0.0);  // reset after calib

  Tensor batch = gather_batch(tm.test.images, {0, 1});
  (void)framework.infer(batch);
  EXPECT_GT(framework.rom_stats().energy_pj(), 0.0);
  EXPECT_GT(framework.sram_stats().energy_pj(), 0.0);
  EXPECT_GT(framework.rom_stats().macs, framework.sram_stats().macs);

  framework.reset_stats();
  EXPECT_DOUBLE_EQ(framework.total_energy_pj(), 0.0);
}

TEST(Integration, EnergyScalesWithBatchSize) {
  TrainedModel tm = train_mini_classifier();
  Tensor calib = gather_batch(tm.train.images, {0, 1, 2, 3});
  YolocFramework framework(std::move(tm.net), calib, FrameworkOptions{});

  (void)framework.infer(gather_batch(tm.test.images, {0}));
  const double e1 = framework.total_energy_pj();
  framework.reset_stats();
  (void)framework.infer(gather_batch(tm.test.images, {0, 1, 2}));
  const double e3 = framework.total_energy_pj();
  EXPECT_NEAR(e3 / e1, 3.0, 0.4);
}

TEST(Integration, TransferHarnessSmoke) {
  TransferSetup setup;
  setup.backbone = BackboneKind::kVgg8;
  setup.image_size = 16;
  setup.base_width = 4;
  setup.pretrain_samples_per_class = 10;
  setup.target_train_samples_per_class = 8;
  setup.target_test_samples_per_class = 6;
  setup.pretrain_cfg.epochs = 4;
  setup.finetune_cfg.epochs = 3;
  TransferHarness harness(setup);

  const DatasetSpec target = mnist_like_spec(16);
  const TransferOutcome all_sram =
      harness.run(TransferOption::kAllSram, target);
  const TransferOutcome rebranch =
      harness.run(TransferOption::kReBranch, target);

  EXPECT_GT(all_sram.accuracy, 0.0);
  EXPECT_GT(rebranch.accuracy, 0.0);
  // ReBranch keeps the bulk of bits in ROM; All-SRAM keeps none there.
  EXPECT_GT(rebranch.split.rom_bits, rebranch.split.sram_bits);
  EXPECT_DOUBLE_EQ(all_sram.split.rom_bits, 0.0);
  EXPECT_LT(rebranch.memory_area_mm2, all_sram.memory_area_mm2);
}

TEST(Integration, AnalogNoiseSweepDegradesGracefully) {
  TrainedModel tm = train_mini_classifier();
  const double float_acc = tm.float_acc;

  // Extremely noisy cells should hurt more than nominal ones.
  FrameworkOptions noisy;
  noisy.rom_macro.bitline.sigma_cell = 0.5;
  noisy.sram_macro.bitline.sigma_cell = 0.5;
  noisy.rom_macro.adc.noise_sigma_v = 0.05;
  noisy.sram_macro.adc.noise_sigma_v = 0.05;
  Tensor calib = gather_batch(tm.train.images, {0, 1, 2, 3});
  YolocFramework framework(std::move(tm.net), calib, noisy);
  const double noisy_acc = framework.evaluate_accuracy(tm.test);
  EXPECT_LE(noisy_acc, float_acc + 0.05);
}

}  // namespace
}  // namespace yoloc
