// Mapping tests: conv -> MVM lowering and subarray tiling invariants
// (full coverage, bounds, packing utilization).

#include <gtest/gtest.h>

#include "macro/macro_config.hpp"
#include "mapping/weight_mapper.hpp"

namespace yoloc {
namespace {

TEST(ConvMapping, ConvShapes) {
  const MvmShape s = conv_to_mvm(64, 128, 3, 16, 16);
  EXPECT_EQ(s.m, 128);
  EXPECT_EQ(s.k, 64 * 9);
  EXPECT_EQ(s.vectors, 256);
  EXPECT_DOUBLE_EQ(s.weight_count(), 128.0 * 576.0);
  EXPECT_DOUBLE_EQ(s.macs(), 128.0 * 576.0 * 256.0);
}

TEST(ConvMapping, FcShapes) {
  const MvmShape s = fc_to_mvm(512, 100);
  EXPECT_EQ(s.m, 100);
  EXPECT_EQ(s.k, 512);
  EXPECT_EQ(s.vectors, 1);
}

TEST(ConvMapping, RejectsBadGeometry) {
  EXPECT_THROW(conv_to_mvm(0, 1, 3, 4, 4), std::runtime_error);
  EXPECT_THROW(fc_to_mvm(1, 0), std::runtime_error);
}

MacroGeometry geom() { return default_rom_macro().geometry; }

double tile_weight_sum(const MappingPlan& plan) {
  double sum = 0.0;
  for (const auto& t : plan.tiles) {
    sum += static_cast<double>(t.k_size) * t.m_size;
  }
  return sum;
}

TEST(WeightMapper, SingleSmallLayerFitsOneSubarray) {
  const WeightMapper mapper(geom());
  std::vector<LayerMvm> layers{{0, "small", conv_to_mvm(8, 16, 3, 4, 4)}};
  const MappingPlan plan = mapper.map(layers, MappingStrategy::kDedicated);
  // k = 72 <= 128 rows, m = 16 <= 32 weights per row.
  EXPECT_EQ(plan.subarrays_used, 1);
  EXPECT_DOUBLE_EQ(tile_weight_sum(plan), 72.0 * 16.0);
}

TEST(WeightMapper, TallLayerSpansRowTiles) {
  const WeightMapper mapper(geom());
  // k = 2304 -> 18 row tiles of 128.
  std::vector<LayerMvm> layers{{0, "tall", conv_to_mvm(256, 16, 3, 4, 4)}};
  const MappingPlan plan = mapper.map(layers, MappingStrategy::kDedicated);
  EXPECT_EQ(plan.subarrays_used, 18);
  EXPECT_DOUBLE_EQ(tile_weight_sum(plan), 2304.0 * 16.0);
}

TEST(WeightMapper, WideLayerSpansColumnStrips) {
  const WeightMapper mapper(geom());
  // m = 128 -> 4 column strips of 32.
  std::vector<LayerMvm> layers{{0, "wide", conv_to_mvm(8, 128, 3, 4, 4)}};
  const MappingPlan plan = mapper.map(layers, MappingStrategy::kDedicated);
  EXPECT_EQ(plan.subarrays_used, 4);
  EXPECT_DOUBLE_EQ(tile_weight_sum(plan), 72.0 * 128.0);
}

TEST(WeightMapper, TilesRespectBounds) {
  const WeightMapper mapper(geom());
  std::vector<LayerMvm> layers{
      {0, "a", conv_to_mvm(64, 100, 3, 8, 8)},
      {1, "b", conv_to_mvm(32, 48, 1, 8, 8)},
  };
  for (auto strategy :
       {MappingStrategy::kDedicated, MappingStrategy::kPacked}) {
    const MappingPlan plan = mapper.map(layers, strategy);
    for (const auto& t : plan.tiles) {
      EXPECT_GT(t.k_size, 0);
      EXPECT_LE(t.k_size, mapper.rows());
      EXPECT_GT(t.m_size, 0);
      EXPECT_LE(t.col_offset + t.m_size, mapper.weights_per_row());
      EXPECT_GE(t.subarray, 0);
      EXPECT_LT(t.subarray, plan.subarrays_used);
    }
  }
}

TEST(WeightMapper, PackedImprovesUtilizationForNarrowLayers) {
  const WeightMapper mapper(geom());
  // Many narrow layers (m = 8 of 32 weight columns).
  std::vector<LayerMvm> layers;
  for (int i = 0; i < 8; ++i) {
    layers.push_back({i, "narrow", conv_to_mvm(16, 8, 3, 4, 4)});
  }
  const MappingPlan dedicated =
      mapper.map(layers, MappingStrategy::kDedicated);
  const MappingPlan packed = mapper.map(layers, MappingStrategy::kPacked);
  EXPECT_LT(packed.subarrays_used, dedicated.subarrays_used);
  EXPECT_GT(packed.utilization, dedicated.utilization);
  // Both cover all weights exactly once.
  EXPECT_DOUBLE_EQ(tile_weight_sum(dedicated), tile_weight_sum(packed));
}

TEST(WeightMapper, UtilizationInUnitRange) {
  const WeightMapper mapper(geom());
  std::vector<LayerMvm> layers{{0, "x", conv_to_mvm(3, 5, 3, 2, 2)}};
  const MappingPlan plan = mapper.map(layers, MappingStrategy::kPacked);
  EXPECT_GT(plan.utilization, 0.0);
  EXPECT_LE(plan.utilization, 1.0);
}

struct MapCase {
  int in_ch, out_ch, kernel;
};

class MapperProperty : public ::testing::TestWithParam<MapCase> {};

TEST_P(MapperProperty, CoverageExactUnderBothStrategies) {
  const auto c = GetParam();
  const WeightMapper mapper(geom());
  const MvmShape shape = conv_to_mvm(c.in_ch, c.out_ch, c.kernel, 4, 4);
  std::vector<LayerMvm> layers{{0, "l", shape}};
  for (auto strategy :
       {MappingStrategy::kDedicated, MappingStrategy::kPacked}) {
    const MappingPlan plan = mapper.map(layers, strategy);
    EXPECT_DOUBLE_EQ(tile_weight_sum(plan), shape.weight_count());
    EXPECT_EQ(plan.tiles_per_layer[0],
              ((shape.k + 127) / 128) * ((shape.m + 31) / 32));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MapperProperty,
    ::testing::Values(MapCase{1, 1, 1}, MapCase{3, 16, 3}, MapCase{64, 64, 3},
                      MapCase{128, 32, 1}, MapCase{17, 33, 3},
                      MapCase{256, 512, 3}, MapCase{100, 7, 5}));

}  // namespace
}  // namespace yoloc
