// Dataset synthesis tests: determinism, label structure, value ranges,
// domain-shift knobs, and detection scene geometry.

#include <gtest/gtest.h>

#include <cmath>

#include "data/classification.hpp"
#include "data/detection.hpp"

namespace yoloc {
namespace {

TEST(Patterns, IntensityInUnitRange) {
  ClassRecipe r;
  for (auto family :
       {PatternFamily::kGrating, PatternFamily::kChecker, PatternFamily::kBlob,
        PatternFamily::kRings, PatternFamily::kCross,
        PatternFamily::kStripes}) {
    r.family = family;
    for (float y = -1.0f; y <= 1.0f; y += 0.23f) {
      for (float x = -1.0f; x <= 1.0f; x += 0.23f) {
        const float v = pattern_intensity(r, x, y);
        EXPECT_GE(v, 0.0f);
        EXPECT_LE(v, 1.0f);
      }
    }
  }
}

TEST(Patterns, JitterIsBounded) {
  ClassRecipe r;
  r.jitter = 0.1f;
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const ClassRecipe j = jitter_recipe(r, rng);
    EXPECT_GT(j.freq, 0.0f);
    EXPECT_GT(j.scale, 0.0f);
  }
}

TEST(Patterns, RenderedPixelsInUnitRange) {
  ClassRecipe r;
  DomainStyle style;
  style.noise_std = 0.2f;
  Rng rng(2);
  std::vector<float> img(3 * 8 * 8);
  render_pattern(r, style, 8, 8, rng, img.data());
  for (float v : img) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(Classification, ShapesAndInterleavedLabels) {
  const DatasetSpec spec = source_suite_spec(16);
  Rng rng(3);
  const LabeledDataset ds = generate_classification(spec, 4, rng);
  EXPECT_EQ(ds.size(), spec.num_classes * 4);
  EXPECT_EQ(ds.images.shape(),
            (std::vector<int>{spec.num_classes * 4, 3, 16, 16}));
  // Interleaving: the first num_classes samples cover all labels.
  for (int c = 0; c < spec.num_classes; ++c) {
    EXPECT_EQ(ds.labels[static_cast<std::size_t>(c)], c);
  }
}

TEST(Classification, DeterministicForSameSeed) {
  const DatasetSpec spec = cifar10_like_spec(16);
  Rng a(7);
  Rng b(7);
  const LabeledDataset da = generate_classification(spec, 2, a);
  const LabeledDataset db = generate_classification(spec, 2, b);
  for (std::size_t i = 0; i < da.images.size(); ++i) {
    EXPECT_FLOAT_EQ(da.images[i], db.images[i]);
  }
}

TEST(Classification, SuiteSpecsDiffer) {
  const auto src = source_suite_spec(16);
  const auto tgt = caltech_like_spec(16);
  EXPECT_NE(src.style.clutter, tgt.style.clutter);
  EXPECT_NE(src.recipes[0].angle, tgt.recipes[0].angle);
}

TEST(Classification, AllTargetsPresent) {
  const auto targets = all_transfer_targets(16);
  ASSERT_EQ(targets.size(), 4u);
  EXPECT_EQ(targets[0].name, "cifar10-like");
  EXPECT_EQ(targets[1].name, "mnist-like");
  EXPECT_EQ(targets[2].name, "fashion-like");
  EXPECT_EQ(targets[3].name, "caltech-like");
}

TEST(Classification, MnistLikeCleanerThanCaltechLike) {
  const auto mnist = mnist_like_spec(16);
  const auto caltech = caltech_like_spec(16);
  EXPECT_LT(mnist.style.noise_std, caltech.style.noise_std);
  EXPECT_LT(mnist.recipes[0].jitter, caltech.recipes[0].jitter);
}

TEST(Detection, SceneShapesAndBoxes) {
  const DetectionSpec spec = coco_like_spec(32);
  Rng rng(4);
  const DetectionDataset ds = generate_detection(spec, 10, rng);
  EXPECT_EQ(ds.size(), 10);
  EXPECT_EQ(ds.images.shape(), (std::vector<int>{10, 3, 32, 32}));
  for (const auto& scene : ds.boxes) {
    EXPECT_GE(scene.size(), 1u);
    EXPECT_LE(scene.size(), static_cast<std::size_t>(spec.max_objects));
    for (const auto& b : scene) {
      EXPECT_GT(b.w, 0.0f);
      EXPECT_GT(b.h, 0.0f);
      EXPECT_GE(b.cx - b.w / 2, 0.0f);
      EXPECT_LE(b.cx + b.w / 2, 1.0f);
      EXPECT_GE(b.cy - b.h / 2, 0.0f);
      EXPECT_LE(b.cy + b.h / 2, 1.0f);
      EXPECT_GE(b.cls, 0);
      EXPECT_LT(b.cls, kNumShapeClasses);
    }
  }
}

TEST(Detection, PedestrianSuiteSkewsTallBoxes) {
  const DetectionSpec spec = pedestrian_like_spec(32);
  Rng rng(5);
  const DetectionDataset ds = generate_detection(spec, 60, rng);
  int tall = 0;
  int total = 0;
  for (const auto& scene : ds.boxes) {
    for (const auto& b : scene) {
      ++total;
      if (b.cls == static_cast<int>(ShapeClass::kTallBox)) ++tall;
    }
  }
  EXPECT_GT(static_cast<double>(tall) / total, 0.5);
}

TEST(Detection, TallBoxesAreTall) {
  const DetectionSpec spec = pedestrian_like_spec(32);
  Rng rng(6);
  const DetectionDataset ds = generate_detection(spec, 30, rng);
  for (const auto& scene : ds.boxes) {
    for (const auto& b : scene) {
      if (b.cls == static_cast<int>(ShapeClass::kTallBox)) {
        EXPECT_LT(b.w, b.h);
      }
    }
  }
}

TEST(Detection, ObjectPixelsBrighterThanBackground) {
  DetectionSpec spec = coco_like_spec(32);
  spec.style.noise_std = 0.0f;
  Rng rng(7);
  const DetectionDataset ds = generate_detection(spec, 5, rng);
  // Sample the center pixel of each box: should be brighter than the
  // dim background (~0.15).
  for (int n = 0; n < ds.size(); ++n) {
    for (const auto& b : ds.boxes[static_cast<std::size_t>(n)]) {
      const int cy = static_cast<int>(b.cy * 32);
      const int cx = static_cast<int>(b.cx * 32);
      float maxc = 0.0f;
      for (int c = 0; c < 3; ++c) {
        maxc = std::max(maxc, ds.images.at4(n, c, cy, cx));
      }
      EXPECT_GT(maxc, 0.3f);
    }
  }
}

TEST(Detection, SuiteStylesDiffer) {
  const auto ped = pedestrian_like_spec(32);
  const auto traffic = traffic_like_spec(32);
  EXPECT_NE(ped.class_weights, traffic.class_weights);
}

}  // namespace
}  // namespace yoloc
