// Deployment-plan serialization round-trip suite: a saved .yolocplan
// must rebuild (in a fresh state, without the float model or calibration
// images) into a plan whose execute() outputs and merged stats are
// bit-identical to the plan that saved it — for ROM-only and mixed
// ROM+SRAM residency, serial and through the multi-threaded
// InferenceServer. Every corruption path (bad magic, wrong version,
// truncation, any flipped payload byte) must fail loudly, never load
// into a silently wrong plan.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/binio.hpp"
#include "nn/activations.hpp"
#include "nn/container.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "nn/quantize.hpp"
#include "runtime/execution_context.hpp"
#include "runtime/inference_server.hpp"
#include "runtime/plan_serde.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor_io.hpp"

namespace yoloc {
namespace {

// Keep the concurrency paths exercised even on single-core CI boxes.
const bool g_env_pinned = [] {
  setenv("YOLOC_THREADS", "4", /*overwrite=*/1);
  return true;
}();

enum class Residency { kMixed, kRomOnly };

LayerPtr make_model(std::uint64_t seed, Residency residency) {
  Rng rng(seed);
  auto backbone = std::make_unique<Sequential>("backbone");
  backbone->add(std::make_unique<Conv2d>(3, 4, 3, 1, 1, true, rng, "b.c1"));
  backbone->add(std::make_unique<ReLU>());
  backbone->add(std::make_unique<MaxPool2d>(2));
  // A residual block, so the serialized graph covers ParallelSum +
  // Identity topology.
  auto inner = std::make_unique<Sequential>("res.inner");
  inner->add(std::make_unique<Conv2d>(4, 4, 3, 1, 1, false, rng, "b.c2"));
  inner->add(std::make_unique<LeakyReLU>(0.1f));
  backbone->add(make_residual(std::move(inner), "res"));
  auto net = std::make_unique<Sequential>("net");
  net->add(std::move(backbone));
  net->add(std::make_unique<GlobalAvgPool>());
  net->add(std::make_unique<Linear>(4, 5, true, rng, "head.fc"));
  for (Parameter* p : net->parameters()) {
    p->rom_resident = residency == Residency::kRomOnly ||
                      p->name.find("b.c") != std::string::npos;
  }
  return net;
}

std::unique_ptr<DeploymentPlan> make_plan(MacroMvmEngine::Mode mode,
                                          Residency residency) {
  LayerPtr net = make_model(21, residency);
  Rng data_rng(33);
  Tensor calib = Tensor::rand_uniform({8, 3, 8, 8}, data_rng, 0.0f, 1.0f);
  DeploymentOptions options;
  options.mode = mode;
  return std::make_unique<DeploymentPlan>(std::move(net), calib,
                                          std::move(options));
}

std::vector<Tensor> make_requests(int count) {
  Rng rng(55);
  std::vector<Tensor> xs;
  xs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    xs.push_back(Tensor::rand_uniform({1, 3, 8, 8}, rng, 0.0f, 1.0f));
  }
  return xs;
}

::testing::AssertionResult bit_identical(const Tensor& a, const Tensor& b) {
  if (!same_shape(a, b)) {
    return ::testing::AssertionFailure() << "shape mismatch";
  }
  if (std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) != 0) {
    return ::testing::AssertionFailure()
           << "payload differs (max |a-b| = " << max_abs_diff(a, b) << ")";
  }
  return ::testing::AssertionSuccess();
}

void expect_stats_identical(const MacroRunStats& a, const MacroRunStats& b) {
  EXPECT_EQ(a.macs, b.macs);
  EXPECT_EQ(a.macro_ops, b.macro_ops);
  EXPECT_EQ(a.energy_pj(), b.energy_pj());
  EXPECT_EQ(a.latency_ns, b.latency_ns);
}

std::filesystem::path temp_plan_path(const char* stem) {
  return std::filesystem::temp_directory_path() /
         (std::string(stem) + kPlanFileExtension);
}

/// Save/load through a file, then check the loaded plan is bit-identical
/// to the original across per-request seeded contexts + merged stats.
void check_round_trip(const DeploymentPlan& original, const char* stem) {
  const auto path = temp_plan_path(stem);
  save_plan(original, path.string());
  auto loaded = load_plan(path.string());
  std::filesystem::remove(path);

  ASSERT_NE(loaded, nullptr);
  EXPECT_TRUE(loaded->options() == original.options());
  EXPECT_EQ(loaded->quantized_layer_count(),
            original.quantized_layer_count());

  const auto xs = make_requests(4);
  MacroRunStats orig_rom, orig_sram, load_rom, load_sram;
  for (int i = 0; i < 4; ++i) {
    const std::uint64_t seed = 100u + static_cast<std::uint64_t>(i);
    ExecutionContext orig_ctx(original, seed);
    ExecutionContext load_ctx(*loaded, seed);
    Tensor a = orig_ctx.infer(xs[static_cast<std::size_t>(i)]);
    Tensor b = load_ctx.infer(xs[static_cast<std::size_t>(i)]);
    EXPECT_TRUE(bit_identical(a, b)) << "request " << i;
    orig_rom.accumulate(orig_ctx.rom_stats());
    orig_sram.accumulate(orig_ctx.sram_stats());
    load_rom.accumulate(load_ctx.rom_stats());
    load_sram.accumulate(load_ctx.sram_stats());
  }
  expect_stats_identical(orig_rom, load_rom);
  expect_stats_identical(orig_sram, load_sram);
}

TEST(PlanSerde, RoundTripBitIdenticalMixedResidencyAnalog) {
  auto plan = make_plan(MacroMvmEngine::Mode::kAnalog, Residency::kMixed);
  check_round_trip(*plan, "serde_mixed_analog");
}

TEST(PlanSerde, RoundTripBitIdenticalMixedResidencyExactCost) {
  auto plan = make_plan(MacroMvmEngine::Mode::kExactCost, Residency::kMixed);
  check_round_trip(*plan, "serde_mixed_exact");
}

TEST(PlanSerde, RoundTripBitIdenticalRomOnlyResidency) {
  auto plan = make_plan(MacroMvmEngine::Mode::kAnalog, Residency::kRomOnly);
  // Every parameter is ROM-resident: the SRAM engine must see no traffic
  // on either side of the round trip.
  check_round_trip(*plan, "serde_rom_only");
  ExecutionContext ctx(*plan, 1);
  (void)ctx.infer(make_requests(1)[0]);
  EXPECT_GT(ctx.rom_stats().macs, 0u);
  EXPECT_EQ(ctx.sram_stats().macs, 0u);
}

TEST(PlanSerde, LoadedPlanServesBitIdenticallyThroughServer) {
  auto original = make_plan(MacroMvmEngine::Mode::kAnalog, Residency::kMixed);
  const std::vector<std::uint8_t> bytes = serialize_plan(*original);
  auto loaded = deserialize_plan(bytes.data(), bytes.size());

  const int kRequests = 6;
  const auto xs = make_requests(kRequests);
  ServerOptions options;
  options.workers = 3;
  options.max_microbatch = 1;  // reproducible batch composition
  options.noise_seed = 777;

  auto serve = [&](const DeploymentPlan& plan, std::vector<Tensor>& out,
                   MacroRunStats& rom, MacroRunStats& sram) {
    InferenceServer server(plan, options);
    std::vector<std::future<Tensor>> futures;
    for (const Tensor& x : xs) futures.push_back(server.submit(x));
    for (auto& f : futures) out.push_back(f.get());
    server.wait_idle();
    rom = server.rom_stats();
    sram = server.sram_stats();
  };

  std::vector<Tensor> out_a, out_b;
  MacroRunStats rom_a, sram_a, rom_b, sram_b;
  serve(*original, out_a, rom_a, sram_a);
  serve(*loaded, out_b, rom_b, sram_b);
  for (int i = 0; i < kRequests; ++i) {
    EXPECT_TRUE(bit_identical(out_a[static_cast<std::size_t>(i)],
                              out_b[static_cast<std::size_t>(i)]))
        << "request " << i;
  }
  expect_stats_identical(rom_a, rom_b);
  expect_stats_identical(sram_a, sram_b);
}

TEST(PlanSerde, LoadedPlanServesMicrobatchedExactTraffic) {
  // Multi-threaded micro-batched serving on a loaded plan (exact mode is
  // noise-free, so batching must not move any output bit).
  auto original =
      make_plan(MacroMvmEngine::Mode::kExactCost, Residency::kMixed);
  const std::vector<std::uint8_t> bytes = serialize_plan(*original);
  auto loaded = deserialize_plan(bytes.data(), bytes.size());

  Rng rng(91);
  Tensor images = Tensor::rand_uniform({8, 3, 8, 8}, rng, 0.0f, 1.0f);
  ExecutionContext ctx(*original, 1);
  Tensor reference = ctx.infer(images);

  ServerOptions options;
  options.workers = 2;
  options.max_microbatch = 4;
  InferenceServer server(*loaded, options);
  Tensor served = server.infer(images);
  EXPECT_TRUE(bit_identical(reference, served));
  server.wait_idle();
  EXPECT_EQ(ctx.rom_stats().macs, server.rom_stats().macs);
  EXPECT_EQ(ctx.sram_stats().macs, server.sram_stats().macs);
}

TEST(PlanSerde, LoadPathNeedsNoCalibrationImages) {
  std::vector<std::uint8_t> bytes;
  {
    auto plan = make_plan(MacroMvmEngine::Mode::kAnalog, Residency::kMixed);
    bytes = serialize_plan(*plan);
    // Original plan (and with it every float weight and calibration
    // artifact) is destroyed here.
  }
  auto loaded = deserialize_plan(bytes.data(), bytes.size());
  EXPECT_GT(loaded->quantized_layer_count(), 0);
  EXPECT_TRUE(quantized_layers_calibrated(loaded->model()));
  ExecutionContext ctx(*loaded, 7);
  Tensor out = ctx.infer(make_requests(1)[0]);
  EXPECT_EQ(out.shape(), (std::vector<int>{1, 5}));
}

// ------------------------------------------------------------ negative

TEST(PlanSerde, RejectsBadMagic) {
  auto plan = make_plan(MacroMvmEngine::Mode::kExactCost, Residency::kMixed);
  std::vector<std::uint8_t> bytes = serialize_plan(*plan);
  bytes[0] ^= 0xFF;
  EXPECT_THROW((void)deserialize_plan(bytes.data(), bytes.size()),
               std::runtime_error);
}

TEST(PlanSerde, RejectsWrongVersion) {
  auto plan = make_plan(MacroMvmEngine::Mode::kExactCost, Residency::kMixed);
  std::vector<std::uint8_t> bytes = serialize_plan(*plan);
  bytes[8] += 1;  // version field follows the 8-byte magic
  EXPECT_THROW((void)deserialize_plan(bytes.data(), bytes.size()),
               std::runtime_error);
}

TEST(PlanSerde, RejectsTruncation) {
  auto plan = make_plan(MacroMvmEngine::Mode::kExactCost, Residency::kMixed);
  const std::vector<std::uint8_t> bytes = serialize_plan(*plan);
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{1}, std::size_t{8}, std::size_t{15},
        bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_THROW((void)deserialize_plan(bytes.data(), cut),
                 std::runtime_error)
        << "cut at " << cut;
  }
}

TEST(PlanSerde, RejectsTrailingBytes) {
  // Artifacts are canonical: appended garbage (e.g. a botched download
  // concatenation) is rejected even though every section CRC still holds.
  auto plan = make_plan(MacroMvmEngine::Mode::kExactCost, Residency::kMixed);
  std::vector<std::uint8_t> bytes = serialize_plan(*plan);
  bytes.push_back(0x00);
  EXPECT_THROW((void)deserialize_plan(bytes.data(), bytes.size()),
               std::runtime_error);
}

TEST(PlanSerde, RejectsTruncatedFile) {
  auto plan = make_plan(MacroMvmEngine::Mode::kExactCost, Residency::kMixed);
  const auto path = temp_plan_path("serde_truncated");
  save_plan(*plan, path.string());
  std::filesystem::resize_file(path, std::filesystem::file_size(path) / 2);
  EXPECT_THROW((void)load_plan(path.string()), std::runtime_error);
  std::filesystem::remove(path);
  EXPECT_THROW((void)load_plan(path.string()), std::runtime_error);
}

TEST(PlanSerde, AnySingleFlippedByteFailsLoudly) {
  // Exhaustive corruption sweep: flipping any single byte anywhere in the
  // artifact (header, section table, options, weights) must be caught by
  // the magic/version/bounds checks or a section CRC — a corrupt artifact
  // can never load into a silently wrong plan.
  auto plan = make_plan(MacroMvmEngine::Mode::kExactCost, Residency::kMixed);
  const std::vector<std::uint8_t> bytes = serialize_plan(*plan);
  ASSERT_LT(bytes.size(), 64u * 1024u) << "keep the sweep cheap";
  std::vector<std::uint8_t> corrupt = bytes;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    corrupt[i] ^= 0x5A;
    EXPECT_THROW((void)deserialize_plan(corrupt.data(), corrupt.size()),
                 std::runtime_error)
        << "flipped byte at offset " << i;
    corrupt[i] = bytes[i];
  }
}

TEST(PlanSerde, ZeroQuantizedLayerImageRejected) {
  // A graph with no quantized layers is not a servable plan image.
  auto relu_only = std::make_unique<Sequential>("net");
  relu_only->add(std::make_unique<ReLU>());
  LoweredPlanImage image;
  image.model = std::move(relu_only);
  image.quantized_layers = 0;
  EXPECT_THROW(DeploymentPlan(std::move(image), DeploymentOptions{}),
               std::runtime_error);
}

TEST(PlanSerde, QuantizedLayerCountMismatchRejected) {
  QuantizedTensor qw;
  qw.shape = {2, 3};
  qw.data = {1, -2, 3, -4, 5, -6};
  qw.scale = 0.5f;
  auto net = std::make_unique<Sequential>("net");
  net->add(std::make_unique<QuantLinear>("fc.q", 3, 2, 8, qw,
                                         Tensor::zeros({2}), EngineKind::kRom,
                                         0.25f));
  LoweredPlanImage image;
  image.model = std::move(net);
  image.quantized_layers = 2;  // lies about the graph
  EXPECT_THROW(DeploymentPlan(std::move(image), DeploymentOptions{}),
               std::runtime_error);
}

TEST(PlanSerde, RestoredQuantLayerValidatesItsPayload) {
  QuantizedTensor qw;
  qw.shape = {2, 3};
  qw.data = {1, -2, 3, -4, 5, -6};
  qw.scale = 0.5f;
  // Uncalibrated activation scale.
  EXPECT_THROW(QuantLinear("fc.q", 3, 2, 8, qw, Tensor::zeros({2}),
                           EngineKind::kRom, -1.0f),
               std::runtime_error);
  // Weight payload that does not match the declared geometry.
  EXPECT_THROW(QuantLinear("fc.q", 4, 2, 8, qw, Tensor::zeros({2}),
                           EngineKind::kRom, 0.25f),
               std::runtime_error);
  // Bias length mismatch.
  EXPECT_THROW(QuantLinear("fc.q", 3, 2, 8, qw, Tensor::zeros({3}),
                           EngineKind::kRom, 0.25f),
               std::runtime_error);
  // Same three classes for the conv restore path.
  QuantizedTensor cw;
  cw.shape = {1, 9};
  cw.data.assign(9, 1);
  cw.scale = 0.5f;
  EXPECT_THROW(QuantConv2d("c.q", 1, 1, 3, 1, 1, 8, cw, Tensor::zeros({1}),
                           EngineKind::kSram, 0.0f),
               std::runtime_error);
  EXPECT_THROW(QuantConv2d("c.q", 2, 1, 3, 1, 1, 8, cw, Tensor::zeros({1}),
                           EngineKind::kSram, 0.25f),
               std::runtime_error);
  EXPECT_NO_THROW(QuantConv2d("c.q", 1, 1, 3, 1, 1, 8, cw,
                              Tensor::zeros({1}), EngineKind::kSram, 0.25f));
}

// ------------------------------------------- options equality/validate

TEST(PlanSerde, DeploymentOptionsEquality) {
  DeploymentOptions a, b;
  EXPECT_TRUE(a == b);
  b.act_bits = 4;
  EXPECT_FALSE(a == b);
  b = a;
  b.mode = MacroMvmEngine::Mode::kExactCost;
  EXPECT_FALSE(a == b);
  b = a;
  b.rom_macro.geometry.rows_per_activation = 64;
  EXPECT_FALSE(a == b);
  b = a;
  b.sram_macro.bitline.sigma_cell = 0.1;
  EXPECT_FALSE(a == b);
}

TEST(PlanSerde, DeploymentOptionsValidation) {
  DeploymentOptions good;
  EXPECT_NO_THROW(good.validate());

  DeploymentOptions bad = good;
  bad.weight_bits = 1;
  EXPECT_THROW(bad.validate(), std::runtime_error);

  bad = good;
  bad.act_bits = 0;
  EXPECT_THROW(bad.validate(), std::runtime_error);

  bad = good;
  bad.rom_macro.kind = MacroKind::kSram;  // wrong residency slot
  EXPECT_THROW(bad.validate(), std::runtime_error);

  bad = good;
  bad.rom_macro.geometry.rows_per_activation =
      bad.rom_macro.geometry.rows + 1;
  EXPECT_THROW(bad.validate(), std::runtime_error);

  bad = good;
  bad.sram_macro.geometry.cols = 250;  // not a multiple of weight_bits
  EXPECT_THROW(bad.validate(), std::runtime_error);

  bad = good;
  bad.sram_macro.adc.v_hi = bad.sram_macro.adc.v_lo;
  EXPECT_THROW(bad.validate(), std::runtime_error);

  bad = good;
  bad.rom_macro.bitline.t_pulse_ns = 0.0;
  EXPECT_THROW(bad.validate(), std::runtime_error);

  // The plan constructor runs the same validation.
  DeploymentOptions ctor_bad;
  ctor_bad.weight_bits = 0;
  Rng rng(1);
  auto net = std::make_unique<Sequential>("net");
  net->add(std::make_unique<Conv2d>(1, 1, 1, 1, 0, true, rng, "c"));
  Tensor calib = Tensor::rand_uniform({1, 1, 2, 2}, rng, 0.0f, 1.0f);
  EXPECT_THROW(
      DeploymentPlan(std::move(net), calib, std::move(ctor_bad)),
      std::runtime_error);
}

// ----------------------------------------------------- tensor edge I/O

TEST(PlanSerde, TensorIoRoundTripsEdgeCases) {
  // Empty (default) tensor.
  ByteWriter w;
  write_tensor(w, Tensor{});
  Rng rng(5);
  Tensor dense = Tensor::randn({2, 3, 1, 2}, rng);
  write_tensor(w, dense);
  QuantizedTensor qempty;
  write_quantized_tensor(w, qempty);
  QuantizedTensor q;
  q.shape = {3, 2};
  q.data = {-128, 127, 0, 1, -1, 64};
  q.scale = 0.031f;
  write_quantized_tensor(w, q);

  ByteReader r(w.buffer().data(), w.buffer().size());
  Tensor empty_back = read_tensor(r);
  EXPECT_TRUE(empty_back.empty());
  EXPECT_EQ(empty_back.rank(), 0);
  Tensor dense_back = read_tensor(r);
  EXPECT_TRUE(bit_identical(dense, dense_back));
  QuantizedTensor qempty_back = read_quantized_tensor(r);
  EXPECT_TRUE(qempty_back.shape.empty());
  EXPECT_TRUE(qempty_back.data.empty());
  QuantizedTensor q_back = read_quantized_tensor(r);
  EXPECT_EQ(q.shape, q_back.shape);
  EXPECT_EQ(q.data, q_back.data);
  EXPECT_EQ(q.scale, q_back.scale);
  r.expect_exhausted("tensor io test");

  // Corrupt shape prefixes fail before allocating.
  ByteWriter bad;
  bad.u32(2);
  bad.i32(1 << 20);
  bad.i32(1 << 20);  // claims 4 TiB of floats
  ByteReader bad_r(bad.buffer().data(), bad.buffer().size());
  EXPECT_THROW((void)read_tensor(bad_r), std::runtime_error);
  ByteWriter neg;
  neg.u32(1);
  neg.i32(-3);
  ByteReader neg_r(neg.buffer().data(), neg.buffer().size());
  EXPECT_THROW((void)read_tensor(neg_r), std::runtime_error);
}

// ------------------------------------------------------- golden fixture

TEST(PlanSerde, GoldenArtifactFromFixtureProcessLoads) {
  // CTest writes a golden artifact via `serve_from_plan --save` in a
  // separate process (FIXTURES_SETUP serde_golden); loading it here is a
  // true cross-process cold start. Standalone runs skip.
  const char* path = std::getenv("YOLOC_GOLDEN_PLAN");
  if (path == nullptr || !std::filesystem::exists(path)) {
    GTEST_SKIP() << "YOLOC_GOLDEN_PLAN not provided (run via ctest -L serde)";
  }
  auto plan = load_plan(path);
  ASSERT_NE(plan, nullptr);
  EXPECT_GT(plan->quantized_layer_count(), 0);
  ExecutionContext ctx(*plan, 2024);
  Rng rng(3);
  Tensor image = Tensor::rand_uniform({1, 3, 16, 16}, rng, 0.0f, 1.0f);
  Tensor out = ctx.infer(image);
  EXPECT_EQ(out.shape()[0], 1);
  EXPECT_GT(ctx.rom_stats().macs, 0u);
}

}  // namespace
}  // namespace yoloc
