// Network lowering tests: BatchNorm folding exactness, int8 quantized
// inference fidelity against the float reference (exact integer engine),
// and the calibration workflow.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/container.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "nn/quantize.hpp"
#include "tensor/ops.hpp"

namespace yoloc {
namespace {

LayerPtr small_convnet(Rng& rng, bool with_bn) {
  auto net = std::make_unique<Sequential>("net");
  net->add(std::make_unique<Conv2d>(2, 4, 3, 1, 1, !with_bn, rng, "c1"));
  if (with_bn) net->add(std::make_unique<BatchNorm2d>(4, 1e-5f, 0.1f, "bn1"));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<Conv2d>(4, 4, 3, 1, 1, !with_bn, rng, "c2"));
  if (with_bn) net->add(std::make_unique<BatchNorm2d>(4, 1e-5f, 0.1f, "bn2"));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<GlobalAvgPool>());
  net->add(std::make_unique<Linear>(4, 3, true, rng, "fc"));
  return net;
}

TEST(BnFold, EvalOutputUnchanged) {
  Rng rng(1);
  LayerPtr net = small_convnet(rng, /*with_bn=*/true);
  // Push a few training batches through so running stats are non-trivial.
  Tensor warm = Tensor::randn({8, 2, 6, 6}, rng);
  for (int i = 0; i < 5; ++i) (void)net->forward(warm, /*train=*/true);

  Tensor x = Tensor::randn({4, 2, 6, 6}, rng);
  Tensor before = net->forward(x, /*train=*/false);
  const int folds = fold_batchnorm(*net);
  EXPECT_EQ(folds, 2);
  Tensor after = net->forward(x, /*train=*/false);
  EXPECT_LT(max_abs_diff(before, after), 1e-4f);
}

TEST(BnFold, RemovesBnLayers) {
  Rng rng(2);
  LayerPtr net = small_convnet(rng, /*with_bn=*/true);
  auto* seq = dynamic_cast<Sequential*>(net.get());
  const std::size_t size_before = seq->size();
  fold_batchnorm(*net);
  EXPECT_EQ(seq->size(), size_before - 2);
}

TEST(BnFold, NoOpWithoutBn) {
  Rng rng(3);
  LayerPtr net = small_convnet(rng, /*with_bn=*/false);
  EXPECT_EQ(fold_batchnorm(*net), 0);
}

TEST(ExactEngine, MatchesIntegerReference) {
  ExactMvmEngine engine;
  const int m = 3, k = 4, p = 2;
  const std::int8_t w[m * k] = {1, -2, 3, -4, 5, 6, -7, 8, 0, 1, 2, 3};
  const std::uint8_t x[k * p] = {1, 2, 3, 4, 5, 6, 7, 8};
  std::int32_t y[m * p];
  engine.mvm_batch(w, m, k, x, p, y);
  // Row 0, col 0: 1*1 - 2*3 + 3*5 - 4*7 = -18.
  EXPECT_EQ(y[0], -18);
  // Row 0, col 1: 1*2 - 2*4 + 3*6 - 4*8 = -20.
  EXPECT_EQ(y[1], -20);
  // Row 2, col 0: 0*1 + 1*3 + 2*5 + 3*7 = 34.
  EXPECT_EQ(y[4], 34);
}

TEST(QuantizeNetwork, ReplacesConvAndLinear) {
  Rng rng(4);
  LayerPtr net = small_convnet(rng, /*with_bn=*/false);
  ExactMvmEngine engine;
  const int replaced = quantize_network(*net, engine);
  EXPECT_EQ(replaced, 3);  // two convs + one linear
}

TEST(QuantizeNetwork, DeployBeforeCalibrationThrows) {
  Rng rng(5);
  LayerPtr net = small_convnet(rng, /*with_bn=*/false);
  ExactMvmEngine engine;
  quantize_network(*net, engine);
  Tensor x = Tensor::rand_uniform({1, 2, 6, 6}, rng, 0.0f, 1.0f);
  EXPECT_THROW(net->forward(x, false), std::runtime_error);
}

TEST(QuantizeNetwork, QuantizedCloseToFloatReference) {
  Rng rng(6);
  LayerPtr net = small_convnet(rng, /*with_bn=*/true);
  Tensor warm = Tensor::rand_uniform({8, 2, 6, 6}, rng, 0.0f, 1.0f);
  for (int i = 0; i < 5; ++i) (void)net->forward(warm, true);

  Tensor x = Tensor::rand_uniform({4, 2, 6, 6}, rng, 0.0f, 1.0f);
  Tensor reference = net->forward(x, false);

  fold_batchnorm(*net);
  ExactMvmEngine engine;
  quantize_network(*net, engine);
  calibrate_quantized(*net, warm);
  Tensor quantized = net->forward(x, false);

  // int8 weights + uint8 activations: a few percent of the output range.
  const float ref_range = reference.max_abs();
  EXPECT_LT(max_abs_diff(reference, quantized), 0.08f * ref_range + 0.05f);
}

TEST(QuantizeNetwork, ArgmaxAgreementOnRandomInputs) {
  Rng rng(7);
  LayerPtr net = small_convnet(rng, /*with_bn=*/true);
  Tensor warm = Tensor::rand_uniform({16, 2, 6, 6}, rng, 0.0f, 1.0f);
  for (int i = 0; i < 5; ++i) (void)net->forward(warm, true);

  Tensor x = Tensor::rand_uniform({32, 2, 6, 6}, rng, 0.0f, 1.0f);
  const auto ref_pred = argmax_rows(net->forward(x, false));

  fold_batchnorm(*net);
  ExactMvmEngine engine;
  quantize_network(*net, engine);
  calibrate_quantized(*net, warm);
  const auto q_pred = argmax_rows(net->forward(x, false));

  int agree = 0;
  for (std::size_t i = 0; i < ref_pred.size(); ++i) {
    if (ref_pred[i] == q_pred[i]) ++agree;
  }
  EXPECT_GE(agree, 29);  // >= ~90% agreement
}

TEST(QuantLayers, BackwardThrows) {
  Rng rng(8);
  Conv2d conv(1, 1, 1, 1, 0, false, rng, "c");
  ExactMvmEngine engine;
  QuantConv2d qconv(conv, engine);
  Tensor g({1, 1, 2, 2});
  EXPECT_THROW(qconv.backward(g), std::runtime_error);
}

TEST(QuantLayers, CalibrationRecordsScale) {
  Rng rng(9);
  Conv2d conv(1, 2, 3, 1, 1, false, rng, "c");
  ExactMvmEngine engine;
  QuantConv2d qconv(conv, engine);
  EXPECT_FALSE(qconv.is_calibrated());
  qconv.set_calibration_mode(true);
  Tensor x = Tensor::rand_uniform({2, 1, 4, 4}, rng, 0.0f, 2.0f);
  (void)qconv.forward(x, false);
  qconv.finalize_calibration();
  EXPECT_TRUE(qconv.is_calibrated());
  // Scale ~ max/255 with max close to 2.
  EXPECT_NEAR(qconv.act_scale(), 2.0f / 255.0f, 0.5f / 255.0f);
}

}  // namespace
}  // namespace yoloc
