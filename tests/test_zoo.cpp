// Model-zoo tests: every -lite topology builds, produces the right output
// shape, backpropagates, and follows the backbone/head naming convention
// the deployment policies rely on.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/zoo.hpp"

namespace yoloc {
namespace {

ZooConfig test_cfg() {
  ZooConfig cfg;
  cfg.image_size = 16;
  cfg.base_width = 4;
  cfg.num_classes = 5;
  return cfg;
}

int count_params_with(Layer& model, const std::string& needle) {
  int n = 0;
  for (Parameter* p : model.parameters()) {
    if (p->name.find(needle) != std::string::npos) ++n;
  }
  return n;
}

TEST(Zoo, Vgg8LiteShapesAndNames) {
  const auto cfg = test_cfg();
  LayerPtr net = build_vgg8_lite(cfg, plain_conv_unit);
  Rng rng(1);
  Tensor x = Tensor::randn({2, 3, 16, 16}, rng);
  Tensor y = net->forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 5}));
  EXPECT_GT(count_params_with(*net, "backbone"), 0);
  EXPECT_GT(count_params_with(*net, "head"), 0);
}

TEST(Zoo, Vgg8LiteBackward) {
  const auto cfg = test_cfg();
  LayerPtr net = build_vgg8_lite(cfg, plain_conv_unit);
  Rng rng(2);
  Tensor x = Tensor::randn({2, 3, 16, 16}, rng);
  Tensor y = net->forward(x, true);
  Tensor g = net->backward(Tensor::full(y.shape(), 1.0f));
  EXPECT_EQ(g.shape(), x.shape());
}

TEST(Zoo, ResNet18LiteShapesAndResidualStructure) {
  const auto cfg = test_cfg();
  LayerPtr net = build_resnet18_lite(cfg, plain_conv_unit);
  Rng rng(3);
  Tensor x = Tensor::randn({2, 3, 16, 16}, rng);
  Tensor y = net->forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 5}));
  // 4 stages x 2 blocks x 2 convs = 16 backbone convs + stem.
  EXPECT_GE(count_params_with(*net, "backbone"), 17);
  // Projection skips exist at stage transitions.
  EXPECT_GT(count_params_with(*net, ".proj"), 0);
}

TEST(Zoo, ResNet18LiteBackward) {
  const auto cfg = test_cfg();
  LayerPtr net = build_resnet18_lite(cfg, plain_conv_unit);
  Rng rng(4);
  Tensor x = Tensor::randn({1, 3, 16, 16}, rng);
  Tensor y = net->forward(x, true);
  EXPECT_NO_THROW(net->backward(Tensor::full(y.shape(), 0.1f)));
}

TEST(Zoo, DetectorLiteOutputsGrid) {
  const auto cfg = test_cfg();
  LayerPtr det = build_detector_lite(cfg, plain_conv_unit);
  Rng rng(5);
  Tensor x = Tensor::randn({2, 3, 16, 16}, rng);
  Tensor y = det->forward(x, true);
  const int grid = detector_grid_extent(16);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 5 + 5, grid, grid}));
}

TEST(Zoo, TinyDetectorSmallerThanFull) {
  const auto cfg = test_cfg();
  LayerPtr det = build_detector_lite(cfg, plain_conv_unit);
  LayerPtr tiny = build_tiny_detector_lite(cfg, plain_conv_unit);
  EXPECT_LT(parameter_count(*tiny), parameter_count(*det));
  Rng rng(6);
  Tensor x = Tensor::randn({1, 3, 16, 16}, rng);
  EXPECT_EQ(tiny->forward(x, true).shape(),
            det->forward(x, true).shape());
}

TEST(Zoo, FactoryHookReceivesEveryBackboneConv) {
  const auto cfg = test_cfg();
  int calls = 0;
  ConvUnitFactory counting = [&calls](const ConvSpec& spec, Rng& rng) {
    ++calls;
    EXPECT_FALSE(spec.name.empty());
    EXPECT_NE(spec.name.find("backbone"), std::string::npos);
    return plain_conv_unit(spec, rng);
  };
  (void)build_vgg8_lite(cfg, counting);
  EXPECT_EQ(calls, 6);  // three stages x two convs
  calls = 0;
  (void)build_darknet_lite_backbone(cfg, counting);
  EXPECT_EQ(calls, 5);
}

TEST(Zoo, SameSeedSameInit) {
  const auto cfg = test_cfg();
  LayerPtr a = build_vgg8_lite(cfg, plain_conv_unit);
  LayerPtr b = build_vgg8_lite(cfg, plain_conv_unit);
  const auto pa = a->parameters();
  const auto pb = b->parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i]->name, pb[i]->name);
    for (std::size_t j = 0; j < pa[i]->value.size(); ++j) {
      EXPECT_FLOAT_EQ(pa[i]->value[j], pb[i]->value[j]);
    }
  }
}

TEST(Zoo, RejectsBadImageSize) {
  ZooConfig cfg = test_cfg();
  cfg.image_size = 10;  // not divisible by 8
  EXPECT_THROW(build_vgg8_lite(cfg, plain_conv_unit), std::runtime_error);
}

TEST(Zoo, WidthScalesParameterCount) {
  ZooConfig narrow = test_cfg();
  ZooConfig wide = test_cfg();
  wide.base_width = 8;
  LayerPtr a = build_vgg8_lite(narrow, plain_conv_unit);
  LayerPtr b = build_vgg8_lite(wide, plain_conv_unit);
  EXPECT_GT(parameter_count(*b), 3 * parameter_count(*a));
}

}  // namespace
}  // namespace yoloc
