// Deterministic fault-injection coverage (macro/fault_model.*) and the
// serving resilience layer built on it (serve/resilience.*): fixed-seed
// fault patterns replay bit-exactly, the legacy and packed MVM paths
// stay bit-identical under faults, dormant faults cost nothing and
// change nothing, plans round-trip fault configs + canary suites
// (format v2), and the scheduler's canary -> breaker -> shed -> recover
// pipeline works end to end. `ctest -L fault` selects this suite.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/macro_engine.hpp"
#include "nn/activations.hpp"
#include "nn/container.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "runtime/deployment_plan.hpp"
#include "runtime/execution_context.hpp"
#include "runtime/plan_serde.hpp"
#include "serve/request.hpp"
#include "serve/resilience.hpp"
#include "serve/scheduler.hpp"
#include "tensor/ops.hpp"

namespace yoloc {
namespace {

using std::chrono::milliseconds;

const bool g_env_pinned = [] {
  setenv("YOLOC_THREADS", "4", /*overwrite=*/1);
  return true;
}();

FaultModelConfig heavy_faults(std::uint64_t seed = 11) {
  FaultModelConfig f;
  f.seed = seed;
  f.stuck_at_zero_rate = 0.02;
  f.stuck_at_one_rate = 0.02;
  f.transient_flip_rate = 0.001;
  f.adc_offset_max = 1.5;
  f.adc_gain_max = 0.05;
  return f;
}

MacroConfig faulted_rom(const FaultModelConfig& faults) {
  MacroConfig cfg = default_rom_macro();
  cfg.bitline.sigma_cell = 0.0;
  cfg.adc.noise_sigma_v = 0.0;
  cfg.faults = faults;
  return cfg;
}

std::vector<std::int8_t> random_weights(int m, int k, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int8_t> w(static_cast<std::size_t>(m) * k);
  for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  return w;
}

std::vector<std::uint8_t> random_acts(int k, int p, std::uint64_t seed) {
  Rng rng(seed ^ 0x1234);
  std::vector<std::uint8_t> x(static_cast<std::size_t>(k) * p);
  for (auto& v : x) v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return x;
}

/// One engine run (legacy or packed) over a fixed workload.
std::vector<std::int32_t> run_engine(const MacroConfig& cfg,
                                     MacroMvmEngine::Mode mode, bool packed,
                                     int m, int k, int p, std::uint64_t seed,
                                     MacroRunStats* stats_out = nullptr) {
  const CimMacro macro(cfg);
  PackedWeightsCache cache;
  const MacroMvmEngine engine(macro, mode, packed ? &cache : nullptr);
  const auto w = random_weights(m, k, seed);
  const auto x = random_acts(k, p, seed);
  std::vector<std::int32_t> y(static_cast<std::size_t>(m) * p);
  Rng rng(seed);
  MacroRunStats stats;
  MvmScratch scratch;
  MvmSession session{&rng, &stats, &scratch};
  engine.mvm_batch(w.data(), m, k, x.data(), p, y.data(), session);
  if (stats_out != nullptr) *stats_out = stats;
  return y;
}

// ------------------------------------------------- fault-model physics

TEST(FaultModel, FixedSeedReplaysBitExactly) {
  const MacroConfig cfg = faulted_rom(heavy_faults());
  const auto a = run_engine(cfg, MacroMvmEngine::Mode::kAnalog, false, 6, 96,
                            3, 5);
  const auto b = run_engine(cfg, MacroMvmEngine::Mode::kAnalog, false, 6, 96,
                            3, 5);
  EXPECT_EQ(a, b) << "same seed, same fault pattern, same outputs";
}

TEST(FaultModel, SeedRedrawsThePattern) {
  const auto a = run_engine(faulted_rom(heavy_faults(11)),
                            MacroMvmEngine::Mode::kAnalog, false, 6, 96, 3, 5);
  const auto b = run_engine(faulted_rom(heavy_faults(12)),
                            MacroMvmEngine::Mode::kAnalog, false, 6, 96, 3, 5);
  EXPECT_NE(a, b) << "a different fault seed must redraw the fault map";
}

TEST(FaultModel, LegacyAndPackedPathsIdenticalUnderFaults) {
  // The determinism contract extends to faults: the packed fast path
  // must see the SAME stuck cells, drifted columns and transient flips
  // as the per-call path (fault coordinates are tile-local).
  const MacroConfig cfg = faulted_rom(heavy_faults());
  for (const int k : {96, 200}) {  // single-tile and multi-tile
    MacroRunStats stats_legacy, stats_packed;
    const auto legacy = run_engine(cfg, MacroMvmEngine::Mode::kAnalog, false,
                                   6, k, 3, 5, &stats_legacy);
    const auto packed = run_engine(cfg, MacroMvmEngine::Mode::kAnalog, true,
                                   6, k, 3, 5, &stats_packed);
    EXPECT_EQ(legacy, packed) << "k=" << k;
    EXPECT_EQ(stats_legacy.array.adc_conversions,
              stats_packed.array.adc_conversions);
    EXPECT_EQ(stats_legacy.array.adc_energy_pj,
              stats_packed.array.adc_energy_pj);
  }
}

TEST(FaultModel, DormantFaultsAreInvisible) {
  FaultModelConfig dormant = heavy_faults();
  dormant.start_active = false;
  const auto clean = run_engine(faulted_rom(FaultModelConfig{}),
                                MacroMvmEngine::Mode::kAnalog, false, 6, 96,
                                3, 5);
  const auto faulted_off = run_engine(faulted_rom(dormant),
                                      MacroMvmEngine::Mode::kAnalog, false, 6,
                                      96, 3, 5);
  EXPECT_EQ(clean, faulted_off)
      << "inactive faults must be bit-invisible, not just small";
}

TEST(FaultModel, SetActiveTogglesAtRuntime) {
  const CimMacro macro(faulted_rom(heavy_faults()));
  ASSERT_NE(macro.fault_model(), nullptr);
  PackedWeightsCache cache;
  const MacroMvmEngine engine(macro, MacroMvmEngine::Mode::kAnalog, &cache);
  const auto w = random_weights(6, 96, 5);
  const auto x = random_acts(96, 2, 5);
  const auto run = [&] {
    std::vector<std::int32_t> y(12);
    Rng rng(5);
    MacroRunStats stats;
    MvmScratch scratch;
    MvmSession session{&rng, &stats, &scratch};
    engine.mvm_batch(w.data(), 6, 96, x.data(), 2, y.data(), session);
    return y;
  };
  const auto faulted = run();
  macro.fault_model()->set_active(false);
  const auto healthy = run();
  macro.fault_model()->set_active(true);
  EXPECT_NE(faulted, healthy) << "these rates must actually perturb reads";
  EXPECT_EQ(run(), faulted) << "re-activating restores the same pattern";
}

// --------------------------------------------- plans, serde, canaries

LayerPtr tiny_model(std::uint64_t seed) {
  Rng rng(seed);
  auto backbone = std::make_unique<Sequential>("backbone");
  backbone->add(std::make_unique<Conv2d>(3, 4, 3, 1, 1, true, rng, "b.c1"));
  backbone->add(std::make_unique<ReLU>());
  backbone->add(std::make_unique<MaxPool2d>(2));
  auto net = std::make_unique<Sequential>("net");
  net->add(std::move(backbone));
  net->add(std::make_unique<GlobalAvgPool>());
  net->add(std::make_unique<Linear>(4, 5, true, rng, "head.fc"));
  for (Parameter* p : net->parameters()) {
    p->rom_resident = p->name.find("b.c") != std::string::npos;
  }
  return net;
}

std::unique_ptr<DeploymentPlan> tiny_plan(const FaultModelConfig& rom_faults) {
  Rng data_rng(33);
  Tensor calib = Tensor::rand_uniform({8, 3, 8, 8}, data_rng, 0.0f, 1.0f);
  DeploymentOptions options;
  options.mode = MacroMvmEngine::Mode::kAnalog;
  options.rom_macro.faults = rom_faults;
  return std::make_unique<DeploymentPlan>(tiny_model(21), calib,
                                          std::move(options));
}

TEST(PlanSerde, V2RoundTripsFaultConfigAndCanaries) {
  auto plan = tiny_plan(heavy_faults());
  record_canaries(*plan, 3, {1, 3, 8, 8});
  ASSERT_EQ(plan->canaries().probes.size(), 3u);

  const auto path =
      (std::filesystem::temp_directory_path() /
       ("test_fault_v2." + std::to_string(::getpid()) + kPlanFileExtension))
          .string();
  save_plan(*plan, path);
  auto loaded = load_plan(path);
  std::filesystem::remove(path);

  EXPECT_EQ(loaded->options().rom_macro.faults, plan->options().rom_macro.faults);
  ASSERT_EQ(loaded->canaries().probes.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const CanaryProbe& orig = plan->canaries().probes[i];
    const CanaryProbe& back = loaded->canaries().probes[i];
    EXPECT_EQ(orig.seed, back.seed);
    ASSERT_TRUE(same_shape(orig.golden, back.golden));
    EXPECT_EQ(std::memcmp(orig.golden.data(), back.golden.data(),
                          orig.golden.size() * sizeof(float)),
              0);
  }

  // The loaded plan serves bit-identically — fault pattern included.
  Rng rng(42);
  const Tensor probe = Tensor::rand_uniform({2, 3, 8, 8}, rng, 0.0f, 1.0f);
  ExecutionContext a(*plan, 2024), b(*loaded, 2024);
  const Tensor ya = a.infer(probe), yb = b.infer(probe);
  ASSERT_TRUE(same_shape(ya, yb));
  EXPECT_EQ(
      std::memcmp(ya.data(), yb.data(), ya.size() * sizeof(float)), 0);
}

TEST(PlanSerde, CanaryGoldensAreRecordedHealthy) {
  // Even when the plan's faults START active, golden logits must
  // describe the healthy device — otherwise a canary would "pass" on
  // faulted hardware and the breaker would never trip.
  auto plan = tiny_plan(heavy_faults());
  ASSERT_TRUE(plan->rom_macro().fault_model()->active());
  record_canaries(*plan, 2, {1, 3, 8, 8});
  ASSERT_TRUE(plan->rom_macro().fault_model()->active())
      << "recording must restore the active flag";

  const CanaryProbe& probe = plan->canaries().probes[0];
  plan->rom_macro().fault_model()->set_active(false);
  ExecutionContext healthy_ctx(*plan, probe.seed);
  const Tensor healthy = healthy_ctx.infer(probe.input);
  EXPECT_EQ(std::memcmp(healthy.data(), probe.golden.data(),
                        healthy.size() * sizeof(float)),
            0)
      << "golden == healthy output";

  plan->rom_macro().fault_model()->set_active(true);
  ExecutionContext faulted_ctx(*plan, probe.seed);
  const Tensor faulted = faulted_ctx.infer(probe.input);
  EXPECT_NE(std::memcmp(faulted.data(), probe.golden.data(),
                        faulted.size() * sizeof(float)),
            0)
      << "these fault rates must be canary-detectable";
}

TEST(PlanSerde, CanaryCountValidated) {
  auto plan = tiny_plan(FaultModelConfig{});
  EXPECT_THROW(record_canaries(*plan, 0, {1, 3, 8, 8}), std::runtime_error);
  EXPECT_THROW(record_canaries(*plan, 65, {1, 3, 8, 8}), std::runtime_error);
  EXPECT_THROW(record_canaries(*plan, 2, {2, 3, 8, 8}), std::runtime_error);
}

// ------------------------------------------------- ResilienceManager

TEST(ResilienceManager, BreakerTripsAndRecoversOnThresholds) {
  ResilienceOptions opt;
  opt.breaker_fail_threshold = 2;
  opt.breaker_recover_threshold = 3;
  ResilienceManager res(2, opt);
  EXPECT_EQ(res.healthy_workers(), 2);

  res.record_canary(0, false);
  EXPECT_TRUE(res.worker_healthy(0)) << "one fail is below the threshold";
  res.record_canary(0, true);  // pass resets the consecutive-fail count
  res.record_canary(0, false);
  EXPECT_TRUE(res.worker_healthy(0));
  res.record_canary(0, false);
  EXPECT_FALSE(res.worker_healthy(0)) << "2 consecutive fails trip";
  EXPECT_EQ(res.healthy_workers(), 1);

  res.record_canary(0, true);
  res.record_canary(0, true);
  EXPECT_FALSE(res.worker_healthy(0));
  res.record_canary(0, false);  // resets the recovery streak
  res.record_canary(0, true);
  res.record_canary(0, true);
  res.record_canary(0, true);
  EXPECT_TRUE(res.worker_healthy(0)) << "3 consecutive passes recover";

  const ResilienceSnapshot snap = res.snapshot();
  EXPECT_EQ(snap.breaker_trips, 1u);
  EXPECT_EQ(snap.breaker_recoveries, 1u);
  EXPECT_FALSE(snap.degraded);
}

TEST(ResilienceManager, QuarantineAndShedAccounting) {
  ResilienceManager res(4, ResilienceOptions{});
  res.force_trip(1);
  res.record_watchdog_fire(2);
  EXPECT_EQ(res.healthy_workers(), 2);
  EXPECT_DOUBLE_EQ(res.healthy_fraction(), 0.5);
  res.record_shed(Priority::kBestEffort);
  res.record_shed(Priority::kBestEffort);
  res.record_shed(Priority::kBatch);

  ResilienceSnapshot snap = res.snapshot();
  EXPECT_TRUE(snap.degraded);
  EXPECT_EQ(snap.breaker_open_workers, 1);
  EXPECT_EQ(snap.quarantined_workers, 1);
  EXPECT_EQ(snap.shed_requests[static_cast<int>(Priority::kBestEffort)], 2u);
  EXPECT_EQ(snap.shed_requests[static_cast<int>(Priority::kBatch)], 1u);
  EXPECT_NE(snap.degraded_reason.find("2/4"), std::string::npos)
      << snap.degraded_reason;

  res.clear_quarantine(2);
  EXPECT_EQ(res.healthy_workers(), 3);
  snap = res.snapshot();
  EXPECT_EQ(snap.quarantined_workers, 0);
  EXPECT_TRUE(snap.degraded) << "worker 1's breaker is still open";
}

// --------------------------------------------------- scheduler chaos

/// Poll `pred` at 2 ms until it holds or ~5 s elapse.
template <typename Pred>
bool eventually(Pred pred) {
  for (int i = 0; i < 2500; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

TEST(SchedulerChaos, CanaryTripsBreakerShedsAndRecovers) {
  auto plan = tiny_plan([] {
    FaultModelConfig f = heavy_faults();
    f.start_active = false;  // drill: healthy at start
    return f;
  }());
  record_canaries(*plan, 2, {1, 3, 8, 8});

  SchedulerOptions options;
  options.workers = 2;
  options.max_microbatch = 1;
  options.resilience.canary_period = milliseconds(5);
  options.resilience.breaker_fail_threshold = 2;
  options.resilience.breaker_recover_threshold = 2;
  options.resilience.shed_best_effort_below = 0.75;
  options.resilience.shed_batch_below = 0.25;
  Scheduler scheduler(*plan, options);

  // Healthy phase: canaries pass, traffic serves, nothing is shed.
  Rng rng(3);
  const Tensor input = Tensor::rand_uniform({1, 3, 8, 8}, rng, 0.0f, 1.0f);
  EXPECT_NO_THROW(scheduler.submit(input, {Priority::kBestEffort}).get());
  ASSERT_TRUE(eventually(
      [&] { return scheduler.resilience_snapshot().canary_pass >= 2; }));
  EXPECT_EQ(scheduler.resilience_snapshot().breaker_trips, 0u);

  // Inject the fault mid-flight: canaries diverge from the golden
  // logits, both breakers trip, healthy capacity collapses.
  plan->rom_macro().fault_model()->set_active(true);
  ASSERT_TRUE(eventually(
      [&] { return scheduler.resilience_snapshot().healthy_workers == 0; }));
  {
    const ResilienceSnapshot snap = scheduler.resilience_snapshot();
    EXPECT_GE(snap.canary_fail, 4u);
    EXPECT_GE(snap.breaker_trips, 2u);
    EXPECT_EQ(snap.breaker_open_workers, 2);
    EXPECT_TRUE(snap.degraded);
  }

  // Degraded mode: best-effort and batch admissions shed (healthy
  // fraction 0 < both thresholds); interactive is never shed — it
  // queues and waits for recovery.
  auto shed_be = scheduler.submit(input, {Priority::kBestEffort});
  EXPECT_THROW(shed_be.get(), ShedError);
  auto shed_batch = scheduler.submit(input, {Priority::kBatch});
  EXPECT_THROW(shed_batch.get(), ShedError);
  auto queued_interactive =
      scheduler.submit(input, {Priority::kInteractive});
  {
    const ResilienceSnapshot snap = scheduler.resilience_snapshot();
    EXPECT_GE(snap.shed_requests[static_cast<int>(Priority::kBestEffort)],
              1u);
    EXPECT_GE(snap.shed_requests[static_cast<int>(Priority::kBatch)], 1u);
    EXPECT_EQ(snap.shed_requests[static_cast<int>(Priority::kInteractive)],
              0u);
  }

  // Clear the fault: canaries pass again, breakers close, the queued
  // interactive request drains on a recovered worker.
  plan->rom_macro().fault_model()->set_active(false);
  ASSERT_TRUE(eventually(
      [&] { return scheduler.resilience_snapshot().healthy_workers == 2; }));
  EXPECT_GE(scheduler.resilience_snapshot().breaker_recoveries, 2u);
  EXPECT_NO_THROW(queued_interactive.get());
  EXPECT_NO_THROW(scheduler.submit(input, {Priority::kBestEffort}).get());
  EXPECT_FALSE(scheduler.resilience_snapshot().degraded);

  // Determinism through chaos: a served request is bit-identical to a
  // serial healthy run regardless of everything that just happened.
  scheduler.wait_idle();
  scheduler.shutdown();
}

TEST(SchedulerChaos, WatchdogFailsHungBatchAndRespawns) {
  auto plan = tiny_plan(FaultModelConfig{});

  std::mutex hang_mutex;
  std::condition_variable hang_cv;
  bool hang_armed = true;
  bool hung = false;  // a worker is currently blocked in the hook

  SchedulerOptions options;
  options.workers = 1;
  options.max_microbatch = 1;
  options.resilience.watchdog_timeout = milliseconds(30);
  options.worker_fault_hook = [&](int) {
    std::unique_lock lock(hang_mutex);
    if (!hang_armed) return;
    hang_armed = false;  // only the first batch hangs
    hung = true;
    hang_cv.notify_all();
    hang_cv.wait(lock, [&] { return !hung; });
  };
  Scheduler scheduler(*plan, options);

  Rng rng(3);
  const Tensor input = Tensor::rand_uniform({1, 3, 8, 8}, rng, 0.0f, 1.0f);
  auto victim = scheduler.submit(input);
  {
    std::unique_lock lock(hang_mutex);
    hang_cv.wait(lock, [&] { return hung; });
  }

  // The watchdog declares the batch hung: its future fails retriably
  // and the worker is quarantined.
  EXPECT_THROW(victim.get(), WorkerHungError);
  ASSERT_TRUE(eventually(
      [&] { return scheduler.resilience_snapshot().quarantined_workers == 1; }));
  EXPECT_GE(scheduler.resilience_snapshot().watchdog_fires, 1u);
  EXPECT_TRUE(scheduler.resilience_snapshot().degraded);

  // A request submitted while the only worker is quarantined just
  // queues (interactive is never shed and no thresholds are set).
  auto queued = scheduler.submit(input, {Priority::kInteractive});

  // Release the hook: the late worker discovers its batch was settled,
  // clears its quarantine ("respawn") and drains the queue.
  {
    std::lock_guard lock(hang_mutex);
    hung = false;
  }
  hang_cv.notify_all();
  EXPECT_NO_THROW(queued.get());
  ASSERT_TRUE(eventually(
      [&] { return scheduler.resilience_snapshot().quarantined_workers == 0; }));
  EXPECT_FALSE(scheduler.resilience_snapshot().degraded);
  const MetricsSnapshot metrics = scheduler.metrics_snapshot();
  EXPECT_GE(metrics.classes[static_cast<int>(Priority::kBatch)]
                .failed_requests,
            1u)
      << "the hung batch's request counts as failed";
  scheduler.shutdown();
}

TEST(SchedulerChaos, ResilienceMetricsExported) {
  auto plan = tiny_plan(FaultModelConfig{});
  SchedulerOptions options;
  options.workers = 2;
  Scheduler scheduler(*plan, options);
  scheduler.trip_breaker(0);

  const MetricsSnapshot snap = scheduler.metrics_snapshot();
  EXPECT_EQ(snap.resilience.healthy_workers, 1);
  EXPECT_EQ(snap.resilience.breaker_open_workers, 1);
  const std::string prom = snap.to_prometheus();
  for (const char* name :
       {"yoloc_resilience_healthy_workers",
        "yoloc_resilience_breaker_open_workers",
        "yoloc_resilience_quarantined_workers",
        "yoloc_resilience_canary_pass_total",
        "yoloc_resilience_canary_fail_total",
        "yoloc_resilience_watchdog_fires_total",
        "yoloc_resilience_breaker_trips_total",
        "yoloc_resilience_breaker_recoveries_total",
        "yoloc_resilience_shed_requests_total",
        "yoloc_resilience_degraded"}) {
    EXPECT_NE(prom.find(name), std::string::npos) << name;
  }
  EXPECT_NE(prom.find("yoloc_resilience_healthy_workers 1"),
            std::string::npos);
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"resilience\":{"), std::string::npos);
  EXPECT_NE(json.find("\"degraded\":true"), std::string::npos);
  EXPECT_NE(json.find("\"degraded_reason\":\"1/2 workers unhealthy"),
            std::string::npos)
      << json;
  scheduler.shutdown();
}

}  // namespace
}  // namespace yoloc
