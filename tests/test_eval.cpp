// Detection-metric tests: IoU, decoding, NMS, AP/mAP on hand-built
// precision-recall scenarios.

#include <gtest/gtest.h>

#include "eval/detection_metrics.hpp"

namespace yoloc {
namespace {

DetBox make_det(float cx, float cy, float w, float h, int cls, float score) {
  DetBox b;
  b.cx = cx;
  b.cy = cy;
  b.w = w;
  b.h = h;
  b.cls = cls;
  b.score = score;
  return b;
}

GtBox make_gt(float cx, float cy, float w, float h, int cls) {
  GtBox b;
  b.cx = cx;
  b.cy = cy;
  b.w = w;
  b.h = h;
  b.cls = cls;
  return b;
}

TEST(Iou, IdenticalBoxesGiveOne) {
  EXPECT_NEAR(box_iou(0.5f, 0.5f, 0.2f, 0.2f, 0.5f, 0.5f, 0.2f, 0.2f), 1.0f,
              1e-6);
}

TEST(Iou, DisjointBoxesGiveZero) {
  EXPECT_FLOAT_EQ(box_iou(0.2f, 0.2f, 0.1f, 0.1f, 0.8f, 0.8f, 0.1f, 0.1f),
                  0.0f);
}

TEST(Iou, HalfOverlap) {
  // Two unit squares offset by half a side: intersection 0.5, union 1.5.
  EXPECT_NEAR(box_iou(0.0f, 0.0f, 1.0f, 1.0f, 0.5f, 0.0f, 1.0f, 1.0f),
              1.0f / 3.0f, 1e-6);
}

TEST(Nms, SuppressesSameClassOverlaps) {
  std::vector<DetBox> boxes{
      make_det(0.5f, 0.5f, 0.2f, 0.2f, 0, 0.9f),
      make_det(0.52f, 0.5f, 0.2f, 0.2f, 0, 0.7f),  // overlaps the first
      make_det(0.2f, 0.2f, 0.1f, 0.1f, 0, 0.8f),
  };
  const auto kept = nms(boxes, 0.5f);
  EXPECT_EQ(kept.size(), 2u);
  EXPECT_FLOAT_EQ(kept[0].score, 0.9f);
}

TEST(Nms, KeepsDifferentClassOverlaps) {
  std::vector<DetBox> boxes{
      make_det(0.5f, 0.5f, 0.2f, 0.2f, 0, 0.9f),
      make_det(0.5f, 0.5f, 0.2f, 0.2f, 1, 0.8f),
  };
  EXPECT_EQ(nms(boxes, 0.5f).size(), 2u);
}

TEST(Ap, PerfectDetectionsGiveOne) {
  std::vector<std::vector<GtBox>> gt{{make_gt(0.5f, 0.5f, 0.2f, 0.2f, 0)}};
  std::vector<std::vector<DetBox>> det{
      {make_det(0.5f, 0.5f, 0.2f, 0.2f, 0, 0.9f)}};
  EXPECT_NEAR(average_precision(det, gt, 0), 1.0, 1e-9);
}

TEST(Ap, MissedGtHalvesRecall) {
  std::vector<std::vector<GtBox>> gt{{
      make_gt(0.3f, 0.3f, 0.2f, 0.2f, 0),
      make_gt(0.7f, 0.7f, 0.2f, 0.2f, 0),
  }};
  std::vector<std::vector<DetBox>> det{
      {make_det(0.3f, 0.3f, 0.2f, 0.2f, 0, 0.9f)}};
  EXPECT_NEAR(average_precision(det, gt, 0), 0.5, 1e-9);
}

TEST(Ap, FalsePositiveBeforeTruePositiveLowersAp) {
  std::vector<std::vector<GtBox>> gt{{make_gt(0.5f, 0.5f, 0.2f, 0.2f, 0)}};
  // High-score FP, lower-score TP: precision at recall 1 is 0.5.
  std::vector<std::vector<DetBox>> det{{
      make_det(0.1f, 0.1f, 0.05f, 0.05f, 0, 0.95f),
      make_det(0.5f, 0.5f, 0.2f, 0.2f, 0, 0.5f),
  }};
  EXPECT_NEAR(average_precision(det, gt, 0), 0.5, 1e-9);
}

TEST(Ap, DuplicateDetectionCountsOnce) {
  std::vector<std::vector<GtBox>> gt{{make_gt(0.5f, 0.5f, 0.2f, 0.2f, 0)}};
  std::vector<std::vector<DetBox>> det{{
      make_det(0.5f, 0.5f, 0.2f, 0.2f, 0, 0.9f),
      make_det(0.5f, 0.5f, 0.2f, 0.2f, 0, 0.8f),  // duplicate
  }};
  // Recall maxes at 1 with precision envelope 1 up to recall 1.
  EXPECT_NEAR(average_precision(det, gt, 0), 1.0, 1e-9);
}

TEST(Ap, AbsentClassReturnsSentinel) {
  std::vector<std::vector<GtBox>> gt(1);
  std::vector<std::vector<DetBox>> det(1);
  EXPECT_LT(average_precision(det, gt, 0), 0.0);
}

TEST(Map, AveragesAcrossPresentClasses) {
  std::vector<std::vector<GtBox>> gt{{
      make_gt(0.3f, 0.3f, 0.2f, 0.2f, 0),
      make_gt(0.7f, 0.7f, 0.2f, 0.2f, 1),
  }};
  std::vector<std::vector<DetBox>> det{{
      make_det(0.3f, 0.3f, 0.2f, 0.2f, 0, 0.9f),  // class 0 perfect
      // class 1 missed
  }};
  // AP(0)=1, AP(1)=0, classes 2/3 absent -> mAP = 0.5.
  EXPECT_NEAR(mean_average_precision(det, gt, 4), 0.5, 1e-9);
}

TEST(Map, InUnitInterval) {
  std::vector<std::vector<GtBox>> gt{{make_gt(0.5f, 0.5f, 0.3f, 0.3f, 2)}};
  std::vector<std::vector<DetBox>> det{{
      make_det(0.45f, 0.5f, 0.3f, 0.3f, 2, 0.6f),
      make_det(0.2f, 0.2f, 0.1f, 0.1f, 1, 0.7f),
  }};
  const double map = mean_average_precision(det, gt, 4);
  EXPECT_GE(map, 0.0);
  EXPECT_LE(map, 1.0);
}

TEST(Decode, ReadsGridChannels) {
  // One-cell grid, 2 classes: channels [tx,ty,tw,th,obj,c0,c1].
  Tensor pred({1, 7, 1, 1});
  pred.at4(0, 4, 0, 0) = 5.0f;   // high objectness
  pred.at4(0, 5, 0, 0) = 3.0f;   // class 0 wins
  const auto boxes = decode_grid(pred, 0, 2, 0.3f);
  ASSERT_EQ(boxes.size(), 1u);
  EXPECT_EQ(boxes[0].cls, 0);
  EXPECT_NEAR(boxes[0].cx, 0.5f, 1e-5);  // sigmoid(0) = 0.5 within cell 0
  EXPECT_GT(boxes[0].score, 0.5f);
}

TEST(Decode, ThresholdSuppressesLowObjectness) {
  Tensor pred({1, 7, 2, 2});  // all-zero logits: obj = 0.5 everywhere
  EXPECT_EQ(decode_grid(pred, 0, 2, 0.6f).size(), 0u);
  EXPECT_EQ(decode_grid(pred, 0, 2, 0.4f).size(), 4u);
}

TEST(Map, ImprovesWithBetterPredictions) {
  std::vector<std::vector<GtBox>> gt{{make_gt(0.5f, 0.5f, 0.3f, 0.3f, 0)}};
  std::vector<std::vector<DetBox>> bad{
      {make_det(0.8f, 0.8f, 0.1f, 0.1f, 0, 0.9f)}};
  std::vector<std::vector<DetBox>> good{
      {make_det(0.5f, 0.5f, 0.3f, 0.3f, 0, 0.9f)}};
  EXPECT_GT(mean_average_precision(good, gt, 1),
            mean_average_precision(bad, gt, 1));
}

}  // namespace
}  // namespace yoloc
