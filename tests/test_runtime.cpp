// Runtime concurrency tests: the deploy/serve split must make a shared
// DeploymentPlan fully reentrant — N threads with per-context seeds
// produce bit-identical outputs and stats to serial execution — and the
// InferenceServer must preserve that determinism through its queue.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "core/yoloc_framework.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/container.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "runtime/deployment_plan.hpp"
#include "runtime/execution_context.hpp"
#include "runtime/inference_server.hpp"
#include "tensor/ops.hpp"

namespace yoloc {
namespace {

// Pin the worker pool before anything in this binary touches it: the
// YOLOC_THREADS override keeps the concurrency paths exercised even on
// single-core CI boxes (and doubles as the env-override integration
// check below).
const bool g_env_pinned = [] {
  setenv("YOLOC_THREADS", "4", /*overwrite=*/1);
  return true;
}();

LayerPtr make_model(std::uint64_t seed) {
  Rng rng(seed);
  auto backbone = std::make_unique<Sequential>("backbone");
  backbone->add(std::make_unique<Conv2d>(3, 4, 3, 1, 1, true, rng, "b.c1"));
  backbone->add(std::make_unique<ReLU>());
  backbone->add(std::make_unique<MaxPool2d>(2));
  backbone->add(std::make_unique<Conv2d>(4, 6, 3, 1, 1, true, rng, "b.c2"));
  backbone->add(std::make_unique<ReLU>());
  auto net = std::make_unique<Sequential>("net");
  net->add(std::move(backbone));
  net->add(std::make_unique<GlobalAvgPool>());
  net->add(std::make_unique<Linear>(6, 5, true, rng, "head.fc"));
  // Backbone in ROM, head in SRAM, so both engines see traffic.
  for (Parameter* p : net->parameters()) {
    p->rom_resident = p->name.find("b.c") != std::string::npos;
  }
  return net;
}

std::unique_ptr<DeploymentPlan> make_plan(MacroMvmEngine::Mode mode,
                                          std::uint64_t model_seed = 21) {
  LayerPtr net = make_model(model_seed);
  Rng data_rng(33);
  Tensor calib = Tensor::rand_uniform({8, 3, 8, 8}, data_rng, 0.0f, 1.0f);
  DeploymentOptions options;
  options.mode = mode;
  return std::make_unique<DeploymentPlan>(std::move(net), calib,
                                          std::move(options));
}

std::vector<Tensor> make_requests(int count) {
  Rng rng(55);
  std::vector<Tensor> xs;
  xs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    xs.push_back(Tensor::rand_uniform({1, 3, 8, 8}, rng, 0.0f, 1.0f));
  }
  return xs;
}

::testing::AssertionResult bit_identical(const Tensor& a, const Tensor& b) {
  if (!same_shape(a, b)) {
    return ::testing::AssertionFailure() << "shape mismatch";
  }
  if (std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) != 0) {
    return ::testing::AssertionFailure()
           << "payload differs (max |a-b| = " << max_abs_diff(a, b) << ")";
  }
  return ::testing::AssertionSuccess();
}

void expect_stats_identical(const MacroRunStats& a, const MacroRunStats& b) {
  EXPECT_EQ(a.macs, b.macs);
  EXPECT_EQ(a.macro_ops, b.macro_ops);
  EXPECT_EQ(a.energy_pj(), b.energy_pj());  // bit-identical double sums
  EXPECT_EQ(a.latency_ns, b.latency_ns);
}

TEST(ParallelWorkers, EnvOverrideApplies) {
  EXPECT_EQ(parallel_workers(), 4u);
}

TEST(ParallelWorkers, ResolutionClampsAndFallsBack) {
  EXPECT_EQ(resolve_worker_count(nullptr, 7u), 7u);
  EXPECT_EQ(resolve_worker_count("", 7u), 7u);
  EXPECT_EQ(resolve_worker_count("abc", 5u), 5u);
  EXPECT_EQ(resolve_worker_count("12abc", 5u), 5u);
  EXPECT_EQ(resolve_worker_count("3", 1u), 3u);
  EXPECT_EQ(resolve_worker_count("0", 5u), 1u);
  EXPECT_EQ(resolve_worker_count("-2", 5u), 1u);
  EXPECT_EQ(resolve_worker_count("999", 5u), 64u);
}

TEST(Runtime, ConcurrentContextsBitIdenticalToSerial) {
  auto plan = make_plan(MacroMvmEngine::Mode::kAnalog);
  const int kRequests = 8;
  const auto xs = make_requests(kRequests);
  const auto seed_of = [](int i) { return 100u + static_cast<unsigned>(i); };

  // Serial reference: one fresh context per request.
  std::vector<Tensor> serial_out(kRequests);
  MacroRunStats serial_rom, serial_sram;
  for (int i = 0; i < kRequests; ++i) {
    ExecutionContext ctx(*plan, seed_of(i));
    serial_out[static_cast<std::size_t>(i)] =
        ctx.infer(xs[static_cast<std::size_t>(i)]);
    serial_rom.accumulate(ctx.rom_stats());
    serial_sram.accumulate(ctx.sram_stats());
  }
  EXPECT_GT(serial_rom.macs, 0u);
  EXPECT_GT(serial_sram.macs, 0u);

  // Concurrent: N threads share the plan, each with its own context.
  std::vector<Tensor> parallel_out(kRequests);
  std::vector<MacroRunStats> rom_stats(kRequests), sram_stats(kRequests);
  std::vector<std::thread> threads;
  threads.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    threads.emplace_back([&, i] {
      ExecutionContext ctx(*plan, seed_of(i));
      parallel_out[static_cast<std::size_t>(i)] =
          ctx.infer(xs[static_cast<std::size_t>(i)]);
      rom_stats[static_cast<std::size_t>(i)] = ctx.rom_stats();
      sram_stats[static_cast<std::size_t>(i)] = ctx.sram_stats();
    });
  }
  for (auto& t : threads) t.join();

  for (int i = 0; i < kRequests; ++i) {
    EXPECT_TRUE(bit_identical(serial_out[static_cast<std::size_t>(i)],
                              parallel_out[static_cast<std::size_t>(i)]))
        << "request " << i;
  }
  // Merged in request order, the stats sums are bit-identical too.
  MacroRunStats merged_rom, merged_sram;
  for (int i = 0; i < kRequests; ++i) {
    merged_rom.accumulate(rom_stats[static_cast<std::size_t>(i)]);
    merged_sram.accumulate(sram_stats[static_cast<std::size_t>(i)]);
  }
  expect_stats_identical(serial_rom, merged_rom);
  expect_stats_identical(serial_sram, merged_sram);
}

TEST(Runtime, ScratchReuseIsDeterministic) {
  auto plan = make_plan(MacroMvmEngine::Mode::kAnalog);
  const auto xs = make_requests(1);
  ExecutionContext ctx(*plan, 9001);
  Tensor first = ctx.infer(xs[0]);
  ctx.reseed(9001);
  Tensor second = ctx.infer(xs[0]);  // warm scratch, same stream
  EXPECT_TRUE(bit_identical(first, second));
}

TEST(Runtime, PackedPlanMatchesLegacyEnginesAcrossResidency) {
  // The plan executes through cache-backed (packed) engines. Re-running
  // the same lowered graph through cache-free engines — the pre-packing
  // legacy path — with identically seeded noise streams must produce
  // bit-identical outputs and stats, across mixed ROM/SRAM residency.
  for (const auto mode :
       {MacroMvmEngine::Mode::kAnalog, MacroMvmEngine::Mode::kExactCost}) {
    auto plan = make_plan(mode);
    EXPECT_GT(plan->packed_weight_bytes(), 0u);
    EXPECT_GT(plan->rom_packed().entries(), 0u);   // b.c1 / b.c2
    EXPECT_GT(plan->sram_packed().entries(), 0u);  // head.fc
    const auto xs = make_requests(1);

    const std::uint64_t seed = 7777;
    ExecutionContext ctx(*plan, seed);
    const Tensor via_packed = ctx.infer(xs[0]);

    // Legacy engines over the same macros, no packed cache; sessions
    // seeded exactly like ExecutionContext wires them (the SRAM stream
    // is salted with 0x5A5A).
    const MacroMvmEngine legacy_rom(plan->rom_macro(), mode);
    const MacroMvmEngine legacy_sram(plan->sram_macro(), mode);
    Rng rom_rng(seed);
    Rng sram_rng(seed ^ 0x5A5A);
    MacroRunStats rom_stats, sram_stats;
    MvmScratch scratch;
    MvmBinding binding;
    binding.slot(EngineKind::kRom) = {&legacy_rom,
                                      {&rom_rng, &rom_stats, &scratch}};
    binding.slot(EngineKind::kSram) = {&legacy_sram,
                                       {&sram_rng, &sram_stats, &scratch}};
    Tensor via_legacy;
    {
      MvmBinding::Scope scope(binding);
      via_legacy = plan->model().forward(xs[0], /*train=*/false);
    }

    EXPECT_TRUE(bit_identical(via_packed, via_legacy));
    expect_stats_identical(ctx.rom_stats(), rom_stats);
    expect_stats_identical(ctx.sram_stats(), sram_stats);
  }
}

TEST(Runtime, FacadeMatchesBareRuntime) {
  Rng data_rng(33);
  Tensor calib = Tensor::rand_uniform({8, 3, 8, 8}, data_rng, 0.0f, 1.0f);
  FrameworkOptions fw_options;
  fw_options.noise_seed = 4242;
  YolocFramework framework(make_model(21), calib, fw_options);

  auto plan = make_plan(MacroMvmEngine::Mode::kAnalog);
  ExecutionContext ctx(*plan, 4242);

  const auto xs = make_requests(1);
  Tensor via_facade = framework.infer(xs[0]);
  Tensor via_runtime = ctx.infer(xs[0]);
  EXPECT_TRUE(bit_identical(via_facade, via_runtime));
  EXPECT_EQ(framework.total_energy_pj(), ctx.total_energy_pj());
  EXPECT_EQ(framework.quantized_layer_count(), 3);
}

TEST(Runtime, ServerMatchesSerialAtMicrobatchOne) {
  auto plan = make_plan(MacroMvmEngine::Mode::kAnalog);
  const int kRequests = 6;
  const auto xs = make_requests(kRequests);
  const std::uint64_t kSeed = 777;

  // Serial reference mirroring the server's per-request seeding rule.
  std::vector<Tensor> serial_out(kRequests);
  MacroRunStats serial_rom, serial_sram;
  for (int i = 0; i < kRequests; ++i) {
    ExecutionContext ctx(*plan, kSeed + static_cast<std::uint64_t>(i));
    serial_out[static_cast<std::size_t>(i)] =
        ctx.infer(xs[static_cast<std::size_t>(i)]);
    serial_rom.accumulate(ctx.rom_stats());
    serial_sram.accumulate(ctx.sram_stats());
  }

  ServerOptions options;
  options.workers = 3;
  options.max_microbatch = 1;
  options.noise_seed = kSeed;
  InferenceServer server(*plan, options);
  std::vector<std::future<Tensor>> futures;
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(server.submit(xs[static_cast<std::size_t>(i)]));
  }
  for (int i = 0; i < kRequests; ++i) {
    Tensor out = futures[static_cast<std::size_t>(i)].get();
    EXPECT_TRUE(bit_identical(serial_out[static_cast<std::size_t>(i)], out))
        << "request " << i;
  }
  server.wait_idle();
  expect_stats_identical(serial_rom, server.rom_stats());
  expect_stats_identical(serial_sram, server.sram_stats());

  const ServerMetrics metrics = server.metrics();
  EXPECT_EQ(metrics.requests, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(metrics.images, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(metrics.batches, static_cast<std::uint64_t>(kRequests));
}

TEST(Runtime, ServerMicrobatchingPreservesExactOutputs) {
  // Exact-cost mode is noise-free, so fusing requests into micro-batches
  // must not change any output bit.
  auto plan = make_plan(MacroMvmEngine::Mode::kExactCost);
  const int kImages = 8;
  Rng rng(91);
  Tensor images = Tensor::rand_uniform({kImages, 3, 8, 8}, rng, 0.0f, 1.0f);

  ExecutionContext ctx(*plan, 1);
  Tensor reference = ctx.infer(images);

  ServerOptions options;
  options.workers = 2;
  options.max_microbatch = 4;
  InferenceServer server(*plan, options);
  Tensor served = server.infer(images);
  EXPECT_TRUE(bit_identical(reference, served));

  server.wait_idle();
  const ServerMetrics metrics = server.metrics();
  EXPECT_EQ(metrics.images, static_cast<std::uint64_t>(kImages));
  EXPECT_LE(metrics.batches, metrics.requests);
  // Cost totals match the single-pass reference up to summation order.
  EXPECT_EQ(ctx.rom_stats().macs, server.rom_stats().macs);
  EXPECT_EQ(ctx.sram_stats().macs, server.sram_stats().macs);
  EXPECT_NEAR(ctx.total_energy_pj(), server.total_energy_pj(),
              1e-9 * ctx.total_energy_pj());
}

TEST(Runtime, ServerRejectsMalformedRequests) {
  auto plan = make_plan(MacroMvmEngine::Mode::kExactCost);
  InferenceServer server(*plan, {});
  Rng rng(3);
  Tensor bad = Tensor::rand_uniform({4, 4}, rng, 0.0f, 1.0f);
  EXPECT_THROW((void)server.submit(bad), std::runtime_error);

  // A request that passes admission but fails in the model (wrong channel
  // count) must surface through the future and count only as a failure —
  // served-image metrics and energy totals stay clean.
  Tensor wrong_channels = Tensor::rand_uniform({1, 5, 8, 8}, rng, 0.0f, 1.0f);
  auto future = server.submit(wrong_channels);
  EXPECT_THROW((void)future.get(), std::runtime_error);
  server.wait_idle();
  const ServerMetrics metrics = server.metrics();
  EXPECT_EQ(metrics.failed_requests, 1u);
  EXPECT_EQ(metrics.requests, 0u);
  EXPECT_EQ(metrics.images, 0u);
  EXPECT_EQ(server.total_energy_pj(), 0.0);
}

TEST(Runtime, SurvivingBatchNormIsEvalSafe) {
  // A BN that is not conv-adjacent survives fold_batchnorm and stays in
  // the deployed graph; its eval forward must not write layer state, so
  // concurrent contexts over the shared plan remain bit-identical.
  Rng rng(77);
  auto net = std::make_unique<Sequential>("net");
  net->add(std::make_unique<Conv2d>(3, 4, 3, 1, 1, true, rng, "c1"));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<BatchNorm2d>(4, 1e-5f, 0.1f, "bn"));
  net->add(std::make_unique<GlobalAvgPool>());
  net->add(std::make_unique<Linear>(4, 3, true, rng, "fc"));
  Tensor calib = Tensor::rand_uniform({4, 3, 8, 8}, rng, 0.0f, 1.0f);
  DeploymentOptions options;
  options.mode = MacroMvmEngine::Mode::kExactCost;
  DeploymentPlan plan(std::move(net), calib, std::move(options));

  const auto xs = make_requests(4);
  std::vector<Tensor> serial_out(4), parallel_out(4);
  for (int i = 0; i < 4; ++i) {
    ExecutionContext ctx(plan, 5);
    serial_out[static_cast<std::size_t>(i)] =
        ctx.infer(xs[static_cast<std::size_t>(i)]);
  }
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&, i] {
      ExecutionContext ctx(plan, 5);
      parallel_out[static_cast<std::size_t>(i)] =
          ctx.infer(xs[static_cast<std::size_t>(i)]);
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(bit_identical(serial_out[static_cast<std::size_t>(i)],
                              parallel_out[static_cast<std::size_t>(i)]))
        << "request " << i;
  }
}

TEST(Runtime, DeployWithoutContextThrows) {
  auto plan = make_plan(MacroMvmEngine::Mode::kExactCost);
  const auto xs = make_requests(1);
  // Kind-tagged quant layers have no direct engine binding: executing the
  // lowered model outside an ExecutionContext must fail loudly.
  EXPECT_THROW((void)plan->model().forward(xs[0], false),
               std::runtime_error);
}

TEST(ScratchKernels, MatmulIntoMatchesReference) {
  Rng rng(17);
  for (const auto& [m, k, n] : std::vector<std::array<int, 3>>{
           {1, 1, 1}, {3, 5, 2}, {33, 130, 257}, {64, 40, 12}}) {
    Tensor a = Tensor::randn({m, k}, rng);
    Tensor b = Tensor::randn({k, n}, rng);
    Tensor expected({m, n});
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        double acc = 0.0;
        for (int kk = 0; kk < k; ++kk) {
          acc += static_cast<double>(a.at2(i, kk)) * b.at2(kk, j);
        }
        expected.at2(i, j) = static_cast<float>(acc);
      }
    }
    // Stale, wrong-shaped scratch must be handled.
    Tensor out = Tensor::full({2, 2}, 123.0f);
    matmul_into(a, b, out);
    EXPECT_LT(max_abs_diff(expected, out), 2e-3f) << m << "x" << k << "x" << n;
    // Reuse with the right shape (stale payload) must also be exact.
    out.fill(-7.0f);
    matmul_into(a, b, out);
    EXPECT_LT(max_abs_diff(expected, out), 2e-3f);
  }
}

TEST(ScratchKernels, Im2colIntoReusesStorage) {
  Rng rng(19);
  Tensor x = Tensor::rand_uniform({2, 3, 6, 6}, rng, -1.0f, 1.0f);
  Tensor expected = im2col(x, 3, 3, 1, 1);
  Tensor cols = Tensor::full({4, 4}, 55.0f);  // wrong shape, stale payload
  im2col_into(x, 3, 3, 1, 1, cols);
  EXPECT_TRUE(bit_identical(expected, cols));
  const float* before = cols.data();
  im2col_into(x, 3, 3, 1, 1, cols);  // right shape: no reallocation
  EXPECT_EQ(before, cols.data());
  EXPECT_TRUE(bit_identical(expected, cols));
}

}  // namespace
}  // namespace yoloc
