// Memory-system model tests: cacti-lite scaling laws, DRAM streaming,
// chiplet link, NoC.

#include <gtest/gtest.h>

#include "memsys/chiplet_link.hpp"
#include "memsys/dram.hpp"
#include "memsys/noc.hpp"
#include "memsys/sram_buffer.hpp"

namespace yoloc {
namespace {

TEST(SramBuffer, EnergyScalesWithSqrtCapacity) {
  SramBufferParams small;
  small.capacity_kb = 64.0;
  SramBufferParams big = small;
  big.capacity_kb = 256.0;  // 4x capacity -> 2x energy per access
  const SramBuffer a(small);
  const SramBuffer b(big);
  EXPECT_NEAR(b.access_energy_pj(8.0) / a.access_energy_pj(8.0), 2.0, 1e-6);
  EXPECT_NEAR(b.access_latency_ns() / a.access_latency_ns(), 2.0, 1e-6);
}

TEST(SramBuffer, AnchorPoint) {
  SramBufferParams p;
  p.capacity_kb = 64.0;
  const SramBuffer buf(p);
  // 64-bit (8-byte) access at the anchor = anchor energy.
  EXPECT_NEAR(buf.access_energy_pj(8.0), p.anchor_energy_pj, 1e-9);
  EXPECT_NEAR(buf.access_latency_ns(), p.anchor_latency_ns, 1e-9);
}

TEST(SramBuffer, AreaAndLeakageGrowWithCapacity) {
  SramBufferParams small;
  small.capacity_kb = 32.0;
  SramBufferParams big = small;
  big.capacity_kb = 512.0;
  EXPECT_LT(SramBuffer(small).area_mm2(), SramBuffer(big).area_mm2());
  EXPECT_LT(SramBuffer(small).leakage_uw(), SramBuffer(big).leakage_uw());
}

TEST(SramBuffer, StreamTimeLinearInBytes) {
  SramBufferParams p;
  const SramBuffer buf(p);
  EXPECT_NEAR(buf.stream_time_ns(2048) / buf.stream_time_ns(1024), 2.0, 1e-9);
}

TEST(SramBuffer, RejectsZeroCapacity) {
  SramBufferParams p;
  p.capacity_kb = 0.0;
  EXPECT_THROW(SramBuffer{p}, std::runtime_error);
}

TEST(Dram, EnergyPerBitDominatesLargeTransfers) {
  DramParams p;
  const Dram dram(p);
  const double bytes = 1e6;
  const double energy = dram.stream_energy_pj(bytes);
  // At least the pure transfer energy.
  EXPECT_GE(energy, bytes * 8.0 * p.energy_pj_per_bit);
  // Background adds less than 50% at this size.
  EXPECT_LT(energy, 1.5 * bytes * 8.0 * p.energy_pj_per_bit);
}

TEST(Dram, ZeroBytesCostNothing) {
  const Dram dram(DramParams{});
  EXPECT_DOUBLE_EQ(dram.stream_energy_pj(0.0), 0.0);
  EXPECT_DOUBLE_EQ(dram.stream_time_ns(0.0), 0.0);
}

TEST(Dram, TimeIncludesFirstAccessLatency) {
  DramParams p;
  const Dram dram(p);
  EXPECT_GT(dram.stream_time_ns(1.0), p.first_access_latency_ns);
  // Bandwidth-dominated regime: 12.8 GB/s -> 12.8 bytes/ns.
  const double t = dram.stream_time_ns(12.8e6);
  EXPECT_NEAR(t - p.first_access_latency_ns, 1e6, 1.0);
}

TEST(Dram, EnergyMonotoneInTraffic) {
  const Dram dram(DramParams{});
  double prev = 0.0;
  for (double bytes = 1e3; bytes <= 1e9; bytes *= 10) {
    const double e = dram.stream_energy_pj(bytes);
    EXPECT_GT(e, prev);
    prev = e;
  }
}

TEST(ChipletLink, SimbaScaleEnergy) {
  ChipletLinkParams p;  // 1.17 pJ/b
  const ChipletLink link(p);
  EXPECT_NEAR(link.transfer_energy_pj(1.0), 8.0 * 1.17, 1e-9);
}

TEST(ChipletLink, BandwidthFromPins) {
  ChipletLinkParams p;
  p.gbps_per_pin = 25.0;
  p.pins = 32;
  const ChipletLink link(p);
  EXPECT_NEAR(link.bandwidth_gb_per_s(), 100.0, 1e-9);
}

TEST(ChipletLink, TimeHasHopLatency) {
  const ChipletLink link(ChipletLinkParams{});
  EXPECT_DOUBLE_EQ(link.transfer_time_ns(0.0), 0.0);
  EXPECT_GT(link.transfer_time_ns(1.0), 19.9);
}

TEST(Noc, EnergyGrowsWithDieSize) {
  const Noc noc(NocParams{});
  EXPECT_LT(noc.transfer_energy_pj(1024, 1.0),
            noc.transfer_energy_pj(1024, 100.0));
}

TEST(Noc, EnergyLinearInBytes) {
  const Noc noc(NocParams{});
  EXPECT_NEAR(noc.transfer_energy_pj(2048, 4.0) /
                  noc.transfer_energy_pj(1024, 4.0),
              2.0, 1e-9);
}

TEST(Noc, DramFarMoreExpensiveThanNocPerByte) {
  // The premise of the whole paper: off-chip movement dwarfs on-chip.
  const Noc noc(NocParams{});
  const Dram dram(DramParams{});
  const double bytes = 1e5;
  EXPECT_GT(dram.stream_energy_pj(bytes) /
                noc.transfer_energy_pj(bytes, 1.0),
            20.0);
}

}  // namespace
}  // namespace yoloc
