// ReBranch tests: factory structure, freezing policies, deployment
// splits, snapshot/restore, QAT decoration and ROSL.

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "data/classification.hpp"
#include "nn/zoo.hpp"
#include "rebranch/qat_conv.hpp"
#include "rebranch/rebranch.hpp"
#include "rebranch/rosl.hpp"
#include "tensor/ops.hpp"

namespace yoloc {
namespace {

ZooConfig tiny_zoo() {
  ZooConfig cfg;
  cfg.image_size = 16;
  cfg.base_width = 4;
  cfg.num_classes = 4;
  return cfg;
}

TEST(ReBranchFactory, ProducesTrunkAndBranchNames) {
  const ReBranchConfig cfg{4, 4};
  LayerPtr net = build_vgg8_lite(tiny_zoo(), make_rebranch_factory(cfg));
  int trunks = 0;
  int resconvs = 0;
  int comps = 0;
  for (Parameter* p : net->parameters()) {
    if (p->name.find(".trunk") != std::string::npos) ++trunks;
    if (p->name.find(".resconv") != std::string::npos) ++resconvs;
    if (p->name.find(".rescomp") != std::string::npos) ++comps;
  }
  EXPECT_EQ(trunks, 6);
  EXPECT_EQ(resconvs, 6);
  EXPECT_EQ(comps, 6);
}

TEST(ReBranchFactory, OutputShapeMatchesPlain) {
  Rng rng(1);
  Tensor x = Tensor::randn({2, 3, 16, 16}, rng);
  LayerPtr plain = build_vgg8_lite(tiny_zoo(), plain_conv_unit);
  LayerPtr rb =
      build_vgg8_lite(tiny_zoo(), make_rebranch_factory(ReBranchConfig{2, 2}));
  EXPECT_EQ(plain->forward(x, true).shape(), rb->forward(x, true).shape());
}

TEST(ReBranchFactory, BranchParameterFraction) {
  const ReBranchConfig cfg{4, 4};
  LayerPtr net = build_vgg8_lite(tiny_zoo(), make_rebranch_factory(cfg));
  double trunk = 0.0;
  double resconv = 0.0;
  for (Parameter* p : net->parameters()) {
    if (p->name.find(".trunk") != std::string::npos) trunk += p->value.size();
    if (p->name.find(".resconv") != std::string::npos) {
      resconv += p->value.size();
    }
  }
  // With width 4 the channel floors bite, but the branch must still be
  // far smaller than the trunk.
  EXPECT_LT(resconv, 0.4 * trunk);
}

TEST(ReBranchFactory, StrideCarriedByResConv) {
  Rng rng(2);
  const ReBranchConfig cfg{2, 2};
  const ConvUnitFactory factory = make_rebranch_factory(cfg);
  ConvSpec spec;
  spec.in_channels = 8;
  spec.out_channels = 8;
  spec.kernel = 3;
  spec.stride = 2;
  spec.pad = 1;
  spec.name = "backbone.s";
  LayerPtr unit = factory(spec, rng);
  Tensor x = Tensor::randn({1, 8, 8, 8}, rng);
  EXPECT_EQ(unit->forward(x, true).shape(), (std::vector<int>{1, 8, 4, 4}));
}

TEST(Policies, AllSramEverythingTrainable) {
  LayerPtr net = build_vgg8_lite(tiny_zoo(), plain_conv_unit);
  apply_transfer_policy(*net, TransferOption::kAllSram);
  for (Parameter* p : net->parameters()) {
    EXPECT_TRUE(p->trainable);
    EXPECT_FALSE(p->rom_resident);
  }
}

TEST(Policies, AllRomFreezesBackboneOnly) {
  LayerPtr net = build_vgg8_lite(tiny_zoo(), plain_conv_unit);
  apply_transfer_policy(*net, TransferOption::kAllRom);
  for (Parameter* p : net->parameters()) {
    const bool backbone = p->name.find("backbone") != std::string::npos;
    EXPECT_EQ(p->trainable, !backbone) << p->name;
    EXPECT_EQ(p->rom_resident, backbone) << p->name;
  }
}

TEST(Policies, DeepConvUnfreezesDeepestBackboneConv) {
  LayerPtr net = build_vgg8_lite(tiny_zoo(), plain_conv_unit);
  apply_transfer_policy(*net, TransferOption::kDeepConv);
  bool deep_trainable = false;
  bool shallow_frozen = false;
  for (Parameter* p : net->parameters()) {
    if (p->name.find("backbone.stage2.conv2") != std::string::npos &&
        p->trainable) {
      deep_trainable = true;
    }
    if (p->name.find("backbone.stage0.conv1") != std::string::npos &&
        !p->trainable) {
      shallow_frozen = true;
    }
  }
  EXPECT_TRUE(deep_trainable);
  EXPECT_TRUE(shallow_frozen);
}

TEST(Policies, ReBranchFreezesTrunkTrainsResConv) {
  LayerPtr net = build_vgg8_lite(
      tiny_zoo(), make_rebranch_factory(ReBranchConfig{4, 4}));
  apply_transfer_policy(*net, TransferOption::kReBranch);
  for (Parameter* p : net->parameters()) {
    const bool trunk = p->name.find(".trunk") != std::string::npos;
    const bool fixedpw = p->name.find(".rescomp") != std::string::npos ||
                         p->name.find(".resdecomp") != std::string::npos;
    const bool resconv = p->name.find(".resconv") != std::string::npos;
    if (trunk || fixedpw) {
      EXPECT_FALSE(p->trainable) << p->name;
      EXPECT_TRUE(p->rom_resident) << p->name;
    }
    if (resconv) {
      EXPECT_TRUE(p->trainable) << p->name;
      EXPECT_FALSE(p->rom_resident) << p->name;
    }
  }
}

TEST(Policies, SpwdTrainsDecorationOnly) {
  LayerPtr net =
      build_vgg8_lite(tiny_zoo(), make_spwd_factory(/*decor_bits=*/2));
  apply_transfer_policy(*net, TransferOption::kSpwd);
  int decor_trainable = 0;
  for (Parameter* p : net->parameters()) {
    if (p->name.find(".decor") != std::string::npos) {
      EXPECT_TRUE(p->trainable);
      ++decor_trainable;
    }
    if (p->name.find(".trunk") != std::string::npos) {
      EXPECT_FALSE(p->trainable);
      EXPECT_TRUE(p->rom_resident);
    }
  }
  EXPECT_EQ(decor_trainable, 6);
}

TEST(DeploymentSplit, ReBranchAreaFarBelowAllSram) {
  LayerPtr rb = build_vgg8_lite(
      tiny_zoo(), make_rebranch_factory(ReBranchConfig{4, 4}));
  apply_transfer_policy(*rb, TransferOption::kReBranch);
  const DeploymentSplit rb_split = deployment_split(*rb);

  LayerPtr plain = build_vgg8_lite(tiny_zoo(), plain_conv_unit);
  apply_transfer_policy(*plain, TransferOption::kAllSram);
  const DeploymentSplit sram_split = deployment_split(*plain);

  // ROM is ~19x denser, so mapped memory area shrinks drastically.
  const double rom_d = 5.0;
  const double sram_d = 0.26;
  EXPECT_LT(rb_split.memory_area_mm2(rom_d, sram_d),
            0.5 * sram_split.memory_area_mm2(rom_d, sram_d));
  EXPECT_GT(rb_split.rom_bits, rb_split.sram_bits);
  EXPECT_DOUBLE_EQ(sram_split.rom_bits, 0.0);
}

TEST(DeploymentSplit, SpwdCountsDecorAtLowBits) {
  LayerPtr net = build_vgg8_lite(tiny_zoo(), make_spwd_factory(2));
  apply_transfer_policy(*net, TransferOption::kSpwd);
  const DeploymentSplit split = deployment_split(*net, 8, 2);
  // Decoration params exist but count at 2/8 of their float size.
  EXPECT_GT(split.sram_bits, 0.0);
  EXPECT_GT(split.rom_bits, split.sram_bits);
}

TEST(Snapshot, RestoreCopiesMatchingParams) {
  LayerPtr a = build_vgg8_lite(tiny_zoo(), plain_conv_unit);
  ZooConfig other = tiny_zoo();
  other.num_classes = 7;  // different head shape
  LayerPtr b = build_vgg8_lite(other, plain_conv_unit);
  // Perturb a's backbone.
  for (Parameter* p : a->parameters()) {
    p->value.fill(0.5f);
  }
  const ParamSnapshot snap = snapshot_parameters(*a);
  const int copied = restore_parameters(*b, snap);
  EXPECT_GT(copied, 0);
  // Backbone copied, head (shape mismatch) untouched.
  for (Parameter* p : b->parameters()) {
    if (p->name.find("backbone") != std::string::npos &&
        p->name.find(".weight") != std::string::npos) {
      EXPECT_FLOAT_EQ(p->value[0], 0.5f) << p->name;
    }
  }
}

TEST(QatConv, ForwardUsesQuantizedWeights) {
  Rng rng(3);
  QatConv2d conv(1, 1, 1, 1, 0, /*weight_bits=*/2, rng, "q");
  Parameter* master = conv.parameters()[0];
  master->value.fill(0.37f);  // quantizes to one of {-a, 0, +a}
  Tensor x = Tensor::full({1, 1, 2, 2}, 1.0f);
  Tensor y = conv.forward(x, true);
  // 2-bit symmetric: qmax=1, scale=0.37 -> dequantized weight = 0.37.
  EXPECT_NEAR(y[0], 0.37f, 1e-5);
}

TEST(QatConv, StraightThroughGradientReachesMaster) {
  Rng rng(4);
  QatConv2d conv(2, 2, 3, 1, 1, 2, rng, "q");
  Parameter* master = conv.parameters()[0];
  Tensor x = Tensor::randn({1, 2, 4, 4}, rng);
  Tensor y = conv.forward(x, true);
  (void)conv.backward(Tensor::full(y.shape(), 1.0f));
  float grad_norm = 0.0f;
  for (std::size_t i = 0; i < master->grad.size(); ++i) {
    grad_norm += std::abs(master->grad[i]);
  }
  EXPECT_GT(grad_norm, 0.0f);
}

TEST(Rosl, PerfectWhenClassesSeparatedInEmbedding) {
  // Identity-ish backbone: GAP over hand-made images separates classes.
  Rng rng(5);
  LayerPtr net = build_vgg8_lite(tiny_zoo(), plain_conv_unit);
  auto* seq = dynamic_cast<Sequential*>(net.get());
  ASSERT_NE(seq, nullptr);

  const DatasetSpec spec = mnist_like_spec(16);
  Rng drng(6);
  LabeledDataset train = generate_classification(spec, 10, drng);
  LabeledDataset test = generate_classification(spec, 5, drng);
  const double acc = evaluate_rosl(*seq, train, test);
  // Untrained random features still beat chance on clean data.
  EXPECT_GT(acc, 1.5 / spec.num_classes);
}

TEST(OptionNames, AllDistinct) {
  std::set<std::string> names;
  for (auto opt : {TransferOption::kAllSram, TransferOption::kAllRom,
                   TransferOption::kDeepConv, TransferOption::kSpwd,
                   TransferOption::kReBranch, TransferOption::kRosl}) {
    names.insert(option_name(opt));
  }
  EXPECT_EQ(names.size(), 6u);
}

}  // namespace
}  // namespace yoloc
