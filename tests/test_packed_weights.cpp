// Packed-weights fast path coverage: the deploy-time bit-plane packing
// (macro/packed_weights.*) and the packed CimMacro/MacroMvmEngine MVM
// must be BIT-IDENTICAL to the legacy per-call path — same outputs, same
// energy/latency stats, same RNG draw order — across analog (noisy and
// noise-free), exact-cost, odd reduction sizes and multi-tile shapes.
// `ctest -L macro` selects this suite.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/macro_engine.hpp"

namespace yoloc {
namespace {

MacroConfig noise_free_rom() {
  MacroConfig cfg = default_rom_macro();
  cfg.bitline.sigma_cell = 0.0;
  cfg.adc.noise_sigma_v = 0.0;
  return cfg;
}

std::vector<std::int8_t> random_weights(int m, int k, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int8_t> w(static_cast<std::size_t>(m) * k);
  for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  return w;
}

std::vector<std::uint8_t> random_acts(int k, int p, std::uint64_t seed) {
  Rng rng(seed ^ 0x1234);
  std::vector<std::uint8_t> x(static_cast<std::size_t>(k) * p);
  for (auto& v : x) v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return x;
}

void expect_stats_identical(const MacroRunStats& a, const MacroRunStats& b) {
  EXPECT_EQ(a.array.adc_conversions, b.array.adc_conversions);
  EXPECT_EQ(a.array.wl_pulses, b.array.wl_pulses);
  EXPECT_EQ(a.array.shift_adds, b.array.shift_adds);
  // Energy/latency sums must match to the last bit (same values, same
  // accumulation order).
  EXPECT_EQ(a.array.adc_energy_pj, b.array.adc_energy_pj);
  EXPECT_EQ(a.array.precharge_energy_pj, b.array.precharge_energy_pj);
  EXPECT_EQ(a.array.wl_energy_pj, b.array.wl_energy_pj);
  EXPECT_EQ(a.array.shift_add_energy_pj, b.array.shift_add_energy_pj);
  EXPECT_EQ(a.macro_ops, b.macro_ops);
  EXPECT_EQ(a.macs, b.macs);
  EXPECT_EQ(a.latency_ns, b.latency_ns);
}

/// Drives both engine paths with identically seeded sessions and checks
/// outputs + stats match exactly.
void expect_paths_identical(const MacroConfig& cfg,
                            MacroMvmEngine::Mode mode, int m, int k, int p,
                            std::uint64_t seed) {
  const CimMacro macro(cfg);
  PackedWeightsCache cache;
  const MacroMvmEngine legacy(macro, mode);
  const MacroMvmEngine packed(macro, mode, &cache);
  const auto w = random_weights(m, k, seed);
  const auto x = random_acts(k, p, seed);

  std::vector<std::int32_t> y_legacy(static_cast<std::size_t>(m) * p);
  std::vector<std::int32_t> y_packed(static_cast<std::size_t>(m) * p);
  Rng rng_legacy(seed);
  Rng rng_packed(seed);
  MacroRunStats stats_legacy, stats_packed;
  MvmScratch scratch_legacy, scratch_packed;
  MvmSession legacy_session{&rng_legacy, &stats_legacy, &scratch_legacy};
  MvmSession packed_session{&rng_packed, &stats_packed, &scratch_packed};

  // Two back-to-back calls so the second starts from mid-stream RNG
  // state and non-zero stats (the accumulation-order contract).
  for (int call = 0; call < 2; ++call) {
    legacy.mvm_batch(w.data(), m, k, x.data(), p, y_legacy.data(),
                     legacy_session);
    packed.mvm_batch(w.data(), m, k, x.data(), p, y_packed.data(),
                     packed_session);
    EXPECT_EQ(y_legacy, y_packed) << "call " << call;
    expect_stats_identical(stats_legacy, stats_packed);
  }
}

TEST(PackedRomWeights, MasksMatchNaiveDerivation) {
  const MacroGeometry g = default_rom_macro().geometry;
  const int m = 3;
  const int k = 100;  // odd: not a multiple of rows_per_activation (32)
  const auto w = random_weights(m, k, 42);
  const PackedRomWeights packed(w.data(), m, k, g);

  ASSERT_EQ(packed.tile_count(), 1);
  const auto& tile = packed.tile(0);
  EXPECT_EQ(tile.k0, 0);
  EXPECT_EQ(tile.k_size, k);
  EXPECT_EQ(tile.groups, 4);  // ceil(100 / 32)

  // Group masks partition [0, k) along rows_per_activation boundaries.
  int covered = 0;
  for (int grp = 0; grp < tile.groups; ++grp) {
    covered += tile.group_masks[static_cast<std::size_t>(grp)].count();
  }
  EXPECT_EQ(covered, k);
  EXPECT_EQ(tile.group_masks[3].count(), 4);  // 100 - 3*32

  // Every weight bit is where the naive derivation puts it.
  for (int j = 0; j < m; ++j) {
    for (int b = 0; b < g.weight_bits; ++b) {
      const RowMask& plane =
          tile.wbits[static_cast<std::size_t>(j) * g.weight_bits + b];
      for (int i = 0; i < k; ++i) {
        const unsigned wv = static_cast<std::uint8_t>(
            w[static_cast<std::size_t>(j) * k + i]);
        const bool expected = ((wv >> b) & 1u) != 0;
        const bool actual =
            ((plane.lane[i >> 6] >> (i & 63)) & 1ull) != 0;
        EXPECT_EQ(actual, expected) << "j=" << j << " b=" << b << " i=" << i;
      }
    }
  }

  // Shift-add table: MSB plane carries the negative two's-complement
  // factor, scaled by 2^t per input cycle.
  const double* bcw = packed.bit_cycle_weight();
  EXPECT_EQ(bcw[0], 1.0);                                 // b=0, t=0
  EXPECT_EQ(bcw[1], 2.0);                                 // b=0, t=1
  EXPECT_EQ(bcw[7 * g.input_bits + 0], -128.0);           // b=7, t=0
  EXPECT_EQ(bcw[7 * g.input_bits + 7], -128.0 * 128.0);   // b=7, t=7
  EXPECT_GT(packed.packed_bytes(), 0u);
  EXPECT_GE(packed.pack_ms(), 0.0);
}

TEST(PackedRomWeights, TilesMirrorEngineRowTiling) {
  const MacroGeometry g = default_rom_macro().geometry;
  const int m = 2;
  const int k = 300;  // 128 + 128 + 44
  const auto w = random_weights(m, k, 43);
  const PackedRomWeights packed(w.data(), m, k, g);
  ASSERT_EQ(packed.tile_count(), 3);
  EXPECT_EQ(packed.tile(0).k_size, 128);
  EXPECT_EQ(packed.tile(1).k0, 128);
  EXPECT_EQ(packed.tile(2).k0, 256);
  EXPECT_EQ(packed.tile(2).k_size, 44);
  EXPECT_EQ(packed.tile(2).groups, 2);  // 32 + 12
}

TEST(PackedRomWeights, RejectsUnsupportedGeometry) {
  MacroGeometry g = default_rom_macro().geometry;
  const auto w = random_weights(1, 8, 44);
  g.weight_bits = 9;
  EXPECT_THROW(PackedRomWeights(w.data(), 1, 8, g), std::runtime_error);
  g = default_rom_macro().geometry;
  g.input_bits = 9;
  EXPECT_THROW(PackedRomWeights(w.data(), 1, 8, g), std::runtime_error);
  g = default_rom_macro().geometry;
  g.rows = 129;
  EXPECT_THROW(PackedRomWeights(w.data(), 1, 8, g), std::runtime_error);
}

TEST(PackedRomWeights, BoundariesOnlyPackingForExactCost) {
  const MacroGeometry g = default_rom_macro().geometry;
  const int m = 4;
  const int k = 150;
  const auto w = random_weights(m, k, 46);
  const PackedRomWeights planes(w.data(), m, k, g, /*pack_planes=*/true);
  const PackedRomWeights bounds(w.data(), m, k, g, /*pack_planes=*/false);
  EXPECT_TRUE(planes.has_planes());
  EXPECT_FALSE(bounds.has_planes());
  ASSERT_EQ(bounds.tile_count(), planes.tile_count());
  for (int t = 0; t < bounds.tile_count(); ++t) {
    EXPECT_TRUE(bounds.tile(t).wbits.empty());
    EXPECT_EQ(bounds.tile(t).k0, planes.tile(t).k0);
    EXPECT_EQ(bounds.tile(t).groups, planes.tile(t).groups);
    EXPECT_FALSE(bounds.tile(t).group_masks.empty());
  }
  EXPECT_LT(bounds.packed_bytes(), planes.packed_bytes());

  // The analog path refuses a boundaries-only packing.
  const CimMacro macro(default_rom_macro());
  std::vector<std::uint8_t> x(128, 1);
  std::vector<std::int32_t> y(static_cast<std::size_t>(m));
  Rng rng(1);
  MacroRunStats stats;
  EXPECT_THROW(
      macro.mvm_packed(bounds, 0, x.data(), y.data(), rng, stats),
      std::runtime_error);
}

TEST(PackedWeightsCache, ReturnsSameInstanceAndChecksGeometry) {
  const MacroGeometry g = default_rom_macro().geometry;
  PackedWeightsCache cache;
  const auto w = random_weights(4, 64, 45);
  const PackedRomWeights& first = cache.get_or_pack(w.data(), 4, 64, g);
  const PackedRomWeights& second = cache.get_or_pack(w.data(), 4, 64, g);
  EXPECT_EQ(&first, &second);  // packed once, shared afterwards
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.packed_bytes(), first.packed_bytes());

  // A different shape is a different entry.
  (void)cache.get_or_pack(w.data(), 2, 64, g);
  EXPECT_EQ(cache.entries(), 2u);

  // One cache serves one geometry: a mismatched hit fails loudly.
  MacroGeometry other = g;
  other.rows_per_activation = 16;
  EXPECT_THROW(cache.get_or_pack(w.data(), 4, 64, other),
               std::runtime_error);
}

TEST(PackedMvm, AnalogBitIdenticalUnderDefaultNoise) {
  expect_paths_identical(default_rom_macro(), MacroMvmEngine::Mode::kAnalog,
                         /*m=*/24, /*k=*/128, /*p=*/5, /*seed=*/101);
}

TEST(PackedMvm, AnalogBitIdenticalOnSramMacro) {
  expect_paths_identical(default_sram_macro(), MacroMvmEngine::Mode::kAnalog,
                         /*m=*/16, /*k=*/128, /*p=*/3, /*seed=*/102);
}

TEST(PackedMvm, AnalogBitIdenticalOddReduction) {
  // k = 100: last activation group has only 4 rows.
  expect_paths_identical(default_rom_macro(), MacroMvmEngine::Mode::kAnalog,
                         /*m=*/8, /*k=*/100, /*p=*/4, /*seed=*/103);
}

TEST(PackedMvm, AnalogBitIdenticalMultiTile) {
  // k = 300 spans three subarray row tiles (128 + 128 + 44).
  expect_paths_identical(default_rom_macro(), MacroMvmEngine::Mode::kAnalog,
                         /*m=*/6, /*k=*/300, /*p=*/3, /*seed=*/104);
}

TEST(PackedMvm, AnalogBitIdenticalNoiseFree) {
  // sigma_cell = 0 and ADC noise = 0: the packed path switches to the
  // draw-free table transfer; outputs and stats must still match the
  // legacy path exactly.
  expect_paths_identical(noise_free_rom(), MacroMvmEngine::Mode::kAnalog,
                         /*m=*/24, /*k=*/128, /*p=*/5, /*seed=*/105);
  expect_paths_identical(noise_free_rom(), MacroMvmEngine::Mode::kAnalog,
                         /*m=*/8, /*k=*/100, /*p=*/2, /*seed=*/106);
}

TEST(PackedMvm, AnalogBitIdenticalNarrowOperands) {
  MacroConfig cfg = default_rom_macro();
  cfg.geometry.weight_bits = 4;
  cfg.geometry.input_bits = 4;
  expect_paths_identical(cfg, MacroMvmEngine::Mode::kAnalog,
                         /*m=*/8, /*k=*/128, /*p=*/4, /*seed=*/107);
}

TEST(PackedMvm, ExactCostBitIdentical) {
  expect_paths_identical(default_rom_macro(),
                         MacroMvmEngine::Mode::kExactCost,
                         /*m=*/24, /*k=*/128, /*p=*/5, /*seed=*/108);
  expect_paths_identical(default_rom_macro(),
                         MacroMvmEngine::Mode::kExactCost,
                         /*m=*/6, /*k=*/300, /*p=*/3, /*seed=*/109);
}

TEST(PackedMvm, ExactCostBitIdenticalNarrowWeightBits) {
  // weight_bits = 4 with full-range int8 weights: the exact path must
  // still reconstruct the full int8 product (all 8 planes are packed),
  // exactly like the legacy integer MAC.
  MacroConfig cfg = default_rom_macro();
  cfg.geometry.weight_bits = 4;
  expect_paths_identical(cfg, MacroMvmEngine::Mode::kExactCost,
                         /*m=*/8, /*k=*/128, /*p=*/4, /*seed=*/110);
}

}  // namespace
}  // namespace yoloc
