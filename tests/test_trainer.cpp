// Optimizer and training-loop tests: SGD math, freezing semantics, and
// learnability of small synthetic problems.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/activations.hpp"
#include "nn/container.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/optimizer.hpp"
#include "nn/trainer.hpp"
#include "tensor/ops.hpp"

namespace yoloc {
namespace {

TEST(Sgd, PlainStepDescendsGradient) {
  Parameter p("w", Tensor::from_vector({2}, {1.0f, -1.0f}));
  p.grad = Tensor::from_vector({2}, {0.5f, -0.5f});
  SgdConfig cfg;
  cfg.lr = 0.1f;
  cfg.momentum = 0.0f;
  cfg.weight_decay = 0.0f;
  Sgd opt({&p}, cfg);
  opt.step();
  EXPECT_NEAR(p.value[0], 0.95f, 1e-6);
  EXPECT_NEAR(p.value[1], -0.95f, 1e-6);
}

TEST(Sgd, MomentumAccumulates) {
  Parameter p("w", Tensor::from_vector({1}, {0.0f}));
  SgdConfig cfg;
  cfg.lr = 1.0f;
  cfg.momentum = 0.5f;
  cfg.weight_decay = 0.0f;
  Sgd opt({&p}, cfg);
  p.grad[0] = 1.0f;
  opt.step();  // v=1, w=-1
  EXPECT_NEAR(p.value[0], -1.0f, 1e-6);
  opt.step();  // v=0.5*1+1=1.5, w=-2.5
  EXPECT_NEAR(p.value[0], -2.5f, 1e-6);
}

TEST(Sgd, WeightDecayShrinksWeights) {
  Parameter p("w", Tensor::from_vector({1}, {2.0f}));
  SgdConfig cfg;
  cfg.lr = 0.1f;
  cfg.momentum = 0.0f;
  cfg.weight_decay = 0.1f;
  Sgd opt({&p}, cfg);
  p.grad[0] = 0.0f;
  opt.step();
  EXPECT_NEAR(p.value[0], 2.0f - 0.1f * (0.1f * 2.0f), 1e-6);
}

TEST(Sgd, FrozenParameterUntouched) {
  Parameter p("w", Tensor::from_vector({1}, {1.0f}));
  p.trainable = false;
  p.grad[0] = 10.0f;
  SgdConfig cfg;
  Sgd opt({&p}, cfg);
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 1.0f);
}

TEST(Sgd, ZeroGradClearsAll) {
  Parameter p("w", Tensor::from_vector({2}, {1.0f, 2.0f}));
  p.grad = Tensor::from_vector({2}, {3.0f, 4.0f});
  Sgd opt({&p}, SgdConfig{});
  opt.zero_grad();
  EXPECT_FLOAT_EQ(p.grad[0], 0.0f);
  EXPECT_FLOAT_EQ(p.grad[1], 0.0f);
}

TEST(GatherBatch, SelectsRows) {
  Tensor images({3, 1, 2, 2});
  for (std::size_t i = 0; i < images.size(); ++i) {
    images[i] = static_cast<float>(i);
  }
  Tensor batch = gather_batch(images, {2, 0});
  EXPECT_EQ(batch.shape()[0], 2);
  EXPECT_FLOAT_EQ(batch[0], 8.0f);   // first element of image 2
  EXPECT_FLOAT_EQ(batch[4], 0.0f);   // first element of image 0
}

TEST(GatherBatch, RejectsOutOfRange) {
  Tensor images({2, 1, 2, 2});
  EXPECT_THROW(gather_batch(images, {5}), std::runtime_error);
}

/// A linearly separable 2-class problem learned by a linear classifier.
TEST(TrainClassifier, LearnsSeparableProblem) {
  Rng rng(42);
  const int n = 128;
  Tensor images({n, 1, 2, 2});
  std::vector<int> labels(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int cls = i % 2;
    labels[static_cast<std::size_t>(i)] = cls;
    for (int j = 0; j < 4; ++j) {
      images[static_cast<std::size_t>(i) * 4 + j] = static_cast<float>(
          rng.normal(cls == 0 ? -1.0 : 1.0, 0.3));
    }
  }
  auto model = std::make_unique<Sequential>("m");
  model->add(std::make_unique<Flatten>());
  model->add(std::make_unique<Linear>(4, 2, true, rng, "fc"));

  TrainConfig cfg;
  cfg.epochs = 12;
  cfg.batch_size = 16;
  cfg.sgd.lr = 0.1f;
  const TrainStats stats = train_classifier(*model, images, labels, cfg);
  EXPECT_LT(stats.final_loss(), stats.epoch_loss.front());
  EXPECT_GT(evaluate_classifier(*model, images, labels), 0.97);
}

TEST(TrainClassifier, FrozenModelDoesNotLearn) {
  Rng rng(43);
  const int n = 64;
  Tensor images = Tensor::randn({n, 1, 2, 2}, rng);
  std::vector<int> labels(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) labels[static_cast<std::size_t>(i)] = i % 2;

  auto model = std::make_unique<Sequential>("m");
  model->add(std::make_unique<Flatten>());
  model->add(std::make_unique<Linear>(4, 2, true, rng, "fc"));
  const auto before = model->parameters()[0]->value;
  for (Parameter* p : model->parameters()) p->trainable = false;

  TrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch_size = 16;
  (void)train_classifier(*model, images, labels, cfg);
  EXPECT_FLOAT_EQ(max_abs_diff(model->parameters()[0]->value, before), 0.0f);
}

TEST(TrainDetector, LossDecreasesOnToyScenes) {
  Rng rng(44);
  const int n = 32;
  const int hw = 8;
  Tensor images({n, 1, hw, hw});
  std::vector<std::vector<GtBox>> boxes(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    GtBox b;
    b.cx = 0.25f + 0.5f * static_cast<float>(i % 2);
    b.cy = 0.25f;
    b.w = 0.3f;
    b.h = 0.3f;
    b.cls = i % 2;
    boxes[static_cast<std::size_t>(i)].push_back(b);
    // Paint the object so there is signal.
    for (int y = 0; y < hw / 2; ++y) {
      for (int x = 0; x < hw / 2; ++x) {
        images.at4(i, 0, y, x + (i % 2) * hw / 2) = 1.0f;
      }
    }
  }
  GridLossConfig loss_cfg;
  loss_cfg.grid = 2;
  loss_cfg.classes = 2;

  Rng mrng(45);
  auto model = std::make_unique<Sequential>("det");
  model->add(std::make_unique<Conv2d>(1, 8, 3, 2, 1, false, mrng, "c1"));
  model->add(std::make_unique<ReLU>());
  model->add(std::make_unique<Conv2d>(8, 7, 3, 2, 1, true, mrng, "c2"));

  TrainConfig cfg;
  cfg.epochs = 10;
  cfg.batch_size = 8;
  cfg.sgd.lr = 0.05f;
  const TrainStats stats = train_detector(*model, images, boxes, loss_cfg,
                                          cfg);
  EXPECT_LT(stats.final_loss(), 0.7 * stats.epoch_loss.front());
}

}  // namespace
}  // namespace yoloc
