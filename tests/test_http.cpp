// HTTP front-end (src/serve/http_server.*, http_client.*): loopback
// round trips for every endpoint, the admission-control status mapping
// (queue-full 429, dead/infeasible deadline 503 + Retry-After),
// connection hygiene negatives (malformed request lines, bad versions,
// oversized headers/bodies, slow-loris read timeouts), graceful drain
// (in-flight requests finish, new connections are refused), and the
// determinism contract carried across the wire: an /infer response is
// bit-identical to a direct ExecutionContext run with the same
// admission-id-derived seed.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/base64.hpp"
#include "nn/activations.hpp"
#include "nn/container.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "runtime/execution_context.hpp"
#include "runtime/plan_serde.hpp"
#include "serve/http_client.hpp"
#include "serve/http_server.hpp"
#include "tensor/ops.hpp"

namespace yoloc {
namespace {

using std::chrono::milliseconds;

// Keep the concurrency paths exercised even on single-core CI boxes.
const bool g_env_pinned = [] {
  setenv("YOLOC_THREADS", "4", /*overwrite=*/1);
  return true;
}();

LayerPtr make_model(std::uint64_t seed) {
  Rng rng(seed);
  auto backbone = std::make_unique<Sequential>("backbone");
  backbone->add(std::make_unique<Conv2d>(3, 4, 3, 1, 1, true, rng, "b.c1"));
  backbone->add(std::make_unique<ReLU>());
  backbone->add(std::make_unique<MaxPool2d>(2));
  backbone->add(std::make_unique<Conv2d>(4, 6, 3, 1, 1, true, rng, "b.c2"));
  backbone->add(std::make_unique<ReLU>());
  auto net = std::make_unique<Sequential>("net");
  net->add(std::move(backbone));
  net->add(std::make_unique<GlobalAvgPool>());
  net->add(std::make_unique<Linear>(6, 5, true, rng, "head.fc"));
  for (Parameter* p : net->parameters()) {
    p->rom_resident = p->name.find("b.c") != std::string::npos;
  }
  return net;
}

std::unique_ptr<DeploymentPlan> make_plan(MacroMvmEngine::Mode mode) {
  LayerPtr net = make_model(21);
  Rng data_rng(33);
  Tensor calib = Tensor::rand_uniform({8, 3, 8, 8}, data_rng, 0.0f, 1.0f);
  DeploymentOptions options;
  options.mode = mode;
  return std::make_unique<DeploymentPlan>(std::move(net), calib,
                                          std::move(options));
}

Tensor make_input(std::uint64_t seed, std::vector<int> shape) {
  Rng rng(seed);
  return Tensor::rand_uniform(shape, rng, 0.0f, 1.0f);
}

::testing::AssertionResult bit_identical(const Tensor& a, const Tensor& b) {
  if (!same_shape(a, b)) {
    return ::testing::AssertionFailure() << "shape mismatch";
  }
  if (std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) != 0) {
    return ::testing::AssertionFailure()
           << "payload differs (max |a-b| = " << max_abs_diff(a, b) << ")";
  }
  return ::testing::AssertionSuccess();
}

std::string infer_body(const Tensor& t, const std::string& priority = {},
                       double deadline_ms = 0.0) {
  std::string body = "{\"shape\":[";
  for (std::size_t i = 0; i < t.shape().size(); ++i) {
    if (i != 0) body += ',';
    body += std::to_string(t.shape()[i]);
  }
  body += "]";
  if (!priority.empty()) body += ",\"priority\":\"" + priority + "\"";
  if (deadline_ms != 0.0) {
    body += ",\"deadline_ms\":" + std::to_string(deadline_ms);
  }
  body +=
      ",\"data_b64\":\"" + base64_encode(t.data(), t.size() * sizeof(float)) +
      "\"}";
  return body;
}

std::string json_str_field(const std::string& body, const std::string& key) {
  const std::string pattern = "\"" + key + "\":\"";
  const std::size_t pos = body.find(pattern);
  if (pos == std::string::npos) return {};
  const std::size_t start = pos + pattern.size();
  return body.substr(start, body.find('"', start) - start);
}

/// Decode an /infer 200 response back into a Tensor.
Tensor tensor_from_response(const std::string& body) {
  const std::string marker = "\"shape\":[";
  const std::size_t pos = body.find(marker);
  EXPECT_NE(pos, std::string::npos) << body;
  std::vector<int> shape;
  std::size_t cursor = pos + marker.size();
  while (cursor < body.size() && body[cursor] != ']') {
    shape.push_back(std::atoi(body.c_str() + cursor));
    cursor = body.find_first_of(",]", cursor);
    if (body[cursor] == ',') ++cursor;
  }
  std::vector<std::uint8_t> bytes;
  EXPECT_TRUE(base64_decode(json_str_field(body, "data_b64"), bytes));
  Tensor t(shape);
  EXPECT_EQ(bytes.size(), t.size() * sizeof(float));
  std::memcpy(t.data(), bytes.data(), bytes.size());
  return t;
}

/// Raw-socket exchange: send `wire` verbatim, read until the server
/// closes (every negative below sets Connection: close). A 3 s receive
/// timeout turns a hung server into a test failure, not a hung suite.
std::string raw_exchange(int port, const std::string& wire) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  timeval tv{3, 0};
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  EXPECT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(wire.size()));
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

int status_of(const std::string& raw) {
  return raw.rfind("HTTP/1.1 ", 0) == 0 ? std::atoi(raw.c_str() + 9) : -1;
}

// ---------------------------------------------------------- endpoints

TEST(HttpEndpoints, AllFourRoundTripOverLoopback) {
  // Serve from a saved artifact so GET /plan has a section table to
  // report (the path-less constructor is exercised elsewhere).
  const std::string plan_path =
      (std::filesystem::temp_directory_path() /
       ("test_http." + std::to_string(::getpid()) + kPlanFileExtension))
          .string();
  {
    auto built = make_plan(MacroMvmEngine::Mode::kAnalog);
    save_plan(*built, plan_path);
  }
  auto plan = load_plan(plan_path);
  SchedulerOptions sched;
  sched.workers = 2;
  Scheduler scheduler(*plan, sched);
  HttpServer server(scheduler, *plan, {}, plan_path);
  ASSERT_GT(server.port(), 0);
  HttpClient client("127.0.0.1", server.port());

  // /healthz: ready (plan loaded, workers up).
  HttpResponse health = client.get("/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(health.body.find("\"workers\":2"), std::string::npos);

  // /plan: options summary + section table with CRC verdicts.
  HttpResponse plan_resp = client.get("/plan");
  EXPECT_EQ(plan_resp.status, 200);
  EXPECT_EQ(plan_resp.headers["content-type"], "application/json");
  EXPECT_NE(plan_resp.body.find("\"name\":\"OPTIONS\""), std::string::npos);
  EXPECT_NE(plan_resp.body.find("\"name\":\"GRAPH\""), std::string::npos);
  EXPECT_NE(plan_resp.body.find("\"crc_ok\":true"), std::string::npos);
  EXPECT_EQ(plan_resp.body.find("\"crc_ok\":false"), std::string::npos);
  EXPECT_NE(plan_resp.body.find(
                "\"quantized_layers\":" +
                std::to_string(plan->quantized_layer_count())),
            std::string::npos);
  EXPECT_NE(plan_resp.body.find("\"packed_weight_bytes\":" +
                                std::to_string(plan->packed_weight_bytes())),
            std::string::npos);

  // /metrics: Prometheus exposition straight off the live scheduler.
  HttpResponse metrics = client.get("/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.headers["content-type"].find("text/plain"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("# TYPE yoloc_serve_requests_served_total"),
            std::string::npos);

  // /infer: one request through the full stack.
  HttpResponse infer =
      client.post("/infer", infer_body(make_input(5, {1, 3, 8, 8})));
  ASSERT_EQ(infer.status, 200);
  EXPECT_NE(infer.body.find("\"latency_ms\":"), std::string::npos);
  const Tensor logits = tensor_from_response(infer.body);
  EXPECT_EQ(logits.shape(), (std::vector<int>{1, 5}));

  // The /metrics view must reflect the served request (accounting
  // settles asynchronously after the future resolves; wait_idle pins
  // it).
  scheduler.wait_idle();
  EXPECT_NE(client.get("/metrics").body.find(
                "yoloc_serve_requests_served_total{lane=\"batch\"} 1"),
            std::string::npos);

  // Keep-alive: the whole conversation above rode ONE connection.
  EXPECT_EQ(server.stats().connections_accepted, 1u);

  // Routing negatives: unknown path and wrong methods.
  EXPECT_EQ(client.get("/nope").status, 404);
  EXPECT_EQ(client.post("/healthz", "{}").status, 405);
  EXPECT_EQ(client.request("PUT", "/infer", "{}").status, 405);

  std::filesystem::remove(plan_path);
}

// -------------------------------------------- determinism across wire

TEST(HttpInfer, BitIdenticalToDirectExecutionAcrossBothEncodings) {
  auto plan = make_plan(MacroMvmEngine::Mode::kAnalog);
  constexpr std::uint64_t kSeed = 777;
  constexpr int kRequests = 6;

  // Serial reference: request i (admission id i) must execute with the
  // noise stream seeded kSeed + i — the scheduler determinism contract,
  // now carried through HTTP parse -> base64 -> submit -> base64.
  std::vector<Tensor> inputs, reference;
  for (int i = 0; i < kRequests; ++i) {
    inputs.push_back(make_input(100 + static_cast<unsigned>(i), {1, 3, 8, 8}));
    ExecutionContext ctx(*plan, kSeed + static_cast<std::uint64_t>(i));
    reference.push_back(ctx.infer(inputs.back()));
  }

  SchedulerOptions sched;
  sched.workers = 2;
  sched.max_microbatch = 1;  // deterministic mode
  sched.noise_seed = kSeed;
  Scheduler scheduler(*plan, sched);
  HttpServer server(scheduler, *plan);
  HttpClient client("127.0.0.1", server.port());

  const char* kPriorities[] = {"interactive", "batch", "best_effort"};
  for (int i = 0; i < kRequests; ++i) {
    const Tensor& input = inputs[static_cast<std::size_t>(i)];
    HttpResponse resp;
    if (i % 2 == 0) {
      resp = client.post("/infer", infer_body(input, kPriorities[i % 3]));
    } else {
      // Raw little-endian f32 body; geometry and scheduling hints ride
      // the query string.
      std::string raw(reinterpret_cast<const char*>(input.data()),
                      input.size() * sizeof(float));
      resp = client.request(
          "POST",
          std::string("/infer?shape=1,3,8,8&priority=") + kPriorities[i % 3],
          raw, {{"Content-Type", "application/octet-stream"}});
    }
    ASSERT_EQ(resp.status, 200) << "request " << i << ": " << resp.body;
    EXPECT_TRUE(bit_identical(reference[static_cast<std::size_t>(i)],
                              tensor_from_response(resp.body)))
        << "request " << i;
  }
}

// ------------------------------------------- admission status mapping

TEST(HttpAdmission, QueueFullMapsTo429WithRetryAfter) {
  auto plan = make_plan(MacroMvmEngine::Mode::kAnalog);
  SchedulerOptions sched;
  sched.workers = 1;
  sched.max_queue_depth = 1;
  Scheduler scheduler(*plan, sched);
  HttpServer server(scheduler, *plan);

  // Occupy the single worker directly, long enough to observe the full
  // sequence below: two chained interactive blockers (strict weights
  // outrank the batch lane) keep it busy for hundreds of ms; the first
  // is picked up before the second is submitted so the second sits in
  // the interactive QUEUE — the depth cap is per lane, so the batch
  // lane still has its own 1-slot budget.
  auto blocker = scheduler.submit(make_input(7, {128, 3, 8, 8}),
                                  {Priority::kInteractive, milliseconds(0)});
  std::this_thread::sleep_for(milliseconds(80));  // worker surely picked up
  auto blocker2 = scheduler.submit(make_input(6, {128, 3, 8, 8}),
                                   {Priority::kInteractive, milliseconds(0)});

  // This one is admitted into the batch lane (depth 1/1) and parks.
  auto queued = std::async(std::launch::async, [&] {
    HttpClient c("127.0.0.1", server.port(), milliseconds(30000));
    return c.post("/infer", infer_body(make_input(8, {1, 3, 8, 8}), "batch"));
  });
  std::this_thread::sleep_for(milliseconds(150));  // admitted before overflow

  HttpClient client("127.0.0.1", server.port());
  HttpResponse overflow =
      client.post("/infer", infer_body(make_input(9, {1, 3, 8, 8}), "batch"));
  EXPECT_EQ(overflow.status, 429) << overflow.body;
  EXPECT_NE(overflow.body.find("\"kind\":\"queue_full\""), std::string::npos);
  EXPECT_FALSE(overflow.headers["retry-after"].empty());

  (void)blocker.get();
  (void)blocker2.get();
  EXPECT_EQ(queued.get().status, 200);
  EXPECT_GE(server.stats().responses_4xx, 1u);
}

TEST(HttpAdmission, DeadDeadlineMapsTo503WithRetryAfter) {
  auto plan = make_plan(MacroMvmEngine::Mode::kAnalog);
  SchedulerOptions sched;
  sched.workers = 1;
  Scheduler scheduler(*plan, sched);
  HttpServer server(scheduler, *plan);
  HttpClient client("127.0.0.1", server.port());

  // A deadline that has already elapsed at submission is refused at
  // admission — the canonical "cannot be served in time" 503.
  HttpResponse dead = client.post(
      "/infer", infer_body(make_input(3, {1, 3, 8, 8}), "interactive", -5.0));
  EXPECT_EQ(dead.status, 503) << dead.body;
  EXPECT_FALSE(dead.headers["retry-after"].empty());
  EXPECT_NE(dead.body.find("deadline"), std::string::npos);

  // Warm the rolling per-image estimate, then ask for far less than one
  // image's service time: refused as infeasible (also 503).
  ASSERT_EQ(
      client.post("/infer", infer_body(make_input(4, {1, 3, 8, 8}))).status,
      200);
  HttpResponse infeasible = client.post(
      "/infer",
      infer_body(make_input(5, {1, 3, 8, 8}), "interactive", 0.0001));
  EXPECT_EQ(infeasible.status, 503) << infeasible.body;
  EXPECT_FALSE(infeasible.headers["retry-after"].empty());

  // The server survives all of it: healthy and still serving.
  EXPECT_EQ(client.get("/healthz").status, 200);
}

// -------------------------------------------------- connection hygiene

TEST(HttpHygiene, MalformedRequestsAreRejectedWithoutCrashing) {
  auto plan = make_plan(MacroMvmEngine::Mode::kAnalog);
  SchedulerOptions sched;
  sched.workers = 1;
  Scheduler scheduler(*plan, sched);
  HttpServerOptions options;
  options.max_header_bytes = 512;
  options.max_body_bytes = 1024;
  HttpServer server(scheduler, *plan, options);
  const int port = server.port();

  // Garbage request line.
  EXPECT_EQ(status_of(raw_exchange(port, "GARBAGE\r\n\r\n")), 400);
  // Unsupported HTTP version.
  EXPECT_EQ(status_of(raw_exchange(port, "GET /healthz HTTP/9.9\r\n\r\n")),
            400);
  // Malformed header line (no colon).
  EXPECT_EQ(status_of(raw_exchange(
                port, "GET /healthz HTTP/1.1\r\nbroken header\r\n\r\n")),
            400);
  // Non-numeric Content-Length.
  EXPECT_EQ(status_of(raw_exchange(
                port,
                "POST /infer HTTP/1.1\r\nContent-Length: banana\r\n\r\n")),
            400);
  // Chunked transfer encoding is not implemented, and says so.
  EXPECT_EQ(
      status_of(raw_exchange(
          port,
          "POST /infer HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")),
      501);
  // Declared body over the cap is refused from the header alone.
  EXPECT_EQ(status_of(raw_exchange(
                port, "POST /infer HTTP/1.1\r\nContent-Length: 4096\r\n\r\n")),
            413);
  // Header block over the cap.
  EXPECT_EQ(status_of(raw_exchange(
                port, "GET /healthz HTTP/1.1\r\nX-Pad: " +
                          std::string(1024, 'x') + "\r\n\r\n")),
            431);
  // Valid JSON, invalid tensor: shape/payload mismatch.
  EXPECT_EQ(
      status_of(raw_exchange(
          port,
          "POST /infer HTTP/1.1\r\nContent-Length: 37\r\n\r\n"
          "{\"shape\":[1,3,8,8],\"data_b64\":\"AAAA\"}")),
      400);
  // Bad base64 payload.
  HttpClient client("127.0.0.1", port);
  HttpResponse bad64 = client.post(
      "/infer", "{\"shape\":[1,1,1,1],\"data_b64\":\"!!!not-base64!!!\"}");
  EXPECT_EQ(bad64.status, 400);
  // Unknown priority name.
  HttpResponse badprio = client.post(
      "/infer",
      "{\"shape\":[1,1,1,1],\"data_b64\":\"AAAAAA==\",\"priority\":\"vip\"}");
  EXPECT_EQ(badprio.status, 400);
  // Conflicting duplicates of a singleton header are a request-smuggling
  // vector behind a proxy that honors the other copy: rejected outright.
  EXPECT_EQ(status_of(raw_exchange(
                port,
                "POST /infer HTTP/1.1\r\nContent-Length: 2\r\n"
                "Content-Length: 0\r\n\r\n{}")),
            400);
  // A shape whose element product wraps a 64-bit size_t back to 0 (the
  // extents pass the per-extent cap; 3 * 2^64 ≡ 0) paired with an empty
  // payload must be rejected, not allocated tiny and indexed huge.
  HttpResponse wrapped = client.post(
      "/infer",
      "{\"shape\":[4194304,3,2097152,2097152],\"data_b64\":\"\"}");
  EXPECT_EQ(wrapped.status, 400) << wrapped.body;
  // deadline_ms outside int64 nanoseconds range: 400, not UB at the cast.
  HttpResponse huge_dl = client.post(
      "/infer",
      "{\"shape\":[1,1,1,1],\"data_b64\":\"AAAAAA==\",\"deadline_ms\":1e308}");
  EXPECT_EQ(huge_dl.status, 400) << huge_dl.body;
  // JSON number overflow (strtod -> inf) must fail the parse.
  HttpResponse inf_dl = client.post(
      "/infer",
      "{\"shape\":[1,1,1,1],\"data_b64\":\"AAAAAA==\",\"deadline_ms\":1e999}");
  EXPECT_EQ(inf_dl.status, 400) << inf_dl.body;
  // Same overflow via the octet-stream query string.
  HttpResponse inf_q = client.request(
      "POST", "/infer?shape=1,1,1,1&deadline_ms=1e999", std::string(4, '\0'),
      {{"Content-Type", "application/octet-stream"}});
  EXPECT_EQ(inf_q.status, 400) << inf_q.body;

  // After all that abuse the server still serves real traffic, and the
  // only 5xx it ever sent was the deliberate 501 above — nothing
  // crashed into a 500.
  EXPECT_EQ(client.get("/healthz").status, 200);
  EXPECT_EQ(server.stats().responses_5xx, 1u);
}

TEST(HttpHygiene, SlowLorisReaderTimesOutWith408) {
  auto plan = make_plan(MacroMvmEngine::Mode::kAnalog);
  SchedulerOptions sched;
  sched.workers = 1;
  Scheduler scheduler(*plan, sched);
  HttpServerOptions options;
  options.read_timeout = milliseconds(150);
  HttpServer server(scheduler, *plan, options);

  // Send a request prefix, then stall: the read deadline must fire, the
  // server must answer 408 and close (raw_exchange reads until close).
  const auto start = std::chrono::steady_clock::now();
  const std::string raw =
      raw_exchange(server.port(), "POST /infer HTTP/1.1\r\nContent-Le");
  EXPECT_EQ(status_of(raw), 408) << raw;
  // ...and it fired on the configured clock, not the 3 s socket guard.
  EXPECT_LT(std::chrono::steady_clock::now() - start, milliseconds(2500));
  EXPECT_GE(server.stats().read_timeouts, 1u);

  // An idle connection past the deadline is closed silently (no 408).
  EXPECT_TRUE(raw_exchange(server.port(), "").empty());
}

TEST(HttpHygiene, PipelinedBurstIsServedWithBoundedStack) {
  auto plan = make_plan(MacroMvmEngine::Mode::kAnalog);
  SchedulerOptions sched;
  sched.workers = 1;
  Scheduler scheduler(*plan, sched);
  HttpServer server(scheduler, *plan);

  // Hundreds of tiny requests in one write. The respond/parse cycle is
  // driven by a loop (not queue_response -> on_writable recursion), so
  // the burst costs O(1) event-loop stack and every request is answered
  // in order on the one connection.
  constexpr int kBurst = 500;
  std::string wire;
  for (int i = 0; i < kBurst - 1; ++i) wire += "GET /healthz HTTP/1.1\r\n\r\n";
  wire += "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
  const std::string raw = raw_exchange(server.port(), wire);
  std::size_t answered = 0;
  for (std::size_t pos = raw.find("HTTP/1.1 200"); pos != std::string::npos;
       pos = raw.find("HTTP/1.1 200", pos + 1)) {
    ++answered;
  }
  EXPECT_EQ(answered, static_cast<std::size_t>(kBurst));
  EXPECT_EQ(server.stats().connections_accepted, 1u);

  // A request pipelined behind an /infer body gets no socket event of
  // its own — the completion path must re-pump the parser after queueing
  // the inference response.
  const std::string body = infer_body(make_input(11, {1, 3, 8, 8}));
  const std::string mixed = raw_exchange(
      server.port(),
      "POST /infer HTTP/1.1\r\nContent-Length: " +
          std::to_string(body.size()) + "\r\n\r\n" + body +
          "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
  std::size_t mixed_answered = 0;
  for (std::size_t pos = mixed.find("HTTP/1.1 200"); pos != std::string::npos;
       pos = mixed.find("HTTP/1.1 200", pos + 1)) {
    ++mixed_answered;
  }
  EXPECT_EQ(mixed_answered, 2u) << mixed.substr(0, 200);
  EXPECT_NE(mixed.find("\"latency_ms\":"), std::string::npos);
}

// ------------------------------------------------------ graceful drain

TEST(HttpDrain, FinishesInFlightThenRefusesNewConnections) {
  auto plan = make_plan(MacroMvmEngine::Mode::kAnalog);
  SchedulerOptions sched;
  sched.workers = 1;
  sched.max_microbatch = 1;
  Scheduler scheduler(*plan, sched);
  auto server = std::make_unique<HttpServer>(scheduler, *plan);
  const int port = server->port();

  // Several requests across lanes, enough work that some are still
  // queued when the drain starts.
  constexpr int kInFlight = 4;
  const char* kPriorities[] = {"interactive", "batch", "best_effort",
                               "batch"};
  std::vector<std::future<HttpResponse>> responses;
  for (int i = 0; i < kInFlight; ++i) {
    responses.push_back(std::async(std::launch::async, [&, i] {
      HttpClient c("127.0.0.1", port, milliseconds(30000));
      return c.post("/infer",
                    infer_body(make_input(static_cast<unsigned>(40 + i),
                                          {2, 3, 8, 8}),
                               kPriorities[i]));
    }));
  }
  // Wait until the server has received all of them (they are either
  // queued in the scheduler or waiting on a handler thread).
  for (int spin = 0; spin < 200 && server->stats().requests <
                                       static_cast<std::uint64_t>(kInFlight);
       ++spin) {
    std::this_thread::sleep_for(milliseconds(10));
  }
  ASSERT_EQ(server->stats().requests, static_cast<std::uint64_t>(kInFlight));

  server->drain();
  EXPECT_TRUE(server->draining());

  // Every request received before the drain completed with a real
  // response — none dropped, none errored.
  for (auto& f : responses) {
    EXPECT_EQ(f.get().status, 200);
  }
  EXPECT_EQ(server->stats().responses_2xx,
            static_cast<std::uint64_t>(kInFlight));

  // New connections are refused at the socket.
  HttpClient late("127.0.0.1", port, milliseconds(500));
  EXPECT_THROW((void)late.get("/healthz"), std::runtime_error);

  server.reset();  // double-drain via destructor must be a no-op
  scheduler.wait_idle();
}

// ------------------------------------- resilience over the wire

TEST(HttpResilience, HungWorkerMapsTo503AndDrainStaysPrompt) {
  auto plan = make_plan(MacroMvmEngine::Mode::kAnalog);

  // Wedge the only worker inside the TEST-ONLY fault hook on its first
  // batch; the watchdog is what must unblock the HTTP handler.
  std::mutex hang_mutex;
  std::condition_variable hang_cv;
  bool hang_armed = true;
  bool hung = false;
  std::atomic<bool> hook_exited{false};

  SchedulerOptions sched;
  sched.workers = 1;
  sched.max_microbatch = 1;
  sched.resilience.watchdog_timeout = milliseconds(40);
  sched.worker_fault_hook = [&](int) {
    std::unique_lock lock(hang_mutex);
    if (!hang_armed) return;
    hang_armed = false;
    hung = true;
    hang_cv.notify_all();
    hang_cv.wait(lock, [&] { return !hung; });
    hook_exited.store(true);
  };
  Scheduler scheduler(*plan, sched);
  auto server = std::make_unique<HttpServer>(scheduler, *plan);
  const int port = server->port();

  auto pending = std::async(std::launch::async, [&] {
    HttpClient c("127.0.0.1", port, milliseconds(30000));
    return c.post("/infer", infer_body(make_input(70, {1, 3, 8, 8})));
  });
  {
    std::unique_lock lock(hang_mutex);
    hang_cv.wait(lock, [&] { return hung; });
  }

  // The watchdog fails the hung batch: the client gets a retriable 503
  // instead of hanging for the full connection timeout.
  const HttpResponse resp = pending.get();
  EXPECT_EQ(resp.status, 503);
  EXPECT_NE(resp.body.find("worker_hung"), std::string::npos) << resp.body;
  EXPECT_NE(resp.headers.find("retry-after"), resp.headers.end());

  // The quarantined worker shows up as degraded on /healthz (still 200:
  // the server is up, just impaired).
  std::string health;
  for (int spin = 0; spin < 200; ++spin) {
    HttpClient probe("127.0.0.1", port, milliseconds(2000));
    const HttpResponse hz = probe.get("/healthz");
    EXPECT_EQ(hz.status, 200);
    health = hz.body;
    if (health.find("\"status\":\"degraded\"") != std::string::npos) break;
    std::this_thread::sleep_for(milliseconds(5));
  }
  EXPECT_NE(health.find("\"status\":\"degraded\""), std::string::npos)
      << health;
  EXPECT_NE(health.find("\"healthy_workers\":0"), std::string::npos) << health;

  // Drain while the worker is STILL wedged in the hook: it must return
  // promptly — the watchdog already resolved the only in-flight request,
  // so no handler thread is left waiting on the scheduler.
  const auto start = std::chrono::steady_clock::now();
  server->drain();
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(5));
  server.reset();

  // Release the hook before the Scheduler (which owns the closure) dies;
  // the late worker discovers its batch was settled and exits cleanly
  // through the normal graceful shutdown.
  {
    std::lock_guard lock(hang_mutex);
    hung = false;
  }
  hang_cv.notify_all();
  for (int i = 0; i < 2500 && !hook_exited.load(); ++i) {
    std::this_thread::sleep_for(milliseconds(2));
  }
  ASSERT_TRUE(hook_exited.load()) << "hung worker never left the fault hook";
  std::this_thread::sleep_for(milliseconds(5));
  scheduler.shutdown();
}

}  // namespace
}  // namespace yoloc
