// Loss function tests: cross-entropy values and gradients, grid
// detection loss semantics and numeric gradients.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "nn/loss.hpp"
#include "tensor/ops.hpp"

namespace yoloc {
namespace {

TEST(Sigmoid, MatchesReference) {
  EXPECT_NEAR(sigmoidf(0.0f), 0.5f, 1e-6);
  EXPECT_NEAR(sigmoidf(100.0f), 1.0f, 1e-6);
  EXPECT_NEAR(sigmoidf(-100.0f), 0.0f, 1e-6);
  EXPECT_NEAR(sigmoidf(1.0f), 1.0f / (1.0f + std::exp(-1.0f)), 1e-6);
}

TEST(CrossEntropy, UniformLogitsGiveLogC) {
  Tensor logits({4, 8});
  std::vector<int> labels{0, 1, 2, 3};
  const LossResult res = softmax_cross_entropy(logits, labels);
  EXPECT_NEAR(res.value, std::log(8.0), 1e-5);
}

TEST(CrossEntropy, PerfectPredictionNearZeroLoss) {
  Tensor logits({2, 3});
  logits.at2(0, 1) = 50.0f;
  logits.at2(1, 2) = 50.0f;
  const LossResult res = softmax_cross_entropy(logits, {1, 2});
  EXPECT_LT(res.value, 1e-4);
}

TEST(CrossEntropy, GradientIsSoftmaxMinusOneHot) {
  Rng rng(1);
  Tensor logits = Tensor::randn({3, 5}, rng);
  std::vector<int> labels{4, 0, 2};
  const LossResult res = softmax_cross_entropy(logits, labels);
  Tensor probs = softmax_rows(logits);
  for (int b = 0; b < 3; ++b) {
    for (int c = 0; c < 5; ++c) {
      const float expect =
          (probs.at2(b, c) - (labels[(std::size_t)b] == c ? 1.0f : 0.0f)) /
          3.0f;
      EXPECT_NEAR(res.grad.at2(b, c), expect, 1e-5);
    }
  }
}

TEST(CrossEntropy, NumericGradient) {
  Rng rng(2);
  Tensor logits = Tensor::randn({2, 4}, rng);
  std::vector<int> labels{3, 1};
  const LossResult res = softmax_cross_entropy(logits, labels);
  const float eps = 1e-3f;
  for (int b = 0; b < 2; ++b) {
    for (int c = 0; c < 4; ++c) {
      Tensor lp = logits;
      lp.at2(b, c) += eps;
      Tensor lm = logits;
      lm.at2(b, c) -= eps;
      const double num = (softmax_cross_entropy(lp, labels).value -
                          softmax_cross_entropy(lm, labels).value) /
                         (2.0 * eps);
      EXPECT_NEAR(res.grad.at2(b, c), num, 2e-4);
    }
  }
}

TEST(CrossEntropy, RejectsBadLabels) {
  Tensor logits({1, 3});
  EXPECT_THROW(softmax_cross_entropy(logits, {5}), std::runtime_error);
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 1}), std::runtime_error);
}

GridLossConfig small_cfg() {
  GridLossConfig cfg;
  cfg.grid = 2;
  cfg.classes = 3;
  return cfg;
}

TEST(GridLoss, EmptySceneWantsZeroObjectness) {
  const auto cfg = small_cfg();
  Tensor pred({1, 8, 2, 2});
  std::vector<std::vector<GtBox>> gt(1);
  const LossResult res = grid_detection_loss(pred, gt, cfg);
  // With zero logits, obj = 0.5 per cell: loss = 4 * lambda_noobj*log(2).
  EXPECT_NEAR(res.value, 4.0 * cfg.lambda_noobj * std::log(2.0), 1e-4);
  // Gradient pushes objectness down (positive gradient on obj logit).
  EXPECT_GT(res.grad.at4(0, 4, 0, 0), 0.0f);
}

TEST(GridLoss, ResponsibleCellGetsBoxAndClassGradients) {
  const auto cfg = small_cfg();
  Tensor pred({1, 8, 2, 2});
  GtBox box;
  box.cx = 0.25f;  // cell (0,0) in a 2x2 grid
  box.cy = 0.25f;
  box.w = 0.3f;
  box.h = 0.4f;
  box.cls = 1;
  std::vector<std::vector<GtBox>> gt{{box}};
  const LossResult res = grid_detection_loss(pred, gt, cfg);
  EXPECT_GT(res.value, 0.0);
  // Objectness of the responsible cell is pushed up (negative gradient).
  EXPECT_LT(res.grad.at4(0, 4, 0, 0), 0.0f);
  // Class 1 logit pushed up, others down.
  EXPECT_LT(res.grad.at4(0, 5 + 1, 0, 0), 0.0f);
  EXPECT_GT(res.grad.at4(0, 5 + 0, 0, 0), 0.0f);
  // Non-responsible cells get only objectness-down gradients.
  EXPECT_GT(res.grad.at4(0, 4, 1, 1), 0.0f);
  EXPECT_FLOAT_EQ(res.grad.at4(0, 0, 1, 1), 0.0f);
}

TEST(GridLoss, NumericGradientOnRandomScene) {
  const auto cfg = small_cfg();
  Rng rng(3);
  Tensor pred = Tensor::randn({1, 8, 2, 2}, rng);
  GtBox box;
  box.cx = 0.7f;
  box.cy = 0.6f;
  box.w = 0.25f;
  box.h = 0.25f;
  box.cls = 2;
  std::vector<std::vector<GtBox>> gt{{box}};
  const LossResult res = grid_detection_loss(pred, gt, cfg);
  const float eps = 1e-3f;
  for (int c = 0; c < 8; ++c) {
    for (int gy = 0; gy < 2; ++gy) {
      for (int gx = 0; gx < 2; ++gx) {
        Tensor pp = pred;
        pp.at4(0, c, gy, gx) += eps;
        Tensor pm = pred;
        pm.at4(0, c, gy, gx) -= eps;
        const double num = (grid_detection_loss(pp, gt, cfg).value -
                            grid_detection_loss(pm, gt, cfg).value) /
                           (2.0 * eps);
        EXPECT_NEAR(res.grad.at4(0, c, gy, gx), num, 5e-4)
            << "channel " << c << " cell " << gy << "," << gx;
      }
    }
  }
}

TEST(GridLoss, RejectsMismatchedShapes) {
  const auto cfg = small_cfg();
  Tensor pred({1, 7, 2, 2});  // wrong channel count
  std::vector<std::vector<GtBox>> gt(1);
  EXPECT_THROW(grid_detection_loss(pred, gt, cfg), std::runtime_error);
}

TEST(GridLoss, LowerLossForBetterPrediction) {
  const auto cfg = small_cfg();
  GtBox box;
  box.cx = 0.25f;
  box.cy = 0.25f;
  box.w = 0.3f;
  box.h = 0.3f;
  box.cls = 0;
  std::vector<std::vector<GtBox>> gt{{box}};

  Tensor bad({1, 8, 2, 2});
  Tensor good({1, 8, 2, 2});
  good.at4(0, 4, 0, 0) = 6.0f;   // confident objectness
  good.at4(0, 5, 0, 0) = 6.0f;   // right class
  // tx=ty=sigmoid(0)=0.5 matches the box center; set size logits to the
  // sigmoid-inverse of 0.3.
  const float t = std::log(0.3f / 0.7f);
  good.at4(0, 2, 0, 0) = t;
  good.at4(0, 3, 0, 0) = t;
  for (int gy = 0; gy < 2; ++gy) {
    for (int gx = 0; gx < 2; ++gx) {
      if (gx == 0 && gy == 0) continue;
      good.at4(0, 4, gy, gx) = -6.0f;  // confident emptiness
    }
  }
  EXPECT_LT(grid_detection_loss(good, gt, cfg).value,
            grid_detection_loss(bad, gt, cfg).value);
}

}  // namespace
}  // namespace yoloc
