// Macro-level tests: functional MVM fidelity against exact integer math,
// cost accounting, and the Table I specification summary.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "macro/cim_macro.hpp"
#include "macro/macro_spec.hpp"

namespace yoloc {
namespace {

MacroConfig quiet_rom() {
  MacroConfig cfg = default_rom_macro();
  cfg.bitline.sigma_cell = 0.0;
  cfg.adc.noise_sigma_v = 0.0;
  return cfg;
}

std::vector<std::int32_t> exact_mvm(const std::vector<std::int8_t>& w, int m,
                                    int k,
                                    const std::vector<std::uint8_t>& x) {
  std::vector<std::int32_t> y(static_cast<std::size_t>(m), 0);
  for (int j = 0; j < m; ++j) {
    std::int64_t acc = 0;
    for (int i = 0; i < k; ++i) {
      acc += static_cast<std::int64_t>(w[static_cast<std::size_t>(j) * k + i]) *
             x[static_cast<std::size_t>(i)];
    }
    y[static_cast<std::size_t>(j)] = static_cast<std::int32_t>(acc);
  }
  return y;
}

TEST(CimMacro, NoiseFreeMvmIsNearExact) {
  const CimMacro macro(quiet_rom());
  Rng rng(1);
  const int m = 4;
  const int k = 128;
  std::vector<std::int8_t> w(static_cast<std::size_t>(m) * k);
  std::vector<std::uint8_t> x(static_cast<std::size_t>(k));
  for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  for (auto& v : x) v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));

  std::vector<std::int32_t> y(static_cast<std::size_t>(m));
  MacroRunStats stats;
  macro.mvm(w.data(), m, k, x.data(), y.data(), rng, stats);
  const auto ref = exact_mvm(w, m, k, x);

  // rows_per_activation=32 with a 5-bit ADC leaves ~1 count of rounding
  // per read; relative error stays below ~2%.
  for (int j = 0; j < m; ++j) {
    const double denom = std::max(1000.0, std::fabs(double(ref[j])));
    EXPECT_LT(std::fabs(double(y[j]) - ref[j]) / denom, 0.02) << "output " << j;
  }
}

TEST(CimMacro, SmallValuesExactlyReconstructed) {
  // Counts within one ADC step: zero quantization error expected.
  MacroConfig cfg = quiet_rom();
  const CimMacro macro(cfg);
  Rng rng(2);
  const int k = 16;
  std::vector<std::int8_t> w(static_cast<std::size_t>(2) * k);
  std::vector<std::uint8_t> x(static_cast<std::size_t>(k));
  for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform_int(-3, 3));
  for (auto& v : x) v = static_cast<std::uint8_t>(rng.uniform_int(0, 3));
  std::vector<std::int32_t> y(2);
  MacroRunStats stats;
  macro.mvm(w.data(), 2, k, x.data(), y.data(), rng, stats);
  const auto ref = exact_mvm(w, 2, k, x);
  EXPECT_EQ(y[0], ref[0]);
  EXPECT_EQ(y[1], ref[1]);
}

TEST(CimMacro, AggressiveGroupingDegradesAccuracy) {
  MacroConfig precise = quiet_rom();
  MacroConfig aggressive = quiet_rom();
  aggressive.geometry.rows_per_activation = 128;
  // Reduce per-cell discharge so 128 cells fit the bitline range.
  aggressive.bitline.i_cell_ua = 0.5;

  const CimMacro macro_p(precise);
  const CimMacro macro_a(aggressive);
  Rng rng(3);
  const int m = 4;
  const int k = 128;
  std::vector<std::int8_t> w(static_cast<std::size_t>(m) * k);
  std::vector<std::uint8_t> x(static_cast<std::size_t>(k));
  for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  for (auto& v : x) v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));

  std::vector<std::int32_t> yp(static_cast<std::size_t>(m));
  std::vector<std::int32_t> ya(static_cast<std::size_t>(m));
  MacroRunStats sp;
  MacroRunStats sa;
  macro_p.mvm(w.data(), m, k, x.data(), yp.data(), rng, sp);
  macro_a.mvm(w.data(), m, k, x.data(), ya.data(), rng, sa);
  const auto ref = exact_mvm(w, m, k, x);

  double err_p = 0.0;
  double err_a = 0.0;
  for (int j = 0; j < m; ++j) {
    err_p += std::fabs(double(yp[j]) - ref[j]);
    err_a += std::fabs(double(ya[j]) - ref[j]);
  }
  EXPECT_LT(err_p, err_a);
  // Fewer groups -> fewer conversions (energy win of the trade-off).
  EXPECT_LT(sa.array.adc_conversions, sp.array.adc_conversions);
}

TEST(CimMacro, StatsCountConversions) {
  const CimMacro macro(quiet_rom());
  Rng rng(4);
  const int m = 2;
  const int k = 64;  // 2 groups of 32
  std::vector<std::int8_t> w(static_cast<std::size_t>(m) * k, 1);
  std::vector<std::uint8_t> x(static_cast<std::size_t>(k), 1);
  std::vector<std::int32_t> y(static_cast<std::size_t>(m));
  MacroRunStats stats;
  macro.mvm(w.data(), m, k, x.data(), y.data(), rng, stats);
  // conversions = m * weight_bits * input_bits * groups = 2*8*8*2.
  EXPECT_EQ(stats.array.adc_conversions, 256u);
  EXPECT_EQ(stats.macro_ops, 1u);
  EXPECT_EQ(stats.macs, static_cast<std::uint64_t>(m) * k);
  EXPECT_GT(stats.latency_ns, 0.0);
  EXPECT_GT(stats.energy_pj(), 0.0);
}

TEST(CimMacro, ExactCostPathMatchesIntegerMath) {
  const CimMacro macro(quiet_rom());
  Rng rng(5);
  const int m = 3;
  const int k = 100;
  std::vector<std::int8_t> w(static_cast<std::size_t>(m) * k);
  std::vector<std::uint8_t> x(static_cast<std::size_t>(k));
  for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  for (auto& v : x) v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  std::vector<std::int32_t> y(static_cast<std::size_t>(m));
  MacroRunStats stats;
  macro.mvm_exact_cost(w.data(), m, k, x.data(), y.data(), stats);
  EXPECT_EQ(y, exact_mvm(w, m, k, x));
  EXPECT_GT(stats.energy_pj(), 0.0);
}

TEST(CimMacro, RejectsOversizedReduction) {
  const CimMacro macro(quiet_rom());
  Rng rng(6);
  std::vector<std::int8_t> w(200, 0);
  std::vector<std::uint8_t> x(200, 0);
  std::vector<std::int32_t> y(1);
  MacroRunStats stats;
  EXPECT_THROW(macro.mvm(w.data(), 1, 200, x.data(), y.data(), rng, stats),
               std::runtime_error);
}

TEST(CimMacro, RejectsOperandWidthsBeyondRowMaskPlanes) {
  // The bit-serial paths index fixed RowMask xbits[8] / wbits[8] arrays;
  // wider operands must be rejected at construction, not corrupt the
  // stack at run time. (MacroConfig::validate alone allows up to 16.)
  MacroConfig cfg = quiet_rom();
  cfg.geometry.input_bits = 9;
  EXPECT_THROW(CimMacro{cfg}, std::runtime_error);

  cfg = quiet_rom();
  cfg.geometry.weight_bits = 9;
  cfg.geometry.cols = 9 * 32;  // keep cols divisible by weight_bits
  EXPECT_THROW(CimMacro{cfg}, std::runtime_error);

  cfg = quiet_rom();
  cfg.geometry.input_bits = 0;
  EXPECT_THROW(CimMacro{cfg}, std::runtime_error);

  cfg = quiet_rom();
  cfg.geometry.weight_bits = 0;
  EXPECT_THROW(CimMacro{cfg}, std::runtime_error);

  // The boundary value stays accepted.
  cfg = quiet_rom();
  cfg.geometry.input_bits = 8;
  cfg.geometry.weight_bits = 8;
  EXPECT_NO_THROW(CimMacro{cfg});
}

TEST(MacroConfig, RomDensityMatchesTableI) {
  const MacroConfig rom = default_rom_macro();
  // Table I: ~1.2 Mb, ~0.24 mm^2, ~5 Mb/mm^2.
  EXPECT_NEAR(rom.geometry.capacity_bits() / 1e6, 1.18, 0.1);
  EXPECT_NEAR(rom.area_mm2(), 0.24, 0.05);
  EXPECT_NEAR(rom.density_mb_per_mm2(), 5.0, 1.0);
}

TEST(MacroConfig, SramMuchLessDense) {
  const MacroConfig rom = default_rom_macro();
  const MacroConfig sram = default_sram_macro();
  const double ratio = rom.density_mb_per_mm2() / sram.density_mb_per_mm2();
  // Paper: ~19x macro-level density advantage.
  EXPECT_GT(ratio, 10.0);
  EXPECT_LT(ratio, 40.0);
  // Cell-level: 18.5x.
  EXPECT_NEAR(sram.area.cell_area_um2 / rom.area.cell_area_um2, 18.5, 0.1);
}

TEST(MacroConfig, AreaBreakdownSumsToOne) {
  for (const MacroConfig& cfg :
       {default_rom_macro(), default_sram_macro()}) {
    const auto b = cfg.area_breakdown();
    EXPECT_NEAR(b.array + b.adc + b.periphery + b.overhead, 1.0, 1e-9);
  }
}

TEST(MacroConfig, OnlySramWritable) {
  EXPECT_FALSE(default_rom_macro().writable());
  EXPECT_TRUE(default_sram_macro().writable());
  EXPECT_EQ(default_rom_macro().standby_power_uw, 0.0);
  EXPECT_GT(default_sram_macro().standby_power_uw, 0.0);
}

TEST(MacroSpec, TableIValues) {
  const CimMacro macro(default_rom_macro());
  Rng rng(7);
  const MacroSpecSummary s = summarize_macro(macro, rng, /*samples=*/16);
  EXPECT_NEAR(s.inference_time_ns, 8.9, 0.05);     // 8 x 1.1125 ns
  EXPECT_EQ(s.operation_number, 256);              // 2 x 128 rows
  EXPECT_NEAR(s.throughput_gops, 28.8, 0.3);
  EXPECT_NEAR(s.cell_area_um2, 0.014, 1e-6);
  EXPECT_NEAR(s.density_mb_per_mm2, 5.0, 1.0);
  // Measured efficiency should land in Table I's neighbourhood.
  EXPECT_GT(s.mac_eff_tops_per_w, 8.0);
  EXPECT_LT(s.mac_eff_tops_per_w, 16.0);
  EXPECT_GT(s.area_eff_gops_per_mm2, 80.0);
  EXPECT_LT(s.area_eff_gops_per_mm2, 160.0);
}

TEST(MacroSpec, TablePrintsAllRows) {
  const CimMacro macro(default_rom_macro());
  Rng rng(8);
  const MacroSpecSummary s = summarize_macro(macro, rng, /*samples=*/4);
  const TextTable t = macro_spec_table(s);
  EXPECT_EQ(t.row_count(), 12u);
  EXPECT_NE(t.to_string().find("TOPS/W"), std::string::npos);
}

TEST(MacroSpec, SramLessEfficientThanRom) {
  Rng rng(9);
  const CimMacro rom(default_rom_macro());
  const CimMacro sram(default_sram_macro());
  const auto srom = summarize_macro(rom, rng, 8);
  const auto ssram = summarize_macro(sram, rng, 8);
  EXPECT_GT(srom.mac_eff_tops_per_w, ssram.mac_eff_tops_per_w);
}

}  // namespace
}  // namespace yoloc
