#pragma once
// Numeric gradient checking helper shared by the layer tests.
//
// Builds the scalar loss L = sum(forward(x) * r) for a fixed random r,
// computes analytic gradients via the layer's backward pass, and compares
// them against central finite differences on a random subset of input and
// parameter coordinates.

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "nn/layer.hpp"
#include "tensor/ops.hpp"

namespace yoloc::testing_support {

struct GradCheckResult {
  float max_input_err = 0.0f;
  float max_param_err = 0.0f;
};

inline double loss_of(Layer& layer, const Tensor& x, const Tensor& r) {
  Tensor out = layer.forward(x, /*train=*/true);
  double acc = 0.0;
  for (std::size_t i = 0; i < out.size(); ++i) acc += out[i] * r[i];
  return acc;
}

/// Relative-or-absolute error between analytic and numeric derivatives.
inline float grad_err(float analytic, double numeric) {
  const float denom = std::max(1.0f, std::fabs(analytic) +
                                         static_cast<float>(std::fabs(numeric)));
  return std::fabs(analytic - static_cast<float>(numeric)) / denom;
}

inline GradCheckResult gradcheck(Layer& layer, Tensor x, Rng& rng,
                                 int probes = 12, float eps = 1e-2f) {
  Tensor out = layer.forward(x, true);
  Tensor r = Tensor::randn(out.shape(), rng);

  // Analytic pass.
  for (Parameter* p : layer.parameters()) p->zero_grad();
  (void)layer.forward(x, true);
  Tensor grad_x = layer.backward(r);

  GradCheckResult res;

  // Input coordinates.
  for (int probe = 0; probe < probes; ++probe) {
    const std::size_t i =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(x.size()) - 1));
    const float orig = x[i];
    x[i] = orig + eps;
    const double lp = loss_of(layer, x, r);
    x[i] = orig - eps;
    const double lm = loss_of(layer, x, r);
    x[i] = orig;
    const double numeric = (lp - lm) / (2.0 * eps);
    res.max_input_err =
        std::max(res.max_input_err, grad_err(grad_x[i], numeric));
  }

  // Parameter coordinates (re-run analytic pass to refresh caches).
  for (Parameter* p : layer.parameters()) p->zero_grad();
  (void)layer.forward(x, true);
  (void)layer.backward(r);
  for (Parameter* p : layer.parameters()) {
    for (int probe = 0; probe < probes / 2 + 1; ++probe) {
      const std::size_t i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(p->value.size()) - 1));
      const float orig = p->value[i];
      p->value[i] = orig + eps;
      const double lp = loss_of(layer, x, r);
      p->value[i] = orig - eps;
      const double lm = loss_of(layer, x, r);
      p->value[i] = orig;
      const double numeric = (lp - lm) / (2.0 * eps);
      res.max_param_err =
          std::max(res.max_param_err, grad_err(p->grad[i], numeric));
    }
  }
  return res;
}

}  // namespace yoloc::testing_support
