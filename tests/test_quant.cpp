// Quantization tests: round-trip error bounds, scale selection, clamping
// semantics and the unsigned activation convention.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "tensor/quant.hpp"

namespace yoloc {
namespace {

TEST(Quant, QmaxValues) {
  EXPECT_EQ(signed_qmax(8), 127);
  EXPECT_EQ(signed_qmax(2), 1);
  EXPECT_EQ(unsigned_qmax(8), 255);
  EXPECT_EQ(unsigned_qmax(1), 1);
  EXPECT_THROW(signed_qmax(9), std::runtime_error);
  EXPECT_THROW(unsigned_qmax(0), std::runtime_error);
}

TEST(Quant, SymmetricRoundTripWithinHalfStep) {
  Rng rng(1);
  Tensor t = Tensor::randn({256}, rng, 1.5f);
  QuantizedTensor q = quantize_symmetric(t, 8);
  Tensor back = dequantize(q);
  const float half_step = q.scale * 0.5f + 1e-6f;
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_LE(std::fabs(back[i] - t[i]), half_step);
  }
}

TEST(Quant, SymmetricScaleFromMaxAbs) {
  Tensor t = Tensor::from_vector({3}, {-2.54f, 1.0f, 0.5f});
  QuantizedTensor q = quantize_symmetric(t, 8);
  EXPECT_NEAR(q.scale, 2.54f / 127.0f, 1e-6);
  EXPECT_EQ(q.data[0], -127);
}

TEST(Quant, ZeroTensorGetsUnitScale) {
  Tensor t({8});
  QuantizedTensor q = quantize_symmetric(t);
  EXPECT_FLOAT_EQ(q.scale, 1.0f);
  for (auto v : q.data) EXPECT_EQ(v, 0);
}

TEST(Quant, UnsignedClampsNegatives) {
  Tensor t = Tensor::from_vector({3}, {-1.0f, 0.0f, 2.0f});
  QuantizedActivations q = quantize_unsigned(t, 8);
  EXPECT_EQ(q.data[0], 0);
  EXPECT_EQ(q.data[2], 255);
}

TEST(Quant, UnsignedWithGivenScaleClips) {
  Tensor t = Tensor::from_vector({2}, {10.0f, 0.5f});
  QuantizedActivations q = quantize_unsigned_with_scale(t, 0.01f, 8);
  EXPECT_EQ(q.data[0], 255);  // 10/0.01 = 1000 clips at 255
  EXPECT_EQ(q.data[1], 50);
}

TEST(Quant, UnsignedRejectsBadScale) {
  Tensor t({2});
  EXPECT_THROW(quantize_unsigned_with_scale(t, 0.0f), std::runtime_error);
}

TEST(Quant, DequantizeActivations) {
  Tensor t = Tensor::from_vector({2}, {0.0f, 1.0f});
  QuantizedActivations q = quantize_unsigned(t, 8);
  Tensor back = dequantize(q);
  EXPECT_NEAR(back[1], 1.0f, 1e-5);
}

class QuantBitsProperty : public ::testing::TestWithParam<int> {};

TEST_P(QuantBitsProperty, SignedErrorBoundScalesWithBits) {
  const int bits = GetParam();
  Rng rng(bits);
  Tensor t = Tensor::randn({512}, rng);
  QuantizedTensor q = quantize_symmetric(t, bits);
  Tensor back = dequantize(q);
  const float half_step = q.scale * 0.5f + 1e-6f;
  float max_err = 0.0f;
  for (std::size_t i = 0; i < t.size(); ++i) {
    max_err = std::max(max_err, std::fabs(back[i] - t[i]));
  }
  EXPECT_LE(max_err, half_step);
  // Codes stay in range.
  const int qmax = signed_qmax(bits);
  for (auto v : q.data) {
    EXPECT_GE(v, -qmax);
    EXPECT_LE(v, qmax);
  }
}

TEST_P(QuantBitsProperty, UnsignedCodesInRange) {
  const int bits = GetParam();
  Rng rng(100 + bits);
  Tensor t = Tensor::rand_uniform({512}, rng, -0.2f, 3.0f);
  QuantizedActivations q = quantize_unsigned(t, bits);
  const int qmax = unsigned_qmax(bits);
  for (auto v : q.data) EXPECT_LE(static_cast<int>(v), qmax);
}

INSTANTIATE_TEST_SUITE_P(Bits, QuantBitsProperty,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace yoloc
