// Serving-scheduler semantics (src/serve/): priority ordering under
// contention, deadline expiry failing fast without skewing served-work
// metrics, admission control, graceful shutdown draining by priority,
// telemetry plumbing — and the determinism contract the scheduler
// inherits from the FIFO server: max_microbatch = 1 stays bit-identical
// to serial ExecutionContext runs.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <future>
#include <mutex>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "nn/activations.hpp"
#include "nn/container.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "runtime/deployment_plan.hpp"
#include "runtime/execution_context.hpp"
#include "runtime/inference_server.hpp"
#include "serve/metrics_registry.hpp"
#include "serve/request_queue.hpp"
#include "serve/scheduler.hpp"
#include "tensor/ops.hpp"

namespace yoloc {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

// Keep the concurrency paths exercised even on single-core CI boxes.
const bool g_env_pinned = [] {
  setenv("YOLOC_THREADS", "4", /*overwrite=*/1);
  return true;
}();

LayerPtr make_model(std::uint64_t seed) {
  Rng rng(seed);
  auto backbone = std::make_unique<Sequential>("backbone");
  backbone->add(std::make_unique<Conv2d>(3, 4, 3, 1, 1, true, rng, "b.c1"));
  backbone->add(std::make_unique<ReLU>());
  backbone->add(std::make_unique<MaxPool2d>(2));
  backbone->add(std::make_unique<Conv2d>(4, 6, 3, 1, 1, true, rng, "b.c2"));
  backbone->add(std::make_unique<ReLU>());
  auto net = std::make_unique<Sequential>("net");
  net->add(std::move(backbone));
  net->add(std::make_unique<GlobalAvgPool>());
  net->add(std::make_unique<Linear>(6, 5, true, rng, "head.fc"));
  for (Parameter* p : net->parameters()) {
    p->rom_resident = p->name.find("b.c") != std::string::npos;
  }
  return net;
}

std::unique_ptr<DeploymentPlan> make_plan(MacroMvmEngine::Mode mode) {
  LayerPtr net = make_model(21);
  Rng data_rng(33);
  Tensor calib = Tensor::rand_uniform({8, 3, 8, 8}, data_rng, 0.0f, 1.0f);
  DeploymentOptions options;
  options.mode = mode;
  return std::make_unique<DeploymentPlan>(std::move(net), calib,
                                          std::move(options));
}

Tensor make_input(std::uint64_t seed, std::vector<int> shape) {
  Rng rng(seed);
  return Tensor::rand_uniform(shape, rng, 0.0f, 1.0f);
}

/// ~50+ ms of work for one analog-mode worker on this model: the
/// "blocker" that keeps a single-worker scheduler busy while the queue
/// builds up. All deadline margins below assume the blocker outlasts
/// them by an order of magnitude.
Tensor make_blocker_input() { return make_input(7, {32, 3, 8, 8}); }

ServeRequest make_queued(std::uint64_t id, Priority p, std::vector<int> shape,
                         ServeClock::time_point deadline =
                             ServeClock::time_point::max()) {
  ServeRequest r;
  r.input = make_input(id + 1, std::move(shape));
  r.id = id;
  r.priority = p;
  r.submit_time = ServeClock::now();
  r.deadline = deadline;
  return r;
}

::testing::AssertionResult bit_identical(const Tensor& a, const Tensor& b) {
  if (!same_shape(a, b)) {
    return ::testing::AssertionFailure() << "shape mismatch";
  }
  if (std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) != 0) {
    return ::testing::AssertionFailure()
           << "payload differs (max |a-b| = " << max_abs_diff(a, b) << ")";
  }
  return ::testing::AssertionSuccess();
}

// ------------------------------------------------------- RequestQueue

TEST(RequestQueue, StrictPriorityThenFifoWithinLane) {
  RequestQueue q;
  const auto now = ServeClock::now();
  q.push(make_queued(0, Priority::kBestEffort, {1, 3, 8, 8}));
  q.push(make_queued(1, Priority::kBatch, {1, 3, 8, 8}));
  q.push(make_queued(2, Priority::kInteractive, {1, 3, 8, 8}));
  q.push(make_queued(3, Priority::kBatch, {1, 3, 8, 8}));

  auto b = q.pop_batch(1, now, 0);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0].id, 2u);  // interactive first
  b = q.pop_batch(1, now, 0);
  EXPECT_EQ(b[0].id, 1u);  // batch lane, FIFO
  b = q.pop_batch(1, now, 0);
  EXPECT_EQ(b[0].id, 3u);
  b = q.pop_batch(1, now, 0);
  EXPECT_EQ(b[0].id, 0u);  // best-effort last
  EXPECT_TRUE(q.empty());
}

TEST(RequestQueue, BatchesOnlyCompatibleGeometryFromOneLane) {
  RequestQueue q;
  const auto now = ServeClock::now();
  q.push(make_queued(0, Priority::kBatch, {1, 3, 8, 8}));
  q.push(make_queued(1, Priority::kBatch, {1, 3, 12, 12}));  // incompatible
  q.push(make_queued(2, Priority::kBatch, {2, 3, 8, 8}));    // N may differ
  q.push(make_queued(3, Priority::kInteractive, {1, 3, 8, 8}));  // other lane
  q.push(make_queued(4, Priority::kBatch, {1, 3, 8, 8}));

  // Interactive head pops alone first (nothing else in its lane).
  auto b = q.pop_batch(8, now, 0);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0].id, 3u);

  // Batch lane: greedy same-geometry pulls skip over the 12x12 request.
  b = q.pop_batch(8, now, 0);
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b[0].id, 0u);
  EXPECT_EQ(b[1].id, 2u);
  EXPECT_EQ(b[2].id, 4u);
  EXPECT_EQ(q.depth(Priority::kBatch), 1u);  // the 12x12 request remains

  b = q.pop_batch(8, now, 0);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0].id, 1u);
  EXPECT_TRUE(q.empty());
}

TEST(RequestQueue, MaxBatchCapsGreedyPulls) {
  RequestQueue q;
  const auto now = ServeClock::now();
  for (std::uint64_t i = 0; i < 5; ++i) {
    q.push(make_queued(i, Priority::kBatch, {1, 3, 8, 8}));
  }
  auto b = q.pop_batch(3, now, 0);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(q.depth(Priority::kBatch), 2u);
}

TEST(RequestQueue, DeadlineAwareWindowStopsBatchGrowth) {
  RequestQueue q;
  const auto now = ServeClock::now();
  // Five 1-image requests, each with 3 ms of slack. At an estimated
  // 1 ms/image, a 4-image batch would blow the tightest deadline, so
  // growth must stop at 3 requests.
  for (std::uint64_t i = 0; i < 5; ++i) {
    q.push(make_queued(i, Priority::kBatch, {1, 3, 8, 8},
                       now + milliseconds(3)));
  }
  constexpr std::uint64_t kMsPerImage = 1'000'000;
  auto b = q.pop_batch(8, now, kMsPerImage);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(q.depth(Priority::kBatch), 2u);
  // With no estimate the window is disabled and the cap is max_batch.
  b = q.pop_batch(8, now, 0);
  EXPECT_EQ(b.size(), 2u);

  // A candidate that blows the window is skipped, not a hard stop: a
  // later, smaller request can still fit. Head (1 img, 3 ms slack) +
  // 4-img candidate would need 5 ms — skip — but the trailing 1-img
  // request (2 img total = 2 ms) fits.
  q.push(make_queued(10, Priority::kBatch, {1, 3, 8, 8},
                     now + milliseconds(3)));
  q.push(make_queued(11, Priority::kBatch, {4, 3, 8, 8}));
  q.push(make_queued(12, Priority::kBatch, {1, 3, 8, 8}));
  b = q.pop_batch(8, now, kMsPerImage);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0].id, 10u);
  EXPECT_EQ(b[1].id, 12u);
  EXPECT_EQ(q.depth(Priority::kBatch), 1u);  // the 4-image request waits
}

TEST(RequestQueue, TakeExpiredHarvestsAcrossLanes) {
  RequestQueue q;
  const auto now = ServeClock::now();
  q.push(make_queued(0, Priority::kInteractive, {1, 3, 8, 8},
                     now - milliseconds(1)));
  q.push(make_queued(1, Priority::kBatch, {1, 3, 8, 8}));
  q.push(make_queued(2, Priority::kBestEffort, {1, 3, 8, 8},
                     now - milliseconds(2)));

  auto expired = q.take_expired(now);
  ASSERT_EQ(expired.size(), 2u);
  EXPECT_EQ(expired[0].id, 0u);
  EXPECT_EQ(expired[1].id, 2u);
  EXPECT_EQ(q.depth(Priority::kBatch), 1u);
  EXPECT_TRUE(q.take_expired(now).empty());
}

TEST(RequestQueue, AdmissionDecisions) {
  RequestQueue q;
  const auto now = ServeClock::now();
  const auto no_deadline = ServeClock::time_point::max();
  q.push(make_queued(0, Priority::kInteractive, {1, 3, 8, 8}));
  q.push(make_queued(1, Priority::kInteractive, {1, 3, 8, 8}));

  EXPECT_EQ(q.admit(Priority::kInteractive, now, no_deadline, 1, 2, 0),
            RequestQueue::Admission::kQueueFull);
  EXPECT_EQ(q.admit(Priority::kInteractive, now, no_deadline, 1, 0, 0),
            RequestQueue::Admission::kAccept);  // 0 = unlimited
  EXPECT_EQ(q.admit(Priority::kBatch, now, no_deadline, 1, 2, 0),
            RequestQueue::Admission::kAccept);  // caps are per lane
  EXPECT_EQ(q.admit(Priority::kBatch, now, now, 1, 0, 0),
            RequestQueue::Admission::kAlreadyExpired);
  // 1 ms of slack cannot fit 1 image at an estimated 2 ms/image.
  EXPECT_EQ(q.admit(Priority::kBatch, now, now + milliseconds(1), 1, 0,
                    2'000'000),
            RequestQueue::Admission::kInfeasible);
  EXPECT_EQ(q.admit(Priority::kBatch, now, now + milliseconds(10), 1, 0,
                    2'000'000),
            RequestQueue::Admission::kAccept);
}

// ------------------------------------------- weighted-fair lane policy

/// Pop `n` single-request batches and return the lane sequence.
std::vector<Priority> pop_sequence(RequestQueue& q, int n) {
  const auto now = ServeClock::now();
  std::vector<Priority> seq;
  for (int i = 0; i < n; ++i) {
    auto b = q.pop_batch(1, now, 0);
    if (b.empty()) break;
    seq.push_back(b[0].priority);
  }
  return seq;
}

TEST(RequestQueueWeighted, DeficitRoundRobinHonorsShares) {
  RequestQueue q;
  q.set_weights({4.0, 2.0, 1.0});
  std::uint64_t id = 0;
  for (int i = 0; i < 8; ++i) {
    q.push(make_queued(id++, Priority::kInteractive, {1, 3, 8, 8}));
    q.push(make_queued(id++, Priority::kBatch, {1, 3, 8, 8}));
    q.push(make_queued(id++, Priority::kBestEffort, {1, 3, 8, 8}));
  }
  // One full DWRR rotation serves 4 interactive, 2 batch, 1 best-effort:
  // proportional shares while every lane is backlogged, and best-effort
  // is served at least once per rotation — the starvation bound.
  const auto seq = pop_sequence(q, 14);
  const std::vector<Priority> expected = {
      Priority::kInteractive, Priority::kInteractive, Priority::kInteractive,
      Priority::kInteractive, Priority::kBatch,       Priority::kBatch,
      Priority::kBestEffort,  Priority::kInteractive, Priority::kInteractive,
      Priority::kInteractive, Priority::kInteractive, Priority::kBatch,
      Priority::kBatch,       Priority::kBestEffort};
  EXPECT_EQ(seq, expected);
}

TEST(RequestQueueWeighted, StarvationGapBoundedUnderFlood) {
  RequestQueue q;
  q.set_weights({6.0, 1.0, 1.0});
  for (std::uint64_t i = 0; i < 60; ++i) {
    q.push(make_queued(i, Priority::kInteractive, {1, 3, 8, 8}));
  }
  q.push(make_queued(100, Priority::kBestEffort, {1, 3, 8, 8}));
  q.push(make_queued(101, Priority::kBestEffort, {1, 3, 8, 8}));
  // Deficit round-robin bound: with weights {6, _, 1} a backlogged
  // best-effort lane is served at least once every 7 pops — the flood
  // cannot push it past one rotation.
  const auto seq = pop_sequence(q, 16);
  int first_be = -1;
  int second_be = -1;
  for (int i = 0; i < static_cast<int>(seq.size()); ++i) {
    if (seq[static_cast<std::size_t>(i)] != Priority::kBestEffort) continue;
    (first_be < 0 ? first_be : second_be) = i;
    if (second_be >= 0) break;
  }
  ASSERT_GE(first_be, 0);
  ASSERT_GE(second_be, 0);
  EXPECT_LE(first_be, 6);
  EXPECT_LE(second_be - first_be, 7);
}

TEST(RequestQueueWeighted, InfiniteAndZeroWeightTiers) {
  RequestQueue q;
  q.set_weights(strict_lane_weights());  // {inf, 1, 0}
  q.push(make_queued(0, Priority::kBestEffort, {1, 3, 8, 8}));
  q.push(make_queued(1, Priority::kBatch, {1, 3, 8, 8}));
  q.push(make_queued(2, Priority::kInteractive, {1, 3, 8, 8}));
  q.push(make_queued(3, Priority::kInteractive, {1, 3, 8, 8}));
  // Strict tier drains fully first, then the weighted lane, and the
  // weight-0 lane only when everything else is empty — the legacy
  // strict-priority order.
  const auto seq = pop_sequence(q, 4);
  const std::vector<Priority> expected = {
      Priority::kInteractive, Priority::kInteractive, Priority::kBatch,
      Priority::kBestEffort};
  EXPECT_EQ(seq, expected);

  // Weights must be sane.
  RequestQueue bad;
  EXPECT_THROW(bad.set_weights({-1.0, 1.0, 0.0}), std::runtime_error);
}

TEST(RequestQueueWeighted, HeavyHeadAccumulatesCreditAcrossRotations) {
  RequestQueue q;
  q.set_weights({0.0, 3.0, 1.0});
  // Best-effort head carries 4 images: with weight 1 it must accumulate
  // credit over several rotations while batch (weight 3) keeps serving.
  for (std::uint64_t i = 0; i < 12; ++i) {
    q.push(make_queued(i, Priority::kBatch, {1, 3, 8, 8}));
  }
  q.push(make_queued(50, Priority::kBestEffort, {4, 3, 8, 8}));
  const auto seq = pop_sequence(q, 14);
  int be_index = -1;
  for (int i = 0; i < static_cast<int>(seq.size()); ++i) {
    if (seq[static_cast<std::size_t>(i)] == Priority::kBestEffort) {
      be_index = i;
      break;
    }
  }
  // Needs 4 credits at 1/rotation, each rotation serving 3 batch pops:
  // served on the 4th rotation, i.e. after 9-12 batch pops, not before
  // (proportionality holds in image units, not request counts).
  ASSERT_GE(be_index, 0);
  EXPECT_GE(be_index, 9);
  EXPECT_LE(be_index, 13);
}

TEST(RequestQueueWeighted, LaneMaskRestrictsAndBypassesWeights) {
  RequestQueue q;
  q.set_weights({4.0, 2.0, 1.0});
  q.push(make_queued(0, Priority::kInteractive, {1, 3, 8, 8}));
  q.push(make_queued(1, Priority::kBatch, {1, 3, 8, 8}));
  q.push(make_queued(2, Priority::kBestEffort, {1, 3, 8, 8}));

  EXPECT_TRUE(q.has_work(kAllLanes));
  EXPECT_TRUE(q.has_work(lane_bit(Priority::kBestEffort)));

  // A reserved worker's single-lane mask serves its lane directly, even
  // though DWRR would have picked interactive first.
  const auto now = ServeClock::now();
  std::array<int, kPriorityClassCount> caps;
  caps.fill(8);
  auto b = q.pop_batch(caps, now, 0, lane_bit(Priority::kBestEffort));
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0].id, 2u);
  EXPECT_FALSE(q.has_work(lane_bit(Priority::kBestEffort)));

  // Mask with no matching work yields an empty batch.
  EXPECT_TRUE(q.pop_batch(caps, now, 0, lane_bit(Priority::kBestEffort))
                  .empty());

  // Masked pops did not disturb the weighted tier: interactive (weight
  // 4) still wins the next full-mask pop.
  b = q.pop_batch(caps, now, 0, kAllLanes);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0].id, 0u);
}

TEST(RequestQueueWeighted, PerLaneCapsBoundGreedyPulls) {
  RequestQueue q;
  q.set_weights({4.0, 2.0, 1.0});
  for (std::uint64_t i = 0; i < 6; ++i) {
    q.push(make_queued(i, Priority::kInteractive, {1, 3, 8, 8}));
  }
  const auto now = ServeClock::now();
  std::array<int, kPriorityClassCount> caps = {2, 8, 8};
  // The interactive lane's effective cap (2) binds even though the
  // global cap would allow all six — SLO-aware auto-batching plumbing.
  auto b = q.pop_batch(caps, now, 0, kAllLanes);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(q.depth(Priority::kInteractive), 4u);
}

TEST(TensorRows, SliceAndConcatRoundTrip) {
  Tensor batch = make_input(3, {5, 2, 3, 3});
  Tensor a = slice_rows(batch, 0, 2);
  Tensor b = slice_rows(batch, 2, 3);
  EXPECT_TRUE(bit_identical(batch, concat_rows({&a, &b})));
  EXPECT_THROW((void)slice_rows(batch, 4, 2), std::runtime_error);
  EXPECT_THROW((void)concat_rows({}), std::runtime_error);
  Tensor other = make_input(4, {1, 2, 4, 4});
  EXPECT_THROW((void)concat_rows({&a, &other}), std::runtime_error);
}

// --------------------------------------------------- LatencyHistogram

TEST(LatencyHistogram, QuantilesAndMerge) {
  LatencyHistogram h;
  EXPECT_EQ(h.quantile_ns(0.5), 0.0);
  for (int i = 0; i < 100; ++i) h.record(1000);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.max_ns(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 1000.0);
  // All mass in the [512, 1024) bucket: quantiles interpolate inside it
  // and clamp to the observed maximum.
  EXPECT_GE(h.quantile_ns(0.5), 512.0);
  EXPECT_LE(h.quantile_ns(0.5), 1000.0);
  EXPECT_LE(h.quantile_ns(0.99), 1000.0);

  LatencyHistogram outlier;
  outlier.record(5000);
  h.merge(outlier);
  EXPECT_EQ(h.count(), 101u);
  EXPECT_EQ(h.max_ns(), 5000u);
  EXPECT_EQ(h.quantile_ns(1.0), 5000.0);  // clamped to max, not bucket edge
  EXPECT_LE(h.quantile_ns(0.5), 1000.0);  // median unmoved by one outlier
}

// ----------------------------------------------------- Scheduler core

TEST(Scheduler, MixedPriorityMicrobatchOneBitIdenticalToSerial) {
  auto plan = make_plan(MacroMvmEngine::Mode::kAnalog);
  const int kRequests = 9;
  const std::uint64_t kSeed = 777;
  std::vector<Tensor> inputs;
  for (int i = 0; i < kRequests; ++i) {
    inputs.push_back(make_input(100 + static_cast<unsigned>(i), {1, 3, 8, 8}));
  }

  // Serial reference mirroring the scheduler's admission-order seeding.
  std::vector<Tensor> serial_out(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    ExecutionContext ctx(*plan, kSeed + static_cast<std::uint64_t>(i));
    serial_out[static_cast<std::size_t>(i)] =
        ctx.infer(inputs[static_cast<std::size_t>(i)]);
  }

  SchedulerOptions options;
  options.workers = 3;
  options.max_microbatch = 1;
  options.noise_seed = kSeed;
  Scheduler scheduler(*plan, options);
  std::vector<std::future<Tensor>> futures;
  for (int i = 0; i < kRequests; ++i) {
    // Classes cycle: execution ORDER varies with priority, but each
    // request's noise stream is pinned to its admission id, so every
    // output must still be bit-identical to the serial reference.
    SubmitOptions so;
    so.priority = static_cast<Priority>(i % kPriorityClassCount);
    futures.push_back(
        scheduler.submit(inputs[static_cast<std::size_t>(i)], so));
  }
  for (int i = 0; i < kRequests; ++i) {
    Tensor out = futures[static_cast<std::size_t>(i)].get();
    EXPECT_TRUE(bit_identical(serial_out[static_cast<std::size_t>(i)], out))
        << "request " << i;
  }
  scheduler.wait_idle();
  const MetricsSnapshot snap = scheduler.metrics_snapshot();
  EXPECT_EQ(snap.served_requests, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(snap.batches, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(snap.max_batch_occupancy, 1);
  for (int c = 0; c < kPriorityClassCount; ++c) {
    EXPECT_EQ(snap.classes[static_cast<std::size_t>(c)].served_requests, 3u);
    EXPECT_EQ(snap.classes[static_cast<std::size_t>(c)].queue_wait.count, 3u);
    EXPECT_EQ(snap.classes[static_cast<std::size_t>(c)].e2e.count, 3u);
  }
}

TEST(Scheduler, PriorityOrderingUnderContention) {
  auto plan = make_plan(MacroMvmEngine::Mode::kAnalog);
  SchedulerOptions options;
  options.workers = 1;
  Scheduler scheduler(*plan, options);

  // Occupy the single worker, then queue best-effort BEFORE interactive:
  // the scheduler must serve interactive first anyway.
  auto blocker = scheduler.submit(make_blocker_input(),
                                  {Priority::kInteractive, milliseconds(0)});
  std::vector<std::shared_future<Tensor>> best_effort, interactive;
  for (int i = 0; i < 3; ++i) {
    best_effort.push_back(
        scheduler
            .submit(make_input(200 + static_cast<unsigned>(i), {1, 3, 8, 8}),
                    {Priority::kBestEffort, milliseconds(0)})
            .share());
  }
  for (int i = 0; i < 3; ++i) {
    interactive.push_back(
        scheduler
            .submit(make_input(300 + static_cast<unsigned>(i), {1, 3, 8, 8}),
                    {Priority::kInteractive, milliseconds(0)})
            .share());
  }

  best_effort[0].wait();
  // The moment any best-effort output exists, every interactive request
  // must already be done (single worker, strict priority).
  for (const auto& f : interactive) {
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
  }
  (void)blocker.get();
  for (auto& f : best_effort) (void)f.get();
  scheduler.wait_idle();

  const MetricsSnapshot snap = scheduler.metrics_snapshot();
  const auto& inter =
      snap.classes[static_cast<std::size_t>(Priority::kInteractive)];
  const auto& be =
      snap.classes[static_cast<std::size_t>(Priority::kBestEffort)];
  EXPECT_EQ(inter.served_requests, 4u);  // blocker + 3
  EXPECT_EQ(be.served_requests, 3u);
  EXPECT_EQ(snap.served_images, 38u);  // 32 + 6
}

TEST(Scheduler, QueuedDeadlineExpiryFailsFastWithoutSkewingMetrics) {
  auto plan = make_plan(MacroMvmEngine::Mode::kAnalog);
  const std::uint64_t kSeed = 2024;

  // Reference: what serving ONLY the blocker (admission id 0) looks like.
  Tensor blocker_input = make_blocker_input();
  ExecutionContext ref_ctx(*plan, kSeed + 0);
  Tensor reference = ref_ctx.infer(blocker_input);

  SchedulerOptions options;
  options.workers = 1;
  options.max_microbatch = 1;
  options.noise_seed = kSeed;
  Scheduler scheduler(*plan, options);
  auto blocker = scheduler.submit(std::move(blocker_input),
                                  {Priority::kInteractive, milliseconds(0)});
  // The victim's 3 ms deadline passes long before the ~50 ms blocker
  // finishes: it must be canceled, never executed.
  auto victim = scheduler.submit(make_input(9, {1, 3, 8, 8}),
                                 {Priority::kBestEffort, milliseconds(3)});
  EXPECT_THROW((void)victim.get(), DeadlineExpiredError);
  EXPECT_TRUE(bit_identical(reference, blocker.get()));
  scheduler.wait_idle();

  // Served-work metrics and macro stats reflect the blocker ONLY.
  const MetricsSnapshot snap = scheduler.metrics_snapshot();
  const auto& be =
      snap.classes[static_cast<std::size_t>(Priority::kBestEffort)];
  EXPECT_EQ(be.expired_requests, 1u);
  EXPECT_EQ(be.served_requests, 0u);
  EXPECT_EQ(be.queue_wait.count, 0u);
  EXPECT_EQ(be.expired_wait.count, 1u);  // waited >= its 3 ms deadline
  EXPECT_GE(be.expired_wait.max_ms, 3.0);
  EXPECT_EQ(snap.served_images, 32u);
  EXPECT_EQ(scheduler.rom_stats().macs, ref_ctx.rom_stats().macs);
  EXPECT_EQ(scheduler.total_energy_pj(), ref_ctx.total_energy_pj());
}

TEST(Scheduler, AdmissionRejectsDeadAndInfeasibleDeadlinesWithoutBurningIds) {
  auto plan = make_plan(MacroMvmEngine::Mode::kAnalog);
  const std::uint64_t kSeed = 55;
  SchedulerOptions options;
  options.workers = 2;
  options.max_microbatch = 1;
  options.noise_seed = kSeed;
  Scheduler scheduler(*plan, options);

  // A deadline that is already in the past fails fast at admission.
  auto dead = scheduler.submit(make_input(1, {1, 3, 8, 8}),
                               {Priority::kInteractive, -milliseconds(1)});
  EXPECT_THROW((void)dead.get(), DeadlineExpiredError);

  // The rejection must NOT have consumed an admission id: the next
  // accepted request is id 0 and stays bit-identical to a serial run
  // seeded noise_seed + 0.
  Tensor input = make_input(2, {1, 3, 8, 8});
  ExecutionContext ref_ctx(*plan, kSeed + 0);
  Tensor reference = ref_ctx.infer(input);
  EXPECT_TRUE(bit_identical(reference, scheduler.submit(input).get()));
  scheduler.wait_idle();

  const MetricsSnapshot snap = scheduler.metrics_snapshot();
  const auto& inter =
      snap.classes[static_cast<std::size_t>(Priority::kInteractive)];
  EXPECT_EQ(inter.rejected_requests, 1u);
  EXPECT_EQ(inter.submitted, 1u);
  EXPECT_EQ(inter.served_requests, 0u);
  EXPECT_EQ(snap.classes[static_cast<std::size_t>(Priority::kBatch)]
                .served_requests,
            1u);
}

TEST(Scheduler, AdmissionEnforcesPerLaneDepthCap) {
  auto plan = make_plan(MacroMvmEngine::Mode::kAnalog);
  SchedulerOptions options;
  options.workers = 1;
  options.max_queue_depth = 1;
  Scheduler scheduler(*plan, options);

  // Blocker occupies the single worker for ~50 ms; the batch lane then
  // holds one queued request, so the next submission overflows the cap.
  auto blocker = scheduler.submit(make_blocker_input(),
                                  {Priority::kInteractive, milliseconds(0)});
  auto queued = scheduler.submit(make_input(1, {1, 3, 8, 8}),
                                 {Priority::kBatch, milliseconds(0)});
  auto overflow = scheduler.submit(make_input(2, {1, 3, 8, 8}),
                                   {Priority::kBatch, milliseconds(0)});
  EXPECT_THROW((void)overflow.get(), AdmissionError);
  (void)blocker.get();
  (void)queued.get();
  scheduler.wait_idle();

  const MetricsSnapshot snap = scheduler.metrics_snapshot();
  const auto& batch = snap.classes[static_cast<std::size_t>(Priority::kBatch)];
  EXPECT_EQ(batch.rejected_requests, 1u);
  EXPECT_EQ(batch.served_requests, 1u);
}

TEST(Scheduler, GracefulShutdownDrainsByPriority) {
  auto plan = make_plan(MacroMvmEngine::Mode::kAnalog);
  SchedulerOptions options;
  options.workers = 1;
  Scheduler scheduler(*plan, options);

  auto blocker = scheduler.submit(make_blocker_input(),
                                  {Priority::kInteractive, milliseconds(0)})
                     .share();
  std::vector<std::shared_future<Tensor>> best_effort, interactive;
  for (int i = 0; i < 3; ++i) {
    best_effort.push_back(
        scheduler
            .submit(make_input(400 + static_cast<unsigned>(i), {1, 3, 8, 8}),
                    {Priority::kBestEffort, milliseconds(0)})
            .share());
  }
  for (int i = 0; i < 3; ++i) {
    interactive.push_back(
        scheduler
            .submit(make_input(500 + static_cast<unsigned>(i), {1, 3, 8, 8}),
                    {Priority::kInteractive, milliseconds(0)})
            .share());
  }

  // Watch the drain from outside: when the first best-effort output
  // appears, the interactive lane must already be fully served.
  std::atomic<bool> interactive_served_first{false};
  std::thread observer([&] {
    best_effort[0].wait();
    bool all_ready = true;
    for (const auto& f : interactive) {
      all_ready = all_ready && f.wait_for(std::chrono::seconds(0)) ==
                                   std::future_status::ready;
    }
    interactive_served_first.store(all_ready);
  });

  scheduler.shutdown();  // graceful: drains everything queued, by priority
  observer.join();
  EXPECT_TRUE(interactive_served_first.load());
  for (const auto& f : interactive) EXPECT_NO_THROW((void)f.get());
  for (const auto& f : best_effort) EXPECT_NO_THROW((void)f.get());
  EXPECT_NO_THROW((void)blocker.get());

  // Admission is closed after shutdown.
  EXPECT_THROW((void)scheduler.submit(make_input(1, {1, 3, 8, 8})),
               std::runtime_error);

  const MetricsSnapshot snap = scheduler.metrics_snapshot();
  EXPECT_EQ(snap.served_requests, 7u);
  EXPECT_EQ(
      snap.classes[static_cast<std::size_t>(Priority::kBestEffort)]
          .served_requests,
      3u);
}

// --------------------------------------- shutdown races a hung worker

/// Shared test fixture for wedging exactly one worker inside the
/// TEST-ONLY fault hook: the first batch picked anywhere blocks until
/// release(); every later pick runs normally. `exited` flips only
/// after the blocked thread has left the hook body, so tests can wait
/// for it before the Scheduler (which owns the hook closure) dies.
struct HangOnce {
  std::mutex m;
  std::condition_variable cv;
  bool armed = true;
  bool hung = false;
  std::atomic<bool> exited{false};

  std::function<void(int)> hook() {
    return [this](int) {
      std::unique_lock lock(m);
      if (!armed) return;
      armed = false;
      hung = true;
      cv.notify_all();
      cv.wait(lock, [this] { return !hung; });
      exited.store(true);
    };
  }
  void wait_hung() {
    std::unique_lock lock(m);
    cv.wait(lock, [this] { return hung; });
  }
  void release_and_wait_exit() {
    {
      std::lock_guard lock(m);
      hung = false;
    }
    cv.notify_all();
    for (int i = 0; i < 2500 && !exited.load(); ++i) {
      std::this_thread::sleep_for(milliseconds(2));
    }
    ASSERT_TRUE(exited.load()) << "hung worker never left the fault hook";
    // Give the released thread a beat to finish unwinding out of the
    // hook call frame before the closure's owner is destroyed.
    std::this_thread::sleep_for(milliseconds(5));
  }
};

TEST(SchedulerShutdownRace, AbandonsHungWorkerAndFailsResidualQueue) {
  auto plan = make_plan(MacroMvmEngine::Mode::kAnalog);
  HangOnce hang;

  SchedulerOptions options;
  options.workers = 1;
  options.max_microbatch = 1;
  // Deliberately NO watchdog: shutdown() itself must be the thing that
  // refuses to wait forever on the wedged worker.
  options.worker_fault_hook = hang.hook();

  {
    Scheduler scheduler(*plan, options);
    auto victim = scheduler.submit(make_input(61, {1, 3, 8, 8}));
    hang.wait_hung();

    // Requests now stuck behind the only (wedged) worker.
    std::vector<std::future<Tensor>> residual;
    residual.push_back(scheduler.submit(make_input(62, {1, 3, 8, 8}),
                                        {Priority::kInteractive}));
    residual.push_back(
        scheduler.submit(make_input(63, {1, 3, 8, 8}), {Priority::kBatch}));
    residual.push_back(scheduler.submit(make_input(64, {1, 3, 8, 8}),
                                        {Priority::kBestEffort}));

    const auto start = std::chrono::steady_clock::now();
    scheduler.shutdown();
    // Graceful shutdown abandoned the hung thread instead of joining it.
    EXPECT_LT(std::chrono::steady_clock::now() - start,
              std::chrono::seconds(5));

    // Everyone resolved retriably: the in-flight victim was settled by
    // the abandonment, the residual queue by the post-join drain.
    EXPECT_THROW(victim.get(), WorkerHungError);
    for (auto& f : residual) EXPECT_THROW(f.get(), WorkerHungError);
    scheduler.wait_idle();  // accounting settled too — must not block

    const MetricsSnapshot snap = scheduler.metrics_snapshot();
    EXPECT_EQ(snap.served_requests, 0u);
    EXPECT_GE(snap.classes[static_cast<std::size_t>(Priority::kBatch)]
                  .failed_requests,
              1u);
    std::uint64_t rejected = 0;
    for (const ClassSnapshot& c : snap.classes) rejected += c.rejected_requests;
    EXPECT_EQ(rejected, 3u)
        << "residual requests count as rejected, not served";

    hang.release_and_wait_exit();
  }
}

TEST(SchedulerShutdownRace, HealthyWorkerStillDrainsPastHungPeer) {
  auto plan = make_plan(MacroMvmEngine::Mode::kAnalog);
  HangOnce hang;

  SchedulerOptions options;
  options.workers = 2;
  options.max_microbatch = 1;
  options.worker_fault_hook = hang.hook();

  {
    Scheduler scheduler(*plan, options);
    constexpr int kRequests = 6;
    const Priority kLanes[] = {Priority::kInteractive, Priority::kBatch,
                               Priority::kBestEffort};
    std::vector<std::future<Tensor>> futures;
    for (int i = 0; i < kRequests; ++i) {
      futures.push_back(
          scheduler.submit(make_input(80 + static_cast<unsigned>(i),
                                      {1, 3, 8, 8}),
                           {kLanes[i % 3]}));
    }
    hang.wait_hung();  // exactly one worker wedged on one request

    scheduler.shutdown();

    // The surviving healthy worker drained everything except the one
    // request trapped in the wedged worker's batch.
    int served = 0, hung_failures = 0;
    for (auto& f : futures) {
      try {
        (void)f.get();
        ++served;
      } catch (const WorkerHungError&) {
        ++hung_failures;
      }
    }
    EXPECT_EQ(hung_failures, 1);
    EXPECT_EQ(served, kRequests - 1);

    hang.release_and_wait_exit();
  }
}

// ------------------------------------------- weighted-fair scheduling

TEST(SchedulerWeighted, BestEffortBoundedUnderInteractiveFlood) {
  auto plan = make_plan(MacroMvmEngine::Mode::kAnalog);
  SchedulerOptions options;
  options.workers = 1;
  options.max_microbatch = 1;
  options.lane_weights = {4.0, 2.0, 1.0};
  Scheduler scheduler(*plan, options);

  // Occupy the single worker, then queue an interactive flood AND two
  // best-effort requests. Under strict priority the flood would starve
  // them until it fully drains; under DWRR each best-effort request is
  // served within one rotation. Flood requests carry 4 images (~6 ms of
  // analog work each) so the backlog still holds many tens of ms of
  // work when we sample below — the assertions tolerate a heavily
  // descheduled test thread.
  auto blocker = scheduler.submit(make_blocker_input(),
                                  {Priority::kInteractive, milliseconds(0)});
  std::vector<std::shared_future<Tensor>> flood;
  for (int i = 0; i < 20; ++i) {
    flood.push_back(
        scheduler
            .submit(make_input(600 + static_cast<unsigned>(i), {4, 3, 8, 8}),
                    {Priority::kInteractive, milliseconds(0)})
            .share());
  }
  std::vector<std::shared_future<Tensor>> best_effort;
  for (int i = 0; i < 2; ++i) {
    best_effort.push_back(
        scheduler
            .submit(make_input(700 + static_cast<unsigned>(i), {1, 3, 8, 8}),
                    {Priority::kBestEffort, milliseconds(0)})
            .share());
  }

  // Weights {4, _, 1} in image units with 4-image flood requests means
  // one flood request per rotation: both best-effort singles are served
  // within the first ~3 services after the blocker, leaving >= 17 flood
  // requests (~100 ms of work) still queued when this returns.
  best_effort[1].wait();
  EXPECT_EQ(flood[19].wait_for(std::chrono::seconds(0)),
            std::future_status::timeout)
      << "best-effort should be served while the flood is still backlogged";
  int flood_done = 0;
  for (const auto& f : flood) {
    flood_done += f.wait_for(std::chrono::seconds(0)) ==
                          std::future_status::ready
                      ? 1
                      : 0;
  }
  // ~3 flood requests precede the 2nd best-effort service; tolerate the
  // worker draining several more while this thread is descheduled.
  EXPECT_LE(flood_done, 10);

  for (auto& f : flood) (void)f.get();
  for (auto& f : best_effort) (void)f.get();
  (void)blocker.get();
  scheduler.wait_idle();
  const MetricsSnapshot snap = scheduler.metrics_snapshot();
  EXPECT_EQ(snap.served_requests, 23u);
}

TEST(SchedulerWeighted, MicrobatchOneStaysBitIdenticalToSerial) {
  auto plan = make_plan(MacroMvmEngine::Mode::kAnalog);
  const int kRequests = 6;
  const std::uint64_t kSeed = 4242;
  std::vector<Tensor> inputs;
  for (int i = 0; i < kRequests; ++i) {
    inputs.push_back(make_input(800 + static_cast<unsigned>(i), {1, 3, 8, 8}));
  }
  std::vector<Tensor> serial_out(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    ExecutionContext ctx(*plan, kSeed + static_cast<std::uint64_t>(i));
    serial_out[static_cast<std::size_t>(i)] =
        ctx.infer(inputs[static_cast<std::size_t>(i)]);
  }

  // Weighted-fair reorders SERVICE, not noise streams: admission ids
  // still pin each request's stream, so outputs stay bit-identical.
  SchedulerOptions options;
  options.workers = 2;
  options.max_microbatch = 1;
  options.noise_seed = kSeed;
  options.lane_weights = {3.0, 2.0, 1.0};
  Scheduler scheduler(*plan, options);
  std::vector<std::future<Tensor>> futures;
  for (int i = 0; i < kRequests; ++i) {
    SubmitOptions so;
    so.priority = static_cast<Priority>(i % kPriorityClassCount);
    futures.push_back(
        scheduler.submit(inputs[static_cast<std::size_t>(i)], so));
  }
  for (int i = 0; i < kRequests; ++i) {
    EXPECT_TRUE(bit_identical(serial_out[static_cast<std::size_t>(i)],
                              futures[static_cast<std::size_t>(i)].get()))
        << "request " << i;
  }
}

TEST(SchedulerWeighted, ReservedWorkerKeepsInteractiveHeadroom) {
  auto plan = make_plan(MacroMvmEngine::Mode::kAnalog);
  SchedulerOptions options;
  options.workers = 2;
  options.max_microbatch = 1;  // keep the three blockers as three batches
  options.lane_reservations = {1, 0, 0};  // 1 interactive-only + 1 shared
  Scheduler scheduler(*plan, options);

  // Three ~50 ms batch blockers: the shared worker takes the first; the
  // reserved worker must leave the other two queued.
  std::vector<std::shared_future<Tensor>> blockers;
  for (int i = 0; i < 3; ++i) {
    blockers.push_back(scheduler
                           .submit(make_blocker_input(),
                                   {Priority::kBatch, milliseconds(0)})
                           .share());
  }
  std::this_thread::sleep_for(milliseconds(10));
  const MetricsSnapshot mid = scheduler.metrics_snapshot();
  EXPECT_EQ(
      mid.classes[static_cast<std::size_t>(Priority::kBatch)].queue_depth, 2u)
      << "reserved worker must not pick up batch-lane work";

  // Interactive arrives late yet is served immediately by the reserved
  // worker — long before the second blocker could even start.
  auto interactive = scheduler.submit(make_input(9, {1, 3, 8, 8}),
                                      {Priority::kInteractive,
                                       milliseconds(0)});
  (void)interactive.get();
  EXPECT_EQ(blockers[1].wait_for(std::chrono::seconds(0)),
            std::future_status::timeout)
      << "interactive should complete before the queued batch work";

  for (auto& f : blockers) (void)f.get();
  scheduler.wait_idle();
  EXPECT_EQ(scheduler.metrics_snapshot().served_requests, 4u);

  // Reservations must leave a shared worker for the other lanes.
  SchedulerOptions bad;
  bad.workers = 2;
  bad.lane_reservations = {2, 0, 0};
  EXPECT_THROW((Scheduler{*plan, bad}), std::runtime_error);
}

TEST(SchedulerWeighted, SloAutoBatchingCapsLaneOccupancy) {
  auto plan = make_plan(MacroMvmEngine::Mode::kAnalog);
  for (const bool tight_slo : {false, true}) {
    SchedulerOptions options;
    options.workers = 1;
    options.max_microbatch = 8;
    if (tight_slo) {
      // A 1 ns budget forces clamp(slo / est, 1, 8) = 1 once the EWMA
      // estimate exists: the batch lane stops fusing entirely.
      options.lane_slo[static_cast<std::size_t>(Priority::kBatch)] =
          std::chrono::nanoseconds(1);
    }
    Scheduler scheduler(*plan, options);
    // Warmup populates the EWMA per-image estimate the SLO cap divides.
    (void)scheduler.submit(make_input(1, {1, 3, 8, 8})).get();
    // Blocker pins the worker while six batch requests queue up.
    auto blocker = scheduler.submit(make_blocker_input(),
                                    {Priority::kInteractive,
                                     milliseconds(0)});
    std::vector<std::future<Tensor>> queued;
    for (int i = 0; i < 6; ++i) {
      queued.push_back(scheduler.submit(
          make_input(900 + static_cast<unsigned>(i), {1, 3, 8, 8})));
    }
    (void)blocker.get();
    for (auto& f : queued) (void)f.get();
    scheduler.wait_idle();

    const MetricsSnapshot snap = scheduler.metrics_snapshot();
    if (tight_slo) {
      EXPECT_EQ(snap.max_batch_occupancy, 1)
          << "SLO budget must stop micro-batch fusion";
      EXPECT_EQ(snap.batches, 8u);  // warmup + blocker + 6 singles
    } else {
      EXPECT_EQ(snap.max_batch_occupancy, 6)
          << "without an SLO the queued lane fuses into one batch";
      EXPECT_EQ(snap.batches, 3u);  // warmup + blocker + 1 fused batch
    }
  }
}

// -------------------------------------------------- telemetry surface

TEST(Scheduler, SnapshotJsonCarriesTheDocumentedSchema) {
  auto plan = make_plan(MacroMvmEngine::Mode::kExactCost);
  SchedulerOptions options;
  options.workers = 2;
  Scheduler scheduler(*plan, options);
  (void)scheduler.submit(make_input(1, {2, 3, 8, 8})).get();
  scheduler.wait_idle();

  const MetricsSnapshot snap = scheduler.metrics_snapshot();
  EXPECT_EQ(snap.served_requests, 1u);
  EXPECT_EQ(snap.served_images, 2u);
  EXPECT_GT(snap.rolling_images_per_s, 0.0);
  EXPECT_DOUBLE_EQ(snap.avg_batch_occupancy, 1.0);

  const std::string json = snap.to_json();
  for (const char* key :
       {"\"uptime_s\"", "\"workers\"", "\"batches\"", "\"served_images\"",
        "\"batch_occupancy\"", "\"rolling_images_per_s\"", "\"classes\"",
        "\"interactive\"", "\"batch\"", "\"best_effort\"",
        "\"queue_wait_ms\"", "\"e2e_ms\"", "\"expired_wait_ms\"",
        "\"p50_ms\"", "\"p95_ms\"", "\"p99_ms\"", "\"queue_depth\"",
        "\"expired\"", "\"rejected\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  // Balanced braces => structurally plausible JSON.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));

  // reset_metrics() zeroes the telemetry so a later snapshot covers
  // only post-reset traffic (benches scope out warmup this way).
  scheduler.reset_metrics();
  const MetricsSnapshot cleared = scheduler.metrics_snapshot();
  EXPECT_EQ(cleared.served_requests, 0u);
  EXPECT_EQ(cleared.batches, 0u);
  EXPECT_EQ(cleared.classes[1].submitted, 0u);
  EXPECT_EQ(cleared.classes[1].e2e.count, 0u);
  EXPECT_EQ(cleared.rolling_images_per_s, 0.0);
  (void)scheduler.submit(make_input(5, {1, 3, 8, 8})).get();
  scheduler.wait_idle();
  EXPECT_EQ(scheduler.metrics_snapshot().served_requests, 1u);
}

TEST(Prometheus, LabelEscaping) {
  EXPECT_EQ(prometheus_escape_label("interactive"), "interactive");
  EXPECT_EQ(prometheus_escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(prometheus_escape_label(""), "");
}

TEST(Prometheus, ExpositionParsesAndBucketsAreMonotone) {
  auto plan = make_plan(MacroMvmEngine::Mode::kAnalog);
  SchedulerOptions options;
  options.workers = 1;
  options.max_microbatch = 4;
  // Strict weights so the interactive blocker is guaranteed to occupy
  // the worker while the best-effort victim's deadline dies (under
  // finite weights DWRR would rightly serve the cheap victim first).
  Scheduler scheduler(*plan, options);

  // Serve work on two lanes and expire a queued request so the served,
  // expired AND histogram families all carry non-zero samples.
  (void)scheduler.submit(make_input(1, {1, 3, 8, 8})).get();
  auto blocker = scheduler.submit(make_blocker_input(),
                                  {Priority::kInteractive, milliseconds(0)});
  // The victim's deadline must clear the admission feasibility check
  // (rolling per-image estimate, a few ms — more under sanitizers) yet
  // die long before the ~32-image blocker releases the worker, so it
  // expires IN QUEUE rather than being rejected up front.
  auto victim = scheduler.submit(make_input(2, {1, 3, 8, 8}),
                                 {Priority::kBestEffort, milliseconds(25)});
  EXPECT_THROW((void)victim.get(), DeadlineExpiredError);
  (void)blocker.get();
  scheduler.wait_idle();

  const std::string text = scheduler.to_prometheus();

  // Every non-comment line must be `name[{labels}] value` with a
  // parseable value; comment lines must be # HELP / # TYPE.
  std::map<std::string, std::vector<std::uint64_t>> bucket_series;
  std::map<std::string, std::uint64_t> count_series;
  std::istringstream lines(text);
  std::string line;
  int samples = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                  line.rfind("# TYPE ", 0) == 0)
          << line;
      continue;
    }
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string series = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    char* end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    EXPECT_TRUE(end && *end == '\0') << "unparseable value in: " << line;
    EXPECT_GE(v, 0.0) << line;
    ++samples;

    // Collect histogram series keyed by family+lane, in emission order.
    const auto brace = series.find('{');
    const std::string name =
        brace == std::string::npos ? series : series.substr(0, brace);
    const auto lane_pos = series.find("lane=\"");
    std::string lane;
    if (lane_pos != std::string::npos) {
      lane = series.substr(lane_pos + 6,
                           series.find('"', lane_pos + 6) - lane_pos - 6);
    }
    if (name.size() > 7 && name.rfind("_bucket") == name.size() - 7) {
      bucket_series[name.substr(0, name.size() - 7) + "/" + lane].push_back(
          static_cast<std::uint64_t>(v));
    } else if (name.size() > 6 && name.rfind("_count") == name.size() - 6) {
      count_series[name.substr(0, name.size() - 6) + "/" + lane] =
          static_cast<std::uint64_t>(v);
    }
  }
  EXPECT_GT(samples, 50);

  // Cumulative bucket counts must be monotone and end at _count (+Inf).
  ASSERT_EQ(bucket_series.size(), 9u);  // 3 histogram families x 3 lanes
  for (const auto& [key, buckets] : bucket_series) {
    ASSERT_FALSE(buckets.empty()) << key;
    for (std::size_t i = 1; i < buckets.size(); ++i) {
      EXPECT_LE(buckets[i - 1], buckets[i]) << key << " bucket " << i;
    }
    ASSERT_TRUE(count_series.count(key)) << key;
    EXPECT_EQ(buckets.back(), count_series[key]) << key;
  }

  // Served and expired traffic from this run is visible.
  EXPECT_NE(text.find("yoloc_serve_requests_served_total{lane=\"batch\"} 1"),
            std::string::npos);
  EXPECT_NE(
      text.find("yoloc_serve_requests_expired_total{lane=\"best_effort\"} 1"),
      std::string::npos);
  const std::string be_e2e_count =
      "yoloc_serve_e2e_latency_seconds_count{lane=\"best_effort\"} 0";
  EXPECT_NE(text.find(be_e2e_count), std::string::npos)
      << "expired work must not pollute served-latency histograms";
  EXPECT_NE(
      text.find("yoloc_serve_expired_wait_seconds_count{lane=\"best_effort\"} "
                "1"),
      std::string::npos);
}

TEST(Prometheus, ConcurrentScrapesUnderTrafficStayWellFormed) {
  // The /metrics endpoint scrapes a LIVE scheduler: exposition must be
  // readable from many threads while workers are mutating the
  // registries. Every scrape has to parse, and every histogram in every
  // scrape must be internally consistent (monotone cumulative buckets
  // capped by its _count) — a torn read would break one of the two.
  auto plan = make_plan(MacroMvmEngine::Mode::kExactCost);
  SchedulerOptions options;
  options.workers = 2;
  options.max_microbatch = 2;
  Scheduler scheduler(*plan, options);

  std::atomic<bool> stop{false};
  std::thread traffic([&] {
    std::uint64_t seed = 1;
    while (!stop.load(std::memory_order_acquire)) {
      SubmitOptions so;
      so.priority = static_cast<Priority>(seed % kPriorityClassCount);
      (void)scheduler.submit(make_input(seed++, {1, 3, 8, 8}), so).get();
    }
  });

  constexpr int kScrapers = 4;
  constexpr int kScrapesEach = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> scrapers;
  for (int s = 0; s < kScrapers; ++s) {
    scrapers.emplace_back([&] {
      for (int i = 0; i < kScrapesEach; ++i) {
        const std::string text = scheduler.to_prometheus();
        // Parse: lines are comments or `series value`; group histogram
        // bucket series per family+lane in emission order.
        std::map<std::string, std::vector<double>> buckets;
        std::map<std::string, double> counts;
        std::istringstream lines(text);
        std::string line;
        bool parsed = true;
        while (std::getline(lines, line)) {
          if (line.empty() || line[0] == '#') continue;
          const auto space = line.rfind(' ');
          char* end = nullptr;
          const double v =
              std::strtod(line.c_str() + space + 1, &end);
          if (space == std::string::npos || end == nullptr || *end != '\0' ||
              v < 0.0) {
            parsed = false;
            break;
          }
          const std::string series = line.substr(0, space);
          const auto brace = series.find('{');
          const std::string name =
              brace == std::string::npos ? series : series.substr(0, brace);
          const auto lane_pos = series.find("lane=\"");
          const std::string lane =
              lane_pos == std::string::npos
                  ? std::string{}
                  : series.substr(
                        lane_pos + 6,
                        series.find('"', lane_pos + 6) - lane_pos - 6);
          if (name.size() > 7 && name.rfind("_bucket") == name.size() - 7) {
            buckets[name.substr(0, name.size() - 7) + "/" + lane].push_back(
                v);
          } else if (name.size() > 6 &&
                     name.rfind("_count") == name.size() - 6) {
            counts[name.substr(0, name.size() - 6) + "/" + lane] = v;
          }
        }
        if (!parsed || buckets.empty()) {
          failures.fetch_add(1);
          continue;
        }
        for (const auto& [key, series] : buckets) {
          for (std::size_t b = 1; b < series.size(); ++b) {
            if (series[b - 1] > series[b]) failures.fetch_add(1);
          }
          // Cumulative +Inf bucket equals the family count.
          const auto count = counts.find(key);
          if (count == counts.end() || series.back() != count->second) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : scrapers) t.join();
  stop.store(true, std::memory_order_release);
  traffic.join();
  scheduler.wait_idle();

  EXPECT_EQ(failures.load(), 0);
  // The run did both things at once: traffic flowed AND scrapes read it.
  EXPECT_GT(scheduler.metrics_snapshot().served_requests, 0u);
}

TEST(InferenceServer, FacadeAggregatesSchedulerFailuresIntoLegacyMetrics) {
  auto plan = make_plan(MacroMvmEngine::Mode::kExactCost);
  InferenceServer server(*plan, {});
  // Expired-at-admission requests surface in the legacy failed counter.
  auto dead = server.submit(make_input(1, {1, 3, 8, 8}),
                            {Priority::kInteractive, -milliseconds(1)});
  EXPECT_THROW((void)dead.get(), DeadlineExpiredError);
  (void)server.infer(make_input(2, {3, 3, 8, 8}));
  server.wait_idle();

  const ServerMetrics m = server.metrics();
  EXPECT_EQ(m.requests, 3u);
  EXPECT_EQ(m.images, 3u);
  EXPECT_EQ(m.failed_requests, 1u);
  EXPECT_EQ(server.metrics_snapshot()
                .classes[static_cast<std::size_t>(Priority::kInteractive)]
                .rejected_requests,
            1u);
}

}  // namespace
}  // namespace yoloc
