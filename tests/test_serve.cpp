// Serving-scheduler semantics (src/serve/): priority ordering under
// contention, deadline expiry failing fast without skewing served-work
// metrics, admission control, graceful shutdown draining by priority,
// telemetry plumbing — and the determinism contract the scheduler
// inherits from the FIFO server: max_microbatch = 1 stays bit-identical
// to serial ExecutionContext runs.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "nn/activations.hpp"
#include "nn/container.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "runtime/deployment_plan.hpp"
#include "runtime/execution_context.hpp"
#include "runtime/inference_server.hpp"
#include "serve/metrics_registry.hpp"
#include "serve/request_queue.hpp"
#include "serve/scheduler.hpp"
#include "tensor/ops.hpp"

namespace yoloc {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

// Keep the concurrency paths exercised even on single-core CI boxes.
const bool g_env_pinned = [] {
  setenv("YOLOC_THREADS", "4", /*overwrite=*/1);
  return true;
}();

LayerPtr make_model(std::uint64_t seed) {
  Rng rng(seed);
  auto backbone = std::make_unique<Sequential>("backbone");
  backbone->add(std::make_unique<Conv2d>(3, 4, 3, 1, 1, true, rng, "b.c1"));
  backbone->add(std::make_unique<ReLU>());
  backbone->add(std::make_unique<MaxPool2d>(2));
  backbone->add(std::make_unique<Conv2d>(4, 6, 3, 1, 1, true, rng, "b.c2"));
  backbone->add(std::make_unique<ReLU>());
  auto net = std::make_unique<Sequential>("net");
  net->add(std::move(backbone));
  net->add(std::make_unique<GlobalAvgPool>());
  net->add(std::make_unique<Linear>(6, 5, true, rng, "head.fc"));
  for (Parameter* p : net->parameters()) {
    p->rom_resident = p->name.find("b.c") != std::string::npos;
  }
  return net;
}

std::unique_ptr<DeploymentPlan> make_plan(MacroMvmEngine::Mode mode) {
  LayerPtr net = make_model(21);
  Rng data_rng(33);
  Tensor calib = Tensor::rand_uniform({8, 3, 8, 8}, data_rng, 0.0f, 1.0f);
  DeploymentOptions options;
  options.mode = mode;
  return std::make_unique<DeploymentPlan>(std::move(net), calib,
                                          std::move(options));
}

Tensor make_input(std::uint64_t seed, std::vector<int> shape) {
  Rng rng(seed);
  return Tensor::rand_uniform(shape, rng, 0.0f, 1.0f);
}

/// ~50+ ms of work for one analog-mode worker on this model: the
/// "blocker" that keeps a single-worker scheduler busy while the queue
/// builds up. All deadline margins below assume the blocker outlasts
/// them by an order of magnitude.
Tensor make_blocker_input() { return make_input(7, {32, 3, 8, 8}); }

ServeRequest make_queued(std::uint64_t id, Priority p, std::vector<int> shape,
                         ServeClock::time_point deadline =
                             ServeClock::time_point::max()) {
  ServeRequest r;
  r.input = make_input(id + 1, std::move(shape));
  r.id = id;
  r.priority = p;
  r.submit_time = ServeClock::now();
  r.deadline = deadline;
  return r;
}

::testing::AssertionResult bit_identical(const Tensor& a, const Tensor& b) {
  if (!same_shape(a, b)) {
    return ::testing::AssertionFailure() << "shape mismatch";
  }
  if (std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) != 0) {
    return ::testing::AssertionFailure()
           << "payload differs (max |a-b| = " << max_abs_diff(a, b) << ")";
  }
  return ::testing::AssertionSuccess();
}

// ------------------------------------------------------- RequestQueue

TEST(RequestQueue, StrictPriorityThenFifoWithinLane) {
  RequestQueue q;
  const auto now = ServeClock::now();
  q.push(make_queued(0, Priority::kBestEffort, {1, 3, 8, 8}));
  q.push(make_queued(1, Priority::kBatch, {1, 3, 8, 8}));
  q.push(make_queued(2, Priority::kInteractive, {1, 3, 8, 8}));
  q.push(make_queued(3, Priority::kBatch, {1, 3, 8, 8}));

  auto b = q.pop_batch(1, now, 0);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0].id, 2u);  // interactive first
  b = q.pop_batch(1, now, 0);
  EXPECT_EQ(b[0].id, 1u);  // batch lane, FIFO
  b = q.pop_batch(1, now, 0);
  EXPECT_EQ(b[0].id, 3u);
  b = q.pop_batch(1, now, 0);
  EXPECT_EQ(b[0].id, 0u);  // best-effort last
  EXPECT_TRUE(q.empty());
}

TEST(RequestQueue, BatchesOnlyCompatibleGeometryFromOneLane) {
  RequestQueue q;
  const auto now = ServeClock::now();
  q.push(make_queued(0, Priority::kBatch, {1, 3, 8, 8}));
  q.push(make_queued(1, Priority::kBatch, {1, 3, 12, 12}));  // incompatible
  q.push(make_queued(2, Priority::kBatch, {2, 3, 8, 8}));    // N may differ
  q.push(make_queued(3, Priority::kInteractive, {1, 3, 8, 8}));  // other lane
  q.push(make_queued(4, Priority::kBatch, {1, 3, 8, 8}));

  // Interactive head pops alone first (nothing else in its lane).
  auto b = q.pop_batch(8, now, 0);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0].id, 3u);

  // Batch lane: greedy same-geometry pulls skip over the 12x12 request.
  b = q.pop_batch(8, now, 0);
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b[0].id, 0u);
  EXPECT_EQ(b[1].id, 2u);
  EXPECT_EQ(b[2].id, 4u);
  EXPECT_EQ(q.depth(Priority::kBatch), 1u);  // the 12x12 request remains

  b = q.pop_batch(8, now, 0);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0].id, 1u);
  EXPECT_TRUE(q.empty());
}

TEST(RequestQueue, MaxBatchCapsGreedyPulls) {
  RequestQueue q;
  const auto now = ServeClock::now();
  for (std::uint64_t i = 0; i < 5; ++i) {
    q.push(make_queued(i, Priority::kBatch, {1, 3, 8, 8}));
  }
  auto b = q.pop_batch(3, now, 0);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(q.depth(Priority::kBatch), 2u);
}

TEST(RequestQueue, DeadlineAwareWindowStopsBatchGrowth) {
  RequestQueue q;
  const auto now = ServeClock::now();
  // Five 1-image requests, each with 3 ms of slack. At an estimated
  // 1 ms/image, a 4-image batch would blow the tightest deadline, so
  // growth must stop at 3 requests.
  for (std::uint64_t i = 0; i < 5; ++i) {
    q.push(make_queued(i, Priority::kBatch, {1, 3, 8, 8},
                       now + milliseconds(3)));
  }
  constexpr std::uint64_t kMsPerImage = 1'000'000;
  auto b = q.pop_batch(8, now, kMsPerImage);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(q.depth(Priority::kBatch), 2u);
  // With no estimate the window is disabled and the cap is max_batch.
  b = q.pop_batch(8, now, 0);
  EXPECT_EQ(b.size(), 2u);

  // A candidate that blows the window is skipped, not a hard stop: a
  // later, smaller request can still fit. Head (1 img, 3 ms slack) +
  // 4-img candidate would need 5 ms — skip — but the trailing 1-img
  // request (2 img total = 2 ms) fits.
  q.push(make_queued(10, Priority::kBatch, {1, 3, 8, 8},
                     now + milliseconds(3)));
  q.push(make_queued(11, Priority::kBatch, {4, 3, 8, 8}));
  q.push(make_queued(12, Priority::kBatch, {1, 3, 8, 8}));
  b = q.pop_batch(8, now, kMsPerImage);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0].id, 10u);
  EXPECT_EQ(b[1].id, 12u);
  EXPECT_EQ(q.depth(Priority::kBatch), 1u);  // the 4-image request waits
}

TEST(RequestQueue, TakeExpiredHarvestsAcrossLanes) {
  RequestQueue q;
  const auto now = ServeClock::now();
  q.push(make_queued(0, Priority::kInteractive, {1, 3, 8, 8},
                     now - milliseconds(1)));
  q.push(make_queued(1, Priority::kBatch, {1, 3, 8, 8}));
  q.push(make_queued(2, Priority::kBestEffort, {1, 3, 8, 8},
                     now - milliseconds(2)));

  auto expired = q.take_expired(now);
  ASSERT_EQ(expired.size(), 2u);
  EXPECT_EQ(expired[0].id, 0u);
  EXPECT_EQ(expired[1].id, 2u);
  EXPECT_EQ(q.depth(Priority::kBatch), 1u);
  EXPECT_TRUE(q.take_expired(now).empty());
}

TEST(RequestQueue, AdmissionDecisions) {
  RequestQueue q;
  const auto now = ServeClock::now();
  const auto no_deadline = ServeClock::time_point::max();
  q.push(make_queued(0, Priority::kInteractive, {1, 3, 8, 8}));
  q.push(make_queued(1, Priority::kInteractive, {1, 3, 8, 8}));

  EXPECT_EQ(q.admit(Priority::kInteractive, now, no_deadline, 1, 2, 0),
            RequestQueue::Admission::kQueueFull);
  EXPECT_EQ(q.admit(Priority::kInteractive, now, no_deadline, 1, 0, 0),
            RequestQueue::Admission::kAccept);  // 0 = unlimited
  EXPECT_EQ(q.admit(Priority::kBatch, now, no_deadline, 1, 2, 0),
            RequestQueue::Admission::kAccept);  // caps are per lane
  EXPECT_EQ(q.admit(Priority::kBatch, now, now, 1, 0, 0),
            RequestQueue::Admission::kAlreadyExpired);
  // 1 ms of slack cannot fit 1 image at an estimated 2 ms/image.
  EXPECT_EQ(q.admit(Priority::kBatch, now, now + milliseconds(1), 1, 0,
                    2'000'000),
            RequestQueue::Admission::kInfeasible);
  EXPECT_EQ(q.admit(Priority::kBatch, now, now + milliseconds(10), 1, 0,
                    2'000'000),
            RequestQueue::Admission::kAccept);
}

TEST(TensorRows, SliceAndConcatRoundTrip) {
  Tensor batch = make_input(3, {5, 2, 3, 3});
  Tensor a = slice_rows(batch, 0, 2);
  Tensor b = slice_rows(batch, 2, 3);
  EXPECT_TRUE(bit_identical(batch, concat_rows({&a, &b})));
  EXPECT_THROW((void)slice_rows(batch, 4, 2), std::runtime_error);
  EXPECT_THROW((void)concat_rows({}), std::runtime_error);
  Tensor other = make_input(4, {1, 2, 4, 4});
  EXPECT_THROW((void)concat_rows({&a, &other}), std::runtime_error);
}

// --------------------------------------------------- LatencyHistogram

TEST(LatencyHistogram, QuantilesAndMerge) {
  LatencyHistogram h;
  EXPECT_EQ(h.quantile_ns(0.5), 0.0);
  for (int i = 0; i < 100; ++i) h.record(1000);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.max_ns(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 1000.0);
  // All mass in the [512, 1024) bucket: quantiles interpolate inside it
  // and clamp to the observed maximum.
  EXPECT_GE(h.quantile_ns(0.5), 512.0);
  EXPECT_LE(h.quantile_ns(0.5), 1000.0);
  EXPECT_LE(h.quantile_ns(0.99), 1000.0);

  LatencyHistogram outlier;
  outlier.record(5000);
  h.merge(outlier);
  EXPECT_EQ(h.count(), 101u);
  EXPECT_EQ(h.max_ns(), 5000u);
  EXPECT_EQ(h.quantile_ns(1.0), 5000.0);  // clamped to max, not bucket edge
  EXPECT_LE(h.quantile_ns(0.5), 1000.0);  // median unmoved by one outlier
}

// ----------------------------------------------------- Scheduler core

TEST(Scheduler, MixedPriorityMicrobatchOneBitIdenticalToSerial) {
  auto plan = make_plan(MacroMvmEngine::Mode::kAnalog);
  const int kRequests = 9;
  const std::uint64_t kSeed = 777;
  std::vector<Tensor> inputs;
  for (int i = 0; i < kRequests; ++i) {
    inputs.push_back(make_input(100 + static_cast<unsigned>(i), {1, 3, 8, 8}));
  }

  // Serial reference mirroring the scheduler's admission-order seeding.
  std::vector<Tensor> serial_out(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    ExecutionContext ctx(*plan, kSeed + static_cast<std::uint64_t>(i));
    serial_out[static_cast<std::size_t>(i)] =
        ctx.infer(inputs[static_cast<std::size_t>(i)]);
  }

  SchedulerOptions options;
  options.workers = 3;
  options.max_microbatch = 1;
  options.noise_seed = kSeed;
  Scheduler scheduler(*plan, options);
  std::vector<std::future<Tensor>> futures;
  for (int i = 0; i < kRequests; ++i) {
    // Classes cycle: execution ORDER varies with priority, but each
    // request's noise stream is pinned to its admission id, so every
    // output must still be bit-identical to the serial reference.
    SubmitOptions so;
    so.priority = static_cast<Priority>(i % kPriorityClassCount);
    futures.push_back(
        scheduler.submit(inputs[static_cast<std::size_t>(i)], so));
  }
  for (int i = 0; i < kRequests; ++i) {
    Tensor out = futures[static_cast<std::size_t>(i)].get();
    EXPECT_TRUE(bit_identical(serial_out[static_cast<std::size_t>(i)], out))
        << "request " << i;
  }
  scheduler.wait_idle();
  const MetricsSnapshot snap = scheduler.metrics_snapshot();
  EXPECT_EQ(snap.served_requests, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(snap.batches, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(snap.max_batch_occupancy, 1);
  for (int c = 0; c < kPriorityClassCount; ++c) {
    EXPECT_EQ(snap.classes[static_cast<std::size_t>(c)].served_requests, 3u);
    EXPECT_EQ(snap.classes[static_cast<std::size_t>(c)].queue_wait.count, 3u);
    EXPECT_EQ(snap.classes[static_cast<std::size_t>(c)].e2e.count, 3u);
  }
}

TEST(Scheduler, PriorityOrderingUnderContention) {
  auto plan = make_plan(MacroMvmEngine::Mode::kAnalog);
  SchedulerOptions options;
  options.workers = 1;
  Scheduler scheduler(*plan, options);

  // Occupy the single worker, then queue best-effort BEFORE interactive:
  // the scheduler must serve interactive first anyway.
  auto blocker = scheduler.submit(make_blocker_input(),
                                  {Priority::kInteractive, milliseconds(0)});
  std::vector<std::shared_future<Tensor>> best_effort, interactive;
  for (int i = 0; i < 3; ++i) {
    best_effort.push_back(
        scheduler
            .submit(make_input(200 + static_cast<unsigned>(i), {1, 3, 8, 8}),
                    {Priority::kBestEffort, milliseconds(0)})
            .share());
  }
  for (int i = 0; i < 3; ++i) {
    interactive.push_back(
        scheduler
            .submit(make_input(300 + static_cast<unsigned>(i), {1, 3, 8, 8}),
                    {Priority::kInteractive, milliseconds(0)})
            .share());
  }

  best_effort[0].wait();
  // The moment any best-effort output exists, every interactive request
  // must already be done (single worker, strict priority).
  for (const auto& f : interactive) {
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
  }
  (void)blocker.get();
  for (auto& f : best_effort) (void)f.get();
  scheduler.wait_idle();

  const MetricsSnapshot snap = scheduler.metrics_snapshot();
  const auto& inter =
      snap.classes[static_cast<std::size_t>(Priority::kInteractive)];
  const auto& be =
      snap.classes[static_cast<std::size_t>(Priority::kBestEffort)];
  EXPECT_EQ(inter.served_requests, 4u);  // blocker + 3
  EXPECT_EQ(be.served_requests, 3u);
  EXPECT_EQ(snap.served_images, 38u);  // 32 + 6
}

TEST(Scheduler, QueuedDeadlineExpiryFailsFastWithoutSkewingMetrics) {
  auto plan = make_plan(MacroMvmEngine::Mode::kAnalog);
  const std::uint64_t kSeed = 2024;

  // Reference: what serving ONLY the blocker (admission id 0) looks like.
  Tensor blocker_input = make_blocker_input();
  ExecutionContext ref_ctx(*plan, kSeed + 0);
  Tensor reference = ref_ctx.infer(blocker_input);

  SchedulerOptions options;
  options.workers = 1;
  options.max_microbatch = 1;
  options.noise_seed = kSeed;
  Scheduler scheduler(*plan, options);
  auto blocker = scheduler.submit(std::move(blocker_input),
                                  {Priority::kInteractive, milliseconds(0)});
  // The victim's 3 ms deadline passes long before the ~50 ms blocker
  // finishes: it must be canceled, never executed.
  auto victim = scheduler.submit(make_input(9, {1, 3, 8, 8}),
                                 {Priority::kBestEffort, milliseconds(3)});
  EXPECT_THROW((void)victim.get(), DeadlineExpiredError);
  EXPECT_TRUE(bit_identical(reference, blocker.get()));
  scheduler.wait_idle();

  // Served-work metrics and macro stats reflect the blocker ONLY.
  const MetricsSnapshot snap = scheduler.metrics_snapshot();
  const auto& be =
      snap.classes[static_cast<std::size_t>(Priority::kBestEffort)];
  EXPECT_EQ(be.expired_requests, 1u);
  EXPECT_EQ(be.served_requests, 0u);
  EXPECT_EQ(be.queue_wait.count, 0u);
  EXPECT_EQ(be.expired_wait.count, 1u);  // waited >= its 3 ms deadline
  EXPECT_GE(be.expired_wait.max_ms, 3.0);
  EXPECT_EQ(snap.served_images, 32u);
  EXPECT_EQ(scheduler.rom_stats().macs, ref_ctx.rom_stats().macs);
  EXPECT_EQ(scheduler.total_energy_pj(), ref_ctx.total_energy_pj());
}

TEST(Scheduler, AdmissionRejectsDeadAndInfeasibleDeadlinesWithoutBurningIds) {
  auto plan = make_plan(MacroMvmEngine::Mode::kAnalog);
  const std::uint64_t kSeed = 55;
  SchedulerOptions options;
  options.workers = 2;
  options.max_microbatch = 1;
  options.noise_seed = kSeed;
  Scheduler scheduler(*plan, options);

  // A deadline that is already in the past fails fast at admission.
  auto dead = scheduler.submit(make_input(1, {1, 3, 8, 8}),
                               {Priority::kInteractive, -milliseconds(1)});
  EXPECT_THROW((void)dead.get(), DeadlineExpiredError);

  // The rejection must NOT have consumed an admission id: the next
  // accepted request is id 0 and stays bit-identical to a serial run
  // seeded noise_seed + 0.
  Tensor input = make_input(2, {1, 3, 8, 8});
  ExecutionContext ref_ctx(*plan, kSeed + 0);
  Tensor reference = ref_ctx.infer(input);
  EXPECT_TRUE(bit_identical(reference, scheduler.submit(input).get()));
  scheduler.wait_idle();

  const MetricsSnapshot snap = scheduler.metrics_snapshot();
  const auto& inter =
      snap.classes[static_cast<std::size_t>(Priority::kInteractive)];
  EXPECT_EQ(inter.rejected_requests, 1u);
  EXPECT_EQ(inter.submitted, 1u);
  EXPECT_EQ(inter.served_requests, 0u);
  EXPECT_EQ(snap.classes[static_cast<std::size_t>(Priority::kBatch)]
                .served_requests,
            1u);
}

TEST(Scheduler, AdmissionEnforcesPerLaneDepthCap) {
  auto plan = make_plan(MacroMvmEngine::Mode::kAnalog);
  SchedulerOptions options;
  options.workers = 1;
  options.max_queue_depth = 1;
  Scheduler scheduler(*plan, options);

  // Blocker occupies the single worker for ~50 ms; the batch lane then
  // holds one queued request, so the next submission overflows the cap.
  auto blocker = scheduler.submit(make_blocker_input(),
                                  {Priority::kInteractive, milliseconds(0)});
  auto queued = scheduler.submit(make_input(1, {1, 3, 8, 8}),
                                 {Priority::kBatch, milliseconds(0)});
  auto overflow = scheduler.submit(make_input(2, {1, 3, 8, 8}),
                                   {Priority::kBatch, milliseconds(0)});
  EXPECT_THROW((void)overflow.get(), AdmissionError);
  (void)blocker.get();
  (void)queued.get();
  scheduler.wait_idle();

  const MetricsSnapshot snap = scheduler.metrics_snapshot();
  const auto& batch = snap.classes[static_cast<std::size_t>(Priority::kBatch)];
  EXPECT_EQ(batch.rejected_requests, 1u);
  EXPECT_EQ(batch.served_requests, 1u);
}

TEST(Scheduler, GracefulShutdownDrainsByPriority) {
  auto plan = make_plan(MacroMvmEngine::Mode::kAnalog);
  SchedulerOptions options;
  options.workers = 1;
  Scheduler scheduler(*plan, options);

  auto blocker = scheduler.submit(make_blocker_input(),
                                  {Priority::kInteractive, milliseconds(0)})
                     .share();
  std::vector<std::shared_future<Tensor>> best_effort, interactive;
  for (int i = 0; i < 3; ++i) {
    best_effort.push_back(
        scheduler
            .submit(make_input(400 + static_cast<unsigned>(i), {1, 3, 8, 8}),
                    {Priority::kBestEffort, milliseconds(0)})
            .share());
  }
  for (int i = 0; i < 3; ++i) {
    interactive.push_back(
        scheduler
            .submit(make_input(500 + static_cast<unsigned>(i), {1, 3, 8, 8}),
                    {Priority::kInteractive, milliseconds(0)})
            .share());
  }

  // Watch the drain from outside: when the first best-effort output
  // appears, the interactive lane must already be fully served.
  std::atomic<bool> interactive_served_first{false};
  std::thread observer([&] {
    best_effort[0].wait();
    bool all_ready = true;
    for (const auto& f : interactive) {
      all_ready = all_ready && f.wait_for(std::chrono::seconds(0)) ==
                                   std::future_status::ready;
    }
    interactive_served_first.store(all_ready);
  });

  scheduler.shutdown();  // graceful: drains everything queued, by priority
  observer.join();
  EXPECT_TRUE(interactive_served_first.load());
  for (const auto& f : interactive) EXPECT_NO_THROW((void)f.get());
  for (const auto& f : best_effort) EXPECT_NO_THROW((void)f.get());
  EXPECT_NO_THROW((void)blocker.get());

  // Admission is closed after shutdown.
  EXPECT_THROW((void)scheduler.submit(make_input(1, {1, 3, 8, 8})),
               std::runtime_error);

  const MetricsSnapshot snap = scheduler.metrics_snapshot();
  EXPECT_EQ(snap.served_requests, 7u);
  EXPECT_EQ(
      snap.classes[static_cast<std::size_t>(Priority::kBestEffort)]
          .served_requests,
      3u);
}

// -------------------------------------------------- telemetry surface

TEST(Scheduler, SnapshotJsonCarriesTheDocumentedSchema) {
  auto plan = make_plan(MacroMvmEngine::Mode::kExactCost);
  SchedulerOptions options;
  options.workers = 2;
  Scheduler scheduler(*plan, options);
  (void)scheduler.submit(make_input(1, {2, 3, 8, 8})).get();
  scheduler.wait_idle();

  const MetricsSnapshot snap = scheduler.metrics_snapshot();
  EXPECT_EQ(snap.served_requests, 1u);
  EXPECT_EQ(snap.served_images, 2u);
  EXPECT_GT(snap.rolling_images_per_s, 0.0);
  EXPECT_DOUBLE_EQ(snap.avg_batch_occupancy, 1.0);

  const std::string json = snap.to_json();
  for (const char* key :
       {"\"uptime_s\"", "\"workers\"", "\"batches\"", "\"served_images\"",
        "\"batch_occupancy\"", "\"rolling_images_per_s\"", "\"classes\"",
        "\"interactive\"", "\"batch\"", "\"best_effort\"",
        "\"queue_wait_ms\"", "\"e2e_ms\"", "\"expired_wait_ms\"",
        "\"p50_ms\"", "\"p95_ms\"", "\"p99_ms\"", "\"queue_depth\"",
        "\"expired\"", "\"rejected\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  // Balanced braces => structurally plausible JSON.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));

  // reset_metrics() zeroes the telemetry so a later snapshot covers
  // only post-reset traffic (benches scope out warmup this way).
  scheduler.reset_metrics();
  const MetricsSnapshot cleared = scheduler.metrics_snapshot();
  EXPECT_EQ(cleared.served_requests, 0u);
  EXPECT_EQ(cleared.batches, 0u);
  EXPECT_EQ(cleared.classes[1].submitted, 0u);
  EXPECT_EQ(cleared.classes[1].e2e.count, 0u);
  EXPECT_EQ(cleared.rolling_images_per_s, 0.0);
  (void)scheduler.submit(make_input(5, {1, 3, 8, 8})).get();
  scheduler.wait_idle();
  EXPECT_EQ(scheduler.metrics_snapshot().served_requests, 1u);
}

TEST(InferenceServer, FacadeAggregatesSchedulerFailuresIntoLegacyMetrics) {
  auto plan = make_plan(MacroMvmEngine::Mode::kExactCost);
  InferenceServer server(*plan, {});
  // Expired-at-admission requests surface in the legacy failed counter.
  auto dead = server.submit(make_input(1, {1, 3, 8, 8}),
                            {Priority::kInteractive, -milliseconds(1)});
  EXPECT_THROW((void)dead.get(), DeadlineExpiredError);
  (void)server.infer(make_input(2, {3, 3, 8, 8}));
  server.wait_idle();

  const ServerMetrics m = server.metrics();
  EXPECT_EQ(m.requests, 3u);
  EXPECT_EQ(m.images, 3u);
  EXPECT_EQ(m.failed_requests, 1u);
  EXPECT_EQ(server.metrics_snapshot()
                .classes[static_cast<std::size_t>(Priority::kInteractive)]
                .rejected_requests,
            1u);
}

}  // namespace
}  // namespace yoloc
