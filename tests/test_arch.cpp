// Architecture tests: network-model weight/MAC accounting, the ReBranch
// deployment transform, the tech-scaling table, and the Fig. 13/14
// system simulator (breakdowns, iso-area orderings).

#include <gtest/gtest.h>

#include "arch/network_model.hpp"
#include "arch/system_sim.hpp"
#include "arch/tech_scaling.hpp"

namespace yoloc {
namespace {

TEST(NetworkModel, Vgg8WeightCount) {
  const NetworkModel net = vgg8_model();
  // 6 convs + 2 FCs, ~5.4M weights.
  EXPECT_NEAR(net.total_weights() / 1e6, 5.4, 0.5);
  EXPECT_GT(net.total_macs(), net.total_weights());
}

TEST(NetworkModel, ResNet18WeightCount) {
  const NetworkModel net = resnet18_model();
  // ImageNet-style ResNet-18: ~11.7M weights, ~1.8 GMACs.
  EXPECT_NEAR(net.total_weights() / 1e6, 11.7, 0.7);
  EXPECT_NEAR(net.total_macs() / 1e9, 1.8, 0.4);
}

TEST(NetworkModel, YoloWeightCount) {
  const NetworkModel net = yolo_darknet19_model();
  // Paper quotes 46M for YOLO; the YOLOv2 layer table lands ~50M.
  EXPECT_GT(net.total_weights() / 1e6, 40.0);
  EXPECT_LT(net.total_weights() / 1e6, 55.0);
}

TEST(NetworkModel, TinyYoloWeightCount) {
  const NetworkModel net = tiny_yolo_model();
  EXPECT_NEAR(net.total_weights() / 1e6, 11.3, 1.0);
}

TEST(NetworkModel, SuiteOrderedBySize) {
  const auto suite = paper_model_suite();
  ASSERT_EQ(suite.size(), 4u);
  EXPECT_LT(suite[0].total_weights(), suite[1].total_weights());  // VGG < R18
  EXPECT_LT(suite[1].total_weights(), suite[3].total_weights());  // R18 < YOLO
}

TEST(NetworkModel, LayerGeometryDerivations) {
  NetLayer l;
  l.kind = NetLayerKind::kConv;
  l.in_ch = 16;
  l.out_ch = 32;
  l.kernel = 3;
  l.stride = 2;
  l.in_h = l.in_w = 8;
  EXPECT_EQ(l.out_h(), 4);
  EXPECT_DOUBLE_EQ(l.weight_count(), 16.0 * 32 * 9);
  EXPECT_DOUBLE_EQ(l.macs(), 16.0 * 32 * 9 * 16);
  EXPECT_DOUBLE_EQ(l.input_bytes(8), 16.0 * 64);
  EXPECT_DOUBLE_EQ(l.output_bytes(8), 32.0 * 16);
}

TEST(NetworkModel, PoolLayersHaveNoWeights) {
  const NetworkModel net = vgg8_model();
  for (const auto& l : net.layers) {
    if (l.kind == NetLayerKind::kPool) {
      EXPECT_DOUBLE_EQ(l.weight_count(), 0.0);
      EXPECT_DOUBLE_EQ(l.macs(), 0.0);
    }
  }
}

TEST(NetworkModel, RomAssignmentLeavesTailInSram) {
  NetworkModel net = vgg8_model();
  assign_backbone_to_rom(net, /*sram_tail_layers=*/2);
  EXPECT_GT(net.weights_with_residency(Residency::kRom), 0.0);
  EXPECT_GT(net.weights_with_residency(Residency::kSram), 0.0);
  // The two FC layers are the SRAM tail.
  EXPECT_EQ(net.layers.back().residency, Residency::kSram);
  // Over 90% of weights in ROM would be even stronger for YOLO; VGG-8's
  // big fc1 keeps it lower, so just check the split is sane.
  EXPECT_DOUBLE_EQ(net.weights_with_residency(Residency::kRom) +
                       net.weights_with_residency(Residency::kSram),
                   net.total_weights());
}

TEST(NetworkModel, YoloRomShareAbove90Percent) {
  NetworkModel net = yolo_darknet19_model();
  assign_backbone_to_rom(net, /*sram_tail_layers=*/1);
  const NetworkModel deployed = apply_rebranch(net, 4, 4);
  const double rom = deployed.weights_with_residency(Residency::kRom);
  // Paper: "Over 90% of parameters are stored in the high-density
  // ROM-CiM."
  EXPECT_GT(rom / deployed.total_weights(), 0.9);
}

TEST(ReBranchTransform, AddsBranchTripletsForRomConvs) {
  NetworkModel net = vgg8_model();
  assign_backbone_to_rom(net, 2);
  const NetworkModel deployed = apply_rebranch(net, 4, 4);
  int resconvs = 0;
  for (const auto& l : deployed.layers) {
    if (l.name.find(".resconv") != std::string::npos) {
      ++resconvs;
      EXPECT_EQ(l.residency, Residency::kSram);
    }
    if (l.name.find(".rescomp") != std::string::npos ||
        l.name.find(".resdecomp") != std::string::npos) {
      EXPECT_EQ(l.residency, Residency::kRom);
    }
  }
  EXPECT_EQ(resconvs, 6);  // one per ROM conv
}

TEST(ReBranchTransform, BranchHoldsRoughlyOneSixteenth) {
  NetworkModel net = yolo_darknet19_model();
  assign_backbone_to_rom(net, 1);
  const NetworkModel deployed = apply_rebranch(net, 4, 4);
  double trunk = 0.0;
  double resconv = 0.0;
  for (const auto& l : deployed.layers) {
    if (l.name.find(".res") != std::string::npos) {
      if (l.name.find(".resconv") != std::string::npos) {
        resconv += l.weight_count();
      }
    } else if (l.residency == Residency::kRom) {
      trunk += l.weight_count();
    }
  }
  // D*U = 16 -> the trainable branch is ~1/16 of the trunk.
  EXPECT_NEAR(trunk / resconv, 16.0, 3.0);
}

TEST(ReBranchTransform, MacOverheadIsSmall) {
  NetworkModel net = yolo_darknet19_model();
  const double base_macs = net.total_macs();
  assign_backbone_to_rom(net, 1);
  const NetworkModel deployed = apply_rebranch(net, 4, 4);
  const double overhead = deployed.total_macs() / base_macs - 1.0;
  EXPECT_GT(overhead, 0.0);
  EXPECT_LT(overhead, 0.25);
}

TEST(TechScaling, TableShape) {
  const auto table = tech_scaling_table();
  ASSERT_GE(table.size(), 8u);
  for (std::size_t i = 1; i < table.size(); ++i) {
    EXPECT_LT(table[i].node_nm, table[i - 1].node_nm);
    EXPECT_GT(table[i].sram_density_mb_per_mm2,
              table[i - 1].sram_density_mb_per_mm2);
    EXPECT_GT(table[i].tapeout_cost_norm, table[i - 1].tapeout_cost_norm);
  }
}

TEST(TechScaling, RomCimBeatsSramDensityAcrossNodes) {
  // The figure's headline: 28nm ROM-CiM is denser than even 7nm SRAM.
  const double rom = rom_cim_density_at_28nm();
  for (const auto& node : tech_scaling_table()) {
    EXPECT_GT(rom, node.sram_density_mb_per_mm2) << node.node_nm << "nm";
  }
}

class SystemSimTest : public ::testing::Test {
 protected:
  /// Fig. 14's iso-area anchor: the SRAM-CiM chip that holds the
  /// smallest model (VGG-8) entirely — the paper's 1x reference point.
  [[nodiscard]] double anchor_mm2() const {
    return sim_.sram_chip_area_for_bits(vgg8_model().weight_bits(8));
  }

  SystemSimulator sim_{SystemConfig{}};
};

TEST_F(SystemSimTest, YolocReportInternallyConsistent) {
  const IsoAreaComparison cmp = compare_iso_area(sim_, vgg8_model());
  const SystemReport& r = cmp.yoloc;
  EXPECT_GT(r.macs, 0.0);
  EXPECT_GT(r.energy.total_pj(), 0.0);
  EXPECT_GT(r.latency.total_ns(), 0.0);
  EXPECT_GT(r.area.total_mm2, 0.0);
  // Area components sum to the total.
  EXPECT_NEAR(r.area.array_mm2 + r.area.adc_mm2 + r.area.rw_mm2 +
                  r.area.peripheral_mm2 + r.area.buffer_mm2,
              r.area.total_mm2, 1e-6);
  // Energy breakdown fields are each <= total.
  EXPECT_LE(r.energy.dram_pj, r.energy.total_pj());
  EXPECT_LE(r.energy.cim_array_pj, r.energy.total_pj());
}

TEST_F(SystemSimTest, YolocHasNoPerInferenceDramForYolo) {
  const IsoAreaComparison cmp =
      compare_iso_area(sim_, yolo_darknet19_model(), 4, 4, 1, anchor_mm2());
  // Amortized boot load only: orders of magnitude below the SRAM chip's
  // per-inference streaming.
  EXPECT_LT(cmp.yoloc.energy.dram_pj, 0.01 * cmp.sram_single.energy.dram_pj);
  EXPECT_GT(cmp.sram_single.dram_bytes_per_inference, 1e6);
}

TEST_F(SystemSimTest, ImprovementGrowsWithModelSize) {
  // Fig. 14c: VGG-8 1x, ResNet-18 4.8x, Tiny-YOLO 10.2x, YOLO 14.8x.
  // Reproduced shape: ~1x for the model that fits, multiple-x growing
  // with model size once DRAM streaming kicks in.
  double prev_improvement = 0.0;
  for (const auto& net : paper_model_suite()) {
    const IsoAreaComparison cmp =
        compare_iso_area(sim_, net, 4, 4, 1, anchor_mm2());
    const double improvement =
        cmp.yoloc.tops_per_watt() / cmp.sram_single.tops_per_watt();
    EXPECT_GE(improvement, prev_improvement * 0.7)
        << net.name;  // allow moderate non-monotonic wiggle
    prev_improvement = improvement;
  }
  EXPECT_GT(prev_improvement, 4.0);  // YOLO improvement is large
}

TEST_F(SystemSimTest, SmallModelImprovementNearOne) {
  // VGG-8 fits entirely in the anchor chip: no DRAM streaming, so the
  // improvement collapses to the compute-efficiency ratio (~1x).
  const IsoAreaComparison cmp =
      compare_iso_area(sim_, vgg8_model(), 4, 4, 1, anchor_mm2());
  EXPECT_LT(cmp.sram_single.dram_bytes_per_inference, 1e4);
  const double improvement =
      cmp.yoloc.tops_per_watt() / cmp.sram_single.tops_per_watt();
  EXPECT_GT(improvement, 0.7);
  EXPECT_LT(improvement, 2.5);
}

TEST_F(SystemSimTest, ChipletsUseMoreSiliconButNoDram) {
  const IsoAreaComparison cmp =
      compare_iso_area(sim_, yolo_darknet19_model(), 4, 4, 1, anchor_mm2());
  // Paper Fig. 14a: ~10 chiplets for YOLO.
  EXPECT_GE(cmp.sram_chiplets.area.chips, 6);
  EXPECT_LE(cmp.sram_chiplets.area.chips, 14);
  EXPECT_GT(cmp.sram_chiplets.area.total_mm2, 3.0 * cmp.yoloc.area.total_mm2);
  EXPECT_LT(cmp.sram_chiplets.energy.dram_pj,
            0.05 * cmp.sram_single.energy.dram_pj);
  EXPECT_GT(cmp.sram_chiplets.energy.interchip_pj, 0.0);
  // Chiplet energy efficiency is in YOLoC's ballpark (paper: ~2% apart),
  // certainly far better than the DRAM-bound single chip.
  EXPECT_GT(cmp.sram_chiplets.tops_per_watt(),
            2.0 * cmp.sram_single.tops_per_watt());
}

TEST_F(SystemSimTest, ReBranchLatencyOverheadSmall) {
  NetworkModel base = yolo_darknet19_model();
  assign_backbone_to_rom(base, 1);
  const NetworkModel deployed = apply_rebranch(base, 4, 4);
  const SystemReport with_branch = sim_.simulate_yoloc(deployed);
  const SystemReport without_branch = sim_.simulate_yoloc(base);
  const double overhead = with_branch.latency.total_ns() /
                              without_branch.latency.total_ns() -
                          1.0;
  // Paper: ~8% on YOLO; accept anything clearly below 20%.
  EXPECT_GE(overhead, 0.0);
  EXPECT_LT(overhead, 0.20);
}

TEST_F(SystemSimTest, SramCapacityMonotoneInArea) {
  EXPECT_LT(sim_.sram_chip_capacity_bits(10.0),
            sim_.sram_chip_capacity_bits(100.0));
  EXPECT_EQ(sim_.sram_chip_capacity_bits(0.1), 0.0);
}

TEST_F(SystemSimTest, DeploymentNames) {
  EXPECT_NE(deployment_name(Deployment::kYoloc).find("YOLoC"),
            std::string::npos);
  EXPECT_NE(deployment_name(Deployment::kSramChiplet).find("chiplet"),
            std::string::npos);
}

}  // namespace
}  // namespace yoloc
