// Tensor storage and math-kernel tests, including the im2col/col2im
// adjoint property that the conv backward pass relies on.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace yoloc {
namespace {

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, RejectsBadShapes) {
  EXPECT_THROW(Tensor(std::vector<int>{}), std::runtime_error);
  EXPECT_THROW(Tensor({2, 0}), std::runtime_error);
  EXPECT_THROW(Tensor({-1}), std::runtime_error);
}

TEST(Tensor, FullAndFill) {
  Tensor t = Tensor::full({4}, 2.5f);
  EXPECT_EQ(t[3], 2.5f);
  t.zero();
  EXPECT_EQ(t[0], 0.0f);
}

TEST(Tensor, FromVectorChecksCount) {
  EXPECT_NO_THROW(Tensor::from_vector({2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor::from_vector({2, 2}, {1, 2, 3}), std::runtime_error);
}

TEST(Tensor, At2Checked) {
  Tensor t({2, 3});
  t.at2(1, 2) = 7.0f;
  EXPECT_EQ(t[5], 7.0f);
  EXPECT_THROW((void)t.at2(2, 0), std::runtime_error);
}

TEST(Tensor, At4MatchesIndex4) {
  Tensor t({2, 3, 4, 5});
  t.at4(1, 2, 3, 4) = 9.0f;
  EXPECT_EQ(t[t.index4(1, 2, 3, 4)], 9.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.at2(2, 1), 6.0f);
  EXPECT_THROW(t.reshaped({4, 2}), std::runtime_error);
}

TEST(Tensor, SumAndMaxAbs) {
  Tensor t = Tensor::from_vector({3}, {1.0f, -4.0f, 2.0f});
  EXPECT_DOUBLE_EQ(t.sum(), -1.0);
  EXPECT_FLOAT_EQ(t.max_abs(), 4.0f);
}

TEST(Tensor, RandnStatistics) {
  Rng rng(5);
  Tensor t = Tensor::randn({10000}, rng, 2.0f);
  EXPECT_NEAR(mean(t), 0.0, 0.08);
  EXPECT_NEAR(std::sqrt(variance(t)), 2.0, 0.08);
}

TEST(Ops, AddSubMul) {
  Tensor a = Tensor::from_vector({3}, {1, 2, 3});
  Tensor b = Tensor::from_vector({3}, {4, 5, 6});
  EXPECT_FLOAT_EQ(add(a, b)[1], 7.0f);
  EXPECT_FLOAT_EQ(sub(b, a)[2], 3.0f);
  EXPECT_FLOAT_EQ(mul(a, b)[0], 4.0f);
}

TEST(Ops, ShapeMismatchThrows) {
  Tensor a({3});
  Tensor b({4});
  EXPECT_THROW(add(a, b), std::runtime_error);
}

TEST(Ops, AxpyInplace) {
  Tensor a = Tensor::from_vector({2}, {1, 1});
  Tensor b = Tensor::from_vector({2}, {2, 4});
  axpy_inplace(a, 0.5f, b);
  EXPECT_FLOAT_EQ(a[0], 2.0f);
  EXPECT_FLOAT_EQ(a[1], 3.0f);
}

TEST(Ops, MatmulHandComputed) {
  Tensor a = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::from_vector({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at2(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at2(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at2(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at2(1, 1), 154.0f);
}

TEST(Ops, MatmulInnerDimChecked) {
  Tensor a({2, 3});
  Tensor b({4, 2});
  EXPECT_THROW(matmul(a, b), std::runtime_error);
}

TEST(Ops, TransposeRoundTrip) {
  Rng rng(3);
  Tensor a = Tensor::randn({5, 7}, rng);
  Tensor att = transpose2d(transpose2d(a));
  EXPECT_FLOAT_EQ(max_abs_diff(a, att), 0.0f);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  Rng rng(4);
  Tensor logits = Tensor::randn({6, 9}, rng, 3.0f);
  Tensor p = softmax_rows(logits);
  for (int r = 0; r < 6; ++r) {
    double s = 0.0;
    for (int c = 0; c < 9; ++c) {
      EXPECT_GE(p.at2(r, c), 0.0f);
      s += p.at2(r, c);
    }
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(Ops, SoftmaxStableForLargeLogits) {
  Tensor logits = Tensor::from_vector({1, 3}, {1000.0f, 999.0f, 998.0f});
  Tensor p = softmax_rows(logits);
  EXPECT_FALSE(std::isnan(p[0]));
  EXPECT_GT(p.at2(0, 0), p.at2(0, 1));
}

TEST(Ops, ArgmaxRows) {
  Tensor t = Tensor::from_vector({2, 3}, {1, 5, 2, 9, 0, 3});
  const auto idx = argmax_rows(t);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

TEST(Ops, ConvOutExtent) {
  EXPECT_EQ(conv_out_extent(32, 3, 1, 1), 32);
  EXPECT_EQ(conv_out_extent(32, 3, 2, 1), 16);
  EXPECT_EQ(conv_out_extent(5, 3, 1, 0), 3);
  EXPECT_THROW(conv_out_extent(2, 5, 1, 0), std::runtime_error);
}

TEST(Ops, Im2colIdentityKernel) {
  // 1x1 kernel, stride 1, no padding: im2col is a reshape.
  Rng rng(6);
  Tensor x = Tensor::randn({2, 3, 4, 4}, rng);
  Tensor cols = im2col(x, 1, 1, 1, 0);
  EXPECT_EQ(cols.shape()[0], 3);
  EXPECT_EQ(cols.shape()[1], 2 * 16);
  // Channel c, image n, pixel (i,j) maps to cols(c, n*16 + i*4 + j).
  EXPECT_FLOAT_EQ(cols.at2(2, 1 * 16 + 5), x.at4(1, 2, 1, 1));
}

TEST(Ops, Im2colPaddingZeros) {
  Tensor x = Tensor::full({1, 1, 2, 2}, 1.0f);
  Tensor cols = im2col(x, 3, 3, 1, 1);
  EXPECT_EQ(cols.shape()[0], 9);
  EXPECT_EQ(cols.shape()[1], 4);
  // Top-left output pixel: the (0,0) kernel tap falls on padding.
  EXPECT_FLOAT_EQ(cols.at2(0, 0), 0.0f);
  // Center tap hits the image.
  EXPECT_FLOAT_EQ(cols.at2(4, 0), 1.0f);
}

/// <im2col(x), y> == <x, col2im(y)>: the two ops are adjoint, which is
/// exactly what conv backward assumes.
TEST(Ops, Im2colCol2imAdjoint) {
  Rng rng(8);
  const std::vector<int> shape{2, 3, 6, 6};
  Tensor x = Tensor::randn(shape, rng);
  Tensor cols = im2col(x, 3, 3, 2, 1);
  Tensor y = Tensor::randn(cols.shape(), rng);
  Tensor back = col2im(y, shape, 3, 3, 2, 1);

  double lhs = 0.0;
  for (std::size_t i = 0; i < cols.size(); ++i) lhs += cols[i] * y[i];
  double rhs = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) rhs += x[i] * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-2);
}

struct ConvGeom {
  int kernel;
  int stride;
  int pad;
};

class Im2colProperty : public ::testing::TestWithParam<ConvGeom> {};

TEST_P(Im2colProperty, ShapesAndAdjointHold) {
  const auto g = GetParam();
  Rng rng(100 + g.kernel * 10 + g.stride);
  const std::vector<int> shape{1, 2, 8, 8};
  Tensor x = Tensor::randn(shape, rng);
  Tensor cols = im2col(x, g.kernel, g.kernel, g.stride, g.pad);
  const int oh = conv_out_extent(8, g.kernel, g.stride, g.pad);
  EXPECT_EQ(cols.shape()[0], 2 * g.kernel * g.kernel);
  EXPECT_EQ(cols.shape()[1], oh * oh);

  Tensor y = Tensor::randn(cols.shape(), rng);
  Tensor back = col2im(y, shape, g.kernel, g.kernel, g.stride, g.pad);
  double lhs = 0.0;
  for (std::size_t i = 0; i < cols.size(); ++i) lhs += cols[i] * y[i];
  double rhs = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) rhs += x[i] * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-2);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Im2colProperty,
    ::testing::Values(ConvGeom{1, 1, 0}, ConvGeom{3, 1, 1}, ConvGeom{3, 2, 1},
                      ConvGeom{5, 1, 2}, ConvGeom{2, 2, 0},
                      ConvGeom{3, 1, 0}));

}  // namespace
}  // namespace yoloc
