// Circuit-model tests: bitline discharge linearity and saturation, ADC
// transfer function, and the combined array read model.

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/adc.hpp"
#include "circuit/bitline.hpp"
#include "circuit/cim_array.hpp"

namespace yoloc {
namespace {

BitlineParams rom_bitline() {
  BitlineParams p;
  p.c_bl_ff = 100.0;
  p.v_precharge = 0.9;
  p.i_cell_ua = 2.0;
  p.t_pulse_ns = 0.35;
  p.sigma_cell = 0.0;
  return p;
}

TEST(Bitline, DeltaVFromPhysics) {
  const BitlineModel bl(rom_bitline());
  // dV = I*t/C = 2uA * 0.35ns / 100fF = 7 mV.
  EXPECT_NEAR(bl.delta_v_per_cell(), 0.007, 1e-9);
}

TEST(Bitline, LinearDischarge) {
  const BitlineModel bl(rom_bitline());
  EXPECT_NEAR(bl.voltage_for_count(0), 0.9, 1e-12);
  EXPECT_NEAR(bl.voltage_for_count(10), 0.9 - 10 * 0.007, 1e-9);
}

TEST(Bitline, SaturatesAtFloor) {
  const BitlineModel bl(rom_bitline());
  EXPECT_DOUBLE_EQ(bl.voltage_for_count(1e6), 0.0);
}

TEST(Bitline, MaxResolvableCount) {
  const BitlineModel bl(rom_bitline());
  EXPECT_EQ(bl.max_resolvable_count(), static_cast<int>(0.9 / 0.007));
}

TEST(Bitline, PrechargeEnergyGrowsWithCount) {
  const BitlineModel bl(rom_bitline());
  EXPECT_LT(bl.precharge_energy_pj(1), bl.precharge_energy_pj(16));
  // E = C*Vpre*dV = 100fF * 0.9 * 0.007 = 0.63 fJ = 0.00063 pJ per cell.
  EXPECT_NEAR(bl.precharge_energy_pj(1), 100.0 * 0.9 * 0.007 * 1e-3, 1e-9);
}

TEST(Bitline, RejectsBadParams) {
  BitlineParams p = rom_bitline();
  p.c_bl_ff = 0.0;
  EXPECT_THROW(BitlineModel{p}, std::runtime_error);
  p = rom_bitline();
  p.v_precharge = -0.1;
  EXPECT_THROW(BitlineModel{p}, std::runtime_error);
}

AdcParams adc5(double v_hi = 0.9, double v_lo = 0.0) {
  AdcParams p;
  p.bits = 5;
  p.v_hi = v_hi;
  p.v_lo = v_lo;
  p.noise_sigma_v = 0.0;
  return p;
}

TEST(Adc, CodeZeroAtFullScaleHigh) {
  const Adc adc(adc5());
  EXPECT_EQ(adc.quantize_ideal(0.9), 0);
}

TEST(Adc, MaxCodeAtFullScaleLow) {
  const Adc adc(adc5());
  EXPECT_EQ(adc.quantize_ideal(0.0), 31);
}

TEST(Adc, MonotoneInDischarge) {
  const Adc adc(adc5());
  int prev = -1;
  for (double v = 0.9; v >= 0.0; v -= 0.03) {
    const int code = adc.quantize_ideal(v);
    EXPECT_GE(code, prev);
    prev = code;
  }
}

TEST(Adc, ClampsOutOfRange) {
  const Adc adc(adc5());
  EXPECT_EQ(adc.quantize_ideal(2.0), 0);
  EXPECT_EQ(adc.quantize_ideal(-1.0), 31);
}

TEST(Adc, LevelCount) {
  const Adc adc(adc5());
  EXPECT_EQ(adc.code_count(), 32);
  EXPECT_NEAR(adc.lsb_voltage(), 0.9 / 31.0, 1e-12);
}

CimArrayModel make_array(int group, double sigma = 0.0) {
  BitlineParams bl = rom_bitline();
  bl.sigma_cell = sigma;
  AdcParams adc;
  adc.bits = 5;
  adc.noise_sigma_v = 0.0;
  adc.energy_pj = 0.07;
  ArrayEnergyParams energy;
  return CimArrayModel(bl, adc, energy, group);
}

TEST(CimArray, ExactReadWhenGroupMatchesAdcRange) {
  // Group of 31 = ADC levels-1: every count maps to its own code.
  const CimArrayModel arr = make_array(31);
  Rng rng(1);
  ArrayReadStats stats;
  for (int count = 0; count <= 31; ++count) {
    const double est = arr.read_count(count, 31, rng, stats);
    EXPECT_NEAR(est, count, 0.51) << "count " << count;
  }
  EXPECT_EQ(stats.adc_conversions, 32u);
}

TEST(CimArray, QuantizationErrorGrowsWithGroupSize) {
  const CimArrayModel small = make_array(32);
  const CimArrayModel large = make_array(124);
  Rng rng(2);
  ArrayReadStats stats;
  double err_small = 0.0;
  double err_large = 0.0;
  for (int count = 0; count <= 30; ++count) {
    err_small += std::fabs(small.read_count(count, 32, rng, stats) - count);
    err_large += std::fabs(large.read_count(count, 124, rng, stats) - count);
  }
  EXPECT_LT(err_small, err_large);
}

TEST(CimArray, NoiseBroadensEstimates) {
  const CimArrayModel noisy = make_array(32, /*sigma=*/0.3);
  Rng rng(3);
  ArrayReadStats stats;
  double var = 0.0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    const double est = noisy.read_count(16, 32, rng, stats);
    var += (est - 16.0) * (est - 16.0);
  }
  // With 30% cell mismatch over 16 cells some spread must appear.
  EXPECT_GT(var / trials, 0.05);
}

TEST(CimArray, RejectsCountAboveActiveRows) {
  const CimArrayModel arr = make_array(32);
  Rng rng(4);
  ArrayReadStats stats;
  EXPECT_THROW((void)arr.read_count(33, 32, rng, stats), std::runtime_error);
}

TEST(CimArray, EnergyAccounting) {
  const CimArrayModel arr = make_array(32);
  Rng rng(5);
  ArrayReadStats stats;
  (void)arr.read_count(8, 32, rng, stats);
  EXPECT_EQ(stats.adc_conversions, 1u);
  EXPECT_NEAR(stats.adc_energy_pj, 0.07, 1e-12);
  EXPECT_GT(stats.precharge_energy_pj, 0.0);

  arr.charge_wl_pulses(10, stats);
  EXPECT_EQ(stats.wl_pulses, 10u);
  EXPECT_GT(stats.wl_energy_pj, 0.0);
  arr.charge_shift_adds(5, stats);
  EXPECT_EQ(stats.shift_adds, 5u);

  ArrayReadStats other;
  other.adc_conversions = 3;
  other.adc_energy_pj = 1.0;
  stats.accumulate(other);
  EXPECT_EQ(stats.adc_conversions, 4u);
  EXPECT_GT(stats.total_energy_pj(), 1.0);
}

TEST(CimArray, GroupMustFitBitlineRange) {
  BitlineParams bl = rom_bitline();
  bl.i_cell_ua = 50.0;  // huge discharge per cell
  AdcParams adc;
  ArrayEnergyParams energy;
  EXPECT_THROW(CimArrayModel(bl, adc, energy, 128), std::runtime_error);
}

class AdcBitsProperty : public ::testing::TestWithParam<int> {};

TEST_P(AdcBitsProperty, ReadErrorBoundedByHalfStepPlusSaturation) {
  const int bits = GetParam();
  BitlineParams bl = rom_bitline();
  AdcParams adc;
  adc.bits = bits;
  adc.noise_sigma_v = 0.0;
  ArrayEnergyParams energy;
  const CimArrayModel arr(bl, adc, energy, 32);
  ArrayReadStats stats;
  // LSB spans an integer count step; counts beyond the code range clip.
  const int levels = 1 << bits;
  const double step = arr.counts_per_code();
  EXPECT_DOUBLE_EQ(step, std::ceil(32.0 / levels));
  const double range = (levels - 1) * step;
  for (int count = 0; count <= 32; ++count) {
    const double est = arr.read_count_ideal(count, stats);
    const double allowed =
        step / 2 + std::max(0.0, count - range) + 1e-9;
    EXPECT_LE(std::fabs(est - count), allowed)
        << "bits " << bits << " count " << count;
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, AdcBitsProperty,
                         ::testing::Values(4, 5, 6, 7, 8));

}  // namespace
}  // namespace yoloc
