// Unit tests for the common substrate: RNG, units, table, parallel_for,
// check macros.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace yoloc {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int diffs = 0;
  for (int i = 0; i < 16; ++i) {
    if (a() != b()) ++diffs;
  }
  EXPECT_GT(diffs, 12);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntCoversFullRangeInclusive) {
  Rng rng(11);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(0, 7));
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(13);
  const int n = 20000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalScalesMeanAndStddev) {
  Rng rng(17);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.08);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(31);
  Rng child = a.fork();
  EXPECT_NE(a(), child());
}

TEST(Units, TopsPerWattIsOpsPerPicojoule) {
  EXPECT_DOUBLE_EQ(tops_per_watt(100.0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(tops_per_watt(0.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(tops_per_watt(100.0, 0.0), 0.0);
}

TEST(Units, GopsIsOpsPerNanosecond) {
  EXPECT_DOUBLE_EQ(gops(256.0, 8.9), 256.0 / 8.9);
}

TEST(Units, DensityMbPerMm2) {
  EXPECT_DOUBLE_EQ(mb_per_mm2(1.2e6, 0.24), 5.0);
}

TEST(Units, FormatSiPicksSuffix) {
  EXPECT_EQ(format_si(1.25e9, 2), "1.25 G");
  EXPECT_EQ(format_si(500.0, 0), "500 ");
}

TEST(Units, FormatFixedPrecision) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
}

TEST(Table, RendersHeadersAndRows) {
  TextTable t({"A", "B"});
  t.add_row({"x", "y"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| A"), std::string::npos);
  EXPECT_NE(s.find("| x"), std::string::npos);
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(Table, NumericRowFormatting) {
  TextTable t({"name", "v1", "v2"});
  t.add_row("row", {1.5, 2.25}, 2);
  EXPECT_NE(t.to_string().find("2.25"), std::string::npos);
}

TEST(Table, RejectsMismatchedRowWidth) {
  TextTable t({"A", "B"});
  EXPECT_THROW(t.add_row({"only-one"}), std::runtime_error);
}

TEST(Parallel, CoversAllIndicesExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, HandlesZeroAndOne) {
  std::atomic<int> count{0};
  parallel_for(0, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 0);
  parallel_for(1, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 1);
}

TEST(Check, ThrowsWithMessage) {
  try {
    YOLOC_CHECK(false, "special-message");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("special-message"),
              std::string::npos);
  }
}

TEST(Check, PassesOnTrue) {
  EXPECT_NO_THROW(YOLOC_CHECK(true, "never"));
}

}  // namespace
}  // namespace yoloc
