// Unit tests for the common substrate: RNG, units, table, parallel_for,
// check macros.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <set>
#include <utility>
#include <vector>

#include "common/base64.hpp"
#include "common/binio.hpp"
#include "common/check.hpp"
#include "common/crc32.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace yoloc {
namespace {

TEST(Crc32, MatchesKnownVectors) {
  // zlib-compatible check values.
  const char digits[] = "123456789";
  EXPECT_EQ(crc32(digits, 9), 0xCBF43926u);
  EXPECT_EQ(crc32(nullptr, 0), 0x00000000u);
  const char a[] = "a";
  EXPECT_EQ(crc32(a, 1), 0xE8B7BE43u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const char data[] = "YOLOCPLN section payload";
  const std::size_t n = sizeof(data) - 1;
  const std::uint32_t whole = crc32(data, n);
  const std::uint32_t part = crc32(data + 5, n - 5, crc32(data, 5));
  EXPECT_EQ(whole, part);
  EXPECT_NE(crc32(data, n - 1), whole);
}

TEST(BinIo, RoundTripsEveryPrimitive) {
  ByteWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i32(-42);
  w.f32(-0.625f);
  w.f64(3.141592653589793);
  w.str("yoloc");
  w.str("");

  ByteReader r(w.buffer().data(), w.buffer().size());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.f32(), -0.625f);
  EXPECT_EQ(r.f64(), 3.141592653589793);
  EXPECT_EQ(r.str(), "yoloc");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.remaining(), 0u);
  r.expect_exhausted("binio test");
}

TEST(BinIo, EncodingIsLittleEndianAndStable) {
  ByteWriter w;
  w.u32(0x01020304u);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.buffer()[0], 0x04);
  EXPECT_EQ(w.buffer()[1], 0x03);
  EXPECT_EQ(w.buffer()[2], 0x02);
  EXPECT_EQ(w.buffer()[3], 0x01);
}

TEST(BinIo, ReaderRefusesToRunPastTheBuffer) {
  ByteWriter w;
  w.u32(7);
  ByteReader r(w.buffer().data(), w.buffer().size());
  (void)r.u32();
  EXPECT_THROW((void)r.u8(), std::runtime_error);

  // A string length prefix larger than the remaining payload must throw
  // instead of reading out of bounds.
  ByteWriter bad;
  bad.u32(1000);
  ByteReader br(bad.buffer().data(), bad.buffer().size());
  EXPECT_THROW((void)br.str(), std::runtime_error);

  ByteReader partial(w.buffer().data(), 2);
  EXPECT_THROW((void)partial.u32(), std::runtime_error);
  EXPECT_THROW(partial.expect_exhausted("partial"), std::runtime_error);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int diffs = 0;
  for (int i = 0; i < 16; ++i) {
    if (a() != b()) ++diffs;
  }
  EXPECT_GT(diffs, 12);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntCoversFullRangeInclusive) {
  Rng rng(11);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(0, 7));
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(13);
  const int n = 20000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalScalesMeanAndStddev) {
  Rng rng(17);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.08);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(31);
  Rng child = a.fork();
  EXPECT_NE(a(), child());
}

TEST(Units, TopsPerWattIsOpsPerPicojoule) {
  EXPECT_DOUBLE_EQ(tops_per_watt(100.0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(tops_per_watt(0.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(tops_per_watt(100.0, 0.0), 0.0);
}

TEST(Units, GopsIsOpsPerNanosecond) {
  EXPECT_DOUBLE_EQ(gops(256.0, 8.9), 256.0 / 8.9);
}

TEST(Units, DensityMbPerMm2) {
  EXPECT_DOUBLE_EQ(mb_per_mm2(1.2e6, 0.24), 5.0);
}

TEST(Units, FormatSiPicksSuffix) {
  EXPECT_EQ(format_si(1.25e9, 2), "1.25 G");
  EXPECT_EQ(format_si(500.0, 0), "500 ");
}

TEST(Units, FormatFixedPrecision) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
}

TEST(Table, RendersHeadersAndRows) {
  TextTable t({"A", "B"});
  t.add_row({"x", "y"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| A"), std::string::npos);
  EXPECT_NE(s.find("| x"), std::string::npos);
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(Table, NumericRowFormatting) {
  TextTable t({"name", "v1", "v2"});
  t.add_row("row", {1.5, 2.25}, 2);
  EXPECT_NE(t.to_string().find("2.25"), std::string::npos);
}

TEST(Table, RejectsMismatchedRowWidth) {
  TextTable t({"A", "B"});
  EXPECT_THROW(t.add_row({"only-one"}), std::runtime_error);
}

TEST(Parallel, CoversAllIndicesExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, HandlesZeroAndOne) {
  std::atomic<int> count{0};
  parallel_for(0, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 0);
  parallel_for(1, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 1);
}

TEST(Check, ThrowsWithMessage) {
  try {
    YOLOC_CHECK(false, "special-message");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("special-message"),
              std::string::npos);
  }
}

TEST(Check, PassesOnTrue) {
  EXPECT_NO_THROW(YOLOC_CHECK(true, "never"));
}

TEST(Base64, MatchesRfc4648Vectors) {
  const std::pair<const char*, const char*> vectors[] = {
      {"", ""},           {"f", "Zg=="},     {"fo", "Zm8="},
      {"foo", "Zm9v"},    {"foob", "Zm9vYg=="},
      {"fooba", "Zm9vYmE="}, {"foobar", "Zm9vYmFy"},
  };
  for (const auto& [plain, encoded] : vectors) {
    EXPECT_EQ(base64_encode(plain, std::strlen(plain)), encoded) << plain;
    std::vector<std::uint8_t> back;
    ASSERT_TRUE(base64_decode(encoded, back)) << encoded;
    EXPECT_EQ(std::string(back.begin(), back.end()), plain);
  }
}

TEST(Base64, RoundTripsBinaryExactly) {
  // f32 tensors ride base64 through the HTTP API; the round trip must
  // be byte-exact for every value including NaN payloads and -0.0.
  Rng rng(11);
  std::vector<float> values(257);  // deliberately not a multiple of 3 bytes
  for (float& v : values) v = rng.normal(0.0f, 10.0f);
  values[0] = -0.0f;
  values[1] = std::numeric_limits<float>::quiet_NaN();
  values[2] = std::numeric_limits<float>::infinity();
  const std::string text =
      base64_encode(values.data(), values.size() * sizeof(float));
  std::vector<std::uint8_t> back;
  ASSERT_TRUE(base64_decode(text, back));
  ASSERT_EQ(back.size(), values.size() * sizeof(float));
  EXPECT_EQ(std::memcmp(back.data(), values.data(), back.size()), 0);
}

TEST(Base64, StrictDecoderRejectsMalformedInput) {
  std::vector<std::uint8_t> out;
  // Length not a multiple of 4.
  EXPECT_FALSE(base64_decode("Zg", out));
  EXPECT_FALSE(base64_decode("Zm9vY", out));
  // Characters outside the alphabet (including whitespace).
  EXPECT_FALSE(base64_decode("Zm9v\n", out));
  EXPECT_FALSE(base64_decode("Zm!v", out));
  // Padding in the wrong place.
  EXPECT_FALSE(base64_decode("=m9v", out));
  EXPECT_FALSE(base64_decode("Z==v", out));
  EXPECT_FALSE(base64_decode("Zg==Zg==", out));  // pad before the end
  // A failed decode leaves `out` empty, never half-filled.
  EXPECT_TRUE(out.empty());
  // And the empty string is valid.
  EXPECT_TRUE(base64_decode("", out));
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace yoloc
