// Tracing & replay (src/serve/trace.*, workload_trace.*): sampling
// determinism, collector overflow semantics, the observer-only
// contract (outputs AND stat sums bit-identical at any sampling rate),
// span structure (per-request and per-batch spans present, e2e
// envelopes queue-wait + execute, per-layer MVM spans appear), chrome
// JSON structure, the .yoloctrace round trip with corruption coverage,
// and deterministic workload replay (admission order and per-class
// outcome counts reproduce exactly).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <future>
#include <map>
#include <string>
#include <vector>

#include "nn/activations.hpp"
#include "nn/container.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "runtime/deployment_plan.hpp"
#include "runtime/execution_context.hpp"
#include "serve/scheduler.hpp"
#include "serve/trace.hpp"
#include "serve/workload_trace.hpp"
#include "tensor/ops.hpp"

namespace yoloc {
namespace {

// Keep the concurrency paths exercised even on single-core CI boxes.
const bool g_env_pinned = [] {
  setenv("YOLOC_THREADS", "4", /*overwrite=*/1);
  return true;
}();

LayerPtr make_model(std::uint64_t seed) {
  Rng rng(seed);
  auto backbone = std::make_unique<Sequential>("backbone");
  backbone->add(std::make_unique<Conv2d>(3, 4, 3, 1, 1, true, rng, "b.c1"));
  backbone->add(std::make_unique<ReLU>());
  backbone->add(std::make_unique<MaxPool2d>(2));
  backbone->add(std::make_unique<Conv2d>(4, 6, 3, 1, 1, true, rng, "b.c2"));
  backbone->add(std::make_unique<ReLU>());
  auto net = std::make_unique<Sequential>("net");
  net->add(std::move(backbone));
  net->add(std::make_unique<GlobalAvgPool>());
  net->add(std::make_unique<Linear>(6, 5, true, rng, "head.fc"));
  for (Parameter* p : net->parameters()) {
    p->rom_resident = p->name.find("b.c") != std::string::npos;
  }
  return net;
}

std::unique_ptr<DeploymentPlan> make_plan(MacroMvmEngine::Mode mode) {
  LayerPtr net = make_model(21);
  Rng data_rng(33);
  Tensor calib = Tensor::rand_uniform({8, 3, 8, 8}, data_rng, 0.0f, 1.0f);
  DeploymentOptions options;
  options.mode = mode;
  return std::make_unique<DeploymentPlan>(std::move(net), calib,
                                          std::move(options));
}

Tensor make_input(std::uint64_t seed, std::vector<int> shape) {
  Rng rng(seed);
  return Tensor::rand_uniform(shape, rng, 0.0f, 1.0f);
}

::testing::AssertionResult bit_identical(const Tensor& a, const Tensor& b) {
  if (!same_shape(a, b)) {
    return ::testing::AssertionFailure() << "shape mismatch";
  }
  if (std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) != 0) {
    return ::testing::AssertionFailure()
           << "payload differs (max |a-b| = " << max_abs_diff(a, b) << ")";
  }
  return ::testing::AssertionSuccess();
}

// ----------------------------------------------------- TraceCollector

TEST(TraceCollector, SamplingIsDeterministicAndMonotoneInRate) {
  const TraceCollector none(2, 0.0);
  const TraceCollector half_a(2, 0.5);
  const TraceCollector half_b(4, 0.5);  // worker count must not matter
  const TraceCollector most(2, 0.9);
  const TraceCollector all(2, 1.0);

  EXPECT_FALSE(none.enabled());
  EXPECT_TRUE(half_a.enabled());

  int sampled = 0;
  for (std::uint64_t id = 0; id < 2000; ++id) {
    EXPECT_FALSE(none.sampled(id));
    EXPECT_TRUE(all.sampled(id));
    EXPECT_EQ(half_a.sampled(id), half_b.sampled(id));
    // The decision is a threshold on one hash value, so a request
    // sampled at a low rate is sampled at every higher rate too.
    if (half_a.sampled(id)) {
      ++sampled;
      EXPECT_TRUE(most.sampled(id));
    }
  }
  // Loose two-sided bound: ~half of 2000 ids at rate 0.5.
  EXPECT_GT(sampled, 800);
  EXPECT_LT(sampled, 1200);
}

TEST(TraceCollector, FullBufferDropsAndCountsInsteadOfWrapping) {
  TraceCollector collector(1, 1.0, /*capacity_per_worker=*/4);
  for (int i = 0; i < 10; ++i) {
    TraceEvent ev;
    ev.name = kSpanExecute;
    ev.request_id = static_cast<std::uint64_t>(i);
    ev.start_ns = static_cast<std::uint64_t>(i);
    collector.emit(0, ev);
  }
  const auto events = collector.drain_events();
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].request_id,
              static_cast<std::uint64_t>(i));  // earliest survive
  }
  EXPECT_EQ(collector.dropped_events(), 6u);
  // The drop count is surfaced in the export.
  EXPECT_NE(collector.to_chrome_json().find("\"yolocDroppedEvents\":6"),
            std::string::npos);
}

TEST(TraceCollector, DisabledCollectorIsInert) {
  TraceCollector collector(2, 0.0);
  TraceEvent ev;
  ev.name = kSpanE2e;
  collector.emit(0, ev);  // must be a no-op, not a crash or an alloc
  EXPECT_TRUE(collector.drain_events().empty());
  EXPECT_EQ(collector.dropped_events(), 0u);
}

// ---------------------------------------------- observer-only contract

TEST(Tracing, SamplingDoesNotPerturbOutputsOrStatSums) {
  auto plan = make_plan(MacroMvmEngine::Mode::kAnalog);
  const std::uint64_t kSeed = 2024;
  constexpr int kRequests = 10;

  const auto run = [&](double sampling) {
    SchedulerOptions options;
    options.workers = 3;
    options.max_microbatch = 1;  // determinism contract configuration
    options.noise_seed = kSeed;
    options.trace_sampling = sampling;
    Scheduler scheduler(*plan, options);
    std::vector<std::future<Tensor>> futures;
    for (int i = 0; i < kRequests; ++i) {
      futures.push_back(
          scheduler.submit(make_input(100 + static_cast<std::uint64_t>(i),
                                      {1, 3, 8, 8})));
    }
    std::vector<Tensor> outputs;
    for (auto& f : futures) outputs.push_back(f.get());
    scheduler.wait_idle();
    return std::make_tuple(std::move(outputs), scheduler.rom_stats(),
                           scheduler.sram_stats());
  };

  auto [untraced, rom_off, sram_off] = run(0.0);
  auto [traced, rom_on, sram_on] = run(1.0);

  ASSERT_EQ(untraced.size(), traced.size());
  for (std::size_t i = 0; i < untraced.size(); ++i) {
    EXPECT_TRUE(bit_identical(untraced[i], traced[i])) << "request " << i;
  }
  // Stat sums too: tracing must not touch noise streams or merge order.
  EXPECT_EQ(rom_off.macs, rom_on.macs);
  EXPECT_EQ(sram_off.macs, sram_on.macs);
  EXPECT_EQ(rom_off.macro_ops, rom_on.macro_ops);
  EXPECT_EQ(rom_off.energy_pj(), rom_on.energy_pj());
  EXPECT_EQ(sram_off.energy_pj(), sram_on.energy_pj());
  EXPECT_EQ(rom_off.latency_ns, rom_on.latency_ns);
}

// ------------------------------------------------------ span structure

TEST(Tracing, SpansCoverEveryStageAndNest) {
  auto plan = make_plan(MacroMvmEngine::Mode::kExactCost);
  SchedulerOptions options;
  options.workers = 1;  // one worker: spans cannot interleave across tids
  options.max_microbatch = 1;
  options.trace_sampling = 1.0;
  Scheduler scheduler(*plan, options);
  constexpr int kRequests = 4;
  {
    std::vector<std::future<Tensor>> futures;
    for (int i = 0; i < kRequests; ++i) {
      futures.push_back(
          scheduler.submit(make_input(static_cast<std::uint64_t>(i) + 1,
                                      {1, 3, 8, 8})));
    }
    for (auto& f : futures) (void)f.get();
  }
  scheduler.wait_idle();

  const auto events = scheduler.trace().drain_events();
  std::map<std::string, int> by_name;
  for (const TraceEvent& ev : events) by_name[ev.name] += 1;

  // Per-request spans: one each. Per-batch spans: max_microbatch = 1
  // means one batch per request.
  EXPECT_EQ(by_name[kSpanQueueWait], kRequests);
  EXPECT_EQ(by_name[kSpanE2e], kRequests);
  EXPECT_EQ(by_name[kSpanBatchFormation], kRequests);
  EXPECT_EQ(by_name[kSpanExecute], kRequests);
  EXPECT_EQ(by_name[kSpanEpilogue], kRequests);
  // Layer spans: the plan lowers 2 convs + 1 linear, so each batch
  // emits 3 mvm spans and 2 im2col spans.
  EXPECT_EQ(by_name[kSpanMvm], kRequests * 3);
  EXPECT_EQ(by_name[kSpanIm2col], kRequests * 2);

  for (std::uint64_t id = 0; id < kRequests; ++id) {
    const TraceEvent* queue_wait = nullptr;
    const TraceEvent* e2e = nullptr;
    const TraceEvent* execute = nullptr;
    std::uint64_t batch_id = kTraceNoId;
    for (const TraceEvent& ev : events) {
      if (ev.request_id != id) continue;
      if (std::strcmp(ev.name, kSpanQueueWait) == 0) {
        queue_wait = &ev;
        batch_id = ev.batch_id;
      } else if (std::strcmp(ev.name, kSpanE2e) == 0) {
        e2e = &ev;
      } else if (std::strcmp(ev.name, kSpanExecute) == 0) {
        execute = &ev;
        EXPECT_EQ(ev.requests, 1);
        EXPECT_EQ(ev.images, 1);
      }
    }
    ASSERT_NE(queue_wait, nullptr) << "request " << id;
    ASSERT_NE(e2e, nullptr) << "request " << id;
    ASSERT_NE(execute, nullptr) << "request " << id;
    EXPECT_NE(batch_id, kTraceNoId);
    // Nesting: the e2e envelope starts with the queue wait and covers
    // queue-wait + execute (pickup <= exec start, done >= exec end).
    EXPECT_EQ(e2e->start_ns, queue_wait->start_ns);
    EXPECT_GE(e2e->dur_ns, queue_wait->dur_ns + execute->dur_ns);
    // Execution happens inside the envelope.
    EXPECT_GE(execute->start_ns, queue_wait->start_ns + queue_wait->dur_ns);
    EXPECT_LE(execute->start_ns + execute->dur_ns,
              e2e->start_ns + e2e->dur_ns);
  }

  // Layer spans carry plan-owned layer names and an engine tag.
  bool saw_rom = false;
  for (const TraceEvent& ev : events) {
    if (std::strcmp(ev.name, kSpanMvm) != 0) continue;
    ASSERT_NE(ev.layer, nullptr);
    ASSERT_NE(ev.engine, nullptr);
    if (std::strcmp(ev.engine, "rom") == 0) saw_rom = true;
  }
  EXPECT_TRUE(saw_rom);  // backbone convs are ROM-resident
}

TEST(Tracing, PartialSamplingTracesExactlyTheSampledRequests) {
  auto plan = make_plan(MacroMvmEngine::Mode::kExactCost);
  SchedulerOptions options;
  options.workers = 2;
  options.max_microbatch = 1;
  options.trace_sampling = 0.5;
  Scheduler scheduler(*plan, options);
  constexpr int kRequests = 24;
  {
    std::vector<std::future<Tensor>> futures;
    for (int i = 0; i < kRequests; ++i) {
      futures.push_back(
          scheduler.submit(make_input(static_cast<std::uint64_t>(i) + 1,
                                      {1, 3, 8, 8})));
    }
    for (auto& f : futures) (void)f.get();
  }
  scheduler.wait_idle();

  const auto events = scheduler.trace().drain_events();
  for (std::uint64_t id = 0; id < kRequests; ++id) {
    int e2e_count = 0;
    for (const TraceEvent& ev : events) {
      if (ev.request_id == id && std::strcmp(ev.name, kSpanE2e) == 0) {
        ++e2e_count;
      }
    }
    EXPECT_EQ(e2e_count, scheduler.trace().sampled(id) ? 1 : 0)
        << "request " << id;
  }
}

// --------------------------------------------------------- chrome JSON

TEST(Tracing, ChromeJsonIsStructurallySound) {
  auto plan = make_plan(MacroMvmEngine::Mode::kExactCost);
  SchedulerOptions options;
  options.workers = 2;
  options.max_microbatch = 2;
  options.trace_sampling = 1.0;
  Scheduler scheduler(*plan, options);
  {
    std::vector<std::future<Tensor>> futures;
    for (int i = 0; i < 6; ++i) {
      futures.push_back(
          scheduler.submit(make_input(static_cast<std::uint64_t>(i) + 1,
                                      {1, 3, 8, 8})));
    }
    for (auto& f : futures) (void)f.get();
  }
  scheduler.wait_idle();

  const std::string json = scheduler.trace_json();
  // Shape: one object, the trace-event envelope, metadata, and at least
  // one complete event per span family that must have fired.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"queue_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"execute\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"mvm\""), std::string::npos);
  EXPECT_NE(json.find("\"request_id\":"), std::string::npos);
  EXPECT_NE(json.find("\"batch_id\":"), std::string::npos);
  EXPECT_NE(json.find("\"yolocDroppedEvents\":0"), std::string::npos);
  // Braces and brackets balance (no truncated emission). String values
  // never contain braces here, so a flat count is a valid check.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

// ------------------------------------------------- workload trace serde

WorkloadTrace sample_trace() {
  WorkloadTrace trace;
  trace.workers = 3;
  trace.max_microbatch = 4;
  for (int i = 0; i < 5; ++i) {
    AdmissionRecord r;
    r.offset_ns = static_cast<std::uint64_t>(i) * 1000;
    r.priority = static_cast<Priority>(i % kPriorityClassCount);
    r.deadline_ns = i % 2 == 0 ? 0 : 5000000ull;
    r.shape = {1 + i % 2, 3, 8, 8};
    trace.records.push_back(r);
    trace.submitted[static_cast<std::size_t>(r.priority)] += 1;
    trace.served[static_cast<std::size_t>(r.priority)] += 1;
  }
  return trace;
}

TEST(WorkloadTraceSerde, RoundTripsExactly) {
  const WorkloadTrace trace = sample_trace();
  const std::vector<std::uint8_t> bytes = trace.serialize();
  const WorkloadTrace back =
      WorkloadTrace::deserialize(bytes.data(), bytes.size());
  EXPECT_EQ(back.workers, trace.workers);
  EXPECT_EQ(back.max_microbatch, trace.max_microbatch);
  EXPECT_EQ(back.submitted, trace.submitted);
  EXPECT_EQ(back.served, trace.served);
  EXPECT_EQ(back.expired, trace.expired);
  EXPECT_EQ(back.rejected, trace.rejected);
  ASSERT_EQ(back.records.size(), trace.records.size());
  for (std::size_t i = 0; i < trace.records.size(); ++i) {
    EXPECT_EQ(back.records[i].offset_ns, trace.records[i].offset_ns);
    EXPECT_EQ(back.records[i].priority, trace.records[i].priority);
    EXPECT_EQ(back.records[i].deadline_ns, trace.records[i].deadline_ns);
    EXPECT_EQ(back.records[i].shape, trace.records[i].shape);
  }
}

TEST(WorkloadTraceSerde, RejectsCorruptArtifacts) {
  const std::vector<std::uint8_t> bytes = sample_trace().serialize();

  // Truncation at every prefix length must throw, never crash.
  for (std::size_t cut : {std::size_t{0}, std::size_t{4}, std::size_t{15},
                          bytes.size() - 1}) {
    EXPECT_THROW((void)WorkloadTrace::deserialize(bytes.data(), cut),
                 std::exception)
        << "prefix " << cut;
  }
  // Bad magic.
  std::vector<std::uint8_t> bad = bytes;
  bad[0] ^= 0xFF;
  EXPECT_THROW((void)WorkloadTrace::deserialize(bad.data(), bad.size()),
               std::exception);
  // Payload corruption must fail the CRC.
  bad = bytes;
  bad.back() ^= 0x01;
  EXPECT_THROW((void)WorkloadTrace::deserialize(bad.data(), bad.size()),
               std::exception);
  // Trailing garbage after the payload.
  bad = bytes;
  bad.push_back(0);
  EXPECT_THROW((void)WorkloadTrace::deserialize(bad.data(), bad.size()),
               std::exception);
}

// -------------------------------------------------------------- replay

TEST(Replay, ReproducesAdmissionOrderAndOutcomeCounts) {
  auto plan = make_plan(MacroMvmEngine::Mode::kExactCost);
  SchedulerOptions options;
  options.workers = 2;
  options.max_microbatch = 1;
  options.record_admissions = true;
  constexpr int kRequests = 12;

  WorkloadTrace trace;
  {
    Scheduler scheduler(*plan, options);
    std::vector<std::future<Tensor>> futures;
    for (int i = 0; i < kRequests; ++i) {
      // Two geometries, uniform class, no deadlines: every submission
      // is served, so outcome counts must reproduce exactly.
      futures.push_back(scheduler.submit(
          make_input(static_cast<std::uint64_t>(i) + 1,
                     {i % 3 == 0 ? 2 : 1, 3, 8, 8})));
    }
    for (auto& f : futures) (void)f.get();
    scheduler.wait_idle();
    trace = scheduler.recorded_trace();
  }

  ASSERT_EQ(trace.records.size(), static_cast<std::size_t>(kRequests));
  EXPECT_EQ(trace.workers, 2);
  EXPECT_EQ(trace.served[static_cast<std::size_t>(Priority::kBatch)],
            static_cast<std::uint64_t>(kRequests));
  // Offsets are non-decreasing from the first submission.
  for (std::size_t i = 1; i < trace.records.size(); ++i) {
    EXPECT_GE(trace.records[i].offset_ns, trace.records[i - 1].offset_ns);
  }
  EXPECT_EQ(trace.records[0].offset_ns, 0u);
  EXPECT_EQ(trace.records[0].shape, (std::array<std::int32_t, 4>{2, 3, 8, 8}));

  // File round trip on the recorded trace, then replay it re-recording.
  const std::vector<std::uint8_t> bytes = trace.serialize();
  const WorkloadTrace loaded =
      WorkloadTrace::deserialize(bytes.data(), bytes.size());

  ReplayOptions replay;
  replay.pace = false;  // as fast as possible; order must still hold
  replay.record = true;
  const ReplayResult result = replay_trace(loaded, *plan, options, replay);

  EXPECT_TRUE(result.counts_match);
  EXPECT_EQ(result.served, trace.served);
  EXPECT_EQ(result.expired, trace.expired);
  EXPECT_EQ(result.rejected, trace.rejected);
  EXPECT_EQ(result.snapshot.served_requests,
            static_cast<std::uint64_t>(kRequests));

  // Admission order reproduction: the re-recorded stream has the same
  // class and geometry sequence as the original (single-threaded
  // submission in record order pins admission ids).
  ASSERT_EQ(result.replayed.records.size(), trace.records.size());
  for (std::size_t i = 0; i < trace.records.size(); ++i) {
    EXPECT_EQ(result.replayed.records[i].priority, trace.records[i].priority)
        << "record " << i;
    EXPECT_EQ(result.replayed.records[i].shape, trace.records[i].shape)
        << "record " << i;
    EXPECT_EQ(result.replayed.records[i].deadline_ns,
              trace.records[i].deadline_ns)
        << "record " << i;
  }
}

TEST(WorkloadTraceSerde, EmptyTraceRoundTripsExactly) {
  // A recording session that admitted nothing still produces a valid
  // artifact; it must survive the byte round trip with all-zero
  // counters, not get rejected as malformed.
  WorkloadTrace trace;
  trace.workers = 3;
  trace.max_microbatch = 2;
  const std::vector<std::uint8_t> bytes = trace.serialize();
  const WorkloadTrace back =
      WorkloadTrace::deserialize(bytes.data(), bytes.size());
  EXPECT_TRUE(back.records.empty());
  EXPECT_EQ(back.workers, 3);
  EXPECT_EQ(back.max_microbatch, 2);
  EXPECT_EQ(back.submitted, (std::array<std::uint64_t, 3>{}));
  EXPECT_EQ(back.served, (std::array<std::uint64_t, 3>{}));
  EXPECT_EQ(back.expired, (std::array<std::uint64_t, 3>{}));
  EXPECT_EQ(back.rejected, (std::array<std::uint64_t, 3>{}));
}

TEST(Replay, EmptyTraceChecksCleanWithoutSideEffects) {
  // Regression: replaying a zero-admission trace used to construct a
  // scheduler and compare its fresh snapshot against the recorded
  // counters; now it short-circuits. counts_match must be a definite
  // true (yoloc_replay --check exits 0), never a comparison against
  // whatever a just-built snapshot happens to hold.
  auto plan = make_plan(MacroMvmEngine::Mode::kExactCost);
  WorkloadTrace trace;
  trace.workers = 2;
  trace.max_microbatch = 1;

  SchedulerOptions options;
  options.workers = 2;
  ReplayOptions replay;
  replay.record = true;
  const ReplayResult result = replay_trace(trace, *plan, options, replay);
  EXPECT_TRUE(result.counts_match);
  EXPECT_EQ(result.served, (std::array<std::uint64_t, 3>{}));
  EXPECT_EQ(result.expired, (std::array<std::uint64_t, 3>{}));
  EXPECT_EQ(result.rejected, (std::array<std::uint64_t, 3>{}));
  EXPECT_EQ(result.snapshot.served_requests, 0u);
  EXPECT_TRUE(result.replayed.records.empty());
}

TEST(Replay, EmptyTraceWithNonzeroCountersFailsTheCheck) {
  // The inverse guard: recorded outcomes with no records backing them
  // can never be reproduced, so --check must fail, not vacuously pass.
  auto plan = make_plan(MacroMvmEngine::Mode::kExactCost);
  WorkloadTrace trace;
  trace.served[static_cast<std::size_t>(Priority::kBatch)] = 1;

  const ReplayResult result =
      replay_trace(trace, *plan, SchedulerOptions{}, ReplayOptions{});
  EXPECT_FALSE(result.counts_match);
}

TEST(Replay, PacedReplayPreservesInterArrivalGaps) {
  auto plan = make_plan(MacroMvmEngine::Mode::kExactCost);
  WorkloadTrace trace;
  trace.workers = 2;
  trace.max_microbatch = 1;
  for (int i = 0; i < 3; ++i) {
    AdmissionRecord r;
    r.offset_ns = static_cast<std::uint64_t>(i) * 20'000'000;  // 20 ms apart
    r.shape = {1, 3, 8, 8};
    trace.records.push_back(r);
    trace.submitted[static_cast<std::size_t>(r.priority)] += 1;
    trace.served[static_cast<std::size_t>(r.priority)] += 1;
  }

  SchedulerOptions options;
  options.workers = 2;
  options.max_microbatch = 1;
  ReplayOptions replay;  // paced, speed 1.0
  const ReplayResult result = replay_trace(trace, *plan, options, replay);
  EXPECT_TRUE(result.counts_match);
  // The last arrival is 40 ms in: a paced replay cannot finish sooner.
  EXPECT_GE(result.seconds, 0.040);
}

}  // namespace
}  // namespace yoloc
