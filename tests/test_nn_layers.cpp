// Layer tests: output shapes, hand-computed values, numeric gradient
// checks for every differentiable layer, and container semantics.

#include <gtest/gtest.h>

#include "gradcheck.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/container.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"

namespace yoloc {
namespace {

using testing_support::gradcheck;

constexpr float kGradTol = 5e-3f;

TEST(Conv2d, OutputShapeSamePadding) {
  Rng rng(1);
  Conv2d conv(3, 8, 3, 1, -1, true, rng);
  Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  Tensor y = conv.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 8, 8, 8}));
}

TEST(Conv2d, OutputShapeStride2) {
  Rng rng(2);
  Conv2d conv(4, 6, 3, 2, 1, false, rng);
  Tensor x = Tensor::randn({1, 4, 8, 8}, rng);
  EXPECT_EQ(conv.forward(x, true).shape(), (std::vector<int>{1, 6, 4, 4}));
}

TEST(Conv2d, HandComputed1x1) {
  Rng rng(3);
  Conv2d conv(1, 1, 1, 1, 0, false, rng);
  conv.weight().value[0] = 2.0f;
  Tensor x = Tensor::full({1, 1, 2, 2}, 3.0f);
  Tensor y = conv.forward(x, true);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_FLOAT_EQ(y[i], 6.0f);
}

TEST(Conv2d, BiasApplied) {
  Rng rng(4);
  Conv2d conv(1, 2, 1, 1, 0, true, rng);
  conv.weight().value.zero();
  conv.bias().value[0] = 1.5f;
  conv.bias().value[1] = -0.5f;
  Tensor x = Tensor::randn({1, 1, 3, 3}, rng);
  Tensor y = conv.forward(x, true);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 1, 1), 1.5f);
  EXPECT_FLOAT_EQ(y.at4(0, 1, 1, 1), -0.5f);
}

TEST(Conv2d, GradCheck) {
  Rng rng(5);
  Conv2d conv(2, 3, 3, 1, 1, true, rng);
  Tensor x = Tensor::randn({2, 2, 5, 5}, rng);
  const auto res = gradcheck(conv, x, rng);
  EXPECT_LT(res.max_input_err, kGradTol);
  EXPECT_LT(res.max_param_err, kGradTol);
}

TEST(Conv2d, GradCheckStride2NoBias) {
  Rng rng(6);
  Conv2d conv(3, 2, 3, 2, 1, false, rng);
  Tensor x = Tensor::randn({1, 3, 6, 6}, rng);
  const auto res = gradcheck(conv, x, rng);
  EXPECT_LT(res.max_input_err, kGradTol);
  EXPECT_LT(res.max_param_err, kGradTol);
}

TEST(Conv2d, PointwiseFactory) {
  Rng rng(7);
  LayerPtr pw = make_pointwise(8, 4, rng);
  Tensor x = Tensor::randn({1, 8, 4, 4}, rng);
  EXPECT_EQ(pw->forward(x, true).shape(), (std::vector<int>{1, 4, 4, 4}));
}

TEST(Conv2d, RejectsWrongChannels) {
  Rng rng(8);
  Conv2d conv(3, 4, 3, 1, 1, false, rng);
  Tensor x = Tensor::randn({1, 2, 4, 4}, rng);
  EXPECT_THROW(conv.forward(x, true), std::runtime_error);
}

TEST(Linear, HandComputed) {
  Rng rng(9);
  Linear lin(2, 2, true, rng);
  lin.weight().value = Tensor::from_vector({2, 2}, {1, 2, 3, 4});
  lin.bias().value = Tensor::from_vector({2}, {0.5f, -0.5f});
  Tensor x = Tensor::from_vector({1, 2}, {1.0f, 1.0f});
  Tensor y = lin.forward(x, true);
  EXPECT_FLOAT_EQ(y.at2(0, 0), 3.5f);
  EXPECT_FLOAT_EQ(y.at2(0, 1), 6.5f);
}

TEST(Linear, GradCheck) {
  Rng rng(10);
  Linear lin(6, 4, true, rng);
  Tensor x = Tensor::randn({3, 6}, rng);
  const auto res = gradcheck(lin, x, rng);
  EXPECT_LT(res.max_input_err, kGradTol);
  EXPECT_LT(res.max_param_err, kGradTol);
}

TEST(ReLU, ForwardAndMask) {
  ReLU relu;
  Tensor x = Tensor::from_vector({4}, {-1.0f, 0.0f, 2.0f, -3.0f});
  Tensor y = relu.forward(x, true);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
  Tensor g = relu.backward(Tensor::full({4}, 1.0f));
  EXPECT_FLOAT_EQ(g[0], 0.0f);
  EXPECT_FLOAT_EQ(g[2], 1.0f);
}

TEST(LeakyReLU, NegativeSlope) {
  LeakyReLU leaky(0.1f);
  Tensor x = Tensor::from_vector({2}, {-2.0f, 4.0f});
  Tensor y = leaky.forward(x, true);
  EXPECT_FLOAT_EQ(y[0], -0.2f);
  EXPECT_FLOAT_EQ(y[1], 4.0f);
  Tensor g = leaky.backward(Tensor::full({2}, 1.0f));
  EXPECT_FLOAT_EQ(g[0], 0.1f);
  EXPECT_FLOAT_EQ(g[1], 1.0f);
}

TEST(LeakyReLU, GradCheck) {
  Rng rng(11);
  LeakyReLU leaky(0.1f);
  // Keep inputs away from the kink for finite differences.
  Tensor x = Tensor::randn({2, 3, 4, 4}, rng, 2.0f);
  const auto res = gradcheck(leaky, x, rng);
  EXPECT_LT(res.max_input_err, 2e-2f);
}

TEST(Flatten, RoundTrip) {
  Flatten flat;
  Rng rng(12);
  Tensor x = Tensor::randn({2, 3, 4, 4}, rng);
  Tensor y = flat.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 48}));
  Tensor g = flat.backward(y);
  EXPECT_EQ(g.shape(), x.shape());
}

TEST(MaxPool, ForwardSelectsMax) {
  MaxPool2d pool(2);
  Tensor x = Tensor::from_vector({1, 1, 2, 2}, {1, 5, 3, 2});
  Tensor y = pool.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<int>{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 5.0f);
}

TEST(MaxPool, BackwardRoutesToArgmax) {
  MaxPool2d pool(2);
  Tensor x = Tensor::from_vector({1, 1, 2, 2}, {1, 5, 3, 2});
  (void)pool.forward(x, true);
  Tensor g = pool.backward(Tensor::full({1, 1, 1, 1}, 2.0f));
  EXPECT_FLOAT_EQ(g[1], 2.0f);
  EXPECT_FLOAT_EQ(g[0], 0.0f);
}

TEST(MaxPool, RejectsIndivisibleExtent) {
  MaxPool2d pool(2);
  Tensor x({1, 1, 3, 3});
  EXPECT_THROW(pool.forward(x, true), std::runtime_error);
}

TEST(GlobalAvgPool, ForwardMean) {
  GlobalAvgPool gap;
  Tensor x = Tensor::from_vector({1, 2, 1, 2}, {1, 3, 10, 20});
  Tensor y = gap.forward(x, true);
  EXPECT_FLOAT_EQ(y.at2(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(y.at2(0, 1), 15.0f);
}

TEST(GlobalAvgPool, BackwardSpreadsUniformly) {
  GlobalAvgPool gap;
  Rng rng(13);
  Tensor x = Tensor::randn({1, 1, 2, 2}, rng);
  (void)gap.forward(x, true);
  Tensor g = gap.backward(Tensor::full({1, 1}, 4.0f));
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(g[i], 1.0f);
}

TEST(BatchNorm, NormalizesTrainingBatch) {
  Rng rng(14);
  BatchNorm2d bn(3);
  Tensor x = Tensor::randn({8, 3, 4, 4}, rng, 3.0f);
  Tensor y = bn.forward(x, true);
  // Per-channel mean ~0, var ~1.
  for (int c = 0; c < 3; ++c) {
    double sum = 0.0;
    double sum2 = 0.0;
    for (int n = 0; n < 8; ++n) {
      for (int i = 0; i < 16; ++i) {
        const float v = y.data()[y.index4(n, c, i / 4, i % 4)];
        sum += v;
        sum2 += v * v;
      }
    }
    const double mean = sum / (8 * 16);
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(sum2 / (8 * 16) - mean * mean, 1.0, 1e-2);
  }
}

TEST(BatchNorm, EvalUsesRunningStats) {
  Rng rng(15);
  BatchNorm2d bn(2);
  Tensor x = Tensor::randn({16, 2, 2, 2}, rng);
  for (int i = 0; i < 20; ++i) (void)bn.forward(x, true);
  Tensor y_eval = bn.forward(x, false);
  Tensor y_train = bn.forward(x, true);
  // After many identical batches the running stats converge to the batch
  // stats, so eval ~ train.
  EXPECT_LT(max_abs_diff(y_eval, y_train), 0.15f);
}

TEST(BatchNorm, GradCheck) {
  Rng rng(16);
  BatchNorm2d bn(2);
  Tensor x = Tensor::randn({4, 2, 3, 3}, rng);
  const auto res = gradcheck(bn, x, rng, /*probes=*/10, /*eps=*/1e-2f);
  EXPECT_LT(res.max_input_err, 1e-2f);
  EXPECT_LT(res.max_param_err, 1e-2f);
}

TEST(Sequential, ChainsAndBackprops) {
  Rng rng(17);
  auto seq = std::make_unique<Sequential>("test");
  seq->add(std::make_unique<Conv2d>(1, 2, 3, 1, 1, false, rng, "c1"));
  seq->add(std::make_unique<ReLU>());
  seq->add(std::make_unique<Conv2d>(2, 1, 3, 1, 1, false, rng, "c2"));
  Tensor x = Tensor::randn({1, 1, 4, 4}, rng);
  const auto res = gradcheck(*seq, x, rng);
  EXPECT_LT(res.max_input_err, kGradTol);
  EXPECT_LT(res.max_param_err, 2e-2f);  // ReLU kink tolerance
}

TEST(Sequential, ChildrenAndReplace) {
  Rng rng(18);
  Sequential seq("s");
  seq.add(std::make_unique<ReLU>());
  seq.add(std::make_unique<Identity>());
  EXPECT_EQ(seq.children().size(), 2u);
  LayerPtr old = seq.replace_child(1, std::make_unique<ReLU>());
  EXPECT_NE(dynamic_cast<Identity*>(old.get()), nullptr);
  LayerPtr removed = seq.remove(0);
  EXPECT_EQ(seq.size(), 1u);
}

TEST(ParallelSum, SumsAndSplitsGradient) {
  Rng rng(19);
  auto sum = std::make_unique<ParallelSum>("p");
  sum->add_branch(std::make_unique<Identity>());
  sum->add_branch(std::make_unique<Identity>());
  Tensor x = Tensor::full({1, 2}, 3.0f);
  Tensor y = sum->forward(x, true);
  EXPECT_FLOAT_EQ(y[0], 6.0f);
  Tensor g = sum->backward(Tensor::full({1, 2}, 1.0f));
  EXPECT_FLOAT_EQ(g[0], 2.0f);  // both branches contribute
}

TEST(ParallelSum, GradCheckTrunkPlusBranch) {
  Rng rng(20);
  auto sum = std::make_unique<ParallelSum>("rb");
  sum->add_branch(std::make_unique<Conv2d>(2, 3, 3, 1, 1, false, rng, "t"));
  auto branch = std::make_unique<Sequential>("b");
  branch->add(std::make_unique<Conv2d>(2, 1, 1, 1, 0, false, rng, "comp"));
  branch->add(std::make_unique<Conv2d>(1, 1, 3, 1, 1, false, rng, "res"));
  branch->add(std::make_unique<Conv2d>(1, 3, 1, 1, 0, false, rng, "dec"));
  sum->add_branch(std::move(branch));
  Tensor x = Tensor::randn({1, 2, 4, 4}, rng);
  const auto res = gradcheck(*sum, x, rng);
  EXPECT_LT(res.max_input_err, kGradTol);
  EXPECT_LT(res.max_param_err, kGradTol);
}

TEST(ParallelSum, RejectsMismatchedBranchShapes) {
  Rng rng(21);
  ParallelSum sum("bad");
  sum.add_branch(std::make_unique<Conv2d>(2, 3, 3, 1, 1, false, rng, "a"));
  sum.add_branch(std::make_unique<Conv2d>(2, 4, 3, 1, 1, false, rng, "b"));
  Tensor x = Tensor::randn({1, 2, 4, 4}, rng);
  EXPECT_THROW(sum.forward(x, true), std::runtime_error);
}

TEST(Residual, IdentitySkip) {
  Rng rng(22);
  LayerPtr block = make_residual(std::make_unique<ReLU>());
  Tensor x = Tensor::from_vector({1, 2}, {-1.0f, 2.0f});
  Tensor y = block->forward(x, true);
  EXPECT_FLOAT_EQ(y[0], -1.0f);  // relu(-1)=0 + skip(-1)
  EXPECT_FLOAT_EQ(y[1], 4.0f);   // relu(2)=2 + skip(2)
}

TEST(ParameterCount, CountsAndTrainableFilter) {
  Rng rng(23);
  Sequential seq("s");
  seq.add(std::make_unique<Conv2d>(1, 2, 3, 1, 1, true, rng, "c"));
  // weight 2*9=18 + bias 2 = 20
  EXPECT_EQ(parameter_count(seq), 20u);
  for (Parameter* p : seq.parameters()) p->trainable = false;
  EXPECT_EQ(parameter_count(seq, /*trainable_only=*/true), 0u);
}

struct ConvCase {
  int in_ch, out_ch, kernel, stride;
};

class ConvGradProperty : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGradProperty, GradientsMatchNumeric) {
  const auto c = GetParam();
  Rng rng(200 + c.in_ch + c.out_ch * 10 + c.kernel * 100);
  Conv2d conv(c.in_ch, c.out_ch, c.kernel, c.stride, -1, true, rng);
  Tensor x = Tensor::randn({1, c.in_ch, 6, 6}, rng);
  const auto res = gradcheck(conv, x, rng, /*probes=*/8);
  EXPECT_LT(res.max_input_err, kGradTol);
  EXPECT_LT(res.max_param_err, kGradTol);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvGradProperty,
    ::testing::Values(ConvCase{1, 1, 1, 1}, ConvCase{2, 4, 1, 1},
                      ConvCase{3, 2, 3, 1}, ConvCase{2, 2, 3, 2},
                      ConvCase{4, 3, 5, 1}, ConvCase{1, 6, 3, 3}));

}  // namespace
}  // namespace yoloc
