#pragma once
// Off-chip DRAM model (LPDDR4-class, CACTI-IO scale constants).
//
// The paper's central system-level claim is that SRAM-CiM chips too
// small to hold a model's weights must stream them from DRAM every
// inference, and that this streaming dominates energy (Fig. 14c). The
// model therefore exposes exactly the quantities that claim depends on:
// energy per bit moved, streaming bandwidth, and one-time row-activation
// latency.

namespace yoloc {

struct DramParams {
  /// Total energy per bit transferred, device + PHY + controller [pJ/b].
  /// LPDDR4-class interfaces land at 15-25 pJ/b including IO; 20 is the
  /// default anchor (CACTI-IO scale).
  double energy_pj_per_bit = 20.0;
  double bandwidth_gb_per_s = 12.8;  // x32 LPDDR4-3200
  double first_access_latency_ns = 100.0;
  /// Background/refresh power while the interface is active [mW].
  double active_background_mw = 40.0;
};

class Dram {
 public:
  explicit Dram(const DramParams& params);

  /// Energy to stream `bytes` [pJ], including background power for the
  /// duration of the transfer.
  [[nodiscard]] double stream_energy_pj(double bytes) const;
  /// Time to stream `bytes` [ns].
  [[nodiscard]] double stream_time_ns(double bytes) const;
  [[nodiscard]] const DramParams& params() const { return params_; }

 private:
  DramParams params_;
};

}  // namespace yoloc
