#include "memsys/chiplet_link.hpp"

#include "common/check.hpp"

namespace yoloc {

ChipletLink::ChipletLink(const ChipletLinkParams& params) : params_(params) {
  YOLOC_CHECK(params.energy_pj_per_bit > 0.0 && params.gbps_per_pin > 0.0 &&
                  params.pins > 0,
              "chiplet link: invalid parameters");
}

double ChipletLink::bandwidth_gb_per_s() const {
  return params_.gbps_per_pin * params_.pins / 8.0;
}

double ChipletLink::transfer_energy_pj(double bytes) const {
  return bytes * 8.0 * params_.energy_pj_per_bit;
}

double ChipletLink::transfer_time_ns(double bytes) const {
  if (bytes <= 0.0) return 0.0;
  return params_.hop_latency_ns + bytes / bandwidth_gb_per_s();
}

}  // namespace yoloc
