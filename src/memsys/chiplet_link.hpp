#pragma once
// Inter-chiplet serial link, parameterized after the SIMBA / GRS link the
// paper cites [25]: 1.17 pJ/b at 25 Gb/s/pin, ground-referenced
// single-ended signaling for on-package communication.

namespace yoloc {

struct ChipletLinkParams {
  double energy_pj_per_bit = 1.17;
  double gbps_per_pin = 25.0;
  int pins = 32;
  /// Per-hop packetization/serialization latency [ns].
  double hop_latency_ns = 20.0;
};

class ChipletLink {
 public:
  explicit ChipletLink(const ChipletLinkParams& params);

  [[nodiscard]] double transfer_energy_pj(double bytes) const;
  [[nodiscard]] double transfer_time_ns(double bytes) const;
  [[nodiscard]] double bandwidth_gb_per_s() const;
  [[nodiscard]] const ChipletLinkParams& params() const { return params_; }

 private:
  ChipletLinkParams params_;
};

}  // namespace yoloc
