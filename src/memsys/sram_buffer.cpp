#include "memsys/sram_buffer.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/units.hpp"

namespace yoloc {

SramBuffer::SramBuffer(const SramBufferParams& params) : params_(params) {
  YOLOC_CHECK(params.capacity_kb > 0.0, "sram buffer: capacity > 0");
  // sqrt-capacity scaling around the 64 kB anchor.
  const double scale = std::sqrt(params.capacity_kb / 64.0);
  energy_per_byte_pj_ = params.anchor_energy_pj * scale / 8.0;  // per byte
  latency_ns_ = params.anchor_latency_ns * scale;
}

double SramBuffer::access_energy_pj(double bytes) const {
  return bytes * energy_per_byte_pj_;
}

double SramBuffer::access_latency_ns() const { return latency_ns_; }

double SramBuffer::stream_time_ns(double bytes) const {
  // Internal bandwidth: one 64-bit word per latency-scaled cycle.
  const double words = bytes / 8.0;
  return words * latency_ns_ * 0.25;  // 4-way banking overlap
}

double SramBuffer::area_mm2() const {
  const double bits = params_.capacity_kb * 1024.0 * 8.0;
  return bits / (params_.density_mb_per_mm2 * kBitsPerMb) +
         params_.periphery_mm2;
}

double SramBuffer::leakage_uw() const {
  return params_.capacity_kb * params_.leakage_uw_per_kb;
}

}  // namespace yoloc
