#include "memsys/dram.hpp"

#include "common/check.hpp"

namespace yoloc {

Dram::Dram(const DramParams& params) : params_(params) {
  YOLOC_CHECK(params.energy_pj_per_bit > 0.0, "dram: energy per bit > 0");
  YOLOC_CHECK(params.bandwidth_gb_per_s > 0.0, "dram: bandwidth > 0");
}

double Dram::stream_time_ns(double bytes) const {
  if (bytes <= 0.0) return 0.0;
  // GB/s == bytes/ns.
  return params_.first_access_latency_ns +
         bytes / params_.bandwidth_gb_per_s;
}

double Dram::stream_energy_pj(double bytes) const {
  if (bytes <= 0.0) return 0.0;
  const double transfer = bytes * 8.0 * params_.energy_pj_per_bit;
  // 1 mW * 1 ns = 1 pJ.
  const double background =
      params_.active_background_mw * stream_time_ns(bytes);
  return transfer + background;
}

}  // namespace yoloc
