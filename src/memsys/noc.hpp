#pragma once
// On-chip interconnect (the "NoC" block of Fig. 9): moves feature maps
// between macros and the SRAM cache. Modeled as energy per bit-millimeter
// with an average Manhattan hop distance derived from the chip area.

namespace yoloc {

struct NocParams {
  /// Wire energy at 28nm [pJ per bit per mm].
  double energy_pj_per_bit_mm = 0.08;
  /// Router overhead per bit per hop [pJ].
  double router_pj_per_bit = 0.02;
  double bandwidth_gb_per_s = 128.0;
};

class Noc {
 public:
  explicit Noc(const NocParams& params);

  /// Energy to move `bytes` across a die of `chip_area_mm2` (average
  /// distance = 0.5 * sqrt(area)) [pJ].
  [[nodiscard]] double transfer_energy_pj(double bytes,
                                          double chip_area_mm2) const;
  [[nodiscard]] double transfer_time_ns(double bytes) const;
  [[nodiscard]] const NocParams& params() const { return params_; }

 private:
  NocParams params_;
};

}  // namespace yoloc
