#pragma once
// CACTI-lite: analytical on-chip SRAM buffer model.
//
// CACTI substitution (see DESIGN.md): the paper obtains buffer/DRAM
// read-write energy and latency from CACTI [24]. Offline, we reproduce
// the *scaling behaviour* CACTI exhibits for single-banked SRAM at 28 nm:
// access energy and latency grow ~sqrt(capacity) (wordline/bitline length
// per access scales with the square root of the array), area grows
// linearly with capacity plus a fixed periphery. Constants are anchored
// to published 28nm SRAM numbers (64 kB buffer ~= 6 pJ per 64-bit access,
// ~1 ns latency) and are overridable for sensitivity studies.

namespace yoloc {

struct SramBufferParams {
  double capacity_kb = 64.0;
  /// Anchor energy for a 64-bit access of a 64 kB buffer [pJ].
  double anchor_energy_pj = 6.0;
  /// Anchor latency of a 64 kB buffer [ns].
  double anchor_latency_ns = 1.0;
  /// Bit density [Mb/mm^2] for plain (non-CiM) 6T SRAM at 28 nm.
  double density_mb_per_mm2 = 2.8;
  /// Fixed periphery area [mm^2].
  double periphery_mm2 = 0.01;
  /// Leakage per kB [uW].
  double leakage_uw_per_kb = 0.6;
};

class SramBuffer {
 public:
  explicit SramBuffer(const SramBufferParams& params);

  /// Energy to read or write `bytes` [pJ].
  [[nodiscard]] double access_energy_pj(double bytes) const;
  /// Random access latency [ns].
  [[nodiscard]] double access_latency_ns() const;
  /// Streaming time for `bytes` at the internal bandwidth [ns].
  [[nodiscard]] double stream_time_ns(double bytes) const;
  [[nodiscard]] double area_mm2() const;
  [[nodiscard]] double leakage_uw() const;
  [[nodiscard]] double capacity_bytes() const {
    return params_.capacity_kb * 1024.0;
  }
  [[nodiscard]] const SramBufferParams& params() const { return params_; }

 private:
  SramBufferParams params_;
  double energy_per_byte_pj_;
  double latency_ns_;
};

}  // namespace yoloc
