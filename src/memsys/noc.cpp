#include "memsys/noc.hpp"

#include <cmath>

#include "common/check.hpp"

namespace yoloc {

Noc::Noc(const NocParams& params) : params_(params) {
  YOLOC_CHECK(params.energy_pj_per_bit_mm > 0.0 &&
                  params.bandwidth_gb_per_s > 0.0,
              "noc: invalid parameters");
}

double Noc::transfer_energy_pj(double bytes, double chip_area_mm2) const {
  const double avg_mm = 0.5 * std::sqrt(std::max(chip_area_mm2, 0.0));
  const double bits = bytes * 8.0;
  return bits * (params_.energy_pj_per_bit_mm * avg_mm +
                 params_.router_pj_per_bit);
}

double Noc::transfer_time_ns(double bytes) const {
  return bytes / params_.bandwidth_gb_per_s;
}

}  // namespace yoloc
