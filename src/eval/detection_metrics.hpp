#pragma once
// Detection evaluation: grid decoding, NMS and mean average precision
// (PASCAL-VOC style), used by the Fig. 12 experiments.

#include <vector>

#include "data/detection.hpp"
#include "nn/layer.hpp"

namespace yoloc {

/// A decoded detection in normalized image coordinates.
struct DetBox {
  float cx = 0.0f;
  float cy = 0.0f;
  float w = 0.0f;
  float h = 0.0f;
  int cls = 0;
  float score = 0.0f;
};

/// Intersection-over-union of two center-format boxes.
float box_iou(float acx, float acy, float aw, float ah, float bcx, float bcy,
              float bw, float bh);
float det_iou(const DetBox& a, const DetBox& b);
float det_gt_iou(const DetBox& a, const GtBox& b);

/// Decode one image's grid prediction (channels = 5 + classes over an
/// SxS grid; see nn/loss.hpp for the channel layout). Detections below
/// `obj_threshold` objectness are dropped.
std::vector<DetBox> decode_grid(const Tensor& pred, int image_index,
                                int classes, float obj_threshold = 0.3f);

/// Greedy per-class non-maximum suppression.
std::vector<DetBox> nms(std::vector<DetBox> boxes, float iou_threshold = 0.5f);

/// Average precision for one class (all-point interpolation).
double average_precision(
    const std::vector<std::vector<DetBox>>& detections,
    const std::vector<std::vector<GtBox>>& ground_truth, int cls,
    float iou_threshold = 0.5f);

/// Mean AP across classes. Classes with no ground-truth boxes are
/// skipped.
double mean_average_precision(
    const std::vector<std::vector<DetBox>>& detections,
    const std::vector<std::vector<GtBox>>& ground_truth, int num_classes,
    float iou_threshold = 0.5f);

/// End-to-end: run `model` over the dataset, decode + NMS, return mAP.
double evaluate_detector_map(Layer& model, const DetectionDataset& dataset,
                             float obj_threshold = 0.3f,
                             float iou_threshold = 0.5f, int batch_size = 32);

}  // namespace yoloc
