#include "eval/detection_metrics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"
#include "nn/loss.hpp"
#include "nn/trainer.hpp"

namespace yoloc {

float box_iou(float acx, float acy, float aw, float ah, float bcx, float bcy,
              float bw, float bh) {
  const float ax0 = acx - aw / 2, ax1 = acx + aw / 2;
  const float ay0 = acy - ah / 2, ay1 = acy + ah / 2;
  const float bx0 = bcx - bw / 2, bx1 = bcx + bw / 2;
  const float by0 = bcy - bh / 2, by1 = bcy + bh / 2;
  const float ix = std::max(0.0f, std::min(ax1, bx1) - std::max(ax0, bx0));
  const float iy = std::max(0.0f, std::min(ay1, by1) - std::max(ay0, by0));
  const float inter = ix * iy;
  const float uni = aw * ah + bw * bh - inter;
  return uni > 0.0f ? inter / uni : 0.0f;
}

float det_iou(const DetBox& a, const DetBox& b) {
  return box_iou(a.cx, a.cy, a.w, a.h, b.cx, b.cy, b.w, b.h);
}

float det_gt_iou(const DetBox& a, const GtBox& b) {
  return box_iou(a.cx, a.cy, a.w, a.h, b.cx, b.cy, b.w, b.h);
}

std::vector<DetBox> decode_grid(const Tensor& pred, int image_index,
                                int classes, float obj_threshold) {
  YOLOC_CHECK(pred.rank() == 4, "decode_grid: NCHW prediction required");
  const int s = pred.shape()[2];
  YOLOC_CHECK(pred.shape()[1] == 5 + classes,
              "decode_grid: channel count mismatch");
  std::vector<DetBox> out;
  for (int gy = 0; gy < s; ++gy) {
    for (int gx = 0; gx < s; ++gx) {
      const float obj = sigmoidf(pred.at4(image_index, 4, gy, gx));
      if (obj < obj_threshold) continue;
      DetBox b;
      b.cx = (static_cast<float>(gx) +
              sigmoidf(pred.at4(image_index, 0, gy, gx))) /
             static_cast<float>(s);
      b.cy = (static_cast<float>(gy) +
              sigmoidf(pred.at4(image_index, 1, gy, gx))) /
             static_cast<float>(s);
      b.w = sigmoidf(pred.at4(image_index, 2, gy, gx));
      b.h = sigmoidf(pred.at4(image_index, 3, gy, gx));
      // Class with max softmax score (softmax is monotone in logits, so
      // argmax over logits suffices; score uses the softmax value).
      int best = 0;
      float best_logit = pred.at4(image_index, 5, gy, gx);
      double denom = 0.0;
      float mx = best_logit;
      for (int c = 1; c < classes; ++c) {
        const float l = pred.at4(image_index, 5 + c, gy, gx);
        if (l > best_logit) {
          best_logit = l;
          best = c;
        }
        mx = std::max(mx, l);
      }
      for (int c = 0; c < classes; ++c) {
        denom += std::exp(pred.at4(image_index, 5 + c, gy, gx) - mx);
      }
      b.cls = best;
      b.score = obj * static_cast<float>(std::exp(best_logit - mx) / denom);
      out.push_back(b);
    }
  }
  return out;
}

std::vector<DetBox> nms(std::vector<DetBox> boxes, float iou_threshold) {
  std::sort(boxes.begin(), boxes.end(),
            [](const DetBox& a, const DetBox& b) { return a.score > b.score; });
  std::vector<DetBox> kept;
  for (const auto& candidate : boxes) {
    bool suppressed = false;
    for (const auto& k : kept) {
      if (k.cls == candidate.cls && det_iou(k, candidate) > iou_threshold) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) kept.push_back(candidate);
  }
  return kept;
}

double average_precision(
    const std::vector<std::vector<DetBox>>& detections,
    const std::vector<std::vector<GtBox>>& ground_truth, int cls,
    float iou_threshold) {
  YOLOC_CHECK(detections.size() == ground_truth.size(),
              "ap: image count mismatch");
  // Flatten detections of this class with their image index.
  struct Flat {
    int image;
    DetBox box;
  };
  std::vector<Flat> flat;
  std::size_t total_gt = 0;
  for (std::size_t i = 0; i < detections.size(); ++i) {
    for (const auto& d : detections[i]) {
      if (d.cls == cls) flat.push_back({static_cast<int>(i), d});
    }
    for (const auto& g : ground_truth[i]) {
      if (g.cls == cls) ++total_gt;
    }
  }
  if (total_gt == 0) return -1.0;  // class absent: caller skips
  std::sort(flat.begin(), flat.end(), [](const Flat& a, const Flat& b) {
    return a.box.score > b.box.score;
  });

  std::vector<std::vector<bool>> matched(ground_truth.size());
  for (std::size_t i = 0; i < ground_truth.size(); ++i) {
    matched[i].assign(ground_truth[i].size(), false);
  }

  std::vector<int> tp(flat.size(), 0);
  for (std::size_t di = 0; di < flat.size(); ++di) {
    const auto& f = flat[di];
    const auto& gts = ground_truth[static_cast<std::size_t>(f.image)];
    float best_iou = 0.0f;
    int best_gt = -1;
    for (std::size_t gi = 0; gi < gts.size(); ++gi) {
      if (gts[gi].cls != cls) continue;
      if (matched[static_cast<std::size_t>(f.image)][gi]) continue;
      const float iou = det_gt_iou(f.box, gts[gi]);
      if (iou > best_iou) {
        best_iou = iou;
        best_gt = static_cast<int>(gi);
      }
    }
    if (best_gt >= 0 && best_iou >= iou_threshold) {
      tp[di] = 1;
      matched[static_cast<std::size_t>(f.image)]
             [static_cast<std::size_t>(best_gt)] = true;
    }
  }

  // Precision-recall sweep + all-point interpolated AP.
  double ap = 0.0;
  double prev_recall = 0.0;
  int cum_tp = 0;
  std::vector<double> precisions;
  std::vector<double> recalls;
  for (std::size_t di = 0; di < flat.size(); ++di) {
    cum_tp += tp[di];
    precisions.push_back(static_cast<double>(cum_tp) /
                         static_cast<double>(di + 1));
    recalls.push_back(static_cast<double>(cum_tp) /
                      static_cast<double>(total_gt));
  }
  // Monotone-decreasing precision envelope.
  for (int i = static_cast<int>(precisions.size()) - 2; i >= 0; --i) {
    precisions[static_cast<std::size_t>(i)] =
        std::max(precisions[static_cast<std::size_t>(i)],
                 precisions[static_cast<std::size_t>(i) + 1]);
  }
  for (std::size_t i = 0; i < precisions.size(); ++i) {
    ap += (recalls[i] - prev_recall) * precisions[i];
    prev_recall = recalls[i];
  }
  return ap;
}

double mean_average_precision(
    const std::vector<std::vector<DetBox>>& detections,
    const std::vector<std::vector<GtBox>>& ground_truth, int num_classes,
    float iou_threshold) {
  double sum = 0.0;
  int counted = 0;
  for (int c = 0; c < num_classes; ++c) {
    const double ap =
        average_precision(detections, ground_truth, c, iou_threshold);
    if (ap >= 0.0) {
      sum += ap;
      ++counted;
    }
  }
  return counted > 0 ? sum / counted : 0.0;
}

double evaluate_detector_map(Layer& model, const DetectionDataset& dataset,
                             float obj_threshold, float iou_threshold,
                             int batch_size) {
  const int n = dataset.size();
  std::vector<std::vector<DetBox>> detections(static_cast<std::size_t>(n));
  for (int start = 0; start < n; start += batch_size) {
    const int end = std::min(n, start + batch_size);
    std::vector<int> idx(static_cast<std::size_t>(end - start));
    std::iota(idx.begin(), idx.end(), start);
    Tensor batch = gather_batch(dataset.images, idx);
    Tensor pred = model.forward(batch, /*train=*/false);
    for (int i = start; i < end; ++i) {
      detections[static_cast<std::size_t>(i)] = nms(
          decode_grid(pred, i - start, dataset.num_classes, obj_threshold),
          iou_threshold);
    }
  }
  return mean_average_precision(detections, dataset.boxes,
                                dataset.num_classes, iou_threshold);
}

}  // namespace yoloc
