#include "arch/tech_scaling.hpp"

#include "macro/macro_config.hpp"

namespace yoloc {

std::vector<TechNode> tech_scaling_table() {
  // {node, 6T cell um^2, cost multiplier}; density computed below.
  struct Raw {
    int node;
    double cell_um2;
    double cost;
  };
  static constexpr Raw kRaw[] = {
      {130, 2.430, 1.0},   {90, 1.000, 1.6},   {65, 0.525, 2.6},
      {45, 0.346, 4.2},    {40, 0.299, 5.0},   {28, 0.127, 8.5},
      {20, 0.081, 16.0},   {16, 0.070, 28.0},  {10, 0.042, 60.0},
      {7, 0.027, 130.0},
  };
  // Anchor: the paper's 28 nm SRAM-CiM macro density, scaled by bitcell
  // area (compute periphery is pitch-matched, so it scales along).
  constexpr double kSramCimDensity28 = 0.26;  // Mb/mm^2
  constexpr double kCell28 = 0.127;           // um^2
  std::vector<TechNode> table;
  table.reserve(std::size(kRaw));
  for (const auto& r : kRaw) {
    TechNode n;
    n.node_nm = r.node;
    n.sram_cell_um2 = r.cell_um2;
    n.sram_density_mb_per_mm2 = kSramCimDensity28 * kCell28 / r.cell_um2;
    n.tapeout_cost_norm = r.cost;
    table.push_back(n);
  }
  return table;
}

double rom_cim_density_at_28nm() {
  return default_rom_macro().density_mb_per_mm2();
}

}  // namespace yoloc
