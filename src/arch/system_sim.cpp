#include "arch/system_sim.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/units.hpp"

namespace yoloc {

std::string deployment_name(Deployment d) {
  switch (d) {
    case Deployment::kYoloc:
      return "YOLoC (ROM-CiM + SRAM-CiM)";
    case Deployment::kSramSingleChip:
      return "SRAM-CiM single chip";
    case Deployment::kSramChiplet:
      return "SRAM-CiM chiplets";
  }
  return "?";
}

SystemConfig::SystemConfig()
    : rom_macro(default_rom_macro()), sram_macro(default_sram_macro()) {
  cache.capacity_kb = 128.0;
}

double SystemReport::tops_per_watt() const {
  return yoloc::tops_per_watt(2.0 * macs, energy.total_pj());
}

double SystemReport::gops() const {
  return yoloc::gops(2.0 * macs, latency.total_ns());
}

SystemSimulator::SystemSimulator(SystemConfig cfg)
    : cfg_(std::move(cfg)),
      cache_(cfg_.cache),
      dram_(cfg_.dram),
      link_(cfg_.link),
      noc_(cfg_.noc) {}

SystemSimulator::LayerCost SystemSimulator::layer_cost(
    const NetLayer& layer, const MacroConfig& macro) const {
  LayerCost cost;
  if (layer.weight_count() <= 0.0) return cost;
  const MacroGeometry& g = macro.geometry;

  const int m = layer.out_ch;
  const int k = layer.kind == NetLayerKind::kFc
                    ? layer.in_ch
                    : layer.in_ch * layer.kernel * layer.kernel;
  const double vectors = layer.kind == NetLayerKind::kFc
                             ? 1.0
                             : static_cast<double>(layer.out_h()) *
                                   layer.out_w();

  // Row tiling: groups of rows_per_activation within each <=rows tile.
  const int full_tiles = k / g.rows;
  const int rem = k % g.rows;
  const double groups_per_output =
      static_cast<double>(full_tiles) * (g.rows / g.rows_per_activation) +
      (rem > 0 ? std::ceil(static_cast<double>(rem) / g.rows_per_activation)
               : 0.0);
  const double col_strips =
      std::ceil(static_cast<double>(m) / g.weights_per_row());

  cost.conversions = vectors * m * g.weight_bits * g.input_bits *
                     groups_per_output;
  // Wordline pulses: average input bit density 0.5; every column strip
  // (distinct subarray) needs its own pulse train.
  cost.wl_pulses = vectors * g.input_bits * k * 0.5 * col_strips;
  cost.shift_adds = cost.conversions;

  // Latency: all subarrays of one pixel-lane run in parallel; the
  // busiest one serializes min(m, weights_per_row) outputs on its ADC
  // bank. Idle subarray capacity is used to replicate weights and
  // process up to `parallel_lanes` pixels concurrently.
  const int m_busy = std::min(m, g.weights_per_row());
  const double groups_busy =
      std::ceil(static_cast<double>(std::min(k, g.rows)) /
                g.rows_per_activation);
  const double conv_per_vec =
      static_cast<double>(m_busy) * g.weight_bits * g.input_bits * groups_busy;
  const double lanes = std::max(1.0, std::min(cfg_.parallel_lanes, vectors));
  cost.latency_ns = vectors / lanes *
                    std::ceil(conv_per_vec / g.adc_per_subarray) *
                    macro.adc.t_conv_ns;
  return cost;
}

double SystemSimulator::tile_passes(const NetLayer& layer) const {
  const double working_set =
      layer.input_bytes(cfg_.act_bits) + layer.output_bytes(cfg_.act_bits);
  return std::max(1.0, std::ceil(working_set / cache_.capacity_bytes()));
}

namespace {

bool is_branch_layer(const NetLayer& l) {
  return l.name.find(".rescomp") != std::string::npos ||
         l.name.find(".resconv") != std::string::npos ||
         l.name.find(".resdecomp") != std::string::npos;
}

}  // namespace

void SystemSimulator::accumulate_compute(const NetworkModel& net,
                                         const MacroConfig& macro,
                                         const Residency* only,
                                         double chip_area_mm2,
                                         SystemReport& report) const {
  // Pass 1: per-layer compute energy + buffer/NoC traffic.
  for (const auto& layer : net.layers) {
    if (layer.weight_count() <= 0.0) continue;
    if (only != nullptr && layer.residency != *only) continue;
    const LayerCost cost = layer_cost(layer, macro);

    const double adc_pj = cost.conversions * macro.adc.energy_pj;
    const double pre_pj =
        cost.conversions *
        BitlineModel(macro.bitline)
            .precharge_energy_pj(0.25 * macro.geometry.rows_per_activation);
    const double wl_pj = cost.wl_pulses * (macro.energy.wl_pulse_pj +
                                           macro.energy.dac_driver_pj);
    const double sa_pj = cost.shift_adds * macro.energy.shift_add_pj;
    report.energy.cim_array_pj += pre_pj + wl_pj;
    report.energy.cim_peripheral_pj += adc_pj + sa_pj;

    const double traffic_bytes =
        layer.input_bytes(cfg_.act_bits) + layer.output_bytes(cfg_.act_bits);
    report.energy.buffer_pj += cache_.access_energy_pj(traffic_bytes);
    report.energy.noc_pj +=
        noc_.transfer_energy_pj(traffic_bytes, chip_area_mm2);
  }

  // Pass 2: latency with trunk/branch overlap. Branch triplets
  // (rescomp -> resconv -> resdecomp) directly follow their trunk layer
  // (apply_rebranch's layout) and execute concurrently with it.
  std::size_t i = 0;
  while (i < net.layers.size()) {
    const NetLayer& layer = net.layers[i];
    if (layer.weight_count() <= 0.0 ||
        (only != nullptr && layer.residency != *only && !is_branch_layer(layer))) {
      ++i;
      continue;
    }
    if (is_branch_layer(layer)) {
      // Handled together with the trunk below; skip if reached directly.
      ++i;
      continue;
    }
    // Trunk layer latency on its own macro kind.
    double trunk_ns = layer_cost(layer, macro).latency_ns;
    double chain_ns = 0.0;
    double merge_ns = 0.0;
    std::size_t j = i + 1;
    bool has_branch = false;
    while (j < net.layers.size() && is_branch_layer(net.layers[j])) {
      has_branch = true;
      const NetLayer& bl = net.layers[j];
      const MacroConfig& bmacro =
          bl.residency == Residency::kRom ? cfg_.rom_macro : cfg_.sram_macro;
      // The compress -> res-conv -> decompress stages pipeline at pixel
      // granularity, so the chain runs at the pace of its slowest stage.
      chain_ns = std::max(chain_ns, layer_cost(bl, bmacro).latency_ns);
      ++j;
    }
    if (has_branch) {
      // Trunk and branch outputs merge through the cache before the next
      // layer consumes them.
      merge_ns = noc_.transfer_time_ns(layer.output_bytes(cfg_.act_bits));
    }
    report.latency.compute_ns += std::max(trunk_ns, chain_ns);
    report.latency.merge_ns += merge_ns;
    i = j;
  }
}

double SystemSimulator::sram_chip_capacity_bits(double area_mm2) const {
  const double fixed = cache_.area_mm2() + cfg_.controller_area_mm2;
  const double macro_area = cfg_.sram_macro.area_mm2();
  // Epsilon guards the round-trip with sram_chip_area_for_bits().
  const double n = std::floor((area_mm2 - fixed) / macro_area + 1e-9);
  return std::max(0.0, n) * cfg_.sram_macro.geometry.capacity_bits();
}

double SystemSimulator::sram_chip_area_for_bits(double bits) const {
  const double n =
      std::ceil(bits / cfg_.sram_macro.geometry.capacity_bits());
  return n * cfg_.sram_macro.area_mm2() + cache_.area_mm2() +
         cfg_.controller_area_mm2;
}

namespace {

/// Compose the Fig. 14(b)-style area report from macro instances.
AreaReport compose_area(const MacroConfig& rom, double n_rom,
                        const MacroConfig& sram, double n_sram,
                        double cache_mm2, double controller_mm2) {
  AreaReport a;
  const auto add_macros = [&a](const MacroConfig& m, double n) {
    if (n <= 0.0) return;
    const double area = m.area_mm2() * n;
    const auto b = m.area_breakdown();
    a.array_mm2 += b.array * area;
    a.adc_mm2 += b.adc * area;
    a.rw_mm2 += b.overhead * area;       // R/W interface, decode, IO
    a.peripheral_mm2 += b.periphery * area;  // drivers + shift-add
  };
  add_macros(rom, n_rom);
  add_macros(sram, n_sram);
  a.buffer_mm2 = cache_mm2;
  a.peripheral_mm2 += controller_mm2;
  a.per_chip_mm2 = a.array_mm2 + a.adc_mm2 + a.rw_mm2 + a.peripheral_mm2 +
                   a.buffer_mm2;
  a.total_mm2 = a.per_chip_mm2;
  return a;
}

}  // namespace

SystemReport SystemSimulator::simulate_yoloc(const NetworkModel& net) const {
  SystemReport report;
  report.deployment = Deployment::kYoloc;
  report.label = net.name + " / YOLoC";
  report.macs = net.total_macs();

  report.rom_bits_used =
      net.weights_with_residency(Residency::kRom) * cfg_.weight_bits;
  report.sram_cim_bits_used =
      net.weights_with_residency(Residency::kSram) * cfg_.weight_bits;

  const double n_rom = std::ceil(report.rom_bits_used /
                                 cfg_.rom_macro.geometry.capacity_bits());
  const double n_sram = std::max(
      1.0, std::ceil(report.sram_cim_bits_used /
                     cfg_.sram_macro.geometry.capacity_bits()));
  report.sram_cim_bits_capacity =
      n_sram * cfg_.sram_macro.geometry.capacity_bits();
  report.area = compose_area(cfg_.rom_macro, n_rom, cfg_.sram_macro, n_sram,
                             cache_.area_mm2(), cfg_.controller_area_mm2);

  const Residency rom = Residency::kRom;
  const Residency sram = Residency::kSram;
  accumulate_compute(net, cfg_.rom_macro, &rom, report.area.per_chip_mm2,
                     report);
  accumulate_compute(net, cfg_.sram_macro, &sram, report.area.per_chip_mm2,
                     report);

  // One-time SRAM-CiM weight load at power-on, amortized.
  const double boot_bytes = report.sram_cim_bits_used / 8.0;
  const double boot_pj = dram_.stream_energy_pj(boot_bytes) +
                         report.sram_cim_bits_used *
                             cfg_.sram_macro.write_energy_pj_per_bit;
  report.energy.dram_pj += boot_pj / cfg_.inferences_per_boot;
  report.dram_bytes_per_inference = boot_bytes / cfg_.inferences_per_boot;

  // Controller + cache leakage over the inference.
  report.energy.cim_peripheral_pj +=
      cfg_.controller_energy_frac *
      (report.energy.cim_array_pj + report.energy.cim_peripheral_pj);
  // uW * ns = fJ = 1e-3 pJ.
  report.energy.buffer_pj +=
      cache_.leakage_uw() * report.latency.total_ns() * 1e-3;
  return report;
}

SystemReport SystemSimulator::simulate_sram_single_chip(
    const NetworkModel& net, double area_budget_mm2) const {
  SystemReport report;
  report.deployment = Deployment::kSramSingleChip;
  report.label = net.name + " / SRAM-CiM single chip";
  report.macs = net.total_macs();

  const double capacity = sram_chip_capacity_bits(area_budget_mm2);
  report.sram_cim_bits_capacity = capacity;
  const double weight_bits_total = net.weight_bits(cfg_.weight_bits);
  report.sram_cim_bits_used = std::min(weight_bits_total, capacity);
  const double overflow_bits =
      std::max(0.0, weight_bits_total - capacity);

  const double n_sram = std::max(
      1.0, std::floor((area_budget_mm2 - cache_.area_mm2() -
                       cfg_.controller_area_mm2) /
                      cfg_.sram_macro.area_mm2()));
  report.area = compose_area(cfg_.sram_macro, 0.0, cfg_.sram_macro, n_sram,
                             cache_.area_mm2(), cfg_.controller_area_mm2);

  accumulate_compute(net, cfg_.sram_macro, nullptr, report.area.per_chip_mm2,
                     report);

  // Per-inference weight streaming for the overflow, plus array rewrite.
  // Overflow is spread uniformly over the layers; a layer whose working
  // set exceeds the cache processes in tiles and re-fetches its streamed
  // weights once per tile (the re-fetch amplification that makes the
  // large-feature-map models DRAM-bound, Fig. 14c).
  if (overflow_bits > 0.0) {
    const double overflow_frac = overflow_bits / weight_bits_total;
    double streamed_bits = 0.0;
    for (const auto& layer : net.layers) {
      const double lbits = layer.weight_count() * cfg_.weight_bits;
      if (lbits <= 0.0) continue;
      streamed_bits += overflow_frac * lbits * tile_passes(layer);
    }
    const double bytes = streamed_bits / 8.0;
    report.dram_bytes_per_inference = bytes;
    report.energy.dram_pj += dram_.stream_energy_pj(bytes);
    report.energy.weight_write_pj +=
        streamed_bits * cfg_.sram_macro.write_energy_pj_per_bit;
    const double stream_ns =
        dram_.stream_time_ns(bytes) +
        streamed_bits / cfg_.sram_macro.write_bandwidth_bits_per_ns;
    report.latency.dram_ns += (1.0 - cfg_.dram_compute_overlap) * stream_ns;
  }

  // One-time load of the resident weights, amortized.
  const double boot_bytes = report.sram_cim_bits_used / 8.0;
  report.energy.dram_pj +=
      (dram_.stream_energy_pj(boot_bytes) +
       report.sram_cim_bits_used * cfg_.sram_macro.write_energy_pj_per_bit) /
      cfg_.inferences_per_boot;

  report.energy.cim_peripheral_pj +=
      cfg_.controller_energy_frac *
      (report.energy.cim_array_pj + report.energy.cim_peripheral_pj);
  report.energy.buffer_pj +=
      cache_.leakage_uw() * report.latency.total_ns() * 1e-3;
  return report;
}

SystemReport SystemSimulator::simulate_sram_chiplets(
    const NetworkModel& net, double chip_area_mm2) const {
  SystemReport report;
  report.deployment = Deployment::kSramChiplet;
  report.label = net.name + " / SRAM-CiM chiplets";
  report.macs = net.total_macs();

  const double per_chip_bits = sram_chip_capacity_bits(chip_area_mm2);
  YOLOC_CHECK(per_chip_bits > 0.0, "chiplet: chip too small for any macro");
  const double weight_bits_total = net.weight_bits(cfg_.weight_bits);
  const int chips = static_cast<int>(
      std::max(1.0, std::ceil(weight_bits_total / per_chip_bits)));
  report.sram_cim_bits_capacity = per_chip_bits * chips;
  report.sram_cim_bits_used = weight_bits_total;

  const double n_sram_per_chip = std::max(
      1.0, std::floor((chip_area_mm2 - cache_.area_mm2() -
                       cfg_.controller_area_mm2) /
                      cfg_.sram_macro.area_mm2()));
  report.area = compose_area(cfg_.sram_macro, 0.0, cfg_.sram_macro,
                             n_sram_per_chip * chips, cache_.area_mm2() * chips,
                             cfg_.controller_area_mm2 * chips);
  report.area.chips = chips;
  report.area.per_chip_mm2 = report.area.total_mm2 / chips;

  accumulate_compute(net, cfg_.sram_macro, nullptr, report.area.per_chip_mm2,
                     report);

  // Inter-chip transfers: walk layers, cut when cumulative weights exceed
  // a chip; the feature map at each cut crosses the link.
  double acc_bits = 0.0;
  for (const auto& layer : net.layers) {
    const double lbits = layer.weight_count() * cfg_.weight_bits;
    if (lbits <= 0.0) continue;
    if (acc_bits + lbits > per_chip_bits && acc_bits > 0.0) {
      const double fmap = layer.input_bytes(cfg_.act_bits);
      report.energy.interchip_pj += link_.transfer_energy_pj(fmap);
      report.latency.interchip_ns += link_.transfer_time_ns(fmap);
      acc_bits = 0.0;
    }
    acc_bits += lbits;
  }

  // One-time load of all weights across chips, amortized.
  const double boot_bytes = weight_bits_total / 8.0;
  report.energy.dram_pj +=
      (dram_.stream_energy_pj(boot_bytes) +
       weight_bits_total * cfg_.sram_macro.write_energy_pj_per_bit) /
      cfg_.inferences_per_boot;

  report.energy.cim_peripheral_pj +=
      cfg_.controller_energy_frac *
      (report.energy.cim_array_pj + report.energy.cim_peripheral_pj);
  report.energy.buffer_pj += chips * cache_.leakage_uw() *
                             report.latency.total_ns() * 1e-3;
  return report;
}

IsoAreaComparison compare_iso_area(const SystemSimulator& sim,
                                   const NetworkModel& base_net, int d, int u,
                                   int sram_tail_layers,
                                   double area_budget_mm2) {
  NetworkModel rom_net = base_net;
  assign_backbone_to_rom(rom_net, sram_tail_layers);
  const NetworkModel deployed = apply_rebranch(rom_net, d, u);

  IsoAreaComparison cmp;
  cmp.yoloc = sim.simulate_yoloc(deployed);
  const double budget =
      area_budget_mm2 > 0.0 ? area_budget_mm2 : cmp.yoloc.area.total_mm2;
  cmp.sram_single = sim.simulate_sram_single_chip(base_net, budget);
  cmp.sram_chiplets = sim.simulate_sram_chiplets(base_net, budget);
  return cmp;
}

}  // namespace yoloc
