#pragma once
// Chip-level simulator for the three system configurations of Fig. 13:
//
//   (a) YOLoC            - ROM-CiM backbone + SRAM-CiM ReBranch/head;
//                          SRAM-CiM weights loaded from DRAM once at
//                          power-on (amortized), no per-inference DRAM.
//   (b) single-chip      - iso-area all-SRAM-CiM chip; weights that do
//       SRAM-CiM           not fit on chip stream from DRAM every
//                          inference (weight overflow streaming).
//   (c) SRAM-CiM         - enough SRAM-CiM chips to hold all weights; no
//       chiplets           DRAM, but feature maps cross SIMBA-class links
//                          at chip boundaries.
//
// Per layer the simulator derives conversion/pulse/accumulation counts
// from the macro geometry (same accounting as the functional CimMacro),
// energy from the calibrated circuit constants, buffer/NoC traffic from
// feature-map sizes, and latency from ADC-bank serialization with
// branch/trunk overlap. Area comes from discrete macro instances plus
// cache and controller.

#include <string>

#include "arch/network_model.hpp"
#include "macro/macro_config.hpp"
#include "mapping/weight_mapper.hpp"
#include "memsys/chiplet_link.hpp"
#include "memsys/dram.hpp"
#include "memsys/noc.hpp"
#include "memsys/sram_buffer.hpp"

namespace yoloc {

enum class Deployment { kYoloc, kSramSingleChip, kSramChiplet };

std::string deployment_name(Deployment d);

struct SystemConfig {
  MacroConfig rom_macro;
  MacroConfig sram_macro;
  SramBufferParams cache;
  DramParams dram;
  ChipletLinkParams link;
  NocParams noc;
  MappingStrategy mapping = MappingStrategy::kPacked;
  int act_bits = 8;
  int weight_bits = 8;
  double controller_area_mm2 = 0.5;
  /// Digital scheduling/control energy as a fraction of compute energy.
  double controller_energy_frac = 0.05;
  /// Inferences between power cycles; the one-time SRAM-CiM weight load
  /// is amortized over this count.
  double inferences_per_boot = 1e4;
  /// Fraction of DRAM streaming time hidden under compute (ping-pong).
  double dram_compute_overlap = 0.5;
  /// Concurrent subarray lanes per layer (weight replication across the
  /// chip's idle subarrays; paper Sec. 3.1: "multiple subarrays in the
  /// chip could be activated simultaneously").
  double parallel_lanes = 64.0;

  SystemConfig();
};

struct EnergyBreakdown {
  double cim_array_pj = 0.0;       // precharge + wordline (analog array)
  double cim_peripheral_pj = 0.0;  // ADC + shift-add + control
  double buffer_pj = 0.0;          // cache reads/writes + leakage
  double noc_pj = 0.0;
  double dram_pj = 0.0;            // weight streaming (+ amortized boot)
  double weight_write_pj = 0.0;    // SRAM-CiM array rewrite
  double interchip_pj = 0.0;

  [[nodiscard]] double total_pj() const {
    return cim_array_pj + cim_peripheral_pj + buffer_pj + noc_pj + dram_pj +
           weight_write_pj + interchip_pj;
  }
};

struct LatencyBreakdown {
  double compute_ns = 0.0;
  double merge_ns = 0.0;     // trunk+branch feature-map merge
  double dram_ns = 0.0;      // non-hidden DRAM streaming
  double interchip_ns = 0.0;

  [[nodiscard]] double total_ns() const {
    return compute_ns + merge_ns + dram_ns + interchip_ns;
  }
};

/// Fig. 14(b)-style area composition; one chip unless chips > 1.
struct AreaReport {
  int chips = 1;
  double per_chip_mm2 = 0.0;
  double total_mm2 = 0.0;
  double array_mm2 = 0.0;      // ROM + SRAM CiM cells
  double adc_mm2 = 0.0;
  double rw_mm2 = 0.0;         // drivers + macro overhead (R/W interface)
  double peripheral_mm2 = 0.0; // shift-add + controller
  double buffer_mm2 = 0.0;     // activation cache
};

struct SystemReport {
  std::string label;
  Deployment deployment = Deployment::kYoloc;
  double macs = 0.0;  // per inference (of the deployed graph)
  EnergyBreakdown energy;
  LatencyBreakdown latency;
  AreaReport area;
  double rom_bits_used = 0.0;
  double sram_cim_bits_used = 0.0;
  double sram_cim_bits_capacity = 0.0;
  double dram_bytes_per_inference = 0.0;

  [[nodiscard]] double energy_uj() const { return energy.total_pj() * 1e-6; }
  [[nodiscard]] double tops_per_watt() const;
  [[nodiscard]] double gops() const;
};

class SystemSimulator {
 public:
  explicit SystemSimulator(SystemConfig cfg);

  /// YOLoC chip sized to hold `net` (which should carry residency flags;
  /// apply assign_backbone_to_rom + apply_rebranch first).
  [[nodiscard]] SystemReport simulate_yoloc(const NetworkModel& net) const;

  /// Iso-area all-SRAM-CiM single chip with the given silicon budget.
  [[nodiscard]] SystemReport simulate_sram_single_chip(
      const NetworkModel& net, double area_budget_mm2) const;

  /// Multi-chip SRAM-CiM with per-chip area = chip_area_mm2; spawns as
  /// many chiplets as needed to hold all weights on-die.
  [[nodiscard]] SystemReport simulate_sram_chiplets(
      const NetworkModel& net, double chip_area_mm2) const;

  [[nodiscard]] const SystemConfig& config() const { return cfg_; }

  /// SRAM-CiM weight capacity of a chip with `area_mm2` silicon after
  /// cache + controller are placed.
  [[nodiscard]] double sram_chip_capacity_bits(double area_mm2) const;

  /// Silicon needed by an all-SRAM-CiM chip to hold `bits` of weights —
  /// the iso-area anchor of Fig. 14 is the chip that fits the smallest
  /// model (VGG-8) entirely.
  [[nodiscard]] double sram_chip_area_for_bits(double bits) const;

  /// Activation-tiling weight re-fetch factor: when a layer's working
  /// set exceeds the on-chip cache, its streamed weights are re-fetched
  /// once per activation tile.
  [[nodiscard]] double tile_passes(const NetLayer& layer) const;

 private:
  struct LayerCost {
    double conversions = 0.0;
    double wl_pulses = 0.0;
    double shift_adds = 0.0;
    double latency_ns = 0.0;  // per layer, all subarrays in parallel
  };
  /// Conversion/pulse accounting for one layer on one macro kind.
  [[nodiscard]] LayerCost layer_cost(const NetLayer& layer,
                                     const MacroConfig& macro) const;
  /// Adds compute + buffer + noc for every layer with the given
  /// residency filter into the report (nullptr filter = all layers).
  void accumulate_compute(const NetworkModel& net, const MacroConfig& macro,
                          const Residency* only, double chip_area_mm2,
                          SystemReport& report) const;

  SystemConfig cfg_;
  SramBuffer cache_;
  Dram dram_;
  ChipletLink link_;
  Noc noc_;
};

/// End-to-end Fig. 14 comparison helper: deploys `net` as YOLoC (with
/// ReBranch d=u), then simulates the SRAM single chip and the chiplet
/// configuration against `area_budget_mm2` of silicon per chip. A
/// negative budget uses the YOLoC chip's own area; Fig. 14 anchors the
/// budget at the chip that fits VGG-8 (see sram_chip_area_for_bits).
struct IsoAreaComparison {
  SystemReport yoloc;
  SystemReport sram_single;
  SystemReport sram_chiplets;
};
IsoAreaComparison compare_iso_area(const SystemSimulator& sim,
                                   const NetworkModel& base_net, int d = 4,
                                   int u = 4, int sram_tail_layers = 1,
                                   double area_budget_mm2 = -1.0);

}  // namespace yoloc
