#pragma once
// Full-size network layer tables for the paper's four models.
//
// These drive every area/energy/latency result (Table I system level,
// Figs. 12-14). They are *analytic* descriptions — layer geometries and
// weight counts — not trainable graphs; the trainable -lite counterparts
// live in nn/zoo.hpp. Weight counts land near the paper's quoted sizes
// (Tiny-YOLO 11.3M, YOLO ~46M; Sec. 1).

#include <string>
#include <vector>

namespace yoloc {

enum class NetLayerKind { kConv, kFc, kPool };

/// Where a layer's weights live after deployment.
enum class Residency { kRom, kSram };

struct NetLayer {
  std::string name;
  NetLayerKind kind = NetLayerKind::kConv;
  int in_ch = 0;
  int out_ch = 0;
  int kernel = 1;
  int stride = 1;
  int in_h = 0;
  int in_w = 0;
  Residency residency = Residency::kSram;

  [[nodiscard]] int out_h() const {
    return kind == NetLayerKind::kPool ? in_h / stride
                                       : (in_h + stride - 1) / stride;
  }
  [[nodiscard]] int out_w() const {
    return kind == NetLayerKind::kPool ? in_w / stride
                                       : (in_w + stride - 1) / stride;
  }
  [[nodiscard]] double weight_count() const;
  [[nodiscard]] double macs() const;
  [[nodiscard]] double input_bytes(int act_bits = 8) const;
  [[nodiscard]] double output_bytes(int act_bits = 8) const;
};

struct NetworkModel {
  std::string name;
  int input_size = 32;
  std::vector<NetLayer> layers;

  [[nodiscard]] double total_weights() const;
  [[nodiscard]] double total_macs() const;
  [[nodiscard]] double weight_bits(int weight_bits_per = 8) const;
  [[nodiscard]] double weights_with_residency(Residency r) const;
  /// Largest intermediate feature map in bytes (buffer sizing).
  [[nodiscard]] double peak_activation_bytes(int act_bits = 8) const;
};

/// Helper used by the model builders: append a conv layer and return the
/// output extent for chaining.
void add_conv(NetworkModel& net, const std::string& name, int in_ch,
              int out_ch, int kernel, int stride, int hw);

/// VGG-8 on 32x32 inputs (6 conv + 2 FC, ~5.5M weights).
NetworkModel vgg8_model();
/// ResNet-18, CIFAR-style 32x32 stem (~11.2M weights).
NetworkModel resnet18_model();
/// YOLO with DarkNet-19 backbone on 416x416 (YOLOv2-class, ~46M weights
/// counting the detection head — the paper's "YOLO, 46M").
NetworkModel yolo_darknet19_model();
/// Tiny-YOLO on 416x416 (~11.3M weights).
NetworkModel tiny_yolo_model();

/// All four, in Fig. 14c order (VGG-8, ResNet-18, Tiny-YOLO, YOLO).
std::vector<NetworkModel> paper_model_suite();

/// Mark backbone layers (all but the last `sram_tail_layers` weight
/// layers) ROM-resident; the tail (prediction head) stays SRAM.
void assign_backbone_to_rom(NetworkModel& net, int sram_tail_layers = 1);

/// ReBranch deployment transform (paper Fig. 7): every ROM-resident conv
/// of kernel >= 1 with enough channels gains
///   res-compress  (pointwise, in -> in/d, ROM)
///   res-conv      (kxk, in/d -> out/u, SRAM, trainable)
///   res-decompress(pointwise, out/u -> out, ROM)
/// in parallel with the trunk. Returns the transformed copy.
NetworkModel apply_rebranch(const NetworkModel& net, int d, int u);

}  // namespace yoloc
