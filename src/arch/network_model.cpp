#include "arch/network_model.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace yoloc {

double NetLayer::weight_count() const {
  switch (kind) {
    case NetLayerKind::kConv:
      return static_cast<double>(in_ch) * out_ch * kernel * kernel;
    case NetLayerKind::kFc:
      return static_cast<double>(in_ch) * out_ch;
    case NetLayerKind::kPool:
      return 0.0;
  }
  return 0.0;
}

double NetLayer::macs() const {
  switch (kind) {
    case NetLayerKind::kConv:
      return weight_count() * out_h() * out_w();
    case NetLayerKind::kFc:
      return weight_count();
    case NetLayerKind::kPool:
      return 0.0;
  }
  return 0.0;
}

double NetLayer::input_bytes(int act_bits) const {
  return static_cast<double>(in_ch) * in_h * in_w * act_bits / 8.0;
}

double NetLayer::output_bytes(int act_bits) const {
  return static_cast<double>(out_ch) * out_h() * out_w() * act_bits / 8.0;
}

double NetworkModel::total_weights() const {
  double w = 0.0;
  for (const auto& l : layers) w += l.weight_count();
  return w;
}

double NetworkModel::total_macs() const {
  double m = 0.0;
  for (const auto& l : layers) m += l.macs();
  return m;
}

double NetworkModel::weight_bits(int weight_bits_per) const {
  return total_weights() * weight_bits_per;
}

double NetworkModel::weights_with_residency(Residency r) const {
  double w = 0.0;
  for (const auto& l : layers) {
    if (l.residency == r) w += l.weight_count();
  }
  return w;
}

double NetworkModel::peak_activation_bytes(int act_bits) const {
  double peak = 0.0;
  for (const auto& l : layers) {
    peak = std::max({peak, l.input_bytes(act_bits), l.output_bytes(act_bits)});
  }
  return peak;
}

void add_conv(NetworkModel& net, const std::string& name, int in_ch,
              int out_ch, int kernel, int stride, int hw) {
  NetLayer l;
  l.name = name;
  l.kind = NetLayerKind::kConv;
  l.in_ch = in_ch;
  l.out_ch = out_ch;
  l.kernel = kernel;
  l.stride = stride;
  l.in_h = hw;
  l.in_w = hw;
  net.layers.push_back(l);
}

namespace {

void add_pool(NetworkModel& net, const std::string& name, int ch, int hw) {
  NetLayer l;
  l.name = name;
  l.kind = NetLayerKind::kPool;
  l.in_ch = ch;
  l.out_ch = ch;
  l.kernel = 2;
  l.stride = 2;
  l.in_h = hw;
  l.in_w = hw;
  net.layers.push_back(l);
}

void add_fc(NetworkModel& net, const std::string& name, int in_features,
            int out_features) {
  NetLayer l;
  l.name = name;
  l.kind = NetLayerKind::kFc;
  l.in_ch = in_features;
  l.out_ch = out_features;
  l.kernel = 1;
  l.in_h = 1;
  l.in_w = 1;
  net.layers.push_back(l);
}

}  // namespace

NetworkModel vgg8_model() {
  NetworkModel net;
  net.name = "VGG-8";
  net.input_size = 32;
  add_conv(net, "conv1_1", 3, 64, 3, 1, 32);
  add_conv(net, "conv1_2", 64, 64, 3, 1, 32);
  add_pool(net, "pool1", 64, 32);
  add_conv(net, "conv2_1", 64, 128, 3, 1, 16);
  add_conv(net, "conv2_2", 128, 128, 3, 1, 16);
  add_pool(net, "pool2", 128, 16);
  add_conv(net, "conv3_1", 128, 256, 3, 1, 8);
  add_conv(net, "conv3_2", 256, 256, 3, 1, 8);
  add_pool(net, "pool3", 256, 8);
  add_fc(net, "fc1", 256 * 4 * 4, 1024);
  add_fc(net, "fc2", 1024, 100);
  return net;
}

NetworkModel resnet18_model() {
  // ImageNet-style ResNet-18 (224x224 input): the configuration the
  // system-level evaluation uses. (The transfer experiments use the
  // CIFAR-pretrained -lite variant from nn/zoo.hpp instead.)
  NetworkModel net;
  net.name = "ResNet-18";
  net.input_size = 224;
  add_conv(net, "stem", 3, 64, 7, 2, 224);
  NetLayer stem_pool;
  stem_pool.name = "stem.pool";
  stem_pool.kind = NetLayerKind::kPool;
  stem_pool.in_ch = stem_pool.out_ch = 64;
  stem_pool.kernel = 2;
  stem_pool.stride = 2;
  stem_pool.in_h = stem_pool.in_w = 112;
  net.layers.push_back(stem_pool);
  const int stage_ch[4] = {64, 128, 256, 512};
  int hw = 56;
  int in_ch = 64;
  for (int s = 0; s < 4; ++s) {
    const int ch = stage_ch[s];
    const int stride = s == 0 ? 1 : 2;
    const std::string base = "stage" + std::to_string(s);
    add_conv(net, base + ".b0.conv1", in_ch, ch, 3, stride, hw);
    hw = stride == 2 ? hw / 2 : hw;
    add_conv(net, base + ".b0.conv2", ch, ch, 3, 1, hw);
    if (stride != 1 || in_ch != ch) {
      add_conv(net, base + ".b0.proj", in_ch, ch, 1, stride, hw * stride);
    }
    add_conv(net, base + ".b1.conv1", ch, ch, 3, 1, hw);
    add_conv(net, base + ".b1.conv2", ch, ch, 3, 1, hw);
    in_ch = ch;
  }
  add_fc(net, "fc", 512, 1000);
  return net;
}

NetworkModel yolo_darknet19_model() {
  NetworkModel net;
  net.name = "YOLO (DarkNet-19)";
  net.input_size = 416;
  int hw = 416;
  add_conv(net, "conv1", 3, 32, 3, 1, hw);
  add_pool(net, "pool1", 32, hw);
  hw /= 2;  // 208
  add_conv(net, "conv2", 32, 64, 3, 1, hw);
  add_pool(net, "pool2", 64, hw);
  hw /= 2;  // 104
  add_conv(net, "conv3", 64, 128, 3, 1, hw);
  add_conv(net, "conv4", 128, 64, 1, 1, hw);
  add_conv(net, "conv5", 64, 128, 3, 1, hw);
  add_pool(net, "pool3", 128, hw);
  hw /= 2;  // 52
  add_conv(net, "conv6", 128, 256, 3, 1, hw);
  add_conv(net, "conv7", 256, 128, 1, 1, hw);
  add_conv(net, "conv8", 128, 256, 3, 1, hw);
  add_pool(net, "pool4", 256, hw);
  hw /= 2;  // 26
  add_conv(net, "conv9", 256, 512, 3, 1, hw);
  add_conv(net, "conv10", 512, 256, 1, 1, hw);
  add_conv(net, "conv11", 256, 512, 3, 1, hw);
  add_conv(net, "conv12", 512, 256, 1, 1, hw);
  add_conv(net, "conv13", 256, 512, 3, 1, hw);
  add_pool(net, "pool5", 512, hw);
  hw /= 2;  // 13
  add_conv(net, "conv14", 512, 1024, 3, 1, hw);
  add_conv(net, "conv15", 1024, 512, 1, 1, hw);
  add_conv(net, "conv16", 512, 1024, 3, 1, hw);
  add_conv(net, "conv17", 1024, 512, 1, 1, hw);
  add_conv(net, "conv18", 512, 1024, 3, 1, hw);
  // Detection head (YOLOv2): two 3x3x1024 convs, the passthrough
  // projection, the post-concat 3x3 conv and the pointwise prediction.
  add_conv(net, "det1", 1024, 1024, 3, 1, hw);
  add_conv(net, "det2", 1024, 1024, 3, 1, hw);
  add_conv(net, "passthrough", 512, 64, 1, 1, 26);
  add_conv(net, "det3", 1024 + 256, 1024, 3, 1, hw);
  add_conv(net, "pred", 1024, 125, 1, 1, hw);  // 5 anchors x (5+20)
  return net;
}

NetworkModel tiny_yolo_model() {
  NetworkModel net;
  net.name = "Tiny-YOLO";
  net.input_size = 416;
  int hw = 416;
  const int chs[6] = {16, 32, 64, 128, 256, 512};
  int in_ch = 3;
  for (int i = 0; i < 6; ++i) {
    add_conv(net, "conv" + std::to_string(i + 1), in_ch, chs[i], 3, 1, hw);
    add_pool(net, "pool" + std::to_string(i + 1), chs[i], hw);
    hw /= 2;
    in_ch = chs[i];
  }
  // 416 / 2^6 = 6.5 -> the real net uses stride-1 pool on the last stage;
  // keep 13x13 by undoing the final halving.
  hw = 13;
  add_conv(net, "conv7", 512, 1024, 3, 1, hw);
  add_conv(net, "conv8", 1024, 512, 3, 1, hw);
  add_conv(net, "pred", 512, 125, 1, 1, hw);
  return net;
}

std::vector<NetworkModel> paper_model_suite() {
  return {vgg8_model(), resnet18_model(), tiny_yolo_model(),
          yolo_darknet19_model()};
}

void assign_backbone_to_rom(NetworkModel& net, int sram_tail_layers) {
  // Count weight layers; the last `sram_tail_layers` of them stay SRAM.
  int weight_layers = 0;
  for (const auto& l : net.layers) {
    if (l.weight_count() > 0) ++weight_layers;
  }
  int index = 0;
  for (auto& l : net.layers) {
    if (l.weight_count() <= 0) continue;
    l.residency = (index < weight_layers - sram_tail_layers) ? Residency::kRom
                                                             : Residency::kSram;
    ++index;
  }
}

NetworkModel apply_rebranch(const NetworkModel& net, int d, int u) {
  YOLOC_CHECK(d >= 1 && u >= 1, "rebranch: ratios >= 1");
  NetworkModel out;
  out.name = net.name + "+ReBranch(D=" + std::to_string(d) +
             ",U=" + std::to_string(u) + ")";
  out.input_size = net.input_size;
  for (const auto& l : net.layers) {
    out.layers.push_back(l);
    const bool is_rom_conv = l.kind == NetLayerKind::kConv &&
                             l.residency == Residency::kRom;
    if (!is_rom_conv) continue;
    const int cin = std::max(1, l.in_ch / d);
    const int cout = std::max(1, l.out_ch / u);
    // Branch layers operate on the same input feature map as the trunk.
    NetLayer comp = l;
    comp.name = l.name + ".rescomp";
    comp.kind = NetLayerKind::kConv;
    comp.out_ch = cin;
    comp.kernel = 1;
    comp.stride = 1;
    comp.residency = Residency::kRom;
    out.layers.push_back(comp);

    NetLayer resconv = l;
    resconv.name = l.name + ".resconv";
    resconv.in_ch = cin;
    resconv.out_ch = cout;
    resconv.residency = Residency::kSram;  // the trainable part
    out.layers.push_back(resconv);

    NetLayer decomp = l;
    decomp.name = l.name + ".resdecomp";
    decomp.in_ch = cout;
    decomp.out_ch = l.out_ch;
    decomp.kernel = 1;
    decomp.stride = 1;
    decomp.in_h = l.out_h();
    decomp.in_w = l.out_w();
    decomp.residency = Residency::kRom;
    out.layers.push_back(decomp);
  }
  return out;
}

}  // namespace yoloc
