#pragma once
// Technology-scaling table behind Fig. 1(a): CiM-capable SRAM macro
// density and normalized tape-out (mask-set) cost across process nodes,
// plus the ROM-CiM density point this work adds at 28 nm.
//
// The density series is what the figure actually argues about: the
// storage density achievable by a *computing* SRAM macro (cells + ADCs +
// compute periphery), anchored at the paper's 0.26 Mb/mm^2 for 28 nm and
// scaled by the published 6T bitcell area of each node. On this axis the
// 28 nm ROM-CiM point (5 Mb/mm^2) beats SRAM-CiM even at 7 nm, which is
// the paper's headline. Tape-out cost is normalized to the 130 nm mask
// set. Both series only need to be correct in *shape*.

#include <vector>

namespace yoloc {

struct TechNode {
  int node_nm = 0;
  double sram_cell_um2 = 0.0;  // published 6T bitcell area
  /// CiM-capable SRAM macro density at this node (see file comment).
  double sram_density_mb_per_mm2 = 0.0;
  double tapeout_cost_norm = 0.0;  // relative to 130nm
};

/// The node table used by Fig. 1(a), 130 nm down to 7 nm.
std::vector<TechNode> tech_scaling_table();

/// The ROM-CiM density achieved at 28 nm by this work (from the macro
/// model), for overlay on the same axes.
double rom_cim_density_at_28nm();

}  // namespace yoloc
