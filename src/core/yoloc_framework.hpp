#pragma once
// Top-level YOLoC deployment API (paper Sec. 3.3, Fig. 9).
//
// Takes a float-trained network whose parameters carry residency flags
// (set by apply_transfer_policy), lowers it onto the CiM datapath:
//   1. BatchNorm folding,
//   2. int8 quantization with per-layer engine selection — ROM-resident
//      convolutions execute on the ROM-CiM macro model, SRAM-resident
//      ones on the SRAM-CiM macro model,
//   3. activation-range calibration,
// and then serves inference through the analog functional path while
// metering both macros' energy/latency.

#include <memory>

#include "core/macro_engine.hpp"
#include "data/classification.hpp"
#include "nn/container.hpp"

namespace yoloc {

struct FrameworkOptions {
  MacroConfig rom_macro;
  MacroConfig sram_macro;
  int weight_bits = 8;
  int act_bits = 8;
  MacroMvmEngine::Mode mode = MacroMvmEngine::Mode::kAnalog;
  std::uint64_t noise_seed = 2024;

  FrameworkOptions();
};

class YolocFramework {
 public:
  /// Takes ownership of the trained model. Residency flags must already
  /// be set; `calibration_images` drive activation-range calibration.
  YolocFramework(LayerPtr trained_model, const Tensor& calibration_images,
                 FrameworkOptions options);

  /// Quantized inference through the macro models.
  Tensor infer(const Tensor& images);

  /// Top-1 accuracy of the deployed (quantized, analog) model.
  double evaluate_accuracy(const LabeledDataset& dataset,
                           int batch_size = 64);

  /// Activity of the ROM / SRAM macros since the last reset.
  [[nodiscard]] const MacroRunStats& rom_stats() const;
  [[nodiscard]] const MacroRunStats& sram_stats() const;
  void reset_stats();

  /// Total modeled macro energy [pJ] since the last reset.
  [[nodiscard]] double total_energy_pj() const;

  [[nodiscard]] int quantized_layer_count() const { return quantized_layers_; }
  [[nodiscard]] Layer& model() { return *model_; }

 private:
  /// Recursive conv/linear replacement with per-layer engine selection.
  int lower_network(Layer& node);

  FrameworkOptions options_;
  CimMacro rom_macro_;
  CimMacro sram_macro_;
  std::unique_ptr<MacroMvmEngine> rom_engine_;
  std::unique_ptr<MacroMvmEngine> sram_engine_;
  LayerPtr model_;
  int quantized_layers_ = 0;
};

}  // namespace yoloc
