#pragma once
// Top-level YOLoC deployment API (paper Sec. 3.3, Fig. 9).
//
// Historically this class fused one-time network lowering with per-request
// execution state. It is now a thin facade over the runtime split:
//   * DeploymentPlan    — immutable deploy-time product (BN folding, int8
//                         quantization with ROM/SRAM engine selection,
//                         calibrated activation ranges),
//   * ExecutionContext  — the facade's single serving context (noise RNG
//                         streams, run statistics, scratch buffers).
// One framework == one plan + one context, preserving the original
// single-stream semantics (stats accumulate across infer() calls until
// reset_stats()). For parallel traffic, share framework.plan() across
// many ExecutionContexts or put an InferenceServer in front of it
// (src/runtime/inference_server.hpp).

#include <memory>

#include "data/classification.hpp"
#include "runtime/deployment_plan.hpp"
#include "runtime/execution_context.hpp"

namespace yoloc {

/// DeploymentOptions (macros, bit widths, mode) plus the facade-owned
/// serving seed. Extending the plan options keeps the two structs from
/// drifting — a field added to DeploymentOptions reaches the facade
/// automatically.
struct FrameworkOptions : DeploymentOptions {
  std::uint64_t noise_seed = 2024;
};

class YolocFramework {
 public:
  /// Takes ownership of the trained model. Residency flags must already
  /// be set; `calibration_images` drive activation-range calibration.
  YolocFramework(LayerPtr trained_model, const Tensor& calibration_images,
                 FrameworkOptions options);

  /// Quantized inference through the macro models.
  Tensor infer(const Tensor& images);

  /// Top-1 accuracy of the deployed (quantized, analog) model.
  double evaluate_accuracy(const LabeledDataset& dataset,
                           int batch_size = 64);

  /// Activity of the ROM / SRAM macros since the last reset.
  [[nodiscard]] const MacroRunStats& rom_stats() const;
  [[nodiscard]] const MacroRunStats& sram_stats() const;
  void reset_stats();

  /// Total modeled macro energy [pJ] since the last reset.
  [[nodiscard]] double total_energy_pj() const;

  [[nodiscard]] int quantized_layer_count() const {
    return plan_->quantized_layer_count();
  }
  [[nodiscard]] Layer& model() { return plan_->model(); }

  /// The shared deploy-time product — hand this to additional
  /// ExecutionContexts or an InferenceServer for parallel serving.
  [[nodiscard]] const DeploymentPlan& plan() const { return *plan_; }
  /// The facade's own serving context.
  [[nodiscard]] ExecutionContext& context() { return *context_; }

 private:
  std::unique_ptr<DeploymentPlan> plan_;
  std::unique_ptr<ExecutionContext> context_;
};

}  // namespace yoloc
