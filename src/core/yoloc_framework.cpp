#include "core/yoloc_framework.hpp"

#include "common/check.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/trainer.hpp"
#include "tensor/ops.hpp"

namespace yoloc {

FrameworkOptions::FrameworkOptions()
    : rom_macro(default_rom_macro()), sram_macro(default_sram_macro()) {}

YolocFramework::YolocFramework(LayerPtr trained_model,
                               const Tensor& calibration_images,
                               FrameworkOptions options)
    : options_(std::move(options)),
      rom_macro_(options_.rom_macro),
      sram_macro_(options_.sram_macro),
      rom_engine_(std::make_unique<MacroMvmEngine>(rom_macro_, options_.mode,
                                                   options_.noise_seed)),
      sram_engine_(std::make_unique<MacroMvmEngine>(
          sram_macro_, options_.mode, options_.noise_seed ^ 0x5A5A)),
      model_(std::move(trained_model)) {
  YOLOC_CHECK(model_ != nullptr, "framework: null model");
  fold_batchnorm(*model_);
  quantized_layers_ = lower_network(*model_);
  YOLOC_CHECK(quantized_layers_ > 0, "framework: nothing to quantize");
  calibrate_quantized(*model_, calibration_images);
  reset_stats();  // calibration passes should not count as inference cost
}

int YolocFramework::lower_network(Layer& node) {
  int replaced = 0;
  const auto children = node.children();
  for (std::size_t i = 0; i < children.size(); ++i) {
    Layer* child = children[i];
    if (auto* conv = dynamic_cast<Conv2d*>(child)) {
      MacroMvmEngine& engine = conv->weight().rom_resident
                                   ? *rom_engine_
                                   : *sram_engine_;
      node.replace_child(i, std::make_unique<QuantConv2d>(
                                *conv, engine, options_.weight_bits,
                                options_.act_bits));
      ++replaced;
    } else if (auto* lin = dynamic_cast<Linear*>(child)) {
      MacroMvmEngine& engine =
          lin->weight().rom_resident ? *rom_engine_ : *sram_engine_;
      node.replace_child(i, std::make_unique<QuantLinear>(
                                *lin, engine, options_.weight_bits,
                                options_.act_bits));
      ++replaced;
    } else {
      replaced += lower_network(*child);
    }
  }
  return replaced;
}

Tensor YolocFramework::infer(const Tensor& images) {
  return model_->forward(images, /*train=*/false);
}

double YolocFramework::evaluate_accuracy(const LabeledDataset& dataset,
                                         int batch_size) {
  return evaluate_classifier(*model_, dataset.images, dataset.labels,
                             batch_size);
}

const MacroRunStats& YolocFramework::rom_stats() const {
  return rom_engine_->stats();
}

const MacroRunStats& YolocFramework::sram_stats() const {
  return sram_engine_->stats();
}

void YolocFramework::reset_stats() {
  rom_engine_->reset_stats();
  sram_engine_->reset_stats();
}

double YolocFramework::total_energy_pj() const {
  return rom_engine_->stats().energy_pj() + sram_engine_->stats().energy_pj();
}

}  // namespace yoloc
