#include "core/yoloc_framework.hpp"

#include "nn/trainer.hpp"

namespace yoloc {

YolocFramework::YolocFramework(LayerPtr trained_model,
                               const Tensor& calibration_images,
                               FrameworkOptions options) {
  plan_ = std::make_unique<DeploymentPlan>(
      std::move(trained_model), calibration_images,
      static_cast<DeploymentOptions>(options));  // slice off the plan part
  context_ = std::make_unique<ExecutionContext>(*plan_, options.noise_seed);
}

Tensor YolocFramework::infer(const Tensor& images) {
  return context_->infer(images);
}

double YolocFramework::evaluate_accuracy(const LabeledDataset& dataset,
                                         int batch_size) {
  return evaluate_classifier(
      [this](const Tensor& batch) { return infer(batch); }, dataset.images,
      dataset.labels, batch_size);
}

const MacroRunStats& YolocFramework::rom_stats() const {
  return context_->rom_stats();
}

const MacroRunStats& YolocFramework::sram_stats() const {
  return context_->sram_stats();
}

void YolocFramework::reset_stats() { context_->reset_stats(); }

double YolocFramework::total_energy_pj() const {
  return context_->total_energy_pj();
}

}  // namespace yoloc
