#include "core/macro_engine.hpp"

#include <vector>

#include "common/check.hpp"

namespace yoloc {

MacroMvmEngine::MacroMvmEngine(const CimMacro& macro, Mode mode,
                               const PackedWeightsCache* packed_cache)
    : macro_(&macro), mode_(mode), packed_cache_(packed_cache) {}

std::string MacroMvmEngine::name() const {
  return mode_ == Mode::kAnalog ? "macro-analog" : "macro-exact-cost";
}

void MacroMvmEngine::mvm_batch(const std::int8_t* w, int m, int k,
                               const std::uint8_t* x, int p, std::int32_t* y,
                               MvmSession& session) const {
  YOLOC_CHECK(m > 0 && k > 0 && p > 0, "macro engine: bad MVM shape");
  YOLOC_CHECK(session.stats != nullptr,
              "macro engine: session must carry run stats");
  YOLOC_CHECK(mode_ != Mode::kAnalog || session.rng != nullptr,
              "macro engine: analog mode needs a session noise rng");
  MacroRunStats& stats = *session.stats;
  const int rows = macro_->config().geometry.rows;

  for (std::size_t i = 0; i < static_cast<std::size_t>(m) * p; ++i) y[i] = 0;

  // Tiling buffers come from the session scratch when available so the
  // serve-time hot loop stops allocating per layer.
  MvmScratch local_scratch;
  MvmScratch& scratch =
      session.scratch != nullptr ? *session.scratch : local_scratch;
  std::vector<std::uint8_t>& x_chunk = scratch.x_chunk;
  std::vector<std::int32_t>& y_partial = scratch.y_partial;
  x_chunk.resize(static_cast<std::size_t>(rows));
  y_partial.resize(static_cast<std::size_t>(m));

  if (packed_cache_ != nullptr) {
    // Fast path: weight bit-planes were expanded once at deploy time (or
    // on first touch); per column only the activation vector moves. The
    // (k-tile, column) loop order matches the legacy path below so the
    // analog RNG draw sequence is identical.
    // Exact-cost mode never reads the bit-planes (it MACs the raw int8
    // rows), so it requests the boundaries-only packing.
    const PackedRomWeights& packed = packed_cache_->get_or_pack(
        w, m, k, macro_->config().geometry,
        /*pack_planes=*/mode_ != Mode::kExactCost);
    for (int tile = 0; tile < packed.tile_count(); ++tile) {
      const PackedRomWeights::Tile& t = packed.tile(tile);
      for (int col = 0; col < p; ++col) {
        for (int i = 0; i < t.k_size; ++i) {
          x_chunk[static_cast<std::size_t>(i)] =
              x[static_cast<std::size_t>(t.k0 + i) * p + col];
        }
        if (mode_ == Mode::kAnalog) {
          macro_->mvm_packed(packed, tile, x_chunk.data(), y_partial.data(),
                             *session.rng, stats);
        } else {
          macro_->mvm_packed_exact_cost(packed, tile, w, x_chunk.data(),
                                        y_partial.data(), stats);
        }
        for (int j = 0; j < m; ++j) {
          y[static_cast<std::size_t>(j) * p + col] +=
              y_partial[static_cast<std::size_t>(j)];
        }
      }
    }
    return;
  }

  // Legacy path (also the packing-free baseline the macro bench times):
  // tile the reduction dimension over subarray row capacity; partial sums
  // accumulate digitally (the shift-add backend).
  std::vector<std::int8_t>& w_chunk = scratch.w_chunk;
  for (int k0 = 0; k0 < k; k0 += rows) {
    const int k_size = std::min(rows, k - k0);
    w_chunk.resize(static_cast<std::size_t>(m) * k_size);
    for (int j = 0; j < m; ++j) {
      const std::int8_t* src = w + static_cast<std::size_t>(j) * k + k0;
      std::copy(src, src + k_size,
                w_chunk.begin() + static_cast<std::size_t>(j) * k_size);
    }
    for (int col = 0; col < p; ++col) {
      for (int i = 0; i < k_size; ++i) {
        x_chunk[static_cast<std::size_t>(i)] =
            x[static_cast<std::size_t>(k0 + i) * p + col];
      }
      if (mode_ == Mode::kAnalog) {
        macro_->mvm(w_chunk.data(), m, k_size, x_chunk.data(),
                    y_partial.data(), *session.rng, stats);
      } else {
        macro_->mvm_exact_cost(w_chunk.data(), m, k_size, x_chunk.data(),
                               y_partial.data(), stats);
      }
      for (int j = 0; j < m; ++j) {
        y[static_cast<std::size_t>(j) * p + col] +=
            y_partial[static_cast<std::size_t>(j)];
      }
    }
  }
}

}  // namespace yoloc
