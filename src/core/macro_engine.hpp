#pragma once
// MvmEngine backed by the CiM macro model: every integer MVM issued by a
// quantized layer is tiled over macro subarrays and executed through the
// analog bitline/ADC path (or the exact-cost path), accumulating
// energy/latency statistics along the way.
//
// This is the piece that closes the loop between the NN substrate and the
// circuit substrate: running a quantized network with this engine yields
// simultaneously (a) task accuracy under analog non-idealities and
// (b) measured compute energy per inference.

#include <memory>

#include "macro/cim_macro.hpp"
#include "nn/quantize.hpp"

namespace yoloc {

class MacroMvmEngine final : public MvmEngine {
 public:
  enum class Mode {
    kAnalog,     // bitline + ADC + mismatch noise (accuracy + cost)
    kExactCost,  // bit-exact math, modeled cost (cost-only studies)
  };

  MacroMvmEngine(const CimMacro& macro, Mode mode, std::uint64_t seed);

  void mvm_batch(const std::int8_t* w, int m, int k, const std::uint8_t* x,
                 int p, std::int32_t* y) override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const MacroRunStats& stats() const { return stats_; }
  void reset_stats() { stats_ = MacroRunStats{}; }

 private:
  const CimMacro* macro_;
  Mode mode_;
  Rng rng_;
  MacroRunStats stats_;
};

}  // namespace yoloc
