#pragma once
// MvmEngine backed by the CiM macro model: every integer MVM issued by a
// quantized layer is tiled over macro subarrays and executed through the
// analog bitline/ADC path (or the exact-cost path), accumulating
// energy/latency statistics along the way.
//
// This is the piece that closes the loop between the NN substrate and the
// circuit substrate: running a quantized network with this engine yields
// simultaneously (a) task accuracy under analog non-idealities and
// (b) measured compute energy per inference.
//
// The engine itself is immutable and reentrant: it holds only the macro
// model, the mode, and (optionally) a pointer to a PackedWeightsCache.
// The noise RNG stream and the run statistics travel in the caller's
// MvmSession, so any number of requests can execute through one engine
// concurrently, each with its own session. Because a session is REQUIRED
// (stats always, rng in analog mode), this engine cannot be direct-bound
// to quantized layers the way the sessionless ExactMvmEngine can — drive
// it through an ExecutionContext / MvmBinding (src/runtime/), which wires
// a session per request.
//
// Fast path: when a cache is attached, mvm_batch resolves (or builds,
// once) the PackedRomWeights for the layer's weight buffer and drives
// CimMacro::mvm_packed / mvm_packed_exact_cost per (k-tile, column) —
// bit-identical to the legacy per-call path, including the RNG draw
// order, so deployments can switch it on without changing a single
// output. Without a cache the engine behaves exactly as before the
// packing existed (the pre-packing baseline the macro bench compares
// against).

#include "macro/cim_macro.hpp"
#include "macro/packed_weights.hpp"
#include "nn/quantize.hpp"

namespace yoloc {

class MacroMvmEngine final : public MvmEngine {
 public:
  enum class Mode {
    kAnalog,     // bitline + ADC + mismatch noise (accuracy + cost)
    kExactCost,  // bit-exact math, modeled cost (cost-only studies)
  };

  /// `packed_cache`, when non-null, must outlive the engine and be
  /// dedicated to this macro's geometry (a DeploymentPlan owns one per
  /// engine). Null disables the packed fast path.
  MacroMvmEngine(const CimMacro& macro, Mode mode,
                 const PackedWeightsCache* packed_cache = nullptr);

  // Note: the base class's sessionless mvm_batch convenience is
  // deliberately NOT re-exposed — this engine requires a session, so the
  // hidden overload turns a guaranteed runtime throw into a compile error.

  /// Requires session.stats; kAnalog additionally requires session.rng.
  void mvm_batch(const std::int8_t* w, int m, int k, const std::uint8_t* x,
                 int p, std::int32_t* y, MvmSession& session) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const CimMacro& macro() const { return *macro_; }
  [[nodiscard]] Mode mode() const { return mode_; }
  [[nodiscard]] const PackedWeightsCache* packed_cache() const {
    return packed_cache_;
  }

 private:
  const CimMacro* macro_;
  Mode mode_;
  const PackedWeightsCache* packed_cache_;
};

}  // namespace yoloc
