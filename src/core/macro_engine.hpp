#pragma once
// MvmEngine backed by the CiM macro model: every integer MVM issued by a
// quantized layer is tiled over macro subarrays and executed through the
// analog bitline/ADC path (or the exact-cost path), accumulating
// energy/latency statistics along the way.
//
// This is the piece that closes the loop between the NN substrate and the
// circuit substrate: running a quantized network with this engine yields
// simultaneously (a) task accuracy under analog non-idealities and
// (b) measured compute energy per inference.
//
// The engine itself is immutable and reentrant: it holds only the macro
// model and the mode. The noise RNG stream and the run statistics travel
// in the caller's MvmSession, so any number of requests can execute
// through one engine concurrently, each with its own session. Because a
// session is REQUIRED (stats always, rng in analog mode), this engine
// cannot be direct-bound to quantized layers the way the sessionless
// ExactMvmEngine can — drive it through an ExecutionContext / MvmBinding
// (src/runtime/), which wires a session per request.

#include "macro/cim_macro.hpp"
#include "nn/quantize.hpp"

namespace yoloc {

class MacroMvmEngine final : public MvmEngine {
 public:
  enum class Mode {
    kAnalog,     // bitline + ADC + mismatch noise (accuracy + cost)
    kExactCost,  // bit-exact math, modeled cost (cost-only studies)
  };

  MacroMvmEngine(const CimMacro& macro, Mode mode);

  // Note: the base class's sessionless mvm_batch convenience is
  // deliberately NOT re-exposed — this engine requires a session, so the
  // hidden overload turns a guaranteed runtime throw into a compile error.

  /// Requires session.stats; kAnalog additionally requires session.rng.
  void mvm_batch(const std::int8_t* w, int m, int k, const std::uint8_t* x,
                 int p, std::int32_t* y, MvmSession& session) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const CimMacro& macro() const { return *macro_; }
  [[nodiscard]] Mode mode() const { return mode_; }

 private:
  const CimMacro* macro_;
  Mode mode_;
};

}  // namespace yoloc
