#include "mapping/conv_mapping.hpp"

namespace yoloc {

MvmShape conv_to_mvm(int in_ch, int out_ch, int kernel, int out_h,
                     int out_w) {
  YOLOC_CHECK(in_ch > 0 && out_ch > 0 && kernel > 0 && out_h > 0 && out_w > 0,
              "conv_to_mvm: bad geometry");
  MvmShape s;
  s.m = out_ch;
  s.k = in_ch * kernel * kernel;
  s.vectors = out_h * out_w;
  return s;
}

MvmShape fc_to_mvm(int in_features, int out_features) {
  YOLOC_CHECK(in_features > 0 && out_features > 0, "fc_to_mvm: bad geometry");
  MvmShape s;
  s.m = out_features;
  s.k = in_features;
  s.vectors = 1;
  return s;
}

}  // namespace yoloc
