#pragma once
// Placement of layer weight matrices onto CiM subarrays.
//
// A subarray holds `rows` x `weights_per_row` weights (each weight is
// weight_bits adjacent columns). Layer matrices are cut into tiles of at
// most (rows x weights_per_row); the mapper places tiles either:
//   * kDedicated - every layer starts on a fresh subarray (simple
//     schedule, poor ADC/column utilization for narrow layers), or
//   * kPacked    - tiles from different layers share subarray columns
//     (the paper's optimization: "storing the weights of different
//     layers to the same sub-array, so as to achieve high ADC
//     utilization and thus reduced latency").
//
// Tiles never share columns *within* a row range they both occupy; the
// shelf-packing model places tiles side by side along the column axis and
// opens a new subarray when the shelf is full.

#include <string>
#include <vector>

#include "macro/macro_config.hpp"
#include "mapping/conv_mapping.hpp"

namespace yoloc {

enum class MappingStrategy { kDedicated, kPacked };

struct LayerMvm {
  int layer_id = 0;
  std::string name;
  MvmShape shape;
};

struct WeightTile {
  int layer_id = 0;
  int subarray = 0;     // global subarray index
  int row_offset = 0;   // first row within the subarray
  int col_offset = 0;   // first weight column within the subarray
  int k_size = 0;       // rows occupied
  int m_size = 0;       // weight columns occupied
};

struct MappingPlan {
  std::vector<WeightTile> tiles;
  int subarrays_used = 0;
  /// Fraction of occupied subarray weight slots actually holding weights.
  double utilization = 0.0;
  /// Tiles per layer (row tiles x column tiles), for schedule building.
  std::vector<int> tiles_per_layer;
};

class WeightMapper {
 public:
  explicit WeightMapper(const MacroGeometry& geometry);

  [[nodiscard]] MappingPlan map(const std::vector<LayerMvm>& layers,
                                MappingStrategy strategy) const;

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int weights_per_row() const { return weights_per_row_; }

 private:
  int rows_;
  int weights_per_row_;
};

}  // namespace yoloc
