#include "mapping/weight_mapper.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace yoloc {

WeightMapper::WeightMapper(const MacroGeometry& geometry)
    : rows_(geometry.rows), weights_per_row_(geometry.weights_per_row()) {
  YOLOC_CHECK(rows_ > 0 && weights_per_row_ > 0, "mapper: bad geometry");
}

MappingPlan WeightMapper::map(const std::vector<LayerMvm>& layers,
                              MappingStrategy strategy) const {
  MappingPlan plan;
  plan.tiles_per_layer.assign(layers.size(), 0);

  // Shelf state for packed mode: current subarray + column cursor.
  int current_subarray = -1;
  int col_cursor = 0;

  double occupied_weights = 0.0;

  for (std::size_t li = 0; li < layers.size(); ++li) {
    const LayerMvm& layer = layers[li];
    const int row_tiles = (layer.shape.k + rows_ - 1) / rows_;
    const int col_tiles_total =
        (layer.shape.m + weights_per_row_ - 1) / weights_per_row_;
    plan.tiles_per_layer[li] = row_tiles * col_tiles_total;

    if (strategy == MappingStrategy::kDedicated || current_subarray < 0) {
      // Fresh subarray for this layer (or very first allocation).
      current_subarray = plan.subarrays_used;
      col_cursor = 0;
    }

    int m_remaining = layer.shape.m;
    while (m_remaining > 0) {
      const int m_size = std::min(m_remaining, weights_per_row_ - col_cursor);
      if (m_size <= 0) {
        // Shelf full: open a new subarray.
        current_subarray = plan.subarrays_used;
        col_cursor = 0;
        continue;
      }
      // All row tiles of this column strip stack vertically; a strip
      // taller than one subarray spills into additional subarrays
      // directly below (modeled as separate subarray indices).
      int k_remaining = layer.shape.k;
      int strip_subarray = current_subarray;
      while (k_remaining > 0) {
        const int k_size = std::min(k_remaining, rows_);
        WeightTile tile;
        tile.layer_id = layer.layer_id;
        tile.subarray = strip_subarray;
        tile.row_offset = 0;
        tile.col_offset = col_cursor;
        tile.k_size = k_size;
        tile.m_size = m_size;
        plan.tiles.push_back(tile);
        occupied_weights += static_cast<double>(k_size) * m_size;
        plan.subarrays_used = std::max(plan.subarrays_used, strip_subarray + 1);
        k_remaining -= k_size;
        if (k_remaining > 0) {
          // Next row tile of the same strip: next subarray index.
          ++strip_subarray;
        }
      }
      col_cursor += m_size;
      m_remaining -= m_size;
      if (col_cursor >= weights_per_row_) {
        current_subarray = plan.subarrays_used;
        col_cursor = 0;
      } else if (strategy == MappingStrategy::kDedicated && m_remaining == 0) {
        // Dedicated: do not let the next layer reuse this shelf.
        current_subarray = -1;
      }
    }
    if (strategy == MappingStrategy::kDedicated) current_subarray = -1;
  }

  const double capacity =
      static_cast<double>(plan.subarrays_used) * rows_ * weights_per_row_;
  plan.utilization = capacity > 0.0 ? occupied_weights / capacity : 0.0;
  return plan;
}

}  // namespace yoloc
