#pragma once
// Convolution -> matrix-vector-multiplication lowering.
//
// A conv layer (in_ch, out_ch, k, stride) over an HxW input becomes the
// MVM  Y = W X  with W of shape (out_ch x in_ch*k*k) and one column of X
// per output pixel. The CiM array stores W (rows = patch dimension,
// columns = output channels x weight_bits) and the pixels stream through
// as wordline vectors.

#include "common/check.hpp"

namespace yoloc {

struct MvmShape {
  int m = 0;         // outputs (weight-matrix rows)
  int k = 0;         // reduction length (array rows)
  int vectors = 0;   // input vectors per inference (output pixels)

  [[nodiscard]] double weight_count() const {
    return static_cast<double>(m) * k;
  }
  [[nodiscard]] double macs() const {
    return static_cast<double>(m) * k * vectors;
  }
};

/// Shape of the MVM a conv layer lowers to.
MvmShape conv_to_mvm(int in_ch, int out_ch, int kernel, int out_h, int out_w);

/// Fully-connected layers are 1-vector MVMs.
MvmShape fc_to_mvm(int in_features, int out_features);

}  // namespace yoloc
