#include "circuit/cim_array.hpp"

#include <cmath>

#include "common/check.hpp"

namespace yoloc {

void ArrayReadStats::accumulate(const ArrayReadStats& other) {
  adc_conversions += other.adc_conversions;
  wl_pulses += other.wl_pulses;
  shift_adds += other.shift_adds;
  adc_energy_pj += other.adc_energy_pj;
  precharge_energy_pj += other.precharge_energy_pj;
  wl_energy_pj += other.wl_energy_pj;
  shift_add_energy_pj += other.shift_add_energy_pj;
}

namespace {

/// One ADC LSB spans an integer number of cell-discharge steps so that
/// in-range counts reconstruct exactly: ceil(group / 2^bits). Groups
/// larger than the code range saturate at the top codes (the paper's
/// aggressive many-rows-per-activation trade-off).
int lsb_count_steps(int group_size, int adc_bits) {
  const int levels = 1 << adc_bits;
  return (group_size + levels - 1) / levels;
}

}  // namespace

CimArrayModel::CimArrayModel(const BitlineParams& bitline, AdcParams adc,
                             const ArrayEnergyParams& energy, int group_size)
    : bitline_(bitline),
      adc_((adc.v_hi = bitline.v_precharge,
            // ADC full-scale = (levels-1) LSBs of lsb_count_steps cells
            // each, anchored at the precharge voltage. The low reference
            // may extend below the discharge floor (codes down there are
            // simply never produced); what matters is that one LSB spans
            // exactly lsb_count_steps cell-discharge steps.
            adc.v_lo = bitline.v_precharge -
                       ((1 << adc.bits) - 1) *
                           lsb_count_steps(group_size, adc.bits) *
                           (bitline.i_cell_ua * bitline.t_pulse_ns /
                            bitline.c_bl_ff),
            adc)),
      energy_(energy),
      group_size_(group_size) {
  YOLOC_CHECK(group_size >= 1, "cim array: group_size >= 1");
  YOLOC_CHECK(group_size <= bitline_.max_resolvable_count(),
              "cim array: group discharge exceeds bitline range; reduce "
              "group size or cell current");
  counts_per_code_ =
      static_cast<double>(lsb_count_steps(group_size, adc_.params().bits));
}

// NOTE: CimMacro::mvm_packed inlines this chain (constants from
// read_chain_consts() below); any change here must be mirrored there.
// The packed-vs-legacy bit-identity suite (`ctest -L macro`) fails loudly
// on drift.
double CimArrayModel::read_count(int exact_count, int active_rows, Rng& rng,
                                 ArrayReadStats& stats) const {
  YOLOC_CHECK(exact_count >= 0 && exact_count <= active_rows,
              "cim array: count exceeds active rows");
  YOLOC_CHECK(active_rows <= group_size_, "cim array: group overflow");
  double effective = exact_count;
  const double sigma = bitline_.params().sigma_cell;
  if (sigma > 0.0 && exact_count > 0) {
    effective += rng.normal(0.0, sigma * std::sqrt(exact_count));
    if (effective < 0.0) effective = 0.0;
  }
  const double v = bitline_.voltage_for_count(effective);
  const int code = adc_.quantize(v, rng);
  stats.adc_conversions += 1;
  stats.adc_energy_pj += adc_.params().energy_pj;
  stats.precharge_energy_pj += bitline_.precharge_energy_pj(effective);
  return code * counts_per_code_;
}

double CimArrayModel::read_count(int exact_count, int active_rows, Rng& rng,
                                 ArrayReadStats& stats,
                                 const AdcDrift& drift) const {
  return read_count(exact_count, active_rows, rng, stats) * drift.gain +
         drift.offset_counts;
}

double CimArrayModel::read_count_ideal(int exact_count,
                                       ArrayReadStats& stats) const {
  const double v = bitline_.voltage_for_count(exact_count);
  const int code = adc_.quantize_ideal(v);
  stats.adc_conversions += 1;
  stats.adc_energy_pj += adc_.params().energy_pj;
  stats.precharge_energy_pj += bitline_.precharge_energy_pj(exact_count);
  return code * counts_per_code_;
}

CimArrayModel::ReadChainConsts CimArrayModel::read_chain_consts() const {
  ReadChainConsts consts;
  const BitlineParams& bl = bitline_.params();
  const AdcParams& adc = adc_.params();
  consts.sigma_cell = bl.sigma_cell;
  consts.noise_sigma_v = adc.noise_sigma_v;
  consts.delta_v = bitline_.delta_v_per_cell();
  consts.v_precharge = bl.v_precharge;
  consts.v_floor = bl.v_floor;
  consts.v_lo = adc.v_lo;
  consts.v_hi = adc.v_hi;
  consts.lsb = adc_.lsb_voltage();
  consts.levels = adc_.code_count();
  consts.counts_per_code = counts_per_code_;
  consts.adc_energy_pj = adc.energy_pj;
  // precharge_energy_pj computes ((c_bl * v_pre) * dv) * 1e-3; hoisting
  // the (c_bl * v_pre) product preserves the rounding order exactly.
  consts.cv = bl.c_bl_ff * bl.v_precharge;
  consts.bl_range = bl.v_precharge - bl.v_floor;
  return consts;
}

void CimArrayModel::charge_wl_pulses(std::uint64_t pulses,
                                     ArrayReadStats& stats) const {
  stats.wl_pulses += pulses;
  stats.wl_energy_pj +=
      static_cast<double>(pulses) * (energy_.wl_pulse_pj + energy_.dac_driver_pj);
}

void CimArrayModel::charge_shift_adds(std::uint64_t ops,
                                      ArrayReadStats& stats) const {
  stats.shift_adds += ops;
  stats.shift_add_energy_pj += static_cast<double>(ops) * energy_.shift_add_pj;
}

}  // namespace yoloc
