#pragma once
// Analytical bitline charge-sharing model.
//
// SPICE-substitution layer (see DESIGN.md): the paper extracts macro
// behaviour from 28nm parasitic extraction + SPICE. The behaviour that
// matters to everything downstream is the transfer function
//
//   number of ON cells -> bitline voltage -> ADC code
//
// including its error sources. This model captures it analytically: each
// ON cell sinks a nominally identical charge packet I_cell * t_pulse from
// the precharged bitline capacitance C_bl, so the bitline voltage falls
// linearly with the ON-cell count until it saturates at the discharge
// floor. Cell-to-cell current mismatch is modeled as i.i.d. Gaussian
// relative variation (sigma_cell), which is the dominant analog error in
// charge-domain CiM; ROM cells (single fixed transistor, no storage-node
// fight) get a smaller sigma than 6T SRAM compute cells.

#include <cstdint>

namespace yoloc {

struct BitlineParams {
  double c_bl_ff = 100.0;       // bitline capacitance [fF]
  double v_precharge = 0.9;     // precharge voltage [V]
  double v_floor = 0.0;         // discharge floor [V]
  double i_cell_ua = 2.0;       // per-cell discharge current [uA]
  double t_pulse_ns = 0.35;     // wordline pulse width [ns]
  /// Relative per-cell current mismatch (1 sigma). ROM ~2%, SRAM ~5%.
  double sigma_cell = 0.02;

  bool operator==(const BitlineParams&) const = default;
};

class BitlineModel {
 public:
  explicit BitlineModel(const BitlineParams& params);

  /// Voltage drop contributed by a single ON cell [V].
  [[nodiscard]] double delta_v_per_cell() const { return delta_v_; }

  /// Bitline voltage after discharge by `effective_count` ON cells
  /// (fractional counts model analog mismatch). Clamps at v_floor.
  [[nodiscard]] double voltage_for_count(double effective_count) const;

  /// Largest count distinguishable before the bitline saturates.
  [[nodiscard]] int max_resolvable_count() const;

  /// Energy to restore the bitline after a discharge of `count` cells
  /// [pJ]: E = C_bl * V_pre * dV (charge drawn from the precharge rail).
  [[nodiscard]] double precharge_energy_pj(double count) const;

  [[nodiscard]] const BitlineParams& params() const { return params_; }

 private:
  BitlineParams params_;
  double delta_v_;  // I * t / C [V]
};

}  // namespace yoloc
