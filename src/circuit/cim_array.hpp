#pragma once
// Column read model: ties cell mismatch, bitline discharge and ADC
// quantization into a single "analog count readout" primitive, plus the
// per-event energy accounting the macro layer aggregates.
//
// The macro performs, per (row-group, input-bit, weight-bit-column):
//   exact_count  = number of cells with (input bit == 1 && weight bit == 1)
//   effective    = exact_count + N(0, sigma_cell * sqrt(exact_count))
//                  (sum of i.i.d. per-cell current mismatch)
//   v_bl         = bitline.voltage_for_count(effective)
//   code         = adc.quantize(v_bl)
//   estimate     = code scaled back to counts
// The estimate is exact when the row-group size matches the ADC level
// count and sigma is ~0; widening the group beyond the ADC range (the
// paper's aggressive 128-rows-per-activation mode) trades accuracy for
// fewer conversions — an ablation benchmark sweeps exactly this.

#include "circuit/adc.hpp"
#include "circuit/bitline.hpp"
#include "common/rng.hpp"

namespace yoloc {

/// Per-event digital/driver energies accompanying each analog read.
struct ArrayEnergyParams {
  double wl_pulse_pj = 0.0006;   // one wordline pulse on one row
  double shift_add_pj = 0.012;   // one digital shift-add accumulation
  double dac_driver_pj = 0.001;  // input-bit driver, per row per cycle

  bool operator==(const ArrayEnergyParams&) const = default;
};

/// Accumulated activity counters for one or more array operations.
struct ArrayReadStats {
  std::uint64_t adc_conversions = 0;
  std::uint64_t wl_pulses = 0;
  std::uint64_t shift_adds = 0;
  double adc_energy_pj = 0.0;
  double precharge_energy_pj = 0.0;
  double wl_energy_pj = 0.0;
  double shift_add_energy_pj = 0.0;

  [[nodiscard]] double total_energy_pj() const {
    return adc_energy_pj + precharge_energy_pj + wl_energy_pj +
           shift_add_energy_pj;
  }
  void accumulate(const ArrayReadStats& other);
};

/// Per-column ADC transfer drift (fault injection, macro/fault_model.*):
/// the drifted count estimate is estimate * gain + offset_counts,
/// applied AFTER the canonical read chain so the underlying conversion
/// (and its stats/energy accounting) is untouched. Identity by default.
struct AdcDrift {
  double gain = 1.0;
  double offset_counts = 0.0;
};

class CimArrayModel {
 public:
  /// `group_size` is the number of simultaneously activated rows; the ADC
  /// full-scale is matched to that discharge range.
  CimArrayModel(const BitlineParams& bitline, AdcParams adc,
                const ArrayEnergyParams& energy, int group_size);

  /// One column read: digitize `exact_count` ON cells out of
  /// `active_rows` pulsed rows. Returns the count estimate; accumulates
  /// conversion + precharge energy into `stats`.
  [[nodiscard]] double read_count(int exact_count, int active_rows, Rng& rng,
                                  ArrayReadStats& stats) const;

  /// read_count() with a drifted ADC transfer applied to the estimate —
  /// the fault-injection overload. Same draws, same stats; only the
  /// returned count estimate is transformed. Kept as a separate overload
  /// so the fault-off call path is literally the function above.
  [[nodiscard]] double read_count(int exact_count, int active_rows, Rng& rng,
                                  ArrayReadStats& stats,
                                  const AdcDrift& drift) const;

  /// Ideal (noise-free, but still ADC-quantized) variant.
  [[nodiscard]] double read_count_ideal(int exact_count,
                                        ArrayReadStats& stats) const;

  /// Charge the wordline-driver energy for `pulses` input pulses.
  void charge_wl_pulses(std::uint64_t pulses, ArrayReadStats& stats) const;
  /// Charge digital accumulation energy for `ops` shift-adds.
  void charge_shift_adds(std::uint64_t ops, ArrayReadStats& stats) const;

  /// Constants of the read_count() chain, hoisted for inlined fast
  /// paths (CimMacro::mvm_packed). Derived HERE, next to read_count, so
  /// a physics change to the chain cannot miss them — any drift between
  /// the two is pinned by the packed-vs-legacy bit-identity suite
  /// (`ctest -L macro`).
  struct ReadChainConsts {
    double sigma_cell = 0.0;     // bitline cell mismatch (1 sigma)
    double noise_sigma_v = 0.0;  // ADC input-referred noise
    double delta_v = 0.0;        // per-cell bitline discharge [V]
    double v_precharge = 0.0;
    double v_floor = 0.0;
    double v_lo = 0.0;  // ADC full-scale low (post group matching)
    double v_hi = 0.0;
    double lsb = 0.0;
    int levels = 0;
    double counts_per_code = 0.0;
    double adc_energy_pj = 0.0;
    double cv = 0.0;        // c_bl_ff * v_precharge (legacy product order)
    double bl_range = 0.0;  // v_precharge - v_floor
  };
  [[nodiscard]] ReadChainConsts read_chain_consts() const;

  [[nodiscard]] int group_size() const { return group_size_; }
  [[nodiscard]] double counts_per_code() const { return counts_per_code_; }
  [[nodiscard]] const Adc& adc() const { return adc_; }
  [[nodiscard]] const BitlineModel& bitline() const { return bitline_; }

 private:
  BitlineModel bitline_;
  Adc adc_;
  ArrayEnergyParams energy_;
  int group_size_;
  double counts_per_code_;
};

}  // namespace yoloc
