#pragma once
// Column ADC model (paper Fig. 5: 16 column-sharing 5-bit ADCs).
//
// A SAR-style ADC digitizes the remnant bitline voltage. The model
// quantizes uniformly over [v_lo, v_hi] with optional input-referred
// Gaussian noise and charges a fixed energy per conversion.

#include "common/rng.hpp"

namespace yoloc {

struct AdcParams {
  int bits = 5;
  double v_lo = 0.0;            // full-scale low [V]
  double v_hi = 0.9;            // full-scale high [V]
  double noise_sigma_v = 0.002; // input-referred noise [V, 1 sigma]
  double energy_pj = 0.18;      // per conversion [pJ] (5b SAR @ 28nm class)
  double t_conv_ns = 1.1125;    // conversion time [ns]

  bool operator==(const AdcParams&) const = default;
};

class Adc {
 public:
  explicit Adc(const AdcParams& params);

  /// Digitize a voltage: returns a code in [0, 2^bits - 1]. Codes grow as
  /// the voltage *falls* from v_hi (code 0 = no discharge), matching the
  /// "count of ON cells" convention of the array model.
  [[nodiscard]] int quantize(double voltage, Rng& rng) const;

  /// Deterministic variant (no noise draw) for analysis.
  [[nodiscard]] int quantize_ideal(double voltage) const;

  [[nodiscard]] int code_count() const { return levels_; }
  [[nodiscard]] double lsb_voltage() const { return lsb_; }
  [[nodiscard]] const AdcParams& params() const { return params_; }

 private:
  AdcParams params_;
  int levels_;   // 2^bits
  double lsb_;   // volts per code
};

}  // namespace yoloc
