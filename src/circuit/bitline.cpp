#include "circuit/bitline.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace yoloc {

BitlineModel::BitlineModel(const BitlineParams& params) : params_(params) {
  YOLOC_CHECK(params.c_bl_ff > 0.0, "bitline: capacitance must be positive");
  YOLOC_CHECK(params.v_precharge > params.v_floor,
              "bitline: precharge must exceed floor");
  YOLOC_CHECK(params.i_cell_ua > 0.0 && params.t_pulse_ns > 0.0,
              "bitline: cell current and pulse width must be positive");
  // dV = I * t / C. Units: uA * ns / fF = 1e-6 * 1e-9 / 1e-15 = V.
  delta_v_ = params.i_cell_ua * params.t_pulse_ns / params.c_bl_ff;
}

double BitlineModel::voltage_for_count(double effective_count) const {
  const double v = params_.v_precharge - effective_count * delta_v_;
  return std::max(v, params_.v_floor);
}

int BitlineModel::max_resolvable_count() const {
  return static_cast<int>(
      std::floor((params_.v_precharge - params_.v_floor) / delta_v_));
}

double BitlineModel::precharge_energy_pj(double count) const {
  const double dv =
      std::min(count * delta_v_, params_.v_precharge - params_.v_floor);
  // fF * V * V = fJ; convert to pJ.
  return params_.c_bl_ff * params_.v_precharge * dv * 1e-3;
}

}  // namespace yoloc
