#include "circuit/adc.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace yoloc {

Adc::Adc(const AdcParams& params) : params_(params) {
  YOLOC_CHECK(params.bits >= 1 && params.bits <= 12, "adc: bits in [1,12]");
  YOLOC_CHECK(params.v_hi > params.v_lo, "adc: full-scale range inverted");
  levels_ = 1 << params.bits;
  lsb_ = (params.v_hi - params.v_lo) / static_cast<double>(levels_ - 1);
}

int Adc::quantize(double voltage, Rng& rng) const {
  const double noisy =
      voltage + rng.normal(0.0, params_.noise_sigma_v);
  return quantize_ideal(noisy);
}

int Adc::quantize_ideal(double voltage) const {
  const double clamped =
      std::clamp(voltage, params_.v_lo, params_.v_hi);
  const int code =
      static_cast<int>(std::lround((params_.v_hi - clamped) / lsb_));
  return std::clamp(code, 0, levels_ - 1);
}

}  // namespace yoloc
