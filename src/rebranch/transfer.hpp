#pragma once
// Classification transfer-learning harness for the Fig. 10 / Fig. 11
// experiments: pretrain a backbone on the source suite, freeze according
// to a deployment option, fine-tune on a shifted target suite, report
// accuracy + ROM/SRAM memory split.

#include <optional>

#include "data/classification.hpp"
#include "nn/trainer.hpp"
#include "rebranch/rebranch.hpp"

namespace yoloc {

enum class BackboneKind { kVgg8, kResNet18 };

std::string backbone_name(BackboneKind kind);

struct TransferSetup {
  BackboneKind backbone = BackboneKind::kVgg8;
  int image_size = 16;
  int base_width = 8;
  ReBranchConfig rebranch;
  int spwd_decor_bits = 2;

  int pretrain_samples_per_class = 40;
  int target_train_samples_per_class = 30;
  int target_test_samples_per_class = 25;

  TrainConfig pretrain_cfg;
  TrainConfig finetune_cfg;
  std::uint64_t data_seed = 1234;

  TransferSetup() {
    pretrain_cfg.epochs = 12;
    pretrain_cfg.batch_size = 32;
    pretrain_cfg.sgd.lr = 0.08f;
    finetune_cfg.epochs = 8;
    finetune_cfg.batch_size = 32;
    finetune_cfg.sgd.lr = 0.04f;
  }
};

struct TransferOutcome {
  TransferOption option = TransferOption::kAllSram;
  std::string target;
  double accuracy = 0.0;
  DeploymentSplit split;
  /// Memory area from the default ROM/SRAM-CiM macro densities [mm^2].
  double memory_area_mm2 = 0.0;
};

/// Pretrains one source model per network structure (plain / rebranch /
/// spwd) lazily, then evaluates deployment options on transfer targets.
class TransferHarness {
 public:
  explicit TransferHarness(TransferSetup setup);

  /// Run one (option, target) cell of Fig. 10/12's matrices.
  TransferOutcome run(TransferOption opt, const DatasetSpec& target);

  /// Source-suite validation accuracy of the pretrained plain model
  /// (sanity metric).
  double source_accuracy();

  [[nodiscard]] const TransferSetup& setup() const { return setup_; }

 private:
  enum class Structure { kPlain, kReBranch, kSpwd };
  [[nodiscard]] Structure structure_for(TransferOption opt) const;
  LayerPtr build_model(Structure structure, int num_classes) const;
  /// Pretrain (or reuse) the source snapshot for a structure.
  const ParamSnapshot& pretrained(Structure structure);

  TransferSetup setup_;
  DatasetSpec source_spec_;
  LabeledDataset source_train_;
  LabeledDataset source_test_;
  std::optional<ParamSnapshot> plain_snap_;
  std::optional<ParamSnapshot> rebranch_snap_;
  std::optional<ParamSnapshot> spwd_snap_;
  std::optional<double> source_accuracy_;
};

}  // namespace yoloc
