#pragma once
// ROM-CiM-based One-Shot Learning (paper Option I, Fig. 6a): the frozen
// ROM feature extractor feeds an SRAM-TCAM distance comparator. The
// comparator is modeled as a nearest-prototype classifier under L1
// distance (the metric a TCAM-style match line computes).

#include "data/classification.hpp"
#include "nn/container.hpp"

namespace yoloc {

/// Embed images with every layer of `net` except the final Linear head
/// (the zoo models end in [..., GlobalAvgPool, Linear]).
Tensor embed_without_head(Sequential& net, const Tensor& images,
                          int batch_size = 64);

/// Fit per-class mean prototypes on the train split and classify the test
/// split by minimum L1 distance. Returns top-1 accuracy.
double evaluate_rosl(Sequential& net, const LabeledDataset& train,
                     const LabeledDataset& test);

}  // namespace yoloc
