#include "rebranch/rosl.hpp"

#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.hpp"
#include "nn/linear.hpp"
#include "nn/trainer.hpp"

namespace yoloc {

Tensor embed_without_head(Sequential& net, const Tensor& images,
                          int batch_size) {
  YOLOC_CHECK(net.size() >= 2, "rosl: net too shallow");
  YOLOC_CHECK(dynamic_cast<Linear*>(&net.at(net.size() - 1)) != nullptr,
              "rosl: expected a Linear head as the last layer");
  const int n = images.shape()[0];
  Tensor all;
  int dim = -1;
  for (int start = 0; start < n; start += batch_size) {
    const int end = std::min(n, start + batch_size);
    std::vector<int> idx(static_cast<std::size_t>(end - start));
    std::iota(idx.begin(), idx.end(), start);
    Tensor x = gather_batch(images, idx);
    for (std::size_t li = 0; li + 1 < net.size(); ++li) {
      x = net.at(li).forward(x, /*train=*/false);
    }
    YOLOC_CHECK(x.rank() == 2, "rosl: embedding must be rank-2");
    if (dim < 0) {
      dim = x.shape()[1];
      all = Tensor({n, dim});
    }
    for (int i = 0; i < end - start; ++i) {
      for (int f = 0; f < dim; ++f) {
        all.at2(start + i, f) = x.at2(i, f);
      }
    }
  }
  return all;
}

double evaluate_rosl(Sequential& net, const LabeledDataset& train,
                     const LabeledDataset& test) {
  YOLOC_CHECK(train.num_classes == test.num_classes,
              "rosl: class count mismatch");
  Tensor train_emb = embed_without_head(net, train.images);
  Tensor test_emb = embed_without_head(net, test.images);
  const int dim = train_emb.shape()[1];
  const int classes = train.num_classes;

  // Per-class mean prototype.
  Tensor prototypes({classes, dim});
  std::vector<int> counts(static_cast<std::size_t>(classes), 0);
  for (int i = 0; i < train_emb.shape()[0]; ++i) {
    const int c = train.labels[static_cast<std::size_t>(i)];
    ++counts[static_cast<std::size_t>(c)];
    for (int f = 0; f < dim; ++f) prototypes.at2(c, f) += train_emb.at2(i, f);
  }
  for (int c = 0; c < classes; ++c) {
    YOLOC_CHECK(counts[static_cast<std::size_t>(c)] > 0,
                "rosl: class with no training samples");
    const float inv = 1.0f / static_cast<float>(counts[static_cast<std::size_t>(c)]);
    for (int f = 0; f < dim; ++f) prototypes.at2(c, f) *= inv;
  }

  // TCAM-style L1 nearest prototype.
  int correct = 0;
  for (int i = 0; i < test_emb.shape()[0]; ++i) {
    float best = std::numeric_limits<float>::infinity();
    int best_c = 0;
    for (int c = 0; c < classes; ++c) {
      float dist = 0.0f;
      for (int f = 0; f < dim; ++f) {
        dist += std::fabs(test_emb.at2(i, f) - prototypes.at2(c, f));
      }
      if (dist < best) {
        best = dist;
        best_c = c;
      }
    }
    if (best_c == test.labels[static_cast<std::size_t>(i)]) ++correct;
  }
  return test.size() > 0 ? static_cast<double>(correct) / test.size() : 0.0;
}

}  // namespace yoloc
