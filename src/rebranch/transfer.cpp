#include "rebranch/transfer.hpp"

#include "common/check.hpp"
#include "macro/macro_config.hpp"
#include "rebranch/rosl.hpp"

namespace yoloc {

std::string backbone_name(BackboneKind kind) {
  switch (kind) {
    case BackboneKind::kVgg8:
      return "VGG-8";
    case BackboneKind::kResNet18:
      return "ResNet-18";
  }
  return "?";
}

TransferHarness::TransferHarness(TransferSetup setup)
    : setup_(std::move(setup)),
      source_spec_(source_suite_spec(setup_.image_size)) {
  Rng rng(setup_.data_seed);
  source_train_ = generate_classification(
      source_spec_, setup_.pretrain_samples_per_class, rng);
  source_test_ = generate_classification(
      source_spec_, setup_.target_test_samples_per_class, rng);
}

TransferHarness::Structure TransferHarness::structure_for(
    TransferOption opt) const {
  switch (opt) {
    case TransferOption::kReBranch:
      return Structure::kReBranch;
    case TransferOption::kSpwd:
      return Structure::kSpwd;
    default:
      return Structure::kPlain;
  }
}

LayerPtr TransferHarness::build_model(Structure structure,
                                      int num_classes) const {
  ZooConfig zoo;
  zoo.image_size = setup_.image_size;
  zoo.base_width = setup_.base_width;
  zoo.num_classes = num_classes;
  zoo.seed = 99;  // same seed -> same init across options

  ConvUnitFactory factory;
  switch (structure) {
    case Structure::kPlain:
      factory = plain_conv_unit;
      break;
    case Structure::kReBranch:
      factory = make_rebranch_factory(setup_.rebranch);
      break;
    case Structure::kSpwd:
      factory = make_spwd_factory(setup_.spwd_decor_bits);
      break;
  }
  switch (setup_.backbone) {
    case BackboneKind::kVgg8:
      return build_vgg8_lite(zoo, factory);
    case BackboneKind::kResNet18:
      return build_resnet18_lite(zoo, factory);
  }
  YOLOC_CHECK(false, "unknown backbone");
  return nullptr;
}

const ParamSnapshot& TransferHarness::pretrained(Structure structure) {
  std::optional<ParamSnapshot>* slot = nullptr;
  switch (structure) {
    case Structure::kPlain:
      slot = &plain_snap_;
      break;
    case Structure::kReBranch:
      slot = &rebranch_snap_;
      break;
    case Structure::kSpwd:
      slot = &spwd_snap_;
      break;
  }
  if (!slot->has_value()) {
    LayerPtr model = build_model(structure, source_spec_.num_classes);
    (void)train_classifier(*model, source_train_.images,
                           source_train_.labels, setup_.pretrain_cfg);
    if (structure == Structure::kPlain) {
      source_accuracy_ = evaluate_classifier(*model, source_test_.images,
                                             source_test_.labels);
    }
    *slot = snapshot_parameters(*model);
  }
  return slot->value();
}

double TransferHarness::source_accuracy() {
  (void)pretrained(Structure::kPlain);
  return source_accuracy_.value_or(0.0);
}

TransferOutcome TransferHarness::run(TransferOption opt,
                                     const DatasetSpec& target) {
  Rng rng(setup_.data_seed ^ 0xBEEF);
  LabeledDataset train = generate_classification(
      target, setup_.target_train_samples_per_class, rng);
  LabeledDataset test = generate_classification(
      target, setup_.target_test_samples_per_class, rng);

  const Structure structure = structure_for(opt);
  LayerPtr model = build_model(structure, target.num_classes);
  restore_parameters(*model, pretrained(structure));
  apply_transfer_policy(*model, opt);

  TransferOutcome outcome;
  outcome.option = opt;
  outcome.target = target.name;

  if (opt == TransferOption::kRosl) {
    auto* seq = dynamic_cast<Sequential*>(model.get());
    YOLOC_CHECK(seq != nullptr, "rosl: sequential model expected");
    outcome.accuracy = evaluate_rosl(*seq, train, test);
  } else {
    (void)train_classifier(*model, train.images, train.labels,
                           setup_.finetune_cfg);
    outcome.accuracy =
        evaluate_classifier(*model, test.images, test.labels);
  }

  outcome.split = deployment_split(*model, /*weight_bits=*/8,
                                   setup_.spwd_decor_bits);
  outcome.memory_area_mm2 = outcome.split.memory_area_mm2(
      default_rom_macro().density_mb_per_mm2(),
      default_sram_macro().density_mb_per_mm2());
  return outcome;
}

}  // namespace yoloc
