#pragma once
// Quantization-aware convolution for SPWD (paper Option III): the SRAM
// "decoration" branch runs at 2-bit weights, trained with the
// straight-through estimator — forward uses quantized weights, gradients
// flow to the float master copy unchanged.

#include "nn/conv2d.hpp"

namespace yoloc {

class QatConv2d final : public Layer {
 public:
  QatConv2d(int in_channels, int out_channels, int kernel, int stride,
            int pad, int weight_bits, Rng& rng, std::string layer_name);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  [[nodiscard]] std::string name() const override { return name_; }

  [[nodiscard]] int weight_bits() const { return weight_bits_; }

 private:
  std::string name_;
  int weight_bits_;
  Conv2d inner_;
  /// Float master weights; inner_.weight() holds the quantized snapshot
  /// used by forward/backward.
  Parameter master_;
};

}  // namespace yoloc
