#include "rebranch/qat_conv.hpp"

#include "tensor/ops.hpp"
#include "tensor/quant.hpp"

namespace yoloc {

QatConv2d::QatConv2d(int in_channels, int out_channels, int kernel,
                     int stride, int pad, int weight_bits, Rng& rng,
                     std::string layer_name)
    : name_(std::move(layer_name)),
      weight_bits_(weight_bits),
      inner_(in_channels, out_channels, kernel, stride, pad, /*bias=*/false,
             rng, name_ + ".inner") {
  master_ = Parameter(name_ + ".weight", inner_.weight().value);
  // Decorations start near zero so the trunk initially dominates.
  scale_inplace(master_.value, 0.1f);
}

Tensor QatConv2d::forward(const Tensor& input, bool train) {
  // Straight-through estimator: run the conv on the quantized snapshot.
  inner_.weight().value = dequantize(quantize_symmetric(master_.value,
                                                        weight_bits_));
  return inner_.forward(input, train);
}

Tensor QatConv2d::backward(const Tensor& grad_output) {
  inner_.weight().grad.zero();
  Tensor grad_in = inner_.backward(grad_output);
  // STE: route the (quantized-weight) gradient to the float master.
  add_inplace(master_.grad, inner_.weight().grad);
  return grad_in;
}

std::vector<Parameter*> QatConv2d::parameters() { return {&master_}; }

}  // namespace yoloc
