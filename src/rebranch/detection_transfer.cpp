#include "rebranch/detection_transfer.hpp"

#include "common/check.hpp"

namespace yoloc {

std::string detector_option_name(DetectorOption opt) {
  switch (opt) {
    case DetectorOption::kSramCim:
      return "SRAM-CiM";
    case DetectorOption::kTinyYolo:
      return "Tiny-YOLO";
    case DetectorOption::kDeepConv:
      return "Deep-Conv";
    case DetectorOption::kPredOnly:
      return "Pred-Only (Opt.II)";
    case DetectorOption::kYoloc:
      return "YOLoC";
  }
  return "?";
}

DetectionTransferHarness::DetectionTransferHarness(
    DetectionTransferSetup setup)
    : setup_(std::move(setup)),
      source_spec_(coco_like_spec(setup_.image_size)) {
  Rng rng(setup_.data_seed);
  source_train_ = generate_detection(source_spec_, setup_.pretrain_scenes,
                                     rng);
  source_test_ = generate_detection(source_spec_,
                                    setup_.target_test_scenes, rng);
}

LayerPtr DetectionTransferHarness::build_model(Structure structure) const {
  ZooConfig zoo;
  zoo.image_size = setup_.image_size;
  zoo.base_width = setup_.base_width;
  zoo.num_classes = kNumShapeClasses;
  zoo.seed = 77;

  switch (structure) {
    case Structure::kPlain:
      return build_detector_lite(zoo, plain_conv_unit);
    case Structure::kReBranch:
      return build_detector_lite(zoo, make_rebranch_factory(setup_.rebranch));
    case Structure::kTiny:
      return build_tiny_detector_lite(zoo, plain_conv_unit);
  }
  YOLOC_CHECK(false, "unknown detector structure");
  return nullptr;
}

const ParamSnapshot& DetectionTransferHarness::pretrained(
    Structure structure) {
  std::optional<ParamSnapshot>* slot = nullptr;
  switch (structure) {
    case Structure::kPlain:
      slot = &plain_snap_;
      break;
    case Structure::kReBranch:
      slot = &rebranch_snap_;
      break;
    case Structure::kTiny:
      slot = &tiny_snap_;
      break;
  }
  if (!slot->has_value()) {
    LayerPtr model = build_model(structure);
    (void)train_detector(*model, source_train_.images, source_train_.boxes,
                         setup_.loss_cfg, setup_.pretrain_cfg);
    if (structure == Structure::kPlain) {
      source_map_ = evaluate_detector_map(*model, source_test_);
    }
    *slot = snapshot_parameters(*model);
  }
  return slot->value();
}

double DetectionTransferHarness::source_map() {
  (void)pretrained(Structure::kPlain);
  return source_map_.value_or(0.0);
}

DetectionOutcome DetectionTransferHarness::run(DetectorOption opt,
                                               const DetectionSpec& target) {
  Rng rng(setup_.data_seed ^ 0xD00D);
  DetectionDataset train =
      generate_detection(target, setup_.target_train_scenes, rng);
  DetectionDataset test =
      generate_detection(target, setup_.target_test_scenes, rng);

  Structure structure = Structure::kPlain;
  TransferOption policy = TransferOption::kAllSram;
  switch (opt) {
    case DetectorOption::kSramCim:
      structure = Structure::kPlain;
      policy = TransferOption::kAllSram;
      break;
    case DetectorOption::kTinyYolo:
      structure = Structure::kTiny;
      policy = TransferOption::kAllSram;
      break;
    case DetectorOption::kDeepConv:
      structure = Structure::kPlain;
      policy = TransferOption::kDeepConv;
      break;
    case DetectorOption::kPredOnly:
      structure = Structure::kPlain;
      policy = TransferOption::kAllRom;
      break;
    case DetectorOption::kYoloc:
      structure = Structure::kReBranch;
      policy = TransferOption::kReBranch;
      break;
  }

  LayerPtr model = build_model(structure);
  restore_parameters(*model, pretrained(structure));
  apply_transfer_policy(*model, policy);
  (void)train_detector(*model, train.images, train.boxes, setup_.loss_cfg,
                       setup_.finetune_cfg);

  DetectionOutcome outcome;
  outcome.option = opt;
  outcome.target = target.name;
  outcome.map = evaluate_detector_map(*model, test);
  outcome.split = deployment_split(*model);
  return outcome;
}

}  // namespace yoloc
