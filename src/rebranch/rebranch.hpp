#pragma once
// Residual Branch (ReBranch) construction and deployment-option policies
// (paper Sec. 3.2, Figs. 6 & 7).
//
// ReBranch wraps every backbone convolution in a trunk+branch pair:
//
//        x ------------------ trunk conv (kxk, fixed, ROM) -------+
//        |                                                        + -> OFM
//        +--- res-compress (1x1, fixed, ROM, in -> in/D)          |
//                -> res-conv (kxk, TRAINABLE, SRAM, in/D->out/U)  |
//                -> res-decompress (1x1, fixed, ROM, out/U->out) -+
//
// holding only ~1/(D*U) of the trunk's parameters in writable SRAM.
//
// The four deployment options the paper compares are expressed as
// freezing/residency policies over parameter names (the zoo's naming
// convention: "backbone.*" vs "head.*", plus the suffixes ".trunk",
// ".rescomp", ".resconv", ".resdecomp", ".decor" introduced here):
//   kAllSram  - everything trainable, everything SRAM (baseline [3])
//   kAllRom   - backbone frozen in ROM, only the head trains (Option II)
//   kDeepConv - kAllRom but the deepest backbone conv stays trainable
//   kSpwd     - 2-bit SRAM "decoration" conv parallel to each trunk
//               (Option III)
//   kReBranch - trunk + (de)compress frozen in ROM, res-conv trains in
//               SRAM (Option IV, proposed)
//   kRosl     - frozen extractor + TCAM prototype classifier (Option I)

#include <map>
#include <string>

#include "nn/zoo.hpp"

namespace yoloc {

enum class TransferOption {
  kAllSram,
  kAllRom,
  kDeepConv,
  kSpwd,
  kReBranch,
  kRosl,
};

std::string option_name(TransferOption opt);

struct ReBranchConfig {
  int d = 4;  // channel compression ratio
  int u = 4;  // channel decompression ratio
};

/// Conv-unit factory emitting trunk+branch ParallelSum blocks.
ConvUnitFactory make_rebranch_factory(const ReBranchConfig& cfg);

/// Conv-unit factory emitting trunk + low-bit decoration (Option III).
ConvUnitFactory make_spwd_factory(int decor_bits = 2);

/// Name -> value snapshot of every parameter.
using ParamSnapshot = std::map<std::string, Tensor>;
ParamSnapshot snapshot_parameters(Layer& model);
/// Copy matching (name, shape) entries into the model; returns the count.
int restore_parameters(Layer& model, const ParamSnapshot& snapshot);

/// Apply the freezing/residency policy of a deployment option.
void apply_transfer_policy(Layer& model, TransferOption opt);

/// ROM/SRAM weight accounting after a policy is applied. SPWD decoration
/// weights count at their quantized width (bits_override), everything
/// else at 8 bits.
struct DeploymentSplit {
  double rom_bits = 0.0;
  double sram_bits = 0.0;
  std::size_t rom_params = 0;
  std::size_t sram_params = 0;

  [[nodiscard]] double total_bits() const { return rom_bits + sram_bits; }
  /// Memory area [mm^2] given macro densities [Mb/mm^2].
  [[nodiscard]] double memory_area_mm2(double rom_density_mb_mm2,
                                       double sram_density_mb_mm2) const;
};
DeploymentSplit deployment_split(Layer& model, int weight_bits = 8,
                                 int spwd_decor_bits = 2);

}  // namespace yoloc
