#pragma once
// Detection transfer harness for Fig. 12: pretrain a grid detector on the
// COCO-like source scenes, redeploy under each option, fine-tune on the
// target scene family, report mAP.

#include <optional>

#include "data/detection.hpp"
#include "eval/detection_metrics.hpp"
#include "nn/trainer.hpp"
#include "rebranch/rebranch.hpp"

namespace yoloc {

/// Detector flavours compared in Fig. 12.
enum class DetectorOption {
  kSramCim,    // full detector, all layers trainable (SRAM-CiM baseline)
  kTinyYolo,   // smaller backbone, all layers trainable
  kDeepConv,   // full detector, only deepest backbone conv + head train
  kPredOnly,   // full detector, only the prediction head trains (Opt. II)
  kYoloc,      // full detector with ReBranch (proposed)
};

std::string detector_option_name(DetectorOption opt);

struct DetectionTransferSetup {
  int image_size = 48;
  int base_width = 8;
  /// -lite detectors are ~32x narrower than the full DarkNet-19, so the
  /// faithful relative branch capacity uses a lighter D*U than the
  /// full-size deployment's 4x4 (a width-8 backbone leaves the branch
  /// only 2 channels at D=4, which cannot absorb any residual).
  ReBranchConfig rebranch{2, 2};

  int pretrain_scenes = 360;
  int target_train_scenes = 240;
  int target_test_scenes = 120;

  TrainConfig pretrain_cfg;
  TrainConfig finetune_cfg;
  GridLossConfig loss_cfg;
  std::uint64_t data_seed = 4321;

  DetectionTransferSetup() {
    pretrain_cfg.epochs = 14;
    pretrain_cfg.batch_size = 16;
    pretrain_cfg.sgd.lr = 0.03f;
    // Gentle fine-tune: most parameters are frozen in ROM, and the
    // near-zero-initialized residual branch destabilizes at higher
    // learning rates.
    finetune_cfg.epochs = 10;
    finetune_cfg.batch_size = 16;
    finetune_cfg.sgd.lr = 0.008f;
    loss_cfg.grid = image_size / 8;
    loss_cfg.classes = kNumShapeClasses;
  }
};

struct DetectionOutcome {
  DetectorOption option = DetectorOption::kSramCim;
  std::string target;
  double map = 0.0;
  DeploymentSplit split;
};

class DetectionTransferHarness {
 public:
  explicit DetectionTransferHarness(DetectionTransferSetup setup);

  DetectionOutcome run(DetectorOption opt, const DetectionSpec& target);

  /// mAP of the pretrained full detector on held-out source scenes.
  double source_map();

 private:
  enum class Structure { kPlain, kReBranch, kTiny };
  LayerPtr build_model(Structure structure) const;
  const ParamSnapshot& pretrained(Structure structure);

  DetectionTransferSetup setup_;
  DetectionSpec source_spec_;
  DetectionDataset source_train_;
  DetectionDataset source_test_;
  std::optional<ParamSnapshot> plain_snap_;
  std::optional<ParamSnapshot> rebranch_snap_;
  std::optional<ParamSnapshot> tiny_snap_;
  std::optional<double> source_map_;
};

}  // namespace yoloc
