#include "rebranch/rebranch.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/units.hpp"
#include "nn/container.hpp"
#include "nn/conv2d.hpp"
#include "tensor/ops.hpp"
#include "rebranch/qat_conv.hpp"

namespace yoloc {

std::string option_name(TransferOption opt) {
  switch (opt) {
    case TransferOption::kAllSram:
      return "All SRAM";
    case TransferOption::kAllRom:
      return "All ROM";
    case TransferOption::kDeepConv:
      return "Deep Conv";
    case TransferOption::kSpwd:
      return "SPWD";
    case TransferOption::kReBranch:
      return "ReBranch";
    case TransferOption::kRosl:
      return "ROSL";
  }
  return "?";
}

ConvUnitFactory make_rebranch_factory(const ReBranchConfig& cfg) {
  YOLOC_CHECK(cfg.d >= 1 && cfg.u >= 1, "rebranch: D,U >= 1");
  const int d = cfg.d;
  const int u = cfg.u;
  return [d, u](const ConvSpec& spec, Rng& rng) -> LayerPtr {
    const int cin = std::max(1, spec.in_channels / d);
    const int cout = std::max(1, spec.out_channels / u);

    auto trunk = std::make_unique<Conv2d>(
        spec.in_channels, spec.out_channels, spec.kernel, spec.stride,
        spec.pad, /*bias=*/false, rng, spec.name + ".trunk");

    auto branch = std::make_unique<Sequential>(spec.name + ".branch");
    branch->add(std::make_unique<Conv2d>(spec.in_channels, cin, 1, 1, 0,
                                         /*bias=*/false, rng,
                                         spec.name + ".rescomp"));
    auto resconv = std::make_unique<Conv2d>(cin, cout, spec.kernel,
                                            spec.stride, spec.pad,
                                            /*bias=*/false, rng,
                                            spec.name + ".resconv");
    // Near-zero init of the *trainable* stage: the block starts as
    // trunk-only (classic residual-branch practice), so the composite
    // network trains as well as the plain one and the branch grows only
    // to fit residuals. The fixed (ROM) projections keep full-scale
    // init — a zero projection could never be compensated after
    // tape-out.
    scale_inplace(resconv->weight().value, 0.05f);
    branch->add(std::move(resconv));
    branch->add(std::make_unique<Conv2d>(cout, spec.out_channels, 1, 1, 0,
                                         /*bias=*/false, rng,
                                         spec.name + ".resdecomp"));

    auto sum = std::make_unique<ParallelSum>(spec.name);
    sum->add_branch(std::move(trunk));
    sum->add_branch(std::move(branch));
    return sum;
  };
}

ConvUnitFactory make_spwd_factory(int decor_bits) {
  return [decor_bits](const ConvSpec& spec, Rng& rng) -> LayerPtr {
    auto trunk = std::make_unique<Conv2d>(
        spec.in_channels, spec.out_channels, spec.kernel, spec.stride,
        spec.pad, /*bias=*/false, rng, spec.name + ".trunk");
    auto decor = std::make_unique<QatConv2d>(
        spec.in_channels, spec.out_channels, spec.kernel, spec.stride,
        spec.pad, decor_bits, rng, spec.name + ".decor");
    auto sum = std::make_unique<ParallelSum>(spec.name);
    sum->add_branch(std::move(trunk));
    sum->add_branch(std::move(decor));
    return sum;
  };
}

ParamSnapshot snapshot_parameters(Layer& model) {
  ParamSnapshot snap;
  for (Parameter* p : model.parameters()) {
    snap.emplace(p->name, p->value);
  }
  return snap;
}

int restore_parameters(Layer& model, const ParamSnapshot& snapshot) {
  int copied = 0;
  for (Parameter* p : model.parameters()) {
    const auto it = snapshot.find(p->name);
    if (it == snapshot.end()) continue;
    if (it->second.shape() != p->value.shape()) continue;
    p->value = it->second;
    ++copied;
  }
  return copied;
}

namespace {

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

bool in_backbone(const Parameter& p) { return contains(p.name, "backbone"); }
bool is_bn(const Parameter& p) {
  return contains(p.name, ".bn") || contains(p.name, ".gamma") ||
         contains(p.name, ".beta");
}

void set_all(Layer& model, bool trainable, bool rom_resident) {
  for (Parameter* p : model.parameters()) {
    p->trainable = trainable;
    p->rom_resident = rom_resident;
  }
}

/// Name prefix (up to ".weight") of the deepest backbone conv weight.
std::string last_backbone_conv_prefix(Layer& model) {
  std::string prefix;
  for (Parameter* p : model.parameters()) {
    if (!in_backbone(*p) || is_bn(*p)) continue;
    const auto pos = p->name.rfind(".weight");
    if (pos == std::string::npos) continue;
    prefix = p->name.substr(0, pos);
  }
  return prefix;
}

}  // namespace

void apply_transfer_policy(Layer& model, TransferOption opt) {
  switch (opt) {
    case TransferOption::kAllSram:
      set_all(model, /*trainable=*/true, /*rom=*/false);
      return;

    case TransferOption::kAllRom:
    case TransferOption::kRosl:
      // Feature extractor entirely fixed in ROM; head (and nothing else)
      // trains in SRAM. ROSL additionally replaces the head by a
      // prototype classifier at evaluation time (rosl.hpp).
      for (Parameter* p : model.parameters()) {
        const bool backbone = in_backbone(*p);
        p->trainable = !backbone;
        p->rom_resident = backbone;
      }
      return;

    case TransferOption::kDeepConv: {
      const std::string deepest = last_backbone_conv_prefix(model);
      for (Parameter* p : model.parameters()) {
        const bool backbone = in_backbone(*p);
        const bool deep = !deepest.empty() && contains(p->name, deepest);
        const bool trainable = !backbone || deep;
        p->trainable = trainable;
        p->rom_resident = backbone && !deep;
      }
      return;
    }

    case TransferOption::kSpwd:
      for (Parameter* p : model.parameters()) {
        const bool backbone = in_backbone(*p);
        const bool decor = contains(p->name, ".decor");
        // Trunks freeze into ROM; decorations + BN + head train in SRAM.
        const bool frozen = backbone && !decor && !is_bn(*p);
        p->trainable = !frozen;
        p->rom_resident = frozen;
      }
      return;

    case TransferOption::kReBranch:
      for (Parameter* p : model.parameters()) {
        const bool backbone = in_backbone(*p);
        const bool resconv = contains(p->name, ".resconv");
        const bool fixed_branch = contains(p->name, ".rescomp") ||
                                  contains(p->name, ".resdecomp");
        const bool frozen =
            backbone && !resconv && !is_bn(*p) &&
            (contains(p->name, ".trunk") || fixed_branch ||
             // plain convs that the factory left unwrapped (projections)
             !contains(p->name, ".res"));
        p->trainable = !frozen;
        p->rom_resident = frozen;
      }
      return;
  }
}

double DeploymentSplit::memory_area_mm2(double rom_density_mb_mm2,
                                        double sram_density_mb_mm2) const {
  return rom_bits / (rom_density_mb_mm2 * kBitsPerMb) +
         sram_bits / (sram_density_mb_mm2 * kBitsPerMb);
}

DeploymentSplit deployment_split(Layer& model, int weight_bits,
                                 int spwd_decor_bits) {
  DeploymentSplit split;
  for (Parameter* p : model.parameters()) {
    const bool decor = contains(p->name, ".decor");
    const double bits_per =
        decor ? static_cast<double>(spwd_decor_bits)
              : static_cast<double>(weight_bits);
    if (p->rom_resident) {
      split.rom_bits += static_cast<double>(p->value.size()) * bits_per;
      split.rom_params += p->value.size();
    } else {
      split.sram_bits += static_cast<double>(p->value.size()) * bits_per;
      split.sram_params += p->value.size();
    }
  }
  return split;
}

}  // namespace yoloc
