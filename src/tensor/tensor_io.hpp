#pragma once
// Raw binary serialization of tensors — the payload primitives under the
// deployment-plan artifact (src/runtime/plan_serde.*).
//
// Encoding (little-endian via common/binio.hpp):
//   Tensor            : u32 rank | i32 extent[rank] | f32 data[prod]
//   QuantizedTensor   : u32 rank | i32 extent[rank] | f32 scale | i8 data
// Rank 0 encodes the empty (default-constructed) tensor. Readers validate
// rank, extents and payload size against the remaining buffer before
// allocating, so corrupt inputs fail with a YOLOC_CHECK error rather
// than an allocation blow-up.

#include "common/binio.hpp"
#include "tensor/quant.hpp"
#include "tensor/tensor.hpp"

namespace yoloc {

void write_tensor(ByteWriter& w, const Tensor& t);
Tensor read_tensor(ByteReader& r);

void write_quantized_tensor(ByteWriter& w, const QuantizedTensor& q);
QuantizedTensor read_quantized_tensor(ByteReader& r);

}  // namespace yoloc
