#pragma once
// Post-training quantization used to lower a trained float network onto
// the CiM datapath.
//
// Conventions match the hardware described in the paper (Sec. 3.1):
//  * Weights: signed symmetric int8 (two's complement bit-slices across
//    eight ROM/SRAM columns).
//  * Activations: unsigned uint8 with zero-point 0. Activations enter the
//    array as wordline pulses, which can only encode non-negative
//    amplitudes; all quantized layers therefore follow a ReLU-family
//    nonlinearity whose output is >= 0.

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace yoloc {

/// Signed per-tensor symmetric quantization result.
struct QuantizedTensor {
  std::vector<std::int8_t> data;
  std::vector<int> shape;
  /// Dequantize: real = scale * q.
  float scale = 1.0f;
};

/// Unsigned activation quantization result (zero-point fixed at 0).
struct QuantizedActivations {
  std::vector<std::uint8_t> data;
  std::vector<int> shape;
  float scale = 1.0f;
};

/// Symmetric signed quantization to `bits` (default 8): q in
/// [-(2^(b-1)-1), 2^(b-1)-1], scale = max|x| / qmax. A zero tensor gets
/// scale 1.
QuantizedTensor quantize_symmetric(const Tensor& t, int bits = 8);

/// Unsigned quantization to `bits` over [0, max(x)]; negative inputs clamp
/// to 0 (callers feed post-ReLU activations).
QuantizedActivations quantize_unsigned(const Tensor& t, int bits = 8);

/// Unsigned quantization with a caller-provided scale (for calibrated
/// activation ranges measured on a calibration batch).
QuantizedActivations quantize_unsigned_with_scale(const Tensor& t,
                                                  float scale, int bits = 8);

/// Same, writing into caller-provided storage (resized only when needed)
/// — the deploy-time hot path reuses one scratch vector per request.
void quantize_unsigned_with_scale_into(const Tensor& t, float scale, int bits,
                                       std::vector<std::uint8_t>& out);

Tensor dequantize(const QuantizedTensor& q);
Tensor dequantize(const QuantizedActivations& q);

/// Max quantization level for signed-symmetric b-bit (2^(b-1) - 1).
int signed_qmax(int bits);
/// Max quantization level for unsigned b-bit (2^b - 1).
int unsigned_qmax(int bits);

}  // namespace yoloc
