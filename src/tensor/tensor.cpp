#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.hpp"

namespace yoloc {
namespace {

std::size_t checked_element_count(const std::vector<int>& shape) {
  YOLOC_CHECK(!shape.empty(), "tensor rank must be >= 1");
  std::size_t n = 1;
  for (int e : shape) {
    YOLOC_CHECK(e > 0, "tensor extent must be positive");
    n *= static_cast<std::size_t>(e);
  }
  return n;
}

}  // namespace

Tensor::Tensor(std::vector<int> shape)
    : shape_(std::move(shape)), data_(checked_element_count(shape_), 0.0f) {}

Tensor Tensor::zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }

void Tensor::reset(std::vector<int> new_shape) {
  const std::size_t n = checked_element_count(new_shape);
  shape_ = std::move(new_shape);
  data_.resize(n);
}

Tensor Tensor::full(std::vector<int> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(std::vector<int> shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

Tensor Tensor::rand_uniform(std::vector<int> shape, Rng& rng, float lo,
                            float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

Tensor Tensor::from_vector(std::vector<int> shape, std::vector<float> values) {
  const std::size_t n = checked_element_count(shape);
  YOLOC_CHECK(values.size() == n, "value count does not match shape");
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(values);
  return t;
}

int Tensor::extent(int axis) const {
  YOLOC_CHECK(axis >= 0 && axis < rank(), "axis out of range");
  return shape_[static_cast<std::size_t>(axis)];
}

float& Tensor::at2(int i, int j) {
  YOLOC_CHECK(rank() == 2, "at2 requires rank-2 tensor");
  YOLOC_CHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1],
              "at2 index out of range");
  return data_[static_cast<std::size_t>(i) * shape_[1] + j];
}

float Tensor::at2(int i, int j) const {
  return const_cast<Tensor*>(this)->at2(i, j);
}

float& Tensor::at4(int n, int c, int h, int w) {
  YOLOC_CHECK(rank() == 4, "at4 requires rank-4 tensor");
  YOLOC_CHECK(n >= 0 && n < shape_[0] && c >= 0 && c < shape_[1] && h >= 0 &&
                  h < shape_[2] && w >= 0 && w < shape_[3],
              "at4 index out of range");
  return data_[index4(n, c, h, w)];
}

float Tensor::at4(int n, int c, int h, int w) const {
  return const_cast<Tensor*>(this)->at4(n, c, h, w);
}

Tensor Tensor::reshaped(std::vector<int> new_shape) const {
  const std::size_t n = checked_element_count(new_shape);
  YOLOC_CHECK(n == size(), "reshape must preserve element count");
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

double Tensor::sum() const {
  return std::accumulate(data_.begin(), data_.end(), 0.0);
}

float Tensor::max_abs() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

bool same_shape(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape();
}

}  // namespace yoloc
