#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/check.hpp"
#include "common/parallel.hpp"

namespace yoloc {

Tensor add(const Tensor& a, const Tensor& b) {
  YOLOC_CHECK(same_shape(a, b), "add: shape mismatch");
  Tensor c = a;
  add_inplace(c, b);
  return c;
}

void add_inplace(Tensor& a, const Tensor& b) {
  YOLOC_CHECK(same_shape(a, b), "add_inplace: shape mismatch");
  float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) pa[i] += pb[i];
}

void axpy_inplace(Tensor& a, float alpha, const Tensor& b) {
  YOLOC_CHECK(same_shape(a, b), "axpy: shape mismatch");
  float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) pa[i] += alpha * pb[i];
}

Tensor sub(const Tensor& a, const Tensor& b) {
  YOLOC_CHECK(same_shape(a, b), "sub: shape mismatch");
  Tensor c = a;
  float* pc = c.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < c.size(); ++i) pc[i] -= pb[i];
  return c;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  YOLOC_CHECK(same_shape(a, b), "mul: shape mismatch");
  Tensor c = a;
  float* pc = c.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < c.size(); ++i) pc[i] *= pb[i];
  return c;
}

Tensor scale(const Tensor& a, float s) {
  Tensor c = a;
  scale_inplace(c, s);
  return c;
}

void scale_inplace(Tensor& a, float s) {
  float* pa = a.data();
  for (std::size_t i = 0; i < a.size(); ++i) pa[i] *= s;
}

void matmul_into(const Tensor& a, const Tensor& b, Tensor& out) {
  YOLOC_CHECK(a.rank() == 2 && b.rank() == 2, "matmul: rank-2 required");
  const int m = a.shape()[0];
  const int k = a.shape()[1];
  YOLOC_CHECK(b.shape()[0] == k, "matmul: inner dims mismatch");
  const int n = b.shape()[1];
  out.reset({m, n});  // keeps capacity across calls with varying shapes
  out.zero();
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out.data();
  // Blocked ikj: a row-block panel of A meets a kKc x kNc panel of B while
  // both stay cache-resident; the innermost j access is contiguous in both
  // b and c. The row-block is also the parallel grain, so shrink it when m
  // is small relative to the worker count — a tall-skinny cap of 32 would
  // otherwise serialize the conv-sized products (m = out_channels).
  constexpr int kKc = 128;
  constexpr int kNc = 256;
  const int workers = static_cast<int>(parallel_workers());
  const int mc = std::clamp(m / (4 * workers), 1, 32);
  const auto block_product = [&](std::size_t bi) {
    const int i0 = static_cast<int>(bi) * mc;
    const int i1 = std::min(m, i0 + mc);
    for (int k0 = 0; k0 < k; k0 += kKc) {
      const int k1 = std::min(k, k0 + kKc);
      for (int j0 = 0; j0 < n; j0 += kNc) {
        const int j1 = std::min(n, j0 + kNc);
        for (int i = i0; i < i1; ++i) {
          const float* arow = pa + static_cast<std::size_t>(i) * k;
          float* crow = pc + static_cast<std::size_t>(i) * n;
          for (int kk = k0; kk < k1; ++kk) {
            const float aik = arow[kk];
            if (aik == 0.0f) continue;
            const float* brow = pb + static_cast<std::size_t>(kk) * n;
            for (int j = j0; j < j1; ++j) crow[j] += aik * brow[j];
          }
        }
      }
    }
  };
  const std::size_t row_blocks =
      static_cast<std::size_t>((m + mc - 1) / mc);
  // Parallel dispatch only pays off for sizeable products.
  if (static_cast<std::size_t>(m) * k * n < (1u << 16) || row_blocks == 1) {
    for (std::size_t bi = 0; bi < row_blocks; ++bi) block_product(bi);
  } else {
    parallel_for(row_blocks, block_product);
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  Tensor c;
  matmul_into(a, b, c);
  return c;
}

void transpose2d_into(const Tensor& a, Tensor& out) {
  YOLOC_CHECK(a.rank() == 2, "transpose2d: rank-2 required");
  const int m = a.shape()[0];
  const int n = a.shape()[1];
  out.reset({n, m});  // keeps capacity; every element is written below
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      out.data()[static_cast<std::size_t>(j) * m + i] =
          a.data()[static_cast<std::size_t>(i) * n + j];
    }
  }
}

Tensor slice_rows(const Tensor& batch, int row0, int rows) {
  YOLOC_CHECK(batch.rank() >= 1 && row0 >= 0 && rows >= 1 &&
                  row0 + rows <= batch.shape()[0],
              "slice_rows: row range out of bounds");
  std::vector<int> shape = batch.shape();
  const std::size_t row_size = batch.size() / static_cast<std::size_t>(shape[0]);
  shape[0] = rows;
  Tensor out(shape);
  std::memcpy(out.data(),
              batch.data() + static_cast<std::size_t>(row0) * row_size,
              static_cast<std::size_t>(rows) * row_size * sizeof(float));
  return out;
}

Tensor concat_rows(const std::vector<const Tensor*>& parts) {
  YOLOC_CHECK(!parts.empty(), "concat_rows: no inputs");
  const std::vector<int>& ref = parts[0]->shape();
  YOLOC_CHECK(parts[0]->rank() >= 1, "concat_rows: rank >= 1 required");
  int total_rows = 0;
  for (const Tensor* t : parts) {
    YOLOC_CHECK(t->rank() == parts[0]->rank(),
                "concat_rows: rank mismatch");
    for (int d = 1; d < t->rank(); ++d) {
      YOLOC_CHECK(t->shape()[d] == ref[static_cast<std::size_t>(d)],
                  "concat_rows: trailing extent mismatch");
    }
    total_rows += t->shape()[0];
  }
  std::vector<int> shape = ref;
  shape[0] = total_rows;
  Tensor out(shape);
  float* dst = out.data();
  for (const Tensor* t : parts) {
    std::memcpy(dst, t->data(), t->size() * sizeof(float));
    dst += t->size();
  }
  return out;
}

Tensor transpose2d(const Tensor& a) {
  Tensor t;
  transpose2d_into(a, t);
  return t;
}

Tensor softmax_rows(const Tensor& logits) {
  YOLOC_CHECK(logits.rank() == 2, "softmax_rows: rank-2 required");
  const int rows = logits.shape()[0];
  const int cols = logits.shape()[1];
  Tensor out({rows, cols});
  for (int r = 0; r < rows; ++r) {
    const float* in = logits.data() + static_cast<std::size_t>(r) * cols;
    float* o = out.data() + static_cast<std::size_t>(r) * cols;
    float mx = in[0];
    for (int c = 1; c < cols; ++c) mx = std::max(mx, in[c]);
    double denom = 0.0;
    for (int c = 0; c < cols; ++c) {
      o[c] = std::exp(in[c] - mx);
      denom += o[c];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (int c = 0; c < cols; ++c) o[c] *= inv;
  }
  return out;
}

std::vector<int> argmax_rows(const Tensor& t) {
  YOLOC_CHECK(t.rank() == 2, "argmax_rows: rank-2 required");
  const int rows = t.shape()[0];
  const int cols = t.shape()[1];
  std::vector<int> idx(static_cast<std::size_t>(rows));
  for (int r = 0; r < rows; ++r) {
    const float* row = t.data() + static_cast<std::size_t>(r) * cols;
    idx[static_cast<std::size_t>(r)] =
        static_cast<int>(std::max_element(row, row + cols) - row);
  }
  return idx;
}

double mean(const Tensor& t) {
  YOLOC_CHECK(!t.empty(), "mean of empty tensor");
  return t.sum() / static_cast<double>(t.size());
}

double variance(const Tensor& t) {
  const double mu = mean(t);
  double acc = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const double d = t[i] - mu;
    acc += d * d;
  }
  return acc / static_cast<double>(t.size());
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  YOLOC_CHECK(same_shape(a, b), "max_abs_diff: shape mismatch");
  float m = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

int conv_out_extent(int in, int kernel, int stride, int pad) {
  YOLOC_CHECK(stride > 0, "stride must be positive");
  const int eff = in + 2 * pad - kernel;
  YOLOC_CHECK(eff >= 0, "kernel larger than padded input");
  return eff / stride + 1;
}

void im2col_into(const Tensor& input, int kh, int kw, int stride, int pad,
                 Tensor& cols) {
  YOLOC_CHECK(input.rank() == 4, "im2col: NCHW input required");
  const int n = input.shape()[0];
  const int c = input.shape()[1];
  const int h = input.shape()[2];
  const int w = input.shape()[3];
  const int oh = conv_out_extent(h, kh, stride, pad);
  const int ow = conv_out_extent(w, kw, stride, pad);
  const int patch = c * kh * kw;
  const int cols_n = n * oh * ow;
  // Capacity-preserving reshape: successive conv layers with different
  // geometries reuse one scratch allocation (every element, padding
  // included, is written below).
  cols.reset({patch, cols_n});
  float* pc = cols.data();
  const int col_stride = n * oh * ow;
  parallel_for(static_cast<std::size_t>(n), [&](std::size_t ni) {
    for (int ci = 0; ci < c; ++ci) {
      for (int ki = 0; ki < kh; ++ki) {
        for (int kj = 0; kj < kw; ++kj) {
          const int prow = (ci * kh + ki) * kw + kj;
          for (int oi = 0; oi < oh; ++oi) {
            const int ii = oi * stride + ki - pad;
            for (int oj = 0; oj < ow; ++oj) {
              const int jj = oj * stride + kj - pad;
              const std::size_t col =
                  (ni * static_cast<std::size_t>(oh) + oi) * ow + oj;
              float v = 0.0f;
              if (ii >= 0 && ii < h && jj >= 0 && jj < w) {
                v = input.data()[input.index4(static_cast<int>(ni), ci, ii,
                                              jj)];
              }
              pc[static_cast<std::size_t>(prow) * col_stride + col] = v;
            }
          }
        }
      }
    }
  });
}

Tensor im2col(const Tensor& input, int kh, int kw, int stride, int pad) {
  Tensor cols;
  im2col_into(input, kh, kw, stride, pad, cols);
  return cols;
}

Tensor col2im(const Tensor& cols, const std::vector<int>& input_shape, int kh,
              int kw, int stride, int pad) {
  YOLOC_CHECK(cols.rank() == 2, "col2im: rank-2 cols required");
  YOLOC_CHECK(input_shape.size() == 4, "col2im: NCHW shape required");
  const int n = input_shape[0];
  const int c = input_shape[1];
  const int h = input_shape[2];
  const int w = input_shape[3];
  const int oh = conv_out_extent(h, kh, stride, pad);
  const int ow = conv_out_extent(w, kw, stride, pad);
  YOLOC_CHECK(cols.shape()[0] == c * kh * kw &&
                  cols.shape()[1] == n * oh * ow,
              "col2im: cols shape inconsistent with conv geometry");
  Tensor img(input_shape);
  const float* pc = cols.data();
  const int col_stride = n * oh * ow;
  // Scatter-add: parallel over batch; each image is written by one thread.
  parallel_for(static_cast<std::size_t>(n), [&](std::size_t ni) {
    for (int ci = 0; ci < c; ++ci) {
      for (int ki = 0; ki < kh; ++ki) {
        for (int kj = 0; kj < kw; ++kj) {
          const int prow = (ci * kh + ki) * kw + kj;
          for (int oi = 0; oi < oh; ++oi) {
            const int ii = oi * stride + ki - pad;
            if (ii < 0 || ii >= h) continue;
            for (int oj = 0; oj < ow; ++oj) {
              const int jj = oj * stride + kj - pad;
              if (jj < 0 || jj >= w) continue;
              const std::size_t col =
                  (ni * static_cast<std::size_t>(oh) + oi) * ow + oj;
              img.data()[img.index4(static_cast<int>(ni), ci, ii, jj)] +=
                  pc[static_cast<std::size_t>(prow) * col_stride + col];
            }
          }
        }
      }
    }
  });
  return img;
}

}  // namespace yoloc
