#include "tensor/tensor_io.hpp"

#include <limits>

namespace yoloc {

namespace {

constexpr std::uint32_t kMaxRank = 8;

/// Decode and validate a shape prefix; returns the element count.
/// `bytes_per_elem` bounds the payload against the reader's remaining
/// bytes so a corrupt extent cannot trigger a huge allocation.
std::size_t read_shape(ByteReader& r, std::vector<int>& shape,
                       std::size_t bytes_per_elem) {
  const std::uint32_t rank = r.u32();
  YOLOC_CHECK(rank <= kMaxRank, "tensor io: rank out of range");
  shape.clear();
  if (rank == 0) return 0;
  std::size_t count = 1;
  for (std::uint32_t i = 0; i < rank; ++i) {
    const std::int32_t extent = r.i32();
    YOLOC_CHECK(extent > 0, "tensor io: non-positive extent");
    YOLOC_CHECK(count <= std::numeric_limits<std::size_t>::max() /
                             static_cast<std::size_t>(extent),
                "tensor io: element count overflow");
    count *= static_cast<std::size_t>(extent);
    shape.push_back(extent);
  }
  YOLOC_CHECK(count <= r.remaining() / bytes_per_elem,
              "tensor io: payload larger than buffer");
  return count;
}

void write_shape(ByteWriter& w, const std::vector<int>& shape) {
  w.u32(static_cast<std::uint32_t>(shape.size()));
  for (const int extent : shape) w.i32(extent);
}

}  // namespace

void write_tensor(ByteWriter& w, const Tensor& t) {
  write_shape(w, t.shape());
  w.bytes(t.data(), t.size() * sizeof(float));
}

Tensor read_tensor(ByteReader& r) {
  std::vector<int> shape;
  const std::size_t count = read_shape(r, shape, sizeof(float));
  if (shape.empty()) return Tensor{};
  Tensor t(std::move(shape));
  YOLOC_CHECK(t.size() == count, "tensor io: internal size mismatch");
  r.bytes(t.data(), count * sizeof(float));
  return t;
}

void write_quantized_tensor(ByteWriter& w, const QuantizedTensor& q) {
  std::size_t count = q.shape.empty() ? 0 : 1;
  for (const int extent : q.shape) count *= static_cast<std::size_t>(extent);
  YOLOC_CHECK(q.data.size() == count,
              "tensor io: quantized payload does not match shape");
  write_shape(w, q.shape);
  w.f32(q.scale);
  w.bytes(q.data.data(), q.data.size());
}

QuantizedTensor read_quantized_tensor(ByteReader& r) {
  QuantizedTensor q;
  const std::size_t count = read_shape(r, q.shape, sizeof(std::int8_t));
  q.scale = r.f32();
  q.data.resize(count);
  r.bytes(q.data.data(), count);
  return q;
}

}  // namespace yoloc
