#include "tensor/quant.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace yoloc {

int signed_qmax(int bits) {
  YOLOC_CHECK(bits >= 2 && bits <= 8, "signed quantization bits in [2,8]");
  return (1 << (bits - 1)) - 1;
}

int unsigned_qmax(int bits) {
  YOLOC_CHECK(bits >= 1 && bits <= 8, "unsigned quantization bits in [1,8]");
  return (1 << bits) - 1;
}

QuantizedTensor quantize_symmetric(const Tensor& t, int bits) {
  const int qmax = signed_qmax(bits);
  QuantizedTensor q;
  q.shape = t.shape();
  q.data.resize(t.size());
  const float amax = t.max_abs();
  q.scale = amax > 0.0f ? amax / static_cast<float>(qmax) : 1.0f;
  const float inv = 1.0f / q.scale;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const int v = static_cast<int>(std::lround(t[i] * inv));
    q.data[i] = static_cast<std::int8_t>(std::clamp(v, -qmax, qmax));
  }
  return q;
}

QuantizedActivations quantize_unsigned(const Tensor& t, int bits) {
  float mx = 0.0f;
  for (std::size_t i = 0; i < t.size(); ++i) mx = std::max(mx, t[i]);
  const int qmax = unsigned_qmax(bits);
  const float scale = mx > 0.0f ? mx / static_cast<float>(qmax) : 1.0f;
  return quantize_unsigned_with_scale(t, scale, bits);
}

QuantizedActivations quantize_unsigned_with_scale(const Tensor& t, float scale,
                                                  int bits) {
  QuantizedActivations q;
  q.shape = t.shape();
  q.scale = scale;
  quantize_unsigned_with_scale_into(t, scale, bits, q.data);
  return q;
}

void quantize_unsigned_with_scale_into(const Tensor& t, float scale, int bits,
                                       std::vector<std::uint8_t>& out) {
  YOLOC_CHECK(scale > 0.0f, "activation scale must be positive");
  const int qmax = unsigned_qmax(bits);
  out.resize(t.size());
  const float inv = 1.0f / scale;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const int v = static_cast<int>(std::lround(std::max(0.0f, t[i]) * inv));
    out[i] = static_cast<std::uint8_t>(std::clamp(v, 0, qmax));
  }
}

Tensor dequantize(const QuantizedTensor& q) {
  Tensor t(q.shape);
  for (std::size_t i = 0; i < q.data.size(); ++i) {
    t[i] = static_cast<float>(q.data[i]) * q.scale;
  }
  return t;
}

Tensor dequantize(const QuantizedActivations& q) {
  Tensor t(q.shape);
  for (std::size_t i = 0; i < q.data.size(); ++i) {
    t[i] = static_cast<float>(q.data[i]) * q.scale;
  }
  return t;
}

}  // namespace yoloc
