#pragma once
// Dense float tensor used by the training/inference substrate.
//
// Layout is row-major over an arbitrary-rank shape; convolutional code
// interprets rank-4 tensors as NCHW (batch, channel, height, width),
// which keeps the inner-most loop over width contiguous.
//
// This is deliberately a plain owning container (no views, no strides):
// the networks in this repository are small enough that copies are cheap,
// and the absence of aliasing makes the hand-written backward passes easy
// to audit.

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace yoloc {

class Tensor {
 public:
  Tensor() = default;
  /// Zero-initialized tensor of the given shape. Rank must be >= 1 and
  /// every extent positive.
  explicit Tensor(std::vector<int> shape);

  static Tensor zeros(std::vector<int> shape);
  static Tensor full(std::vector<int> shape, float value);
  /// I.i.d. normal entries (mean 0) — used for weight init.
  static Tensor randn(std::vector<int> shape, Rng& rng, float stddev = 1.0f);
  /// Uniform entries in [lo, hi).
  static Tensor rand_uniform(std::vector<int> shape, Rng& rng, float lo,
                             float hi);
  static Tensor from_vector(std::vector<int> shape, std::vector<float> values);

  [[nodiscard]] int rank() const { return static_cast<int>(shape_.size()); }
  [[nodiscard]] const std::vector<int>& shape() const { return shape_; }
  [[nodiscard]] int extent(int axis) const;
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }
  [[nodiscard]] std::vector<float>& storage() { return data_; }
  [[nodiscard]] const std::vector<float>& storage() const { return data_; }

  /// Flat element access (bounds-checked in debug via vector::at semantics
  /// only through at(); operator[] is unchecked for hot loops).
  float operator[](std::size_t i) const { return data_[i]; }
  float& operator[](std::size_t i) { return data_[i]; }

  /// Checked rank-2 access.
  [[nodiscard]] float& at2(int i, int j);
  [[nodiscard]] float at2(int i, int j) const;
  /// Checked rank-4 NCHW access.
  [[nodiscard]] float& at4(int n, int c, int h, int w);
  [[nodiscard]] float at4(int n, int c, int h, int w) const;

  /// Unchecked rank-4 flat index (hot path).
  [[nodiscard]] std::size_t index4(int n, int c, int h, int w) const {
    return ((static_cast<std::size_t>(n) * shape_[1] + c) * shape_[2] + h) *
               shape_[3] +
           w;
  }

  /// Same data, new shape (element count must match).
  [[nodiscard]] Tensor reshaped(std::vector<int> new_shape) const;

  /// Re-shape in place, resizing storage but KEEPING the underlying
  /// capacity — the scratch-buffer primitive behind the *_into kernels.
  /// Newly grown elements are zero; retained elements keep their (stale)
  /// payload, so callers must overwrite or zero() as appropriate.
  void reset(std::vector<int> new_shape);

  void fill(float value);
  void zero() { fill(0.0f); }

  /// Sum of all elements / max abs value — used by quantizer & tests.
  [[nodiscard]] double sum() const;
  [[nodiscard]] float max_abs() const;

 private:
  std::vector<int> shape_;
  std::vector<float> data_;
};

/// True when shapes match exactly.
bool same_shape(const Tensor& a, const Tensor& b);

}  // namespace yoloc
