#pragma once
// Free-function math kernels over Tensor.
//
// Only the operations the layer zoo actually needs are provided; each has
// a reference-quality implementation with no hidden broadcasting rules
// (mismatched shapes are an error unless documented otherwise).

#include "tensor/tensor.hpp"

namespace yoloc {

/// c = a + b (same shape).
Tensor add(const Tensor& a, const Tensor& b);
/// a += b (same shape).
void add_inplace(Tensor& a, const Tensor& b);
/// a += alpha * b (same shape) — SGD/momentum building block.
void axpy_inplace(Tensor& a, float alpha, const Tensor& b);
/// c = a - b.
Tensor sub(const Tensor& a, const Tensor& b);
/// Hadamard product.
Tensor mul(const Tensor& a, const Tensor& b);
/// Scale by a scalar.
Tensor scale(const Tensor& a, float s);
void scale_inplace(Tensor& a, float s);

/// Rank-2 matrix product: (M x K) * (K x N) -> (M x N).
Tensor matmul(const Tensor& a, const Tensor& b);
/// Cache-blocked rank-2 matrix product writing into caller-provided
/// storage. `out` is reshaped/reallocated only when its shape mismatches,
/// so hot loops that reuse the same `out` tensor stop allocating per call.
void matmul_into(const Tensor& a, const Tensor& b, Tensor& out);
/// Rank-2 transpose.
Tensor transpose2d(const Tensor& a);

/// Copy of `rows` leading-axis entries of `batch` starting at `row0`
/// (any rank >= 1). The serving layer slices fused batch outputs back
/// into per-request tensors with this.
Tensor slice_rows(const Tensor& batch, int row0, int rows);

/// Concatenate tensors along axis 0 (the inverse of slice_rows). All
/// parts must share rank and trailing extents; leading extents may
/// differ. The serving layer stacks per-request inputs into one fused
/// forward pass with this.
Tensor concat_rows(const std::vector<const Tensor*>& parts);
/// Rank-2 transpose into caller-provided storage (reallocated only on
/// shape mismatch).
void transpose2d_into(const Tensor& a, Tensor& out);

/// Row-wise softmax over a rank-2 (batch x classes) tensor.
Tensor softmax_rows(const Tensor& logits);
/// Row-wise argmax over a rank-2 tensor.
std::vector<int> argmax_rows(const Tensor& t);

/// Mean of all elements.
double mean(const Tensor& t);
/// Unbiased=false variance of all elements.
double variance(const Tensor& t);

/// Max elementwise |a-b|; shapes must match.
float max_abs_diff(const Tensor& a, const Tensor& b);

/// im2col for NCHW input: output is rank-2 with
/// rows = C*kh*kw ("patch" dimension) and cols = N*out_h*out_w.
/// Zero padding `pad` on all sides, square stride.
Tensor im2col(const Tensor& input, int kh, int kw, int stride, int pad);
/// im2col writing into caller-provided storage (reallocated only on shape
/// mismatch) — the deploy-time hot path reuses one scratch tensor.
void im2col_into(const Tensor& input, int kh, int kw, int stride, int pad,
                 Tensor& cols);

/// Inverse scatter-add of im2col (used by conv backward-to-input).
Tensor col2im(const Tensor& cols, const std::vector<int>& input_shape, int kh,
              int kw, int stride, int pad);

/// Output spatial extent of a conv/pool window.
int conv_out_extent(int in, int kernel, int stride, int pad);

}  // namespace yoloc
