#pragma once
// Little-endian binary encode/decode primitives for on-disk artifacts
// (the .yolocplan deployment image). Fixed-width, endian-explicit
// encodings — never raw struct memcpy — so an artifact written on one
// host loads on any other. ByteReader is bounds-checked on every read:
// a truncated or corrupt payload fails with a YOLOC_CHECK error instead
// of reading past the buffer.

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace yoloc {

/// Append-only little-endian encoder over a growable byte buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back((v >> (8 * i)) & 0xFFu);
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back((v >> (8 * i)) & 0xFFu);
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f32(float v) { u32(std::bit_cast<std::uint32_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  /// u32 length prefix + raw bytes.
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes(s.data(), s.size());
  }
  void bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + size);
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& buffer() const {
    return buf_;
  }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian decoder over a borrowed byte span.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() {
    need(1, "u8");
    return data_[pos_++];
  }
  std::uint32_t u32() {
    need(4, "u32");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8, "u64");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  float f32() { return std::bit_cast<float>(u32()); }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str() {
    const std::uint32_t n = u32();
    need(n, "string payload");
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }
  void bytes(void* dst, std::size_t size) {
    need(size, "byte payload");
    std::memcpy(dst, data_ + pos_, size);
    pos_ += size;
  }

  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  [[nodiscard]] std::size_t offset() const { return pos_; }
  /// Decoders call this after parsing a section: trailing garbage means
  /// the payload does not match the format the header claimed.
  void expect_exhausted(const char* what) const {
    YOLOC_CHECK(pos_ == size_,
                std::string(what) + ": trailing bytes after payload");
  }

 private:
  void need(std::size_t n, const char* what) const {
    YOLOC_CHECK(n <= size_ - pos_,
                std::string("binio: truncated payload reading ") + what);
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace yoloc
