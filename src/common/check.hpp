#pragma once
// Lightweight runtime-check macros used across the library.
//
// YOLOC_CHECK(cond, msg)  - throws std::runtime_error when cond is false.
//   Used for API-contract violations (bad shapes, out-of-range configs).
//   Simulators prefer fail-fast over silently producing wrong physics.

#include <sstream>
#include <stdexcept>
#include <string>

namespace yoloc {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "YOLOC_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " - " << msg;
  throw std::runtime_error(os.str());
}

}  // namespace yoloc

#define YOLOC_CHECK(cond, msg)                                          \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::yoloc::check_failed(#cond, __FILE__, __LINE__, (msg));          \
    }                                                                   \
  } while (false)

#define YOLOC_CHECK_OK(cond) YOLOC_CHECK(cond, std::string{})
