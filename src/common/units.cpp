#include "common/units.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace yoloc {

double tops_per_watt(double ops, double energy_pj) {
  if (energy_pj <= 0.0) return 0.0;
  // ops / (energy_pj * 1e-12 J) = ops/J * 1e12; TOPS/W = (ops/s)/(J/s)/1e12
  // which collapses to ops per picojoule.
  return ops / energy_pj;
}

double gops(double ops, double time_ns) {
  if (time_ns <= 0.0) return 0.0;
  return ops / time_ns;  // ops per ns == Gops per s
}

double mb_per_mm2(double bits, double area_mm2) {
  if (area_mm2 <= 0.0) return 0.0;
  return (bits / kBitsPerMb) / area_mm2;
}

std::string format_si(double value, int precision) {
  static constexpr std::array<const char*, 7> kSuffix = {"", "k", "M", "G",
                                                         "T", "P", "E"};
  double v = std::fabs(value);
  std::size_t idx = 0;
  while (v >= 1000.0 && idx + 1 < kSuffix.size()) {
    v /= 1000.0;
    ++idx;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f %s", precision,
                value < 0 ? -v : v, kSuffix[idx]);
  return buf;
}

std::string format_fixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace yoloc
