#pragma once
// Deterministic random number generation.
//
// Every stochastic component in the repository (dataset synthesis, weight
// init, cell-current variation, ADC noise) draws from an explicitly seeded
// Rng so that experiments are bit-reproducible across runs. The engine is
// xoshiro256** (public-domain algorithm by Blackman & Vigna), which is
// fast, has 256 bits of state and passes BigCrush.

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace yoloc {

/// Counter-free deterministic PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive).
  int uniform_int(int lo, int hi);
  /// Standard normal via Marsaglia polar method.
  double normal();
  /// Normal with given mean / stddev.
  double normal(double mean, double stddev);
  /// Bernoulli draw.
  bool bernoulli(double p_true);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j =
          static_cast<std::size_t>(uniform_int(0, static_cast<int>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child stream (e.g. one per dataset split).
  Rng fork();

 private:
  std::array<std::uint64_t, 4> state_{};
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace yoloc
