#pragma once
// Unit conventions and pretty-printing for physical quantities.
//
// The simulator stores every physical quantity as a double with the unit
// encoded in the *name* (suffix convention), keeping hot arithmetic free
// of wrapper overhead while keeping intent explicit at every interface:
//
//   _pj   picojoules            _ns   nanoseconds
//   _um2  square micrometers    _mm2  square millimeters
//   _bits / _bytes              _mb   megabits (10^6 bits, memory-macro
//                                     convention used by the paper)
//
// Derived figure-of-merit helpers (TOPS/W, GOPS, Mb/mm^2) live here so
// every module computes them identically.

#include <string>

namespace yoloc {

constexpr double kUm2PerMm2 = 1.0e6;
constexpr double kBitsPerMb = 1.0e6;   // memory-macro megabit
constexpr double kBitsPerKb = 1.0e3;

/// ops (1 MAC = 2 ops) and picojoules -> TOPS/W. TOPS/W == ops/pJ.
double tops_per_watt(double ops, double energy_pj);

/// ops and nanoseconds -> GOPS. GOPS == ops/ns.
double gops(double ops, double time_ns);

/// bits and mm^2 -> Mb/mm^2.
double mb_per_mm2(double bits, double area_mm2);

/// Human-readable SI formatting, e.g. 1.25e9 -> "1.25 G".
std::string format_si(double value, int precision = 3);

/// Fixed-precision number formatting (printf "%.*f").
std::string format_fixed(double value, int precision = 2);

}  // namespace yoloc
