#include "common/crc32.hpp"

#include <array>

namespace yoloc {

namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace yoloc
