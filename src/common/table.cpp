#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/check.hpp"
#include "common/units.hpp"

namespace yoloc {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  YOLOC_CHECK(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  YOLOC_CHECK(cells.size() == headers_.size(),
              "row width does not match header width");
  rows_.push_back(std::move(cells));
}

void TextTable::add_row(const std::string& label,
                        const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(format_fixed(v, precision));
  add_row(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_sep = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c] << std::string(widths[c] - cells[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  emit_sep();
  emit_row(headers_);
  emit_sep();
  for (const auto& row : rows_) emit_row(row);
  emit_sep();
  return os.str();
}

void TextTable::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace yoloc
