#pragma once
// ASCII table renderer used by the benchmark harnesses to print the
// rows/series of each paper table & figure in a uniform way.

#include <string>
#include <vector>

namespace yoloc {

/// Column-aligned text table. Rows may be added as pre-formatted strings
/// or as doubles (formatted with per-table precision).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Convenience: first cell is a label, the rest are numbers.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 3);

  [[nodiscard]] std::string to_string() const;
  /// Renders to stdout.
  void print() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace yoloc
