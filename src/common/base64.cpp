#include "common/base64.hpp"

#include <array>

namespace yoloc {

namespace {

constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

constexpr std::array<std::int8_t, 256> build_reverse() {
  std::array<std::int8_t, 256> rev{};
  for (auto& v : rev) v = -1;
  for (int i = 0; i < 64; ++i) {
    rev[static_cast<unsigned char>(kAlphabet[i])] = static_cast<std::int8_t>(i);
  }
  return rev;
}

constexpr std::array<std::int8_t, 256> kReverse = build_reverse();

}  // namespace

std::string base64_encode(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::string out;
  out.reserve(((size + 2) / 3) * 4);
  std::size_t i = 0;
  for (; i + 3 <= size; i += 3) {
    const std::uint32_t v = (static_cast<std::uint32_t>(bytes[i]) << 16) |
                            (static_cast<std::uint32_t>(bytes[i + 1]) << 8) |
                            static_cast<std::uint32_t>(bytes[i + 2]);
    out += kAlphabet[(v >> 18) & 0x3f];
    out += kAlphabet[(v >> 12) & 0x3f];
    out += kAlphabet[(v >> 6) & 0x3f];
    out += kAlphabet[v & 0x3f];
  }
  const std::size_t rest = size - i;
  if (rest == 1) {
    const std::uint32_t v = static_cast<std::uint32_t>(bytes[i]) << 16;
    out += kAlphabet[(v >> 18) & 0x3f];
    out += kAlphabet[(v >> 12) & 0x3f];
    out += "==";
  } else if (rest == 2) {
    const std::uint32_t v = (static_cast<std::uint32_t>(bytes[i]) << 16) |
                            (static_cast<std::uint32_t>(bytes[i + 1]) << 8);
    out += kAlphabet[(v >> 18) & 0x3f];
    out += kAlphabet[(v >> 12) & 0x3f];
    out += kAlphabet[(v >> 6) & 0x3f];
    out += '=';
  }
  return out;
}

bool base64_decode(const std::string& text, std::vector<std::uint8_t>& out) {
  out.clear();
  if (text.size() % 4 != 0) return false;
  out.reserve((text.size() / 4) * 3);
  for (std::size_t i = 0; i < text.size(); i += 4) {
    int pad = 0;
    std::uint32_t v = 0;
    for (int j = 0; j < 4; ++j) {
      const char c = text[i + j];
      if (c == '=') {
        // Padding is only legal in the last group, in the last two slots,
        // and must run to the end.
        if (i + 4 != text.size() || j < 2) {
          out.clear();
          return false;
        }
        ++pad;
        v <<= 6;
        continue;
      }
      if (pad > 0) {  // data after '='
        out.clear();
        return false;
      }
      const std::int8_t s = kReverse[static_cast<unsigned char>(c)];
      if (s < 0) {
        out.clear();
        return false;
      }
      v = (v << 6) | static_cast<std::uint32_t>(s);
    }
    out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
    if (pad < 2) out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
    if (pad < 1) out.push_back(static_cast<std::uint8_t>(v & 0xff));
  }
  return true;
}

}  // namespace yoloc
