#include "common/rng.hpp"

#include <cmath>

#include "common/check.hpp"

namespace yoloc {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed the full 256-bit state from splitmix64 per the xoshiro authors'
  // recommendation; guarantees a non-zero state for any seed.
  for (auto& word : state_) word = splitmix64(seed);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  YOLOC_CHECK(lo <= hi, "uniform range inverted");
  return lo + (hi - lo) * uniform();
}

int Rng::uniform_int(int lo, int hi) {
  YOLOC_CHECK(lo <= hi, "uniform_int range inverted");
  const std::uint64_t span = static_cast<std::uint64_t>(hi) - lo + 1;
  // Modulo bias is < 2^-50 for any span that fits in int; acceptable for
  // simulation workloads.
  return lo + static_cast<int>((*this)() % span);
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  have_cached_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p_true) { return uniform() < p_true; }

Rng Rng::fork() { return Rng((*this)() ^ 0xA5A5A5A55A5A5A5Aull); }

}  // namespace yoloc
