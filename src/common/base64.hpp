#pragma once
// Standard (RFC 4648) base64 — the tensor-payload encoding of the HTTP
// serving front-end (src/serve/http_server.*): raw little-endian f32
// buffers travel as `data_b64` JSON fields, so inference inputs and
// outputs round-trip bit-exactly through text transports.

#include <cstdint>
#include <string>
#include <vector>

namespace yoloc {

/// Encode `size` bytes as padded base64 (no line breaks).
std::string base64_encode(const void* data, std::size_t size);

/// Strict inverse of base64_encode: rejects non-alphabet characters,
/// embedded whitespace, bad padding and truncated input. Returns false
/// on malformed input (out is left empty), so network-facing callers can
/// map failure to 400 instead of catching.
bool base64_decode(const std::string& text, std::vector<std::uint8_t>& out);

}  // namespace yoloc
