#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

namespace yoloc {
namespace {

/// True while the current thread is executing inside a pool task (or under
/// a ParallelSerialGuard); nested parallel_for calls then run serially
/// instead of deadlocking.
thread_local bool t_inside_pool = false;

/// Persistent worker pool. Kernels issue thousands of small parallel
/// regions per training step; spawning threads per region costs more
/// than the work itself, so workers are long-lived and pick up chunks
/// via an atomic cursor.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  void run(std::size_t n, const std::function<void(std::size_t)>& fn) {
    // Top-level regions may now arrive from several threads at once (the
    // InferenceServer workers); serialize them so one region's fn_/n_
    // cannot be overwritten while workers are still draining it.
    std::lock_guard submit_lock(submit_mutex_);
    std::unique_lock lock(mutex_);
    fn_ = &fn;
    n_ = n;
    cursor_.store(0, std::memory_order_relaxed);
    done_ = 0;
    ++generation_;
    start_cv_.notify_all();
    done_cv_.wait(lock, [&] { return done_ == workers_.size(); });
    fn_ = nullptr;
  }

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

 private:
  Pool() {
    const std::size_t count = parallel_workers();
    workers_.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~Pool() {
    {
      std::lock_guard lock(mutex_);
      stop_ = true;
      start_cv_.notify_all();
    }
    for (auto& w : workers_) w.join();
  }

  void worker_loop() {
    t_inside_pool = true;
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(std::size_t)>* fn = nullptr;
      std::size_t n = 0;
      {
        std::unique_lock lock(mutex_);
        start_cv_.wait(lock,
                       [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        fn = fn_;
        n = n_;
      }
      const std::size_t block =
          std::max<std::size_t>(1, n / (4 * workers_.size()));
      for (;;) {
        const std::size_t begin =
            cursor_.fetch_add(block, std::memory_order_relaxed);
        if (begin >= n) break;
        const std::size_t end = std::min(n, begin + block);
        for (std::size_t i = begin; i < end; ++i) (*fn)(i);
      }
      {
        std::lock_guard lock(mutex_);
        if (++done_ == workers_.size()) done_cv_.notify_one();
      }
    }
  }

  std::vector<std::thread> workers_;
  std::mutex submit_mutex_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t n_ = 0;
  std::atomic<std::size_t> cursor_{0};
  std::size_t done_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace

std::size_t resolve_worker_count(const char* override_value,
                                 std::size_t fallback) {
  if (override_value == nullptr || *override_value == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(override_value, &end, 10);
  if (end == override_value || *end != '\0') return fallback;
  return static_cast<std::size_t>(std::clamp(parsed, 1l, 64l));
}

std::size_t parallel_workers() {
  static const std::size_t n = [] {
    const unsigned hw = std::thread::hardware_concurrency();
    const std::size_t fallback =
        static_cast<std::size_t>(std::clamp(hw, 1u, 16u));
    return resolve_worker_count(std::getenv("YOLOC_THREADS"), fallback);
  }();
  return n;
}

ParallelSerialGuard::ParallelSerialGuard() : prev_(t_inside_pool) {
  t_inside_pool = true;
}

ParallelSerialGuard::~ParallelSerialGuard() { t_inside_pool = prev_; }

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n < 4 || parallel_workers() <= 1 || t_inside_pool) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  Pool::instance().run(n, fn);
}

}  // namespace yoloc
