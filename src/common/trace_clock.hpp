#pragma once
// The one steady-clock base every serving timestamp lives on.
//
// Spans in the tracing subsystem (serve/trace.*), latency math in the
// metrics registry, and the scheduler's deadline arithmetic all read the
// same std::chrono::steady_clock and, where an ABSOLUTE timestamp is
// needed (trace events, uptime), express it as nanoseconds since one
// process-wide epoch pinned at first use. Mixing epochs (per-registry
// start points vs. per-collector start points) is how a trace viewer
// ends up disagreeing with the metrics dashboard about when a request
// ran; this header is the single place that epoch lives.

#include <chrono>
#include <cstdint>

namespace yoloc {

/// Clock of record for serving: monotonic, immune to wall-clock steps.
using TraceClock = std::chrono::steady_clock;

/// Process-wide epoch, pinned the first time anything asks for it
/// (thread-safe magic static). All ns-since-epoch values in trace
/// output and metrics share this origin.
inline TraceClock::time_point trace_epoch() {
  static const TraceClock::time_point epoch = TraceClock::now();
  return epoch;
}

/// Nanoseconds from `from` to `to`; clamped at zero (never underflows
/// when a pickup and a submit land in the same clock tick).
inline std::uint64_t ns_between(TraceClock::time_point from,
                                TraceClock::time_point to) {
  if (to <= from) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
          .count());
}

/// `tp` as nanoseconds since the process trace epoch.
inline std::uint64_t trace_ns_since_epoch(TraceClock::time_point tp) {
  return ns_between(trace_epoch(), tp);
}

/// Now, as nanoseconds since the process trace epoch.
inline std::uint64_t trace_now_ns() {
  return trace_ns_since_epoch(TraceClock::now());
}

}  // namespace yoloc
