#pragma once
// Minimal data-parallel helper for CPU-bound tensor kernels.
//
// parallel_for(n, fn) splits [0, n) into contiguous chunks across a small
// thread pool. The convolution forward/backward kernels parallelize over
// the batch (or output-channel) dimension with it. Falls back to serial
// execution for small n, where thread spawn cost dominates.
//
// Concurrency model: parallel_for may be entered from any thread; the
// underlying pool serializes top-level regions. Code that already runs on
// its own worker thread (e.g. the InferenceServer, which parallelizes
// across requests instead of within kernels) wraps itself in a
// ParallelSerialGuard so nested kernels execute inline.

#include <cstddef>
#include <functional>

namespace yoloc {

/// Number of worker threads used by parallel_for. Defaults to
/// hardware_concurrency clamped to [1, 16]; the YOLOC_THREADS environment
/// variable overrides it (clamped to [1, 64]) so benches and CI can pin
/// concurrency. Cached on first use.
std::size_t parallel_workers();

/// Pure resolution rule behind parallel_workers(): parse an override
/// string (YOLOC_THREADS) against a fallback. Non-numeric or empty
/// overrides yield the fallback; numeric values clamp to [1, 64].
/// Exposed separately so the clamping is unit-testable without mutating
/// process-wide environment state.
std::size_t resolve_worker_count(const char* override_value,
                                 std::size_t fallback);

/// Invoke fn(i) for every i in [0, n), potentially concurrently.
/// fn must be safe to call concurrently for distinct i.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

/// While alive, parallel_for calls issued from this thread run inline
/// (serially) instead of dispatching to the shared pool. Used by request-
/// level workers that provide their own parallelism.
class ParallelSerialGuard {
 public:
  ParallelSerialGuard();
  ~ParallelSerialGuard();
  ParallelSerialGuard(const ParallelSerialGuard&) = delete;
  ParallelSerialGuard& operator=(const ParallelSerialGuard&) = delete;

 private:
  bool prev_;
};

}  // namespace yoloc
