#pragma once
// Minimal data-parallel helper for CPU-bound tensor kernels.
//
// parallel_for(n, fn) splits [0, n) into contiguous chunks across a small
// thread pool. The convolution forward/backward kernels parallelize over
// the batch (or output-channel) dimension with it. Falls back to serial
// execution for small n, where thread spawn cost dominates.

#include <cstddef>
#include <functional>

namespace yoloc {

/// Number of worker threads used by parallel_for (hardware_concurrency,
/// clamped to [1, 16]).
std::size_t parallel_workers();

/// Invoke fn(i) for every i in [0, n), potentially concurrently.
/// fn must be safe to call concurrently for distinct i.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

}  // namespace yoloc
