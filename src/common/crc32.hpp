#pragma once
// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the integrity
// check used by the deployment-plan artifact format (.yolocplan section
// table). Matches zlib's crc32(): crc32("123456789") == 0xCBF43926.

#include <cstddef>
#include <cstdint>

namespace yoloc {

/// CRC-32 of `size` bytes at `data`. Pass a previous result as `seed` to
/// checksum a stream incrementally (seed 0 starts a fresh checksum).
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

}  // namespace yoloc
