#include "serve/metrics_registry.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "common/check.hpp"

namespace yoloc {

const char* priority_name(Priority p) {
  switch (p) {
    case Priority::kInteractive:
      return "interactive";
    case Priority::kBatch:
      return "batch";
    case Priority::kBestEffort:
      return "best_effort";
  }
  return "unknown";
}

// ---------------------------------------------------- LatencyHistogram

namespace {

int bucket_of(std::uint64_t ns) {
  // Bucket b holds [2^(b-1), 2^b); zero lands in bucket 0.
  return ns == 0 ? 0 : std::bit_width(ns);
}

double bucket_lo(int b) {
  return b == 0 ? 0.0 : static_cast<double>(1ull << (b - 1));
}

double bucket_hi(int b) {
  return b >= 63 ? static_cast<double>(~0ull)
                 : static_cast<double>(1ull << b);
}

constexpr double kNsPerMs = 1e6;
constexpr std::uint64_t kNsPerSecondU64 = 1000000000ull;

LatencySummary summarize(const LatencyHistogram& h) {
  LatencySummary s;
  s.count = h.count();
  s.p50_ms = h.quantile_ns(0.50) / kNsPerMs;
  s.p95_ms = h.quantile_ns(0.95) / kNsPerMs;
  s.p99_ms = h.quantile_ns(0.99) / kNsPerMs;
  s.mean_ms = h.mean_ns() / kNsPerMs;
  s.max_ms = static_cast<double>(h.max_ns()) / kNsPerMs;
  return s;
}

}  // namespace

void LatencyHistogram::record(std::uint64_t ns) {
  buckets_[static_cast<std::size_t>(
      std::min(bucket_of(ns), kBuckets - 1))] += 1;
  count_ += 1;
  sum_ns_ += ns;
  max_ns_ = std::max(max_ns_, ns);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (int b = 0; b < kBuckets; ++b) {
    buckets_[static_cast<std::size_t>(b)] +=
        other.buckets_[static_cast<std::size_t>(b)];
  }
  count_ += other.count_;
  sum_ns_ += other.sum_ns_;
  max_ns_ = std::max(max_ns_, other.max_ns_);
}

double LatencyHistogram::mean_ns() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_ns_) /
                           static_cast<double>(count_);
}

double LatencyHistogram::quantile_ns(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count_ - 1) + 1.0;
  std::uint64_t cum = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t in_bucket = buckets_[static_cast<std::size_t>(b)];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cum + in_bucket) >= rank) {
      // Linear interpolation across the bucket's nanosecond span.
      const double frac =
          (rank - static_cast<double>(cum)) / static_cast<double>(in_bucket);
      const double v = bucket_lo(b) + frac * (bucket_hi(b) - bucket_lo(b));
      return std::min(v, static_cast<double>(max_ns_));
    }
    cum += in_bucket;
  }
  return static_cast<double>(max_ns_);
}

// ---------------------------------------------------- MetricsSnapshot

namespace {

void append_latency_json(std::string& out, const char* key,
                         const LatencySummary& s) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "\"%s\":{\"count\":%llu,\"p50_ms\":%.4f,\"p95_ms\":%.4f,"
                "\"p99_ms\":%.4f,\"mean_ms\":%.4f,\"max_ms\":%.4f}",
                key, static_cast<unsigned long long>(s.count), s.p50_ms,
                s.p95_ms, s.p99_ms, s.mean_ms, s.max_ms);
  out += buf;
}

}  // namespace

std::string prometheus_escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

namespace {

/// Emitted `le` thresholds: every even log2 exponent from 2^10 ns
/// (~1 us) to 2^40 ns (~18 min). Cumulative counts stay exact at any
/// subset of thresholds; observations outside the span land in the
/// first bucket / the +Inf bucket.
constexpr int kPromLeLo = 10;
constexpr int kPromLeHi = 40;
constexpr int kPromLeStep = 2;
constexpr double kNsPerSecond = 1e9;

void append_prom_header(std::string& out, const char* name, const char* type,
                        const char* help) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

/// Integer series (counters, depth gauges) are emitted as integers:
/// rendering them through %g would silently round past 10 significant
/// digits and freeze rate() on long-lived servers.
void append_prom_lane_counter(std::string& out, const char* name,
                              const char* lane, std::uint64_t value) {
  char buf[192];
  std::snprintf(buf, sizeof(buf), "%s{lane=\"%s\"} %llu\n", name,
                prometheus_escape_label(lane).c_str(),
                static_cast<unsigned long long>(value));
  out += buf;
}

void append_prom_counter(std::string& out, const char* name,
                         std::uint64_t value) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s %llu\n", name,
                static_cast<unsigned long long>(value));
  out += buf;
}

void append_prom_value(std::string& out, const char* name, double value) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s %.10g\n", name, value);
  out += buf;
}

/// One lane's cumulative `_bucket` series plus its `_sum` and `_count`.
void append_prom_histogram_lane(std::string& out, const char* name,
                                const char* lane,
                                const LatencyHistogram& hist) {
  const std::string esc = prometheus_escape_label(lane);
  char buf[192];
  std::uint64_t cumulative = 0;
  int next_bucket = 0;
  for (int b = kPromLeLo; b <= kPromLeHi; b += kPromLeStep) {
    for (; next_bucket <= b && next_bucket < LatencyHistogram::kBuckets;
         ++next_bucket) {
      cumulative += hist.bucket(next_bucket);
    }
    std::snprintf(buf, sizeof(buf), "%s_bucket{lane=\"%s\",le=\"%.10g\"} %llu\n",
                  name, esc.c_str(),
                  LatencyHistogram::bucket_upper_ns(b) / kNsPerSecond,
                  static_cast<unsigned long long>(cumulative));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "%s_bucket{lane=\"%s\",le=\"+Inf\"} %llu\n",
                name, esc.c_str(),
                static_cast<unsigned long long>(hist.count()));
  out += buf;
  std::snprintf(buf, sizeof(buf), "%s_sum{lane=\"%s\"} %.10g\n", name,
                esc.c_str(),
                static_cast<double>(hist.sum_ns()) / kNsPerSecond);
  out += buf;
  std::snprintf(buf, sizeof(buf), "%s_count{lane=\"%s\"} %llu\n", name,
                esc.c_str(), static_cast<unsigned long long>(hist.count()));
  out += buf;
}

}  // namespace

std::string MetricsSnapshot::to_prometheus() const {
  std::string out;
  out.reserve(16384);

  append_prom_header(out, "yoloc_serve_uptime_seconds", "gauge",
                     "Seconds since the metrics registry was created.");
  append_prom_value(out, "yoloc_serve_uptime_seconds", uptime_s);

  append_prom_header(out, "yoloc_serve_workers", "gauge",
                     "Scheduler worker threads.");
  append_prom_value(out, "yoloc_serve_workers", workers);

  append_prom_header(out, "yoloc_serve_batches_total", "counter",
                     "Forward passes executed (continuous batches).");
  append_prom_counter(out, "yoloc_serve_batches_total", batches);

  append_prom_header(out, "yoloc_serve_batch_occupancy_mean", "gauge",
                     "Mean requests fused per executed batch.");
  append_prom_value(out, "yoloc_serve_batch_occupancy_mean",
                    avg_batch_occupancy);

  append_prom_header(out, "yoloc_serve_batch_occupancy_max", "gauge",
                     "Largest request count fused into one batch.");
  append_prom_value(out, "yoloc_serve_batch_occupancy_max",
                    max_batch_occupancy);

  append_prom_header(out, "yoloc_serve_rolling_images_per_second", "gauge",
                     "Images served per second over the trailing window.");
  append_prom_value(out, "yoloc_serve_rolling_images_per_second",
                    rolling_images_per_s);

  struct LaneCounter {
    const char* name;
    const char* help;
    std::uint64_t ClassSnapshot::* field;
  };
  static constexpr LaneCounter kCounters[] = {
      {"yoloc_serve_requests_submitted_total",
       "Requests submitted per lane (accepted or not).",
       &ClassSnapshot::submitted},
      {"yoloc_serve_requests_served_total",
       "Requests served to completion per lane.",
       &ClassSnapshot::served_requests},
      {"yoloc_serve_images_served_total", "Images served per lane.",
       &ClassSnapshot::served_images},
      {"yoloc_serve_requests_failed_total",
       "Requests whose execution raised per lane.",
       &ClassSnapshot::failed_requests},
      {"yoloc_serve_requests_expired_total",
       "Requests canceled while queued (deadline passed) per lane.",
       &ClassSnapshot::expired_requests},
      {"yoloc_serve_requests_rejected_total",
       "Requests refused at admission per lane.",
       &ClassSnapshot::rejected_requests},
  };
  for (const LaneCounter& counter : kCounters) {
    append_prom_header(out, counter.name, "counter", counter.help);
    for (int c = 0; c < kPriorityClassCount; ++c) {
      append_prom_lane_counter(
          out, counter.name, priority_name(static_cast<Priority>(c)),
          classes[static_cast<std::size_t>(c)].*counter.field);
    }
  }

  append_prom_header(out, "yoloc_serve_queue_depth", "gauge",
                     "Requests queued per lane at scrape time.");
  for (int c = 0; c < kPriorityClassCount; ++c) {
    append_prom_lane_counter(
        out, "yoloc_serve_queue_depth",
        priority_name(static_cast<Priority>(c)),
        classes[static_cast<std::size_t>(c)].queue_depth);
  }

  struct LaneHistogram {
    const char* name;
    const char* help;
    LatencyHistogram ClassSnapshot::* field;
  };
  static constexpr LaneHistogram kHistograms[] = {
      {"yoloc_serve_queue_wait_seconds",
       "Submit to batch pickup, served requests only.",
       &ClassSnapshot::queue_wait_hist},
      {"yoloc_serve_e2e_latency_seconds",
       "Submit to future fulfilled, served requests only.",
       &ClassSnapshot::e2e_hist},
      {"yoloc_serve_expired_wait_seconds",
       "Submit to cancellation for requests that expired while queued.",
       &ClassSnapshot::expired_wait_hist},
  };
  for (const LaneHistogram& hist : kHistograms) {
    append_prom_header(out, hist.name, "histogram", hist.help);
    for (int c = 0; c < kPriorityClassCount; ++c) {
      append_prom_histogram_lane(
          out, hist.name, priority_name(static_cast<Priority>(c)),
          classes[static_cast<std::size_t>(c)].*hist.field);
    }
  }

  // Resilience families: always exported (zeros / fully-healthy when the
  // resilience layer is disabled) so dashboards never see a family
  // appear mid-flight.
  append_prom_header(out, "yoloc_resilience_healthy_workers", "gauge",
                     "Workers currently taking traffic (breaker closed, "
                     "not quarantined).");
  append_prom_value(out, "yoloc_resilience_healthy_workers",
                    resilience.healthy_workers);

  append_prom_header(out, "yoloc_resilience_breaker_open_workers", "gauge",
                     "Workers with an open canary circuit breaker.");
  append_prom_value(out, "yoloc_resilience_breaker_open_workers",
                    resilience.breaker_open_workers);

  append_prom_header(out, "yoloc_resilience_quarantined_workers", "gauge",
                     "Workers quarantined by the watchdog.");
  append_prom_value(out, "yoloc_resilience_quarantined_workers",
                    resilience.quarantined_workers);

  struct ResilienceCounter {
    const char* name;
    const char* help;
    std::uint64_t ResilienceSnapshot::* field;
  };
  static constexpr ResilienceCounter kResilienceCounters[] = {
      {"yoloc_resilience_canary_pass_total",
       "Canary probes whose output matched the golden logits.",
       &ResilienceSnapshot::canary_pass},
      {"yoloc_resilience_canary_fail_total",
       "Canary probes whose output diverged from the golden logits.",
       &ResilienceSnapshot::canary_fail},
      {"yoloc_resilience_watchdog_fires_total",
       "Batches declared hung by the watchdog (requests failed, worker "
       "quarantined).",
       &ResilienceSnapshot::watchdog_fires},
      {"yoloc_resilience_breaker_trips_total",
       "Circuit-breaker open transitions across all workers.",
       &ResilienceSnapshot::breaker_trips},
      {"yoloc_resilience_breaker_recoveries_total",
       "Circuit-breaker close transitions across all workers.",
       &ResilienceSnapshot::breaker_recoveries},
  };
  for (const ResilienceCounter& counter : kResilienceCounters) {
    append_prom_header(out, counter.name, "counter", counter.help);
    append_prom_counter(out, counter.name, resilience.*counter.field);
  }

  append_prom_header(out, "yoloc_resilience_shed_requests_total", "counter",
                     "Admissions refused by degraded-mode load shedding "
                     "per lane.");
  for (int c = 0; c < kPriorityClassCount; ++c) {
    append_prom_lane_counter(
        out, "yoloc_resilience_shed_requests_total",
        priority_name(static_cast<Priority>(c)),
        resilience.shed_requests[static_cast<std::size_t>(c)]);
  }

  append_prom_header(out, "yoloc_resilience_degraded", "gauge",
                     "1 when any worker is unhealthy (see /healthz for "
                     "the reason).");
  append_prom_value(out, "yoloc_resilience_degraded",
                    resilience.degraded ? 1.0 : 0.0);
  return out;
}

std::string MetricsSnapshot::to_json() const {
  std::string out;
  out.reserve(1024);
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"uptime_s\":%.3f,\"workers\":%d,\"batches\":%llu,"
      "\"served_requests\":%llu,\"served_images\":%llu,"
      "\"batch_occupancy\":{\"mean\":%.3f,\"max\":%d},"
      "\"rolling_images_per_s\":%.2f,\"classes\":{",
      uptime_s, workers, static_cast<unsigned long long>(batches),
      static_cast<unsigned long long>(served_requests),
      static_cast<unsigned long long>(served_images), avg_batch_occupancy,
      max_batch_occupancy, rolling_images_per_s);
  out += buf;
  for (int c = 0; c < kPriorityClassCount; ++c) {
    const ClassSnapshot& cs = classes[static_cast<std::size_t>(c)];
    std::snprintf(
        buf, sizeof(buf),
        "%s\"%s\":{\"submitted\":%llu,\"served_requests\":%llu,"
        "\"served_images\":%llu,\"failed\":%llu,\"expired\":%llu,"
        "\"rejected\":%llu,\"queue_depth\":%llu,",
        c == 0 ? "" : ",", priority_name(static_cast<Priority>(c)),
        static_cast<unsigned long long>(cs.submitted),
        static_cast<unsigned long long>(cs.served_requests),
        static_cast<unsigned long long>(cs.served_images),
        static_cast<unsigned long long>(cs.failed_requests),
        static_cast<unsigned long long>(cs.expired_requests),
        static_cast<unsigned long long>(cs.rejected_requests),
        static_cast<unsigned long long>(cs.queue_depth));
    out += buf;
    append_latency_json(out, "queue_wait_ms", cs.queue_wait);
    out += ',';
    append_latency_json(out, "e2e_ms", cs.e2e);
    out += ',';
    append_latency_json(out, "expired_wait_ms", cs.expired_wait);
    out += '}';
  }
  out += "},\"resilience\":{";
  std::snprintf(
      buf, sizeof(buf),
      "\"healthy_workers\":%d,\"breaker_open_workers\":%d,"
      "\"quarantined_workers\":%d,\"canary_pass\":%llu,"
      "\"canary_fail\":%llu,\"watchdog_fires\":%llu,"
      "\"breaker_trips\":%llu,\"breaker_recoveries\":%llu,"
      "\"shed\":{\"interactive\":%llu,\"batch\":%llu,\"best_effort\":%llu},"
      "\"degraded\":%s",
      resilience.healthy_workers, resilience.breaker_open_workers,
      resilience.quarantined_workers,
      static_cast<unsigned long long>(resilience.canary_pass),
      static_cast<unsigned long long>(resilience.canary_fail),
      static_cast<unsigned long long>(resilience.watchdog_fires),
      static_cast<unsigned long long>(resilience.breaker_trips),
      static_cast<unsigned long long>(resilience.breaker_recoveries),
      static_cast<unsigned long long>(resilience.shed_requests[0]),
      static_cast<unsigned long long>(resilience.shed_requests[1]),
      static_cast<unsigned long long>(resilience.shed_requests[2]),
      resilience.degraded ? "true" : "false");
  out += buf;
  if (resilience.degraded) {
    // The reason is generated internally (no quotes/backslashes), but
    // escape anyway so the object can never be malformed.
    out += ",\"degraded_reason\":\"";
    out += prometheus_escape_label(resilience.degraded_reason);
    out += '"';
  }
  out += "}}";
  return out;
}

// ---------------------------------------------------- MetricsRegistry

MetricsRegistry::MetricsRegistry(int workers) : start_ns_(trace_now_ns()) {
  YOLOC_CHECK(workers >= 1, "metrics registry: at least one worker slot");
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.push_back(std::make_unique<WorkerSlot>());
  }
}

void MetricsRegistry::record_batch(int worker, const BatchObservation& obs) {
  YOLOC_CHECK(worker >= 0 && worker < worker_slots(),
              "metrics registry: bad worker index");
  WorkerSlot& slot = *workers_[static_cast<std::size_t>(worker)];
  const auto cls = static_cast<std::size_t>(obs.priority);
  {
    std::lock_guard lock(slot.mutex);
    ClassCounters& c = slot.classes[cls];
    if (obs.failed) {
      c.failed_requests += static_cast<std::uint64_t>(obs.requests);
    } else {
      c.served_requests += static_cast<std::uint64_t>(obs.requests);
      c.served_images += static_cast<std::uint64_t>(obs.images);
      for (const std::uint64_t ns : obs.queue_wait_ns) c.queue_wait.record(ns);
      for (const std::uint64_t ns : obs.e2e_ns) c.e2e.record(ns);
      slot.batches += 1;
      slot.batched_requests += static_cast<std::uint64_t>(obs.requests);
      slot.max_batch_occupancy =
          std::max(slot.max_batch_occupancy, obs.requests);
    }
  }
  if (!obs.failed && obs.images > 0) {
    const std::int64_t second = static_cast<std::int64_t>(
        (trace_now_ns() - start_ns_) / kNsPerSecondU64);
    std::lock_guard lock(rate_mutex_);
    auto& s = rate_.slots[static_cast<std::size_t>(second) %
                          RollingRate::kSlots];
    if (s.second != second) {
      s.second = second;
      s.images = 0;
    }
    s.images += static_cast<std::uint64_t>(obs.images);
  }
}

void MetricsRegistry::record_submitted(Priority p) {
  std::lock_guard lock(ingress_.mutex);
  ingress_.submitted[static_cast<std::size_t>(p)] += 1;
}

void MetricsRegistry::record_rejected(Priority p) {
  std::lock_guard lock(ingress_.mutex);
  ingress_.rejected[static_cast<std::size_t>(p)] += 1;
}

void MetricsRegistry::record_expired(Priority p, std::uint64_t waited_ns) {
  std::lock_guard lock(ingress_.mutex);
  ingress_.expired[static_cast<std::size_t>(p)] += 1;
  ingress_.expired_wait[static_cast<std::size_t>(p)].record(waited_ns);
}

void MetricsRegistry::reset() {
  for (auto& worker : workers_) {
    std::lock_guard lock(worker->mutex);
    worker->classes = {};
    worker->batches = 0;
    worker->batched_requests = 0;
    worker->max_batch_occupancy = 0;
  }
  {
    std::lock_guard lock(ingress_.mutex);
    ingress_.submitted = {};
    ingress_.rejected = {};
    ingress_.expired = {};
    ingress_.expired_wait = {};
  }
  {
    std::lock_guard lock(rate_mutex_);
    rate_.slots = {};
  }
}

MetricsSnapshot MetricsRegistry::snapshot(
    const std::array<std::uint64_t, kPriorityClassCount>& queue_depths)
    const {
  MetricsSnapshot snap;
  const std::uint64_t now_ns = trace_now_ns();
  const std::uint64_t uptime_ns = now_ns - start_ns_;
  snap.uptime_s = static_cast<double>(uptime_ns) / 1e9;
  snap.workers = worker_slots();

  std::array<LatencyHistogram, kPriorityClassCount> queue_wait{};
  std::array<LatencyHistogram, kPriorityClassCount> e2e{};
  std::uint64_t batched_requests = 0;
  for (const auto& worker : workers_) {
    std::lock_guard lock(worker->mutex);
    for (int c = 0; c < kPriorityClassCount; ++c) {
      const ClassCounters& src = worker->classes[static_cast<std::size_t>(c)];
      ClassSnapshot& dst = snap.classes[static_cast<std::size_t>(c)];
      dst.served_requests += src.served_requests;
      dst.served_images += src.served_images;
      dst.failed_requests += src.failed_requests;
      queue_wait[static_cast<std::size_t>(c)].merge(src.queue_wait);
      e2e[static_cast<std::size_t>(c)].merge(src.e2e);
    }
    snap.batches += worker->batches;
    batched_requests += worker->batched_requests;
    snap.max_batch_occupancy =
        std::max(snap.max_batch_occupancy, worker->max_batch_occupancy);
  }
  {
    std::lock_guard lock(ingress_.mutex);
    for (int c = 0; c < kPriorityClassCount; ++c) {
      ClassSnapshot& dst = snap.classes[static_cast<std::size_t>(c)];
      dst.submitted = ingress_.submitted[static_cast<std::size_t>(c)];
      dst.rejected_requests = ingress_.rejected[static_cast<std::size_t>(c)];
      dst.expired_requests = ingress_.expired[static_cast<std::size_t>(c)];
      dst.expired_wait =
          summarize(ingress_.expired_wait[static_cast<std::size_t>(c)]);
      dst.expired_wait_hist =
          ingress_.expired_wait[static_cast<std::size_t>(c)];
    }
  }
  for (int c = 0; c < kPriorityClassCount; ++c) {
    ClassSnapshot& dst = snap.classes[static_cast<std::size_t>(c)];
    dst.queue_depth = queue_depths[static_cast<std::size_t>(c)];
    dst.queue_wait = summarize(queue_wait[static_cast<std::size_t>(c)]);
    dst.e2e = summarize(e2e[static_cast<std::size_t>(c)]);
    dst.queue_wait_hist = queue_wait[static_cast<std::size_t>(c)];
    dst.e2e_hist = e2e[static_cast<std::size_t>(c)];
    snap.served_requests += dst.served_requests;
    snap.served_images += dst.served_images;
  }
  snap.avg_batch_occupancy =
      snap.batches == 0 ? 0.0
                        : static_cast<double>(batched_requests) /
                              static_cast<double>(snap.batches);

  // Trailing-window throughput: sum the ring slots still inside the
  // window, divide by the span those slots actually cover — the current
  // second is only partially elapsed, so the divisor is (full seconds
  // included - 1) plus that fraction, clamped to uptime for short-lived
  // servers. Dividing by the nominal window would understate a steady
  // rate by up to one second's worth.
  {
    const std::int64_t now_second =
        static_cast<std::int64_t>(uptime_ns / kNsPerSecondU64);
    std::uint64_t images = 0;
    std::lock_guard lock(rate_mutex_);
    for (const auto& s : rate_.slots) {
      if (s.second >= 0 && now_second - s.second < RollingRate::kWindowSeconds) {
        images += s.images;
      }
    }
    const double current_second_frac =
        snap.uptime_s - static_cast<double>(now_second);
    const double window = std::clamp(
        snap.uptime_s, 1e-3,
        static_cast<double>(RollingRate::kWindowSeconds - 1) +
            current_second_frac);
    snap.rolling_images_per_s = static_cast<double>(images) / window;
  }
  return snap;
}

}  // namespace yoloc
