#pragma once
// Serving telemetry: lock-cheap per-worker counters merged on read.
//
// Every scheduler worker owns one WorkerSlot guarded by its own mutex —
// uncontended in steady state, so the per-batch recording cost is a
// handful of uncontended lock/unlock pairs and array increments, never a
// global lock on the hot path. Submit-side events (admission rejections,
// enqueue counts) land in a separate ingress slot. snapshot() takes each
// slot's lock in turn and merges everything into one immutable
// MetricsSnapshot, exportable as a JSON object.
//
// Latencies are recorded into log2-bucketed histograms (bucket b holds
// [2^(b-1), 2^b) nanoseconds): constant memory, O(1) record, and
// quantiles with bounded relative error — the standard shape for serving
// p50/p95/p99 without keeping raw samples.

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/request.hpp"
#include "serve/resilience.hpp"

namespace yoloc {

/// Fixed-memory log2 latency histogram over nanoseconds.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 64;

  void record(std::uint64_t ns);
  void merge(const LatencyHistogram& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t max_ns() const { return max_ns_; }
  [[nodiscard]] std::uint64_t sum_ns() const { return sum_ns_; }
  /// Raw occupancy of bucket `b` in [0, kBuckets); bucket b holds
  /// latencies in [2^(b-1), 2^b) ns (zero lands in bucket 0).
  [[nodiscard]] std::uint64_t bucket(int b) const {
    return buckets_[static_cast<std::size_t>(b)];
  }
  /// Inclusive upper bound of bucket `b` in nanoseconds (2^b): every
  /// observation in buckets [0, b] is <= this. Feeds Prometheus `le`.
  [[nodiscard]] static double bucket_upper_ns(int b) {
    return static_cast<double>(1ull << std::min(b, 62));
  }
  [[nodiscard]] double mean_ns() const;
  /// q in [0, 1]; linear interpolation inside the containing bucket,
  /// clamped to the observed maximum. Returns 0 when empty.
  [[nodiscard]] double quantile_ns(double q) const;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ns_ = 0;
  std::uint64_t max_ns_ = 0;
};

/// Escape a Prometheus label value per the text exposition format
/// (version 0.0.4): backslash, double quote and newline are escaped.
[[nodiscard]] std::string prometheus_escape_label(const std::string& value);

/// Quantile digest of one histogram, in milliseconds (JSON-friendly).
struct LatencySummary {
  std::uint64_t count = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
};

/// Per-priority-class slice of a snapshot.
struct ClassSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t served_requests = 0;
  std::uint64_t served_images = 0;
  std::uint64_t failed_requests = 0;   // execution raised
  std::uint64_t expired_requests = 0;  // deadline passed while queued
  std::uint64_t rejected_requests = 0; // refused at admission
  std::uint64_t queue_depth = 0;       // gauge at snapshot time
  LatencySummary queue_wait;    // submit -> batch pickup (served only)
  LatencySummary e2e;           // submit -> future fulfilled (served only)
  LatencySummary expired_wait;  // submit -> cancellation (expired only)
  // The merged histograms behind the three summaries above; carried so
  // the Prometheus exposition can emit real cumulative buckets.
  LatencyHistogram queue_wait_hist;
  LatencyHistogram e2e_hist;
  LatencyHistogram expired_wait_hist;
};

/// Immutable merged view of the registry at one instant.
struct MetricsSnapshot {
  double uptime_s = 0.0;
  int workers = 0;
  std::uint64_t batches = 0;
  std::uint64_t served_requests = 0;
  std::uint64_t served_images = 0;
  double avg_batch_occupancy = 0.0;  // requests per executed batch
  int max_batch_occupancy = 0;
  double rolling_images_per_s = 0.0;  // images/s over the trailing window
  std::array<ClassSnapshot, kPriorityClassCount> classes{};
  /// Resilience state at snapshot time (filled by the scheduler; all
  /// zeros / fully healthy when the resilience layer is disabled).
  ResilienceSnapshot resilience;

  /// One JSON object (single line, no trailing newline) with the schema
  /// documented in docs/serving.md.
  [[nodiscard]] std::string to_json() const;

  /// Prometheus text exposition (version 0.0.4): `# HELP` / `# TYPE`
  /// per family, counters (`*_total`), gauges, and cumulative
  /// `_bucket`/`_sum`/`_count` histogram series per lane. Every metric
  /// name is documented in docs/serving.md; tools/docs_check.sh keeps
  /// the two in sync (CTest label `docs`).
  [[nodiscard]] std::string to_prometheus() const;
};

/// What one worker observed executing one batch. All requests in a batch
/// share a priority class by construction.
struct BatchObservation {
  Priority priority = Priority::kBatch;
  int requests = 0;
  int images = 0;
  bool failed = false;  // execution threw: requests count as failed
  std::vector<std::uint64_t> queue_wait_ns;  // per served request
  std::vector<std::uint64_t> e2e_ns;         // per served request
};

class MetricsRegistry {
 public:
  explicit MetricsRegistry(int workers);

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // ------------------------------------------------ worker-side events
  /// Record one executed batch into worker `worker`'s slot.
  void record_batch(int worker, const BatchObservation& obs);

  // ------------------------------------------------ submit-side events
  void record_submitted(Priority p);
  void record_rejected(Priority p);
  /// `waited_ns`: how long the request sat queued before expiring.
  void record_expired(Priority p, std::uint64_t waited_ns);

  /// Merge every slot under its own lock. `queue_depths` are the live
  /// per-class queue gauges (the registry does not own the queue).
  [[nodiscard]] MetricsSnapshot snapshot(
      const std::array<std::uint64_t, kPriorityClassCount>& queue_depths)
      const;

  /// Convenience: snapshot() rendered as the Prometheus text format.
  [[nodiscard]] std::string to_prometheus(
      const std::array<std::uint64_t, kPriorityClassCount>& queue_depths)
      const {
    return snapshot(queue_depths).to_prometheus();
  }

  /// Zero every counter, histogram and throughput slot (each under its
  /// own lock; safe concurrently with recording, though a snapshot
  /// racing a reset may see partially cleared state). The registry
  /// epoch (uptime_s) is NOT reset. Benches use this to scope a
  /// snapshot to a measurement phase, excluding warmup.
  void reset();

  [[nodiscard]] int worker_slots() const {
    return static_cast<int>(workers_.size());
  }

 private:
  struct ClassCounters {
    std::uint64_t served_requests = 0;
    std::uint64_t served_images = 0;
    std::uint64_t failed_requests = 0;
    LatencyHistogram queue_wait;
    LatencyHistogram e2e;
  };
  struct WorkerSlot {
    mutable std::mutex mutex;
    std::array<ClassCounters, kPriorityClassCount> classes{};
    std::uint64_t batches = 0;
    std::uint64_t batched_requests = 0;
    int max_batch_occupancy = 0;
  };
  struct IngressSlot {
    mutable std::mutex mutex;
    std::array<std::uint64_t, kPriorityClassCount> submitted{};
    std::array<std::uint64_t, kPriorityClassCount> rejected{};
    std::array<std::uint64_t, kPriorityClassCount> expired{};
    std::array<LatencyHistogram, kPriorityClassCount> expired_wait{};
  };
  /// Trailing-window throughput: a ring of one-second buckets.
  struct RollingRate {
    static constexpr int kSlots = 16;
    static constexpr int kWindowSeconds = 10;
    struct Slot {
      std::int64_t second = -1;
      std::uint64_t images = 0;
    };
    std::array<Slot, kSlots> slots{};
  };

  std::vector<std::unique_ptr<WorkerSlot>> workers_;
  IngressSlot ingress_;
  mutable std::mutex rate_mutex_;
  RollingRate rate_;
  /// Registry creation time as ns since trace_epoch() — the SAME base
  /// trace spans are stamped on, so uptime, rolling-rate seconds and
  /// trace timestamps can be compared directly.
  std::uint64_t start_ns_;
};

}  // namespace yoloc
