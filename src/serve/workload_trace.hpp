#pragma once
// Recorded serving workloads and their deterministic replay.
//
// When SchedulerOptions::record_admissions is set, the scheduler logs
// every submission — arrival offset from the first one, priority class,
// effective relative deadline and NCHW input geometry — into an
// in-memory admission trace. A WorkloadTrace freezes that log (plus the
// per-class outcome counters and the scheduler shape that produced it)
// into a versioned, CRC-checked binary artifact, the same
// magic/version/CRC discipline as the .yolocplan format.
//
// replay_trace() drives any DeploymentPlan + SchedulerOptions with a
// recorded trace: submissions happen single-threaded in record order,
// so admission ids — and with them the noise-stream offsets and the
// max_microbatch = 1 determinism contract — are reproduced exactly.
// Input CONTENT is synthesized per recorded geometry from a fixed seed
// (the trace records shapes, not pixels), so a replay is
// self-contained: one trace file + one plan file reproduces a serving
// scenario on any host. Pacing (sleeping out the recorded
// inter-arrival gaps, optionally time-scaled) is on by default and can
// be disabled for as-fast-as-possible stress replays.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/metrics_registry.hpp"
#include "serve/request.hpp"

namespace yoloc {

class DeploymentPlan;
struct SchedulerOptions;

/// One recorded submission (accepted or not).
struct AdmissionRecord {
  /// Arrival offset [ns] from the FIRST recorded submission.
  std::uint64_t offset_ns = 0;
  Priority priority = Priority::kBatch;
  /// Effective RELATIVE deadline [ns] that governed the request (after
  /// the scheduler's default was applied); 0 = none.
  std::uint64_t deadline_ns = 0;
  /// NCHW geometry of the submitted input.
  std::array<std::int32_t, 4> shape{1, 0, 0, 0};
};

inline constexpr std::uint32_t kWorkloadTraceFormatVersion = 1;
inline constexpr const char* kWorkloadTraceExtension = ".yoloctrace";

/// A recorded workload: the admission log plus the outcome counters and
/// scheduler shape observed at recording time (the replay tool prints
/// recorded-vs-replayed outcomes side by side).
struct WorkloadTrace {
  std::vector<AdmissionRecord> records;
  /// Scheduler shape the recording ran under (informational; a replay
  /// may override both).
  std::int32_t workers = 0;
  std::int32_t max_microbatch = 0;
  /// Per-class outcomes at recording time.
  std::array<std::uint64_t, kPriorityClassCount> submitted{};
  std::array<std::uint64_t, kPriorityClassCount> served{};
  std::array<std::uint64_t, kPriorityClassCount> expired{};
  std::array<std::uint64_t, kPriorityClassCount> rejected{};

  /// Versioned little-endian encoding ("YOLOCTRC" magic, format
  /// version, CRC32 over the payload).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  /// Inverse of serialize(); throws CheckError on bad magic,
  /// unsupported version, CRC mismatch or truncation.
  static WorkloadTrace deserialize(const std::uint8_t* data,
                                   std::size_t size);
};

void save_workload_trace(const WorkloadTrace& trace, const std::string& path);
WorkloadTrace load_workload_trace(const std::string& path);

struct ReplayOptions {
  /// Sleep out the recorded inter-arrival gaps (scaled by `speed`).
  /// Off = submit as fast as possible.
  bool pace = true;
  /// Time scale when pacing: 2.0 replays twice as fast. Must be > 0.
  double speed = 1.0;
  /// Seed for the synthesized input content (per-geometry, cached).
  std::uint64_t input_seed = 7;
  /// Re-record admissions during the replay (ReplayResult::replayed),
  /// e.g. to verify a replay reproduces the recorded admission order.
  bool record = false;
};

struct ReplayResult {
  /// Scheduler metrics after the replay drained.
  MetricsSnapshot snapshot;
  /// Wall-clock seconds the replay took (submission through drain).
  double seconds = 0.0;
  /// Per-class outcomes observed through the returned futures.
  std::array<std::uint64_t, kPriorityClassCount> served{};
  std::array<std::uint64_t, kPriorityClassCount> expired{};
  std::array<std::uint64_t, kPriorityClassCount> rejected{};
  /// Replayed per-class outcomes equal the recorded ones exactly.
  bool counts_match = false;
  /// The re-recorded trace (ReplayOptions::record only).
  WorkloadTrace replayed;
  /// Chrome trace-event JSON of the replay (only when the scheduler
  /// options set trace_sampling > 0; empty otherwise).
  std::string trace_json;
};

/// Replay `trace` against `plan` under `scheduler_options` (its
/// record_admissions flag is overridden by `options.record`).
/// Submissions run single-threaded in record order, so admission ids
/// are reproduced exactly.
ReplayResult replay_trace(const WorkloadTrace& trace,
                          const DeploymentPlan& plan,
                          const SchedulerOptions& scheduler_options,
                          const ReplayOptions& options = {});

}  // namespace yoloc
