#pragma once
// Continuous-batching serving scheduler over a shared DeploymentPlan.
//
// The scheduling layer between callers and the plan (the software
// counterpart of keeping a mixed ROM+SRAM CiM array pipeline full under
// bursty load): requests enter a three-lane queue (interactive / batch /
// best-effort) with optional deadlines; lanes are scheduled by
// deficit-weighted round-robin (strict priority is the {inf, 1, 0}
// default weight configuration — see LaneWeights), optionally with
// per-lane worker reservations so interactive traffic always has
// headroom; idle workers greedily pull compatible requests (same lane,
// same image geometry) into a forming batch — capped per decision by
// the lane's SLO-derived effective micro-batch — and execute ONE
// forward pass: continuous batching, no fixed batch boundaries, workers
// never idle while compatible work is queued.
//
// Admission control refuses work that cannot be served: lanes have an
// optional depth cap, and a deadline tighter than the rolling per-image
// service estimate is refused up front. A queued request whose deadline
// passes is canceled — its future fails with DeadlineExpiredError and
// no worker ever executes it. Expiry is harvested at every scheduling
// point (batch formation and each submission); since an idle worker
// drains a non-empty queue immediately, a request can only sit past
// its deadline while ALL workers are busy, so cancellation lands no
// later than the end of the shortest in-flight batch (or the next
// submission, whichever comes first).
//
// Determinism contract (inherited from the FIFO InferenceServer it
// replaces): each batch executes on a context reseeded with
// noise_seed + id of its FIRST request (ids are admission-ordered), and
// per-batch stats merge in batch-formation order. With max_microbatch=1
// and a single priority class, formation order equals admission order,
// so request i is bit-identical — outputs AND merged stat sums — to a
// serial ExecutionContext run seeded noise_seed + i, independent of
// worker count. With mixed classes or max_microbatch > 1, batch
// COMPOSITION (and with it the noise-stream alignment and double
// summation order) depends on scheduling; exact-cost outputs stay
// bit-exact per request regardless.
//
// Telemetry: every worker records into its own MetricsRegistry slot —
// queue-wait and end-to-end latency histograms (p50/p95/p99), per-class
// served/failed/expired/rejected counters, batch occupancy and rolling
// throughput — merged on read into a JSON-exportable MetricsSnapshot.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/execution_context.hpp"
#include "serve/metrics_registry.hpp"
#include "serve/request_queue.hpp"
#include "serve/resilience.hpp"
#include "serve/trace.hpp"
#include "serve/workload_trace.hpp"

namespace yoloc {

struct CanaryProbe;  // runtime/deployment_plan.hpp

struct SchedulerOptions {
  /// Worker threads. 0 = parallel_workers() (which honours YOLOC_THREADS).
  int workers = 0;
  /// Max requests fused into one forward pass. 1 = deterministic mode.
  /// Per scheduling decision each lane derives an EFFECTIVE cap from its
  /// SLO budget (see lane_slo); this is the global ceiling.
  int max_microbatch = 8;
  /// Base noise seed; batches derive their stream from it.
  std::uint64_t noise_seed = 2024;
  /// Admission cap per priority lane. 0 = unlimited.
  std::uint64_t max_queue_depth = 0;
  /// Deadline applied to requests submitted without one. Zero = none.
  std::chrono::nanoseconds default_deadline{0};
  /// Cap batch growth by the tightest member deadline against the
  /// rolling per-image service estimate.
  bool deadline_aware_batching = true;
  /// Per-lane DWRR service shares (see LaneWeights). The default,
  /// strict_lane_weights() = {inf, 1, 0}, reproduces the legacy strict
  /// priority policy exactly; finite weights (e.g. {8, 3, 1}) bound
  /// best-effort starvation to its proportional share.
  LaneWeights lane_weights = strict_lane_weights();
  /// Workers dedicated to one lane (carved out of `workers`): the first
  /// lane_reservations[0] workers serve ONLY interactive, the next
  /// [1] only batch, and so on; the rest are shared. Guarantees
  /// headroom: a reserved lane never waits behind another lane's batch.
  /// Sum must leave at least one shared worker.
  std::array<int, kPriorityClassCount> lane_reservations{};
  /// Per-lane latency budget (SLO) driving auto-batching: each
  /// scheduling decision caps the lane's micro-batch at
  /// clamp(slo / ewma_image_estimate, 1, max_microbatch), so a lane
  /// with a tight budget stops fusing large batches as soon as the
  /// rolling estimate says they would overrun it. Zero = no budget
  /// (global max_microbatch applies).
  std::array<std::chrono::nanoseconds, kPriorityClassCount> lane_slo{};
  /// Fraction of requests traced, in [0, 1]. The decision is a pure hash
  /// of the admission id (deterministic across runs and replays); 0.0
  /// (default) disables collection entirely — no buffers, no clock
  /// reads on the hot path. Tracing is observer-only: outputs, stats
  /// and scheduling are bit-identical at any sampling rate.
  double trace_sampling = 0.0;
  /// Per-worker trace buffer capacity in events. A full buffer drops
  /// (and counts) further events rather than stalling the worker.
  std::size_t trace_buffer_events = TraceCollector::kDefaultCapacity;
  /// Record every submission (accepted or not) into an in-memory
  /// admission trace — arrival offset, class, relative deadline, input
  /// geometry — retrievable via recorded_trace() and replayable with
  /// replay_trace() / tools/yoloc_replay.
  bool record_admissions = false;
  /// Resilience layer: canary probes / circuit breakers (requires the
  /// plan to carry a canary suite), worker watchdog, degraded-mode load
  /// shedding. Everything defaults to off — the scheduler then behaves
  /// (and schedules) exactly as before this layer existed.
  ResilienceOptions resilience;
  /// TEST-ONLY fault hook: when set, every worker calls it with its
  /// index right before executing a picked batch. Chaos tests use it to
  /// simulate a hung worker (block inside the hook) and exercise the
  /// watchdog / shutdown-abandonment paths.
  std::function<void(int)> worker_fault_hook;
};

class Scheduler {
 public:
  explicit Scheduler(const DeploymentPlan& plan, SchedulerOptions options = {});
  /// Graceful: drains the queue by priority, then joins the workers.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Enqueue one request (rank-4 NCHW, any leading batch extent >= 1).
  /// The returned future yields the model output for exactly that
  /// input — or throws AdmissionError (refused at admission),
  /// DeadlineExpiredError (canceled while queued), or the execution
  /// error. Admission rejections resolve the future immediately and do
  /// NOT consume a request id.
  std::future<Tensor> submit(Tensor images, SubmitOptions options = {});

  /// Block until every accepted request has resolved (served, failed,
  /// or expired) — futures fulfilled AND metrics/stats accounting
  /// settled.
  void wait_idle();

  /// Stop admission, serve everything still queued (highest priority
  /// first; expired requests are canceled, not served), join workers.
  /// Idempotent; the destructor calls it.
  void shutdown();

  /// Merged telemetry; see MetricsSnapshot::to_json() for the schema.
  [[nodiscard]] MetricsSnapshot metrics_snapshot() const;
  /// Prometheus text exposition (version 0.0.4) of the same snapshot;
  /// every metric name is documented in docs/serving.md (enforced by
  /// the `docs`-labeled CTest).
  [[nodiscard]] std::string to_prometheus() const {
    return metrics_snapshot().to_prometheus();
  }
  /// Zero the telemetry counters/histograms (macro stats are separate —
  /// see reset_stats()). Call after wait_idle() to scope a later
  /// snapshot to a measurement phase, excluding warmup traffic.
  void reset_metrics() { metrics_.reset(); }

  /// Merged macro activity across completed batches (deterministic
  /// batch-formation-order merge).
  [[nodiscard]] MacroRunStats rom_stats() const;
  [[nodiscard]] MacroRunStats sram_stats() const;
  [[nodiscard]] double total_energy_pj() const;
  void reset_stats();

  [[nodiscard]] int worker_count() const {
    return static_cast<int>(threads_.size());
  }
  [[nodiscard]] const SchedulerOptions& options() const { return options_; }

  /// The trace collector (always constructed; empty when
  /// trace_sampling == 0). Safe to read concurrently with serving.
  [[nodiscard]] const TraceCollector& trace() const { return trace_; }
  /// Chrome trace-event JSON of everything collected so far; load in
  /// Perfetto (ui.perfetto.dev) or chrome://tracing.
  [[nodiscard]] std::string trace_json() const {
    return trace_.to_chrome_json();
  }
  /// trace_json() written to `path` (throws std::runtime_error on I/O
  /// failure).
  void write_trace(const std::string& path) const {
    trace_.write_chrome_json(path);
  }

  /// Admission trace recorded so far (requires record_admissions).
  /// Counter fields are filled from the live metrics, so after
  /// wait_idle() they reflect the final outcome of every recorded
  /// submission.
  [[nodiscard]] WorkloadTrace recorded_trace() const;

  /// Point-in-time resilience state (also embedded in
  /// metrics_snapshot().resilience).
  [[nodiscard]] ResilienceSnapshot resilience_snapshot() const {
    return resilience_.snapshot();
  }
  /// Force-trip worker `w`'s circuit breaker (operator action; bench
  /// degraded-mode scenarios). Recovery requires consecutive canary
  /// passes as usual.
  void trip_breaker(int w);

 private:
  struct BatchStats {
    MacroRunStats rom;
    MacroRunStats sram;
  };

  /// One batch (or canary probe) in flight on one worker. The settle
  /// protocol: exactly ONE of {the worker, the watchdog, shutdown}
  /// settles the batch's promises — whoever flips `settled` under `m`
  /// wins; the others skip fulfillment AND its accounting. The requests
  /// pointer targets the worker's stack-local batch, valid until the
  /// worker observes `settled` and moves on (which it can only do after
  /// the settler releases `m`). Lock order: `m` before Scheduler::mutex_
  /// (never the reverse).
  struct InFlightBatch {
    std::mutex m;
    bool settled = false;
    std::uint64_t batch_id = 0;
    int worker = -1;
    ServeClock::time_point start{};
    std::vector<ServeRequest>* requests = nullptr;
  };

  /// Shutdown-vs-hung-worker handshake, one per worker. A worker flags
  /// `in_hook` around the fault hook; shutdown() joins workers normally
  /// but DETACHES one stuck inside the hook (`abandoned`), settles its
  /// batch, and returns — graceful shutdown must not wait forever on a
  /// hung worker. A heap control block (not a Scheduler member) so the
  /// detached thread can consult it after the Scheduler is gone.
  struct WorkerAbandon {
    std::mutex m;
    bool in_hook = false;
    bool shutting_down = false;
    bool abandoned = false;
  };

  void worker_loop(int worker_index);
  /// Periodically enqueue the plan's canary probes to every worker.
  void canary_loop();
  /// Periodically declare overdue in-flight batches hung.
  void watchdog_loop();
  /// Settle `ifb` with WorkerHungError (watchdog fire or shutdown
  /// abandonment) and run its completion accounting. No-op if already
  /// settled. `quarantine` marks the worker unhealthy afterwards.
  void fail_hung_batch(const std::shared_ptr<InFlightBatch>& ifb,
                       bool quarantine);
  /// Fail `expired` fast (DeadlineExpiredError) and settle accounting.
  /// Caller must have added them to in_flight_ under the queue lock.
  void cancel_expired(std::vector<ServeRequest> expired);

  /// Effective per-lane micro-batch caps for one scheduling decision:
  /// the SLO-aware auto-batch rule described at SchedulerOptions::
  /// lane_slo, evaluated against the current service estimate `est`.
  [[nodiscard]] std::array<int, kPriorityClassCount> lane_batch_caps(
      std::uint64_t est_image_ns) const;

  const DeploymentPlan* plan_;
  SchedulerOptions options_;
  MetricsRegistry metrics_;
  TraceCollector trace_;
  ResilienceManager resilience_;
  std::vector<std::thread> threads_;
  std::thread canary_thread_;
  std::thread watchdog_thread_;
  /// Lane eligibility per worker (reserved workers get one lane).
  std::vector<LaneMask> worker_masks_;
  bool has_reservations_ = false;

  /// Rolling per-image service-time estimate [ns] feeding admission
  /// feasibility and the deadline-aware batching window. Monotonic
  /// loads only; 0 until the first batch completes.
  std::atomic<std::uint64_t> ewma_image_ns_{0};

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  /// Paces the canary/watchdog threads (signaled only at shutdown).
  std::condition_variable aux_cv_;
  RequestQueue queue_;
  bool stop_ = false;
  /// Per-worker pending canary probes (guarded by mutex_). Probes are
  /// checked FIRST in the worker wait loop — even a breaker-open worker
  /// runs them (half-open probing is what closes the breaker again).
  std::vector<std::deque<const CanaryProbe*>> probe_slots_;
  /// Per-worker in-flight batch (guarded by mutex_; null when idle).
  /// Maintained only when the watchdog or the fault hook is active.
  std::vector<std::shared_ptr<InFlightBatch>> inflight_batches_;
  /// Per-worker shutdown handshake blocks (see WorkerAbandon).
  std::vector<std::shared_ptr<WorkerAbandon>> abandon_;
  std::uint64_t next_request_id_ = 0;
  std::uint64_t next_batch_id_ = 0;
  std::uint64_t next_merge_id_ = 0;
  int in_flight_ = 0;
  std::map<std::uint64_t, BatchStats> pending_stats_;
  MacroRunStats rom_total_;
  MacroRunStats sram_total_;

  /// Admission recording (record_admissions only); guarded by mutex_.
  /// Offsets are relative to the FIRST recorded submission, so a replay
  /// reproduces inter-arrival gaps without an absolute clock.
  std::vector<AdmissionRecord> records_;
  bool record_epoch_set_ = false;
  ServeClock::time_point record_epoch_{};
};

}  // namespace yoloc
