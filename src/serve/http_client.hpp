#pragma once
// Minimal blocking HTTP/1.1 client — just enough to talk to HttpServer
// from tests and tools/yoloc_loadgen (no external dependencies). One
// client = one keep-alive connection, reused across requests and
// transparently re-established when the server closed it (stale
// keep-alive replay). NOT thread-safe; give each thread its own client.

#include <chrono>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace yoloc {

struct HttpResponse {
  int status = 0;
  std::map<std::string, std::string> headers;  ///< lowercased keys
  std::string body;
};

class HttpClient {
 public:
  HttpClient(std::string host, int port,
             std::chrono::milliseconds timeout = std::chrono::milliseconds(
                 5000));
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Send one request and read the full response. Connects lazily;
  /// retries once over a fresh connection when a reused keep-alive
  /// socket turns out to be dead. Throws std::runtime_error on connect
  /// failure, timeout, or a malformed response.
  HttpResponse request(
      const std::string& method, const std::string& target,
      const std::string& body = {},
      const std::vector<std::pair<std::string, std::string>>& headers = {});

  HttpResponse get(const std::string& target) {
    return request("GET", target);
  }
  HttpResponse post(const std::string& target, const std::string& body,
                    const std::string& content_type = "application/json") {
    return request("POST", target, body, {{"Content-Type", content_type}});
  }

  /// Drop the kept-alive socket (next request reconnects).
  void close();

 private:
  void connect_socket();
  HttpResponse read_response();

  std::string host_;
  int port_;
  std::chrono::milliseconds timeout_;
  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the previous response
};

}  // namespace yoloc
