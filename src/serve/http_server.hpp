#pragma once
// HTTP/1.1 serving front-end over the scheduler — the network edge of
// the serving stack (no external dependencies; poll(2)-based reactor).
//
// Architecture: one event-loop thread owns every socket (accept, read,
// parse, write, timeouts) with non-blocking I/O under poll(2); a small
// pool of handler threads carries the only blocking work — waiting on
// the scheduler future of an inference request — and hands finished
// response bytes back to the loop through a self-pipe-notified
// completion queue. GET endpoints are served inline on the loop (they
// are snapshot reads); POST /infer rides the handler pool so a slow
// forward pass never stalls connection handling.
//
// Endpoints (every path is documented in docs/serving.md; the
// `docs`-labeled CTest fails when one is missing):
//   POST /infer    rank-4 NCHW tensor in (JSON `data_b64` or raw f32
//                  body), logits + latency out as JSON
//   GET  /metrics  Prometheus text exposition of the live scheduler
//   GET  /healthz  readiness: plan loaded + worker pool up, 503 on drain
//   GET  /plan     loaded .yolocplan summary: options, packed-weight
//                  footprint, section table with CRC verdicts
//
// Overload maps onto the scheduler's admission control instead of
// unbounded queueing: a lane at its depth cap answers 429
// (QueueDepthError), an infeasible or already-dead deadline answers 503
// with a Retry-After hint (InfeasibleDeadlineError /
// DeadlineExpiredError), and execution failures answer 500. Connection
// hygiene is bounded everywhere: header and body byte caps (431/413),
// per-connection read and write deadlines (slow-loris readers get 408
// and the socket closed), and a connection cap at accept time.
//
// Graceful drain (`drain()`, typically wired to SIGTERM): stop
// accepting, close idle keep-alive connections, finish every request
// already received — queued inference drains through the scheduler's
// priority lanes as usual — flush the responses, then stop the loop.
// In-flight work is never abandoned; new work is refused at the socket.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/scheduler.hpp"

namespace yoloc {

/// Endpoint paths the server routes, for the docs gate and CLIs
/// (mirrors kTraceSpanNames for span names).
inline constexpr const char* kHttpEndpoints[] = {"/infer", "/metrics",
                                                 "/healthz", "/plan"};

struct HttpServerOptions {
  /// Bind address; loopback by default (put a real LB in front for
  /// anything public).
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  int port = 0;
  int listen_backlog = 64;
  /// Accept cap: connections beyond this are accepted and immediately
  /// answered 503 + closed, so a connection flood cannot starve the fds
  /// of connections already being served.
  int max_connections = 256;
  /// Request-line + headers byte cap (431 above it).
  std::size_t max_header_bytes = 8192;
  /// Body byte cap (413 above it) — bounds in-flight request memory.
  std::size_t max_body_bytes = 8u << 20;
  /// A connection that stalls mid-request longer than this is answered
  /// 408 (when headers were partially received) and closed. Idle
  /// keep-alive connections are closed silently on the same clock.
  std::chrono::milliseconds read_timeout{5000};
  /// A connection that cannot absorb its response bytes within this is
  /// closed.
  std::chrono::milliseconds write_timeout{5000};
  /// Threads blocking on inference futures — bounds concurrently
  /// *waiting* HTTP requests, not scheduler concurrency (the scheduler
  /// has its own worker pool and queue).
  int handler_threads = 4;
  /// Retry-After hint [s] on 429/503 responses.
  int retry_after_s = 1;
};

/// Monotonic counters for tests and ops; snapshot via stats().
struct HttpServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_refused = 0;  ///< over max_connections
  std::uint64_t requests = 0;             ///< fully parsed requests routed
  std::uint64_t responses_2xx = 0;
  std::uint64_t responses_4xx = 0;
  std::uint64_t responses_5xx = 0;
  std::uint64_t read_timeouts = 0;
  std::uint64_t write_timeouts = 0;
  /// Self-pipe wakeups coalesced because the pipe was already full — a
  /// pending wakeup covers them, so this counts pressure, not loss.
  std::uint64_t wake_overflows = 0;
};

class HttpServer {
 public:
  /// Binds, listens and starts serving immediately. `plan` must be the
  /// same plan `scheduler` serves (readiness + /plan summary);
  /// `plan_path` (optional) names the .yolocplan artifact backing it so
  /// GET /plan can report the container section table. Throws
  /// std::runtime_error when the socket cannot be bound.
  HttpServer(Scheduler& scheduler, const DeploymentPlan& plan,
             HttpServerOptions options = {}, std::string plan_path = {});
  /// Graceful: drain() then join.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The bound TCP port (the chosen one when options.port was 0).
  [[nodiscard]] int port() const { return port_; }

  /// Graceful shutdown: stop accepting, serve everything already
  /// received (queued lanes drain by priority inside the scheduler),
  /// flush responses, stop threads. Blocks until fully stopped.
  /// Idempotent and thread/signal-safe to *initiate* (the blocking wait
  /// happens in the calling thread).
  void drain();

  [[nodiscard]] bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  [[nodiscard]] HttpServerStats stats() const;

 private:
  struct Connection;
  struct ParsedRequest;
  struct HandlerJob;
  struct Completion;

  void loop();
  void handler_loop();
  void wake();

  // Loop-side helpers (all called on the loop thread).
  void accept_new_connections();
  void on_readable(Connection& c);
  void on_writable(Connection& c);
  /// Write buffered response bytes; on full flush either closes or
  /// re-arms the parser. Never re-enters the parser itself — that keeps
  /// the respond/parse cycle iterative (see on_writable).
  void flush_out(Connection& c);
  bool try_parse_and_route(Connection& c);
  void route(Connection& c, ParsedRequest req);
  void queue_response(Connection& c, int status, const std::string& body,
                      const char* content_type, bool close_after,
                      bool retry_after = false);
  void drain_completions();
  void close_connection(Connection& c);

  // Handler-side: execute one /infer request, return the response.
  Completion run_infer(const HandlerJob& job);

  std::string plan_json();  // built lazily, cached (plans are immutable)

  Scheduler& scheduler_;
  const DeploymentPlan& plan_;
  HttpServerOptions options_;
  std::string plan_path_;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  int port_ = 0;

  std::vector<std::unique_ptr<Connection>> connections_;
  std::uint64_t next_generation_ = 1;
  /// /infer requests handed to the pool whose completions have not been
  /// queued back yet (loop-thread view; gates drain completion).
  int inflight_handlers_ = 0;

  std::mutex handler_mutex_;
  std::condition_variable handler_cv_;
  std::deque<HandlerJob> handler_queue_;
  bool handler_stop_ = false;

  std::mutex completion_mutex_;
  std::deque<Completion> completions_;

  std::mutex plan_json_mutex_;
  std::string plan_json_cache_;

  mutable std::mutex stats_mutex_;
  HttpServerStats stats_;

  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};
  std::mutex drain_mutex_;  // serializes drain() callers
  std::thread loop_thread_;
  std::vector<std::thread> handler_threads_;
};

}  // namespace yoloc
