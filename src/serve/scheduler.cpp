#include "serve/scheduler.hpp"

#include <algorithm>
#include <cstring>
#include <exception>
#include <string>
#include <utility>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "runtime/deployment_plan.hpp"
#include "tensor/ops.hpp"

namespace yoloc {

namespace {

/// Copy request inputs into one stacked batch along axis 0.
Tensor stack_inputs(const std::vector<ServeRequest>& batch) {
  std::vector<const Tensor*> inputs;
  inputs.reserve(batch.size());
  for (const ServeRequest& r : batch) inputs.push_back(&r.input);
  return concat_rows(inputs);
}

}  // namespace

Scheduler::Scheduler(const DeploymentPlan& plan, SchedulerOptions options)
    : plan_(&plan),
      options_(options),
      metrics_(options.workers > 0 ? options.workers
                                   : static_cast<int>(parallel_workers())),
      trace_(options.workers > 0 ? options.workers
                                 : static_cast<int>(parallel_workers()),
             options.trace_sampling,
             std::max<std::size_t>(options.trace_buffer_events, 1)),
      resilience_(options.workers > 0 ? options.workers
                                      : static_cast<int>(parallel_workers()),
                  options.resilience) {
  if (options_.workers <= 0) {
    options_.workers = static_cast<int>(parallel_workers());
  }
  YOLOC_CHECK(options_.max_microbatch >= 1, "scheduler: max_microbatch >= 1");
  int reserved = 0;
  for (int c = 0; c < kPriorityClassCount; ++c) {
    const auto i = static_cast<std::size_t>(c);
    YOLOC_CHECK(options_.lane_reservations[i] >= 0,
                "scheduler: lane reservation must be >= 0");
    YOLOC_CHECK(options_.lane_slo[i].count() >= 0,
                "scheduler: lane SLO must be >= 0");
    reserved += options_.lane_reservations[i];
  }
  // Every lane must stay reachable: lanes without a reservation are only
  // served by shared workers, so at least one must remain.
  YOLOC_CHECK(reserved < options_.workers,
              "scheduler: lane reservations must leave a shared worker");
  has_reservations_ = reserved > 0;
  queue_.set_weights(options_.lane_weights);  // validates the weights

  worker_masks_.reserve(static_cast<std::size_t>(options_.workers));
  for (int c = 0; c < kPriorityClassCount; ++c) {
    const int n = options_.lane_reservations[static_cast<std::size_t>(c)];
    for (int i = 0; i < n; ++i) {
      worker_masks_.push_back(lane_bit(static_cast<Priority>(c)));
    }
  }
  while (static_cast<int>(worker_masks_.size()) < options_.workers) {
    worker_masks_.push_back(kAllLanes);
  }

  probe_slots_.resize(static_cast<std::size_t>(options_.workers));
  inflight_batches_.resize(static_cast<std::size_t>(options_.workers));
  abandon_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    abandon_.push_back(std::make_shared<WorkerAbandon>());
  }

  threads_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
  // Canaries need probes to replay; a period without a recorded suite is
  // a no-op (the plan defines what "healthy output" means).
  if (options_.resilience.canary_period.count() > 0 &&
      !plan.canaries().empty()) {
    canary_thread_ = std::thread([this] { canary_loop(); });
  }
  if (options_.resilience.watchdog_timeout.count() > 0) {
    watchdog_thread_ = std::thread([this] { watchdog_loop(); });
  }
}

std::array<int, kPriorityClassCount> Scheduler::lane_batch_caps(
    std::uint64_t est_image_ns) const {
  std::array<int, kPriorityClassCount> caps;
  caps.fill(options_.max_microbatch);
  if (est_image_ns == 0) return caps;  // no estimate yet: global cap
  for (int c = 0; c < kPriorityClassCount; ++c) {
    const auto i = static_cast<std::size_t>(c);
    const std::int64_t slo_ns = options_.lane_slo[i].count();
    if (slo_ns <= 0) continue;
    const auto budget = static_cast<std::uint64_t>(slo_ns) / est_image_ns;
    caps[i] = std::clamp(static_cast<int>(std::min<std::uint64_t>(
                             budget, static_cast<std::uint64_t>(
                                         options_.max_microbatch))),
                         1, options_.max_microbatch);
  }
  return caps;
}

Scheduler::~Scheduler() { shutdown(); }

void Scheduler::shutdown() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  aux_cv_.notify_all();
  if (canary_thread_.joinable()) canary_thread_.join();
  if (watchdog_thread_.joinable()) watchdog_thread_.join();
  for (std::size_t w = 0; w < threads_.size(); ++w) {
    std::thread& t = threads_[w];
    if (!t.joinable()) continue;
    const std::shared_ptr<WorkerAbandon> ab = abandon_[w];
    bool stuck = false;
    {
      std::lock_guard g(ab->m);
      ab->shutting_down = true;
      if (ab->in_hook) {
        ab->abandoned = true;
        stuck = true;
      }
    }
    if (!stuck) {
      t.join();
      continue;
    }
    // The worker is wedged inside the fault hook. Graceful shutdown must
    // not wait forever on a hung worker: settle its batch (the drain's
    // futures resolve with WorkerHungError) and detach the thread — it
    // exits on its own the moment the hook releases it.
    std::shared_ptr<InFlightBatch> ifb;
    {
      std::lock_guard lock(mutex_);
      ifb = inflight_batches_[w];
      inflight_batches_[w].reset();
    }
    if (ifb != nullptr) fail_hung_batch(ifb, /*quarantine=*/false);
    t.detach();
  }
  // Workers drain the queue before honoring stop_, so residual work only
  // exists when no surviving healthy worker could pop it (abandoned or
  // breaker-open workers). Nothing will ever serve it now — fail it.
  std::vector<ServeRequest> residual;
  {
    std::lock_guard lock(mutex_);
    residual = queue_.take_all();
  }
  if (!residual.empty()) {
    for (ServeRequest& r : residual) {
      metrics_.record_rejected(r.priority);
      r.promise.set_exception(std::make_exception_ptr(WorkerHungError(
          "request " + std::to_string(r.id) +
          " unserved at shutdown (no healthy worker drained it)")));
    }
    std::lock_guard lock(mutex_);
    if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
  }
}

void Scheduler::trip_breaker(int w) {
  YOLOC_CHECK(w >= 0 && w < worker_count(), "scheduler: bad worker index");
  resilience_.force_trip(w);
}

std::future<Tensor> Scheduler::submit(Tensor images, SubmitOptions options) {
  YOLOC_CHECK(images.rank() == 4 && images.shape()[0] >= 1,
              "scheduler: rank-4 NCHW request required");
  const int cls = static_cast<int>(options.priority);
  YOLOC_CHECK(cls >= 0 && cls < kPriorityClassCount,
              "scheduler: bad priority class");

  ServeRequest req;
  req.input = std::move(images);
  req.priority = options.priority;
  std::future<Tensor> future = req.promise.get_future();
  const auto now = ServeClock::now();
  req.submit_time = now;
  const auto relative_deadline = options.deadline.count() != 0
                                     ? options.deadline
                                     : options_.default_deadline;
  if (relative_deadline.count() != 0) req.deadline = now + relative_deadline;

  std::exception_ptr rejection;
  std::vector<ServeRequest> newly_expired;
  {
    std::lock_guard lock(mutex_);
    YOLOC_CHECK(!stop_, "scheduler: submit after shutdown");
    // Count the submission before the request becomes poppable (and not
    // at all when the shutdown check above throws): snapshots must never
    // show served > submitted for a class.
    metrics_.record_submitted(options.priority);
    if (options_.record_admissions) {
      // Record EVERY submission — accepted or not — so a replay
      // reproduces admission pressure, not just the accepted subset.
      if (!record_epoch_set_) {
        record_epoch_ = now;
        record_epoch_set_ = true;
      }
      AdmissionRecord rec;
      rec.offset_ns = ns_between(record_epoch_, now);
      rec.priority = options.priority;
      rec.deadline_ns = relative_deadline.count() > 0
                            ? static_cast<std::uint64_t>(
                                  relative_deadline.count())
                            : 0;
      const auto& shape = req.input.shape();
      for (int a = 0; a < 4; ++a) {
        rec.shape[static_cast<std::size_t>(a)] = shape[static_cast<std::size_t>(a)];
      }
      records_.push_back(rec);
    }
    // Harvest dead deadlines before the depth check: every submission is
    // a scheduling point, so queued-expired requests fail fast even
    // while all workers are busy — and they stop holding lane slots
    // against the admission cap.
    newly_expired = queue_.take_expired(now);
    in_flight_ += static_cast<int>(newly_expired.size());
    // Degraded-mode shedding: when healthy capacity drops below a lane's
    // threshold, turn the lane away up front (healthy_fraction() is a
    // lock-free mirror). Interactive is NEVER shed — it queues through
    // the outage and drains on recovery.
    const auto& res = options_.resilience;
    const double healthy = resilience_.healthy_fraction();
    const bool shed =
        (options.priority == Priority::kBestEffort &&
         res.shed_best_effort_below > 0.0 &&
         healthy < res.shed_best_effort_below) ||
        (options.priority == Priority::kBatch &&
         res.shed_batch_below > 0.0 && healthy < res.shed_batch_below);
    if (shed) {
      resilience_.record_shed(options.priority);
      rejection = std::make_exception_ptr(ShedError(
          std::string(priority_name(options.priority)) + " lane shed: " +
          std::to_string(resilience_.healthy_workers()) + "/" +
          std::to_string(worker_count()) + " workers healthy"));
    } else
    switch (queue_.admit(options.priority, now, req.deadline,
                         req.input.shape()[0], options_.max_queue_depth,
                         ewma_image_ns_.load(std::memory_order_relaxed))) {
      case RequestQueue::Admission::kAccept:
        // Ids are admission-ordered: the id doubles as the request's
        // noise-stream offset, so rejections must not consume one.
        req.id = next_request_id_++;
        queue_.push(std::move(req));
        break;
      case RequestQueue::Admission::kQueueFull:
        rejection = std::make_exception_ptr(QueueDepthError(
            std::string(priority_name(options.priority)) +
            " lane at depth cap " +
            std::to_string(options_.max_queue_depth)));
        break;
      case RequestQueue::Admission::kAlreadyExpired:
        rejection = std::make_exception_ptr(
            DeadlineExpiredError("deadline not in the future at submit"));
        break;
      case RequestQueue::Admission::kInfeasible:
        rejection = std::make_exception_ptr(InfeasibleDeadlineError(
            "deadline tighter than the estimated service time"));
        break;
    }
  }
  if (rejection) {
    metrics_.record_rejected(options.priority);
    req.promise.set_exception(rejection);
  } else if (has_reservations_ ||
             resilience_.healthy_workers() < worker_count()) {
    // notify_one could wake a worker whose lane mask excludes this
    // request — or an unhealthy worker that refuses to pop — and it
    // would go straight back to sleep with nobody else woken (a lost
    // wakeup). With reservations or degraded capacity, wake everyone.
    work_cv_.notify_all();
  } else {
    work_cv_.notify_one();
  }
  if (!newly_expired.empty()) cancel_expired(std::move(newly_expired));
  return future;
}

void Scheduler::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
}

MetricsSnapshot Scheduler::metrics_snapshot() const {
  std::array<std::uint64_t, kPriorityClassCount> depths{};
  {
    std::lock_guard lock(mutex_);
    depths = queue_.depths();
  }
  MetricsSnapshot snap = metrics_.snapshot(depths);
  snap.resilience = resilience_.snapshot();
  return snap;
}

WorkloadTrace Scheduler::recorded_trace() const {
  WorkloadTrace trace;
  trace.workers = worker_count();
  trace.max_microbatch = options_.max_microbatch;
  {
    std::lock_guard lock(mutex_);
    trace.records = records_;
  }
  const MetricsSnapshot snap = metrics_snapshot();
  for (int c = 0; c < kPriorityClassCount; ++c) {
    const auto i = static_cast<std::size_t>(c);
    trace.submitted[i] = snap.classes[i].submitted;
    trace.served[i] = snap.classes[i].served_requests;
    trace.expired[i] = snap.classes[i].expired_requests;
    trace.rejected[i] = snap.classes[i].rejected_requests;
  }
  return trace;
}

MacroRunStats Scheduler::rom_stats() const {
  std::lock_guard lock(mutex_);
  return rom_total_;
}

MacroRunStats Scheduler::sram_stats() const {
  std::lock_guard lock(mutex_);
  return sram_total_;
}

double Scheduler::total_energy_pj() const {
  std::lock_guard lock(mutex_);
  return rom_total_.energy_pj() + sram_total_.energy_pj();
}

void Scheduler::reset_stats() {
  std::lock_guard lock(mutex_);
  rom_total_ = MacroRunStats{};
  sram_total_ = MacroRunStats{};
}

void Scheduler::cancel_expired(std::vector<ServeRequest> expired) {
  const auto now = ServeClock::now();
  for (ServeRequest& r : expired) {
    metrics_.record_expired(r.priority, ns_between(r.submit_time, now));
    r.promise.set_exception(std::make_exception_ptr(DeadlineExpiredError(
        "request " + std::to_string(r.id) + " (" +
        priority_name(r.priority) + ") canceled while queued")));
  }
  std::lock_guard lock(mutex_);
  in_flight_ -= static_cast<int>(expired.size());
  if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
}

void Scheduler::worker_loop(int worker_index) {
  // Request-level parallelism: inner tensor kernels run inline rather
  // than re-entering the shared parallel_for pool.
  ParallelSerialGuard serial_guard;
  ExecutionContext ctx(*plan_, options_.noise_seed);
  const auto widx = static_cast<std::size_t>(worker_index);
  const LaneMask mask = worker_masks_[widx];
  // Local copies survive Scheduler destruction — all a detached
  // (abandoned) worker may touch on its way out.
  const std::shared_ptr<WorkerAbandon> ab = abandon_[widx];
  const bool track_inflight =
      options_.resilience.watchdog_timeout.count() > 0 ||
      options_.worker_fault_hook != nullptr;

  bool last_was_probe = false;
  for (;;) {
    std::vector<ServeRequest> batch;
    std::vector<ServeRequest> expired;
    const CanaryProbe* probe = nullptr;
    std::uint64_t batch_id = 0;
    ServeClock::time_point pickup{};
    {
      std::unique_lock lock(mutex_);
      for (;;) {
        // Canary probes ahead of traffic — and regardless of breaker
        // state: a tripped worker keeps probing (half-open), which is
        // the only way its breaker ever closes again. One exception:
        // right after running a probe, waiting traffic goes first, so
        // even a canary period shorter than one inference can claim at
        // most every other slot of a saturated healthy worker.
        const bool traffic_waiting =
            resilience_.worker_healthy(worker_index) &&
            queue_.has_work(mask);
        if (!probe_slots_[widx].empty() &&
            !(last_was_probe && traffic_waiting)) {
          probe = probe_slots_[widx].front();
          probe_slots_[widx].pop_front();
          break;
        }
        const auto now = ServeClock::now();
        // Expiry first: a dead deadline must never occupy a worker or
        // ride along in a batch. Workers harvest ALL lanes regardless
        // of their mask — cancellation is cheap and lane-agnostic.
        expired = queue_.take_expired(now);
        if (!expired.empty()) {
          // Count canceled requests as in-flight until their futures
          // resolve, so wait_idle() cannot return with promises pending.
          in_flight_ += static_cast<int>(expired.size());
          break;
        }
        // An unhealthy worker (breaker open or quarantined) takes no
        // traffic; it sleeps until a probe (or recovery) arrives.
        if (traffic_waiting) {
          const std::uint64_t est =
              ewma_image_ns_.load(std::memory_order_relaxed);
          const std::uint64_t window_est =
              options_.deadline_aware_batching ? est : 0;
          batch = queue_.pop_batch(lane_batch_caps(est), now, window_est,
                                   mask);
          batch_id = next_batch_id_++;
          in_flight_ += static_cast<int>(batch.size());
          pickup = now;
          break;
        }
        if (stop_) return;
        // A worker only sleeps when no lane in its mask has work
        // (pop_batch always serves some eligible non-empty lane), so
        // there is never a queued deadline to time out against here:
        // expiry is harvested at the scheduling points — batch
        // formation above and every submit().
        work_cv_.wait(lock);
      }
    }

    if (probe != nullptr) {
      // Replay the probe on this worker's own context: fixed seed,
      // fresh stats, result compared bit-exactly against the golden
      // logits. Probe stats are never merged and no request id is
      // consumed — canaries are invisible to the determinism contract.
      ctx.reseed(probe->seed);
      ctx.reset_stats();
      bool pass = false;
      try {
        const Tensor out = ctx.infer(probe->input);
        pass = out.shape() == probe->golden.shape() &&
               std::memcmp(out.data(), probe->golden.data(),
                           out.size() * sizeof(float)) == 0;
      } catch (...) {
        pass = false;
      }
      resilience_.record_canary(worker_index, pass);
      last_was_probe = true;
      continue;
    }

    if (!expired.empty()) {
      cancel_expired(std::move(expired));
      continue;
    }
    last_was_probe = false;

    // Tracing (observer-only): a batch is traced when ANY member's
    // admission id samples in. Batch-scoped spans carry the batch id
    // plus the FIRST member's request id; per-request spans carry the
    // exact id of each sampled member.
    const bool batch_traced = [&] {
      if (!trace_.enabled()) return false;
      for (const ServeRequest& r : batch) {
        if (trace_.sampled(r.id)) return true;
      }
      return false;
    }();
    const auto emit_span = [&](const char* name, std::uint64_t request_id,
                               std::uint64_t start_ns, std::uint64_t end_ns,
                               std::int32_t requests, std::int32_t images) {
      TraceEvent ev;
      ev.name = name;
      ev.request_id = request_id;
      ev.batch_id = batch_id;
      ev.start_ns = start_ns;
      ev.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
      ev.requests = requests;
      ev.images = images;
      ev.tid = worker_index;
      trace_.emit(worker_index, ev);
    };
    const std::uint64_t pickup_ns =
        batch_traced ? trace_ns_since_epoch(pickup) : 0;
    if (batch_traced) {
      for (const ServeRequest& r : batch) {
        if (!trace_.sampled(r.id)) continue;
        emit_span(kSpanQueueWait, r.id, trace_ns_since_epoch(r.submit_time),
                  pickup_ns, 0, 0);
      }
    }

    // Derive this batch's noise stream from its first request so results
    // do not depend on which worker picked the batch up.
    ctx.reseed(options_.noise_seed + batch.front().id);
    ctx.reset_stats();

    BatchTraceSink layer_sink(&trace_, worker_index, batch.front().id,
                              batch_id);
    if (batch_traced) {
      // Batch formation: pickup (queue pop under the lock) until the
      // context is staged for execution.
      emit_span(kSpanBatchFormation, batch.front().id, pickup_ns,
                trace_now_ns(), static_cast<std::int32_t>(batch.size()), 0);
      ctx.set_layer_trace(&layer_sink);
    }

    // Watchdog registration: publish this batch as in flight BEFORE the
    // fault hook / forward pass, so a hang anywhere inside is visible.
    std::shared_ptr<InFlightBatch> ifb;
    if (track_inflight) {
      ifb = std::make_shared<InFlightBatch>();
      ifb->batch_id = batch_id;
      ifb->worker = worker_index;
      ifb->start = ServeClock::now();
      ifb->requests = &batch;
      std::lock_guard lock(mutex_);
      inflight_batches_[widx] = ifb;
    }
    if (options_.worker_fault_hook) {
      bool run_hook = false;
      {
        std::lock_guard g(ab->m);
        if (!ab->shutting_down) {
          ab->in_hook = true;
          run_hook = true;
        }
      }
      if (run_hook) {
        options_.worker_fault_hook(worker_index);
        std::lock_guard g(ab->m);
        ab->in_hook = false;
        // Shutdown detached this thread while it was wedged in the hook
        // and already settled the batch: the Scheduler may be destroyed
        // by now, so leave without touching any member.
        if (ab->abandoned) return;
      }
    }

    Tensor output;
    std::exception_ptr error;
    int total_images = 0;
    const auto exec_start = ServeClock::now();
    try {
      if (batch.size() == 1) {
        total_images = batch[0].input.shape()[0];
        output = ctx.infer(batch[0].input);
      } else {
        Tensor stacked = stack_inputs(batch);
        total_images = stacked.shape()[0];
        output = ctx.infer(stacked);
      }
    } catch (...) {
      error = std::current_exception();
    }
    const auto exec_end = ServeClock::now();
    if (batch_traced) {
      ctx.set_layer_trace(nullptr);
      emit_span(kSpanExecute, batch.front().id,
                trace_ns_since_epoch(exec_start),
                trace_ns_since_epoch(exec_end),
                static_cast<std::int32_t>(batch.size()),
                std::max(total_images, 0));
    }

    // Fulfill promises BEFORE the completion accounting below: wait_idle()
    // promises that every accepted request has completed, so futures must
    // be ready by the time in_flight_ reaches zero.
    const auto fulfill = [&] {
      if (error) {
        for (ServeRequest& r : batch) r.promise.set_exception(error);
        return;
      }
      int row = 0;
      for (ServeRequest& r : batch) {
        const int rows = r.input.shape()[0];
        // Scatter failures (e.g. bad_alloc slicing a fused batch) fail
        // the affected request instead of escaping the worker thread.
        try {
          if (batch.size() == 1) {
            r.promise.set_value(std::move(output));
          } else {
            r.promise.set_value(slice_rows(output, row, rows));
          }
        } catch (...) {
          r.promise.set_exception(std::current_exception());
        }
        row += rows;
      }
    };
    bool already_settled = false;
    if (ifb != nullptr) {
      std::lock_guard g(ifb->m);
      if (ifb->settled) {
        already_settled = true;
      } else {
        fulfill();
        ifb->settled = true;
      }
    } else {
      fulfill();
    }
    if (already_settled) {
      // The watchdog declared us hung and already failed the batch's
      // promises and ran its accounting. We were merely slow, not dead —
      // coming back IS the respawn: clear the quarantine and rejoin.
      {
        std::lock_guard lock(mutex_);
        if (inflight_batches_[widx] == ifb) inflight_batches_[widx].reset();
      }
      resilience_.clear_quarantine(worker_index);
      continue;
    }

    // Telemetry: one observation per batch into this worker's slot.
    const auto done = ServeClock::now();
    if (batch_traced) {
      // Epilogue: scatter/fulfill work between the forward pass ending
      // and the last future of the batch becoming ready.
      emit_span(kSpanEpilogue, batch.front().id,
                trace_ns_since_epoch(exec_end), trace_ns_since_epoch(done),
                static_cast<std::int32_t>(batch.size()), 0);
      for (const ServeRequest& r : batch) {
        if (!trace_.sampled(r.id)) continue;
        emit_span(kSpanE2e, r.id, trace_ns_since_epoch(r.submit_time),
                  trace_ns_since_epoch(done), 0, 0);
      }
    }
    BatchObservation obs;
    obs.priority = batch.front().priority;
    obs.requests = static_cast<int>(batch.size());
    obs.images = std::max(total_images, 0);
    obs.failed = error != nullptr;
    if (!error) {
      obs.queue_wait_ns.reserve(batch.size());
      obs.e2e_ns.reserve(batch.size());
      for (const ServeRequest& r : batch) {
        obs.queue_wait_ns.push_back(ns_between(r.submit_time, pickup));
        obs.e2e_ns.push_back(ns_between(r.submit_time, done));
      }
      if (total_images > 0) {
        // Racy blend across workers is fine: the estimate only steers
        // admission feasibility and the batching window.
        const std::uint64_t sample =
            ns_between(exec_start, exec_end) /
            static_cast<std::uint64_t>(total_images);
        const std::uint64_t old =
            ewma_image_ns_.load(std::memory_order_relaxed);
        ewma_image_ns_.store(old == 0 ? sample : (3 * old + sample) / 4,
                             std::memory_order_relaxed);
      }
    }
    metrics_.record_batch(worker_index, obs);

    {
      std::lock_guard lock(mutex_);
      if (ifb != nullptr && inflight_batches_[widx] == ifb) {
        inflight_batches_[widx].reset();
      }
      // Merge per-batch stats in batch-formation order: given the same
      // batch compositions (always true at max_microbatch = 1 with
      // uniform-class traffic) the aggregate double sums are
      // reproducible run to run. A failed batch merges zeros (its
      // partial activity produced no output) but still holds its slot
      // so the order is preserved.
      pending_stats_[batch_id] =
          error ? BatchStats{} : BatchStats{ctx.rom_stats(), ctx.sram_stats()};
      for (auto it = pending_stats_.find(next_merge_id_);
           it != pending_stats_.end();
           it = pending_stats_.find(next_merge_id_)) {
        rom_total_.accumulate(it->second.rom);
        sram_total_.accumulate(it->second.sram);
        pending_stats_.erase(it);
        ++next_merge_id_;
      }
      in_flight_ -= static_cast<int>(batch.size());
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void Scheduler::canary_loop() {
  const auto period = options_.resilience.canary_period;
  const CanarySuite& suite = plan_->canaries();
  std::size_t next = 0;
  std::unique_lock lock(mutex_);
  while (!aux_cv_.wait_for(lock, period, [&] { return stop_; })) {
    // ONE pending probe per worker, cycling through the suite. Probes
    // are popped ahead of traffic, so the backlog cap of one is what
    // bounds probe duty below half a worker's time even when the period
    // is shorter than an inference — probing samples worker health, it
    // must never starve traffic (nor pile up on a hung worker).
    const CanaryProbe& p = suite.probes[next % suite.probes.size()];
    next += 1;
    for (auto& slot : probe_slots_) {
      if (slot.empty()) slot.push_back(&p);
    }
    work_cv_.notify_all();
  }
}

void Scheduler::watchdog_loop() {
  const auto timeout = options_.resilience.watchdog_timeout;
  const auto poll =
      std::max(std::chrono::milliseconds(1),
               std::chrono::milliseconds(timeout.count() / 4));
  std::unique_lock lock(mutex_);
  for (;;) {
    if (aux_cv_.wait_for(lock, poll, [&] { return stop_; })) return;
    const auto now = ServeClock::now();
    std::vector<std::shared_ptr<InFlightBatch>> hung;
    for (auto& slot : inflight_batches_) {
      if (slot != nullptr && now - slot->start >= timeout) {
        hung.push_back(slot);
        slot.reset();
      }
    }
    if (hung.empty()) continue;
    lock.unlock();
    for (const auto& ifb : hung) {
      fail_hung_batch(ifb, /*quarantine=*/true);
    }
    lock.lock();
  }
}

void Scheduler::fail_hung_batch(const std::shared_ptr<InFlightBatch>& ifb,
                                bool quarantine) {
  std::size_t n = 0;
  int images = 0;
  Priority priority = Priority::kBatch;
  {
    std::lock_guard g(ifb->m);
    if (ifb->settled) return;
    ifb->settled = true;
    n = ifb->requests->size();
    priority = ifb->requests->front().priority;
    for (ServeRequest& r : *ifb->requests) {
      images += r.input.shape()[0];
      r.promise.set_exception(std::make_exception_ptr(WorkerHungError(
          "request " + std::to_string(r.id) + " abandoned on worker " +
          std::to_string(ifb->worker) + "; retry on a healthy worker")));
    }
  }
  if (quarantine) resilience_.record_watchdog_fire(ifb->worker);
  BatchObservation obs;
  obs.priority = priority;
  obs.requests = static_cast<int>(n);
  obs.images = images;
  obs.failed = true;
  metrics_.record_batch(ifb->worker, obs);
  {
    std::lock_guard lock(mutex_);
    // The hung batch merges zeros but still holds its slot in the merge
    // train, exactly like an execution failure — otherwise every later
    // batch's stats would wait on a merge id that never arrives.
    pending_stats_[ifb->batch_id] = BatchStats{};
    for (auto it = pending_stats_.find(next_merge_id_);
         it != pending_stats_.end();
         it = pending_stats_.find(next_merge_id_)) {
      rom_total_.accumulate(it->second.rom);
      sram_total_.accumulate(it->second.sram);
      pending_stats_.erase(it);
      ++next_merge_id_;
    }
    in_flight_ -= static_cast<int>(n);
    if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace yoloc
