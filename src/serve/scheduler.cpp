#include "serve/scheduler.hpp"

#include <algorithm>
#include <cstring>
#include <exception>
#include <string>
#include <utility>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "runtime/deployment_plan.hpp"
#include "tensor/ops.hpp"

namespace yoloc {

namespace {

/// Copy request inputs into one stacked batch along axis 0.
Tensor stack_inputs(const std::vector<ServeRequest>& batch) {
  std::vector<const Tensor*> inputs;
  inputs.reserve(batch.size());
  for (const ServeRequest& r : batch) inputs.push_back(&r.input);
  return concat_rows(inputs);
}

}  // namespace

Scheduler::Scheduler(const DeploymentPlan& plan, SchedulerOptions options)
    : plan_(&plan),
      options_(options),
      metrics_(options.workers > 0 ? options.workers
                                   : static_cast<int>(parallel_workers())),
      trace_(options.workers > 0 ? options.workers
                                 : static_cast<int>(parallel_workers()),
             options.trace_sampling,
             std::max<std::size_t>(options.trace_buffer_events, 1)) {
  if (options_.workers <= 0) {
    options_.workers = static_cast<int>(parallel_workers());
  }
  YOLOC_CHECK(options_.max_microbatch >= 1, "scheduler: max_microbatch >= 1");
  int reserved = 0;
  for (int c = 0; c < kPriorityClassCount; ++c) {
    const auto i = static_cast<std::size_t>(c);
    YOLOC_CHECK(options_.lane_reservations[i] >= 0,
                "scheduler: lane reservation must be >= 0");
    YOLOC_CHECK(options_.lane_slo[i].count() >= 0,
                "scheduler: lane SLO must be >= 0");
    reserved += options_.lane_reservations[i];
  }
  // Every lane must stay reachable: lanes without a reservation are only
  // served by shared workers, so at least one must remain.
  YOLOC_CHECK(reserved < options_.workers,
              "scheduler: lane reservations must leave a shared worker");
  has_reservations_ = reserved > 0;
  queue_.set_weights(options_.lane_weights);  // validates the weights

  worker_masks_.reserve(static_cast<std::size_t>(options_.workers));
  for (int c = 0; c < kPriorityClassCount; ++c) {
    const int n = options_.lane_reservations[static_cast<std::size_t>(c)];
    for (int i = 0; i < n; ++i) {
      worker_masks_.push_back(lane_bit(static_cast<Priority>(c)));
    }
  }
  while (static_cast<int>(worker_masks_.size()) < options_.workers) {
    worker_masks_.push_back(kAllLanes);
  }

  threads_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

std::array<int, kPriorityClassCount> Scheduler::lane_batch_caps(
    std::uint64_t est_image_ns) const {
  std::array<int, kPriorityClassCount> caps;
  caps.fill(options_.max_microbatch);
  if (est_image_ns == 0) return caps;  // no estimate yet: global cap
  for (int c = 0; c < kPriorityClassCount; ++c) {
    const auto i = static_cast<std::size_t>(c);
    const std::int64_t slo_ns = options_.lane_slo[i].count();
    if (slo_ns <= 0) continue;
    const auto budget = static_cast<std::uint64_t>(slo_ns) / est_image_ns;
    caps[i] = std::clamp(static_cast<int>(std::min<std::uint64_t>(
                             budget, static_cast<std::uint64_t>(
                                         options_.max_microbatch))),
                         1, options_.max_microbatch);
  }
  return caps;
}

Scheduler::~Scheduler() { shutdown(); }

void Scheduler::shutdown() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

std::future<Tensor> Scheduler::submit(Tensor images, SubmitOptions options) {
  YOLOC_CHECK(images.rank() == 4 && images.shape()[0] >= 1,
              "scheduler: rank-4 NCHW request required");
  const int cls = static_cast<int>(options.priority);
  YOLOC_CHECK(cls >= 0 && cls < kPriorityClassCount,
              "scheduler: bad priority class");

  ServeRequest req;
  req.input = std::move(images);
  req.priority = options.priority;
  std::future<Tensor> future = req.promise.get_future();
  const auto now = ServeClock::now();
  req.submit_time = now;
  const auto relative_deadline = options.deadline.count() != 0
                                     ? options.deadline
                                     : options_.default_deadline;
  if (relative_deadline.count() != 0) req.deadline = now + relative_deadline;

  std::exception_ptr rejection;
  std::vector<ServeRequest> newly_expired;
  {
    std::lock_guard lock(mutex_);
    YOLOC_CHECK(!stop_, "scheduler: submit after shutdown");
    // Count the submission before the request becomes poppable (and not
    // at all when the shutdown check above throws): snapshots must never
    // show served > submitted for a class.
    metrics_.record_submitted(options.priority);
    if (options_.record_admissions) {
      // Record EVERY submission — accepted or not — so a replay
      // reproduces admission pressure, not just the accepted subset.
      if (!record_epoch_set_) {
        record_epoch_ = now;
        record_epoch_set_ = true;
      }
      AdmissionRecord rec;
      rec.offset_ns = ns_between(record_epoch_, now);
      rec.priority = options.priority;
      rec.deadline_ns = relative_deadline.count() > 0
                            ? static_cast<std::uint64_t>(
                                  relative_deadline.count())
                            : 0;
      const auto& shape = req.input.shape();
      for (int a = 0; a < 4; ++a) {
        rec.shape[static_cast<std::size_t>(a)] = shape[static_cast<std::size_t>(a)];
      }
      records_.push_back(rec);
    }
    // Harvest dead deadlines before the depth check: every submission is
    // a scheduling point, so queued-expired requests fail fast even
    // while all workers are busy — and they stop holding lane slots
    // against the admission cap.
    newly_expired = queue_.take_expired(now);
    in_flight_ += static_cast<int>(newly_expired.size());
    switch (queue_.admit(options.priority, now, req.deadline,
                         req.input.shape()[0], options_.max_queue_depth,
                         ewma_image_ns_.load(std::memory_order_relaxed))) {
      case RequestQueue::Admission::kAccept:
        // Ids are admission-ordered: the id doubles as the request's
        // noise-stream offset, so rejections must not consume one.
        req.id = next_request_id_++;
        queue_.push(std::move(req));
        break;
      case RequestQueue::Admission::kQueueFull:
        rejection = std::make_exception_ptr(QueueDepthError(
            std::string(priority_name(options.priority)) +
            " lane at depth cap " +
            std::to_string(options_.max_queue_depth)));
        break;
      case RequestQueue::Admission::kAlreadyExpired:
        rejection = std::make_exception_ptr(
            DeadlineExpiredError("deadline not in the future at submit"));
        break;
      case RequestQueue::Admission::kInfeasible:
        rejection = std::make_exception_ptr(InfeasibleDeadlineError(
            "deadline tighter than the estimated service time"));
        break;
    }
  }
  if (rejection) {
    metrics_.record_rejected(options.priority);
    req.promise.set_exception(rejection);
  } else if (has_reservations_) {
    // notify_one could wake a worker whose lane mask excludes this
    // request (it would go straight back to sleep and nobody else is
    // woken — a lost wakeup). With reservations active, wake everyone.
    work_cv_.notify_all();
  } else {
    work_cv_.notify_one();
  }
  if (!newly_expired.empty()) cancel_expired(std::move(newly_expired));
  return future;
}

void Scheduler::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
}

MetricsSnapshot Scheduler::metrics_snapshot() const {
  std::array<std::uint64_t, kPriorityClassCount> depths{};
  {
    std::lock_guard lock(mutex_);
    depths = queue_.depths();
  }
  return metrics_.snapshot(depths);
}

WorkloadTrace Scheduler::recorded_trace() const {
  WorkloadTrace trace;
  trace.workers = worker_count();
  trace.max_microbatch = options_.max_microbatch;
  {
    std::lock_guard lock(mutex_);
    trace.records = records_;
  }
  const MetricsSnapshot snap = metrics_snapshot();
  for (int c = 0; c < kPriorityClassCount; ++c) {
    const auto i = static_cast<std::size_t>(c);
    trace.submitted[i] = snap.classes[i].submitted;
    trace.served[i] = snap.classes[i].served_requests;
    trace.expired[i] = snap.classes[i].expired_requests;
    trace.rejected[i] = snap.classes[i].rejected_requests;
  }
  return trace;
}

MacroRunStats Scheduler::rom_stats() const {
  std::lock_guard lock(mutex_);
  return rom_total_;
}

MacroRunStats Scheduler::sram_stats() const {
  std::lock_guard lock(mutex_);
  return sram_total_;
}

double Scheduler::total_energy_pj() const {
  std::lock_guard lock(mutex_);
  return rom_total_.energy_pj() + sram_total_.energy_pj();
}

void Scheduler::reset_stats() {
  std::lock_guard lock(mutex_);
  rom_total_ = MacroRunStats{};
  sram_total_ = MacroRunStats{};
}

void Scheduler::cancel_expired(std::vector<ServeRequest> expired) {
  const auto now = ServeClock::now();
  for (ServeRequest& r : expired) {
    metrics_.record_expired(r.priority, ns_between(r.submit_time, now));
    r.promise.set_exception(std::make_exception_ptr(DeadlineExpiredError(
        "request " + std::to_string(r.id) + " (" +
        priority_name(r.priority) + ") canceled while queued")));
  }
  std::lock_guard lock(mutex_);
  in_flight_ -= static_cast<int>(expired.size());
  if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
}

void Scheduler::worker_loop(int worker_index) {
  // Request-level parallelism: inner tensor kernels run inline rather
  // than re-entering the shared parallel_for pool.
  ParallelSerialGuard serial_guard;
  ExecutionContext ctx(*plan_, options_.noise_seed);
  const LaneMask mask = worker_masks_[static_cast<std::size_t>(worker_index)];

  for (;;) {
    std::vector<ServeRequest> batch;
    std::vector<ServeRequest> expired;
    std::uint64_t batch_id = 0;
    ServeClock::time_point pickup{};
    {
      std::unique_lock lock(mutex_);
      for (;;) {
        const auto now = ServeClock::now();
        // Expiry first: a dead deadline must never occupy a worker or
        // ride along in a batch. Workers harvest ALL lanes regardless
        // of their mask — cancellation is cheap and lane-agnostic.
        expired = queue_.take_expired(now);
        if (!expired.empty()) {
          // Count canceled requests as in-flight until their futures
          // resolve, so wait_idle() cannot return with promises pending.
          in_flight_ += static_cast<int>(expired.size());
          break;
        }
        if (queue_.has_work(mask)) {
          const std::uint64_t est =
              ewma_image_ns_.load(std::memory_order_relaxed);
          const std::uint64_t window_est =
              options_.deadline_aware_batching ? est : 0;
          batch = queue_.pop_batch(lane_batch_caps(est), now, window_est,
                                   mask);
          batch_id = next_batch_id_++;
          in_flight_ += static_cast<int>(batch.size());
          pickup = now;
          break;
        }
        if (stop_) return;
        // A worker only sleeps when no lane in its mask has work
        // (pop_batch always serves some eligible non-empty lane), so
        // there is never a queued deadline to time out against here:
        // expiry is harvested at the scheduling points — batch
        // formation above and every submit().
        work_cv_.wait(lock);
      }
    }

    if (!expired.empty()) {
      cancel_expired(std::move(expired));
      continue;
    }

    // Tracing (observer-only): a batch is traced when ANY member's
    // admission id samples in. Batch-scoped spans carry the batch id
    // plus the FIRST member's request id; per-request spans carry the
    // exact id of each sampled member.
    const bool batch_traced = [&] {
      if (!trace_.enabled()) return false;
      for (const ServeRequest& r : batch) {
        if (trace_.sampled(r.id)) return true;
      }
      return false;
    }();
    const auto emit_span = [&](const char* name, std::uint64_t request_id,
                               std::uint64_t start_ns, std::uint64_t end_ns,
                               std::int32_t requests, std::int32_t images) {
      TraceEvent ev;
      ev.name = name;
      ev.request_id = request_id;
      ev.batch_id = batch_id;
      ev.start_ns = start_ns;
      ev.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
      ev.requests = requests;
      ev.images = images;
      ev.tid = worker_index;
      trace_.emit(worker_index, ev);
    };
    const std::uint64_t pickup_ns =
        batch_traced ? trace_ns_since_epoch(pickup) : 0;
    if (batch_traced) {
      for (const ServeRequest& r : batch) {
        if (!trace_.sampled(r.id)) continue;
        emit_span(kSpanQueueWait, r.id, trace_ns_since_epoch(r.submit_time),
                  pickup_ns, 0, 0);
      }
    }

    // Derive this batch's noise stream from its first request so results
    // do not depend on which worker picked the batch up.
    ctx.reseed(options_.noise_seed + batch.front().id);
    ctx.reset_stats();

    BatchTraceSink layer_sink(&trace_, worker_index, batch.front().id,
                              batch_id);
    if (batch_traced) {
      // Batch formation: pickup (queue pop under the lock) until the
      // context is staged for execution.
      emit_span(kSpanBatchFormation, batch.front().id, pickup_ns,
                trace_now_ns(), static_cast<std::int32_t>(batch.size()), 0);
      ctx.set_layer_trace(&layer_sink);
    }

    Tensor output;
    std::exception_ptr error;
    int total_images = 0;
    const auto exec_start = ServeClock::now();
    try {
      if (batch.size() == 1) {
        total_images = batch[0].input.shape()[0];
        output = ctx.infer(batch[0].input);
      } else {
        Tensor stacked = stack_inputs(batch);
        total_images = stacked.shape()[0];
        output = ctx.infer(stacked);
      }
    } catch (...) {
      error = std::current_exception();
    }
    const auto exec_end = ServeClock::now();
    if (batch_traced) {
      ctx.set_layer_trace(nullptr);
      emit_span(kSpanExecute, batch.front().id,
                trace_ns_since_epoch(exec_start),
                trace_ns_since_epoch(exec_end),
                static_cast<std::int32_t>(batch.size()),
                std::max(total_images, 0));
    }

    // Fulfill promises BEFORE the completion accounting below: wait_idle()
    // promises that every accepted request has completed, so futures must
    // be ready by the time in_flight_ reaches zero.
    if (error) {
      for (ServeRequest& r : batch) r.promise.set_exception(error);
    } else {
      int row = 0;
      for (ServeRequest& r : batch) {
        const int rows = r.input.shape()[0];
        // Scatter failures (e.g. bad_alloc slicing a fused batch) fail
        // the affected request instead of escaping the worker thread.
        try {
          if (batch.size() == 1) {
            r.promise.set_value(std::move(output));
          } else {
            r.promise.set_value(slice_rows(output, row, rows));
          }
        } catch (...) {
          r.promise.set_exception(std::current_exception());
        }
        row += rows;
      }
    }

    // Telemetry: one observation per batch into this worker's slot.
    const auto done = ServeClock::now();
    if (batch_traced) {
      // Epilogue: scatter/fulfill work between the forward pass ending
      // and the last future of the batch becoming ready.
      emit_span(kSpanEpilogue, batch.front().id,
                trace_ns_since_epoch(exec_end), trace_ns_since_epoch(done),
                static_cast<std::int32_t>(batch.size()), 0);
      for (const ServeRequest& r : batch) {
        if (!trace_.sampled(r.id)) continue;
        emit_span(kSpanE2e, r.id, trace_ns_since_epoch(r.submit_time),
                  trace_ns_since_epoch(done), 0, 0);
      }
    }
    BatchObservation obs;
    obs.priority = batch.front().priority;
    obs.requests = static_cast<int>(batch.size());
    obs.images = std::max(total_images, 0);
    obs.failed = error != nullptr;
    if (!error) {
      obs.queue_wait_ns.reserve(batch.size());
      obs.e2e_ns.reserve(batch.size());
      for (const ServeRequest& r : batch) {
        obs.queue_wait_ns.push_back(ns_between(r.submit_time, pickup));
        obs.e2e_ns.push_back(ns_between(r.submit_time, done));
      }
      if (total_images > 0) {
        // Racy blend across workers is fine: the estimate only steers
        // admission feasibility and the batching window.
        const std::uint64_t sample =
            ns_between(exec_start, exec_end) /
            static_cast<std::uint64_t>(total_images);
        const std::uint64_t old =
            ewma_image_ns_.load(std::memory_order_relaxed);
        ewma_image_ns_.store(old == 0 ? sample : (3 * old + sample) / 4,
                             std::memory_order_relaxed);
      }
    }
    metrics_.record_batch(worker_index, obs);

    {
      std::lock_guard lock(mutex_);
      // Merge per-batch stats in batch-formation order: given the same
      // batch compositions (always true at max_microbatch = 1 with
      // uniform-class traffic) the aggregate double sums are
      // reproducible run to run. A failed batch merges zeros (its
      // partial activity produced no output) but still holds its slot
      // so the order is preserved.
      pending_stats_[batch_id] =
          error ? BatchStats{} : BatchStats{ctx.rom_stats(), ctx.sram_stats()};
      for (auto it = pending_stats_.find(next_merge_id_);
           it != pending_stats_.end();
           it = pending_stats_.find(next_merge_id_)) {
        rom_total_.accumulate(it->second.rom);
        sram_total_.accumulate(it->second.sram);
        pending_stats_.erase(it);
        ++next_merge_id_;
      }
      in_flight_ -= static_cast<int>(batch.size());
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace yoloc
