#include "serve/http_server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <stdexcept>
#include <utility>

#include "common/base64.hpp"
#include "common/check.hpp"
#include "runtime/plan_serde.hpp"

namespace yoloc {

namespace {

// ------------------------------------------------------- tiny JSON in
// Just enough strict JSON to accept the /infer request body. Anything
// malformed parses to failure and maps to 400 — never to a guess.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!value(out, 0)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  static constexpr int kMaxDepth = 16;

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  [[nodiscard]] bool eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool value(JsonValue& out, int depth) {
    if (depth > kMaxDepth || pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    switch (c) {
      case '{':
        return object(out, depth);
      case '[':
        return array(out, depth);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return string(out.string);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return literal("null");
      default:
        out.kind = JsonValue::Kind::kNumber;
        return number(out.number);
    }
  }

  bool literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool number(double& out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    char* end = nullptr;
    const std::string token = s_.substr(start, pos_ - start);
    out = std::strtod(token.c_str(), &end);
    // Overflow ("1e999") yields ±HUGE_VAL with a clean end pointer;
    // non-finite numbers are not JSON and must fail the parse.
    return end != nullptr && *end == '\0' && std::isfinite(out);
  }

  bool string(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (pos_ < s_.size()) {
      const unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= s_.size()) return false;
        const char esc = s_[pos_ + 1];
        pos_ += 2;
        switch (esc) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'u': {
            unsigned code = 0;
            if (!hex4(code)) return false;
            // Tensor payloads ride base64; non-ASCII escapes are decoded
            // as UTF-8 for completeness, unpaired surrogates rejected.
            if (code >= 0xd800 && code <= 0xdbff) {
              if (pos_ + 1 >= s_.size() || s_[pos_] != '\\' ||
                  s_[pos_ + 1] != 'u') {
                return false;
              }
              pos_ += 2;
              unsigned low = 0;
              if (!hex4(low) || low < 0xdc00 || low > 0xdfff) return false;
              code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
            } else if (code >= 0xdc00 && code <= 0xdfff) {
              return false;
            }
            append_utf8(out, code);
            break;
          }
          default:
            return false;
        }
        continue;
      }
      if (c < 0x20) return false;  // raw control characters are invalid
      out += static_cast<char>(c);
      ++pos_;
    }
    return false;  // unterminated
  }

  bool hex4(unsigned& out) {
    if (pos_ + 4 > s_.size()) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = s_[pos_ + static_cast<std::size_t>(i)];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return false;
      }
    }
    pos_ += 4;
    return true;
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xc0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3f));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xe0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (code & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (code & 0x3f));
    }
  }

  bool object(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kObject;
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      JsonValue v;
      if (!value(v, depth + 1)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (eat(',')) continue;
      return eat('}');
    }
  }

  bool array(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kArray;
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) return true;
    for (;;) {
      skip_ws();
      JsonValue v;
      if (!value(v, depth + 1)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (eat(',')) continue;
      return eat(']');
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// --------------------------------------------------------- HTTP basics

const char* status_text(int status) {
  switch (status) {
    case 100:
      return "Continue";
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 413:
      return "Payload Too Large";
    case 429:
      return "Too Many Requests";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

std::string error_body(const char* kind, const std::string& message) {
  return std::string("{\"error\":\"") + json_escape(message) +
         "\",\"kind\":\"" + kind + "\"}";
}

std::string lowercase(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  (void)fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

bool parse_priority(const std::string& name, Priority& out) {
  if (name == "interactive") {
    out = Priority::kInteractive;
  } else if (name == "batch") {
    out = Priority::kBatch;
  } else if (name == "best_effort") {
    out = Priority::kBestEffort;
  } else {
    return false;
  }
  return true;
}

/// Headers whose semantics break when repeated — a request carrying two
/// copies (even identical ones) is rejected outright rather than letting
/// map insertion pick a winner.
bool is_singleton_header(const std::string& lowercase_name) {
  static constexpr const char* kSingletons[] = {
      "content-length", "transfer-encoding", "host", "connection", "expect",
      "content-type"};
  return std::any_of(std::begin(kSingletons), std::end(kSingletons),
                     [&](const char* h) { return lowercase_name == h; });
}

/// "1,3,16,16" -> four positive extents.
bool parse_shape_csv(const std::string& text, std::vector<int>& out) {
  out.clear();
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string token =
        text.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (token.empty() ||
        token.find_first_not_of("0123456789") != std::string::npos) {
      return false;
    }
    const long v = std::strtol(token.c_str(), nullptr, 10);
    if (v < 1 || v > (1 << 24)) return false;
    out.push_back(static_cast<int>(v));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out.size() == 4;
}

std::map<std::string, std::string> parse_query(const std::string& query) {
  std::map<std::string, std::string> out;
  std::size_t start = 0;
  while (start < query.size()) {
    std::size_t amp = query.find('&', start);
    if (amp == std::string::npos) amp = query.size();
    const std::string pair = query.substr(start, amp - start);
    const std::size_t eq = pair.find('=');
    if (eq != std::string::npos) {
      out[pair.substr(0, eq)] = pair.substr(eq + 1);
    } else if (!pair.empty()) {
      out[pair] = "";
    }
    start = amp + 1;
  }
  return out;
}

}  // namespace

// ----------------------------------------------------- internal structs

struct HttpServer::ParsedRequest {
  std::string method;
  std::string path;
  std::string query;
  std::map<std::string, std::string> headers;  // lowercased keys
  std::string body;
  bool keep_alive = true;
};

struct HttpServer::Connection {
  int fd = -1;
  std::uint64_t generation = 0;
  enum class State { kReadHeaders, kReadBody, kHandling, kWrite } state =
      State::kReadHeaders;
  std::string in;
  std::string out;
  std::size_t out_written = 0;
  bool close_after_write = false;
  bool keep_alive = true;
  std::size_t body_needed = 0;
  ParsedRequest request;
  /// Absolute phase deadline; max() = none (handling phase).
  ServeClock::time_point deadline = ServeClock::time_point::max();
};

struct HttpServer::HandlerJob {
  std::uint64_t generation = 0;
  ParsedRequest request;
};

struct HttpServer::Completion {
  std::uint64_t generation = 0;
  int status = 500;
  std::string body;
  bool retry_after = false;
};

// ----------------------------------------------------------- lifecycle

HttpServer::HttpServer(Scheduler& scheduler, const DeploymentPlan& plan,
                       HttpServerOptions options, std::string plan_path)
    : scheduler_(scheduler),
      plan_(plan),
      options_(std::move(options)),
      plan_path_(std::move(plan_path)) {
  YOLOC_CHECK(options_.handler_threads >= 1,
              "http: handler_threads must be >= 1");
  YOLOC_CHECK(options_.max_connections >= 1,
              "http: max_connections must be >= 1");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  YOLOC_CHECK(listen_fd_ >= 0, "http: socket() failed");
  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    YOLOC_CHECK(false, "http: bad bind address '" + options_.bind_address +
                           "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, options_.listen_backlog) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    YOLOC_CHECK(false, std::string("http: cannot bind/listen on ") +
                           options_.bind_address + ":" +
                           std::to_string(options_.port) + " (" +
                           std::strerror(err) + ")");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  YOLOC_CHECK(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                            &bound_len) == 0,
              "http: getsockname() failed");
  port_ = static_cast<int>(ntohs(bound.sin_port));
  set_nonblocking(listen_fd_);

  int pipe_fds[2];
  YOLOC_CHECK(::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) == 0,
              "http: pipe2() failed");
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];

  handler_threads_.reserve(static_cast<std::size_t>(options_.handler_threads));
  for (int i = 0; i < options_.handler_threads; ++i) {
    handler_threads_.emplace_back([this] { handler_loop(); });
  }
  loop_thread_ = std::thread([this] { loop(); });
}

HttpServer::~HttpServer() { drain(); }

void HttpServer::wake() {
  const char b = 1;
  for (;;) {
    const ssize_t n = ::write(wake_write_fd_, &b, 1);
    if (n == 1) return;
    if (n < 0 && errno == EINTR) continue;  // signal landed mid-write
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Pipe full: a wakeup is already pending, so nothing is lost —
      // but count it, a climbing rate means the loop is falling behind.
      std::lock_guard lock(stats_mutex_);
      stats_.wake_overflows += 1;
    }
    return;
  }
}

void HttpServer::drain() {
  std::lock_guard drain_lock(drain_mutex_);
  if (!stopped_.load(std::memory_order_acquire)) {
    draining_.store(true, std::memory_order_release);
    wake();
    if (loop_thread_.joinable()) loop_thread_.join();
    {
      std::lock_guard lock(handler_mutex_);
      handler_stop_ = true;
    }
    handler_cv_.notify_all();
    for (auto& t : handler_threads_) {
      if (t.joinable()) t.join();
    }
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    ::close(wake_read_fd_);
    ::close(wake_write_fd_);
    wake_read_fd_ = wake_write_fd_ = -1;
    stopped_.store(true, std::memory_order_release);
  }
}

HttpServerStats HttpServer::stats() const {
  std::lock_guard lock(stats_mutex_);
  return stats_;
}

// ---------------------------------------------------------- event loop

void HttpServer::loop() {
  bool listen_closed = false;
  std::vector<pollfd> fds;
  for (;;) {
    const bool draining = draining_.load(std::memory_order_acquire);
    if (draining) {
      if (!listen_closed && listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        listen_closed = true;
      }
      // Idle keep-alive connections hold no work; close them now so the
      // drain only waits on requests actually in flight.
      for (auto& c : connections_) {
        if (c->state == Connection::State::kReadHeaders && c->in.empty() &&
            c->out.empty()) {
          close_connection(*c);
        }
      }
      std::erase_if(connections_,
                    [](const auto& c) { return c->fd < 0; });
      if (connections_.empty() && inflight_handlers_ == 0) break;
    }

    fds.clear();
    const std::size_t listen_slot = fds.size();
    if (!draining && listen_fd_ >= 0) {
      fds.push_back({listen_fd_, POLLIN, 0});
    }
    const std::size_t wake_slot = fds.size();
    fds.push_back({wake_read_fd_, POLLIN, 0});
    const std::size_t conn_base = fds.size();
    auto next_deadline = ServeClock::time_point::max();
    for (const auto& c : connections_) {
      short events = 0;
      if (c->state == Connection::State::kReadHeaders ||
          c->state == Connection::State::kReadBody) {
        events |= POLLIN;
      }
      if (!c->out.empty() || c->state == Connection::State::kWrite) {
        events |= POLLOUT;
      }
      fds.push_back({c->fd, events, 0});
      next_deadline = std::min(next_deadline, c->deadline);
    }

    int timeout_ms = 1000;
    const auto now = ServeClock::now();
    if (next_deadline != ServeClock::time_point::max()) {
      const auto wait =
          std::chrono::duration_cast<std::chrono::milliseconds>(next_deadline -
                                                                now)
              .count();
      timeout_ms = static_cast<int>(std::clamp<long long>(wait, 0, 1000));
    }
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) break;  // unrecoverable

    if (fds[wake_slot].revents & POLLIN) {
      char buf[256];
      for (;;) {
        const ssize_t n = ::read(wake_read_fd_, buf, sizeof(buf));
        if (n > 0) continue;
        if (n < 0 && errno == EINTR) continue;  // retry, keep draining
        break;  // EAGAIN: fully drained (the pipe is non-blocking)
      }
    }
    drain_completions();

    if (!draining && listen_fd_ >= 0 &&
        (fds[listen_slot].revents & POLLIN) != 0) {
      accept_new_connections();
    }

    const auto check = ServeClock::now();
    for (std::size_t i = 0; i < connections_.size(); ++i) {
      Connection& c = *connections_[i];
      if (c.fd < 0) continue;
      const short revents = conn_base + i < fds.size()
                                ? fds[conn_base + i].revents
                                : static_cast<short>(0);
      if (revents & (POLLERR | POLLNVAL)) {
        close_connection(c);
        continue;
      }
      // POLLHUP while handling: the client hung up before its response
      // was computed; keep the slot so the completion can be dropped
      // cleanly rather than matched against a recycled descriptor.
      if ((revents & POLLHUP) != 0 &&
          c.state != Connection::State::kHandling && c.in.empty()) {
        close_connection(c);
        continue;
      }
      if (revents & POLLOUT) on_writable(c);
      if (c.fd >= 0 && (revents & POLLIN) != 0) on_readable(c);
      if (c.fd >= 0 && c.deadline != ServeClock::time_point::max() &&
          check >= c.deadline) {
        if (c.state == Connection::State::kReadHeaders ||
            c.state == Connection::State::kReadBody) {
          {
            std::lock_guard lock(stats_mutex_);
            ++stats_.read_timeouts;
          }
          if (!c.in.empty()) {
            // A request was underway (slow-loris or stalled body):
            // tell the client before closing. queue_response makes one
            // best-effort flush; the write deadline bounds the rest.
            queue_response(c, 408,
                           error_body("timeout", "request read timed out"),
                           "application/json", /*close_after=*/true);
          } else {
            close_connection(c);  // silent: idle keep-alive expiry
          }
        } else if (c.state == Connection::State::kWrite) {
          std::lock_guard lock(stats_mutex_);
          ++stats_.write_timeouts;
          close_connection(c);
        }
      }
    }
    std::erase_if(connections_, [](const auto& c) { return c->fd < 0; });
  }
}

void HttpServer::accept_new_connections() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient
    if (static_cast<int>(connections_.size()) >= options_.max_connections) {
      // Refuse above the cap without occupying a slot: best-effort 503.
      static const char kBusy[] =
          "HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\n"
          "Connection: close\r\n\r\n";
      (void)::send(fd, kBusy, sizeof(kBusy) - 1, MSG_NOSIGNAL | MSG_DONTWAIT);
      ::close(fd);
      std::lock_guard lock(stats_mutex_);
      ++stats_.connections_refused;
      continue;
    }
    set_nonblocking(fd);
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->generation = next_generation_++;
    conn->deadline = ServeClock::now() + options_.read_timeout;
    connections_.push_back(std::move(conn));
    std::lock_guard lock(stats_mutex_);
    ++stats_.connections_accepted;
  }
}

void HttpServer::close_connection(Connection& c) {
  if (c.fd >= 0) {
    ::close(c.fd);
    c.fd = -1;
  }
}

void HttpServer::on_readable(Connection& c) {
  char buf[16384];
  for (;;) {
    const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      c.in.append(buf, static_cast<std::size_t>(n));
      // Oversized bodies are refused from the declared Content-Length
      // before any body byte arrives; this cap catches clients that
      // stream unannounced extra bytes anyway.
      if (c.in.size() >
          options_.max_body_bytes + options_.max_header_bytes + sizeof(buf)) {
        queue_response(c, 413, error_body("too_large", "request too large"),
                       "application/json", true);
        return;
      }
      continue;
    }
    if (n == 0) {
      // Peer closed. Nothing can be answered on a half-parsed request.
      if (c.state != Connection::State::kHandling) close_connection(c);
      return;
    }
    break;  // EAGAIN (or transient error — poll will surface POLLERR)
  }
  if (c.state == Connection::State::kReadHeaders ||
      c.state == Connection::State::kReadBody) {
    while (try_parse_and_route(c)) {
    }
  }
}

void HttpServer::flush_out(Connection& c) {
  while (c.out_written < c.out.size()) {
    const ssize_t n = ::send(c.fd, c.out.data() + c.out_written,
                             c.out.size() - c.out_written, MSG_NOSIGNAL);
    if (n > 0) {
      c.out_written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    close_connection(c);
    return;
  }
  if (c.state != Connection::State::kWrite) return;  // flushed a 100-continue
  // Response fully flushed.
  if (c.close_after_write) {
    close_connection(c);
    return;
  }
  c.out.clear();
  c.out_written = 0;
  c.state = Connection::State::kReadHeaders;
  c.request = ParsedRequest{};
  c.body_needed = 0;
  c.deadline = ServeClock::now() + options_.read_timeout;
}

void HttpServer::on_writable(Connection& c) {
  flush_out(c);
  // Pipelined bytes may already be buffered. This loop (not recursion
  // through queue_response) is the only thing that advances the parser
  // after a flush, so a burst of tiny pipelined requests costs O(1)
  // stack no matter how many are buffered.
  while (try_parse_and_route(c)) {
  }
}

/// Advance the connection's parser one step. Returns true when progress
/// was made and another step may be possible (pipelining).
bool HttpServer::try_parse_and_route(Connection& c) {
  if (c.fd < 0) return false;
  if (c.state == Connection::State::kReadHeaders) {
    const std::size_t header_end = c.in.find("\r\n\r\n");
    if (header_end == std::string::npos) {
      if (c.in.size() > options_.max_header_bytes) {
        queue_response(c, 431,
                       error_body("headers_too_large", "header block exceeds " +
                                      std::to_string(options_.max_header_bytes) +
                                      " bytes"),
                       "application/json", true);
      }
      return false;
    }
    if (header_end > options_.max_header_bytes) {
      queue_response(c, 431,
                     error_body("headers_too_large", "header block too large"),
                     "application/json", true);
      return false;
    }

    // ---- request line
    const std::string head = c.in.substr(0, header_end);
    c.in.erase(0, header_end + 4);
    const std::size_t line_end = head.find("\r\n");
    const std::string request_line =
        line_end == std::string::npos ? head : head.substr(0, line_end);
    const std::size_t sp1 = request_line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : request_line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
      queue_response(c, 400, error_body("bad_request", "malformed request line"),
                     "application/json", true);
      return false;
    }
    ParsedRequest req;
    req.method = request_line.substr(0, sp1);
    std::string target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::string version = request_line.substr(sp2 + 1);
    if (version != "HTTP/1.1" && version != "HTTP/1.0") {
      queue_response(c, 400,
                     error_body("bad_request", "unsupported HTTP version"),
                     "application/json", true);
      return false;
    }
    const std::size_t qpos = target.find('?');
    if (qpos != std::string::npos) {
      req.query = target.substr(qpos + 1);
      target.erase(qpos);
    }
    req.path = std::move(target);
    if (req.path.empty() || req.path[0] != '/') {
      queue_response(c, 400, error_body("bad_request", "malformed target"),
                     "application/json", true);
      return false;
    }

    // ---- headers
    std::size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
    while (pos < head.size()) {
      std::size_t eol = head.find("\r\n", pos);
      if (eol == std::string::npos) eol = head.size();
      const std::string line = head.substr(pos, eol - pos);
      pos = eol + 2;
      if (line.empty()) continue;
      const std::size_t colon = line.find(':');
      if (colon == std::string::npos || colon == 0) {
        queue_response(c, 400, error_body("bad_request", "malformed header"),
                       "application/json", true);
        return false;
      }
      std::string value = line.substr(colon + 1);
      const std::size_t first = value.find_first_not_of(" \t");
      const std::size_t last = value.find_last_not_of(" \t");
      value = first == std::string::npos
                  ? std::string{}
                  : value.substr(first, last - first + 1);
      std::string name = lowercase(line.substr(0, colon));
      const auto it = req.headers.find(name);
      if (it == req.headers.end()) {
        req.headers.emplace(std::move(name), std::move(value));
      } else if (is_singleton_header(name)) {
        // Singleton headers must not repeat: behind a proxy that honors
        // the first value while we honor the last, conflicting copies
        // become a request-smuggling vector.
        queue_response(c, 400,
                       error_body("bad_request", "duplicate header: " + name),
                       "application/json", true);
        return false;
      } else {
        // List-valued headers combine per RFC 9110 §5.2.
        it->second += ", " + value;
      }
    }

    req.keep_alive = version == "HTTP/1.1";
    const auto connection = req.headers.find("connection");
    if (connection != req.headers.end()) {
      const std::string v = lowercase(connection->second);
      if (v == "close") req.keep_alive = false;
      if (v == "keep-alive") req.keep_alive = true;
    }

    if (req.headers.count("transfer-encoding") != 0) {
      queue_response(c, 501,
                     error_body("not_implemented",
                                "chunked transfer encoding not supported"),
                     "application/json", true);
      return false;
    }
    std::size_t content_length = 0;
    const auto cl = req.headers.find("content-length");
    if (cl != req.headers.end()) {
      const std::string& v = cl->second;
      if (v.empty() || v.find_first_not_of("0123456789") != std::string::npos) {
        queue_response(c, 400,
                       error_body("bad_request", "malformed Content-Length"),
                       "application/json", true);
        return false;
      }
      content_length = static_cast<std::size_t>(
          std::strtoull(v.c_str(), nullptr, 10));
    }
    if (content_length > options_.max_body_bytes) {
      queue_response(c, 413,
                     error_body("too_large",
                                "body exceeds " +
                                    std::to_string(options_.max_body_bytes) +
                                    " bytes"),
                     "application/json", true);
      return false;
    }
    const auto expect = req.headers.find("expect");
    if (expect != req.headers.end() &&
        lowercase(expect->second) == "100-continue") {
      c.out += "HTTP/1.1 100 Continue\r\n\r\n";
    }

    c.request = std::move(req);
    c.body_needed = content_length;
    c.state = Connection::State::kReadBody;
    // Fall through to the body check below.
  }

  if (c.state == Connection::State::kReadBody) {
    if (c.in.size() < c.body_needed) return false;
    ParsedRequest req = std::move(c.request);
    req.body = c.in.substr(0, c.body_needed);
    c.in.erase(0, c.body_needed);
    c.request = ParsedRequest{};
    c.body_needed = 0;
    c.keep_alive = req.keep_alive;
    route(c, std::move(req));
    // route() either parked the connection on the handler pool
    // (kHandling) or queued + flushed a response. When the flush
    // completed and re-armed the parser, report progress so the
    // caller's loop takes another pass over pipelined bytes.
    return c.fd >= 0 && c.state == Connection::State::kReadHeaders &&
           !c.in.empty();
  }
  return false;
}

void HttpServer::route(Connection& c, ParsedRequest req) {
  {
    std::lock_guard lock(stats_mutex_);
    ++stats_.requests;
  }
  const bool known_path = std::any_of(
      std::begin(kHttpEndpoints), std::end(kHttpEndpoints),
      [&](const char* endpoint) { return req.path == endpoint; });
  if (!known_path) {
    queue_response(c, 404, error_body("not_found", "no such endpoint: " +
                                                        req.path),
                   "application/json", !c.keep_alive);
    return;
  }

  if (req.path == "/infer") {
    if (req.method != "POST") {
      queue_response(c, 405, error_body("method_not_allowed",
                                        "/infer requires POST"),
                     "application/json", !c.keep_alive);
      return;
    }
    c.state = Connection::State::kHandling;
    c.deadline = ServeClock::time_point::max();
    ++inflight_handlers_;
    {
      std::lock_guard lock(handler_mutex_);
      handler_queue_.push_back(HandlerJob{c.generation, std::move(req)});
    }
    handler_cv_.notify_one();
    return;
  }

  if (req.method != "GET") {
    queue_response(c, 405, error_body("method_not_allowed",
                                      req.path + " requires GET"),
                   "application/json", !c.keep_alive);
    return;
  }

  if (req.path == "/healthz") {
    if (draining()) {
      queue_response(c, 503, "{\"status\":\"draining\"}", "application/json",
                     !c.keep_alive, /*retry_after=*/true);
    } else if (scheduler_.worker_count() >= 1 &&
               plan_.quantized_layer_count() >= 1) {
      const ResilienceSnapshot res = scheduler_.resilience_snapshot();
      if (res.degraded) {
        // Still ready — interactive traffic is served through the
        // healthy workers — but operators should know capacity is down.
        queue_response(c, 200,
                       "{\"status\":\"degraded\",\"workers\":" +
                           std::to_string(scheduler_.worker_count()) +
                           ",\"healthy_workers\":" +
                           std::to_string(res.healthy_workers) +
                           ",\"reason\":\"" +
                           prometheus_escape_label(res.degraded_reason) +
                           "\"}",
                       "application/json", !c.keep_alive);
      } else {
        queue_response(c, 200,
                       "{\"status\":\"ok\",\"workers\":" +
                           std::to_string(scheduler_.worker_count()) + "}",
                       "application/json", !c.keep_alive);
      }
    } else {
      queue_response(c, 503, "{\"status\":\"unavailable\"}",
                     "application/json", !c.keep_alive, /*retry_after=*/true);
    }
    return;
  }
  if (req.path == "/metrics") {
    queue_response(c, 200, scheduler_.to_prometheus(),
                   "text/plain; version=0.0.4; charset=utf-8",
                   !c.keep_alive);
    return;
  }
  // /plan
  queue_response(c, 200, plan_json(), "application/json", !c.keep_alive);
}

void HttpServer::queue_response(Connection& c, int status,
                                const std::string& body,
                                const char* content_type, bool close_after,
                                bool retry_after) {
  if (c.fd < 0) return;
  const bool close = close_after || draining();
  std::string head;
  head.reserve(256);
  head += "HTTP/1.1 ";
  head += std::to_string(status);
  head += ' ';
  head += status_text(status);
  head += "\r\nServer: yoloc-serve\r\nContent-Type: ";
  head += content_type;
  head += "\r\nContent-Length: ";
  head += std::to_string(body.size());
  if (retry_after || status == 429 || status == 503) {
    head += "\r\nRetry-After: ";
    head += std::to_string(options_.retry_after_s);
  }
  head += close ? "\r\nConnection: close\r\n\r\n"
                : "\r\nConnection: keep-alive\r\n\r\n";
  c.out += head;
  c.out += body;
  c.close_after_write = close;
  c.state = Connection::State::kWrite;
  c.deadline = ServeClock::now() + options_.write_timeout;
  {
    std::lock_guard lock(stats_mutex_);
    if (status < 400) {
      ++stats_.responses_2xx;
    } else if (status < 500) {
      ++stats_.responses_4xx;
    } else {
      ++stats_.responses_5xx;
    }
  }
  // Opportunistic immediate flush only — deliberately NOT on_writable():
  // its parse loop would re-enter route() -> queue_response() and
  // recurse one stack frame per pipelined request. Callers that can
  // have buffered follow-up requests pump the parser iteratively.
  flush_out(c);
}

void HttpServer::drain_completions() {
  std::deque<Completion> ready;
  {
    std::lock_guard lock(completion_mutex_);
    ready.swap(completions_);
  }
  for (Completion& done : ready) {
    --inflight_handlers_;
    Connection* conn = nullptr;
    for (auto& c : connections_) {
      if (c->generation == done.generation && c->fd >= 0) {
        conn = c.get();
        break;
      }
    }
    if (conn == nullptr) continue;  // client went away mid-inference
    queue_response(*conn, done.status, done.body, "application/json",
                   !conn->keep_alive, done.retry_after);
    // A keep-alive client may have pipelined the next request behind
    // the /infer body; no further socket event will arrive for it.
    while (try_parse_and_route(*conn)) {
    }
  }
}

// ------------------------------------------------------- handler pool

void HttpServer::handler_loop() {
  for (;;) {
    HandlerJob job;
    {
      std::unique_lock lock(handler_mutex_);
      handler_cv_.wait(lock,
                       [&] { return handler_stop_ || !handler_queue_.empty(); });
      if (handler_queue_.empty()) return;  // stop requested and drained
      job = std::move(handler_queue_.front());
      handler_queue_.pop_front();
    }
    Completion done = run_infer(job);
    done.generation = job.generation;
    {
      std::lock_guard lock(completion_mutex_);
      completions_.push_back(std::move(done));
    }
    wake();
  }
}

HttpServer::Completion HttpServer::run_infer(const HandlerJob& job) {
  Completion out;
  const ParsedRequest& req = job.request;

  // ---- decode the tensor + scheduling hints
  std::vector<int> shape;
  std::vector<std::uint8_t> payload;
  std::string priority_name_text;
  double deadline_ms = 0.0;
  bool have_deadline = false;

  const auto ct = req.headers.find("content-type");
  const std::string content_type =
      ct == req.headers.end() ? "application/json" : lowercase(ct->second);

  if (content_type.rfind("application/octet-stream", 0) == 0) {
    const auto query = parse_query(req.query);
    const auto shape_it = query.find("shape");
    if (shape_it == query.end() ||
        !parse_shape_csv(shape_it->second, shape)) {
      out.status = 400;
      out.body = error_body(
          "bad_request", "octet-stream mode requires ?shape=N,C,H,W");
      return out;
    }
    payload.assign(req.body.begin(), req.body.end());
    const auto prio_it = query.find("priority");
    if (prio_it != query.end()) priority_name_text = prio_it->second;
    const auto dl_it = query.find("deadline_ms");
    if (dl_it != query.end()) {
      char* end = nullptr;
      deadline_ms = std::strtod(dl_it->second.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        out.status = 400;
        out.body = error_body("bad_request", "malformed deadline_ms");
        return out;
      }
      have_deadline = true;
    }
  } else {
    JsonValue root;
    if (!JsonParser(req.body).parse(root) ||
        root.kind != JsonValue::Kind::kObject) {
      out.status = 400;
      out.body = error_body("bad_request", "body is not a JSON object");
      return out;
    }
    const JsonValue* shape_v = root.find("shape");
    const JsonValue* data_v = root.find("data_b64");
    if (shape_v == nullptr || shape_v->kind != JsonValue::Kind::kArray ||
        data_v == nullptr || data_v->kind != JsonValue::Kind::kString) {
      out.status = 400;
      out.body = error_body("bad_request",
                            "required fields: shape (array), data_b64");
      return out;
    }
    for (const JsonValue& extent : shape_v->array) {
      if (extent.kind != JsonValue::Kind::kNumber || extent.number < 1 ||
          extent.number > (1 << 24) ||
          extent.number != static_cast<double>(
                               static_cast<int>(extent.number))) {
        out.status = 400;
        out.body = error_body("bad_request", "shape extents must be "
                                             "positive integers");
        return out;
      }
      shape.push_back(static_cast<int>(extent.number));
    }
    if (!base64_decode(data_v->string, payload)) {
      out.status = 400;
      out.body = error_body("bad_request", "data_b64 is not valid base64");
      return out;
    }
    const JsonValue* prio_v = root.find("priority");
    if (prio_v != nullptr) {
      if (prio_v->kind != JsonValue::Kind::kString) {
        out.status = 400;
        out.body = error_body("bad_request", "priority must be a string");
        return out;
      }
      priority_name_text = prio_v->string;
    }
    const JsonValue* dl_v = root.find("deadline_ms");
    if (dl_v != nullptr) {
      if (dl_v->kind != JsonValue::Kind::kNumber) {
        out.status = 400;
        out.body = error_body("bad_request", "deadline_ms must be a number");
        return out;
      }
      deadline_ms = dl_v->number;
      have_deadline = true;
    }
  }

  if (shape.size() != 4 ||
      std::any_of(shape.begin(), shape.end(), [](int e) { return e < 1; })) {
    out.status = 400;
    out.body = error_body("bad_request", "shape must be rank-4 NCHW");
    return out;
  }
  // Overflow-safe element count: extents are each <= 2^24, so the raw
  // rank-4 product can reach 2^96 and wrap a size_t into a tiny value
  // that passes the payload-size check while kernels index the huge
  // logical shape. Bound the running product by the largest tensor a
  // legal body could carry and reject before each multiply.
  const std::size_t max_elements = options_.max_body_bytes / sizeof(float);
  std::size_t elements = 1;
  for (const int e : shape) {
    const auto extent = static_cast<std::size_t>(e);
    if (elements > max_elements / extent) {
      out.status = 400;
      out.body = error_body(
          "bad_request",
          "shape describes more than " + std::to_string(max_elements) +
              " elements (body cap " +
              std::to_string(options_.max_body_bytes) + " bytes)");
      return out;
    }
    elements *= extent;
  }
  if (elements * sizeof(float) != payload.size()) {
    out.status = 400;
    out.body = error_body(
        "bad_request",
        "payload is " + std::to_string(payload.size()) + " bytes, shape needs " +
            std::to_string(elements * sizeof(float)));
    return out;
  }

  SubmitOptions submit;
  if (!priority_name_text.empty() &&
      !parse_priority(priority_name_text, submit.priority)) {
    out.status = 400;
    out.body = error_body(
        "bad_request",
        "priority must be interactive | batch | best_effort");
    return out;
  }
  if (have_deadline) {
    // The double->int64 cast below is UB for non-finite or out-of-range
    // values (query-string strtod can yield inf on overflow). 9e12 ms is
    // ~285 years, and 9e12 * 1e6 stays inside int64.
    if (!std::isfinite(deadline_ms) || std::fabs(deadline_ms) > 9e12) {
      out.status = 400;
      out.body = error_body("bad_request", "deadline_ms out of range");
      return out;
    }
    // deadline_ms <= 0 submits an already-dead deadline: the scheduler
    // refuses it, which maps to 503 below — the documented contract for
    // "cannot be served in time".
    submit.deadline = std::chrono::nanoseconds(
        static_cast<std::int64_t>(deadline_ms * 1e6));
    if (submit.deadline.count() == 0 && deadline_ms != 0.0) {
      submit.deadline = std::chrono::nanoseconds(deadline_ms > 0 ? 1 : -1);
    }
  }

  Tensor input(shape);
  std::memcpy(input.data(), payload.data(), payload.size());

  // ---- submit + wait (the only blocking section)
  const auto start = ServeClock::now();
  try {
    Tensor result = scheduler_.submit(std::move(input), submit).get();
    const double latency_ms =
        static_cast<double>(ns_between(start, ServeClock::now())) / 1e6;

    std::string body;
    body.reserve(result.size() * 2 + 128);
    body += "{\"shape\":[";
    const auto& out_shape = result.shape();
    for (std::size_t i = 0; i < out_shape.size(); ++i) {
      if (i != 0) body += ',';
      body += std::to_string(out_shape[i]);
    }
    body += "],\"data_b64\":\"";
    body += base64_encode(result.data(), result.size() * sizeof(float));
    char tail[96];
    std::snprintf(tail, sizeof(tail), "\",\"latency_ms\":%.3f,\"images\":%d}",
                  latency_ms, shape[0]);
    body += tail;
    out.status = 200;
    out.body = std::move(body);
  } catch (const QueueDepthError& e) {
    out.status = 429;
    out.retry_after = true;
    out.body = error_body("queue_full", e.what());
  } catch (const InfeasibleDeadlineError& e) {
    out.status = 503;
    out.retry_after = true;
    out.body = error_body("deadline_infeasible", e.what());
  } catch (const DeadlineExpiredError& e) {
    out.status = 503;
    out.retry_after = true;
    out.body = error_body("deadline_expired", e.what());
  } catch (const ShedError& e) {
    out.status = 503;
    out.retry_after = true;
    out.body = error_body("shed", e.what());
  } catch (const AdmissionError& e) {
    out.status = 503;
    out.retry_after = true;
    out.body = error_body("admission", e.what());
  } catch (const WorkerHungError& e) {
    // The batch was abandoned on a hung worker; the request is safe to
    // retry — a healthy worker will pick it up.
    out.status = 503;
    out.retry_after = true;
    out.body = error_body("worker_hung", e.what());
  } catch (const std::exception& e) {
    out.status = 500;
    out.body = error_body("execution", e.what());
  }
  return out;
}

// -------------------------------------------------------------- /plan

std::string HttpServer::plan_json() {
  std::lock_guard lock(plan_json_mutex_);
  if (!plan_json_cache_.empty()) return plan_json_cache_;

  const DeploymentOptions& o = plan_.options();
  std::string out;
  out.reserve(1024);
  out += "{\"path\":";
  out += plan_path_.empty() ? "null"
                            : "\"" + json_escape(plan_path_) + "\"";
  out += ",\"mode\":\"";
  out += o.mode == MacroMvmEngine::Mode::kAnalog ? "analog" : "exact_cost";
  out += "\",\"weight_bits\":" + std::to_string(o.weight_bits);
  out += ",\"act_bits\":" + std::to_string(o.act_bits);
  out += ",\"quantized_layers\":" +
         std::to_string(plan_.quantized_layer_count());
  out += ",\"packed_weight_bytes\":" +
         std::to_string(plan_.packed_weight_bytes());
  char pack[64];
  std::snprintf(pack, sizeof(pack), ",\"pack_ms\":%.3f", plan_.pack_ms());
  out += pack;
  out += ",\"rom_macro\":{\"rows\":" +
         std::to_string(o.rom_macro.geometry.rows) +
         ",\"cols\":" + std::to_string(o.rom_macro.geometry.cols) + "}";
  out += ",\"sram_macro\":{\"rows\":" +
         std::to_string(o.sram_macro.geometry.rows) +
         ",\"cols\":" + std::to_string(o.sram_macro.geometry.cols) + "}";

  out += ",\"sections\":[";
  if (!plan_path_.empty()) {
    try {
      const PlanArtifactInfo info = inspect_plan_file(plan_path_);
      for (std::size_t i = 0; i < info.sections.size(); ++i) {
        const PlanSectionInfo& s = info.sections[i];
        if (i != 0) out += ',';
        char row[192];
        std::snprintf(row, sizeof(row),
                      "{\"id\":%u,\"name\":\"%s\",\"offset\":%llu,"
                      "\"size\":%llu,\"crc32\":%u,\"crc_ok\":%s}",
                      s.id, plan_section_name(s.id),
                      static_cast<unsigned long long>(s.offset),
                      static_cast<unsigned long long>(s.size), s.crc32_value,
                      s.crc_ok ? "true" : "false");
        out += row;
      }
    } catch (const std::exception&) {
      // The serving plan is live regardless; report no sections rather
      // than failing the endpoint because the artifact moved on disk.
    }
  }
  out += "]}";
  plan_json_cache_ = std::move(out);
  return plan_json_cache_;
}

}  // namespace yoloc
