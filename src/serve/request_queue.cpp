#include "serve/request_queue.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace yoloc {

namespace {

/// Requests fuse into one forward pass iff their C/H/W extents match
/// (the leading batch extent may differ).
bool same_geometry(const Tensor& a, const Tensor& b) {
  return a.shape()[1] == b.shape()[1] && a.shape()[2] == b.shape()[2] &&
         a.shape()[3] == b.shape()[3];
}

std::chrono::nanoseconds slack_of(const ServeRequest& r,
                                  ServeClock::time_point now) {
  return r.has_deadline() ? r.deadline - now
                          : std::chrono::nanoseconds::max();
}

}  // namespace

RequestQueue::Admission RequestQueue::admit(
    Priority p, ServeClock::time_point now, ServeClock::time_point deadline,
    int images, std::uint64_t max_depth, std::uint64_t est_image_ns) const {
  if (max_depth != 0 && depth(p) >= max_depth) return Admission::kQueueFull;
  if (deadline != ServeClock::time_point::max()) {
    if (deadline <= now) return Admission::kAlreadyExpired;
    if (est_image_ns != 0) {
      // Even an empty queue cannot meet a deadline tighter than the
      // request's own estimated execution time.
      const auto needed = std::chrono::nanoseconds(
          est_image_ns * static_cast<std::uint64_t>(std::max(images, 1)));
      if (now + needed > deadline) return Admission::kInfeasible;
    }
  }
  return Admission::kAccept;
}

void RequestQueue::push(ServeRequest req) {
  const auto lane = static_cast<std::size_t>(req.priority);
  YOLOC_CHECK(lane < lanes_.size(), "request queue: bad priority class");
  deadline_count_ += req.has_deadline() ? 1 : 0;
  lanes_[lane].push_back(std::move(req));
}

bool RequestQueue::empty() const {
  for (const auto& lane : lanes_) {
    if (!lane.empty()) return false;
  }
  return true;
}

std::uint64_t RequestQueue::depth(Priority p) const {
  return lanes_[static_cast<std::size_t>(p)].size();
}

std::array<std::uint64_t, kPriorityClassCount> RequestQueue::depths() const {
  std::array<std::uint64_t, kPriorityClassCount> d{};
  for (int c = 0; c < kPriorityClassCount; ++c) {
    d[static_cast<std::size_t>(c)] = lanes_[static_cast<std::size_t>(c)].size();
  }
  return d;
}

std::vector<ServeRequest> RequestQueue::take_expired(
    ServeClock::time_point now) {
  std::vector<ServeRequest> expired;
  if (deadline_count_ == 0) return expired;
  for (auto& lane : lanes_) {
    for (auto it = lane.begin(); it != lane.end();) {
      if (it->expired(now)) {
        --deadline_count_;
        expired.push_back(std::move(*it));
        it = lane.erase(it);
      } else {
        ++it;
      }
    }
  }
  return expired;
}

std::vector<ServeRequest> RequestQueue::pop_batch(
    int max_batch, ServeClock::time_point now, std::uint64_t est_image_ns) {
  YOLOC_CHECK(max_batch >= 1, "request queue: max_batch >= 1");
  std::vector<ServeRequest> batch;
  for (auto& lane : lanes_) {
    if (lane.empty()) continue;

    batch.push_back(std::move(lane.front()));
    lane.pop_front();
    deadline_count_ -= batch.front().has_deadline() ? 1 : 0;
    std::uint64_t images =
        static_cast<std::uint64_t>(batch.front().input.shape()[0]);
    auto min_slack = slack_of(batch.front(), now);

    for (auto it = lane.begin();
         it != lane.end() && static_cast<int>(batch.size()) < max_batch;) {
      if (!same_geometry(it->input, batch.front().input)) {
        ++it;  // incompatible geometry: leave in place, keep scanning
        continue;
      }
      const auto candidate_images =
          images + static_cast<std::uint64_t>(it->input.shape()[0]);
      const auto candidate_slack = std::min(min_slack, slack_of(*it, now));
      if (est_image_ns != 0 &&
          candidate_slack != std::chrono::nanoseconds::max() &&
          std::chrono::nanoseconds(est_image_ns * candidate_images) >
              candidate_slack) {
        // Deadline-aware window: adding THIS candidate would blow the
        // tightest deadline in the forming batch. Skip it and keep
        // scanning — a later request with fewer images may still fit.
        ++it;
        continue;
      }
      deadline_count_ -= it->has_deadline() ? 1 : 0;
      batch.push_back(std::move(*it));
      it = lane.erase(it);
      images = candidate_images;
      min_slack = candidate_slack;
    }
    break;  // strict priority: never mix lanes in one batch
  }
  return batch;
}

}  // namespace yoloc
