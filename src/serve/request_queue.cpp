#include "serve/request_queue.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace yoloc {

namespace {

/// Requests fuse into one forward pass iff their C/H/W extents match
/// (the leading batch extent may differ).
bool same_geometry(const Tensor& a, const Tensor& b) {
  return a.shape()[1] == b.shape()[1] && a.shape()[2] == b.shape()[2] &&
         a.shape()[3] == b.shape()[3];
}

std::chrono::nanoseconds slack_of(const ServeRequest& r,
                                  ServeClock::time_point now) {
  return r.has_deadline() ? r.deadline - now
                          : std::chrono::nanoseconds::max();
}

bool finite_positive(double w) { return w > 0.0 && std::isfinite(w); }

}  // namespace

RequestQueue::Admission RequestQueue::admit(
    Priority p, ServeClock::time_point now, ServeClock::time_point deadline,
    int images, std::uint64_t max_depth, std::uint64_t est_image_ns) const {
  if (max_depth != 0 && depth(p) >= max_depth) return Admission::kQueueFull;
  if (deadline != ServeClock::time_point::max()) {
    if (deadline <= now) return Admission::kAlreadyExpired;
    if (est_image_ns != 0) {
      // Even an empty queue cannot meet a deadline tighter than the
      // request's own estimated execution time.
      const auto needed = std::chrono::nanoseconds(
          est_image_ns * static_cast<std::uint64_t>(std::max(images, 1)));
      if (now + needed > deadline) return Admission::kInfeasible;
    }
  }
  return Admission::kAccept;
}

void RequestQueue::set_weights(const LaneWeights& weights) {
  double min_finite = std::numeric_limits<double>::infinity();
  for (const double w : weights) {
    YOLOC_CHECK(!std::isnan(w) && w >= 0.0,
                "request queue: lane weight must be >= 0 (or +inf)");
    if (finite_positive(w)) min_finite = std::min(min_finite, w);
  }
  weights_ = weights;
  for (int c = 0; c < kPriorityClassCount; ++c) {
    const auto i = static_cast<std::size_t>(c);
    // Normalize so the smallest weighted lane earns one image of credit
    // per rotation: a pop then needs at most max-head-cost rotations.
    quantum_[i] = finite_positive(weights[i]) ? weights[i] / min_finite : 0.0;
    deficit_[i] = 0.0;
  }
  cursor_ = 0;
  visit_credited_ = false;
}

void RequestQueue::push(ServeRequest req) {
  const auto lane = static_cast<std::size_t>(req.priority);
  YOLOC_CHECK(lane < lanes_.size(), "request queue: bad priority class");
  deadline_count_ += req.has_deadline() ? 1 : 0;
  lanes_[lane].push_back(std::move(req));
}

bool RequestQueue::empty() const {
  for (const auto& lane : lanes_) {
    if (!lane.empty()) return false;
  }
  return true;
}

bool RequestQueue::has_work(LaneMask mask) const {
  for (int c = 0; c < kPriorityClassCount; ++c) {
    if ((mask & lane_bit(static_cast<Priority>(c))) != 0 &&
        !lanes_[static_cast<std::size_t>(c)].empty()) {
      return true;
    }
  }
  return false;
}

std::uint64_t RequestQueue::depth(Priority p) const {
  return lanes_[static_cast<std::size_t>(p)].size();
}

std::array<std::uint64_t, kPriorityClassCount> RequestQueue::depths() const {
  std::array<std::uint64_t, kPriorityClassCount> d{};
  for (int c = 0; c < kPriorityClassCount; ++c) {
    d[static_cast<std::size_t>(c)] = lanes_[static_cast<std::size_t>(c)].size();
  }
  return d;
}

std::vector<ServeRequest> RequestQueue::take_expired(
    ServeClock::time_point now) {
  std::vector<ServeRequest> expired;
  if (deadline_count_ == 0) return expired;
  for (auto& lane : lanes_) {
    for (auto it = lane.begin(); it != lane.end();) {
      if (it->expired(now)) {
        --deadline_count_;
        expired.push_back(std::move(*it));
        it = lane.erase(it);
      } else {
        ++it;
      }
    }
  }
  return expired;
}

std::vector<ServeRequest> RequestQueue::take_all() {
  std::vector<ServeRequest> all;
  for (auto& lane : lanes_) {
    for (ServeRequest& r : lane) {
      if (r.has_deadline()) --deadline_count_;
      all.push_back(std::move(r));
    }
    lane.clear();
  }
  return all;
}

void RequestQueue::advance_cursor() {
  cursor_ = (cursor_ + 1) % kPriorityClassCount;
  visit_credited_ = false;
}

int RequestQueue::pick_lane(LaneMask mask) {
  // Restricted mask (a reserved worker): serve the highest-priority
  // non-empty lane in the mask directly — dedicated capacity sits
  // outside the fair share, so DWRR state is untouched.
  if (mask != kAllLanes) {
    for (int c = 0; c < kPriorityClassCount; ++c) {
      if ((mask & lane_bit(static_cast<Priority>(c))) != 0 &&
          !lanes_[static_cast<std::size_t>(c)].empty()) {
        return c;
      }
    }
    return -1;
  }

  // Strict tier: +inf lanes always win, priority order among them.
  for (int c = 0; c < kPriorityClassCount; ++c) {
    const auto i = static_cast<std::size_t>(c);
    if (std::isinf(weights_[i]) && !lanes_[i].empty()) return c;
  }

  // Weighted tier: deficit round-robin over finite positive lanes.
  bool any_weighted = false;
  for (int c = 0; c < kPriorityClassCount; ++c) {
    const auto i = static_cast<std::size_t>(c);
    if (quantum_[i] <= 0.0) continue;
    if (lanes_[i].empty()) {
      // A lane must not hoard credit across an idle period.
      deficit_[i] = 0.0;
    } else {
      any_weighted = true;
    }
  }
  if (any_weighted) {
    // Terminates: every full rotation grants each backlogged weighted
    // lane >= 1 image of credit (quantum_ is min-normalized), so within
    // max-head-cost rotations some lane affords its head.
    for (;;) {
      const auto i = static_cast<std::size_t>(cursor_);
      if (quantum_[i] <= 0.0 || lanes_[i].empty()) {
        advance_cursor();
        continue;
      }
      if (!visit_credited_) {
        deficit_[i] += quantum_[i];
        visit_credited_ = true;
      }
      const double head_cost =
          static_cast<double>(lanes_[i].front().input.shape()[0]);
      if (deficit_[i] >= head_cost) return cursor_;
      advance_cursor();
    }
  }

  // Idle tier: weight-0 lanes run only when everything above is empty.
  for (int c = 0; c < kPriorityClassCount; ++c) {
    if (!lanes_[static_cast<std::size_t>(c)].empty()) return c;
  }
  return -1;
}

std::vector<ServeRequest> RequestQueue::form_batch(
    int lane_index, int max_batch, ServeClock::time_point now,
    std::uint64_t est_image_ns, std::uint64_t* images_taken) {
  auto& lane = lanes_[static_cast<std::size_t>(lane_index)];
  std::vector<ServeRequest> batch;
  batch.push_back(std::move(lane.front()));
  lane.pop_front();
  deadline_count_ -= batch.front().has_deadline() ? 1 : 0;
  std::uint64_t images =
      static_cast<std::uint64_t>(batch.front().input.shape()[0]);
  auto min_slack = slack_of(batch.front(), now);

  for (auto it = lane.begin();
       it != lane.end() && static_cast<int>(batch.size()) < max_batch;) {
    if (!same_geometry(it->input, batch.front().input)) {
      ++it;  // incompatible geometry: leave in place, keep scanning
      continue;
    }
    const auto candidate_images =
        images + static_cast<std::uint64_t>(it->input.shape()[0]);
    const auto candidate_slack = std::min(min_slack, slack_of(*it, now));
    if (est_image_ns != 0 &&
        candidate_slack != std::chrono::nanoseconds::max() &&
        std::chrono::nanoseconds(est_image_ns * candidate_images) >
            candidate_slack) {
      // Deadline-aware window: adding THIS candidate would blow the
      // tightest deadline in the forming batch. Skip it and keep
      // scanning — a later request with fewer images may still fit.
      ++it;
      continue;
    }
    deadline_count_ -= it->has_deadline() ? 1 : 0;
    batch.push_back(std::move(*it));
    it = lane.erase(it);
    images = candidate_images;
    min_slack = candidate_slack;
  }
  *images_taken = images;
  return batch;
}

std::vector<ServeRequest> RequestQueue::pop_batch(
    const std::array<int, kPriorityClassCount>& lane_max_batch,
    ServeClock::time_point now, std::uint64_t est_image_ns, LaneMask mask) {
  const int lane = pick_lane(mask);
  if (lane < 0) return {};
  const auto i = static_cast<std::size_t>(lane);
  YOLOC_CHECK(lane_max_batch[i] >= 1, "request queue: lane max_batch >= 1");
  std::uint64_t images = 0;
  std::vector<ServeRequest> batch =
      form_batch(lane, lane_max_batch[i], now, est_image_ns, &images);
  if (mask == kAllLanes && quantum_[i] > 0.0 && !std::isinf(weights_[i])) {
    // Charge the weighted lane for what it actually consumed. A batch
    // may overshoot the credit (never by more than one batch); the lane
    // then waits proportionally longer before its next service.
    deficit_[i] -= static_cast<double>(images);
  }
  return batch;
}

std::vector<ServeRequest> RequestQueue::pop_batch(
    int max_batch, ServeClock::time_point now, std::uint64_t est_image_ns) {
  YOLOC_CHECK(max_batch >= 1, "request queue: max_batch >= 1");
  std::array<int, kPriorityClassCount> caps;
  caps.fill(max_batch);
  return pop_batch(caps, now, est_image_ns, kAllLanes);
}

}  // namespace yoloc
