#pragma once
// Per-request tracing for the serving scheduler: sampled requests emit
// chrome://tracing "complete" (ph = "X") spans covering every stage of
// their life — queue-wait, batch formation, execute, per-layer
// im2col/MVM, epilogue, and the end-to-end envelope — correlated by
// request id and batch id, loadable in Perfetto or chrome://tracing.
//
// Hot-path design: each scheduler worker owns one fixed-capacity event
// buffer it alone writes (single-writer, no CAS loop); publication is a
// release store of the element count, and drains read the published
// prefix with an acquire load — lock-free on the record path and
// TSAN-clean, the same slot-per-worker shape as the metrics registry
// but without even the uncontended mutex. A full buffer drops further
// events (counted, surfaced in the JSON) rather than stalling a worker.
//
// Sampling: `SchedulerOptions::trace_sampling` in [0, 1]. The decision
// is a pure hash of the request's admission id, so it is deterministic
// across runs and replicas — the same recorded workload samples the
// same requests every time — and 0.0 (the default) short-circuits
// before any clock read, so untraced deployments pay nothing.
//
// Tracing is OBSERVER-ONLY: it never influences scheduling, batching,
// noise streams or outputs. The `trace`-labeled tests pin outputs and
// stat sums bit-identical between sampling 0.0 and 1.0.
//
// Event name lifetime: `TraceEvent::name` / `layer` hold pointers to
// static string literals (the span taxonomy below) or to layer-name
// storage owned by the DeploymentPlan — both outlive the collector, so
// events never allocate.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/trace_clock.hpp"
#include "nn/quantize.hpp"

namespace yoloc {

// ------------------------------------------------------ span taxonomy
// Every span name the collector can emit. docs/serving.md documents each
// one; tools/docs_check.sh fails the build when a name here is missing
// from the docs (the same contract the Prometheus metric names live
// under). Per-request spans carry the exact request id; batch-scoped
// spans carry the batch id plus the FIRST member's request id.
inline constexpr const char* kSpanQueueWait = "queue_wait";
inline constexpr const char* kSpanBatchFormation = "batch_formation";
inline constexpr const char* kSpanExecute = "execute";
inline constexpr const char* kSpanEpilogue = "epilogue";
inline constexpr const char* kSpanE2e = "e2e";
inline constexpr const char* kSpanIm2col = "im2col";
inline constexpr const char* kSpanMvm = "mvm";

inline constexpr const char* kTraceSpanNames[] = {
    kSpanQueueWait, kSpanBatchFormation, kSpanExecute, kSpanEpilogue,
    kSpanE2e,       kSpanIm2col,         kSpanMvm,
};

/// "No id" sentinel for TraceEvent::request_id / batch_id.
inline constexpr std::uint64_t kTraceNoId = ~0ull;

/// One completed span. Timestamps are nanoseconds since trace_epoch()
/// (common/trace_clock.hpp) — the same base the metrics registry uses.
struct TraceEvent {
  const char* name = nullptr;   ///< span taxonomy entry (never null)
  const char* layer = nullptr;  ///< plan-owned layer name (layer spans)
  const char* engine = nullptr; ///< "rom"/"sram"/"default" (layer spans)
  std::uint64_t request_id = kTraceNoId;
  std::uint64_t batch_id = kTraceNoId;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::int32_t requests = 0;  ///< batch-scoped spans: requests fused
  std::int32_t images = 0;    ///< batch-scoped spans: images in the pass
  int tid = 0;                ///< worker index (chrome tid)
};

/// Per-worker lock-free trace event sink; see file comment for the
/// concurrency contract (one writer per worker index, drains see a
/// consistent published prefix).
class TraceCollector {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  /// `workers` buffers of `capacity_per_worker` events each; `sampling`
  /// in [0, 1] (clamped). 0 disables collection entirely.
  TraceCollector(int workers, double sampling,
                 std::size_t capacity_per_worker = kDefaultCapacity);

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  [[nodiscard]] bool enabled() const { return sampling_ > 0.0; }
  [[nodiscard]] double sampling() const { return sampling_; }

  /// Deterministic sampling decision for an admission id: a pure hash of
  /// the id against the sampling rate — no RNG state, so the same id
  /// samples identically across runs, replicas and replays.
  [[nodiscard]] bool sampled(std::uint64_t request_id) const;

  /// Record one completed span into `worker`'s buffer. Only the thread
  /// owning that worker index may call this. Never blocks; drops (and
  /// counts) when the buffer is full.
  void emit(int worker, const TraceEvent& event);

  /// Merged copy of every published event, ordered by start time.
  /// Safe concurrently with emits (sees a consistent prefix per worker).
  [[nodiscard]] std::vector<TraceEvent> drain_events() const;

  /// Events dropped across all workers because a buffer was full.
  [[nodiscard]] std::uint64_t dropped_events() const;

  /// Chrome trace-event JSON ({"traceEvents":[...]}): complete ("X")
  /// events with pid = server, tid = worker, microsecond timestamps on
  /// the shared trace epoch, request/batch correlation args, plus
  /// process/thread name metadata. Loads in Perfetto (ui.perfetto.dev)
  /// and chrome://tracing as-is.
  [[nodiscard]] std::string to_chrome_json() const;

  /// to_chrome_json() written to `path`. Throws std::runtime_error on
  /// I/O failure.
  void write_chrome_json(const std::string& path) const;

  [[nodiscard]] int worker_buffers() const {
    return static_cast<int>(rings_.size());
  }

 private:
  struct WorkerRing {
    std::vector<TraceEvent> events;  // sized once, slots overwritten
    std::atomic<std::size_t> count{0};
    std::atomic<std::uint64_t> dropped{0};
  };

  double sampling_;
  std::vector<std::unique_ptr<WorkerRing>> rings_;
};

/// RAII span: records the construction time, emits one complete event on
/// destruction. Inactive when constructed with a null collector (the
/// unsampled path), in which case it never reads the clock.
class SpanScope {
 public:
  SpanScope() = default;
  SpanScope(TraceCollector* collector, int worker, const char* name,
            std::uint64_t request_id, std::uint64_t batch_id,
            std::int32_t requests = 0, std::int32_t images = 0)
      : collector_(collector),
        worker_(worker),
        name_(name),
        request_id_(request_id),
        batch_id_(batch_id),
        requests_(requests),
        images_(images),
        start_ns_(collector != nullptr ? trace_now_ns() : 0) {}

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  ~SpanScope() { close(); }

  /// Emit the span now (idempotent; the destructor becomes a no-op).
  void close() {
    if (collector_ == nullptr) return;
    TraceEvent ev;
    ev.name = name_;
    ev.request_id = request_id_;
    ev.batch_id = batch_id_;
    ev.start_ns = start_ns_;
    ev.dur_ns = trace_now_ns() - start_ns_;
    ev.requests = requests_;
    ev.images = images_;
    ev.tid = worker_;
    collector_->emit(worker_, ev);
    collector_ = nullptr;
  }

 private:
  TraceCollector* collector_ = nullptr;
  int worker_ = 0;
  const char* name_ = nullptr;
  std::uint64_t request_id_ = kTraceNoId;
  std::uint64_t batch_id_ = kTraceNoId;
  std::int32_t requests_ = 0;
  std::int32_t images_ = 0;
  std::uint64_t start_ns_ = 0;
};

/// LayerTraceSink adapter a worker installs on its ExecutionContext for
/// the duration of one SAMPLED batch: forwards per-layer im2col/MVM
/// phase timings into the collector, stamped with the batch's ids.
class BatchTraceSink final : public LayerTraceSink {
 public:
  BatchTraceSink(TraceCollector* collector, int worker,
                 std::uint64_t request_id, std::uint64_t batch_id)
      : collector_(collector),
        worker_(worker),
        request_id_(request_id),
        batch_id_(batch_id) {}

  void layer_span(const char* phase, const char* layer, EngineKind engine,
                  std::uint64_t start_ns, std::uint64_t end_ns) override;

 private:
  TraceCollector* collector_;
  int worker_;
  std::uint64_t request_id_;
  std::uint64_t batch_id_;
};

}  // namespace yoloc
