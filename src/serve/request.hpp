#pragma once
// Request vocabulary of the serving scheduler (src/serve/).
//
// Every request entering the scheduler carries a priority class and an
// optional deadline. The three classes model the traffic mix a deployed
// CiM chip actually sees: latency-sensitive interactive queries, bulk
// batch jobs, and best-effort background work that may be shed under
// load. Deadlines are RELATIVE to submission; the scheduler converts
// them to absolute steady-clock time points at admission so queued
// requests can be expired without consulting the submitter again.

#include <chrono>
#include <cstdint>
#include <future>
#include <stdexcept>
#include <string>

#include "tensor/tensor.hpp"

namespace yoloc {

/// Scheduling class, strongest first. Lower numeric value = served first.
enum class Priority : int {
  kInteractive = 0,  ///< latency-sensitive; always scheduled first
  kBatch = 1,        ///< default bulk class
  kBestEffort = 2,   ///< sheddable background work
};

inline constexpr int kPriorityClassCount = 3;

/// Stable lowercase name ("interactive" / "batch" / "best_effort") used
/// in metrics JSON and log lines.
const char* priority_name(Priority p);

/// Clock every scheduler timestamp lives on.
using ServeClock = std::chrono::steady_clock;

/// Per-submit scheduling hints.
struct SubmitOptions {
  Priority priority = Priority::kBatch;
  /// Relative deadline from the moment of submission. Zero means no
  /// deadline; a non-positive (already elapsed) deadline is rejected at
  /// admission. Expired queued requests fail fast with
  /// DeadlineExpiredError instead of occupying a worker.
  std::chrono::nanoseconds deadline{0};
};

/// Request refused at admission (queue depth cap or infeasible deadline).
class AdmissionError : public std::runtime_error {
 public:
  explicit AdmissionError(const std::string& what)
      : std::runtime_error("admission: " + what) {}
};

/// Request canceled because its deadline passed before (or at) admission
/// or while it was still queued.
class DeadlineExpiredError : public std::runtime_error {
 public:
  explicit DeadlineExpiredError(const std::string& what)
      : std::runtime_error("deadline expired: " + what) {}
};

/// Internal queue entry. Owned by RequestQueue / Scheduler; callers only
/// ever see the future side of `promise`.
struct ServeRequest {
  Tensor input;
  std::promise<Tensor> promise;
  /// Admission-order id; also the per-request noise-stream offset that
  /// backs the max_microbatch = 1 determinism contract.
  std::uint64_t id = 0;
  Priority priority = Priority::kBatch;
  ServeClock::time_point submit_time{};
  /// Absolute expiry; time_point::max() = no deadline.
  ServeClock::time_point deadline = ServeClock::time_point::max();

  [[nodiscard]] bool has_deadline() const {
    return deadline != ServeClock::time_point::max();
  }
  [[nodiscard]] bool expired(ServeClock::time_point now) const {
    return has_deadline() && deadline <= now;
  }
};

}  // namespace yoloc
