#pragma once
// Request vocabulary of the serving scheduler (src/serve/).
//
// Every request entering the scheduler carries a priority class and an
// optional deadline. The three classes model the traffic mix a deployed
// CiM chip actually sees: latency-sensitive interactive queries, bulk
// batch jobs, and best-effort background work that may be shed under
// load. Deadlines are RELATIVE to submission; the scheduler converts
// them to absolute steady-clock time points at admission so queued
// requests can be expired without consulting the submitter again.

#include <array>
#include <chrono>
#include <cstdint>
#include <future>
#include <limits>
#include <stdexcept>
#include <string>

#include "common/trace_clock.hpp"
#include "tensor/tensor.hpp"

namespace yoloc {

/// Scheduling class, strongest first. Lower numeric value = served first
/// under strict priority; under weighted-fair scheduling the class only
/// selects the lane (and its weight / reservation / SLO configuration).
enum class Priority : int {
  kInteractive = 0,  ///< latency-sensitive; always scheduled first
  kBatch = 1,        ///< default bulk class
  kBestEffort = 2,   ///< sheddable background work
};

inline constexpr int kPriorityClassCount = 3;

/// Bitmask over priority lanes: bit i = lane i is eligible. Workers with
/// a per-lane reservation pop with a single-lane mask; shared workers pop
/// with kAllLanes.
using LaneMask = unsigned;

inline constexpr LaneMask kAllLanes = (1u << kPriorityClassCount) - 1u;

inline constexpr LaneMask lane_bit(Priority p) {
  return 1u << static_cast<unsigned>(p);
}

/// Per-lane service shares for the deficit-weighted round-robin queue.
/// Semantics of one weight:
///   * +infinity — strict tier: always served first (priority order
///     among infinite lanes),
///   * finite > 0 — weighted tier: deficit round-robin, long-run service
///     proportional to the weight while backlogged,
///   * 0 — idle tier: served only when every other tier is empty.
using LaneWeights = std::array<double, kPriorityClassCount>;

/// The {inf, 1, 0} configuration that reproduces the legacy strict
/// priority policy exactly: interactive preempts, batch is the only
/// weighted lane (so it always wins the weighted tier), best-effort runs
/// only when both are empty. This is the default, so existing callers
/// see unchanged scheduling.
inline LaneWeights strict_lane_weights() {
  return {std::numeric_limits<double>::infinity(), 1.0, 0.0};
}

/// Stable lowercase name ("interactive" / "batch" / "best_effort") used
/// in metrics JSON and log lines.
const char* priority_name(Priority p);

/// Clock every scheduler timestamp lives on — an alias of the process
/// trace clock (common/trace_clock.hpp), so scheduler deadlines, metric
/// latencies and trace spans all share one steady base and one epoch.
using ServeClock = TraceClock;

/// Per-submit scheduling hints.
struct SubmitOptions {
  Priority priority = Priority::kBatch;
  /// Relative deadline from the moment of submission. Zero means no
  /// deadline; a non-positive (already elapsed) deadline is rejected at
  /// admission. Expired queued requests fail fast with
  /// DeadlineExpiredError instead of occupying a worker.
  std::chrono::nanoseconds deadline{0};
};

/// Request refused at admission (queue depth cap or infeasible deadline).
class AdmissionError : public std::runtime_error {
 public:
  explicit AdmissionError(const std::string& what)
      : std::runtime_error("admission: " + what) {}
};

/// Refused because the lane sits at its depth cap — transient overload,
/// safe to retry once the queue drains. Network front-ends map this to
/// HTTP 429 Too Many Requests.
class QueueDepthError : public AdmissionError {
 public:
  explicit QueueDepthError(const std::string& what) : AdmissionError(what) {}
};

/// Refused because the requested deadline is tighter than the rolling
/// service estimate — the scheduler cannot meet it no matter how empty
/// the queue is. Network front-ends map this to HTTP 503 with a
/// Retry-After hint.
class InfeasibleDeadlineError : public AdmissionError {
 public:
  explicit InfeasibleDeadlineError(const std::string& what)
      : AdmissionError(what) {}
};

/// Refused because the scheduler is in degraded mode: healthy capacity
/// fell below the lane's shed threshold (see ResilienceOptions), so
/// sheddable lanes are turned away until capacity recovers. Transient —
/// network front-ends map this to HTTP 503 with a Retry-After hint.
/// Interactive traffic is never shed.
class ShedError : public AdmissionError {
 public:
  explicit ShedError(const std::string& what) : AdmissionError(what) {}
};

/// An accepted request died because its worker was declared hung by the
/// watchdog (or abandoned mid-execution at shutdown). The request itself
/// was fine — retrying on a healthy worker is expected to succeed, so
/// front-ends map this to a retriable HTTP 503.
class WorkerHungError : public std::runtime_error {
 public:
  explicit WorkerHungError(const std::string& what)
      : std::runtime_error("worker hung: " + what) {}
};

/// Request canceled because its deadline passed before (or at) admission
/// or while it was still queued.
class DeadlineExpiredError : public std::runtime_error {
 public:
  explicit DeadlineExpiredError(const std::string& what)
      : std::runtime_error("deadline expired: " + what) {}
};

/// Internal queue entry. Owned by RequestQueue / Scheduler; callers only
/// ever see the future side of `promise`.
struct ServeRequest {
  Tensor input;
  std::promise<Tensor> promise;
  /// Admission-order id; also the per-request noise-stream offset that
  /// backs the max_microbatch = 1 determinism contract.
  std::uint64_t id = 0;
  Priority priority = Priority::kBatch;
  ServeClock::time_point submit_time{};
  /// Absolute expiry; time_point::max() = no deadline.
  ServeClock::time_point deadline = ServeClock::time_point::max();

  [[nodiscard]] bool has_deadline() const {
    return deadline != ServeClock::time_point::max();
  }
  [[nodiscard]] bool expired(ServeClock::time_point now) const {
    return has_deadline() && deadline <= now;
  }
};

}  // namespace yoloc
