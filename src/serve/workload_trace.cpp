#include "serve/workload_trace.hpp"

#include <chrono>
#include <cstring>
#include <fstream>
#include <future>
#include <map>
#include <thread>
#include <utility>

#include "common/binio.hpp"
#include "common/check.hpp"
#include "common/crc32.hpp"
#include "common/rng.hpp"
#include "serve/scheduler.hpp"

namespace yoloc {

namespace {

constexpr char kTraceMagic[8] = {'Y', 'O', 'L', 'O', 'C', 'T', 'R', 'C'};

void write_counters(
    ByteWriter& out,
    const std::array<std::uint64_t, kPriorityClassCount>& counters) {
  for (const std::uint64_t v : counters) out.u64(v);
}

std::array<std::uint64_t, kPriorityClassCount> read_counters(ByteReader& in) {
  std::array<std::uint64_t, kPriorityClassCount> counters{};
  for (auto& v : counters) v = in.u64();
  return counters;
}

}  // namespace

std::vector<std::uint8_t> WorkloadTrace::serialize() const {
  ByteWriter payload;
  payload.i32(workers);
  payload.i32(max_microbatch);
  write_counters(payload, submitted);
  write_counters(payload, served);
  write_counters(payload, expired);
  write_counters(payload, rejected);
  payload.u64(records.size());
  for (const AdmissionRecord& r : records) {
    payload.u64(r.offset_ns);
    payload.u8(static_cast<std::uint8_t>(r.priority));
    payload.u64(r.deadline_ns);
    for (const std::int32_t extent : r.shape) payload.i32(extent);
  }

  ByteWriter out;
  out.bytes(kTraceMagic, sizeof(kTraceMagic));
  out.u32(kWorkloadTraceFormatVersion);
  out.u32(crc32(payload.buffer().data(), payload.size()));
  out.bytes(payload.buffer().data(), payload.size());
  return out.take();
}

WorkloadTrace WorkloadTrace::deserialize(const std::uint8_t* data,
                                         std::size_t size) {
  YOLOC_CHECK(data != nullptr && size >= sizeof(kTraceMagic) + 8,
              "workload trace: truncated header");
  YOLOC_CHECK(std::memcmp(data, kTraceMagic, sizeof(kTraceMagic)) == 0,
              "workload trace: bad magic (not a .yoloctrace artifact)");
  ByteReader header(data, size);
  std::uint8_t magic_skip[sizeof(kTraceMagic)];
  header.bytes(magic_skip, sizeof(kTraceMagic));
  const std::uint32_t version = header.u32();
  YOLOC_CHECK(version == kWorkloadTraceFormatVersion,
              "workload trace: unsupported format version");
  const std::uint32_t crc = header.u32();
  const std::size_t payload_offset = header.offset();
  const std::size_t payload_size = size - payload_offset;
  YOLOC_CHECK(crc32(data + payload_offset, payload_size) == crc,
              "workload trace: CRC mismatch (corrupt artifact)");

  ByteReader in(data + payload_offset, payload_size);
  WorkloadTrace trace;
  trace.workers = in.i32();
  trace.max_microbatch = in.i32();
  trace.submitted = read_counters(in);
  trace.served = read_counters(in);
  trace.expired = read_counters(in);
  trace.rejected = read_counters(in);
  const std::uint64_t count = in.u64();
  // Each record is at least 33 bytes; a count the payload cannot hold
  // means a corrupt length field, not a huge allocation.
  YOLOC_CHECK(count <= in.remaining() / 33,
              "workload trace: record count exceeds payload");
  trace.records.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    AdmissionRecord r;
    r.offset_ns = in.u64();
    const std::uint8_t cls = in.u8();
    YOLOC_CHECK(cls < kPriorityClassCount,
                "workload trace: bad priority class");
    r.priority = static_cast<Priority>(cls);
    r.deadline_ns = in.u64();
    for (std::int32_t& extent : r.shape) extent = in.i32();
    YOLOC_CHECK(r.shape[0] >= 1 && r.shape[1] >= 1 && r.shape[2] >= 1 &&
                    r.shape[3] >= 1,
                "workload trace: bad input geometry");
    trace.records.push_back(r);
  }
  in.expect_exhausted("workload trace");
  return trace;
}

void save_workload_trace(const WorkloadTrace& trace,
                         const std::string& path) {
  const std::vector<std::uint8_t> bytes = trace.serialize();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  YOLOC_CHECK(out.good(), "save_workload_trace: cannot open '" + path + "'");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.flush();
  YOLOC_CHECK(out.good(),
              "save_workload_trace: write failed for '" + path + "'");
}

WorkloadTrace load_workload_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  YOLOC_CHECK(in.good(), "load_workload_trace: cannot open '" + path + "'");
  const std::streamsize size = in.tellg();
  YOLOC_CHECK(size > 0, "load_workload_trace: empty artifact '" + path + "'");
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  YOLOC_CHECK(in.gcount() == size,
              "load_workload_trace: short read on '" + path + "'");
  return WorkloadTrace::deserialize(bytes.data(), bytes.size());
}

ReplayResult replay_trace(const WorkloadTrace& trace,
                          const DeploymentPlan& plan,
                          const SchedulerOptions& scheduler_options,
                          const ReplayOptions& options) {
  YOLOC_CHECK(options.speed > 0.0, "replay: speed must be > 0");

  if (trace.records.empty()) {
    // Zero-admission trace: nothing to re-submit, so skip the scheduler
    // entirely. counts_match reduces to "the recorded outcome counters
    // are themselves all zero" — a recorded counter with no matching
    // record can never be reproduced and must fail the check.
    ReplayResult result;
    result.counts_match = trace.served == result.served &&
                          trace.expired == result.expired &&
                          trace.rejected == result.rejected;
    if (options.record) {
      result.replayed.workers = scheduler_options.workers;
      result.replayed.max_microbatch = scheduler_options.max_microbatch;
    }
    return result;
  }

  SchedulerOptions sched = scheduler_options;
  sched.record_admissions = options.record;
  Scheduler scheduler(plan, sched);

  // The trace records geometry, not pixels: synthesize each distinct
  // shape once from a fixed seed so every replay (and every host) feeds
  // the scheduler bit-identical inputs.
  std::map<std::array<std::int32_t, 4>, Tensor> inputs;
  Rng rng(options.input_seed);
  const auto input_for = [&](const AdmissionRecord& r) -> const Tensor& {
    auto it = inputs.find(r.shape);
    if (it == inputs.end()) {
      const std::vector<int> shape(r.shape.begin(), r.shape.end());
      it = inputs.emplace(r.shape, Tensor::rand_uniform(shape, rng, 0.0f, 1.0f))
               .first;
    }
    return it->second;
  };

  const auto start = ServeClock::now();
  std::vector<std::future<Tensor>> futures;
  futures.reserve(trace.records.size());
  for (const AdmissionRecord& r : trace.records) {
    if (options.pace) {
      std::this_thread::sleep_until(
          start + std::chrono::nanoseconds(static_cast<std::int64_t>(
                      static_cast<double>(r.offset_ns) / options.speed)));
    }
    SubmitOptions so;
    so.priority = r.priority;
    so.deadline =
        std::chrono::nanoseconds(static_cast<std::int64_t>(r.deadline_ns));
    futures.push_back(scheduler.submit(input_for(r), so));
  }
  scheduler.wait_idle();

  ReplayResult result;
  // Drain every future (errors are already accounted in the metrics —
  // expired/rejected futures carry exceptions by design).
  for (auto& f : futures) {
    try {
      (void)f.get();
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
  }
  result.seconds =
      std::chrono::duration<double>(ServeClock::now() - start).count();
  result.snapshot = scheduler.metrics_snapshot();
  for (int c = 0; c < kPriorityClassCount; ++c) {
    const auto i = static_cast<std::size_t>(c);
    // Outcome classification mirrors recorded_trace(): both sides read
    // the scheduler's own metrics, so "expired at submit" lands in the
    // same bucket (rejected) in both traces.
    result.served[i] = result.snapshot.classes[i].served_requests;
    result.expired[i] = result.snapshot.classes[i].expired_requests;
    result.rejected[i] = result.snapshot.classes[i].rejected_requests;
  }
  result.counts_match = result.served == trace.served &&
                        result.expired == trace.expired &&
                        result.rejected == trace.rejected;
  if (options.record) result.replayed = scheduler.recorded_trace();
  if (scheduler.trace().enabled()) result.trace_json = scheduler.trace_json();
  return result;
}

}  // namespace yoloc
