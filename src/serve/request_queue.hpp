#pragma once
// Priority request queue with admission control and deadline harvesting.
//
// Three FIFO lanes, one per Priority class. Scheduling policy:
//   * strict priority across lanes — a batch always forms from the
//     highest non-empty class (interactive starves best-effort, by
//     design; admission caps bound the damage),
//   * FIFO within a lane — at max_microbatch = 1 this is what keeps the
//     scheduler's execution order equal to admission order for uniform
//     traffic, preserving the bit-identical determinism contract,
//   * greedy compatible batching — pop_batch() pulls further requests
//     from the SAME lane with the SAME image geometry (C/H/W) into the
//     forming batch, skipping over incompatible ones, up to the caller's
//     cap and a deadline-aware growth window.
//
// NOT internally synchronized: queue state and scheduling decisions must
// change atomically together, so the Scheduler guards the queue with its
// own mutex. (Kept separate so the policy is unit-testable without
// threads — see tests/test_serve.cpp.)

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "serve/request.hpp"

namespace yoloc {

class RequestQueue {
 public:
  /// Why admit() refused a request (kAccept means it did not).
  enum class Admission {
    kAccept,
    kQueueFull,       ///< class lane at its depth cap
    kAlreadyExpired,  ///< deadline not in the future at submit time
    kInfeasible,      ///< deadline closer than the estimated service time
  };

  /// Admission decision for a request of class `p` with absolute
  /// `deadline` carrying `images` images. `max_depth` caps the lane
  /// (0 = unlimited); `est_image_ns` is the scheduler's rolling
  /// per-image service estimate (0 = no data yet, feasibility not
  /// checked). Pure — does not mutate the queue.
  [[nodiscard]] Admission admit(Priority p, ServeClock::time_point now,
                                ServeClock::time_point deadline, int images,
                                std::uint64_t max_depth,
                                std::uint64_t est_image_ns) const;

  void push(ServeRequest req);

  [[nodiscard]] bool empty() const;
  [[nodiscard]] std::uint64_t depth(Priority p) const;
  [[nodiscard]] std::array<std::uint64_t, kPriorityClassCount> depths() const;

  /// Remove and return every queued request whose deadline has passed.
  /// The scheduler calls this at every scheduling point (batch
  /// formation, each submission); a worker never sleeps on a non-empty
  /// queue, so queued deadlines cannot sit unobserved while a worker is
  /// idle. O(1) when nothing queued carries a deadline — the common
  /// deadline-less-traffic case pays no scan under the scheduler lock.
  std::vector<ServeRequest> take_expired(ServeClock::time_point now);

  /// Form one batch: head of the highest non-empty lane, then greedy
  /// same-lane same-geometry pulls. A candidate is skipped when adding
  /// it would push the estimated batch execution time
  /// (total_images * est_image_ns) past the tightest remaining slack of
  /// any member — a deadline-aware window (est_image_ns = 0 disables
  /// it; later, smaller candidates may still fit). Expired requests
  /// must be harvested with take_expired() first; this method assumes
  /// every queued request is still live. Returns an empty vector when
  /// the queue is empty.
  std::vector<ServeRequest> pop_batch(int max_batch,
                                      ServeClock::time_point now,
                                      std::uint64_t est_image_ns);

 private:
  std::array<std::deque<ServeRequest>, kPriorityClassCount> lanes_;
  /// Queued requests carrying a deadline; gates the take_expired() scan.
  std::size_t deadline_count_ = 0;
};

}  // namespace yoloc
