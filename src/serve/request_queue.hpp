#pragma once
// Priority request queue with admission control, deadline harvesting,
// and a deficit-weighted round-robin (DWRR) lane scheduler.
//
// Three FIFO lanes, one per Priority class. Lane selection is driven by
// per-lane weights (see LaneWeights in request.hpp):
//   * strict tier (weight = +inf) — always served first, priority order,
//   * weighted tier (finite weight > 0) — deficit round-robin: each lane
//     carries a deficit counter in image units; visiting the cursor lane
//     grants it `weight` images of credit once per visit, a lane is
//     served while its credit covers the head request, and served images
//     are charged back. While every weighted lane is backlogged, lane i
//     receives a w_i / sum(w) share of service and the gap between two
//     services of lane i is bounded by ceil(cost_i / w_i) full rotations
//     — no lane starves,
//   * idle tier (weight = 0) — served only when both tiers above are
//     empty.
// The default weights are strict_lane_weights() = {inf, 1, 0}, which
// reproduces the legacy strict-priority policy exactly.
//
// Within a lane requests are FIFO — at max_microbatch = 1 this is what
// keeps the scheduler's execution order equal to admission order for
// uniform traffic, preserving the bit-identical determinism contract.
// Batch formation is greedy compatible batching: pop_batch() pulls
// further requests from the SAME lane with the SAME image geometry
// (C/H/W) into the forming batch, skipping over incompatible ones, up to
// the lane's cap and a deadline-aware growth window.
//
// Lane masks: a pop restricted to a subset of lanes (a reserved worker)
// serves the highest-priority non-empty lane in its mask directly and
// does NOT touch the DWRR deficits — reservations are capacity
// carve-outs on top of the fair share, not part of it.
//
// NOT internally synchronized: queue state and scheduling decisions must
// change atomically together, so the Scheduler guards the queue with its
// own mutex. (Kept separate so the policy is unit-testable without
// threads — see tests/test_serve.cpp.)

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "serve/request.hpp"

namespace yoloc {

class RequestQueue {
 public:
  /// Why admit() refused a request (kAccept means it did not).
  enum class Admission {
    kAccept,
    kQueueFull,       ///< class lane at its depth cap
    kAlreadyExpired,  ///< deadline not in the future at submit time
    kInfeasible,      ///< deadline closer than the estimated service time
  };

  /// Admission decision for a request of class `p` with absolute
  /// `deadline` carrying `images` images. `max_depth` caps the lane
  /// (0 = unlimited); `est_image_ns` is the scheduler's rolling
  /// per-image service estimate (0 = no data yet, feasibility not
  /// checked). Pure — does not mutate the queue.
  [[nodiscard]] Admission admit(Priority p, ServeClock::time_point now,
                                ServeClock::time_point deadline, int images,
                                std::uint64_t max_depth,
                                std::uint64_t est_image_ns) const;

  /// Install the per-lane DWRR weights (validated: no NaN, no negative).
  /// Finite positive weights are normalized so the smallest equals 1,
  /// bounding the rotations one pop may need to accumulate credit.
  /// Resets the round-robin state; call before serving traffic.
  void set_weights(const LaneWeights& weights);
  [[nodiscard]] const LaneWeights& weights() const { return weights_; }

  void push(ServeRequest req);

  [[nodiscard]] bool empty() const;
  /// True when any lane selected by `mask` is non-empty.
  [[nodiscard]] bool has_work(LaneMask mask) const;
  [[nodiscard]] std::uint64_t depth(Priority p) const;
  [[nodiscard]] std::array<std::uint64_t, kPriorityClassCount> depths() const;

  /// Remove and return every queued request whose deadline has passed.
  /// The scheduler calls this at every scheduling point (batch
  /// formation, each submission); a worker never sleeps on a non-empty
  /// queue, so queued deadlines cannot sit unobserved while a worker is
  /// idle. O(1) when nothing queued carries a deadline — the common
  /// deadline-less-traffic case pays no scan under the scheduler lock.
  std::vector<ServeRequest> take_expired(ServeClock::time_point now);

  /// Drain every queued request (priority order, FIFO within a lane).
  /// Shutdown uses this to fail residual work that no surviving worker
  /// will ever pop (e.g. after abandoning hung workers).
  std::vector<ServeRequest> take_all();

  /// Form one batch: pick a lane per the DWRR policy above (restricted
  /// to `mask`), then greedily pull same-lane same-geometry requests up
  /// to `lane_max_batch[lane]` — the lane's effective micro-batch cap,
  /// which the scheduler derives per decision from the lane's SLO budget
  /// (SLO-aware auto-batching). A candidate is skipped when adding it
  /// would push the estimated batch execution time
  /// (total_images * est_image_ns) past the tightest remaining slack of
  /// any member — a deadline-aware window (est_image_ns = 0 disables
  /// it; later, smaller candidates may still fit). Expired requests
  /// must be harvested with take_expired() first; this method assumes
  /// every queued request is still live. Returns an empty vector when
  /// no lane in `mask` has work.
  std::vector<ServeRequest> pop_batch(
      const std::array<int, kPriorityClassCount>& lane_max_batch,
      ServeClock::time_point now, std::uint64_t est_image_ns,
      LaneMask mask = kAllLanes);

  /// Legacy single-cap convenience: every lane capped at `max_batch`,
  /// all lanes eligible.
  std::vector<ServeRequest> pop_batch(int max_batch,
                                      ServeClock::time_point now,
                                      std::uint64_t est_image_ns);

 private:
  /// DWRR lane selection among the lanes in `mask`; -1 when no eligible
  /// lane has work. Mutates deficits / cursor only on the weighted tier.
  int pick_lane(LaneMask mask);
  /// Greedy same-geometry batch formation from one lane. Returns total
  /// images taken via `images_taken`.
  std::vector<ServeRequest> form_batch(int lane, int max_batch,
                                       ServeClock::time_point now,
                                       std::uint64_t est_image_ns,
                                       std::uint64_t* images_taken);
  void advance_cursor();

  std::array<std::deque<ServeRequest>, kPriorityClassCount> lanes_;
  /// Queued requests carrying a deadline; gates the take_expired() scan.
  std::size_t deadline_count_ = 0;

  LaneWeights weights_ = strict_lane_weights();
  /// Normalized finite weights (smallest positive = 1); 0 for strict /
  /// idle lanes.
  std::array<double, kPriorityClassCount> quantum_{0.0, 1.0, 0.0};
  /// Image-unit service credit per weighted lane. May go transiently
  /// negative when a formed batch overshoots the credit (the lane then
  /// waits proportionally longer) — bounded by one batch's images.
  std::array<double, kPriorityClassCount> deficit_{};
  int cursor_ = 0;
  /// Whether the cursor lane already received its quantum this visit.
  bool visit_credited_ = false;
};

}  // namespace yoloc
