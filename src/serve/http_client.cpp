#include "serve/http_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace yoloc {

namespace {

std::string lowercase(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

}  // namespace

HttpClient::HttpClient(std::string host, int port,
                       std::chrono::milliseconds timeout)
    : host_(std::move(host)), port_(port), timeout_(timeout) {}

HttpClient::~HttpClient() { close(); }

void HttpClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

void HttpClient::connect_socket() {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw std::runtime_error("http client: socket() failed");

  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_.count() % 1000) * 1000);
  (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  const int one = 1;
  (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port_));
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    close();
    throw std::runtime_error("http client: bad address '" + host_ + "'");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    close();
    throw std::runtime_error("http client: cannot connect to " + host_ + ":" +
                             std::to_string(port_) + " (" +
                             std::strerror(err) + ")");
  }
}

HttpResponse HttpClient::request(
    const std::string& method, const std::string& target,
    const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  std::string wire;
  wire.reserve(256 + body.size());
  wire += method;
  wire += ' ';
  wire += target;
  wire += " HTTP/1.1\r\nHost: ";
  wire += host_;
  wire += ':';
  wire += std::to_string(port_);
  wire += "\r\nConnection: keep-alive\r\n";
  for (const auto& [k, v] : headers) {
    wire += k;
    wire += ": ";
    wire += v;
    wire += "\r\n";
  }
  if (!body.empty() || method == "POST" || method == "PUT") {
    wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  wire += "\r\n";
  wire += body;

  const bool reused = fd_ >= 0;
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (fd_ < 0) connect_socket();
    bool sent = true;
    std::size_t written = 0;
    while (written < wire.size()) {
      const ssize_t n = ::send(fd_, wire.data() + written,
                               wire.size() - written, MSG_NOSIGNAL);
      if (n <= 0) {
        sent = false;
        break;
      }
      written += static_cast<std::size_t>(n);
    }
    if (sent) {
      try {
        return read_response();
      } catch (const std::runtime_error&) {
        // A reused keep-alive socket the server already closed: replay
        // exactly once on a fresh connection. A fresh-connection failure
        // is real.
        if (!reused || attempt > 0) throw;
      }
    } else if (!reused || attempt > 0) {
      throw std::runtime_error("http client: send failed");
    }
    close();
  }
  throw std::runtime_error("http client: request failed");  // unreachable
}

HttpResponse HttpClient::read_response() {
  auto read_more = [&] {
    char chunk[16384];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      throw std::runtime_error(
          n == 0 ? "http client: connection closed mid-response"
                 : "http client: recv failed or timed out");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  };

  for (;;) {  // loop to skip interim 1xx responses
    std::size_t header_end;
    while ((header_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
      read_more();
    }
    const std::string head = buffer_.substr(0, header_end);
    buffer_.erase(0, header_end + 4);

    HttpResponse resp;
    const std::size_t line_end = head.find("\r\n");
    const std::string status_line =
        line_end == std::string::npos ? head : head.substr(0, line_end);
    if (status_line.rfind("HTTP/1.", 0) != 0 || status_line.size() < 12) {
      throw std::runtime_error("http client: malformed status line: " +
                               status_line);
    }
    resp.status = std::atoi(status_line.c_str() + 9);

    std::size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
    while (pos < head.size()) {
      std::size_t eol = head.find("\r\n", pos);
      if (eol == std::string::npos) eol = head.size();
      const std::string line = head.substr(pos, eol - pos);
      pos = eol + 2;
      const std::size_t colon = line.find(':');
      if (colon == std::string::npos) continue;
      std::string value = line.substr(colon + 1);
      const std::size_t first = value.find_first_not_of(" \t");
      const std::size_t last = value.find_last_not_of(" \t");
      value = first == std::string::npos
                  ? std::string{}
                  : value.substr(first, last - first + 1);
      resp.headers[lowercase(line.substr(0, colon))] = std::move(value);
    }

    if (resp.status == 100) continue;  // interim; real response follows

    std::size_t content_length = 0;
    const auto cl = resp.headers.find("content-length");
    if (cl != resp.headers.end()) {
      content_length = static_cast<std::size_t>(
          std::strtoull(cl->second.c_str(), nullptr, 10));
    }
    while (buffer_.size() < content_length) read_more();
    resp.body = buffer_.substr(0, content_length);
    buffer_.erase(0, content_length);

    const auto conn = resp.headers.find("connection");
    if (conn != resp.headers.end() && lowercase(conn->second) == "close") {
      close();
    }
    return resp;
  }
}

}  // namespace yoloc
