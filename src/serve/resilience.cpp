#include "serve/resilience.hpp"

#include "common/check.hpp"

namespace yoloc {

void ResilienceOptions::validate() const {
  YOLOC_CHECK(canary_period.count() >= 0,
              "resilience: canary_period must be >= 0");
  YOLOC_CHECK(breaker_fail_threshold >= 1,
              "resilience: breaker_fail_threshold must be >= 1");
  YOLOC_CHECK(breaker_recover_threshold >= 1,
              "resilience: breaker_recover_threshold must be >= 1");
  YOLOC_CHECK(watchdog_timeout.count() >= 0,
              "resilience: watchdog_timeout must be >= 0");
  for (const double f : {shed_best_effort_below, shed_batch_below}) {
    YOLOC_CHECK(f >= 0.0 && f <= 1.0,
                "resilience: shed threshold out of [0, 1]");
  }
  YOLOC_CHECK(shed_batch_below <= shed_best_effort_below ||
                  shed_best_effort_below == 0.0,
              "resilience: batch sheds only after best-effort "
              "(shed_batch_below <= shed_best_effort_below)");
}

ResilienceManager::ResilienceManager(int workers, ResilienceOptions options)
    : workers_(workers),
      options_(options),
      states_(static_cast<std::size_t>(workers)),
      healthy_(new std::atomic<bool>[static_cast<std::size_t>(workers)]),
      healthy_count_(workers) {
  YOLOC_CHECK(workers >= 1, "resilience: workers must be >= 1");
  options_.validate();
  for (int w = 0; w < workers; ++w) {
    healthy_[static_cast<std::size_t>(w)].store(true,
                                                std::memory_order_relaxed);
  }
}

void ResilienceManager::update_healthy_locked(int w) {
  const WorkerState& s = states_[static_cast<std::size_t>(w)];
  const bool healthy = !s.breaker_open && !s.quarantined;
  if (healthy_[static_cast<std::size_t>(w)].exchange(
          healthy, std::memory_order_relaxed) != healthy) {
    healthy_count_.fetch_add(healthy ? 1 : -1, std::memory_order_relaxed);
  }
}

void ResilienceManager::record_canary(int w, bool pass) {
  std::lock_guard lock(mutex_);
  WorkerState& s = states_[static_cast<std::size_t>(w)];
  if (pass) {
    ++canary_pass_;
    s.consecutive_fails = 0;
    if (s.breaker_open &&
        ++s.consecutive_passes >= options_.breaker_recover_threshold) {
      s.breaker_open = false;
      s.consecutive_passes = 0;
      ++breaker_recoveries_;
      update_healthy_locked(w);
    }
  } else {
    ++canary_fail_;
    s.consecutive_passes = 0;
    if (!s.breaker_open &&
        ++s.consecutive_fails >= options_.breaker_fail_threshold) {
      s.breaker_open = true;
      s.consecutive_fails = 0;
      ++breaker_trips_;
      update_healthy_locked(w);
    }
  }
}

void ResilienceManager::force_trip(int w) {
  std::lock_guard lock(mutex_);
  WorkerState& s = states_[static_cast<std::size_t>(w)];
  if (s.breaker_open) return;
  s.breaker_open = true;
  s.consecutive_fails = 0;
  s.consecutive_passes = 0;
  ++breaker_trips_;
  update_healthy_locked(w);
}

void ResilienceManager::record_watchdog_fire(int w) {
  std::lock_guard lock(mutex_);
  ++watchdog_fires_;
  WorkerState& s = states_[static_cast<std::size_t>(w)];
  if (s.quarantined) return;
  s.quarantined = true;
  update_healthy_locked(w);
}

void ResilienceManager::clear_quarantine(int w) {
  std::lock_guard lock(mutex_);
  WorkerState& s = states_[static_cast<std::size_t>(w)];
  if (!s.quarantined) return;
  s.quarantined = false;
  update_healthy_locked(w);
}

void ResilienceManager::record_shed(Priority p) {
  std::lock_guard lock(mutex_);
  ++shed_[static_cast<std::size_t>(p)];
}

ResilienceSnapshot ResilienceManager::snapshot() const {
  std::lock_guard lock(mutex_);
  ResilienceSnapshot s;
  s.workers = workers_;
  int open = 0;
  int quarantined = 0;
  for (const WorkerState& w : states_) {
    if (w.breaker_open) ++open;
    if (w.quarantined) ++quarantined;
    if (!w.breaker_open && !w.quarantined) ++s.healthy_workers;
  }
  s.breaker_open_workers = open;
  s.quarantined_workers = quarantined;
  s.canary_pass = canary_pass_;
  s.canary_fail = canary_fail_;
  s.watchdog_fires = watchdog_fires_;
  s.breaker_trips = breaker_trips_;
  s.breaker_recoveries = breaker_recoveries_;
  s.shed_requests = shed_;
  s.degraded = s.healthy_workers < workers_;
  if (s.degraded) {
    s.degraded_reason = std::to_string(workers_ - s.healthy_workers) + "/" +
                        std::to_string(workers_) + " workers unhealthy (" +
                        std::to_string(open) + " breaker open, " +
                        std::to_string(quarantined) + " quarantined)";
  }
  return s;
}

}  // namespace yoloc
