#pragma once
// Serving resilience state: per-worker canary circuit breakers, watchdog
// quarantine, and load-shed accounting.
//
// A deployed CiM part can go bad in the field — stuck-at cells, ADC
// drift, a wedged controller (see macro/fault_model.hpp for the hardware
// side). The serving layer's defense is detection + containment:
//   * canary probes (fixed inputs with golden logits recorded at plan
//     build time) replay periodically on every worker; consecutive
//     mismatches trip that worker's circuit breaker, consecutive passes
//     on a tripped worker close it again (half-open probing: a tripped
//     worker keeps running canaries but takes no traffic),
//   * the watchdog declares a worker hung when a batch overstays
//     watchdog_timeout, fails its requests with WorkerHungError and
//     quarantines the worker until it comes back,
//   * when healthy capacity drops below configured thresholds the
//     scheduler sheds best-effort (then batch) admissions with
//     ShedError — interactive traffic is never shed.
//
// ResilienceManager is the bookkeeping core shared by the scheduler's
// worker/canary/watchdog threads: one mutex guards the detailed state;
// the per-worker healthy flags and the healthy count are mirrored into
// atomics so the scheduling hot path (pop eligibility, admission
// shedding) never takes the manager lock.

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/request.hpp"

namespace yoloc {

struct ResilienceOptions {
  /// Canary replay period per worker. Zero (default) disables canaries
  /// (also disabled when the plan carries no canary suite).
  std::chrono::milliseconds canary_period{0};
  /// Consecutive canary failures that trip a worker's breaker.
  int breaker_fail_threshold = 2;
  /// Consecutive canary passes that close a tripped breaker.
  int breaker_recover_threshold = 2;
  /// A batch in flight longer than this declares its worker hung. Zero
  /// (default) disables the watchdog.
  std::chrono::milliseconds watchdog_timeout{0};
  /// Shed best-effort admissions when the healthy-worker fraction drops
  /// below this. Zero (default) never sheds.
  double shed_best_effort_below = 0.0;
  /// Shed batch admissions too below this (interactive is never shed).
  double shed_batch_below = 0.0;

  void validate() const;
};

/// Point-in-time view of the resilience state (exported via
/// MetricsSnapshot / GET /metrics / GET /healthz).
struct ResilienceSnapshot {
  int workers = 0;
  int healthy_workers = 0;
  int breaker_open_workers = 0;
  int quarantined_workers = 0;
  std::uint64_t canary_pass = 0;
  std::uint64_t canary_fail = 0;
  std::uint64_t watchdog_fires = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t breaker_recoveries = 0;
  std::array<std::uint64_t, kPriorityClassCount> shed_requests{};
  /// True when any worker is unhealthy (breaker open or quarantined).
  bool degraded = false;
  /// Human-readable cause when degraded ("2/4 workers unhealthy: ...").
  std::string degraded_reason;
};

class ResilienceManager {
 public:
  ResilienceManager(int workers, ResilienceOptions options);

  ResilienceManager(const ResilienceManager&) = delete;
  ResilienceManager& operator=(const ResilienceManager&) = delete;

  [[nodiscard]] const ResilienceOptions& options() const { return options_; }
  [[nodiscard]] int workers() const { return workers_; }

  /// Lock-free hot-path views (mirrored atomics; see header comment).
  [[nodiscard]] bool worker_healthy(int w) const {
    return healthy_[static_cast<std::size_t>(w)].load(
        std::memory_order_relaxed);
  }
  [[nodiscard]] int healthy_workers() const {
    return healthy_count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double healthy_fraction() const {
    return workers_ > 0
               ? static_cast<double>(healthy_workers()) / workers_
               : 1.0;
  }

  /// Record one canary verdict for worker `w`; trips/recovers the
  /// breaker at the configured consecutive-count thresholds.
  void record_canary(int w, bool pass);

  /// Trip worker `w`'s breaker unconditionally (operator action / bench
  /// scenarios). Recovery still requires breaker_recover_threshold
  /// consecutive canary passes.
  void force_trip(int w);

  /// The watchdog declared worker `w` hung: quarantine it and count the
  /// fire.
  void record_watchdog_fire(int w);
  /// Worker `w` came back from a presumed hang ("respawn").
  void clear_quarantine(int w);

  /// An admission was shed for lane `p`.
  void record_shed(Priority p);

  [[nodiscard]] ResilienceSnapshot snapshot() const;

 private:
  struct WorkerState {
    bool breaker_open = false;
    bool quarantined = false;
    int consecutive_fails = 0;
    int consecutive_passes = 0;
  };

  /// Recompute worker `w`'s mirrored healthy flag; caller holds mutex_.
  void update_healthy_locked(int w);

  const int workers_;
  const ResilienceOptions options_;

  mutable std::mutex mutex_;
  std::vector<WorkerState> states_;
  std::uint64_t canary_pass_ = 0;
  std::uint64_t canary_fail_ = 0;
  std::uint64_t watchdog_fires_ = 0;
  std::uint64_t breaker_trips_ = 0;
  std::uint64_t breaker_recoveries_ = 0;
  std::array<std::uint64_t, kPriorityClassCount> shed_{};

  std::unique_ptr<std::atomic<bool>[]> healthy_;
  std::atomic<int> healthy_count_;
};

}  // namespace yoloc
