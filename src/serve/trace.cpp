#include "serve/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "common/check.hpp"

namespace yoloc {

namespace {

/// SplitMix64 finalizer: a high-quality 64-bit mix with no state, so the
/// sampling decision for an id is a pure function (deterministic across
/// runs, replicas and replays).
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

TraceCollector::TraceCollector(int workers, double sampling,
                               std::size_t capacity_per_worker)
    : sampling_(std::clamp(sampling, 0.0, 1.0)) {
  YOLOC_CHECK(workers >= 1, "trace collector: at least one worker buffer");
  YOLOC_CHECK(capacity_per_worker >= 1,
              "trace collector: capacity must be >= 1");
  rings_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    auto ring = std::make_unique<WorkerRing>();
    // Pre-size once: emit() only overwrites slots, so a drain can safely
    // read the published prefix while a writer fills later slots.
    if (enabled()) ring->events.resize(capacity_per_worker);
    rings_.push_back(std::move(ring));
  }
}

bool TraceCollector::sampled(std::uint64_t request_id) const {
  if (sampling_ <= 0.0) return false;
  if (sampling_ >= 1.0) return true;
  // Top 53 bits of the mix as a uniform double in [0, 1).
  const double u =
      static_cast<double>(mix64(request_id) >> 11) * 0x1.0p-53;
  return u < sampling_;
}

void TraceCollector::emit(int worker, const TraceEvent& event) {
  if (!enabled()) return;
  YOLOC_CHECK(worker >= 0 && worker < worker_buffers(),
              "trace collector: bad worker index");
  WorkerRing& ring = *rings_[static_cast<std::size_t>(worker)];
  const std::size_t n = ring.count.load(std::memory_order_relaxed);
  if (n >= ring.events.size()) {
    ring.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ring.events[n] = event;
  // Publish: a drain that acquires `count` sees the fully written slot.
  ring.count.store(n + 1, std::memory_order_release);
}

std::vector<TraceEvent> TraceCollector::drain_events() const {
  std::vector<TraceEvent> merged;
  for (const auto& ring : rings_) {
    const std::size_t n = ring->count.load(std::memory_order_acquire);
    merged.insert(merged.end(), ring->events.begin(),
                  ring->events.begin() + static_cast<std::ptrdiff_t>(n));
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_ns < b.start_ns;
                   });
  return merged;
}

std::uint64_t TraceCollector::dropped_events() const {
  std::uint64_t total = 0;
  for (const auto& ring : rings_) {
    total += ring->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

namespace {

void append_json_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::string TraceCollector::to_chrome_json() const {
  const std::vector<TraceEvent> events = drain_events();
  std::string out;
  out.reserve(256 + events.size() * 160);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  // Metadata: name the process and each worker thread so Perfetto's
  // track labels read "worker N" instead of bare tids.
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"yoloc-serve\"}}";
  for (int w = 0; w < worker_buffers(); ++w) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%d,\"args\":{\"name\":\"worker %d\"}}",
                  w, w);
    out += buf;
  }
  char buf[256];
  for (const TraceEvent& ev : events) {
    out += ",{\"name\":\"";
    append_json_escaped(out, ev.name);
    // ts/dur are MICROseconds in the trace-event format; fractional
    // values keep the ns resolution.
    std::snprintf(buf, sizeof(buf),
                  "\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,"
                  "\"ts\":%.3f,\"dur\":%.3f,\"args\":{",
                  ev.layer != nullptr ? "layer" : "serve", ev.tid,
                  static_cast<double>(ev.start_ns) / 1e3,
                  static_cast<double>(ev.dur_ns) / 1e3);
    out += buf;
    bool first = true;
    const auto arg_u64 = [&](const char* key, std::uint64_t v) {
      std::snprintf(buf, sizeof(buf), "%s\"%s\":%llu", first ? "" : ",", key,
                    static_cast<unsigned long long>(v));
      out += buf;
      first = false;
    };
    if (ev.request_id != kTraceNoId) arg_u64("request_id", ev.request_id);
    if (ev.batch_id != kTraceNoId) arg_u64("batch_id", ev.batch_id);
    if (ev.requests > 0) {
      arg_u64("requests", static_cast<std::uint64_t>(ev.requests));
    }
    if (ev.images > 0) {
      arg_u64("images", static_cast<std::uint64_t>(ev.images));
    }
    if (ev.layer != nullptr) {
      out += first ? "\"layer\":\"" : ",\"layer\":\"";
      append_json_escaped(out, ev.layer);
      out += '"';
      first = false;
    }
    if (ev.engine != nullptr) {
      out += first ? "\"engine\":\"" : ",\"engine\":\"";
      append_json_escaped(out, ev.engine);
      out += '"';
      first = false;
    }
    out += "}}";
  }
  std::snprintf(buf, sizeof(buf), "],\"yolocDroppedEvents\":%llu}",
                static_cast<unsigned long long>(dropped_events()));
  out += buf;
  return out;
}

void TraceCollector::write_chrome_json(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) {
    throw std::runtime_error("trace: cannot open '" + path + "' for write");
  }
  const std::string json = to_chrome_json();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  out.flush();
  if (!out.good()) {
    throw std::runtime_error("trace: short write to '" + path + "'");
  }
}

void BatchTraceSink::layer_span(const char* phase, const char* layer,
                                EngineKind engine, std::uint64_t start_ns,
                                std::uint64_t end_ns) {
  TraceEvent ev;
  ev.name = phase;
  ev.layer = layer;
  switch (engine) {
    case EngineKind::kRom:
      ev.engine = "rom";
      break;
    case EngineKind::kSram:
      ev.engine = "sram";
      break;
    case EngineKind::kDefault:
      ev.engine = "default";
      break;
  }
  ev.request_id = request_id_;
  ev.batch_id = batch_id_;
  ev.start_ns = start_ns;
  ev.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  ev.tid = worker_;
  collector_->emit(worker_, ev);
}

}  // namespace yoloc
