#include "nn/container.hpp"

#include "common/check.hpp"
#include "nn/activations.hpp"
#include "tensor/ops.hpp"

namespace yoloc {

Sequential& Sequential::add(LayerPtr layer) {
  YOLOC_CHECK(layer != nullptr, "sequential: null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::forward(const Tensor& input, bool train) {
  Tensor x = input;
  for (auto& l : layers_) x = l->forward(x, train);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> ps;
  for (auto& l : layers_) {
    auto sub = l->parameters();
    ps.insert(ps.end(), sub.begin(), sub.end());
  }
  return ps;
}

std::vector<Layer*> Sequential::children() {
  std::vector<Layer*> cs;
  cs.reserve(layers_.size());
  for (auto& l : layers_) cs.push_back(l.get());
  return cs;
}

LayerPtr Sequential::replace_child(std::size_t i, LayerPtr l) {
  YOLOC_CHECK(i < layers_.size(), "sequential: replace index out of range");
  YOLOC_CHECK(l != nullptr, "sequential: null replacement");
  std::swap(layers_[i], l);
  return l;  // previous occupant
}

LayerPtr Sequential::remove(std::size_t i) {
  YOLOC_CHECK(i < layers_.size(), "sequential: remove index out of range");
  LayerPtr removed = std::move(layers_[i]);
  layers_.erase(layers_.begin() + static_cast<std::ptrdiff_t>(i));
  return removed;
}

ParallelSum& ParallelSum::add_branch(LayerPtr branch) {
  YOLOC_CHECK(branch != nullptr, "parallel_sum: null branch");
  branches_.push_back(std::move(branch));
  return *this;
}

Tensor ParallelSum::forward(const Tensor& input, bool train) {
  YOLOC_CHECK(!branches_.empty(), "parallel_sum: no branches");
  Tensor out = branches_[0]->forward(input, train);
  for (std::size_t i = 1; i < branches_.size(); ++i) {
    Tensor bi = branches_[i]->forward(input, train);
    YOLOC_CHECK(same_shape(out, bi),
                "parallel_sum: branch output shapes differ");
    add_inplace(out, bi);
  }
  return out;
}

Tensor ParallelSum::backward(const Tensor& grad_output) {
  Tensor g = branches_[0]->backward(grad_output);
  for (std::size_t i = 1; i < branches_.size(); ++i) {
    Tensor gi = branches_[i]->backward(grad_output);
    add_inplace(g, gi);
  }
  return g;
}

std::vector<Parameter*> ParallelSum::parameters() {
  std::vector<Parameter*> ps;
  for (auto& b : branches_) {
    auto sub = b->parameters();
    ps.insert(ps.end(), sub.begin(), sub.end());
  }
  return ps;
}

std::vector<Layer*> ParallelSum::children() {
  std::vector<Layer*> cs;
  cs.reserve(branches_.size());
  for (auto& b : branches_) cs.push_back(b.get());
  return cs;
}

LayerPtr ParallelSum::replace_child(std::size_t i, LayerPtr l) {
  YOLOC_CHECK(i < branches_.size(), "parallel_sum: replace index out of range");
  YOLOC_CHECK(l != nullptr, "parallel_sum: null replacement");
  std::swap(branches_[i], l);
  return l;
}

LayerPtr make_residual(LayerPtr inner, std::string name) {
  auto block = std::make_unique<ParallelSum>(std::move(name));
  block->add_branch(std::make_unique<Identity>());
  block->add_branch(std::move(inner));
  return block;
}

}  // namespace yoloc
