#pragma once
// Pointwise nonlinearities. The CiM datapath requires non-negative
// activations at quantized-layer inputs (wordline pulses encode unsigned
// amplitudes), so the networks use ReLU / LeakyReLU throughout, matching
// the paper's VGG / ResNet / DarkNet models.

#include "nn/layer.hpp"

namespace yoloc {

class ReLU final : public Layer {
 public:
  ReLU() = default;
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "relu"; }
  [[nodiscard]] LayerKind kind() const override { return LayerKind::kReLU; }

 private:
  Tensor mask_;  // 1 where input > 0
};

/// LeakyReLU with the DarkNet-standard negative slope (default 0.1).
class LeakyReLU final : public Layer {
 public:
  explicit LeakyReLU(float negative_slope = 0.1f);
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "leaky_relu"; }
  [[nodiscard]] LayerKind kind() const override {
    return LayerKind::kLeakyReLU;
  }
  [[nodiscard]] float negative_slope() const { return slope_; }

 private:
  float slope_;
  Tensor cached_input_;
};

/// Pass-through; used as the skip path of residual blocks.
class Identity final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "identity"; }
  [[nodiscard]] LayerKind kind() const override {
    return LayerKind::kIdentity;
  }
};

/// (N,C,H,W) -> (N, C*H*W).
class Flatten final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "flatten"; }
  [[nodiscard]] LayerKind kind() const override { return LayerKind::kFlatten; }

 private:
  std::vector<int> input_shape_;
};

}  // namespace yoloc
