#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "tensor/ops.hpp"

namespace yoloc {

float sigmoidf(float x) {
  if (x >= 0.0f) {
    const float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  const float z = std::exp(x);
  return z / (1.0f + z);
}

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int>& labels) {
  YOLOC_CHECK(logits.rank() == 2, "xent: rank-2 logits required");
  const int batch = logits.shape()[0];
  const int classes = logits.shape()[1];
  YOLOC_CHECK(static_cast<int>(labels.size()) == batch,
              "xent: label count mismatch");

  Tensor probs = softmax_rows(logits);
  LossResult res;
  res.grad = Tensor(logits.shape());
  double loss = 0.0;
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (int b = 0; b < batch; ++b) {
    const int y = labels[static_cast<std::size_t>(b)];
    YOLOC_CHECK(y >= 0 && y < classes, "xent: label out of range");
    const float p = std::max(probs.at2(b, y), 1e-12f);
    loss -= std::log(p);
    for (int c = 0; c < classes; ++c) {
      res.grad.at2(b, c) =
          (probs.at2(b, c) - (c == y ? 1.0f : 0.0f)) * inv_batch;
    }
  }
  res.value = loss / batch;
  return res;
}

LossResult grid_detection_loss(const Tensor& pred,
                               const std::vector<std::vector<GtBox>>& gt,
                               const GridLossConfig& cfg) {
  YOLOC_CHECK(pred.rank() == 4, "grid loss: NCHW prediction required");
  const int batch = pred.shape()[0];
  const int ch = pred.shape()[1];
  const int s = pred.shape()[2];
  YOLOC_CHECK(pred.shape()[3] == s && s == cfg.grid,
              "grid loss: prediction grid mismatch");
  YOLOC_CHECK(ch == 5 + cfg.classes, "grid loss: channel count mismatch");
  YOLOC_CHECK(static_cast<int>(gt.size()) == batch,
              "grid loss: gt batch mismatch");

  LossResult res;
  res.grad = Tensor(pred.shape());
  double loss = 0.0;
  const float inv_batch = 1.0f / static_cast<float>(batch);

  // Per-cell target assignment: the last box whose center falls in a cell
  // wins (synthetic scenes place at most one center per cell in practice).
  for (int b = 0; b < batch; ++b) {
    std::vector<int> cell_gt(static_cast<std::size_t>(s) * s, -1);
    const auto& boxes = gt[static_cast<std::size_t>(b)];
    for (std::size_t gi = 0; gi < boxes.size(); ++gi) {
      const auto& box = boxes[gi];
      const int cx = std::clamp(static_cast<int>(box.cx * s), 0, s - 1);
      const int cy = std::clamp(static_cast<int>(box.cy * s), 0, s - 1);
      cell_gt[static_cast<std::size_t>(cy) * s + cx] = static_cast<int>(gi);
    }

    for (int gy = 0; gy < s; ++gy) {
      for (int gx = 0; gx < s; ++gx) {
        const int assigned = cell_gt[static_cast<std::size_t>(gy) * s + gx];
        const float obj_logit = pred.at4(b, 4, gy, gx);
        const float obj = sigmoidf(obj_logit);
        if (assigned < 0) {
          // No-object cell: BCE towards 0, weighted by lambda_noobj.
          loss += -cfg.lambda_noobj * std::log(std::max(1.0f - obj, 1e-12f));
          res.grad.at4(b, 4, gy, gx) = cfg.lambda_noobj * obj * inv_batch;
          continue;
        }
        const GtBox& box = boxes[static_cast<std::size_t>(assigned)];
        // Objectness BCE towards 1.
        loss += -std::log(std::max(obj, 1e-12f));
        res.grad.at4(b, 4, gy, gx) = (obj - 1.0f) * inv_batch;

        // Box geometry: sigmoid-squashed predictions vs targets; targets
        // are cell-relative center and image-relative size.
        const float tx_target = box.cx * s - static_cast<float>(gx);
        const float ty_target = box.cy * s - static_cast<float>(gy);
        const float targets[4] = {tx_target, ty_target, box.w, box.h};
        for (int k = 0; k < 4; ++k) {
          const float logit = pred.at4(b, k, gy, gx);
          const float v = sigmoidf(logit);
          const float d = v - targets[k];
          loss += cfg.lambda_coord * d * d;
          // d/dlogit of (v - t)^2 = 2 (v - t) v (1 - v)
          res.grad.at4(b, k, gy, gx) =
              cfg.lambda_coord * 2.0f * d * v * (1.0f - v) * inv_batch;
        }

        // Class: softmax cross entropy over class channels.
        float mx = pred.at4(b, 5, gy, gx);
        for (int c = 1; c < cfg.classes; ++c) {
          mx = std::max(mx, pred.at4(b, 5 + c, gy, gx));
        }
        double denom = 0.0;
        for (int c = 0; c < cfg.classes; ++c) {
          denom += std::exp(pred.at4(b, 5 + c, gy, gx) - mx);
        }
        for (int c = 0; c < cfg.classes; ++c) {
          const float p = static_cast<float>(
              std::exp(pred.at4(b, 5 + c, gy, gx) - mx) / denom);
          const float target = (c == box.cls) ? 1.0f : 0.0f;
          if (c == box.cls) loss += -std::log(std::max(p, 1e-12f));
          res.grad.at4(b, 5 + c, gy, gx) = (p - target) * inv_batch;
        }
      }
    }
  }
  res.value = loss / batch;
  return res;
}

}  // namespace yoloc
