#pragma once
// Loss functions.
//
// SoftmaxCrossEntropy drives the classification/transfer experiments
// (Figs. 10/11); GridDetectionLoss drives the YOLO-style detection
// experiments (Fig. 12). The detection loss follows the YOLOv1/v2 recipe:
// the grid cell containing an object's center is "responsible" for it and
// regresses box geometry, objectness and class; empty cells are pushed
// towards zero objectness with a smaller weight.

#include <vector>

#include "tensor/tensor.hpp"

namespace yoloc {

struct LossResult {
  double value = 0.0;  // mean loss over the batch
  Tensor grad;         // dL/dlogits, same shape as the input
};

/// Mean softmax cross-entropy over a (batch x classes) logit tensor.
LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int>& labels);

/// Ground-truth box in normalized image coordinates ([0,1] each).
struct GtBox {
  float cx = 0.0f;
  float cy = 0.0f;
  float w = 0.0f;
  float h = 0.0f;
  int cls = 0;
};

/// Hyper-parameters of the grid detection loss (YOLOv1-style weights).
struct GridLossConfig {
  int grid = 6;           // S: output is (batch, 5 + classes, S, S)
  int classes = 4;
  float lambda_coord = 5.0f;
  float lambda_noobj = 0.5f;
};

/// Channels per cell: [tx, ty, tw, th, obj, class0..classC-1].
/// tx,ty pass through a sigmoid (cell-relative center), tw,th through
/// sigmoid too (box size as fraction of image), obj through sigmoid,
/// class scores through softmax.
LossResult grid_detection_loss(const Tensor& pred,
                               const std::vector<std::vector<GtBox>>& gt,
                               const GridLossConfig& cfg);

/// Numerically stable logistic function (shared with the decoder).
float sigmoidf(float x);

}  // namespace yoloc
