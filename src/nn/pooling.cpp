#include "nn/pooling.hpp"

#include <limits>

#include "common/check.hpp"

namespace yoloc {

MaxPool2d::MaxPool2d(int window) : window_(window) {
  YOLOC_CHECK(window >= 2, "maxpool: window >= 2");
}

Tensor MaxPool2d::forward(const Tensor& input, bool train) {
  YOLOC_CHECK(input.rank() == 4, "maxpool: NCHW required");
  const int n = input.shape()[0];
  const int c = input.shape()[1];
  const int h = input.shape()[2];
  const int w = input.shape()[3];
  YOLOC_CHECK(h % window_ == 0 && w % window_ == 0,
              "maxpool: input extent must be divisible by window");
  const int oh = h / window_;
  const int ow = w / window_;
  // The argmax tape is only recorded in train mode: eval forward must not
  // write layer state so that concurrent requests can share one deployed
  // model (see src/runtime/).
  if (train) {
    input_shape_ = input.shape();
  }
  Tensor out({n, c, oh, ow});
  if (train) argmax_.assign(out.size(), 0);
  for (int ni = 0; ni < n; ++ni) {
    for (int ci = 0; ci < c; ++ci) {
      for (int oi = 0; oi < oh; ++oi) {
        for (int oj = 0; oj < ow; ++oj) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (int ki = 0; ki < window_; ++ki) {
            for (int kj = 0; kj < window_; ++kj) {
              const std::size_t idx = input.index4(
                  ni, ci, oi * window_ + ki, oj * window_ + kj);
              if (input[idx] > best) {
                best = input[idx];
                best_idx = idx;
              }
            }
          }
          const std::size_t oidx = out.index4(ni, ci, oi, oj);
          out[oidx] = best;
          if (train) argmax_[oidx] = best_idx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  YOLOC_CHECK(!input_shape_.empty(), "maxpool: backward before forward");
  YOLOC_CHECK(grad_output.size() == argmax_.size(),
              "maxpool: grad shape mismatch");
  Tensor g(input_shape_);
  for (std::size_t i = 0; i < grad_output.size(); ++i) {
    g[argmax_[i]] += grad_output[i];
  }
  return g;
}

Tensor GlobalAvgPool::forward(const Tensor& input, bool train) {
  YOLOC_CHECK(input.rank() == 4, "gap: NCHW required");
  if (train) input_shape_ = input.shape();
  const int n = input.shape()[0];
  const int c = input.shape()[1];
  const int spatial = input.shape()[2] * input.shape()[3];
  Tensor out({n, c});
  for (int ni = 0; ni < n; ++ni) {
    for (int ci = 0; ci < c; ++ci) {
      const float* src = input.data() + input.index4(ni, ci, 0, 0);
      double acc = 0.0;
      for (int s = 0; s < spatial; ++s) acc += src[s];
      out.at2(ni, ci) = static_cast<float>(acc / spatial);
    }
  }
  return out;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  YOLOC_CHECK(!input_shape_.empty(), "gap: backward before forward");
  Tensor g(input_shape_);
  const int n = input_shape_[0];
  const int c = input_shape_[1];
  const int spatial = input_shape_[2] * input_shape_[3];
  const float inv = 1.0f / static_cast<float>(spatial);
  for (int ni = 0; ni < n; ++ni) {
    for (int ci = 0; ci < c; ++ci) {
      const float go = grad_output.at2(ni, ci) * inv;
      float* dst = g.data() + g.index4(ni, ci, 0, 0);
      for (int s = 0; s < spatial; ++s) dst[s] = go;
    }
  }
  return g;
}

}  // namespace yoloc
