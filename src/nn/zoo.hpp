#pragma once
// Trainable scaled-down ("-lite") versions of the paper's model families.
//
// Full-size VGG-8 / ResNet-18 / DarkNet-19 layer tables (used for the
// area/energy results) live in arch/network_model.hpp; the -lite variants
// here share the same topology family but shrink width and input size so
// the in-repo trainer can run the transfer-learning experiments
// (Figs. 10-12) in seconds.
//
// Every backbone convolution is created through a ConvUnitFactory hook:
// the default factory emits a plain Conv2d, while the ReBranch factory
// (rebranch/rebranch.hpp) emits trunk+branch ParallelSum blocks. This is
// the single seam through which all four deployment options of the paper
// are constructed.
//
// Naming convention (drives freezing policies and ROM/SRAM splits):
//   backbone.*   - feature extractor (candidate for ROM residency)
//   head.*       - classifier / detection head (always SRAM, trainable)

#include <functional>
#include <memory>
#include <string>

#include "nn/container.hpp"
#include "nn/layer.hpp"

namespace yoloc {

/// Geometry of one backbone conv unit.
struct ConvSpec {
  int in_channels = 0;
  int out_channels = 0;
  int kernel = 3;
  int stride = 1;
  int pad = -1;  // -1 => same padding (kernel/2)
  std::string name;
};

/// Factory invoked for every backbone conv. Must return a layer mapping
/// (N, in_channels, H, W) -> (N, out_channels, H/stride, W/stride).
using ConvUnitFactory = std::function<LayerPtr(const ConvSpec&, Rng&)>;

/// Default factory: a single bias-free Conv2d.
LayerPtr plain_conv_unit(const ConvSpec& spec, Rng& rng);

struct ZooConfig {
  int image_size = 16;
  int in_channels = 3;
  int base_width = 8;
  int num_classes = 8;
  std::uint64_t seed = 42;
};

/// VGG-8-lite: three conv-conv-pool stages (w, 2w, 4w), GAP, linear head.
LayerPtr build_vgg8_lite(const ZooConfig& cfg, const ConvUnitFactory& factory);

/// ResNet-18-lite: stem + four stages of two basic residual blocks
/// (w, 2w, 4w, 8w), GAP, linear head. Stage transitions use stride-2
/// blocks with pointwise-projection skips.
LayerPtr build_resnet18_lite(const ZooConfig& cfg,
                             const ConvUnitFactory& factory);

/// DarkNet-lite backbone (3x3 / 1x1 alternation with maxpools) used by
/// the detector; output spatial extent = image_size / 8.
LayerPtr build_darknet_lite_backbone(const ZooConfig& cfg,
                                     const ConvUnitFactory& factory);

/// Grid detector: DarkNet-lite backbone + detection head producing
/// (5 + num_classes) channels on an (image_size/8)^2 grid.
LayerPtr build_detector_lite(const ZooConfig& cfg,
                             const ConvUnitFactory& factory);

/// Tiny detector: half-depth backbone (the paper's Tiny-YOLO analogue,
/// all layers trainable / SRAM-resident).
LayerPtr build_tiny_detector_lite(const ZooConfig& cfg,
                                  const ConvUnitFactory& factory);

/// Grid extent of the -lite detectors for a given image size.
int detector_grid_extent(int image_size);

}  // namespace yoloc
