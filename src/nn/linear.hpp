#pragma once
// Fully-connected layer (batch x in) -> (batch x out).

#include "nn/layer.hpp"

namespace yoloc {

class Linear final : public Layer {
 public:
  Linear(int in_features, int out_features, bool bias, Rng& rng,
         std::string layer_name = "linear");

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] LayerKind kind() const override { return LayerKind::kLinear; }

  [[nodiscard]] int in_features() const { return in_features_; }
  [[nodiscard]] int out_features() const { return out_features_; }
  [[nodiscard]] bool has_bias() const { return has_bias_; }
  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  int in_features_;
  int out_features_;
  bool has_bias_;
  std::string name_;
  Parameter weight_;  // (out x in)
  Parameter bias_;    // (out)
  Tensor cached_input_;
};

}  // namespace yoloc
