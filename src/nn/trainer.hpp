#pragma once
// Mini-batch training loops for classification and grid detection.
//
// These loops are deliberately simple (shuffled epochs, SGD + momentum,
// multiplicative LR decay) — the experiments compare *deployment options*
// under identical training budgets, so sophistication in the optimizer
// would only blur the comparison.

#include <cstdint>
#include <functional>
#include <vector>

#include "nn/layer.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

namespace yoloc {

struct TrainConfig {
  int epochs = 10;
  int batch_size = 32;
  SgdConfig sgd;
  /// lr <- lr * lr_decay after each epoch.
  float lr_decay = 0.95f;
  std::uint64_t seed = 7;
  bool verbose = false;
};

struct TrainStats {
  std::vector<double> epoch_loss;
  [[nodiscard]] double final_loss() const {
    return epoch_loss.empty() ? 0.0 : epoch_loss.back();
  }
};

/// Gather the rows of `images` (N,C,H,W) selected by `indices` into a new
/// batch tensor.
Tensor gather_batch(const Tensor& images, const std::vector<int>& indices);

/// Train a classifier in place. `images` is (N,C,H,W); labels[i] in
/// [0, classes).
TrainStats train_classifier(Layer& model, const Tensor& images,
                            const std::vector<int>& labels,
                            const TrainConfig& cfg);

/// Top-1 accuracy in [0,1].
double evaluate_classifier(Layer& model, const Tensor& images,
                           const std::vector<int>& labels,
                           int batch_size = 64);

/// Same accuracy loop over an arbitrary forward function — lets callers
/// route the batches through something other than Layer::forward (the
/// deployed runtime's ExecutionContext, a remote endpoint, ...).
double evaluate_classifier(
    const std::function<Tensor(const Tensor&)>& forward, const Tensor& images,
    const std::vector<int>& labels, int batch_size = 64);

/// Train a grid detector in place. boxes[i] lists ground truth for image i.
TrainStats train_detector(Layer& model, const Tensor& images,
                          const std::vector<std::vector<GtBox>>& boxes,
                          const GridLossConfig& loss_cfg,
                          const TrainConfig& cfg);

}  // namespace yoloc
