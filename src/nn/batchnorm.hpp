#pragma once
// Per-channel batch normalization for NCHW tensors.
//
// Training uses batch statistics and maintains running estimates; eval
// uses the running estimates. Before quantized CiM deployment, BatchNorm
// is folded into the preceding convolution (see nn/quantize.hpp) because
// the macro computes a plain integer MVM.

#include "nn/layer.hpp"

namespace yoloc {

class BatchNorm2d final : public Layer {
 public:
  explicit BatchNorm2d(int channels, float eps = 1e-5f, float momentum = 0.1f,
                       std::string layer_name = "bn");

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] LayerKind kind() const override {
    return LayerKind::kBatchNorm2d;
  }

  [[nodiscard]] int channels() const { return channels_; }
  [[nodiscard]] float eps() const { return eps_; }
  [[nodiscard]] float momentum() const { return momentum_; }
  Parameter& gamma() { return gamma_; }
  Parameter& beta() { return beta_; }
  Tensor& running_mean() { return running_mean_; }
  Tensor& running_var() { return running_var_; }

 private:
  int channels_;
  float eps_;
  float momentum_;
  std::string name_;
  Parameter gamma_;  // (C)
  Parameter beta_;   // (C)
  Tensor running_mean_;
  Tensor running_var_;

  // backward cache (training mode)
  Tensor cached_xhat_;
  Tensor cached_inv_std_;  // (C)
  std::vector<int> input_shape_;
};

}  // namespace yoloc
