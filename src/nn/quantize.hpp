#pragma once
// Lowering a trained float network onto the integer CiM datapath.
//
// Pipeline (mirrors the paper's deployment flow, Sec. 3.3):
//   1. fold_batchnorm()       - BN folded into the preceding conv, because
//                               the macro executes a plain integer MVM.
//   2. quantize_network()     - every Conv2d/Linear replaced by a
//                               QuantConv2d/QuantLinear holding int8
//                               weights plus an engine binding.
//   3. calibrate + finalize   - one forward pass over a calibration batch
//                               records per-layer activation ranges (pure
//                               float math, no engine involved).
//   4. Deploy mode            - forward() routes every MVM through an
//                               MvmEngine: ExactMvmEngine for the integer
//                               reference, or the macro-backed engine that
//                               models the analog bitline + ADC.
//
// Execution model: engines are immutable and reentrant. All mutable
// per-request state (the analog-noise RNG stream, run statistics, scratch
// buffers) travels in an MvmSession supplied by the caller. A quantized
// layer finds its engine either through the layer's direct binding
// (legacy single-engine deployments via quantize_network) or through the
// thread-local MvmBinding that the runtime's ExecutionContext installs
// for the duration of a forward pass — which is what lets many requests
// share one lowered network concurrently.
//
// Activation convention: unsigned 8-bit, zero point 0 (wordline pulses
// encode non-negative amplitudes). Negative layer inputs clamp to zero,
// so quantized layers must follow ReLU-family activations — the trainable
// "-lite" networks use plain ReLU for this reason.

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "tensor/quant.hpp"

namespace yoloc {

struct MacroRunStats;  // macro/cim_macro.hpp — sessions only hold a pointer

/// Reusable buffers for the deploy-time hot loop. Owned by the caller
/// (one per concurrent request); every field is resized on first use and
/// reused afterwards so the per-layer inner loop stops allocating.
struct MvmScratch {
  Tensor cols;                       // im2col output
  std::vector<std::uint8_t> qx;      // quantized activations
  std::vector<std::int32_t> acc;     // int32 MVM accumulator
  std::vector<std::int8_t> w_chunk;  // macro row-tile of the weight matrix
  std::vector<std::uint8_t> x_chunk;
  std::vector<std::int32_t> y_partial;
  Tensor xT;  // transposed linear input
};

class LayerTraceSink;  // defined below, after EngineKind

/// Mutable per-request state threaded through an engine call. Engines that
/// model analog noise require `rng` and all engines that meter activity
/// require `stats`; `scratch` is optional (engines fall back to local
/// allocations when it is null). `trace` is an optional observer for
/// per-layer span timing — null (the default) costs the hot loop nothing.
struct MvmSession {
  Rng* rng = nullptr;
  MacroRunStats* stats = nullptr;
  MvmScratch* scratch = nullptr;
  LayerTraceSink* trace = nullptr;
};

/// Which engine a lowered layer should execute on. Deployment assigns
/// kRom/kSram per the parameter residency flags; kDefault is the slot
/// used by single-engine lowering (quantize_network).
enum class EngineKind { kDefault = 0, kRom = 1, kSram = 2 };

/// Observer for per-layer deploy-time execution phases, implemented by
/// the serving tracer (src/serve/trace.*). Quantized layers invoke it
/// only when their session carries one, so the untraced hot path pays a
/// single null check per phase. `phase` is a static string from the
/// span taxonomy ("im2col" / "mvm"); `layer` points at the layer's own
/// stable name storage (valid for the plan's lifetime); timestamps are
/// nanoseconds on the shared trace clock (common/trace_clock.hpp).
class LayerTraceSink {
 public:
  virtual ~LayerTraceSink() = default;
  virtual void layer_span(const char* phase, const char* layer,
                          EngineKind engine, std::uint64_t start_ns,
                          std::uint64_t end_ns) = 0;
};

/// Integer matrix-vector-multiply backend. Implementations are immutable
/// and safe to share across threads; per-call state lives in the session.
class MvmEngine {
 public:
  virtual ~MvmEngine() = default;
  /// Y (m x p, int32) = W (m x k, int8, row-major) * X (k x p, uint8,
  /// row-major). Implementations may model analog non-idealities, in
  /// which case Y approximates the exact product.
  virtual void mvm_batch(const std::int8_t* w, int m, int k,
                         const std::uint8_t* x, int p, std::int32_t* y,
                         MvmSession& session) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Convenience for engines that need no session state.
  void mvm_batch(const std::int8_t* w, int m, int k, const std::uint8_t* x,
                 int p, std::int32_t* y) const {
    MvmSession session;
    mvm_batch(w, m, k, x, p, y, session);
  }
};

/// Bit-exact integer reference backend (stateless; ignores the session's
/// rng/stats).
class ExactMvmEngine final : public MvmEngine {
 public:
  using MvmEngine::mvm_batch;  // keep the sessionless convenience visible
  void mvm_batch(const std::int8_t* w, int m, int k, const std::uint8_t* x,
                 int p, std::int32_t* y, MvmSession& session) const override;
  [[nodiscard]] std::string name() const override { return "exact"; }
};

/// Thread-local execution binding: maps EngineKind -> (engine, session)
/// for the duration of a deployed forward pass. Installed via the RAII
/// Scope by whoever drives execution (the runtime's ExecutionContext);
/// quantized layers look their engine up here first and fall back to
/// their direct binding when no scope is active.
class MvmBinding {
 public:
  struct Slot {
    const MvmEngine* engine = nullptr;
    MvmSession session;
  };

  Slot& slot(EngineKind kind) {
    return slots_[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] const Slot& slot(EngineKind kind) const {
    return slots_[static_cast<std::size_t>(kind)];
  }

  /// Installs `binding` as this thread's active binding; restores the
  /// previous one (supporting nesting) on destruction.
  class Scope {
   public:
    explicit Scope(const MvmBinding& binding);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    const MvmBinding* prev_;
  };

  [[nodiscard]] static const MvmBinding* current();

 private:
  std::array<Slot, 3> slots_{};
};

/// Inference-only quantized convolution. See file comment for the modes.
class QuantConv2d final : public Layer {
 public:
  /// Snapshot the float conv's geometry and weights with a direct engine
  /// binding; `engine` must outlive this layer.
  QuantConv2d(const Conv2d& src, const MvmEngine& engine, int weight_bits = 8,
              int act_bits = 8);
  /// Snapshot with a deferred binding: the engine is resolved per forward
  /// pass from the thread-local MvmBinding slot for `kind`.
  QuantConv2d(const Conv2d& src, EngineKind kind, int weight_bits = 8,
              int act_bits = 8);
  /// Deserialization: rebuild an already-lowered, already-calibrated layer
  /// from a saved plan image (src/runtime/plan_serde.*). `qweight` must be
  /// (out_channels x in_channels*kernel*kernel), `bias` (out_channels),
  /// `act_scale` a finalized calibration scale (> 0).
  QuantConv2d(std::string layer_name, int in_channels, int out_channels,
              int kernel, int stride, int pad, int act_bits,
              QuantizedTensor qweight, Tensor bias, EngineKind kind,
              float act_scale);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;  // throws
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] LayerKind kind() const override {
    return LayerKind::kQuantConv2d;
  }

  void set_calibration_mode(bool on) { calibrating_ = on; }
  /// Convert the recorded input range into the deployed activation scale.
  void finalize_calibration();
  [[nodiscard]] bool is_calibrated() const { return act_scale_ > 0.0f; }
  [[nodiscard]] float act_scale() const { return act_scale_; }
  [[nodiscard]] const QuantizedTensor& weights() const { return qweight_; }
  [[nodiscard]] const Tensor& bias() const { return bias_; }
  [[nodiscard]] int in_channels() const { return in_channels_; }
  [[nodiscard]] int out_channels() const { return out_channels_; }
  [[nodiscard]] int kernel() const { return kernel_; }
  [[nodiscard]] int stride() const { return stride_; }
  [[nodiscard]] int pad() const { return pad_; }
  [[nodiscard]] int act_bits() const { return act_bits_; }
  [[nodiscard]] int patch_size() const { return patch_; }
  [[nodiscard]] EngineKind engine_kind() const { return kind_; }

 private:
  std::string name_;
  int in_channels_;
  int out_channels_;
  int kernel_;
  int stride_;
  int pad_;
  int patch_;  // in_ch * k * k
  int act_bits_;
  QuantizedTensor qweight_;  // (out_ch x patch)
  Tensor bias_;              // (out_ch), float
  const MvmEngine* engine_ = nullptr;  // direct binding (may be null)
  EngineKind kind_ = EngineKind::kDefault;
  bool calibrating_ = false;
  float observed_max_ = 0.0f;
  float act_scale_ = -1.0f;
};

/// Inference-only quantized fully-connected layer.
class QuantLinear final : public Layer {
 public:
  QuantLinear(Linear& src, const MvmEngine& engine, int weight_bits = 8,
              int act_bits = 8);
  QuantLinear(Linear& src, EngineKind kind, int weight_bits = 8,
              int act_bits = 8);
  /// Deserialization counterpart of the QuantConv2d restore constructor:
  /// `qweight` must be (out_features x in_features), `bias`
  /// (out_features), `act_scale` finalized (> 0).
  QuantLinear(std::string layer_name, int in_features, int out_features,
              int act_bits, QuantizedTensor qweight, Tensor bias,
              EngineKind kind, float act_scale);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;  // throws
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] LayerKind kind() const override {
    return LayerKind::kQuantLinear;
  }

  void set_calibration_mode(bool on) { calibrating_ = on; }
  void finalize_calibration();
  [[nodiscard]] bool is_calibrated() const { return act_scale_ > 0.0f; }
  [[nodiscard]] float act_scale() const { return act_scale_; }
  [[nodiscard]] const QuantizedTensor& weights() const { return qweight_; }
  [[nodiscard]] const Tensor& bias() const { return bias_; }
  [[nodiscard]] int in_features() const { return in_features_; }
  [[nodiscard]] int out_features() const { return out_features_; }
  [[nodiscard]] int act_bits() const { return act_bits_; }
  [[nodiscard]] EngineKind engine_kind() const { return kind_; }

 private:
  std::string name_;
  int in_features_;
  int out_features_;
  int act_bits_;
  QuantizedTensor qweight_;  // (out x in)
  Tensor bias_;
  const MvmEngine* engine_ = nullptr;  // direct binding (may be null)
  EngineKind kind_ = EngineKind::kDefault;
  bool calibrating_ = false;
  float observed_max_ = 0.0f;
  float act_scale_ = -1.0f;
};

/// Fold every (Conv2d, BatchNorm2d) adjacent pair inside Sequential
/// containers (recursively). Returns the number of folds performed.
int fold_batchnorm(Layer& root);

/// Replace every Conv2d / Linear reachable from root with its quantized
/// counterpart bound directly to `engine`. Returns the number of
/// replacements. Root itself must be a container.
int quantize_network(Layer& root, const MvmEngine& engine, int weight_bits = 8,
                     int act_bits = 8);

/// Run `images` through the network in calibration mode, then finalize
/// all activation scales.
void calibrate_quantized(Layer& root, const Tensor& images);

/// Invoke `fn` for every QuantConv2d / QuantLinear reachable from root
/// (root included); exactly one of the two pointers is non-null per
/// call. Used by the deployment runtime to walk lowered graphs (e.g. to
/// pre-pack every layer's ROM weight bit-planes at deploy time).
void for_each_quantized_layer(
    Layer& root, const std::function<void(QuantConv2d*, QuantLinear*)>& fn);

/// Number of QuantConv2d / QuantLinear layers reachable from root
/// (root included). Used by the deployment-plan loader as an integrity
/// check against the count recorded in a serialized plan.
int count_quantized_layers(Layer& root);

/// True when every reachable quantized layer holds a finalized
/// activation scale (act_scale > 0), i.e. the graph is servable without
/// re-running calibration.
bool quantized_layers_calibrated(Layer& root);

}  // namespace yoloc
