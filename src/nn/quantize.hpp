#pragma once
// Lowering a trained float network onto the integer CiM datapath.
//
// Pipeline (mirrors the paper's deployment flow, Sec. 3.3):
//   1. fold_batchnorm()       - BN folded into the preceding conv, because
//                               the macro executes a plain integer MVM.
//   2. quantize_network()     - every Conv2d/Linear replaced by a
//                               QuantConv2d/QuantLinear holding int8
//                               weights and an MvmEngine reference.
//   3. calibrate + finalize   - one forward pass over a calibration batch
//                               records per-layer activation ranges.
//   4. Deploy mode            - forward() now routes every MVM through
//                               the engine: ExactMvmEngine for the integer
//                               reference, or the macro-backed engine that
//                               models the analog bitline + ADC.
//
// Activation convention: unsigned 8-bit, zero point 0 (wordline pulses
// encode non-negative amplitudes). Negative layer inputs clamp to zero,
// so quantized layers must follow ReLU-family activations — the trainable
// "-lite" networks use plain ReLU for this reason.

#include <cstdint>
#include <memory>
#include <string>

#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "tensor/quant.hpp"

namespace yoloc {

/// Integer matrix-vector-multiply backend.
class MvmEngine {
 public:
  virtual ~MvmEngine() = default;
  /// Y (m x p, int32) = W (m x k, int8, row-major) * X (k x p, uint8,
  /// row-major). Implementations may model analog non-idealities, in
  /// which case Y approximates the exact product.
  virtual void mvm_batch(const std::int8_t* w, int m, int k,
                         const std::uint8_t* x, int p, std::int32_t* y) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Bit-exact integer reference backend.
class ExactMvmEngine final : public MvmEngine {
 public:
  void mvm_batch(const std::int8_t* w, int m, int k, const std::uint8_t* x,
                 int p, std::int32_t* y) override;
  [[nodiscard]] std::string name() const override { return "exact"; }
};

/// Inference-only quantized convolution. See file comment for the modes.
class QuantConv2d final : public Layer {
 public:
  /// Snapshot the float conv's geometry and weights; `engine` must outlive
  /// this layer.
  QuantConv2d(const Conv2d& src, MvmEngine& engine, int weight_bits = 8,
              int act_bits = 8);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;  // throws
  [[nodiscard]] std::string name() const override { return name_; }

  void set_calibration_mode(bool on) { calibrating_ = on; }
  /// Convert the recorded input range into the deployed activation scale.
  void finalize_calibration();
  [[nodiscard]] bool is_calibrated() const { return act_scale_ > 0.0f; }
  [[nodiscard]] float act_scale() const { return act_scale_; }
  [[nodiscard]] const QuantizedTensor& weights() const { return qweight_; }
  [[nodiscard]] int out_channels() const { return out_channels_; }
  [[nodiscard]] int patch_size() const { return patch_; }

 private:
  std::string name_;
  int in_channels_;
  int out_channels_;
  int kernel_;
  int stride_;
  int pad_;
  int patch_;  // in_ch * k * k
  int act_bits_;
  QuantizedTensor qweight_;  // (out_ch x patch)
  Tensor bias_;              // (out_ch), float
  MvmEngine* engine_;
  bool calibrating_ = false;
  float observed_max_ = 0.0f;
  float act_scale_ = -1.0f;
};

/// Inference-only quantized fully-connected layer.
class QuantLinear final : public Layer {
 public:
  QuantLinear(Linear& src, MvmEngine& engine, int weight_bits = 8,
              int act_bits = 8);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;  // throws
  [[nodiscard]] std::string name() const override { return name_; }

  void set_calibration_mode(bool on) { calibrating_ = on; }
  void finalize_calibration();
  [[nodiscard]] float act_scale() const { return act_scale_; }

 private:
  std::string name_;
  int in_features_;
  int out_features_;
  int act_bits_;
  QuantizedTensor qweight_;  // (out x in)
  Tensor bias_;
  MvmEngine* engine_;
  bool calibrating_ = false;
  float observed_max_ = 0.0f;
  float act_scale_ = -1.0f;
};

/// Fold every (Conv2d, BatchNorm2d) adjacent pair inside Sequential
/// containers (recursively). Returns the number of folds performed.
int fold_batchnorm(Layer& root);

/// Replace every Conv2d / Linear reachable from root with its quantized
/// counterpart bound to `engine`. Returns the number of replacements.
/// Root itself must be a container.
int quantize_network(Layer& root, MvmEngine& engine, int weight_bits = 8,
                     int act_bits = 8);

/// Run `images` through the network in calibration mode, then finalize
/// all activation scales.
void calibrate_quantized(Layer& root, const Tensor& images);

}  // namespace yoloc
