#include "nn/zoo.hpp"

#include "common/check.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"

namespace yoloc {

LayerPtr plain_conv_unit(const ConvSpec& spec, Rng& rng) {
  return std::make_unique<Conv2d>(spec.in_channels, spec.out_channels,
                                  spec.kernel, spec.stride, spec.pad,
                                  /*bias=*/false, rng, spec.name);
}

namespace {

/// conv-unit + BN + ReLU, appended to seq.
void add_conv_bn_relu(Sequential& seq, const ConvSpec& spec,
                      const ConvUnitFactory& factory, Rng& rng) {
  seq.add(factory(spec, rng));
  seq.add(std::make_unique<BatchNorm2d>(spec.out_channels, 1e-5f, 0.1f,
                                        spec.name + ".bn"));
  seq.add(std::make_unique<ReLU>());
}

/// One ResNet basic block: two 3x3 conv units with a skip; projection
/// skip (pointwise stride-s conv + BN) when geometry changes.
LayerPtr make_basic_block(int in_ch, int out_ch, int stride,
                          const std::string& name,
                          const ConvUnitFactory& factory, Rng& rng) {
  auto main_path = std::make_unique<Sequential>(name + ".main");
  add_conv_bn_relu(*main_path,
                   ConvSpec{in_ch, out_ch, 3, stride, -1, name + ".conv1"},
                   factory, rng);
  main_path->add(factory(ConvSpec{out_ch, out_ch, 3, 1, -1, name + ".conv2"},
                         rng));
  main_path->add(std::make_unique<BatchNorm2d>(out_ch, 1e-5f, 0.1f,
                                               name + ".conv2.bn"));

  LayerPtr skip;
  if (stride != 1 || in_ch != out_ch) {
    auto proj = std::make_unique<Sequential>(name + ".proj");
    // Projection skips are small and stay in SRAM: plain conv, not the
    // factory (ReBranch only wraps the deep 3x3 trunk convolutions).
    proj->add(std::make_unique<Conv2d>(in_ch, out_ch, 1, stride, 0,
                                       /*bias=*/false, rng,
                                       name + ".proj.conv"));
    proj->add(std::make_unique<BatchNorm2d>(out_ch, 1e-5f, 0.1f,
                                            name + ".proj.bn"));
    skip = std::move(proj);
  } else {
    skip = std::make_unique<Identity>();
  }

  auto sum = std::make_unique<ParallelSum>(name);
  sum->add_branch(std::move(skip));
  sum->add_branch(std::move(main_path));

  auto block = std::make_unique<Sequential>(name + ".block");
  block->add(std::move(sum));
  block->add(std::make_unique<ReLU>());
  return block;
}

}  // namespace

LayerPtr build_vgg8_lite(const ZooConfig& cfg,
                         const ConvUnitFactory& factory) {
  YOLOC_CHECK(cfg.image_size % 8 == 0, "vgg8-lite: image_size % 8 == 0");
  Rng rng(cfg.seed);
  const int w = cfg.base_width;
  auto net = std::make_unique<Sequential>("vgg8_lite");
  const int widths[3] = {w, 2 * w, 4 * w};
  int in_ch = cfg.in_channels;
  for (int stage = 0; stage < 3; ++stage) {
    const int out_ch = widths[stage];
    const std::string base = "backbone.stage" + std::to_string(stage);
    add_conv_bn_relu(*net, ConvSpec{in_ch, out_ch, 3, 1, -1, base + ".conv1"},
                     factory, rng);
    add_conv_bn_relu(*net,
                     ConvSpec{out_ch, out_ch, 3, 1, -1, base + ".conv2"},
                     factory, rng);
    net->add(std::make_unique<MaxPool2d>(2));
    in_ch = out_ch;
  }
  net->add(std::make_unique<GlobalAvgPool>());
  net->add(std::make_unique<Linear>(4 * w, cfg.num_classes, /*bias=*/true,
                                    rng, "head.fc"));
  return net;
}

LayerPtr build_resnet18_lite(const ZooConfig& cfg,
                             const ConvUnitFactory& factory) {
  YOLOC_CHECK(cfg.image_size % 8 == 0, "resnet18-lite: image_size % 8 == 0");
  Rng rng(cfg.seed);
  const int w = cfg.base_width;
  auto net = std::make_unique<Sequential>("resnet18_lite");
  add_conv_bn_relu(*net,
                   ConvSpec{cfg.in_channels, w, 3, 1, -1, "backbone.stem"},
                   factory, rng);
  const int widths[4] = {w, 2 * w, 4 * w, 8 * w};
  int in_ch = w;
  for (int stage = 0; stage < 4; ++stage) {
    const int out_ch = widths[stage];
    const int stride = stage == 0 ? 1 : 2;
    const std::string base = "backbone.stage" + std::to_string(stage);
    net->add(make_basic_block(in_ch, out_ch, stride, base + ".block0",
                              factory, rng));
    net->add(make_basic_block(out_ch, out_ch, 1, base + ".block1", factory,
                              rng));
    in_ch = out_ch;
  }
  net->add(std::make_unique<GlobalAvgPool>());
  net->add(std::make_unique<Linear>(8 * w, cfg.num_classes, /*bias=*/true,
                                    rng, "head.fc"));
  return net;
}

LayerPtr build_darknet_lite_backbone(const ZooConfig& cfg,
                                     const ConvUnitFactory& factory) {
  YOLOC_CHECK(cfg.image_size % 8 == 0, "darknet-lite: image_size % 8 == 0");
  Rng rng(cfg.seed);
  const int w = cfg.base_width;
  auto net = std::make_unique<Sequential>("darknet_lite");
  add_conv_bn_relu(*net,
                   ConvSpec{cfg.in_channels, w, 3, 1, -1, "backbone.conv1"},
                   factory, rng);
  net->add(std::make_unique<MaxPool2d>(2));
  add_conv_bn_relu(*net, ConvSpec{w, 2 * w, 3, 1, -1, "backbone.conv2"},
                   factory, rng);
  net->add(std::make_unique<MaxPool2d>(2));
  // DarkNet-style 3x3 / 1x1 / 3x3 bottleneck trio.
  add_conv_bn_relu(*net, ConvSpec{2 * w, 4 * w, 3, 1, -1, "backbone.conv3"},
                   factory, rng);
  add_conv_bn_relu(*net, ConvSpec{4 * w, 2 * w, 1, 1, 0, "backbone.conv4"},
                   factory, rng);
  add_conv_bn_relu(*net, ConvSpec{2 * w, 4 * w, 3, 1, -1, "backbone.conv5"},
                   factory, rng);
  net->add(std::make_unique<MaxPool2d>(2));
  return net;
}

int detector_grid_extent(int image_size) { return image_size / 8; }

LayerPtr build_detector_lite(const ZooConfig& cfg,
                             const ConvUnitFactory& factory) {
  Rng rng(cfg.seed + 1);
  const int w = cfg.base_width;
  auto net = std::make_unique<Sequential>("detector_lite");
  net->add(build_darknet_lite_backbone(cfg, factory));
  // Detection head: one 3x3 refinement conv + pointwise projection to the
  // per-cell prediction vector. Head weights are SRAM-resident.
  auto head = std::make_unique<Sequential>("head");
  Rng head_rng(cfg.seed + 2);
  head->add(std::make_unique<Conv2d>(4 * w, 4 * w, 3, 1, -1, /*bias=*/false,
                                     head_rng, "head.conv"));
  head->add(std::make_unique<BatchNorm2d>(4 * w, 1e-5f, 0.1f,
                                          "head.conv.bn"));
  head->add(std::make_unique<ReLU>());
  head->add(std::make_unique<Conv2d>(4 * w, 5 + cfg.num_classes, 1, 1, 0,
                                     /*bias=*/true, head_rng, "head.pred"));
  net->add(std::move(head));
  return net;
}

LayerPtr build_tiny_detector_lite(const ZooConfig& cfg,
                                  const ConvUnitFactory& factory) {
  Rng rng(cfg.seed + 3);
  const int w = std::max(2, cfg.base_width / 2);
  auto net = std::make_unique<Sequential>("tiny_detector_lite");
  auto backbone = std::make_unique<Sequential>("tiny_backbone");
  Rng brng(cfg.seed + 4);
  add_conv_bn_relu(*backbone,
                   ConvSpec{cfg.in_channels, w, 3, 1, -1, "backbone.conv1"},
                   factory, brng);
  backbone->add(std::make_unique<MaxPool2d>(2));
  add_conv_bn_relu(*backbone, ConvSpec{w, 2 * w, 3, 1, -1, "backbone.conv2"},
                   factory, brng);
  backbone->add(std::make_unique<MaxPool2d>(2));
  add_conv_bn_relu(*backbone,
                   ConvSpec{2 * w, 2 * w, 3, 1, -1, "backbone.conv3"},
                   factory, brng);
  backbone->add(std::make_unique<MaxPool2d>(2));
  net->add(std::move(backbone));
  net->add(std::make_unique<Conv2d>(2 * w, 5 + cfg.num_classes, 1, 1, 0,
                                    /*bias=*/true, rng, "head.pred"));
  return net;
}

}  // namespace yoloc
