#include "nn/batchnorm.hpp"

#include <cmath>

#include "common/check.hpp"

namespace yoloc {

BatchNorm2d::BatchNorm2d(int channels, float eps, float momentum,
                         std::string layer_name)
    : channels_(channels),
      eps_(eps),
      momentum_(momentum),
      name_(std::move(layer_name)),
      gamma_(name_ + ".gamma", Tensor::full({channels}, 1.0f)),
      beta_(name_ + ".beta", Tensor::zeros({channels})),
      running_mean_(Tensor::zeros({channels})),
      running_var_(Tensor::full({channels}, 1.0f)) {
  YOLOC_CHECK(channels > 0, "batchnorm: channels > 0");
}

Tensor BatchNorm2d::forward(const Tensor& input, bool train) {
  YOLOC_CHECK(input.rank() == 4 && input.shape()[1] == channels_,
              "batchnorm: NCHW input with matching channels required");
  const int n = input.shape()[0];
  const int h = input.shape()[2];
  const int w = input.shape()[3];
  const int count = n * h * w;

  Tensor out(input.shape());

  if (!train) {
    // Pure running-stats normalization with no layer-state writes: a BN
    // that survives deployment (not conv-adjacent, so not folded) must
    // stay safe under concurrent eval forwards over a shared model.
    for (int c = 0; c < channels_; ++c) {
      const std::size_t ci = static_cast<std::size_t>(c);
      const float mu = running_mean_[ci];
      const float inv_std = 1.0f / std::sqrt(running_var_[ci] + eps_);
      const float g = gamma_.value[ci];
      const float b = beta_.value[ci];
      for (int ni = 0; ni < n; ++ni) {
        const float* src = input.data() + input.index4(ni, c, 0, 0);
        float* dst = out.data() + out.index4(ni, c, 0, 0);
        for (int s = 0; s < h * w; ++s) {
          dst[s] = g * (src[s] - mu) * inv_std + b;
        }
      }
    }
    return out;
  }

  input_shape_ = input.shape();
  cached_xhat_ = Tensor(input.shape());
  cached_inv_std_ = Tensor({channels_});

  for (int c = 0; c < channels_; ++c) {
    double acc = 0.0;
    for (int ni = 0; ni < n; ++ni) {
      const float* src = input.data() + input.index4(ni, c, 0, 0);
      for (int s = 0; s < h * w; ++s) acc += src[s];
    }
    const double mu = acc / count;
    double vacc = 0.0;
    for (int ni = 0; ni < n; ++ni) {
      const float* src = input.data() + input.index4(ni, c, 0, 0);
      for (int s = 0; s < h * w; ++s) {
        const double d = src[s] - mu;
        vacc += d * d;
      }
    }
    const double var = vacc / count;
    const std::size_t ci = static_cast<std::size_t>(c);
    running_mean_[ci] = (1.0f - momentum_) * running_mean_[ci] +
                        momentum_ * static_cast<float>(mu);
    running_var_[ci] = (1.0f - momentum_) * running_var_[ci] +
                       momentum_ * static_cast<float>(var);
    const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
    cached_inv_std_[ci] = inv_std;
    const float g = gamma_.value[ci];
    const float b = beta_.value[ci];
    for (int ni = 0; ni < n; ++ni) {
      const float* src = input.data() + input.index4(ni, c, 0, 0);
      float* xh = cached_xhat_.data() + cached_xhat_.index4(ni, c, 0, 0);
      float* dst = out.data() + out.index4(ni, c, 0, 0);
      for (int s = 0; s < h * w; ++s) {
        xh[s] = (src[s] - static_cast<float>(mu)) * inv_std;
        dst[s] = g * xh[s] + b;
      }
    }
  }
  return out;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  YOLOC_CHECK(!input_shape_.empty(), "batchnorm: backward before forward");
  const int n = input_shape_[0];
  const int h = input_shape_[2];
  const int w = input_shape_[3];
  const int count = n * h * w;

  Tensor g(input_shape_);
  for (int c = 0; c < channels_; ++c) {
    const std::size_t ci = static_cast<std::size_t>(c);
    double sum_dy = 0.0;
    double sum_dy_xhat = 0.0;
    for (int ni = 0; ni < n; ++ni) {
      const float* dy = grad_output.data() + grad_output.index4(ni, c, 0, 0);
      const float* xh = cached_xhat_.data() + cached_xhat_.index4(ni, c, 0, 0);
      for (int s = 0; s < h * w; ++s) {
        sum_dy += dy[s];
        sum_dy_xhat += dy[s] * xh[s];
      }
    }
    gamma_.grad[ci] += static_cast<float>(sum_dy_xhat);
    beta_.grad[ci] += static_cast<float>(sum_dy);

    const float gam = gamma_.value[ci];
    const float inv_std = cached_inv_std_[ci];
    const float k = gam * inv_std / static_cast<float>(count);
    for (int ni = 0; ni < n; ++ni) {
      const float* dy = grad_output.data() + grad_output.index4(ni, c, 0, 0);
      const float* xh = cached_xhat_.data() + cached_xhat_.index4(ni, c, 0, 0);
      float* dst = g.data() + g.index4(ni, c, 0, 0);
      for (int s = 0; s < h * w; ++s) {
        dst[s] = k * (static_cast<float>(count) * dy[s] -
                      static_cast<float>(sum_dy) -
                      xh[s] * static_cast<float>(sum_dy_xhat));
      }
    }
  }
  return g;
}

std::vector<Parameter*> BatchNorm2d::parameters() { return {&gamma_, &beta_}; }

}  // namespace yoloc
