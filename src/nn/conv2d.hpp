#pragma once
// 2-D convolution (NCHW) via im2col + matmul, with full backward.
//
// Weight layout: rank-2 (out_channels x in_channels*kh*kw) so the forward
// pass is exactly the matrix-vector product the CiM macro executes — the
// same matrix is later bit-sliced across ROM columns by the mapper.
// Point-wise (1x1) convolution, the building block of ReBranch's
// residual-compress/decompress layers (paper Fig. 8), is this class with
// kernel=1.

#include "nn/layer.hpp"

namespace yoloc {

class Conv2d final : public Layer {
 public:
  /// He-normal initialized conv. pad defaults to "same" for stride 1 when
  /// pad < 0 (i.e. kernel/2).
  Conv2d(int in_channels, int out_channels, int kernel, int stride, int pad,
         bool bias, Rng& rng, std::string layer_name = "conv");

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] LayerKind kind() const override { return LayerKind::kConv2d; }

  [[nodiscard]] int in_channels() const { return in_channels_; }
  [[nodiscard]] int out_channels() const { return out_channels_; }
  [[nodiscard]] int kernel() const { return kernel_; }
  [[nodiscard]] int stride() const { return stride_; }
  [[nodiscard]] int pad() const { return pad_; }
  [[nodiscard]] bool has_bias() const { return has_bias_; }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }
  /// Enable the bias term post-construction (BatchNorm folding produces a
  /// bias even when the conv was built without one).
  void set_bias_enabled(bool enabled) { has_bias_ = enabled; }

 private:
  int in_channels_;
  int out_channels_;
  int kernel_;
  int stride_;
  int pad_;
  bool has_bias_;
  std::string name_;
  Parameter weight_;  // (out_ch, in_ch*k*k)
  Parameter bias_;    // (out_ch)

  // forward() cache for backward():
  Tensor cached_cols_;            // im2col of last input
  std::vector<int> input_shape_;  // NCHW of last input
};

/// Convenience factory for point-wise (1x1, stride 1, pad 0) convolution.
LayerPtr make_pointwise(int in_channels, int out_channels, Rng& rng,
                        std::string name = "pointwise");

}  // namespace yoloc
