#include "nn/linear.hpp"

#include <cmath>

#include "common/check.hpp"
#include "tensor/ops.hpp"

namespace yoloc {

Linear::Linear(int in_features, int out_features, bool bias, Rng& rng,
               std::string layer_name)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias),
      name_(std::move(layer_name)) {
  YOLOC_CHECK(in_features > 0 && out_features > 0, "linear: bad geometry");
  const float stddev = std::sqrt(2.0f / static_cast<float>(in_features));
  weight_ = Parameter(name_ + ".weight",
                      Tensor::randn({out_features, in_features}, rng, stddev));
  bias_ = Parameter(name_ + ".bias", Tensor::zeros({out_features}));
}

Tensor Linear::forward(const Tensor& input, bool /*train*/) {
  YOLOC_CHECK(input.rank() == 2, "linear: rank-2 input required");
  YOLOC_CHECK(input.shape()[1] == in_features_, "linear: feature mismatch");
  cached_input_ = input;
  // (batch x in) * (in x out)
  Tensor out = matmul(input, transpose2d(weight_.value));
  if (has_bias_) {
    const int batch = out.shape()[0];
    for (int b = 0; b < batch; ++b) {
      float* row = out.data() + static_cast<std::size_t>(b) * out_features_;
      for (int o = 0; o < out_features_; ++o) {
        row[o] += bias_.value[static_cast<std::size_t>(o)];
      }
    }
  }
  return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
  YOLOC_CHECK(!cached_input_.empty(), "linear: backward before forward");
  // dW = g^T * x ; dx = g * W ; db = colsum(g)
  Tensor w_grad = matmul(transpose2d(grad_output), cached_input_);
  add_inplace(weight_.grad, w_grad);
  if (has_bias_) {
    const int batch = grad_output.shape()[0];
    for (int b = 0; b < batch; ++b) {
      const float* row =
          grad_output.data() + static_cast<std::size_t>(b) * out_features_;
      for (int o = 0; o < out_features_; ++o) {
        bias_.grad[static_cast<std::size_t>(o)] += row[o];
      }
    }
  }
  return matmul(grad_output, weight_.value);
}

std::vector<Parameter*> Linear::parameters() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

}  // namespace yoloc
