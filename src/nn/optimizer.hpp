#pragma once
// SGD with momentum and decoupled weight decay.
//
// The optimizer only updates parameters whose `trainable` flag is set —
// this single mechanism implements every deployment option in the paper
// (All-SRAM trains everything; All-ROM trains nothing but the classifier;
// ReBranch trains only the SRAM-resident residual convolutions).

#include <vector>

#include "nn/layer.hpp"

namespace yoloc {

struct SgdConfig {
  float lr = 0.05f;
  float momentum = 0.9f;
  float weight_decay = 1e-4f;
};

class Sgd {
 public:
  Sgd(std::vector<Parameter*> params, SgdConfig cfg);

  /// Zero all gradient accumulators (including frozen parameters, whose
  /// grads are still produced by backward()).
  void zero_grad();
  /// Apply one update to every trainable parameter.
  void step();

  void set_lr(float lr) { cfg_.lr = lr; }
  [[nodiscard]] float lr() const { return cfg_.lr; }

 private:
  std::vector<Parameter*> params_;
  std::vector<Tensor> velocity_;
  SgdConfig cfg_;
};

}  // namespace yoloc
