#include "nn/trainer.hpp"

#include <cstdio>
#include <numeric>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "tensor/ops.hpp"

namespace yoloc {

Tensor gather_batch(const Tensor& images, const std::vector<int>& indices) {
  YOLOC_CHECK(images.rank() == 4, "gather_batch: NCHW required");
  const int c = images.shape()[1];
  const int h = images.shape()[2];
  const int w = images.shape()[3];
  const std::size_t stride = static_cast<std::size_t>(c) * h * w;
  Tensor batch({static_cast<int>(indices.size()), c, h, w});
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const int src = indices[i];
    YOLOC_CHECK(src >= 0 && src < images.shape()[0],
                "gather_batch: index out of range");
    const float* from = images.data() + static_cast<std::size_t>(src) * stride;
    float* to = batch.data() + i * stride;
    std::copy(from, from + stride, to);
  }
  return batch;
}

namespace {

std::vector<int> shuffled_indices(int n, Rng& rng) {
  std::vector<int> idx(static_cast<std::size_t>(n));
  std::iota(idx.begin(), idx.end(), 0);
  rng.shuffle(idx);
  return idx;
}

}  // namespace

TrainStats train_classifier(Layer& model, const Tensor& images,
                            const std::vector<int>& labels,
                            const TrainConfig& cfg) {
  YOLOC_CHECK(images.rank() == 4, "train: NCHW images required");
  const int n = images.shape()[0];
  YOLOC_CHECK(static_cast<int>(labels.size()) == n, "train: label mismatch");

  Sgd opt(model.parameters(), cfg.sgd);
  Rng rng(cfg.seed);
  TrainStats stats;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    const auto order = shuffled_indices(n, rng);
    double loss_acc = 0.0;
    int batches = 0;
    for (int start = 0; start + cfg.batch_size <= n;
         start += cfg.batch_size) {
      std::vector<int> idx(order.begin() + start,
                           order.begin() + start + cfg.batch_size);
      Tensor batch = gather_batch(images, idx);
      std::vector<int> batch_labels;
      batch_labels.reserve(idx.size());
      for (int i : idx) batch_labels.push_back(labels[static_cast<std::size_t>(i)]);

      opt.zero_grad();
      Tensor logits = model.forward(batch, /*train=*/true);
      LossResult loss = softmax_cross_entropy(logits, batch_labels);
      model.backward(loss.grad);
      opt.step();
      loss_acc += loss.value;
      ++batches;
    }
    const double epoch_loss = batches > 0 ? loss_acc / batches : 0.0;
    stats.epoch_loss.push_back(epoch_loss);
    if (cfg.verbose) {
      std::printf("  epoch %2d  loss %.4f  lr %.4f\n", epoch, epoch_loss,
                  opt.lr());
    }
    opt.set_lr(opt.lr() * cfg.lr_decay);
  }
  return stats;
}

double evaluate_classifier(Layer& model, const Tensor& images,
                           const std::vector<int>& labels, int batch_size) {
  return evaluate_classifier(
      [&model](const Tensor& batch) {
        return model.forward(batch, /*train=*/false);
      },
      images, labels, batch_size);
}

double evaluate_classifier(
    const std::function<Tensor(const Tensor&)>& forward, const Tensor& images,
    const std::vector<int>& labels, int batch_size) {
  const int n = images.shape()[0];
  YOLOC_CHECK(static_cast<int>(labels.size()) == n, "eval: label mismatch");
  YOLOC_CHECK(batch_size > 0, "eval: batch_size must be positive");
  int correct = 0;
  for (int start = 0; start < n; start += batch_size) {
    const int end = std::min(n, start + batch_size);
    std::vector<int> idx(static_cast<std::size_t>(end - start));
    std::iota(idx.begin(), idx.end(), start);
    Tensor batch = gather_batch(images, idx);
    const auto pred = argmax_rows(forward(batch));
    for (int i = start; i < end; ++i) {
      if (pred[static_cast<std::size_t>(i - start)] ==
          labels[static_cast<std::size_t>(i)]) {
        ++correct;
      }
    }
  }
  return n > 0 ? static_cast<double>(correct) / n : 0.0;
}

TrainStats train_detector(Layer& model, const Tensor& images,
                          const std::vector<std::vector<GtBox>>& boxes,
                          const GridLossConfig& loss_cfg,
                          const TrainConfig& cfg) {
  YOLOC_CHECK(images.rank() == 4, "train_detector: NCHW images required");
  const int n = images.shape()[0];
  YOLOC_CHECK(static_cast<int>(boxes.size()) == n,
              "train_detector: box list mismatch");

  Sgd opt(model.parameters(), cfg.sgd);
  Rng rng(cfg.seed);
  TrainStats stats;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    const auto order = shuffled_indices(n, rng);
    double loss_acc = 0.0;
    int batches = 0;
    for (int start = 0; start + cfg.batch_size <= n;
         start += cfg.batch_size) {
      std::vector<int> idx(order.begin() + start,
                           order.begin() + start + cfg.batch_size);
      Tensor batch = gather_batch(images, idx);
      std::vector<std::vector<GtBox>> batch_boxes;
      batch_boxes.reserve(idx.size());
      for (int i : idx) batch_boxes.push_back(boxes[static_cast<std::size_t>(i)]);

      opt.zero_grad();
      Tensor pred = model.forward(batch, /*train=*/true);
      LossResult loss = grid_detection_loss(pred, batch_boxes, loss_cfg);
      model.backward(loss.grad);
      opt.step();
      loss_acc += loss.value;
      ++batches;
    }
    const double epoch_loss = batches > 0 ? loss_acc / batches : 0.0;
    stats.epoch_loss.push_back(epoch_loss);
    if (cfg.verbose) {
      std::printf("  epoch %2d  det-loss %.4f\n", epoch, epoch_loss);
    }
    opt.set_lr(opt.lr() * cfg.lr_decay);
  }
  return stats;
}

}  // namespace yoloc
