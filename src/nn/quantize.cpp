#include "nn/quantize.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "common/trace_clock.hpp"
#include "nn/batchnorm.hpp"
#include "nn/container.hpp"
#include "tensor/ops.hpp"

namespace yoloc {

namespace {

/// Active binding for the current thread (set by MvmBinding::Scope).
thread_local const MvmBinding* t_binding = nullptr;

struct ResolvedEngine {
  const MvmEngine* engine = nullptr;
  MvmSession session;
};

/// Engine lookup order: thread-local slot for the layer's kind, then the
/// thread-local default slot, then the layer's direct binding. The
/// returned session always carries a scratch arena: the binding's if it
/// supplied one, otherwise a thread-local fallback (so unscoped layers
/// still reuse buffers within a thread).
ResolvedEngine resolve_engine(const MvmEngine* direct, EngineKind kind,
                              const char* what) {
  ResolvedEngine resolved;
  if (const MvmBinding* binding = MvmBinding::current()) {
    const MvmBinding::Slot& s = binding->slot(kind);
    const MvmBinding::Slot& d = binding->slot(EngineKind::kDefault);
    if (s.engine != nullptr) {
      resolved = {s.engine, s.session};
    } else if (d.engine != nullptr) {
      resolved = {d.engine, d.session};
    }
  }
  if (resolved.engine == nullptr) {
    // Direct bindings execute with an otherwise-empty session: only
    // sessionless engines (ExactMvmEngine) support that. Session-
    // requiring engines (MacroMvmEngine) must be driven through an
    // ExecutionContext / MvmBinding, which supplies rng + stats.
    YOLOC_CHECK(direct != nullptr,
                std::string(what) +
                    ": no engine bound — run inside an ExecutionContext "
                    "(or lower with a direct sessionless engine)");
    resolved.engine = direct;
  }
  if (resolved.session.scratch == nullptr) {
    thread_local MvmScratch t_fallback_scratch;
    resolved.session.scratch = &t_fallback_scratch;
  }
  return resolved;
}

}  // namespace

MvmBinding::Scope::Scope(const MvmBinding& binding) : prev_(t_binding) {
  t_binding = &binding;
}

MvmBinding::Scope::~Scope() { t_binding = prev_; }

const MvmBinding* MvmBinding::current() { return t_binding; }

void ExactMvmEngine::mvm_batch(const std::int8_t* w, int m, int k,
                               const std::uint8_t* x, int p, std::int32_t* y,
                               MvmSession& /*session*/) const {
  // Cache-blocked (m, k, p) walk. The old row-at-a-time loop streamed the
  // whole k x p activation matrix once per output row — for the large p
  // of early conv layers that is m full passes over an L2-busting
  // matrix. Blocking p and k and reusing each x tile across a small row
  // block keeps the tile resident while it is hot; integer accumulation
  // is exact, so the result is unchanged by the reordering.
  constexpr int kRowBlock = 8;    // output rows sharing one x tile
  constexpr int kKBlock = 256;    // reduction rows per tile
  constexpr int kPBlock = 512;    // columns per tile (x tile <= 128 KiB)
  const std::size_t row_blocks =
      (static_cast<std::size_t>(m) + kRowBlock - 1) / kRowBlock;
  const std::size_t p_blocks =
      (static_cast<std::size_t>(p) + kPBlock - 1) / kPBlock;
  parallel_for(row_blocks * p_blocks, [&](std::size_t task) {
    const int j0 = static_cast<int>(task / p_blocks) * kRowBlock;
    const int j1 = std::min(m, j0 + kRowBlock);
    const int p0 = static_cast<int>(task % p_blocks) * kPBlock;
    const int p1 = std::min(p, p0 + kPBlock);
    for (int j = j0; j < j1; ++j) {
      std::int32_t* yrow = y + static_cast<std::size_t>(j) * p;
      for (int col = p0; col < p1; ++col) yrow[col] = 0;
    }
    for (int k0 = 0; k0 < k; k0 += kKBlock) {
      const int k1 = std::min(k, k0 + kKBlock);
      for (int j = j0; j < j1; ++j) {
        const std::int8_t* wrow = w + static_cast<std::size_t>(j) * k;
        std::int32_t* yrow = y + static_cast<std::size_t>(j) * p;
        for (int kk = k0; kk < k1; ++kk) {
          const std::int32_t wv = wrow[kk];
          if (wv == 0) continue;
          const std::uint8_t* xrow = x + static_cast<std::size_t>(kk) * p;
          for (int col = p0; col < p1; ++col) yrow[col] += wv * xrow[col];
        }
      }
    }
  });
}

QuantConv2d::QuantConv2d(const Conv2d& src, const MvmEngine& engine,
                         int weight_bits, int act_bits)
    : QuantConv2d(src, EngineKind::kDefault, weight_bits, act_bits) {
  engine_ = &engine;
}

QuantConv2d::QuantConv2d(const Conv2d& src, EngineKind kind, int weight_bits,
                         int act_bits)
    : name_(src.name() + ".q"),
      in_channels_(src.in_channels()),
      out_channels_(src.out_channels()),
      kernel_(src.kernel()),
      stride_(src.stride()),
      pad_(src.pad()),
      patch_(src.in_channels() * src.kernel() * src.kernel()),
      act_bits_(act_bits),
      kind_(kind) {
  // const_cast-free copy: Parameter accessors are non-const, so snapshot
  // through a local mutable reference.
  auto& mutable_src = const_cast<Conv2d&>(src);
  qweight_ = quantize_symmetric(mutable_src.weight().value, weight_bits);
  bias_ = src.has_bias() ? mutable_src.bias().value
                         : Tensor::zeros({out_channels_});
}

QuantConv2d::QuantConv2d(std::string layer_name, int in_channels,
                         int out_channels, int kernel, int stride, int pad,
                         int act_bits, QuantizedTensor qweight, Tensor bias,
                         EngineKind kind, float act_scale)
    : name_(std::move(layer_name)),
      in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      patch_(0),  // set below, after the geometry is range-checked
      act_bits_(act_bits),
      qweight_(std::move(qweight)),
      bias_(std::move(bias)),
      kind_(kind),
      act_scale_(act_scale) {
  YOLOC_CHECK(in_channels_ > 0 && out_channels_ > 0 && kernel_ > 0 &&
                  stride_ > 0 && pad_ >= 0,
              "quant conv restore: bad geometry");
  // 64-bit guard: a hand-edited artifact must not be able to overflow
  // the int patch product before the shape checks run.
  const long long patch_wide = static_cast<long long>(in_channels_) *
                               kernel_ * kernel_;
  YOLOC_CHECK(patch_wide <= std::numeric_limits<int>::max(),
              "quant conv restore: patch size overflow");
  patch_ = static_cast<int>(patch_wide);
  YOLOC_CHECK(act_bits_ >= 1 && act_bits_ <= 8,
              "quant conv restore: bad act_bits");
  YOLOC_CHECK(qweight_.shape == (std::vector<int>{out_channels_, patch_}),
              "quant conv restore: weight shape mismatch");
  YOLOC_CHECK(qweight_.data.size() ==
                  static_cast<std::size_t>(out_channels_) * patch_,
              "quant conv restore: weight payload mismatch");
  YOLOC_CHECK(qweight_.scale > 0.0f, "quant conv restore: bad weight scale");
  YOLOC_CHECK(bias_.size() == static_cast<std::size_t>(out_channels_),
              "quant conv restore: bias size mismatch");
  YOLOC_CHECK(act_scale_ > 0.0f,
              "quant conv restore: uncalibrated activation scale");
}

Tensor QuantConv2d::forward(const Tensor& input, bool /*train*/) {
  YOLOC_CHECK(input.rank() == 4 && input.shape()[1] == in_channels_,
              "quant conv: bad input");
  const int n = input.shape()[0];
  const int oh = conv_out_extent(input.shape()[2], kernel_, stride_, pad_);
  const int ow = conv_out_extent(input.shape()[3], kernel_, stride_, pad_);

  Tensor out({n, out_channels_, oh, ow});
  const int spatial = oh * ow;

  if (calibrating_) {
    // Record range and compute the float reference with dequantized
    // weights (so calibration sees weight-quantization error too).
    for (std::size_t i = 0; i < input.size(); ++i) {
      observed_max_ = std::max(observed_max_, input[i]);
    }
    Tensor cols = im2col(input, kernel_, kernel_, stride_, pad_);
    const int p = cols.shape()[1];
    Tensor wdeq = dequantize(qweight_);
    Tensor out2d = matmul(wdeq, cols);
    for (int ni = 0; ni < n; ++ni) {
      for (int c = 0; c < out_channels_; ++c) {
        const float* src = out2d.data() +
                           static_cast<std::size_t>(c) * p +
                           static_cast<std::size_t>(ni) * spatial;
        float* dst = out.data() + out.index4(ni, c, 0, 0);
        const float b = bias_[static_cast<std::size_t>(c)];
        for (int s = 0; s < spatial; ++s) dst[s] = src[s] + b;
      }
    }
    return out;
  }

  YOLOC_CHECK(is_calibrated(), "quant conv: deploy before calibration");
  ResolvedEngine re = resolve_engine(engine_, kind_, "quant conv");
  MvmScratch* scratch = re.session.scratch;
  LayerTraceSink* trace = re.session.trace;
  std::uint64_t t0 = trace != nullptr ? trace_now_ns() : 0;

  im2col_into(input, kernel_, kernel_, stride_, pad_, scratch->cols);
  const int p = scratch->cols.shape()[1];

  // Quantize the im2col matrix (clamp negatives to zero: wordline pulses
  // are unsigned).
  quantize_unsigned_with_scale_into(scratch->cols, act_scale_, act_bits_,
                                    scratch->qx);
  if (trace != nullptr) {
    const std::uint64_t t1 = trace_now_ns();
    trace->layer_span("im2col", name_.c_str(), kind_, t0, t1);
    t0 = t1;
  }

  scratch->acc.resize(static_cast<std::size_t>(out_channels_) * p);
  re.engine->mvm_batch(qweight_.data.data(), out_channels_, patch_,
                       scratch->qx.data(), p, scratch->acc.data(),
                       re.session);
  if (trace != nullptr) {
    trace->layer_span("mvm", name_.c_str(), kind_, t0, trace_now_ns());
  }

  // Fused dequantize-rescale + bias epilogue: one sequential write pass
  // over the output in memory order, source rows resolved by pointer
  // stride instead of per-element index math.
  const float rescale = qweight_.scale * act_scale_;
  const std::int32_t* acc = scratch->acc.data();
  const float* bias = bias_.data();
  float* dst = out.data();
  for (int ni = 0; ni < n; ++ni) {
    const std::size_t image_off = static_cast<std::size_t>(ni) * spatial;
    for (int c = 0; c < out_channels_; ++c) {
      const std::int32_t* src =
          acc + static_cast<std::size_t>(c) * p + image_off;
      const float b = bias[static_cast<std::size_t>(c)];
      for (int s = 0; s < spatial; ++s) {
        dst[s] = rescale * static_cast<float>(src[s]) + b;
      }
      dst += spatial;
    }
  }
  return out;
}

Tensor QuantConv2d::backward(const Tensor& /*grad_output*/) {
  YOLOC_CHECK(false, "quantized layers are inference-only");
  return {};
}

void QuantConv2d::finalize_calibration() {
  calibrating_ = false;
  const float qmax = static_cast<float>(unsigned_qmax(act_bits_));
  act_scale_ = observed_max_ > 0.0f ? observed_max_ / qmax : 1.0f;
}

QuantLinear::QuantLinear(Linear& src, const MvmEngine& engine, int weight_bits,
                         int act_bits)
    : QuantLinear(src, EngineKind::kDefault, weight_bits, act_bits) {
  engine_ = &engine;
}

QuantLinear::QuantLinear(Linear& src, EngineKind kind, int weight_bits,
                         int act_bits)
    : name_(src.name() + ".q"),
      in_features_(src.in_features()),
      out_features_(src.out_features()),
      act_bits_(act_bits),
      kind_(kind) {
  qweight_ = quantize_symmetric(src.weight().value, weight_bits);
  bias_ = src.has_bias() ? src.bias().value : Tensor::zeros({out_features_});
}

QuantLinear::QuantLinear(std::string layer_name, int in_features,
                         int out_features, int act_bits,
                         QuantizedTensor qweight, Tensor bias, EngineKind kind,
                         float act_scale)
    : name_(std::move(layer_name)),
      in_features_(in_features),
      out_features_(out_features),
      act_bits_(act_bits),
      qweight_(std::move(qweight)),
      bias_(std::move(bias)),
      kind_(kind),
      act_scale_(act_scale) {
  YOLOC_CHECK(in_features_ > 0 && out_features_ > 0,
              "quant linear restore: bad geometry");
  YOLOC_CHECK(act_bits_ >= 1 && act_bits_ <= 8,
              "quant linear restore: bad act_bits");
  YOLOC_CHECK(qweight_.shape == (std::vector<int>{out_features_, in_features_}),
              "quant linear restore: weight shape mismatch");
  YOLOC_CHECK(qweight_.data.size() ==
                  static_cast<std::size_t>(out_features_) * in_features_,
              "quant linear restore: weight payload mismatch");
  YOLOC_CHECK(qweight_.scale > 0.0f, "quant linear restore: bad weight scale");
  YOLOC_CHECK(bias_.size() == static_cast<std::size_t>(out_features_),
              "quant linear restore: bias size mismatch");
  YOLOC_CHECK(act_scale_ > 0.0f,
              "quant linear restore: uncalibrated activation scale");
}

Tensor QuantLinear::forward(const Tensor& input, bool /*train*/) {
  YOLOC_CHECK(input.rank() == 2 && input.shape()[1] == in_features_,
              "quant linear: bad input");
  const int batch = input.shape()[0];
  Tensor out({batch, out_features_});

  if (calibrating_) {
    for (std::size_t i = 0; i < input.size(); ++i) {
      observed_max_ = std::max(observed_max_, input[i]);
    }
    Tensor wdeq = dequantize(qweight_);
    Tensor ref = matmul(input, transpose2d(wdeq));
    for (int b = 0; b < batch; ++b) {
      for (int o = 0; o < out_features_; ++o) {
        out.at2(b, o) = ref.at2(b, o) + bias_[static_cast<std::size_t>(o)];
      }
    }
    return out;
  }

  YOLOC_CHECK(act_scale_ > 0.0f, "quant linear: deploy before calibration");
  ResolvedEngine re = resolve_engine(engine_, kind_, "quant linear");
  MvmScratch* scratch = re.session.scratch;
  LayerTraceSink* trace = re.session.trace;
  const std::uint64_t t0 = trace != nullptr ? trace_now_ns() : 0;

  // X columns = batch entries: engine wants (k x p) with k = features.
  transpose2d_into(input, scratch->xT);
  quantize_unsigned_with_scale_into(scratch->xT, act_scale_, act_bits_,
                                    scratch->qx);
  scratch->acc.resize(static_cast<std::size_t>(out_features_) * batch);
  re.engine->mvm_batch(qweight_.data.data(), out_features_, in_features_,
                       scratch->qx.data(), batch, scratch->acc.data(),
                       re.session);
  if (trace != nullptr) {
    trace->layer_span("mvm", name_.c_str(), kind_, t0, trace_now_ns());
  }
  // Fused rescale + bias epilogue over the (out x batch) accumulator:
  // raw-pointer transpose-write instead of per-element at2 index math.
  const float rescale = qweight_.scale * act_scale_;
  const std::int32_t* acc = scratch->acc.data();
  const float* bias = bias_.data();
  float* dst = out.data();  // (batch x out) row-major
  for (int o = 0; o < out_features_; ++o) {
    const std::int32_t* src = acc + static_cast<std::size_t>(o) * batch;
    const float b = bias[static_cast<std::size_t>(o)];
    for (int bi = 0; bi < batch; ++bi) {
      dst[static_cast<std::size_t>(bi) * out_features_ + o] =
          rescale * static_cast<float>(src[bi]) + b;
    }
  }
  return out;
}

Tensor QuantLinear::backward(const Tensor& /*grad_output*/) {
  YOLOC_CHECK(false, "quantized layers are inference-only");
  return {};
}

void QuantLinear::finalize_calibration() {
  calibrating_ = false;
  const float qmax = static_cast<float>(unsigned_qmax(act_bits_));
  act_scale_ = observed_max_ > 0.0f ? observed_max_ / qmax : 1.0f;
}

namespace {

void fold_batchnorm_into_conv(Conv2d& conv, BatchNorm2d& bn) {
  YOLOC_CHECK(conv.out_channels() == bn.channels(),
              "bn fold: channel mismatch");
  Tensor& w = conv.weight().value;
  const int out_ch = conv.out_channels();
  const int patch = w.shape()[1];
  conv.set_bias_enabled(true);
  Tensor& b = conv.bias().value;
  for (int o = 0; o < out_ch; ++o) {
    const std::size_t oi = static_cast<std::size_t>(o);
    const float g = bn.gamma().value[oi];
    const float mu = bn.running_mean()[oi];
    const float var = bn.running_var()[oi];
    const float beta = bn.beta().value[oi];
    const float scale = g / std::sqrt(var + bn.eps());
    float* wrow = w.data() + oi * static_cast<std::size_t>(patch);
    for (int kk = 0; kk < patch; ++kk) wrow[kk] *= scale;
    b[oi] = (b[oi] - mu) * scale + beta;
  }
}

int fold_batchnorm_rec(Layer& layer) {
  int folds = 0;
  if (auto* seq = dynamic_cast<Sequential*>(&layer)) {
    // Fold pairs first, then recurse into what remains.
    for (std::size_t i = 0; i + 1 < seq->size();) {
      auto* conv = dynamic_cast<Conv2d*>(&seq->at(i));
      auto* bn = dynamic_cast<BatchNorm2d*>(&seq->at(i + 1));
      if (conv != nullptr && bn != nullptr) {
        fold_batchnorm_into_conv(*conv, *bn);
        seq->remove(i + 1);
        ++folds;
      } else {
        ++i;
      }
    }
  }
  for (Layer* child : layer.children()) folds += fold_batchnorm_rec(*child);
  return folds;
}

int quantize_rec(Layer& layer, const MvmEngine& engine, int weight_bits,
                 int act_bits) {
  int replaced = 0;
  const auto children = layer.children();
  for (std::size_t i = 0; i < children.size(); ++i) {
    Layer* child = children[i];
    if (auto* conv = dynamic_cast<Conv2d*>(child)) {
      auto q = std::make_unique<QuantConv2d>(*conv, engine, weight_bits,
                                             act_bits);
      layer.replace_child(i, std::move(q));
      ++replaced;
    } else if (auto* lin = dynamic_cast<Linear*>(child)) {
      auto q =
          std::make_unique<QuantLinear>(*lin, engine, weight_bits, act_bits);
      layer.replace_child(i, std::move(q));
      ++replaced;
    } else {
      replaced += quantize_rec(*child, engine, weight_bits, act_bits);
    }
  }
  return replaced;
}

template <typename Fn>
void for_each_quant_layer(Layer& layer, Fn&& fn) {
  if (auto* qc = dynamic_cast<QuantConv2d*>(&layer)) fn(qc, nullptr);
  if (auto* ql = dynamic_cast<QuantLinear*>(&layer)) fn(nullptr, ql);
  for (Layer* child : layer.children()) {
    for_each_quant_layer(*child, fn);
  }
}

}  // namespace

int fold_batchnorm(Layer& root) { return fold_batchnorm_rec(root); }

void for_each_quantized_layer(
    Layer& root, const std::function<void(QuantConv2d*, QuantLinear*)>& fn) {
  for_each_quant_layer(root, fn);
}

int quantize_network(Layer& root, const MvmEngine& engine, int weight_bits,
                     int act_bits) {
  YOLOC_CHECK(!root.children().empty(),
              "quantize_network: root must be a container");
  return quantize_rec(root, engine, weight_bits, act_bits);
}

void calibrate_quantized(Layer& root, const Tensor& images) {
  for_each_quant_layer(root, [](QuantConv2d* qc, QuantLinear* ql) {
    if (qc != nullptr) qc->set_calibration_mode(true);
    if (ql != nullptr) ql->set_calibration_mode(true);
  });
  (void)root.forward(images, /*train=*/false);
  for_each_quant_layer(root, [](QuantConv2d* qc, QuantLinear* ql) {
    if (qc != nullptr) qc->finalize_calibration();
    if (ql != nullptr) ql->finalize_calibration();
  });
}

int count_quantized_layers(Layer& root) {
  int count = 0;
  for_each_quant_layer(root, [&count](QuantConv2d* qc, QuantLinear* ql) {
    if (qc != nullptr || ql != nullptr) ++count;
  });
  return count;
}

bool quantized_layers_calibrated(Layer& root) {
  bool ok = true;
  for_each_quant_layer(root, [&ok](QuantConv2d* qc, QuantLinear* ql) {
    if (qc != nullptr && !qc->is_calibrated()) ok = false;
    if (ql != nullptr && !ql->is_calibrated()) ok = false;
  });
  return ok;
}

}  // namespace yoloc
