#pragma once
// Layer abstraction for the training substrate.
//
// The paper's ReBranch experiments need real gradient-descent transfer
// learning with *selective freezing* (trunk weights burned into ROM are
// frozen; branch weights in SRAM stay trainable). Each Layer implements
// an explicit backward pass; Parameter carries a `trainable` flag the
// optimizer honours, and a `rom_resident` flag the area model uses to
// split bits between ROM-CiM and SRAM-CiM.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace yoloc {

/// Structural identity of a layer, used by graph transforms and by the
/// deployment-plan serializer (src/runtime/plan_serde.*). The numeric
/// values are part of the on-disk .yolocplan format — never renumber,
/// only append.
enum class LayerKind : std::uint32_t {
  kOpaque = 0,  // layers with no serializable identity (default)
  kSequential = 1,
  kParallelSum = 2,
  kConv2d = 3,
  kLinear = 4,
  kQuantConv2d = 5,
  kQuantLinear = 6,
  kReLU = 7,
  kLeakyReLU = 8,
  kIdentity = 9,
  kFlatten = 10,
  kMaxPool2d = 11,
  kGlobalAvgPool = 12,
  kBatchNorm2d = 13,
};

/// A learnable tensor with its gradient accumulator.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;
  /// Optimizer updates this parameter only when true.
  bool trainable = true;
  /// Deployment hint: true => weights live in ROM-CiM (fixed at tape-out),
  /// false => weights live in SRAM-CiM (reloadable).
  bool rom_resident = false;

  Parameter() = default;
  Parameter(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}

  void zero_grad() { grad.zero(); }
};

/// Base class for all differentiable modules.
///
/// Contract: backward(g) must be called with the gradient of the loss
/// w.r.t. the output of the *most recent* forward(x, /*train=*/true)
/// call, and returns the gradient w.r.t. that call's input. Layers cache
/// whatever they need between the two calls (single-use tape) — but ONLY
/// in train mode: eval-mode forward writes no layer state, so a deployed
/// model can serve concurrent requests (see src/runtime/). Consequently
/// backward after an eval-mode forward is undefined (it reads the tape of
/// the last train-mode forward); gradient consumers must forward with
/// train=true.
class Layer {
 public:
  virtual ~Layer() = default;

  virtual Tensor forward(const Tensor& input, bool train) = 0;
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// All parameters owned by this layer (and its children, recursively).
  virtual std::vector<Parameter*> parameters() { return {}; }

  /// Direct children (containers override). Enables generic graph walks
  /// for freezing, BN folding and quantization.
  virtual std::vector<Layer*> children() { return {}; }
  /// Replace child i (containers override). Used by the network
  /// transformation passes (BN fold, quantization).
  virtual std::unique_ptr<Layer> replace_child(std::size_t /*i*/,
                                               std::unique_ptr<Layer> /*l*/) {
    return nullptr;
  }

  [[nodiscard]] virtual std::string name() const = 0;

  /// Structural identity for graph walks and plan serialization. Layers
  /// that never appear in a serialized deployment plan may keep the
  /// kOpaque default; the serializer fails loudly on them.
  [[nodiscard]] virtual LayerKind kind() const { return LayerKind::kOpaque; }
};

/// Shorthand for the ubiquitous owning pointer.
using LayerPtr = std::unique_ptr<Layer>;

/// Total number of scalar parameters (optionally trainable-only).
std::size_t parameter_count(Layer& layer, bool trainable_only = false);

/// Set `trainable` on every parameter for which pred(param) is true.
template <typename Pred>
void set_trainable_if(Layer& layer, Pred pred, bool trainable) {
  for (Parameter* p : layer.parameters()) {
    if (pred(*p)) p->trainable = trainable;
  }
}

inline std::size_t parameter_count(Layer& layer, bool trainable_only) {
  std::size_t n = 0;
  for (Parameter* p : layer.parameters()) {
    if (!trainable_only || p->trainable) n += p->value.size();
  }
  return n;
}

}  // namespace yoloc
