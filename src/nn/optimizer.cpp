#include "nn/optimizer.hpp"

#include "common/check.hpp"
#include "tensor/ops.hpp"

namespace yoloc {

Sgd::Sgd(std::vector<Parameter*> params, SgdConfig cfg)
    : params_(std::move(params)), cfg_(cfg) {
  velocity_.reserve(params_.size());
  for (Parameter* p : params_) {
    YOLOC_CHECK(p != nullptr, "sgd: null parameter");
    velocity_.emplace_back(p->value.shape());
  }
}

void Sgd::zero_grad() {
  for (Parameter* p : params_) p->zero_grad();
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    if (!p.trainable) continue;
    Tensor& v = velocity_[i];
    float* pv = v.data();
    float* pw = p.value.data();
    const float* pg = p.grad.data();
    for (std::size_t j = 0; j < v.size(); ++j) {
      const float g = pg[j] + cfg_.weight_decay * pw[j];
      pv[j] = cfg_.momentum * pv[j] + g;
      pw[j] -= cfg_.lr * pv[j];
    }
  }
}

}  // namespace yoloc
