#include "nn/activations.hpp"

#include "common/check.hpp"

namespace yoloc {

Tensor ReLU::forward(const Tensor& input, bool train) {
  // The backward tape is only recorded in train mode: eval forward must
  // not write layer state so that concurrent requests can share one
  // deployed model (see src/runtime/).
  Tensor out(input.shape());
  if (train) {
    mask_ = Tensor(input.shape());
    for (std::size_t i = 0; i < input.size(); ++i) {
      const bool on = input[i] > 0.0f;
      mask_[i] = on ? 1.0f : 0.0f;
      out[i] = on ? input[i] : 0.0f;
    }
  } else {
    for (std::size_t i = 0; i < input.size(); ++i) {
      out[i] = input[i] > 0.0f ? input[i] : 0.0f;
    }
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  YOLOC_CHECK(same_shape(grad_output, mask_), "relu: backward shape mismatch");
  Tensor g(grad_output.shape());
  for (std::size_t i = 0; i < g.size(); ++i) g[i] = grad_output[i] * mask_[i];
  return g;
}

LeakyReLU::LeakyReLU(float negative_slope) : slope_(negative_slope) {}

Tensor LeakyReLU::forward(const Tensor& input, bool train) {
  if (train) cached_input_ = input;
  Tensor out(input.shape());
  for (std::size_t i = 0; i < input.size(); ++i) {
    out[i] = input[i] > 0.0f ? input[i] : slope_ * input[i];
  }
  return out;
}

Tensor LeakyReLU::backward(const Tensor& grad_output) {
  YOLOC_CHECK(same_shape(grad_output, cached_input_),
              "leaky_relu: backward shape mismatch");
  Tensor g(grad_output.shape());
  for (std::size_t i = 0; i < g.size(); ++i) {
    g[i] = grad_output[i] * (cached_input_[i] > 0.0f ? 1.0f : slope_);
  }
  return g;
}

Tensor Identity::forward(const Tensor& input, bool /*train*/) { return input; }

Tensor Identity::backward(const Tensor& grad_output) { return grad_output; }

Tensor Flatten::forward(const Tensor& input, bool train) {
  YOLOC_CHECK(input.rank() >= 2, "flatten: rank >= 2 required");
  if (train) input_shape_ = input.shape();
  int features = 1;
  for (int a = 1; a < input.rank(); ++a) features *= input.shape()[a];
  return input.reshaped({input.shape()[0], features});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  YOLOC_CHECK(!input_shape_.empty(), "flatten: backward before forward");
  return grad_output.reshaped(input_shape_);
}

}  // namespace yoloc
