#pragma once
// Composite layers.
//
// Sequential chains sub-layers; ParallelSum evaluates sub-layers on the
// same input and sums their outputs — exactly the trunk + branch wiring
// of ReBranch (paper Fig. 7) and, with an Identity branch, the classic
// ResNet skip connection.

#include <memory>

#include "nn/layer.hpp"

namespace yoloc {

class Sequential final : public Layer {
 public:
  Sequential() = default;
  explicit Sequential(std::string layer_name) : name_(std::move(layer_name)) {}

  /// Append a layer; returns *this for fluent building.
  Sequential& add(LayerPtr layer);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::vector<Layer*> children() override;
  std::unique_ptr<Layer> replace_child(std::size_t i, LayerPtr l) override;
  [[nodiscard]] std::string name() const override {
    return name_.empty() ? "sequential" : name_;
  }
  [[nodiscard]] LayerKind kind() const override {
    return LayerKind::kSequential;
  }

  [[nodiscard]] std::size_t size() const { return layers_.size(); }
  [[nodiscard]] Layer& at(std::size_t i) { return *layers_.at(i); }
  /// Remove child i (used by the BatchNorm folding pass).
  LayerPtr remove(std::size_t i);

 private:
  std::string name_;
  std::vector<LayerPtr> layers_;
};

/// Sum of parallel branches applied to the same input. All branches must
/// produce identically-shaped outputs.
class ParallelSum final : public Layer {
 public:
  explicit ParallelSum(std::string layer_name = "parallel_sum")
      : name_(std::move(layer_name)) {}

  ParallelSum& add_branch(LayerPtr branch);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::vector<Layer*> children() override;
  std::unique_ptr<Layer> replace_child(std::size_t i, LayerPtr l) override;
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] LayerKind kind() const override {
    return LayerKind::kParallelSum;
  }

  [[nodiscard]] std::size_t branch_count() const { return branches_.size(); }
  [[nodiscard]] Layer& branch(std::size_t i) { return *branches_.at(i); }

 private:
  std::string name_;
  std::vector<LayerPtr> branches_;
};

/// ResNet basic residual wrapper: out = inner(x) + x.
LayerPtr make_residual(LayerPtr inner, std::string name = "residual");

}  // namespace yoloc
