#pragma once
// Spatial pooling layers (NCHW).

#include "nn/layer.hpp"

namespace yoloc {

/// Max pooling with square window and stride == window (the DarkNet /
/// VGG configuration).
class MaxPool2d final : public Layer {
 public:
  explicit MaxPool2d(int window);
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "maxpool"; }
  [[nodiscard]] LayerKind kind() const override {
    return LayerKind::kMaxPool2d;
  }
  [[nodiscard]] int window() const { return window_; }

 private:
  int window_;
  std::vector<int> input_shape_;
  std::vector<std::size_t> argmax_;  // flat input index per output element
};

/// Global average pool: (N,C,H,W) -> (N,C).
class GlobalAvgPool final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "gap"; }
  [[nodiscard]] LayerKind kind() const override {
    return LayerKind::kGlobalAvgPool;
  }

 private:
  std::vector<int> input_shape_;
};

}  // namespace yoloc
