#include "nn/conv2d.hpp"

#include <cmath>

#include "common/check.hpp"
#include "tensor/ops.hpp"

namespace yoloc {

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, int stride,
               int pad, bool bias, Rng& rng, std::string layer_name)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad < 0 ? kernel / 2 : pad),
      has_bias_(bias),
      name_(std::move(layer_name)) {
  YOLOC_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0 && stride > 0,
              "conv2d: bad geometry");
  const int fan_in = in_channels * kernel * kernel;
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  weight_ = Parameter(name_ + ".weight",
                      Tensor::randn({out_channels, fan_in}, rng, stddev));
  bias_ = Parameter(name_ + ".bias", Tensor::zeros({out_channels}));
}

Tensor Conv2d::forward(const Tensor& input, bool /*train*/) {
  YOLOC_CHECK(input.rank() == 4, "conv2d: NCHW input required");
  YOLOC_CHECK(input.shape()[1] == in_channels_,
              "conv2d: input channel mismatch");
  input_shape_ = input.shape();
  const int n = input.shape()[0];
  const int oh = conv_out_extent(input.shape()[2], kernel_, stride_, pad_);
  const int ow = conv_out_extent(input.shape()[3], kernel_, stride_, pad_);

  cached_cols_ = im2col(input, kernel_, kernel_, stride_, pad_);
  // (out_ch x patch) * (patch x n*oh*ow) -> (out_ch x n*oh*ow)
  Tensor out2d = matmul(weight_.value, cached_cols_);

  Tensor out({n, out_channels_, oh, ow});
  const int spatial = oh * ow;
  for (int ni = 0; ni < n; ++ni) {
    for (int c = 0; c < out_channels_; ++c) {
      const float b = has_bias_ ? bias_.value[static_cast<std::size_t>(c)]
                                : 0.0f;
      const float* src = out2d.data() +
                         static_cast<std::size_t>(c) * n * spatial +
                         static_cast<std::size_t>(ni) * spatial;
      float* dst = out.data() + out.index4(ni, c, 0, 0);
      for (int s = 0; s < spatial; ++s) dst[s] = src[s] + b;
    }
  }
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  YOLOC_CHECK(!input_shape_.empty(), "conv2d: backward before forward");
  YOLOC_CHECK(grad_output.rank() == 4 &&
                  grad_output.shape()[1] == out_channels_,
              "conv2d: grad_output shape mismatch");
  const int n = grad_output.shape()[0];
  const int oh = grad_output.shape()[2];
  const int ow = grad_output.shape()[3];
  const int spatial = oh * ow;

  // Re-pack grad_output NCHW -> (out_ch x n*oh*ow) matching forward's 2-D
  // layout (channel-major rows, batch-major columns).
  Tensor g2d({out_channels_, n * spatial});
  for (int ni = 0; ni < n; ++ni) {
    for (int c = 0; c < out_channels_; ++c) {
      const float* src = grad_output.data() + grad_output.index4(ni, c, 0, 0);
      float* dst = g2d.data() + static_cast<std::size_t>(c) * n * spatial +
                   static_cast<std::size_t>(ni) * spatial;
      for (int s = 0; s < spatial; ++s) dst[s] = src[s];
    }
  }

  // dL/dW = g2d * cols^T; accumulate into .grad (optimizer zeroes it).
  Tensor w_grad = matmul(g2d, transpose2d(cached_cols_));
  add_inplace(weight_.grad, w_grad);

  if (has_bias_) {
    for (int c = 0; c < out_channels_; ++c) {
      double acc = 0.0;
      const float* row = g2d.data() + static_cast<std::size_t>(c) * n * spatial;
      for (int s = 0; s < n * spatial; ++s) acc += row[s];
      bias_.grad[static_cast<std::size_t>(c)] += static_cast<float>(acc);
    }
  }

  // dL/dX = col2im(W^T * g2d).
  Tensor cols_grad = matmul(transpose2d(weight_.value), g2d);
  return col2im(cols_grad, input_shape_, kernel_, kernel_, stride_, pad_);
}

std::vector<Parameter*> Conv2d::parameters() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

LayerPtr make_pointwise(int in_channels, int out_channels, Rng& rng,
                        std::string name) {
  return std::make_unique<Conv2d>(in_channels, out_channels, /*kernel=*/1,
                                  /*stride=*/1, /*pad=*/0, /*bias=*/false, rng,
                                  std::move(name));
}

}  // namespace yoloc
