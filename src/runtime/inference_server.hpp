#pragma once
// Serving front-end over a shared DeploymentPlan — a thin facade over
// the scheduling subsystem in src/serve/.
//
// Historically this class owned its own FIFO queue and fixed
// micro-batching worker pool; that logic now lives in serve::Scheduler
// (continuous batching, priority classes, deadlines, telemetry). The
// facade keeps the original submit()/infer() surface — existing callers
// see identical behavior for plain traffic — while exposing the
// scheduler for callers that want priorities, deadlines, or the full
// metrics snapshot.
//
// Determinism: with max_microbatch = 1 and single-class traffic,
// request i is bit-identical to a serial ExecutionContext run seeded
// noise_seed + i — outputs AND merged stat sums — independent of worker
// count or scheduling (see the contract note in serve/scheduler.hpp).

#include <cstdint>
#include <future>

#include "serve/scheduler.hpp"

namespace yoloc {

struct ServerOptions {
  /// Worker threads. 0 = parallel_workers() (which honours YOLOC_THREADS).
  int workers = 0;
  /// Max requests fused into one forward pass.
  int max_microbatch = 8;
  /// Base noise seed; batches derive their stream from it.
  std::uint64_t noise_seed = 2024;
  /// Per-request tracing sample rate in [0, 1]; 0 (default) disables
  /// collection entirely. See SchedulerOptions::trace_sampling.
  double trace_sampling = 0.0;
};

/// Aggregate served-work counters, kept for existing callers; the full
/// per-class latency/occupancy telemetry lives in metrics_snapshot().
struct ServerMetrics {
  // Successfully served work only; failed_requests aggregates execution
  // failures, deadline expiries and admission rejections so throughput /
  // energy-per-image figures are not skewed by work that produced no
  // output.
  std::uint64_t requests = 0;
  std::uint64_t images = 0;
  std::uint64_t batches = 0;
  std::uint64_t failed_requests = 0;
  [[nodiscard]] double avg_microbatch() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(requests) /
                              static_cast<double>(batches);
  }
};

class InferenceServer {
 public:
  /// For full scheduler control (priority lanes, deadlines, admission
  /// caps) construct a serve::Scheduler directly instead.
  explicit InferenceServer(const DeploymentPlan& plan,
                           ServerOptions options = {});
  ~InferenceServer() = default;  // Scheduler drains the queue, then joins

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueue one request (rank-4 NCHW, any leading batch extent >= 1)
  /// into the default (batch) priority lane. The future yields the model
  /// output for exactly that input.
  std::future<Tensor> submit(Tensor images);

  /// Enqueue with explicit scheduling hints (priority class, deadline).
  std::future<Tensor> submit(Tensor images, SubmitOptions options);

  /// Synchronous convenience: split `images` into per-image requests,
  /// serve them all, and re-stack the outputs in submission order.
  Tensor infer(const Tensor& images);

  /// Block until every accepted request has completed — futures
  /// fulfilled AND stats/metrics accounting settled. Futures become
  /// ready slightly before the accounting, so call this before reading
  /// stats/metrics when you need a consistent snapshot.
  void wait_idle();

  /// Merged macro activity across completed batches (deterministic
  /// batch-formation-order merge).
  [[nodiscard]] MacroRunStats rom_stats() const;
  [[nodiscard]] MacroRunStats sram_stats() const;
  [[nodiscard]] double total_energy_pj() const;
  void reset_stats();

  /// Legacy aggregate counters (derived from the metrics snapshot).
  [[nodiscard]] ServerMetrics metrics() const;
  /// Full telemetry: per-class latency quantiles, queue depths, batch
  /// occupancy, rolling throughput. JSON via MetricsSnapshot::to_json().
  [[nodiscard]] MetricsSnapshot metrics_snapshot() const;
  /// Prometheus text exposition of the same snapshot (see
  /// docs/serving.md for every metric name, type and meaning).
  [[nodiscard]] std::string to_prometheus() const {
    return scheduler_.to_prometheus();
  }

  /// Tracing passthroughs (active when ServerOptions::trace_sampling
  /// > 0): chrome://tracing JSON of the sampled requests so far.
  [[nodiscard]] std::string trace_json() const {
    return scheduler_.trace_json();
  }
  void write_trace(const std::string& path) const {
    scheduler_.write_trace(path);
  }

  [[nodiscard]] int worker_count() const { return scheduler_.worker_count(); }
  [[nodiscard]] Scheduler& scheduler() { return scheduler_; }
  [[nodiscard]] const Scheduler& scheduler() const { return scheduler_; }

 private:
  Scheduler scheduler_;
};

}  // namespace yoloc
