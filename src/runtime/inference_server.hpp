#pragma once
// Batched multi-threaded serving front-end over a shared DeploymentPlan.
//
// Requests enter a FIFO queue; each worker thread owns one
// ExecutionContext and repeatedly forms a micro-batch (up to
// max_microbatch queued requests with matching image geometry), stacks
// the inputs, runs ONE forward pass through the plan, and scatters the
// outputs back to the per-request futures. Batching amortizes the
// per-layer engine dispatch; worker parallelism exploits host cores the
// way a mixed ROM+SRAM chip exploits concurrently active macros.
//
// Determinism: each micro-batch executes on a context reseeded with
// noise_seed + id of its first request, and per-batch stats merge into
// the server totals in batch-formation order. With max_microbatch = 1
// that makes request i bit-identical to a serial ExecutionContext run
// seeded noise_seed + i — including the merged stat sums — independent
// of worker count or scheduling. With max_microbatch > 1 and multiple
// workers, batch COMPOSITION depends on scheduling, so analog-mode
// outputs and stat totals can vary run to run (exact-cost outputs stay
// bit-exact; only the noise-stream alignment and double-summation order
// move). Pin max_microbatch = 1 when reproducibility matters more than
// throughput.
//
// Workers wrap themselves in ParallelSerialGuard: inner tensor kernels run
// inline, because parallelism is already spent at the request level.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/execution_context.hpp"

namespace yoloc {

struct ServerOptions {
  /// Worker threads. 0 = parallel_workers() (which honours YOLOC_THREADS).
  int workers = 0;
  /// Max requests fused into one forward pass.
  int max_microbatch = 8;
  /// Base noise seed; micro-batches derive their stream from it.
  std::uint64_t noise_seed = 2024;
};

struct ServerMetrics {
  // Successfully served work only; a batch whose forward throws counts
  // solely under failed_requests so throughput / energy-per-image
  // figures are not skewed by work that produced no output.
  std::uint64_t requests = 0;
  std::uint64_t images = 0;
  std::uint64_t batches = 0;
  std::uint64_t failed_requests = 0;
  [[nodiscard]] double avg_microbatch() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(requests) /
                              static_cast<double>(batches);
  }
};

class InferenceServer {
 public:
  explicit InferenceServer(const DeploymentPlan& plan,
                           ServerOptions options = {});
  /// Drains the queue, then joins the workers.
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueue one request (rank-4 NCHW, any leading batch extent >= 1).
  /// The future yields the model output for exactly that input.
  std::future<Tensor> submit(Tensor images);

  /// Synchronous convenience: split `images` into per-image requests,
  /// serve them all, and re-stack the outputs in submission order.
  Tensor infer(const Tensor& images);

  /// Block until every accepted request has completed — futures
  /// fulfilled AND stats/metrics accounting settled. Futures become
  /// ready slightly before the accounting, so call this before reading
  /// stats/metrics when you need a consistent snapshot.
  void wait_idle();

  /// Merged macro activity across completed micro-batches (deterministic
  /// batch-order merge).
  [[nodiscard]] MacroRunStats rom_stats() const;
  [[nodiscard]] MacroRunStats sram_stats() const;
  [[nodiscard]] double total_energy_pj() const;
  void reset_stats();

  [[nodiscard]] ServerMetrics metrics() const;
  [[nodiscard]] int worker_count() const {
    return static_cast<int>(threads_.size());
  }

 private:
  struct Request {
    Tensor input;
    std::promise<Tensor> promise;
    std::uint64_t id = 0;
  };
  struct BatchStats {
    MacroRunStats rom;
    MacroRunStats sram;
  };

  void worker_loop();

  const DeploymentPlan* plan_;
  ServerOptions options_;
  std::vector<std::thread> threads_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<Request> queue_;
  bool stop_ = false;
  std::uint64_t next_request_id_ = 0;
  std::uint64_t next_batch_id_ = 0;
  std::uint64_t next_merge_id_ = 0;
  int in_flight_ = 0;
  std::map<std::uint64_t, BatchStats> pending_stats_;
  MacroRunStats rom_total_;
  MacroRunStats sram_total_;
  ServerMetrics metrics_;
};

}  // namespace yoloc
