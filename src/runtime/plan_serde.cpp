#include "runtime/plan_serde.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "common/binio.hpp"
#include "common/check.hpp"
#include "common/crc32.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/container.hpp"
#include "nn/pooling.hpp"
#include "nn/quantize.hpp"
#include "tensor/tensor_io.hpp"

namespace yoloc {

namespace {

constexpr std::uint8_t kMagic[8] = {'Y', 'O', 'L', 'O', 'C', 'P', 'L', 'N'};
constexpr std::uint32_t kSectionOptions = 1;
constexpr std::uint32_t kSectionGraph = 2;
constexpr std::uint32_t kSectionCanary = 3;
constexpr std::size_t kTableEntryBytes = 4 + 8 + 8 + 4;
constexpr int kMaxGraphDepth = 64;
constexpr int kMaxCanaryProbes = 64;

// ------------------------------------------------------------- options

void write_macro_config(ByteWriter& w, const MacroConfig& cfg,
                        std::uint32_t version) {
  w.u32(static_cast<std::uint32_t>(cfg.kind));
  const auto& g = cfg.geometry;
  w.i32(g.rows);
  w.i32(g.cols);
  w.i32(g.subarrays);
  w.i32(g.adc_per_subarray);
  w.i32(g.adc_bits);
  w.i32(g.weight_bits);
  w.i32(g.input_bits);
  w.i32(g.rows_per_activation);
  w.f64(g.clock_ns);
  w.f64(cfg.bitline.c_bl_ff);
  w.f64(cfg.bitline.v_precharge);
  w.f64(cfg.bitline.v_floor);
  w.f64(cfg.bitline.i_cell_ua);
  w.f64(cfg.bitline.t_pulse_ns);
  w.f64(cfg.bitline.sigma_cell);
  w.i32(cfg.adc.bits);
  w.f64(cfg.adc.v_lo);
  w.f64(cfg.adc.v_hi);
  w.f64(cfg.adc.noise_sigma_v);
  w.f64(cfg.adc.energy_pj);
  w.f64(cfg.adc.t_conv_ns);
  w.f64(cfg.energy.wl_pulse_pj);
  w.f64(cfg.energy.shift_add_pj);
  w.f64(cfg.energy.dac_driver_pj);
  w.f64(cfg.area.cell_area_um2);
  w.f64(cfg.area.adc_area_um2);
  w.f64(cfg.area.driver_area_per_row_um2);
  w.f64(cfg.area.shift_add_area_um2);
  w.f64(cfg.area.macro_overhead_um2);
  w.f64(cfg.write_energy_pj_per_bit);
  w.f64(cfg.write_bandwidth_bits_per_ns);
  w.f64(cfg.standby_power_uw);
  if (version >= 2) {
    w.u64(cfg.faults.seed);
    w.f64(cfg.faults.stuck_at_zero_rate);
    w.f64(cfg.faults.stuck_at_one_rate);
    w.f64(cfg.faults.transient_flip_rate);
    w.f64(cfg.faults.adc_offset_max);
    w.f64(cfg.faults.adc_gain_max);
    w.u32(cfg.faults.start_active ? 1 : 0);
  }
}

MacroConfig read_macro_config(ByteReader& r, std::uint32_t version) {
  MacroConfig cfg;
  const std::uint32_t kind = r.u32();
  YOLOC_CHECK(kind <= static_cast<std::uint32_t>(MacroKind::kSram),
              "plan: unknown macro kind");
  cfg.kind = static_cast<MacroKind>(kind);
  auto& g = cfg.geometry;
  g.rows = r.i32();
  g.cols = r.i32();
  g.subarrays = r.i32();
  g.adc_per_subarray = r.i32();
  g.adc_bits = r.i32();
  g.weight_bits = r.i32();
  g.input_bits = r.i32();
  g.rows_per_activation = r.i32();
  g.clock_ns = r.f64();
  cfg.bitline.c_bl_ff = r.f64();
  cfg.bitline.v_precharge = r.f64();
  cfg.bitline.v_floor = r.f64();
  cfg.bitline.i_cell_ua = r.f64();
  cfg.bitline.t_pulse_ns = r.f64();
  cfg.bitline.sigma_cell = r.f64();
  cfg.adc.bits = r.i32();
  cfg.adc.v_lo = r.f64();
  cfg.adc.v_hi = r.f64();
  cfg.adc.noise_sigma_v = r.f64();
  cfg.adc.energy_pj = r.f64();
  cfg.adc.t_conv_ns = r.f64();
  cfg.energy.wl_pulse_pj = r.f64();
  cfg.energy.shift_add_pj = r.f64();
  cfg.energy.dac_driver_pj = r.f64();
  cfg.area.cell_area_um2 = r.f64();
  cfg.area.adc_area_um2 = r.f64();
  cfg.area.driver_area_per_row_um2 = r.f64();
  cfg.area.shift_add_area_um2 = r.f64();
  cfg.area.macro_overhead_um2 = r.f64();
  cfg.write_energy_pj_per_bit = r.f64();
  cfg.write_bandwidth_bits_per_ns = r.f64();
  cfg.standby_power_uw = r.f64();
  if (version >= 2) {
    cfg.faults.seed = r.u64();
    cfg.faults.stuck_at_zero_rate = r.f64();
    cfg.faults.stuck_at_one_rate = r.f64();
    cfg.faults.transient_flip_rate = r.f64();
    cfg.faults.adc_offset_max = r.f64();
    cfg.faults.adc_gain_max = r.f64();
    const std::uint32_t active = r.u32();
    YOLOC_CHECK(active <= 1, "plan: bad fault start_active flag");
    cfg.faults.start_active = active == 1;
  }
  return cfg;
}

struct OptionsSection {
  DeploymentOptions options;
  int quantized_layers = 0;
};

void write_options(ByteWriter& w, const DeploymentPlan& plan,
                   std::uint32_t version) {
  const DeploymentOptions& o = plan.options();
  w.i32(o.weight_bits);
  w.i32(o.act_bits);
  w.u32(static_cast<std::uint32_t>(o.mode));
  w.i32(plan.quantized_layer_count());
  write_macro_config(w, o.rom_macro, version);
  write_macro_config(w, o.sram_macro, version);
}

OptionsSection read_options(ByteReader& r, std::uint32_t version) {
  OptionsSection s;
  s.options.weight_bits = r.i32();
  s.options.act_bits = r.i32();
  const std::uint32_t mode = r.u32();
  YOLOC_CHECK(
      mode <= static_cast<std::uint32_t>(MacroMvmEngine::Mode::kExactCost),
      "plan: unknown engine mode");
  s.options.mode = static_cast<MacroMvmEngine::Mode>(mode);
  s.quantized_layers = r.i32();
  s.options.rom_macro = read_macro_config(r, version);
  s.options.sram_macro = read_macro_config(r, version);
  return s;
}

// ------------------------------------------------------------- canaries

void write_canaries(ByteWriter& w, const CanarySuite& suite) {
  w.u32(static_cast<std::uint32_t>(suite.probes.size()));
  for (const CanaryProbe& p : suite.probes) {
    w.u64(p.seed);
    write_tensor(w, p.input);
    write_tensor(w, p.golden);
  }
}

CanarySuite read_canaries(ByteReader& r) {
  CanarySuite suite;
  const std::uint32_t n = r.u32();
  YOLOC_CHECK(n >= 1 && n <= kMaxCanaryProbes,
              "plan: bad canary probe count");
  suite.probes.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    CanaryProbe p;
    p.seed = r.u64();
    p.input = read_tensor(r);
    p.golden = read_tensor(r);
    YOLOC_CHECK(!p.input.empty() && !p.golden.empty(),
                "plan: empty canary tensor");
    suite.probes.push_back(std::move(p));
  }
  return suite;
}

// --------------------------------------------------------------- graph

std::uint32_t engine_kind_tag(EngineKind kind, const std::string& name) {
  YOLOC_CHECK(kind == EngineKind::kRom || kind == EngineKind::kSram,
              "plan serde: layer '" + name +
                  "' is direct-bound (kDefault); only kind-tagged "
                  "deployment lowerings are serializable");
  return static_cast<std::uint32_t>(kind);
}

EngineKind read_engine_kind(ByteReader& r) {
  const std::uint32_t tag = r.u32();
  YOLOC_CHECK(tag == static_cast<std::uint32_t>(EngineKind::kRom) ||
                  tag == static_cast<std::uint32_t>(EngineKind::kSram),
              "plan: bad engine residency tag");
  return static_cast<EngineKind>(tag);
}

void write_layer(ByteWriter& w, Layer& layer) {
  const LayerKind kind = layer.kind();
  w.u32(static_cast<std::uint32_t>(kind));
  switch (kind) {
    case LayerKind::kSequential: {
      auto& seq = static_cast<Sequential&>(layer);
      w.str(seq.name());
      w.u32(static_cast<std::uint32_t>(seq.size()));
      for (std::size_t i = 0; i < seq.size(); ++i) {
        write_layer(w, seq.at(i));
      }
      return;
    }
    case LayerKind::kParallelSum: {
      auto& par = static_cast<ParallelSum&>(layer);
      w.str(par.name());
      w.u32(static_cast<std::uint32_t>(par.branch_count()));
      for (std::size_t i = 0; i < par.branch_count(); ++i) {
        write_layer(w, par.branch(i));
      }
      return;
    }
    case LayerKind::kQuantConv2d: {
      auto& q = static_cast<QuantConv2d&>(layer);
      YOLOC_CHECK(q.is_calibrated(),
                  "plan serde: uncalibrated quant conv '" + q.name() + "'");
      w.str(q.name());
      w.i32(q.in_channels());
      w.i32(q.out_channels());
      w.i32(q.kernel());
      w.i32(q.stride());
      w.i32(q.pad());
      w.i32(q.act_bits());
      w.u32(engine_kind_tag(q.engine_kind(), q.name()));
      w.f32(q.act_scale());
      write_quantized_tensor(w, q.weights());
      write_tensor(w, q.bias());
      return;
    }
    case LayerKind::kQuantLinear: {
      auto& q = static_cast<QuantLinear&>(layer);
      YOLOC_CHECK(q.is_calibrated(),
                  "plan serde: uncalibrated quant linear '" + q.name() + "'");
      w.str(q.name());
      w.i32(q.in_features());
      w.i32(q.out_features());
      w.i32(q.act_bits());
      w.u32(engine_kind_tag(q.engine_kind(), q.name()));
      w.f32(q.act_scale());
      write_quantized_tensor(w, q.weights());
      write_tensor(w, q.bias());
      return;
    }
    case LayerKind::kBatchNorm2d: {
      // A BN that is not conv-adjacent survives folding; serialize its
      // eval-mode state (affine params + running estimates).
      auto& bn = static_cast<BatchNorm2d&>(layer);
      w.str(bn.name());
      w.i32(bn.channels());
      w.f32(bn.eps());
      w.f32(bn.momentum());
      write_tensor(w, bn.gamma().value);
      write_tensor(w, bn.beta().value);
      write_tensor(w, bn.running_mean());
      write_tensor(w, bn.running_var());
      return;
    }
    case LayerKind::kLeakyReLU:
      w.f32(static_cast<LeakyReLU&>(layer).negative_slope());
      return;
    case LayerKind::kMaxPool2d:
      w.i32(static_cast<MaxPool2d&>(layer).window());
      return;
    case LayerKind::kReLU:
    case LayerKind::kIdentity:
    case LayerKind::kFlatten:
    case LayerKind::kGlobalAvgPool:
      return;  // stateless — the tag is the whole payload
    case LayerKind::kConv2d:
    case LayerKind::kLinear:
    case LayerKind::kOpaque:
      break;
  }
  YOLOC_CHECK(false, "plan serde: layer '" + layer.name() +
                         "' is not serializable — deployment plans must "
                         "be fully lowered (no float Conv2d/Linear, no "
                         "opaque layers)");
}

LayerPtr read_layer(ByteReader& r, int depth) {
  YOLOC_CHECK(depth <= kMaxGraphDepth, "plan: graph nesting too deep");
  const std::uint32_t tag = r.u32();
  switch (static_cast<LayerKind>(tag)) {
    case LayerKind::kSequential: {
      auto seq = std::make_unique<Sequential>(r.str());
      const std::uint32_t n = r.u32();
      for (std::uint32_t i = 0; i < n; ++i) {
        seq->add(read_layer(r, depth + 1));
      }
      return seq;
    }
    case LayerKind::kParallelSum: {
      auto par = std::make_unique<ParallelSum>(r.str());
      const std::uint32_t n = r.u32();
      for (std::uint32_t i = 0; i < n; ++i) {
        par->add_branch(read_layer(r, depth + 1));
      }
      return par;
    }
    case LayerKind::kQuantConv2d: {
      std::string name = r.str();
      const int in_ch = r.i32();
      const int out_ch = r.i32();
      const int kernel = r.i32();
      const int stride = r.i32();
      const int pad = r.i32();
      const int act_bits = r.i32();
      const EngineKind engine = read_engine_kind(r);
      const float act_scale = r.f32();
      QuantizedTensor qweight = read_quantized_tensor(r);
      Tensor bias = read_tensor(r);
      return std::make_unique<QuantConv2d>(
          std::move(name), in_ch, out_ch, kernel, stride, pad, act_bits,
          std::move(qweight), std::move(bias), engine, act_scale);
    }
    case LayerKind::kQuantLinear: {
      std::string name = r.str();
      const int in_features = r.i32();
      const int out_features = r.i32();
      const int act_bits = r.i32();
      const EngineKind engine = read_engine_kind(r);
      const float act_scale = r.f32();
      QuantizedTensor qweight = read_quantized_tensor(r);
      Tensor bias = read_tensor(r);
      return std::make_unique<QuantLinear>(
          std::move(name), in_features, out_features, act_bits,
          std::move(qweight), std::move(bias), engine, act_scale);
    }
    case LayerKind::kBatchNorm2d: {
      std::string name = r.str();
      const int channels = r.i32();
      const float eps = r.f32();
      const float momentum = r.f32();
      YOLOC_CHECK(channels > 0, "plan: bad BN channel count");
      auto bn = std::make_unique<BatchNorm2d>(channels, eps, momentum,
                                              std::move(name));
      const std::vector<int> want{channels};
      for (Tensor* dst : {&bn->gamma().value, &bn->beta().value,
                          &bn->running_mean(), &bn->running_var()}) {
        Tensor t = read_tensor(r);
        YOLOC_CHECK(t.shape() == want, "plan: BN tensor shape mismatch");
        *dst = std::move(t);
      }
      return bn;
    }
    case LayerKind::kLeakyReLU:
      return std::make_unique<LeakyReLU>(r.f32());
    case LayerKind::kMaxPool2d: {
      const int window = r.i32();
      YOLOC_CHECK(window > 0, "plan: bad maxpool window");
      return std::make_unique<MaxPool2d>(window);
    }
    case LayerKind::kReLU:
      return std::make_unique<ReLU>();
    case LayerKind::kIdentity:
      return std::make_unique<Identity>();
    case LayerKind::kFlatten:
      return std::make_unique<Flatten>();
    case LayerKind::kGlobalAvgPool:
      return std::make_unique<GlobalAvgPool>();
    case LayerKind::kConv2d:
    case LayerKind::kLinear:
    case LayerKind::kOpaque:
      break;
  }
  YOLOC_CHECK(false, "plan: unknown layer kind tag");
  return nullptr;
}

// ------------------------------------------------------------ assembly

struct Section {
  std::uint32_t id;
  std::vector<std::uint8_t> payload;
};

std::vector<std::uint8_t> assemble(const std::vector<Section>& sections,
                                   std::uint32_t version) {
  ByteWriter out;
  out.bytes(kMagic, sizeof(kMagic));
  out.u32(version);
  out.u32(static_cast<std::uint32_t>(sections.size()));
  std::uint64_t offset = sizeof(kMagic) + 4 + 4 +
                         sections.size() * kTableEntryBytes;
  for (const Section& s : sections) {
    out.u32(s.id);
    out.u64(offset);
    out.u64(s.payload.size());
    out.u32(crc32(s.payload.data(), s.payload.size()));
    offset += s.payload.size();
  }
  for (const Section& s : sections) {
    out.bytes(s.payload.data(), s.payload.size());
  }
  return out.take();
}

}  // namespace

const char* plan_section_name(std::uint32_t id) {
  switch (id) {
    case kSectionOptions:
      return "OPTIONS";
    case kSectionGraph:
      return "GRAPH";
    case kSectionCanary:
      return "CANARY";
    default:
      return "unknown";
  }
}

PlanArtifactInfo inspect_plan(const std::uint8_t* data, std::size_t size) {
  YOLOC_CHECK(data != nullptr && size >= sizeof(kMagic) + 8,
              "plan: truncated header");
  YOLOC_CHECK(std::memcmp(data, kMagic, sizeof(kMagic)) == 0,
              "plan: bad magic (not a .yolocplan artifact)");
  ByteReader header(data, size);
  std::uint8_t magic_skip[sizeof(kMagic)];
  header.bytes(magic_skip, sizeof(kMagic));

  PlanArtifactInfo info;
  info.file_bytes = size;
  info.version = header.u32();
  YOLOC_CHECK(info.version >= kPlanFormatMinVersion &&
                  info.version <= kPlanFormatVersion,
              "plan: unsupported format version");
  const std::uint32_t nsec = header.u32();
  YOLOC_CHECK(nsec >= 1 && nsec <= 64, "plan: bad section count");
  YOLOC_CHECK(size - header.offset() >= nsec * kTableEntryBytes,
              "plan: truncated section table");
  info.sections.reserve(nsec);
  for (std::uint32_t i = 0; i < nsec; ++i) {
    PlanSectionInfo s;
    s.id = header.u32();
    s.offset = header.u64();
    s.size = header.u64();
    s.crc32_value = header.u32();
    YOLOC_CHECK(s.offset <= size && s.size <= size - s.offset,
                "plan: section out of bounds");
    s.crc_ok = crc32(data + s.offset, s.size) == s.crc32_value;
    info.sections.push_back(s);
  }
  return info;
}

PlanArtifactInfo inspect_plan_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  YOLOC_CHECK(in.good(), "inspect_plan: cannot open '" + path + "'");
  const std::streamsize size = in.tellg();
  YOLOC_CHECK(size > 0, "inspect_plan: empty artifact '" + path + "'");
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  YOLOC_CHECK(in.gcount() == size,
              "inspect_plan: short read on '" + path + "'");
  return inspect_plan(bytes.data(), bytes.size());
}

std::vector<std::uint8_t> serialize_plan(const DeploymentPlan& plan) {
  // Version-adaptive: plans using no v2 feature serialize as version 1,
  // byte-identical to pre-fault-framework artifacts (pinned by the serde
  // golden fixture).
  const bool v2 = plan.options().rom_macro.faults.any() ||
                  plan.options().sram_macro.faults.any() ||
                  !plan.canaries().empty();
  const std::uint32_t version = v2 ? 2 : 1;

  ByteWriter options;
  write_options(options, plan, version);

  // The graph walk only reads (getters + children); model() is non-const
  // purely to keep shared holders of a const plan& from mutating it.
  ByteWriter graph;
  write_layer(graph, const_cast<DeploymentPlan&>(plan).model());

  std::vector<Section> sections;
  sections.push_back({kSectionOptions, options.take()});
  sections.push_back({kSectionGraph, graph.take()});
  if (!plan.canaries().empty()) {
    ByteWriter canary;
    write_canaries(canary, plan.canaries());
    sections.push_back({kSectionCanary, canary.take()});
  }
  return assemble(sections, version);
}

std::unique_ptr<DeploymentPlan> deserialize_plan(const std::uint8_t* data,
                                                 std::size_t size) {
  YOLOC_CHECK(data != nullptr && size >= sizeof(kMagic) + 8,
              "plan: truncated header");
  YOLOC_CHECK(std::memcmp(data, kMagic, sizeof(kMagic)) == 0,
              "plan: bad magic (not a .yolocplan artifact)");
  ByteReader header(data, size);
  std::uint8_t magic_skip[sizeof(kMagic)];
  header.bytes(magic_skip, sizeof(kMagic));
  const std::uint32_t version = header.u32();
  YOLOC_CHECK(version >= kPlanFormatMinVersion &&
                  version <= kPlanFormatVersion,
              "plan: unsupported format version");
  const std::uint32_t nsec = header.u32();
  YOLOC_CHECK(nsec >= 1 && nsec <= 64, "plan: bad section count");
  YOLOC_CHECK(size - header.offset() >= nsec * kTableEntryBytes,
              "plan: truncated section table");

  struct Entry {
    std::uint32_t id;
    std::uint64_t offset;
    std::uint64_t size;
    std::uint32_t crc;
  };
  const std::uint64_t payload_start =
      sizeof(kMagic) + 8 + static_cast<std::uint64_t>(nsec) * kTableEntryBytes;
  std::vector<Entry> entries;
  std::uint64_t payload_end = payload_start;
  for (std::uint32_t i = 0; i < nsec; ++i) {
    Entry e;
    e.id = header.u32();
    e.offset = header.u64();
    e.size = header.u64();
    e.crc = header.u32();
    YOLOC_CHECK(e.offset >= payload_start && e.offset <= size &&
                    e.size <= size - e.offset,
                "plan: section out of bounds");
    payload_end = std::max(payload_end, e.offset + e.size);
    entries.push_back(e);
  }
  // Artifacts are canonical: nothing may trail the last declared section
  // (catches concatenation/append corruption the CRCs cannot see).
  YOLOC_CHECK(payload_end == size, "plan: trailing bytes after sections");

  auto find_optional = [&](std::uint32_t id) -> const Entry* {
    const Entry* found = nullptr;
    for (const Entry& e : entries) {
      if (e.id != id) continue;
      YOLOC_CHECK(found == nullptr, "plan: duplicate section");
      found = &e;
    }
    return found;
  };
  auto find = [&](std::uint32_t id) -> const Entry& {
    const Entry* found = find_optional(id);
    YOLOC_CHECK(found != nullptr, "plan: missing required section");
    return *found;
  };

  auto checked_reader = [&](const Entry& e) {
    YOLOC_CHECK(crc32(data + e.offset, e.size) == e.crc,
                "plan: section CRC mismatch (corrupt artifact)");
    return ByteReader(data + e.offset, e.size);
  };

  ByteReader options_r = checked_reader(find(kSectionOptions));
  OptionsSection opts = read_options(options_r, version);
  options_r.expect_exhausted("plan options section");

  ByteReader graph_r = checked_reader(find(kSectionGraph));
  LoweredPlanImage image;
  image.model = read_layer(graph_r, 0);
  graph_r.expect_exhausted("plan graph section");
  image.quantized_layers = opts.quantized_layers;

  CanarySuite canaries;
  if (const Entry* e = find_optional(kSectionCanary); e != nullptr) {
    YOLOC_CHECK(version >= 2, "plan: CANARY section in a version-1 artifact");
    ByteReader canary_r = checked_reader(*e);
    canaries = read_canaries(canary_r);
    canary_r.expect_exhausted("plan canary section");
  }

  auto plan = std::make_unique<DeploymentPlan>(std::move(image),
                                               std::move(opts.options));
  plan->set_canaries(std::move(canaries));
  return plan;
}

void save_plan(const DeploymentPlan& plan, const std::string& path) {
  const std::vector<std::uint8_t> bytes = serialize_plan(plan);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  YOLOC_CHECK(out.good(), "save_plan: cannot open '" + path + "'");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.flush();
  YOLOC_CHECK(out.good(), "save_plan: write failed for '" + path + "'");
}

std::unique_ptr<DeploymentPlan> load_plan(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  YOLOC_CHECK(in.good(), "load_plan: cannot open '" + path + "'");
  const std::streamsize size = in.tellg();
  YOLOC_CHECK(size > 0, "load_plan: empty artifact '" + path + "'");
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  YOLOC_CHECK(in.gcount() == size, "load_plan: short read on '" + path + "'");
  return deserialize_plan(bytes.data(), bytes.size());
}

}  // namespace yoloc
