#pragma once
// Versioned binary serialization of deployment artifacts (.yolocplan).
//
// The paper's deployment model bakes lowering into tape-out: BN folding,
// int8 quantization, ROM/SRAM engine selection and calibration happen
// ONCE, then the chip serves forever. This module gives the software
// runtime the same lifecycle — save_plan() freezes a lowered
// DeploymentPlan into a self-contained artifact; load_plan() rebuilds a
// servable plan from it WITHOUT the float model and WITHOUT calibration
// images, so a serving process cold-starts straight into execute().
//
// File layout (all integers little-endian, see common/binio.hpp):
//
//   magic   "YOLOCPLN"                      8 bytes
//   version u32                             format revision (1 or 2)
//   nsec    u32                             section count
//   table   nsec x { id u32, offset u64, size u64, crc32 u32 }
//   payloads                                section bytes at their offsets
//
// Sections (ids are stable; unknown ids are rejected):
//   1 OPTIONS  DeploymentOptions — bit widths, engine mode, both
//              MacroConfigs field-by-field — plus the quantized-layer
//              count used as a load-time integrity cross-check. Version 2
//              appends each macro's FaultModelConfig (seed, stuck-at /
//              flip rates, ADC drift bounds, start_active).
//   2 GRAPH    the lowered layer tree, preorder: LayerKind tag + per-kind
//              payload (quantized weights, scales, biases, calibrated
//              activation ranges, container topology).
//   3 CANARY   (version 2, optional) canary probes: per probe the noise
//              seed, the fixed input tensor and the golden logits a
//              healthy deployment produces for it.
//
// The writer is version-adaptive: a plan with no fault config and no
// canaries serializes as version 1, byte-identical to pre-fault-framework
// artifacts; only plans using the new features pay the version bump.
// The loader accepts both versions.
//
// Every section carries a CRC-32; load refuses bad magic, unknown
// versions, out-of-bounds section tables, checksum mismatches and
// trailing garbage — a corrupt artifact can never load into a silently
// wrong plan. A loaded plan execute()s bit-identically to the plan that
// saved it (same seeds, same inputs), pinned by tests/test_plan_serde.cpp.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/deployment_plan.hpp"

namespace yoloc {

/// Newest format revision serialize_plan can write; the loader accepts
/// [kPlanFormatMinVersion, kPlanFormatVersion]. The writer emits the
/// OLDEST version that can represent the plan (see header comment).
inline constexpr std::uint32_t kPlanFormatVersion = 2;
inline constexpr std::uint32_t kPlanFormatMinVersion = 1;
/// Canonical artifact extension.
inline constexpr const char* kPlanFileExtension = ".yolocplan";

/// One section-table row of a .yolocplan artifact, as read back from the
/// container header (inspection-only view, no payload decode).
struct PlanSectionInfo {
  std::uint32_t id = 0;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  std::uint32_t crc32_value = 0;  ///< stored CRC-32
  bool crc_ok = false;            ///< stored CRC matches the payload bytes
};

/// Container-level summary of an artifact: header fields plus the
/// section table with per-section CRC verdicts. Powers the HTTP serving
/// front-end's GET /plan endpoint and yolocplan_inspect.
struct PlanArtifactInfo {
  std::uint32_t version = 0;
  std::uint64_t file_bytes = 0;
  std::vector<PlanSectionInfo> sections;
};

/// Stable name for a section id ("OPTIONS", "GRAPH", "unknown").
const char* plan_section_name(std::uint32_t id);

/// Parse the container header + section table WITHOUT decoding payloads.
/// Throws std::runtime_error on bad magic, unsupported version or a
/// malformed/out-of-bounds table; per-section CRC mismatches are
/// reported via PlanSectionInfo::crc_ok, not thrown, so a corrupt
/// artifact still yields its table.
PlanArtifactInfo inspect_plan(const std::uint8_t* data, std::size_t size);
PlanArtifactInfo inspect_plan_file(const std::string& path);

/// In-memory encode/decode (the file functions wrap these; tests use
/// them to exercise corruption paths without touching the filesystem).
std::vector<std::uint8_t> serialize_plan(const DeploymentPlan& plan);
std::unique_ptr<DeploymentPlan> deserialize_plan(const std::uint8_t* data,
                                                 std::size_t size);

/// Write `plan` as a .yolocplan artifact at `path` (parent directory
/// must exist). Throws std::runtime_error on I/O failure.
void save_plan(const DeploymentPlan& plan, const std::string& path);

/// Rebuild a servable plan from a .yolocplan artifact. No float model,
/// no calibration images — the returned plan is immediately servable by
/// ExecutionContext / InferenceServer. Throws std::runtime_error on
/// missing/truncated/corrupt/incompatible files.
std::unique_ptr<DeploymentPlan> load_plan(const std::string& path);

}  // namespace yoloc
