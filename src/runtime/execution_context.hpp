#pragma once
// Serve-time half of the runtime: all mutable per-request state.
//
// An ExecutionContext is cheap to construct and holds exactly what one
// in-flight request needs while executing a shared DeploymentPlan:
//   * independent noise RNG streams for the ROM and SRAM engines,
//   * per-request MacroRunStats for both macros,
//   * scratch buffers (im2col matrix, quantized activations, int32
//     accumulator, macro tiling chunks) reused across layers and calls so
//     the hot loop stops allocating.
//
// Determinism: two contexts with the same seed produce bit-identical
// outputs for the same inputs against the same plan, regardless of which
// thread runs them or what else runs concurrently — the property the
// runtime concurrency tests pin down.

#include <cstdint>

#include "macro/cim_macro.hpp"
#include "nn/quantize.hpp"

namespace yoloc {

class DeploymentPlan;

class ExecutionContext {
 public:
  explicit ExecutionContext(const DeploymentPlan& plan,
                            std::uint64_t noise_seed = 2024);

  // Holds scratch + RNG streams; handed out by pointer into MvmSessions
  // while executing, so keep it pinned.
  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  /// Quantized inference through the plan's macro engines. Stats
  /// accumulate across calls until reset_stats().
  Tensor infer(const Tensor& images);

  /// Restart the noise streams from `noise_seed` (stats are untouched).
  void reseed(std::uint64_t noise_seed);

  /// Activity of the ROM / SRAM macros since the last reset.
  [[nodiscard]] const MacroRunStats& rom_stats() const { return rom_stats_; }
  [[nodiscard]] const MacroRunStats& sram_stats() const {
    return sram_stats_;
  }
  void reset_stats();

  /// Total modeled macro energy [pJ] since the last reset.
  [[nodiscard]] double total_energy_pj() const;

  [[nodiscard]] const DeploymentPlan& plan() const { return *plan_; }

  /// Install (or clear, with nullptr) a per-layer trace sink: while set,
  /// every quant layer executed through this context reports its
  /// im2col/MVM phase timings to the sink. Observer-only — never affects
  /// outputs, stats or noise streams.
  void set_layer_trace(LayerTraceSink* trace) { trace_ = trace; }
  [[nodiscard]] LayerTraceSink* layer_trace() const { return trace_; }

 private:
  friend class DeploymentPlan;  // wires rng/stats/scratch into the binding

  const DeploymentPlan* plan_;
  Rng rom_rng_;
  Rng sram_rng_;
  MacroRunStats rom_stats_;
  MacroRunStats sram_stats_;
  MvmScratch scratch_;
  LayerTraceSink* trace_ = nullptr;
};

}  // namespace yoloc
