#pragma once
// Deploy-time half of the serving runtime (paper Sec. 3.3, Fig. 9).
//
// A DeploymentPlan is produced ONCE per model and is immutable afterwards:
//   1. BatchNorm folding,
//   2. int8 quantization with per-layer engine selection — ROM-resident
//      convolutions are tagged for the ROM-CiM macro model, SRAM-resident
//      ones for the SRAM-CiM macro model,
//   3. activation-range calibration (pure float math, engine-free).
// It owns everything requests share: the lowered network, both CiM macro
// models, the two reentrant MvmEngines, and the packed weight bit-planes
// (one PackedWeightsCache per engine, populated for every quantized
// layer at construction — the software analogue of committing the ROM
// mask at tape-out). It owns NO mutable per-request state — noise RNG
// streams, run statistics and scratch buffers live in ExecutionContext —
// so any number of contexts can execute one plan concurrently (the
// throughput model of mixed ROM+SRAM chips such as YOCO and multi-core
// PCM inference parts, scaled to host threads).

#include <cstdint>
#include <memory>
#include <vector>

#include "core/macro_engine.hpp"
#include "nn/container.hpp"

namespace yoloc {

class ExecutionContext;

/// One canary probe: a fixed input plus the golden logits a HEALTHY
/// deployment produces for it under `seed` (recorded at plan build time,
/// before any fault is injected). Serving replays the probe on a worker's
/// context with the same seed; any float deviation from `golden` means
/// the worker's compute path is corrupted.
struct CanaryProbe {
  std::uint64_t seed = 0;
  Tensor input;
  Tensor golden;
};

/// The plan's canary probes (optional CANARY section of a .yolocplan).
struct CanarySuite {
  std::vector<CanaryProbe> probes;
  [[nodiscard]] bool empty() const { return probes.empty(); }
};

struct DeploymentOptions {
  MacroConfig rom_macro;
  MacroConfig sram_macro;
  int weight_bits = 8;
  int act_bits = 8;
  MacroMvmEngine::Mode mode = MacroMvmEngine::Mode::kAnalog;

  DeploymentOptions();

  /// Field-wise equality (macros included) — the invariant behind plan
  /// round-trips: equal options drive bit-identical lowering/execution.
  bool operator==(const DeploymentOptions&) const = default;

  /// Fail-fast sanity checks, run by every DeploymentPlan constructor and
  /// by the plan loader (plan_serde) before any engine is built.
  void validate() const;
};

/// A lowered, calibrated network image as rebuilt by the plan loader
/// (src/runtime/plan_serde.*): the graph already went through BN folding,
/// int8 quantization and calibration in some earlier process.
struct LoweredPlanImage {
  LayerPtr model;
  /// Count recorded at save time; the constructor re-walks the graph and
  /// rejects the image on mismatch.
  int quantized_layers = 0;
};

class DeploymentPlan {
 public:
  /// Takes ownership of the trained model. Residency flags must already
  /// be set; `calibration_images` drive activation-range calibration.
  DeploymentPlan(LayerPtr trained_model, const Tensor& calibration_images,
                 DeploymentOptions options);

  /// Rebuilds a servable plan from a deserialized image: engines are
  /// reconstructed from `options`, but NO float model is consumed and NO
  /// calibration runs — the image's quantized layers must already carry
  /// finalized activation scales. This is the cold-start path behind
  /// load_plan(): serving starts without any calibration images.
  DeploymentPlan(LoweredPlanImage image, DeploymentOptions options);

  // Engines point at member macros; the plan is pinned in memory.
  DeploymentPlan(const DeploymentPlan&) = delete;
  DeploymentPlan& operator=(const DeploymentPlan&) = delete;

  /// One forward pass through the deployed network on behalf of `ctx`:
  /// installs the context's engine binding on this thread, runs the
  /// quantized model, accumulates activity into the context's stats.
  /// Reentrant: distinct contexts may execute concurrently.
  Tensor execute(const Tensor& images, ExecutionContext& ctx) const;

  [[nodiscard]] const MacroMvmEngine& rom_engine() const {
    return rom_engine_;
  }
  [[nodiscard]] const MacroMvmEngine& sram_engine() const {
    return sram_engine_;
  }
  [[nodiscard]] const CimMacro& rom_macro() const { return rom_macro_; }
  [[nodiscard]] const CimMacro& sram_macro() const { return sram_macro_; }
  [[nodiscard]] const PackedWeightsCache& rom_packed() const {
    return rom_packed_;
  }
  [[nodiscard]] const PackedWeightsCache& sram_packed() const {
    return sram_packed_;
  }
  /// Total resident bytes of packed weight bit-planes (both engines) and
  /// the one-time cost of building them — deploy-time observability for
  /// capacity planning (the packing is derived state: it is rebuilt at
  /// load, never serialized).
  [[nodiscard]] std::size_t packed_weight_bytes() const;
  [[nodiscard]] double pack_ms() const { return pack_ms_; }
  [[nodiscard]] const DeploymentOptions& options() const { return options_; }
  [[nodiscard]] int quantized_layer_count() const { return quantized_layers_; }
  /// Structural access for the OWNING path (inspection / tests) —
  /// deliberately non-const so holders of a const DeploymentPlan& (the
  /// server, extra contexts) cannot mutate the shared layer graph.
  /// Mutating it while contexts are executing is undefined.
  [[nodiscard]] Layer& model() { return *model_; }

  /// Canary probes shipped with the plan (empty unless recorded or
  /// loaded from an artifact that carries a CANARY section).
  [[nodiscard]] const CanarySuite& canaries() const { return canaries_; }
  void set_canaries(CanarySuite canaries) { canaries_ = std::move(canaries); }

 private:
  /// Recursive conv/linear replacement with per-layer engine selection.
  int lower_network(Layer& node);
  /// Expand every quantized layer's weight buffer into its macro-native
  /// bit-plane layout (once; shared read-only by all contexts).
  void prepack_weights();

  DeploymentOptions options_;
  CimMacro rom_macro_;
  CimMacro sram_macro_;
  PackedWeightsCache rom_packed_;
  PackedWeightsCache sram_packed_;
  MacroMvmEngine rom_engine_;
  MacroMvmEngine sram_engine_;
  LayerPtr model_;
  int quantized_layers_ = 0;
  double pack_ms_ = 0.0;
  CanarySuite canaries_;
};

/// Record `count` canary probes into `plan`: deterministic inputs of
/// `input_shape` (seeded from `base_seed`), each run through a fresh
/// ExecutionContext to capture the golden logits. Must run while the
/// plan's fault models (if any) are INACTIVE — the goldens define
/// "healthy". Replaces any previously recorded suite.
void record_canaries(DeploymentPlan& plan, int count,
                     const std::vector<int>& input_shape,
                     std::uint64_t base_seed = 9001);

}  // namespace yoloc
