#include "runtime/deployment_plan.hpp"

#include "common/check.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "runtime/execution_context.hpp"

namespace yoloc {

namespace {

/// Options pass through here on the way into the member initializer
/// list, so both constructors validate before any engine is built.
DeploymentOptions validated(DeploymentOptions options) {
  options.validate();
  return options;
}

}  // namespace

DeploymentOptions::DeploymentOptions()
    : rom_macro(default_rom_macro()), sram_macro(default_sram_macro()) {}

void DeploymentOptions::validate() const {
  rom_macro.validate();
  sram_macro.validate();
  YOLOC_CHECK(rom_macro.kind == MacroKind::kRom,
              "deployment options: rom_macro must be a ROM macro");
  YOLOC_CHECK(sram_macro.kind == MacroKind::kSram,
              "deployment options: sram_macro must be an SRAM macro");
  YOLOC_CHECK(weight_bits >= 2 && weight_bits <= 8,
              "deployment options: weight_bits out of [2, 8]");
  YOLOC_CHECK(act_bits >= 1 && act_bits <= 8,
              "deployment options: act_bits out of [1, 8]");
}

DeploymentPlan::DeploymentPlan(LayerPtr trained_model,
                               const Tensor& calibration_images,
                               DeploymentOptions options)
    : options_(validated(std::move(options))),
      rom_macro_(options_.rom_macro),
      sram_macro_(options_.sram_macro),
      rom_engine_(rom_macro_, options_.mode, &rom_packed_),
      sram_engine_(sram_macro_, options_.mode, &sram_packed_),
      model_(std::move(trained_model)) {
  YOLOC_CHECK(model_ != nullptr, "deployment plan: null model");
  fold_batchnorm(*model_);
  quantized_layers_ = lower_network(*model_);
  YOLOC_CHECK(quantized_layers_ > 0, "deployment plan: nothing to quantize");
  // Calibration is pure float math (dequantized-weight reference), so it
  // runs without any engine binding and accrues no macro activity.
  calibrate_quantized(*model_, calibration_images);
  prepack_weights();
}

DeploymentPlan::DeploymentPlan(LoweredPlanImage image,
                               DeploymentOptions options)
    : options_(validated(std::move(options))),
      rom_macro_(options_.rom_macro),
      sram_macro_(options_.sram_macro),
      rom_engine_(rom_macro_, options_.mode, &rom_packed_),
      sram_engine_(sram_macro_, options_.mode, &sram_packed_),
      model_(std::move(image.model)) {
  YOLOC_CHECK(model_ != nullptr, "plan image: null model");
  quantized_layers_ = count_quantized_layers(*model_);
  YOLOC_CHECK(quantized_layers_ > 0, "plan image: no quantized layers");
  YOLOC_CHECK(quantized_layers_ == image.quantized_layers,
              "plan image: quantized layer count mismatch");
  YOLOC_CHECK(quantized_layers_calibrated(*model_),
              "plan image: uncalibrated quantized layer");
  // Packing is derived state: a cold-loaded plan rebuilds it here rather
  // than reading it from the artifact (plan-format.md).
  prepack_weights();
}

void DeploymentPlan::prepack_weights() {
  for_each_quantized_layer(*model_, [this](QuantConv2d* qc, QuantLinear* ql) {
    const QuantizedTensor& qw = qc != nullptr ? qc->weights() : ql->weights();
    const EngineKind kind =
        qc != nullptr ? qc->engine_kind() : ql->engine_kind();
    YOLOC_CHECK(qw.shape.size() == 2, "prepack: quant weight must be 2-D");
    const int m = qw.shape[0];
    const int k = qw.shape[1];
    // Lowering assigns every layer kRom or kSram; treat a (legacy)
    // default binding as ROM-resident, matching execute()'s slot wiring.
    const bool sram = kind == EngineKind::kSram;
    const PackedWeightsCache& cache = sram ? sram_packed_ : rom_packed_;
    const MacroGeometry& geometry = sram
                                        ? sram_macro_.config().geometry
                                        : rom_macro_.config().geometry;
    // Exact-cost deployments only need the tile boundaries (the MAC
    // reads the raw int8 rows) — skip the plane expansion's memory.
    const bool pack_planes =
        options_.mode != MacroMvmEngine::Mode::kExactCost;
    (void)cache.get_or_pack(qw.data.data(), m, k, geometry, pack_planes);
  });
  pack_ms_ = rom_packed_.total_pack_ms() + sram_packed_.total_pack_ms();
}

std::size_t DeploymentPlan::packed_weight_bytes() const {
  return rom_packed_.packed_bytes() + sram_packed_.packed_bytes();
}

int DeploymentPlan::lower_network(Layer& node) {
  int replaced = 0;
  const auto children = node.children();
  for (std::size_t i = 0; i < children.size(); ++i) {
    Layer* child = children[i];
    if (auto* conv = dynamic_cast<Conv2d*>(child)) {
      const EngineKind kind = conv->weight().rom_resident ? EngineKind::kRom
                                                          : EngineKind::kSram;
      node.replace_child(i, std::make_unique<QuantConv2d>(
                                *conv, kind, options_.weight_bits,
                                options_.act_bits));
      ++replaced;
    } else if (auto* lin = dynamic_cast<Linear*>(child)) {
      const EngineKind kind = lin->weight().rom_resident ? EngineKind::kRom
                                                         : EngineKind::kSram;
      node.replace_child(i, std::make_unique<QuantLinear>(
                                *lin, kind, options_.weight_bits,
                                options_.act_bits));
      ++replaced;
    } else {
      replaced += lower_network(*child);
    }
  }
  return replaced;
}

void record_canaries(DeploymentPlan& plan, int count,
                     const std::vector<int>& input_shape,
                     std::uint64_t base_seed) {
  YOLOC_CHECK(count >= 1 && count <= 64,
              "record_canaries: count out of [1, 64]");
  YOLOC_CHECK(!input_shape.empty() && input_shape[0] == 1,
              "record_canaries: probe inputs must be single-image (N == 1)");
  // Goldens define "healthy": mask any injected faults for the duration
  // of the recording, then restore the caller's fault state.
  FaultModel* fm[] = {plan.rom_macro().fault_model(),
                      plan.sram_macro().fault_model()};
  bool was_active[] = {false, false};
  for (int i = 0; i < 2; ++i) {
    if (fm[i] == nullptr) continue;
    was_active[i] = fm[i]->active();
    fm[i]->set_active(false);
  }
  CanarySuite suite;
  suite.probes.reserve(static_cast<std::size_t>(count));
  for (int p = 0; p < count; ++p) {
    CanaryProbe probe;
    probe.seed = base_seed + static_cast<std::uint64_t>(p);
    Rng input_rng(probe.seed ^ 0xCA9A41ull);
    probe.input = Tensor::rand_uniform(input_shape, input_rng, 0.0f, 1.0f);
    ExecutionContext ctx(plan, probe.seed);
    probe.golden = ctx.infer(probe.input);
    suite.probes.push_back(std::move(probe));
  }
  for (int i = 0; i < 2; ++i) {
    if (fm[i] != nullptr) fm[i]->set_active(was_active[i]);
  }
  plan.set_canaries(std::move(suite));
}

Tensor DeploymentPlan::execute(const Tensor& images,
                               ExecutionContext& ctx) const {
  YOLOC_CHECK(ctx.plan_ == this, "deployment plan: foreign context");
  MvmBinding binding;
  binding.slot(EngineKind::kRom) = {
      &rom_engine_, {&ctx.rom_rng_, &ctx.rom_stats_, &ctx.scratch_,
                     ctx.trace_}};
  binding.slot(EngineKind::kSram) = {
      &sram_engine_, {&ctx.sram_rng_, &ctx.sram_stats_, &ctx.scratch_,
                      ctx.trace_}};
  MvmBinding::Scope scope(binding);
  // Layer::forward is non-const to serve the training substrate; the
  // deployed graph is logically const in eval mode (quantized layers are
  // calibrated and tape caching is train-only), which is what makes
  // concurrent execute() calls safe.
  return model_->forward(images, /*train=*/false);
}

}  // namespace yoloc
