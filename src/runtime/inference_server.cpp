#include "runtime/inference_server.hpp"

#include <algorithm>
#include <cstring>
#include <exception>
#include <utility>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "runtime/deployment_plan.hpp"

namespace yoloc {

namespace {

/// Same channel/height/width — requests that can fuse into one batch.
bool same_geometry(const Tensor& a, const Tensor& b) {
  return a.shape()[1] == b.shape()[1] && a.shape()[2] == b.shape()[2] &&
         a.shape()[3] == b.shape()[3];
}

/// Copy request inputs into one stacked batch along axis 0.
Tensor stack_inputs(const std::vector<Tensor*>& inputs) {
  int total_n = 0;
  for (const Tensor* t : inputs) total_n += t->shape()[0];
  std::vector<int> shape = inputs[0]->shape();
  shape[0] = total_n;
  Tensor stacked(shape);
  float* dst = stacked.data();
  for (const Tensor* t : inputs) {
    std::memcpy(dst, t->data(), t->size() * sizeof(float));
    dst += t->size();
  }
  return stacked;
}

/// Slice `rows` leading-axis entries starting at `row0` out of `batch`.
Tensor slice_rows(const Tensor& batch, int row0, int rows) {
  std::vector<int> shape = batch.shape();
  const std::size_t row_size = batch.size() / shape[0];
  shape[0] = rows;
  Tensor out(shape);
  std::memcpy(out.data(),
              batch.data() + static_cast<std::size_t>(row0) * row_size,
              static_cast<std::size_t>(rows) * row_size * sizeof(float));
  return out;
}

}  // namespace

InferenceServer::InferenceServer(const DeploymentPlan& plan,
                                 ServerOptions options)
    : plan_(&plan), options_(options) {
  if (options_.workers <= 0) {
    options_.workers = static_cast<int>(parallel_workers());
  }
  YOLOC_CHECK(options_.max_microbatch >= 1,
              "inference server: max_microbatch >= 1");
  threads_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

InferenceServer::~InferenceServer() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

std::future<Tensor> InferenceServer::submit(Tensor images) {
  YOLOC_CHECK(images.rank() == 4 && images.shape()[0] >= 1,
              "inference server: rank-4 NCHW request required");
  Request req;
  req.input = std::move(images);
  std::future<Tensor> future = req.promise.get_future();
  {
    std::lock_guard lock(mutex_);
    YOLOC_CHECK(!stop_, "inference server: submit after shutdown");
    req.id = next_request_id_++;
    queue_.push_back(std::move(req));
  }
  work_cv_.notify_one();
  return future;
}

Tensor InferenceServer::infer(const Tensor& images) {
  YOLOC_CHECK(images.rank() == 4 && images.shape()[0] >= 1,
              "inference server: rank-4 NCHW input required");
  const int n = images.shape()[0];
  std::vector<std::future<Tensor>> futures;
  futures.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    futures.push_back(submit(slice_rows(images, i, 1)));
  }
  std::vector<Tensor> outputs;
  outputs.reserve(futures.size());
  for (auto& f : futures) outputs.push_back(f.get());
  std::vector<int> shape = outputs[0].shape();
  shape[0] = n;
  Tensor stacked(shape);
  float* dst = stacked.data();
  for (const Tensor& t : outputs) {
    YOLOC_CHECK(t.shape()[0] == 1, "inference server: unexpected output row");
    std::memcpy(dst, t.data(), t.size() * sizeof(float));
    dst += t.size();
  }
  return stacked;
}

void InferenceServer::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
}

MacroRunStats InferenceServer::rom_stats() const {
  std::lock_guard lock(mutex_);
  return rom_total_;
}

MacroRunStats InferenceServer::sram_stats() const {
  std::lock_guard lock(mutex_);
  return sram_total_;
}

double InferenceServer::total_energy_pj() const {
  std::lock_guard lock(mutex_);
  return rom_total_.energy_pj() + sram_total_.energy_pj();
}

void InferenceServer::reset_stats() {
  std::lock_guard lock(mutex_);
  rom_total_ = MacroRunStats{};
  sram_total_ = MacroRunStats{};
}

ServerMetrics InferenceServer::metrics() const {
  std::lock_guard lock(mutex_);
  return metrics_;
}

void InferenceServer::worker_loop() {
  // Request-level parallelism: inner tensor kernels run inline rather
  // than re-entering the shared parallel_for pool.
  ParallelSerialGuard serial_guard;
  ExecutionContext ctx(*plan_, options_.noise_seed);

  for (;;) {
    std::vector<Request> batch;
    std::uint64_t batch_id = 0;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      while (static_cast<int>(batch.size()) < options_.max_microbatch &&
             !queue_.empty() &&
             same_geometry(queue_.front().input, batch.front().input)) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      batch_id = next_batch_id_++;
      in_flight_ += static_cast<int>(batch.size());
    }

    // Derive this batch's noise stream from its first request so results
    // do not depend on which worker picked the batch up.
    ctx.reseed(options_.noise_seed + batch.front().id);
    ctx.reset_stats();

    Tensor output;
    std::exception_ptr error;
    int total_images = 0;
    try {
      if (batch.size() == 1) {
        total_images = batch[0].input.shape()[0];
        output = ctx.infer(batch[0].input);
      } else {
        std::vector<Tensor*> inputs;
        inputs.reserve(batch.size());
        for (Request& r : batch) inputs.push_back(&r.input);
        Tensor stacked = stack_inputs(inputs);
        total_images = stacked.shape()[0];
        output = ctx.infer(stacked);
      }
    } catch (...) {
      error = std::current_exception();
    }

    // Fulfill promises BEFORE the completion accounting below: wait_idle()
    // promises that every accepted request has completed, so futures must
    // be ready by the time in_flight_ reaches zero.
    if (error) {
      for (Request& r : batch) r.promise.set_exception(error);
    } else {
      int row = 0;
      for (Request& r : batch) {
        const int rows = r.input.shape()[0];
        // Scatter failures (e.g. bad_alloc slicing a fused batch) fail
        // the affected request instead of escaping the worker thread.
        try {
          if (batch.size() == 1) {
            r.promise.set_value(std::move(output));
          } else {
            r.promise.set_value(slice_rows(output, row, rows));
          }
        } catch (...) {
          r.promise.set_exception(std::current_exception());
        }
        row += rows;
      }
    }

    {
      std::lock_guard lock(mutex_);
      // Merge per-batch stats in batch-formation order: given the same
      // batch compositions (always true at max_microbatch = 1) the
      // aggregate double sums are reproducible run to run. A failed
      // batch merges zeros (its partial activity produced no output)
      // but still holds its slot so the order is preserved.
      pending_stats_[batch_id] =
          error ? BatchStats{} : BatchStats{ctx.rom_stats(), ctx.sram_stats()};
      for (auto it = pending_stats_.find(next_merge_id_);
           it != pending_stats_.end();
           it = pending_stats_.find(next_merge_id_)) {
        rom_total_.accumulate(it->second.rom);
        sram_total_.accumulate(it->second.sram);
        pending_stats_.erase(it);
        ++next_merge_id_;
      }
      if (error) {
        metrics_.failed_requests += batch.size();
      } else {
        metrics_.requests += batch.size();
        metrics_.images +=
            static_cast<std::uint64_t>(std::max(total_images, 0));
        metrics_.batches += 1;
      }
      in_flight_ -= static_cast<int>(batch.size());
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace yoloc
