#include "runtime/inference_server.hpp"

#include <cstring>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "runtime/deployment_plan.hpp"
#include "tensor/ops.hpp"

namespace yoloc {

namespace {

SchedulerOptions to_scheduler_options(const ServerOptions& options) {
  SchedulerOptions so;
  so.workers = options.workers;
  so.max_microbatch = options.max_microbatch;
  so.noise_seed = options.noise_seed;
  so.trace_sampling = options.trace_sampling;
  return so;
}

}  // namespace

InferenceServer::InferenceServer(const DeploymentPlan& plan,
                                 ServerOptions options)
    : scheduler_(plan, to_scheduler_options(options)) {}

std::future<Tensor> InferenceServer::submit(Tensor images) {
  return scheduler_.submit(std::move(images), SubmitOptions{});
}

std::future<Tensor> InferenceServer::submit(Tensor images,
                                            SubmitOptions options) {
  return scheduler_.submit(std::move(images), options);
}

Tensor InferenceServer::infer(const Tensor& images) {
  YOLOC_CHECK(images.rank() == 4 && images.shape()[0] >= 1,
              "inference server: rank-4 NCHW input required");
  const int n = images.shape()[0];
  std::vector<std::future<Tensor>> futures;
  futures.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    futures.push_back(submit(slice_rows(images, i, 1)));
  }
  std::vector<Tensor> outputs;
  outputs.reserve(futures.size());
  for (auto& f : futures) outputs.push_back(f.get());
  std::vector<const Tensor*> rows;
  rows.reserve(outputs.size());
  for (const Tensor& t : outputs) {
    YOLOC_CHECK(t.shape()[0] == 1, "inference server: unexpected output row");
    rows.push_back(&t);
  }
  return concat_rows(rows);
}

void InferenceServer::wait_idle() { scheduler_.wait_idle(); }

MacroRunStats InferenceServer::rom_stats() const {
  return scheduler_.rom_stats();
}

MacroRunStats InferenceServer::sram_stats() const {
  return scheduler_.sram_stats();
}

double InferenceServer::total_energy_pj() const {
  return scheduler_.total_energy_pj();
}

void InferenceServer::reset_stats() { scheduler_.reset_stats(); }

ServerMetrics InferenceServer::metrics() const {
  const MetricsSnapshot snap = scheduler_.metrics_snapshot();
  ServerMetrics m;
  m.batches = snap.batches;
  for (const ClassSnapshot& c : snap.classes) {
    m.requests += c.served_requests;
    m.images += c.served_images;
    m.failed_requests +=
        c.failed_requests + c.expired_requests + c.rejected_requests;
  }
  return m;
}

MetricsSnapshot InferenceServer::metrics_snapshot() const {
  return scheduler_.metrics_snapshot();
}

}  // namespace yoloc
