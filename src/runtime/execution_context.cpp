#include "runtime/execution_context.hpp"

#include "runtime/deployment_plan.hpp"

namespace yoloc {

namespace {
// Keeps the two macros' noise streams decorrelated when both derive from
// one request seed (mirrors the historical framework seeding).
constexpr std::uint64_t kSramSeedSalt = 0x5A5A;
}  // namespace

ExecutionContext::ExecutionContext(const DeploymentPlan& plan,
                                   std::uint64_t noise_seed)
    : plan_(&plan),
      rom_rng_(noise_seed),
      sram_rng_(noise_seed ^ kSramSeedSalt) {}

Tensor ExecutionContext::infer(const Tensor& images) {
  return plan_->execute(images, *this);
}

void ExecutionContext::reseed(std::uint64_t noise_seed) {
  rom_rng_ = Rng(noise_seed);
  sram_rng_ = Rng(noise_seed ^ kSramSeedSalt);
}

void ExecutionContext::reset_stats() {
  rom_stats_ = MacroRunStats{};
  sram_stats_ = MacroRunStats{};
}

double ExecutionContext::total_energy_pj() const {
  return rom_stats_.energy_pj() + sram_stats_.energy_pj();
}

}  // namespace yoloc
