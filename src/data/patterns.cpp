#include "data/patterns.hpp"

#include <algorithm>
#include <cmath>

namespace yoloc {
namespace {

constexpr float kPi = 3.14159265358979323846f;

float gaussian_bump(float x, float y, float cx, float cy, float scale) {
  const float dx = x - cx;
  const float dy = y - cy;
  const float s2 = std::max(scale * scale, 1e-4f);
  return std::exp(-(dx * dx + dy * dy) / (0.5f * s2));
}

}  // namespace

float pattern_intensity(const ClassRecipe& r, float x, float y) {
  const float ca = std::cos(r.angle);
  const float sa = std::sin(r.angle);
  const float u = (x - r.cx) * ca + (y - r.cy) * sa;
  const float v = -(x - r.cx) * sa + (y - r.cy) * ca;
  switch (r.family) {
    case PatternFamily::kGrating:
      return 0.5f + 0.5f * std::sin(2.0f * kPi * r.freq * u);
    case PatternFamily::kChecker: {
      const float s = std::sin(2.0f * kPi * r.freq * u) *
                      std::sin(2.0f * kPi * r.freq * v);
      return s > 0.0f ? 1.0f : 0.0f;
    }
    case PatternFamily::kBlob:
      return std::min(1.0f, gaussian_bump(x, y, r.cx, r.cy, r.scale) +
                                0.6f * gaussian_bump(x, y, -r.cx, -r.cy,
                                                     0.7f * r.scale));
    case PatternFamily::kRings: {
      const float rad = std::sqrt(u * u + v * v);
      return 0.5f + 0.5f * std::cos(2.0f * kPi * r.freq * rad);
    }
    case PatternFamily::kCross: {
      const float bar = 0.25f * r.scale;
      const bool on = std::fabs(u) < bar || std::fabs(v) < bar;
      return on ? 1.0f : 0.1f;
    }
    case PatternFamily::kStripes: {
      const float s = std::sin(2.0f * kPi * r.freq * u);
      return s > 0.0f ? 0.9f : 0.2f;
    }
  }
  return 0.0f;
}

ClassRecipe jitter_recipe(const ClassRecipe& recipe, Rng& rng) {
  ClassRecipe j = recipe;
  const float amt = recipe.jitter;
  j.angle += static_cast<float>(rng.normal(0.0, 0.25 * amt * kPi));
  j.freq *= 1.0f + static_cast<float>(rng.normal(0.0, amt));
  j.freq = std::max(0.25f, j.freq);
  j.cx += static_cast<float>(rng.normal(0.0, 0.5 * amt));
  j.cy += static_cast<float>(rng.normal(0.0, 0.5 * amt));
  j.scale *= 1.0f + static_cast<float>(rng.normal(0.0, amt));
  j.scale = std::clamp(j.scale, 0.05f, 1.5f);
  return j;
}

void render_pattern(const ClassRecipe& recipe, const DomainStyle& style,
                    int height, int width, Rng& rng, float* out) {
  const ClassRecipe r = jitter_recipe(recipe, rng);

  // Low-frequency clutter field: a random 2-D cosine.
  const float clutter_fx = static_cast<float>(rng.uniform(0.3, 1.2));
  const float clutter_fy = static_cast<float>(rng.uniform(0.3, 1.2));
  const float clutter_phase = static_cast<float>(rng.uniform(0.0, 2.0 * kPi));

  const std::size_t plane = static_cast<std::size_t>(height) * width;
  for (int i = 0; i < height; ++i) {
    const float y = 2.0f * static_cast<float>(i) / (height - 1) - 1.0f;
    for (int j = 0; j < width; ++j) {
      const float x = 2.0f * static_cast<float>(j) / (width - 1) - 1.0f;
      float base = pattern_intensity(r, x, y);
      if (style.clutter > 0.0f) {
        const float cl =
            0.5f + 0.5f * std::cos(kPi * (clutter_fx * x + clutter_fy * y) +
                                   clutter_phase);
        base = (1.0f - style.clutter) * base + style.clutter * cl;
      }
      base = style.contrast * base + style.brightness;
      for (int c = 0; c < 3; ++c) {
        float v = base * r.color[static_cast<std::size_t>(c)] *
                  style.channel_gain[static_cast<std::size_t>(c)];
        v += static_cast<float>(rng.normal(0.0, style.noise_std));
        out[static_cast<std::size_t>(c) * plane +
            static_cast<std::size_t>(i) * width + j] =
            std::clamp(v, 0.0f, 1.0f);
      }
    }
  }
}

}  // namespace yoloc
