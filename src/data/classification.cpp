#include "data/classification.hpp"

#include <cmath>

#include "common/check.hpp"

namespace yoloc {
namespace {

constexpr float kPi = 3.14159265358979323846f;

/// Evenly spread class recipes across families and orientations.
/// `angle_offset` and `freq_scale` are the domain-shift knobs: targets
/// rotate and rescale the generative parameters relative to the source.
std::vector<ClassRecipe> make_recipes(int num_classes, float angle_offset,
                                      float freq_scale, float jitter,
                                      unsigned color_seed) {
  static constexpr PatternFamily kFamilies[6] = {
      PatternFamily::kGrating, PatternFamily::kChecker, PatternFamily::kBlob,
      PatternFamily::kRings,   PatternFamily::kCross,   PatternFamily::kStripes,
  };
  Rng rng(color_seed);
  std::vector<ClassRecipe> recipes;
  recipes.reserve(static_cast<std::size_t>(num_classes));
  for (int c = 0; c < num_classes; ++c) {
    ClassRecipe r;
    r.family = kFamilies[c % 6];
    r.angle = angle_offset + kPi * static_cast<float>(c) /
                                 static_cast<float>(num_classes);
    r.freq = freq_scale * (1.5f + 0.5f * static_cast<float>(c % 4));
    r.cx = 0.3f * std::cos(2.0f * kPi * c / num_classes);
    r.cy = 0.3f * std::sin(2.0f * kPi * c / num_classes);
    r.scale = 0.35f + 0.1f * static_cast<float>(c % 3);
    r.jitter = jitter;
    for (auto& g : r.color) {
      g = 0.5f + 0.5f * static_cast<float>(rng.uniform());
    }
    recipes.push_back(r);
  }
  return recipes;
}

}  // namespace

LabeledDataset generate_classification(const DatasetSpec& spec,
                                       int samples_per_class, Rng& rng) {
  YOLOC_CHECK(static_cast<int>(spec.recipes.size()) == spec.num_classes,
              "dataset spec: recipe count != num_classes");
  YOLOC_CHECK(samples_per_class > 0, "samples_per_class must be positive");
  const int n = spec.num_classes * samples_per_class;
  const int hw = spec.image_size;
  LabeledDataset ds;
  ds.images = Tensor({n, 3, hw, hw});
  ds.labels.resize(static_cast<std::size_t>(n));
  ds.num_classes = spec.num_classes;
  const std::size_t stride = 3ull * hw * hw;

  // Interleave classes so any contiguous split is stratified.
  int idx = 0;
  for (int s = 0; s < samples_per_class; ++s) {
    for (int c = 0; c < spec.num_classes; ++c) {
      render_pattern(spec.recipes[static_cast<std::size_t>(c)], spec.style,
                     hw, hw, rng,
                     ds.images.data() + static_cast<std::size_t>(idx) * stride);
      ds.labels[static_cast<std::size_t>(idx)] = c;
      ++idx;
    }
  }
  return ds;
}

DatasetSpec source_suite_spec(int image_size) {
  DatasetSpec spec;
  spec.name = "source(C100-like)";
  spec.num_classes = 12;
  spec.image_size = image_size;
  spec.recipes = make_recipes(12, /*angle_offset=*/0.0f, /*freq_scale=*/1.0f,
                              /*jitter=*/0.15f, /*color_seed=*/101);
  spec.style.noise_std = 0.06f;
  spec.style.clutter = 0.15f;
  return spec;
}

DatasetSpec cifar10_like_spec(int image_size) {
  DatasetSpec spec;
  spec.name = "cifar10-like";
  spec.num_classes = 8;
  spec.image_size = image_size;
  // Rotated orientations, shifted frequencies, saturated colors, heavy
  // clutter: a solid shift (frozen source features must lose accuracy).
  spec.recipes = make_recipes(8, /*angle_offset=*/0.6f, /*freq_scale=*/1.45f,
                              /*jitter=*/0.22f, /*color_seed=*/202);
  spec.style.noise_std = 0.09f;
  spec.style.clutter = 0.32f;
  spec.style.channel_gain = {1.1f, 0.85f, 0.95f};
  return spec;
}

DatasetSpec mnist_like_spec(int image_size) {
  DatasetSpec spec;
  spec.name = "mnist-like";
  spec.num_classes = 8;
  spec.image_size = image_size;
  // Clean high-contrast strokes: low jitter, no clutter, grayscale.
  spec.recipes = make_recipes(8, /*angle_offset=*/0.2f, /*freq_scale=*/0.9f,
                              /*jitter=*/0.08f, /*color_seed=*/303);
  for (auto& r : spec.recipes) r.color = {1.0f, 1.0f, 1.0f};
  spec.style.noise_std = 0.02f;
  spec.style.clutter = 0.0f;
  spec.style.contrast = 1.2f;
  return spec;
}

DatasetSpec fashion_like_spec(int image_size) {
  DatasetSpec spec;
  spec.name = "fashion-like";
  spec.num_classes = 8;
  spec.image_size = image_size;
  spec.recipes = make_recipes(8, /*angle_offset=*/0.5f, /*freq_scale=*/1.1f,
                              /*jitter=*/0.14f, /*color_seed=*/404);
  for (auto& r : spec.recipes) r.color = {0.9f, 0.9f, 0.9f};  // near-gray
  spec.style.noise_std = 0.05f;
  spec.style.clutter = 0.15f;
  return spec;
}

DatasetSpec caltech_like_spec(int image_size) {
  DatasetSpec spec;
  spec.name = "caltech-like";
  spec.num_classes = 10;
  spec.image_size = image_size;
  // Strong shift: large rotation, big frequency change, heavy jitter and
  // clutter — frozen source features transfer poorly here, matching the
  // paper's large All-ROM drop on Caltech101.
  spec.recipes = make_recipes(10, /*angle_offset=*/0.9f, /*freq_scale=*/1.7f,
                              /*jitter=*/0.35f, /*color_seed=*/505);
  spec.style.noise_std = 0.12f;
  spec.style.clutter = 0.40f;
  spec.style.channel_gain = {0.8f, 1.15f, 1.05f};
  return spec;
}

std::vector<DatasetSpec> all_transfer_targets(int image_size) {
  return {cifar10_like_spec(image_size), mnist_like_spec(image_size),
          fashion_like_spec(image_size), caltech_like_spec(image_size)};
}

}  // namespace yoloc
