#pragma once
// Procedural image pattern primitives.
//
// Dataset substitution layer (see DESIGN.md): the paper's transfer
// experiments run on CIFAR/MNIST/Caltech, which are unavailable offline.
// What those experiments actually measure is how well a frozen feature
// extractor carries over to a *shifted* input distribution, so the
// synthetic families below are built around explicit, controllable shift
// knobs: pattern parameters (angle/frequency/position), per-channel color
// statistics, background clutter and pixel noise.

#include <array>

#include "common/rng.hpp"

namespace yoloc {

/// Texture families that class recipes draw from. Different families
/// produce linearly inseparable classes that require conv features.
enum class PatternFamily {
  kGrating,   // oriented sinusoidal grating
  kChecker,   // checkerboard
  kBlob,      // Gaussian bump(s)
  kRings,     // concentric rings
  kCross,     // axis-aligned bright cross
  kStripes,   // square-wave stripes
};

/// Generative parameters of one class.
struct ClassRecipe {
  PatternFamily family = PatternFamily::kGrating;
  float angle = 0.0f;      // radians, orientation of the pattern
  float freq = 2.0f;       // spatial frequency (cycles per image)
  float cx = 0.0f;         // pattern center, [-1, 1]
  float cy = 0.0f;
  float scale = 0.5f;      // spatial extent, (0, 1]
  float jitter = 0.15f;    // intra-class parameter jitter (fractional)
  std::array<float, 3> color{1.0f, 1.0f, 1.0f};  // per-channel gain
};

/// Rendering style shared by a whole dataset — the *domain* knobs.
struct DomainStyle {
  float noise_std = 0.05f;        // i.i.d. pixel noise
  float contrast = 1.0f;          // multiplicative on pattern intensity
  float brightness = 0.0f;        // additive offset
  std::array<float, 3> channel_gain{1.0f, 1.0f, 1.0f};
  float clutter = 0.0f;           // low-frequency background field in [0,1]
};

/// Scalar pattern intensity in [0,1] at normalized coords (x,y) in [-1,1].
float pattern_intensity(const ClassRecipe& recipe, float x, float y);

/// Jittered copy of a recipe (per-sample intra-class variation).
ClassRecipe jitter_recipe(const ClassRecipe& recipe, Rng& rng);

/// Render one CHW image (channels = 3) into `out` (size 3*h*w, row-major
/// per channel), applying the domain style.
void render_pattern(const ClassRecipe& recipe, const DomainStyle& style,
                    int height, int width, Rng& rng, float* out);

}  // namespace yoloc
