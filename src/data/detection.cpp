#include "data/detection.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace yoloc {
namespace {

/// Pixel-coverage test for each shape, in object-local coords u,v in
/// [-1,1] across the object's bounding box.
bool shape_covers(ShapeClass cls, float u, float v) {
  switch (cls) {
    case ShapeClass::kDisk:
      return u * u + v * v <= 1.0f;
    case ShapeClass::kSquare:
      return std::fabs(u) <= 0.9f && std::fabs(v) <= 0.9f;
    case ShapeClass::kTallBox:
      return std::fabs(u) <= 0.45f && std::fabs(v) <= 1.0f;
    case ShapeClass::kTriangle:
      // Upward triangle: v from -1 (top... image y grows downward) so use
      // simple half-plane construction.
      return v >= -1.0f && v <= 1.0f && std::fabs(u) <= (v + 1.0f) * 0.5f;
  }
  return false;
}

int sample_class(const std::vector<float>& weights, Rng& rng) {
  float total = 0.0f;
  for (float w : weights) total += w;
  float x = static_cast<float>(rng.uniform()) * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x <= 0.0f) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

}  // namespace

DetectionDataset generate_detection(const DetectionSpec& spec, int count,
                                    Rng& rng) {
  YOLOC_CHECK(count > 0, "detection: count must be positive");
  YOLOC_CHECK(static_cast<int>(spec.class_weights.size()) ==
                  kNumShapeClasses,
              "detection: class weight count mismatch");
  const int hw = spec.image_size;
  DetectionDataset ds;
  ds.images = Tensor({count, 3, hw, hw});
  ds.boxes.resize(static_cast<std::size_t>(count));
  const std::size_t plane = static_cast<std::size_t>(hw) * hw;

  // Class colors are deterministic so the detector can learn them; the
  // style's channel gains shift them between domains.
  static constexpr float kClassColor[kNumShapeClasses][3] = {
      {0.9f, 0.3f, 0.2f},   // disk
      {0.2f, 0.8f, 0.3f},   // square
      {0.3f, 0.4f, 0.9f},   // tall box
      {0.95f, 0.85f, 0.2f}  // triangle
  };

  for (int n = 0; n < count; ++n) {
    float* img = ds.images.data() + static_cast<std::size_t>(n) * 3 * plane;
    // Background: dim clutter field + noise.
    const float bg_fx = static_cast<float>(rng.uniform(0.3, 1.5));
    const float bg_fy = static_cast<float>(rng.uniform(0.3, 1.5));
    const float bg_phase = static_cast<float>(rng.uniform(0.0, 6.28));
    for (int i = 0; i < hw; ++i) {
      for (int j = 0; j < hw; ++j) {
        const float y = 2.0f * i / (hw - 1) - 1.0f;
        const float x = 2.0f * j / (hw - 1) - 1.0f;
        const float cl = 0.15f + 0.1f * spec.style.clutter *
                                     std::cos(3.14f * (bg_fx * x + bg_fy * y) +
                                              bg_phase);
        for (int c = 0; c < 3; ++c) {
          img[static_cast<std::size_t>(c) * plane +
              static_cast<std::size_t>(i) * hw + j] = cl;
        }
      }
    }

    const int num_objects = rng.uniform_int(1, spec.max_objects);
    for (int o = 0; o < num_objects; ++o) {
      const int cls = sample_class(spec.class_weights, rng);
      const float size =
          static_cast<float>(rng.uniform(spec.min_size, spec.max_size));
      // Tall boxes are narrower than tall (aspect preserved by the cover
      // function; bounding box is square except for tall boxes).
      const float bw = cls == static_cast<int>(ShapeClass::kTallBox)
                           ? size * 0.5f
                           : size;
      const float bh = size;
      const float cx = static_cast<float>(
          rng.uniform(bw / 2.0 + 0.02, 1.0 - bw / 2.0 - 0.02));
      const float cy = static_cast<float>(
          rng.uniform(bh / 2.0 + 0.02, 1.0 - bh / 2.0 - 0.02));

      const float gain =
          0.8f + 0.2f * static_cast<float>(rng.uniform());
      for (int i = 0; i < hw; ++i) {
        const float py = (static_cast<float>(i) + 0.5f) / hw;
        const float v = 2.0f * (py - cy) / bh;
        if (std::fabs(v) > 1.0f) continue;
        for (int j = 0; j < hw; ++j) {
          const float px = (static_cast<float>(j) + 0.5f) / hw;
          const float u = 2.0f * (px - cx) / bw;
          if (std::fabs(u) > 1.0f) continue;
          if (!shape_covers(static_cast<ShapeClass>(cls), u, v)) continue;
          for (int c = 0; c < 3; ++c) {
            img[static_cast<std::size_t>(c) * plane +
                static_cast<std::size_t>(i) * hw + j] =
                gain * kClassColor[cls][c] *
                spec.style.channel_gain[static_cast<std::size_t>(c)];
          }
        }
      }

      GtBox box;
      box.cx = cx;
      box.cy = cy;
      box.w = bw;
      box.h = bh;
      box.cls = cls;
      ds.boxes[static_cast<std::size_t>(n)].push_back(box);
    }

    // Pixel noise, clamped.
    for (std::size_t k = 0; k < 3 * plane; ++k) {
      img[k] = std::clamp(
          img[k] + static_cast<float>(rng.normal(0.0, spec.style.noise_std)),
          0.0f, 1.0f);
    }
  }
  return ds;
}

DetectionSpec coco_like_spec(int image_size) {
  DetectionSpec spec;
  spec.name = "coco-like";
  spec.image_size = image_size;
  spec.style.noise_std = 0.05f;
  spec.style.clutter = 0.3f;
  return spec;
}

DetectionSpec pedestrian_like_spec(int image_size) {
  DetectionSpec spec;
  spec.name = "pedestrian-like";
  spec.image_size = image_size;
  spec.class_weights = {0.3f, 0.3f, 3.0f, 0.3f};  // tall boxes dominate
  spec.style.noise_std = 0.08f;
  spec.style.clutter = 0.6f;
  spec.style.channel_gain = {0.85f, 0.85f, 0.95f};  // dim street scene
  return spec;
}

DetectionSpec traffic_like_spec(int image_size) {
  DetectionSpec spec;
  spec.name = "traffic-like";
  spec.image_size = image_size;
  spec.class_weights = {2.0f, 0.4f, 0.4f, 2.0f};  // disks + triangles
  spec.style.noise_std = 0.06f;
  spec.style.clutter = 0.4f;
  spec.style.channel_gain = {1.15f, 1.0f, 0.85f};  // saturated signage
  return spec;
}

DetectionSpec voc_like_spec(int image_size) {
  DetectionSpec spec;
  spec.name = "voc-like";
  spec.image_size = image_size;
  spec.class_weights = {1.0f, 1.2f, 1.0f, 0.8f};
  spec.style.noise_std = 0.07f;
  spec.style.clutter = 0.45f;
  spec.style.channel_gain = {1.05f, 0.9f, 1.0f};
  return spec;
}

}  // namespace yoloc
