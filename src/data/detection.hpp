#pragma once
// Synthetic object-detection scenes for the YOLoC detection experiments
// (paper Fig. 12: PASCAL VOC mAP; COCO -> Pedestrian/Traffic/VOC
// transfer).
//
// Scenes contain 1..max_objects geometric objects (the class set below)
// over a cluttered background. The COCO-like source spec mixes all
// classes uniformly; the transfer targets skew the class mix and restyle
// the scenes (pedestrian-like scenes are dominated by tall boxes, traffic
// scenes by disks/triangles), producing the domain shift the ReBranch
// fine-tune has to absorb.

#include <string>
#include <vector>

#include "data/patterns.hpp"
#include "nn/loss.hpp"  // GtBox
#include "tensor/tensor.hpp"

namespace yoloc {

/// Object classes available to scene generation.
enum class ShapeClass : int {
  kDisk = 0,
  kSquare = 1,
  kTallBox = 2,   // "pedestrian"-shaped
  kTriangle = 3,  // "traffic-sign"-shaped
};
constexpr int kNumShapeClasses = 4;

struct DetectionSpec {
  std::string name;
  int image_size = 48;
  int max_objects = 3;
  float min_size = 0.2f;  // object extent as fraction of image
  float max_size = 0.45f;
  /// Relative sampling weight per class (size kNumShapeClasses).
  std::vector<float> class_weights{1.0f, 1.0f, 1.0f, 1.0f};
  DomainStyle style;
};

struct DetectionDataset {
  Tensor images;  // (N, 3, H, W)
  std::vector<std::vector<GtBox>> boxes;
  int num_classes = kNumShapeClasses;
  [[nodiscard]] int size() const {
    return images.empty() ? 0 : images.shape()[0];
  }
};

DetectionDataset generate_detection(const DetectionSpec& spec, int count,
                                    Rng& rng);

/// Source suite ("COCO-like"): uniform class mix, neutral style.
DetectionSpec coco_like_spec(int image_size);
/// Target: mostly tall boxes, dim/cluttered street-like style.
DetectionSpec pedestrian_like_spec(int image_size);
/// Target: mostly disks and triangles, saturated style.
DetectionSpec traffic_like_spec(int image_size);
/// Target: balanced mix with a style shift ("VOC-like").
DetectionSpec voc_like_spec(int image_size);

}  // namespace yoloc
