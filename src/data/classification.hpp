#pragma once
// Synthetic classification dataset suites for the transfer-learning
// experiments (paper Figs. 10 & 11).
//
// The paper pretrains on CIFAR-100 and transfers to CIFAR-10 / MNIST /
// Fashion-MNIST / Caltech101. The stand-in suites below are constructed
// so that the *relative difficulty ordering* of those targets is
// preserved:
//   mnist-like    : clean, high-contrast, low-variance    -> easiest
//   fashion-like  : textured, moderate noise              -> medium
//   cifar10-like  : colorful, cluttered, shifted styles   -> medium-hard
//   caltech-like  : high intra-class variance, few shots  -> hardest
// All four share pattern *families* with the source suite (so a frozen
// feature extractor is partially reusable) but shift the generative
// parameters and the domain style (so pure All-ROM transfer loses
// accuracy — the effect ReBranch is designed to recover).

#include <string>
#include <vector>

#include "data/patterns.hpp"
#include "tensor/tensor.hpp"

namespace yoloc {

struct DatasetSpec {
  std::string name;
  int num_classes = 8;
  int image_size = 16;
  std::vector<ClassRecipe> recipes;  // one per class
  DomainStyle style;
};

struct LabeledDataset {
  Tensor images;  // (N, 3, H, W) in [0,1]
  std::vector<int> labels;
  int num_classes = 0;
  [[nodiscard]] int size() const {
    return images.empty() ? 0 : images.shape()[0];
  }
};

/// Sample `samples_per_class` images per class from the spec.
LabeledDataset generate_classification(const DatasetSpec& spec,
                                       int samples_per_class, Rng& rng);

/// Pretraining suite ("CIFAR-100-like"): 12 diverse classes covering all
/// pattern families under a neutral style.
DatasetSpec source_suite_spec(int image_size);

/// Transfer targets. Each takes the source families and shifts parameters
/// plus domain style; num_classes fixed at 8 so heads are comparable.
DatasetSpec cifar10_like_spec(int image_size);
DatasetSpec mnist_like_spec(int image_size);
DatasetSpec fashion_like_spec(int image_size);
DatasetSpec caltech_like_spec(int image_size);

/// The full list of transfer targets, in paper order (Fig. 10a).
std::vector<DatasetSpec> all_transfer_targets(int image_size);

}  // namespace yoloc
