#pragma once
// Deploy-time ROM weight packing (the fast-path counterpart of
// macro/cim_macro.*).
//
// The premise of ROM-based CiM is that weights are immutable after
// tape-out: the bit-sliced column pattern a weight matrix occupies in the
// subarray is fixed for the lifetime of the chip. The legacy
// CimMacro::mvm nevertheless re-derived every output row's weight
// bit-plane masks for every im2col column of every request —
// O(m * k * weight_bits) redundant work per column that dwarfs the
// popcount + ADC math it feeds.
//
// PackedRomWeights performs that expansion exactly once per (weight
// buffer, macro geometry): per subarray row-tile it stores each output
// row's weight bit-planes as 128-bit row masks, the per-activation-group
// boundary masks (so the inner count becomes unmasked AND + popcount
// instead of branchy range clamping), and the digital shift-add weight
// table bit_weight[b] * 2^t. The structure is immutable after
// construction and is shared read-only by every ExecutionContext serving
// the plan — only activations move at serve time.
//
// PackedWeightsCache maps a layer's weight buffer to its packing. A
// DeploymentPlan owns one cache per macro engine and pre-packs every
// quantized layer at lowering/load time; the cache also packs lazily (under
// a shared_mutex) so standalone engine users get the fast path on first
// touch.

#include <array>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "macro/macro_config.hpp"

namespace yoloc {

/// 128 rows fit two 64-bit lanes; mask type for subarray row bitsets.
/// (Shared by the legacy per-call path in cim_macro.cpp and the packed
/// representation below.)
struct RowMask {
  std::uint64_t lane[2] = {0, 0};

  void set(int i) { lane[i >> 6] |= (1ull << (i & 63)); }

  /// Popcount of (this & other) over bit range [lo, hi) — the legacy
  /// branchy range-clamped count.
  [[nodiscard]] int count_and(const RowMask& other, int lo, int hi) const {
    int total = 0;
    for (int l = 0; l < 2; ++l) {
      const int base = l * 64;
      const int a = lo - base > 0 ? lo - base : 0;
      const int b = hi - base < 64 ? hi - base : 64;
      if (a >= b) continue;
      std::uint64_t m = lane[l] & other.lane[l];
      if (a > 0) m &= ~0ull << a;
      if (b < 64) m &= (b == 64) ? ~0ull : ((1ull << b) - 1);
      total += std::popcount(m);
    }
    return total;
  }

  /// Popcount of (this & x & group) — the packed fast path: two unmasked
  /// AND + popcounts per lane, no range clamping.
  [[nodiscard]] int count_and3(const RowMask& x, const RowMask& group) const {
    return std::popcount(lane[0] & x.lane[0] & group.lane[0]) +
           std::popcount(lane[1] & x.lane[1] & group.lane[1]);
  }

  [[nodiscard]] int count() const {
    return std::popcount(lane[0]) + std::popcount(lane[1]);
  }

  // Lane-wise mask combinators (fault overlays in cim_macro.cpp).
  void or_with(const RowMask& m) {
    lane[0] |= m.lane[0];
    lane[1] |= m.lane[1];
  }
  void and_not(const RowMask& m) {
    lane[0] &= ~m.lane[0];
    lane[1] &= ~m.lane[1];
  }
  void xor_with(const RowMask& m) {
    lane[0] ^= m.lane[0];
    lane[1] ^= m.lane[1];
  }
};

/// Immutable compute-native layout of one weight matrix for one macro
/// geometry. `w` is (m x k) row-major int8; the reduction dimension is
/// tiled over subarray row capacity exactly like MacroMvmEngine tiles it,
/// so tile t covers rows [t*rows, min(k, (t+1)*rows)).
class PackedRomWeights {
 public:
  struct Tile {
    int k0 = 0;      // first source row of this tile
    int k_size = 0;  // rows in this tile (<= geometry rows)
    int groups = 0;  // ceil(k_size / rows_per_activation)
    /// Activation-group boundary masks, one per group.
    std::vector<RowMask> group_masks;
    /// Weight bit-planes: wbits[j * weight_bits + b] holds bit b of
    /// output row j's weights over this tile's rows — exactly the
    /// columns the ROM physically stores. Only the analog path reads
    /// these; the exact-cost path keeps its integer MAC on the raw int8
    /// rows (which also covers weights overflowing a narrow
    /// weight_bits).
    std::vector<RowMask> wbits;
  };

  /// `pack_planes = false` builds only the tile boundaries and group
  /// masks (what the exact-cost path needs — it MACs the raw int8 rows
  /// and never reads wbits), skipping the plane expansion's time and
  /// memory.
  PackedRomWeights(const std::int8_t* w, int m, int k,
                   const MacroGeometry& geometry, bool pack_planes = true);

  [[nodiscard]] int m() const { return m_; }
  [[nodiscard]] int k() const { return k_; }
  [[nodiscard]] int weight_bits() const { return weight_bits_; }
  [[nodiscard]] int input_bits() const { return input_bits_; }
  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int rows_per_activation() const {
    return rows_per_activation_;
  }
  [[nodiscard]] int tile_count() const {
    return static_cast<int>(tiles_.size());
  }
  [[nodiscard]] const Tile& tile(int i) const {
    return tiles_[static_cast<std::size_t>(i)];
  }
  /// False when built with pack_planes = false (exact-cost deployments):
  /// tiles carry boundaries and group masks but empty wbits.
  [[nodiscard]] bool has_planes() const { return has_planes_; }

  /// Digital shift-add weights: entry [b * input_bits + t] is
  /// bit_weight(b) * 2^t, with the MSB carrying its two's-complement
  /// negative factor. Both factors are exact powers of two, so folding
  /// them into one table keeps the packed accumulation bit-identical to
  /// the legacy (est * bit_weight) * 2^t order.
  [[nodiscard]] const double* bit_cycle_weight() const {
    return bit_cycle_weight_.data();
  }

  /// One-time packing cost [ms] (reported by bench_macro_mvm).
  [[nodiscard]] double pack_ms() const { return pack_ms_; }
  /// Resident size of the packed representation [bytes] — roughly the
  /// size of the int8 weight buffer itself (128 int8 weights expand to
  /// weight_bits 16-byte masks).
  [[nodiscard]] std::size_t packed_bytes() const { return packed_bytes_; }

 private:
  int m_;
  int k_;
  int rows_;
  int weight_bits_;
  int input_bits_;
  int rows_per_activation_;
  bool has_planes_ = true;
  std::vector<Tile> tiles_;
  std::vector<double> bit_cycle_weight_;
  double pack_ms_ = 0.0;
  std::size_t packed_bytes_ = 0;
};

/// Concurrent read-mostly registry: weight buffer -> packing. Keyed by
/// (data pointer, m, k); one cache serves exactly one macro geometry (a
/// DeploymentPlan owns one per engine), which a geometry check enforces
/// on every hit. Entries are never evicted — the backing weight buffers
/// live as long as the plan that owns this cache.
class PackedWeightsCache {
 public:
  PackedWeightsCache() = default;
  PackedWeightsCache(const PackedWeightsCache&) = delete;
  PackedWeightsCache& operator=(const PackedWeightsCache&) = delete;

  /// Returns the packing for `w`, building it on first touch. Safe to
  /// call concurrently; callers may retain the reference for the
  /// lifetime of the cache. `pack_planes = false` requests the
  /// boundaries-only packing (exact-cost engines). A cheap sampled
  /// content check runs on every hit: it turns the most likely form of
  /// key-aliasing (a freed weight buffer reallocated at the same
  /// address with different contents) into a loud error instead of
  /// silently stale bit-planes — the real invariant remains that cached
  /// weight buffers outlive the cache, as plan-owned caches guarantee.
  const PackedRomWeights& get_or_pack(const std::int8_t* w, int m, int k,
                                      const MacroGeometry& geometry,
                                      bool pack_planes = true) const;

  [[nodiscard]] std::size_t entries() const;
  /// Total resident bytes across all packings.
  [[nodiscard]] std::size_t packed_bytes() const;
  /// Total one-time packing cost [ms] across all packings.
  [[nodiscard]] double total_pack_ms() const;

 private:
  struct Key {
    const std::int8_t* w;
    int m;
    int k;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const {
      std::size_t h = std::hash<const void*>{}(key.w);
      h ^= std::hash<int>{}(key.m) + 0x9e3779b9 + (h << 6) + (h >> 2);
      h ^= std::hash<int>{}(key.k) + 0x9e3779b9 + (h << 6) + (h >> 2);
      return h;
    }
  };

  struct Entry {
    std::unique_ptr<PackedRomWeights> packed;
    /// Sampled weight bytes (first/middle/last) captured at pack time;
    /// rechecked on every hit (see get_or_pack).
    std::array<std::int8_t, 3> sample{};
  };

  mutable std::shared_mutex mutex_;
  mutable std::unordered_map<Key, Entry, KeyHash> entries_;
};

}  // namespace yoloc
