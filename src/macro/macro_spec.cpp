#include "macro/macro_spec.hpp"

#include <vector>

#include "common/units.hpp"

namespace yoloc {

MacroSpecSummary summarize_macro(const CimMacro& macro, Rng& rng, int samples,
                                 double reference_density_mb_per_mm2) {
  const MacroConfig& cfg = macro.config();
  const MacroGeometry& g = cfg.geometry;

  MacroSpecSummary s;
  s.macro_size_mb = g.capacity_bits() / kBitsPerMb;
  s.macro_area_mm2 = cfg.area_mm2();
  s.density_mb_per_mm2 = cfg.density_mb_per_mm2();
  s.cell_area_um2 = cfg.area.cell_area_um2;
  s.input_bits = g.input_bits;
  s.weight_bits = g.weight_bits;
  s.inference_time_ns = macro.single_pass_latency_ns();
  s.operation_number = 2 * g.rows;
  s.throughput_gops = gops(s.operation_number, s.inference_time_ns);
  s.area_eff_gops_per_mm2 = s.throughput_gops / s.macro_area_mm2;
  s.standby_power_uw = cfg.standby_power_uw;
  s.density_ratio = s.density_mb_per_mm2 / reference_density_mb_per_mm2;

  // Measure MAC energy efficiency on random full-row dot products.
  MacroRunStats stats;
  const int k = g.rows;
  const int m = g.weights_per_row();
  std::vector<std::int8_t> w(static_cast<std::size_t>(m) * k);
  std::vector<std::uint8_t> x(static_cast<std::size_t>(k));
  std::vector<std::int32_t> y(static_cast<std::size_t>(m));
  for (int iter = 0; iter < samples; ++iter) {
    for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
    for (auto& v : x) v = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    macro.mvm(w.data(), m, k, x.data(), y.data(), rng, stats);
  }
  const double ops = 2.0 * static_cast<double>(stats.macs);
  s.mac_eff_tops_per_w = tops_per_watt(ops, stats.energy_pj());
  return s;
}

TextTable macro_spec_table(const MacroSpecSummary& s) {
  TextTable t({"Parameter", "Value"});
  t.add_row({"Process", s.process});
  t.add_row({"Macro size", format_fixed(s.macro_size_mb, 2) + " Mb"});
  t.add_row({"Macro area", format_fixed(s.macro_area_mm2, 3) + " mm^2"});
  t.add_row({"Macro density",
             format_fixed(s.density_mb_per_mm2, 2) + " Mb/mm^2 (" +
                 format_fixed(s.density_ratio, 1) + "x)"});
  t.add_row({"Cell area", format_fixed(s.cell_area_um2, 3) + " um^2"});
  t.add_row({"Input x weight", std::to_string(s.input_bits) + "-bit x " +
                                   std::to_string(s.weight_bits) + "-bit"});
  t.add_row({"Inference time", format_fixed(s.inference_time_ns, 1) + " ns"});
  t.add_row({"Operation number", std::to_string(s.operation_number)});
  t.add_row({"Throughput", format_fixed(s.throughput_gops, 1) + " GOPS"});
  t.add_row({"Macro area efficiency",
             format_fixed(s.area_eff_gops_per_mm2, 1) + " GOPS/mm^2"});
  t.add_row({"MAC energy efficiency",
             format_fixed(s.mac_eff_tops_per_w, 1) + " TOPS/W"});
  t.add_row({"Standby power",
             s.standby_power_uw == 0.0
                 ? std::string("0 (non-volatile)")
                 : format_fixed(s.standby_power_uw, 1) + " uW"});
  return t;
}

}  // namespace yoloc
