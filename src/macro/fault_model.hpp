#pragma once
// Deterministic per-macro fault injection (real CiM silicon suffers
// stuck-at cells, ADC drift and transient bit flips; the RRAM
// error-correction and PCM variation-handling lines of work treat fault
// tolerance as a first-class system layer — see PAPERS.md).
//
// Three fault classes, all derived by counter-based hashing (SplitMix64)
// from (seed, macro kind, fault stream, coordinates) — no mutable draw
// state, so the model is shared read-only by every worker thread and the
// SAME pattern afflicts every call, every replay:
//   * stuck-at-0 / stuck-at-1 — a bit-plane cell reads as a constant
//     regardless of the stored weight bit. Keyed (j, b, i).
//   * transient flips — a cell's readout inverts on specific input
//     cycles (residual SRAM bit-flip model). Keyed (j, b, t, i): a fixed
//     per-(column, cycle) pattern, deterministic across replays.
//   * ADC drift — a column's converter transfer gains a per-(j, b)
//     offset/gain error, applied to the count estimate after the
//     canonical read chain (circuit/cim_array.hpp AdcDrift).
//
// Coordinates are LOCAL tile coordinates: the engine time-multiplexes
// reduction tiles onto one physical subarray, and the legacy mvm() path
// only ever sees per-tile chunks — keying on local (j, b, i) keeps the
// legacy and packed paths bit-identical under faults (parity-tested in
// tests/test_fault.cpp). Stuck/flip bits at rows >= the tile's k are
// harmless: every count ANDs with activation bits that are zero there.
//
// The only runtime state is an atomic `active` flag so chaos drills can
// inject and clear the fault mid-traffic; rates and seed are frozen at
// construction (and in the .yolocplan artifact).

#include <atomic>
#include <cstdint>

#include "circuit/cim_array.hpp"
#include "macro/packed_weights.hpp"

namespace yoloc {

class FaultModel {
 public:
  /// Stuck-at overlays for one (output column j, weight bit b) plane:
  /// effective = (stored | force_one) & ~force_zero. A cell drawn for
  /// both classes sticks at zero (the short dominates).
  struct PlaneFaults {
    RowMask force_one;
    RowMask force_zero;
  };

  /// `salt` distinguishes macros sharing a seed (the plan passes the
  /// macro kind); `rows` bounds the per-plane Bernoulli scan.
  FaultModel(const FaultModelConfig& config, std::uint64_t salt, int rows);

  [[nodiscard]] bool active() const {
    return active_.load(std::memory_order_relaxed);
  }
  /// Inject (true) or clear (false) the faults at runtime. The pattern
  /// itself never changes — only whether reads see it.
  void set_active(bool on) { active_.store(on, std::memory_order_relaxed); }

  [[nodiscard]] const FaultModelConfig& config() const { return config_; }

  [[nodiscard]] PlaneFaults plane(int j, int b) const;

  [[nodiscard]] bool has_transients() const {
    return config_.transient_flip_rate > 0.0;
  }
  [[nodiscard]] RowMask transient_flips(int j, int b, int t) const;

  [[nodiscard]] AdcDrift adc_drift(int j, int b) const;

  /// Faulted cells across the first `m_cols` x `weight_bits` planes —
  /// reporting/tests (stuck-at only; transients are per-cycle).
  [[nodiscard]] std::uint64_t stuck_cell_count(int m_cols,
                                               int weight_bits) const;

 private:
  [[nodiscard]] RowMask bernoulli_mask(std::uint64_t stream, int j, int b,
                                       int t, double rate) const;

  FaultModelConfig config_;
  std::uint64_t salt_;
  int rows_;
  std::atomic<bool> active_;
};

}  // namespace yoloc
