#include "macro/macro_config.hpp"

#include "common/check.hpp"
#include "common/units.hpp"

namespace yoloc {

void MacroConfig::validate() const {
  const auto& g = geometry;
  YOLOC_CHECK(g.rows > 0 && g.cols > 0 && g.subarrays > 0,
              "macro config: non-positive geometry");
  YOLOC_CHECK(g.weight_bits >= 1 && g.weight_bits <= 16,
              "macro config: weight_bits out of range");
  YOLOC_CHECK(g.cols % g.weight_bits == 0 && g.weights_per_row() >= 1,
              "macro config: cols must hold a whole number of weights");
  YOLOC_CHECK(g.input_bits >= 1 && g.input_bits <= 16,
              "macro config: input_bits out of range");
  YOLOC_CHECK(g.rows_per_activation >= 1 && g.rows_per_activation <= g.rows,
              "macro config: rows_per_activation out of [1, rows]");
  YOLOC_CHECK(g.adc_per_subarray >= 1,
              "macro config: adc_per_subarray must be positive");
  YOLOC_CHECK(g.adc_bits >= 1 && g.adc_bits <= 16,
              "macro config: adc_bits out of range");
  YOLOC_CHECK(g.clock_ns > 0.0, "macro config: non-positive clock");
  YOLOC_CHECK(adc.bits >= 1 && adc.bits <= 16,
              "macro config: ADC resolution out of range");
  YOLOC_CHECK(adc.v_hi > adc.v_lo, "macro config: ADC full-scale inverted");
  YOLOC_CHECK(adc.noise_sigma_v >= 0.0 && adc.energy_pj >= 0.0 &&
                  adc.t_conv_ns > 0.0,
              "macro config: bad ADC noise/energy/timing");
  YOLOC_CHECK(bitline.c_bl_ff > 0.0 && bitline.i_cell_ua > 0.0 &&
                  bitline.t_pulse_ns > 0.0,
              "macro config: non-positive bitline electricals");
  YOLOC_CHECK(bitline.v_precharge > bitline.v_floor,
              "macro config: bitline precharge below discharge floor");
  YOLOC_CHECK(bitline.sigma_cell >= 0.0,
              "macro config: negative cell mismatch");
  YOLOC_CHECK(energy.wl_pulse_pj >= 0.0 && energy.shift_add_pj >= 0.0 &&
                  energy.dac_driver_pj >= 0.0,
              "macro config: negative event energy");
  YOLOC_CHECK(area.cell_area_um2 > 0.0 && area.adc_area_um2 >= 0.0 &&
                  area.driver_area_per_row_um2 >= 0.0 &&
                  area.shift_add_area_um2 >= 0.0 &&
                  area.macro_overhead_um2 >= 0.0,
              "macro config: bad area constants");
  YOLOC_CHECK(write_energy_pj_per_bit >= 0.0 &&
                  write_bandwidth_bits_per_ns >= 0.0 &&
                  standby_power_uw >= 0.0,
              "macro config: negative write/standby costs");
  YOLOC_CHECK(writable() || write_bandwidth_bits_per_ns == 0.0,
              "macro config: ROM macros cannot have a write port");
  for (const double rate : {faults.stuck_at_zero_rate,
                            faults.stuck_at_one_rate,
                            faults.transient_flip_rate}) {
    YOLOC_CHECK(rate >= 0.0 && rate <= 1.0,
                "macro config: fault rate out of [0, 1]");
  }
  YOLOC_CHECK(faults.adc_offset_max >= 0.0 && faults.adc_gain_max >= 0.0,
              "macro config: negative ADC drift bound");
  YOLOC_CHECK(faults.adc_gain_max < 1.0,
              "macro config: ADC gain drift must stay below 100%");
}

double MacroConfig::area_mm2() const {
  const auto& g = geometry;
  const double cells_um2 = g.capacity_bits() * area.cell_area_um2;
  const double adc_um2 =
      static_cast<double>(g.subarrays) * g.adc_per_subarray * area.adc_area_um2;
  const double periph_um2 =
      static_cast<double>(g.subarrays) *
      (g.rows * area.driver_area_per_row_um2 + area.shift_add_area_um2);
  return (cells_um2 + adc_um2 + periph_um2 + area.macro_overhead_um2) /
         kUm2PerMm2;
}

double MacroConfig::density_mb_per_mm2() const {
  return mb_per_mm2(geometry.capacity_bits(), area_mm2());
}

MacroConfig::AreaBreakdown MacroConfig::area_breakdown() const {
  const auto& g = geometry;
  const double total = area_mm2() * kUm2PerMm2;
  AreaBreakdown b;
  b.array = g.capacity_bits() * area.cell_area_um2 / total;
  b.adc = static_cast<double>(g.subarrays) * g.adc_per_subarray *
          area.adc_area_um2 / total;
  b.periphery = static_cast<double>(g.subarrays) *
                (g.rows * area.driver_area_per_row_um2 +
                 area.shift_add_area_um2) /
                total;
  b.overhead = area.macro_overhead_um2 / total;
  return b;
}

MacroConfig default_rom_macro() {
  MacroConfig cfg;
  cfg.kind = MacroKind::kRom;
  // Geometry defaults already match the paper (128x256, 16 ADCs, 5b).
  cfg.bitline.c_bl_ff = 100.0;
  cfg.bitline.v_precharge = 0.9;
  cfg.bitline.i_cell_ua = 2.0;
  cfg.bitline.t_pulse_ns = 0.35;
  cfg.bitline.sigma_cell = 0.02;  // fixed 1T cells: low mismatch
  cfg.adc.bits = cfg.geometry.adc_bits;
  cfg.adc.energy_pj = 0.070;
  // Input-referred noise must stay well below 0.5 LSB (7 mV here) for a
  // functional 5-bit converter; MSB-weighted reads amplify code flips by
  // 2^14, so ~0.07 LSB is the operating point.
  cfg.adc.noise_sigma_v = 0.0005;
  cfg.adc.t_conv_ns = cfg.geometry.clock_ns;
  cfg.energy.wl_pulse_pj = 0.0006;
  cfg.energy.dac_driver_pj = 0.0010;
  cfg.energy.shift_add_pj = 0.012;
  cfg.area.cell_area_um2 = 0.014;
  cfg.standby_power_uw = 0.0;  // non-volatile
  return cfg;
}

MacroConfig default_sram_macro() {
  MacroConfig cfg;
  cfg.kind = MacroKind::kSram;
  // 384 kb macro: 12 subarrays of 32 kb.
  cfg.geometry.subarrays = 12;
  cfg.bitline.c_bl_ff = 140.0;    // larger cells -> longer bitline
  cfg.bitline.v_precharge = 0.9;
  cfg.bitline.i_cell_ua = 2.0;
  cfg.bitline.t_pulse_ns = 0.49;  // keep per-cell dV matched
  cfg.bitline.sigma_cell = 0.05;  // 6T compute cells: higher mismatch
  cfg.adc.bits = cfg.geometry.adc_bits;
  cfg.adc.energy_pj = 0.078;
  cfg.adc.noise_sigma_v = 0.0008;  // noisier supply on the R/W-shared rail
  cfg.adc.t_conv_ns = cfg.geometry.clock_ns;
  cfg.energy.wl_pulse_pj = 0.0011;  // heavier wordline load
  cfg.energy.dac_driver_pj = 0.0010;
  cfg.energy.shift_add_pj = 0.012;
  cfg.area.cell_area_um2 = 0.259;  // [3]'s CiM cell (18.5x ROM)
  // SRAM-CiM periphery is pitch-matched to the (4.3x wider) 6T compute
  // cell and carries a full read/write interface: per-row drivers,
  // per-column write circuitry and IO are an order of magnitude larger
  // than the ROM macro's fixed-data periphery. Constants calibrated so
  // the macro-level density lands at the paper's ~0.26 Mb/mm^2 (the
  // "19x" gap quoted in Sec. 4.3.1).
  cfg.area.adc_area_um2 = 2400.0;
  cfg.area.shift_add_area_um2 = 3000.0;
  cfg.area.driver_area_per_row_um2 = 60.0;
  cfg.area.macro_overhead_um2 = 700000.0;
  cfg.write_energy_pj_per_bit = 0.06;     // SRAM write + WL/BL switching
  cfg.write_bandwidth_bits_per_ns = 256.0;  // 256-bit write port
  cfg.standby_power_uw = 45.0;            // array leakage
  return cfg;
}

}  // namespace yoloc
