#pragma once
// Table I generator: derive the macro specification summary from the
// configured models (geometry + area model + a measured energy run), so
// the printed numbers are model outputs rather than constants.

#include <string>

#include "common/table.hpp"
#include "macro/cim_macro.hpp"

namespace yoloc {

struct MacroSpecSummary {
  std::string process = "28nm CMOS";
  double macro_size_mb = 0.0;
  double macro_area_mm2 = 0.0;
  double density_mb_per_mm2 = 0.0;
  double cell_area_um2 = 0.0;
  int input_bits = 0;
  int weight_bits = 0;
  /// One bit-serial pass (input_bits cycles), the paper's accounting unit.
  double inference_time_ns = 0.0;
  /// Ops per pass: 2 * rows (one full-column dot product, MAC = 2 ops).
  int operation_number = 0;
  double throughput_gops = 0.0;
  double area_eff_gops_per_mm2 = 0.0;
  /// Measured by running a random MVM through the functional model.
  double mac_eff_tops_per_w = 0.0;
  double standby_power_uw = 0.0;
  /// Macro density ratio vs the given reference density.
  double density_ratio = 0.0;
};

/// Summarize `macro`, measuring energy with `samples` random dot products.
/// `reference_density_mb_per_mm2` sets the "(Nx)" density comparison (the
/// paper compares against its 6T SRAM-CiM counterpart at ~0.195 Mb/mm^2).
MacroSpecSummary summarize_macro(const CimMacro& macro, Rng& rng,
                                 int samples = 64,
                                 double reference_density_mb_per_mm2 = 0.195);

/// Render the summary in Table I's row order.
TextTable macro_spec_table(const MacroSpecSummary& summary);

}  // namespace yoloc
