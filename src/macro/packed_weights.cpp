#include "macro/packed_weights.hpp"

#include <chrono>

#include "common/check.hpp"

namespace yoloc {

PackedRomWeights::PackedRomWeights(const std::int8_t* w, int m, int k,
                                   const MacroGeometry& geometry,
                                   bool pack_planes)
    : m_(m),
      k_(k),
      rows_(geometry.rows),
      weight_bits_(geometry.weight_bits),
      input_bits_(geometry.input_bits),
      rows_per_activation_(geometry.rows_per_activation),
      has_planes_(pack_planes) {
  YOLOC_CHECK(w != nullptr, "packed weights: null weight buffer");
  YOLOC_CHECK(m >= 1 && k >= 1, "packed weights: bad shape");
  YOLOC_CHECK(rows_ >= 1 && rows_ <= 128,
              "packed weights: row masks support up to 128 rows");
  YOLOC_CHECK(weight_bits_ >= 1 && weight_bits_ <= 8,
              "packed weights: weight_bits out of [1, 8]");
  YOLOC_CHECK(input_bits_ >= 1 && input_bits_ <= 8,
              "packed weights: input_bits out of [1, 8]");
  const auto start = std::chrono::steady_clock::now();

  // Shift-add weight table: MSB carries the two's-complement negative
  // factor (bit 7 of an 8-bit weight contributes with -128).
  bit_cycle_weight_.resize(static_cast<std::size_t>(weight_bits_) *
                           input_bits_);
  for (int b = 0; b < weight_bits_; ++b) {
    const double bit_weight = (b == weight_bits_ - 1)
                                  ? -static_cast<double>(1 << b)
                                  : static_cast<double>(1 << b);
    for (int t = 0; t < input_bits_; ++t) {
      bit_cycle_weight_[static_cast<std::size_t>(b) * input_bits_ + t] =
          bit_weight * static_cast<double>(1 << t);
    }
  }

  // One tile per subarray row-chunk, mirroring MacroMvmEngine's k tiling.
  const int tile_count = (k + rows_ - 1) / rows_;
  tiles_.resize(static_cast<std::size_t>(tile_count));
  for (int ti = 0; ti < tile_count; ++ti) {
    Tile& tile = tiles_[static_cast<std::size_t>(ti)];
    tile.k0 = ti * rows_;
    tile.k_size = (k - tile.k0 < rows_) ? k - tile.k0 : rows_;
    tile.groups =
        (tile.k_size + rows_per_activation_ - 1) / rows_per_activation_;

    tile.group_masks.resize(static_cast<std::size_t>(tile.groups));
    for (int grp = 0; grp < tile.groups; ++grp) {
      const int lo = grp * rows_per_activation_;
      const int hi = (tile.k_size < lo + rows_per_activation_)
                         ? tile.k_size
                         : lo + rows_per_activation_;
      for (int i = lo; i < hi; ++i) {
        tile.group_masks[static_cast<std::size_t>(grp)].set(i);
      }
    }

    if (!pack_planes) {
      packed_bytes_ += tile.group_masks.size() * sizeof(RowMask);
      continue;
    }
    tile.wbits.resize(static_cast<std::size_t>(m) * weight_bits_);
    for (int j = 0; j < m; ++j) {
      RowMask* planes =
          tile.wbits.data() + static_cast<std::size_t>(j) * weight_bits_;
      const std::int8_t* wrow =
          w + static_cast<std::size_t>(j) * k + tile.k0;
      for (int i = 0; i < tile.k_size; ++i) {
        const unsigned wv = static_cast<std::uint8_t>(wrow[i]);
        const int lane = i >> 6;
        const int shift = i & 63;
        for (int b = 0; b < weight_bits_; ++b) {
          planes[b].lane[lane] |=
              static_cast<std::uint64_t>((wv >> b) & 1u) << shift;
        }
      }
    }
    packed_bytes_ += tile.wbits.size() * sizeof(RowMask) +
                     tile.group_masks.size() * sizeof(RowMask);
  }
  packed_bytes_ += bit_cycle_weight_.size() * sizeof(double);

  pack_ms_ = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - start)
                 .count();
}

namespace {

std::array<std::int8_t, 3> sample_weights(const std::int8_t* w, int m,
                                          int k) {
  const std::size_t n = static_cast<std::size_t>(m) * k;
  return {w[0], w[n / 2], w[n - 1]};
}

}  // namespace

const PackedRomWeights& PackedWeightsCache::get_or_pack(
    const std::int8_t* w, int m, int k, const MacroGeometry& geometry,
    bool pack_planes) const {
  const Key key{w, m, k};
  {
    std::shared_lock lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      const PackedRomWeights& packed = *it->second.packed;
      YOLOC_CHECK(packed.rows() == geometry.rows &&
                      packed.weight_bits() == geometry.weight_bits &&
                      packed.input_bits() == geometry.input_bits &&
                      packed.rows_per_activation() ==
                          geometry.rows_per_activation &&
                      packed.has_planes() == pack_planes,
                  "packed weights cache: one cache serves one macro "
                  "geometry/mode — use a separate cache per engine");
      // Tripwire for the documented lifetime invariant (cached buffers
      // must outlive the cache): a reallocated buffer with different
      // contents at the same address fails loudly here instead of
      // computing with stale bit-planes.
      YOLOC_CHECK(it->second.sample == sample_weights(w, m, k),
                  "packed weights cache: weight buffer contents changed "
                  "under a cached key — the buffer must stay alive and "
                  "immutable for the cache's lifetime");
      return packed;
    }
  }
  // Pack outside the lock (packing is deterministic, so a racing
  // duplicate is just discarded by try_emplace).
  auto packed =
      std::make_unique<PackedRomWeights>(w, m, k, geometry, pack_planes);
  std::unique_lock lock(mutex_);
  auto [it, inserted] = entries_.try_emplace(
      key, Entry{std::move(packed), sample_weights(w, m, k)});
  return *it->second.packed;
}

std::size_t PackedWeightsCache::entries() const {
  std::shared_lock lock(mutex_);
  return entries_.size();
}

std::size_t PackedWeightsCache::packed_bytes() const {
  std::shared_lock lock(mutex_);
  std::size_t total = 0;
  for (const auto& [key, entry] : entries_) {
    total += entry.packed->packed_bytes();
  }
  return total;
}

double PackedWeightsCache::total_pack_ms() const {
  std::shared_lock lock(mutex_);
  double total = 0.0;
  for (const auto& [key, entry] : entries_) total += entry.packed->pack_ms();
  return total;
}

}  // namespace yoloc
