#pragma once
// Functional + cost model of one CiM macro executing integer MVMs.
//
// Computing discipline (paper Fig. 5):
//   * A weight matrix chunk W (m outputs x k rows, int8) is bit-sliced:
//     weight bit b of output j lives in column j*8+b of the subarray.
//   * The activation vector x (k entries, uint8) is applied bit-serially:
//     input cycle t pulses the wordlines of rows whose activation bit t
//     is 1.
//   * Rows are activated `rows_per_activation` at a time; each active
//     group, input cycle and weight-bit column produces one ADC read of
//     the ON-cell count (cells where weight bit AND input bit are 1).
//   * The digital backend reconstructs y = W x via shift-and-add with
//     two's-complement weighting (bit 7 contributes with factor -128).
//
// The same engine drives both macro kinds; the MacroConfig supplies the
// analog parameters (ROM: low mismatch; SRAM: higher mismatch, heavier
// wordlines) and the cost constants.

#include <cstdint>
#include <vector>

#include "macro/macro_config.hpp"

namespace yoloc {

/// Activity + energy + latency of one or more macro operations.
struct MacroRunStats {
  ArrayReadStats array;
  std::uint64_t macro_ops = 0;   // MVM tiles executed
  std::uint64_t macs = 0;        // exact integer MACs represented
  double latency_ns = 0.0;       // serialized conversion slots
  [[nodiscard]] double energy_pj() const { return array.total_energy_pj(); }
  void accumulate(const MacroRunStats& other);
};

class CimMacro {
 public:
  explicit CimMacro(MacroConfig config);

  /// Analog-modeled MVM: y (int32, m entries) ~= W (m x k, int8) * x
  /// (k entries, uint8). k must fit the subarray rows. Accumulates
  /// activity into stats. Noise/quantization follow the circuit model.
  void mvm(const std::int8_t* w, int m, int k, const std::uint8_t* x,
           std::int32_t* y, Rng& rng, MacroRunStats& stats) const;

  /// Bit-exact variant that still pays the modeled energy/latency —
  /// used to isolate cost modeling from accuracy modeling.
  void mvm_exact_cost(const std::int8_t* w, int m, int k,
                      const std::uint8_t* x, std::int32_t* y,
                      MacroRunStats& stats) const;

  [[nodiscard]] const MacroConfig& config() const { return config_; }
  [[nodiscard]] const CimArrayModel& array_model() const { return array_; }

  /// Latency of a single full bit-serial pass (Table I "inference time"):
  /// input_bits serial cycles at the macro clock.
  [[nodiscard]] double single_pass_latency_ns() const;

 private:
  /// Shared bookkeeping for both mvm variants.
  void charge_op_costs(int m, int k, const std::uint8_t* x,
                       MacroRunStats& stats) const;

  MacroConfig config_;
  CimArrayModel array_;
};

}  // namespace yoloc
