#pragma once
// Functional + cost model of one CiM macro executing integer MVMs.
//
// Computing discipline (paper Fig. 5):
//   * A weight matrix chunk W (m outputs x k rows, int8) is bit-sliced:
//     weight bit b of output j lives in column j*8+b of the subarray.
//   * The activation vector x (k entries, uint8) is applied bit-serially:
//     input cycle t pulses the wordlines of rows whose activation bit t
//     is 1.
//   * Rows are activated `rows_per_activation` at a time; each active
//     group, input cycle and weight-bit column produces one ADC read of
//     the ON-cell count (cells where weight bit AND input bit are 1).
//   * The digital backend reconstructs y = W x via shift-and-add with
//     two's-complement weighting (bit 7 contributes with factor -128).
//
// The same engine drives both macro kinds; the MacroConfig supplies the
// analog parameters (ROM: low mismatch; SRAM: higher mismatch, heavier
// wordlines) and the cost constants.
//
// Two functional paths exist per mode:
//   * mvm / mvm_exact_cost: the legacy per-call path that derives weight
//     bit-planes from the raw int8 buffer on every call.
//   * mvm_packed / mvm_packed_exact_cost: the deploy-time fast path over
//     a PackedRomWeights tile. Bit-identical to the legacy path — same
//     outputs, same stats, and (in analog mode) the same RNG draw order
//     (j, b, t, grp) — just without re-deriving what ROM weights cannot
//     change. When the config is noise-free (sigma_cell == 0 AND
//     adc.noise_sigma_v == 0) the packed analog path additionally skips
//     the zero-scaled noise draws and reads the ADC transfer from a
//     precomputed count -> estimate table; outputs and stats stay
//     bit-identical (every skipped draw was multiplied by 0), but the
//     session RNG is no longer advanced by such calls.

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "macro/fault_model.hpp"
#include "macro/macro_config.hpp"
#include "macro/packed_weights.hpp"

namespace yoloc {

/// Activity + energy + latency of one or more macro operations.
struct MacroRunStats {
  ArrayReadStats array;
  std::uint64_t macro_ops = 0;   // MVM tiles executed
  std::uint64_t macs = 0;        // exact integer MACs represented
  double latency_ns = 0.0;       // serialized conversion slots
  [[nodiscard]] double energy_pj() const { return array.total_energy_pj(); }
  void accumulate(const MacroRunStats& other);
};

class CimMacro {
 public:
  explicit CimMacro(MacroConfig config);

  /// Analog-modeled MVM: y (int32, m entries) ~= W (m x k, int8) * x
  /// (k entries, uint8). k must fit the subarray rows. Accumulates
  /// activity into stats. Noise/quantization follow the circuit model.
  void mvm(const std::int8_t* w, int m, int k, const std::uint8_t* x,
           std::int32_t* y, Rng& rng, MacroRunStats& stats) const;

  /// Bit-exact variant that still pays the modeled energy/latency —
  /// used to isolate cost modeling from accuracy modeling.
  void mvm_exact_cost(const std::int8_t* w, int m, int k,
                      const std::uint8_t* x, std::int32_t* y,
                      MacroRunStats& stats) const;

  /// Analog fast path over one packed tile: bit-identical to mvm() on
  /// the same tile (same y, same stats, same RNG draw order). `x` holds
  /// the tile's k_size activation entries; `y` receives m partial sums.
  /// `packed` must have been built against this macro's geometry.
  void mvm_packed(const PackedRomWeights& packed, int tile_index,
                  const std::uint8_t* x, std::int32_t* y, Rng& rng,
                  MacroRunStats& stats) const;

  /// Exact-cost fast path over one packed tile: bit-identical to
  /// mvm_exact_cost() on the same tile. `w` is the FULL (m x k) weight
  /// matrix the packing was built from (the integer MAC reads the raw
  /// rows in place — no per-call chunk copy); `packed` supplies the tile
  /// boundaries and cost geometry. No RNG is consumed (the legacy exact
  /// path draws none either).
  void mvm_packed_exact_cost(const PackedRomWeights& packed, int tile_index,
                             const std::int8_t* w, const std::uint8_t* x,
                             std::int32_t* y, MacroRunStats& stats) const;

  [[nodiscard]] const MacroConfig& config() const { return config_; }
  [[nodiscard]] const CimArrayModel& array_model() const { return array_; }

  /// True when the analog chain draws no noise (sigma_cell == 0 and ADC
  /// noise_sigma_v == 0): the packed path then runs draw-free.
  [[nodiscard]] bool noise_free() const { return noise_free_; }

  /// The macro's fault model, or nullptr when config().faults.any() is
  /// false (the common case — no model is constructed at all). The
  /// pointer is stable for the macro's lifetime; copies of the macro
  /// share one model, so toggling set_active() reaches every copy.
  [[nodiscard]] FaultModel* fault_model() const { return faults_.get(); }

  /// Latency of a single full bit-serial pass (Table I "inference time"):
  /// input_bits serial cycles at the macro clock.
  [[nodiscard]] double single_pass_latency_ns() const;

 private:
  /// Shared bookkeeping for both mvm variants (scans x for pulses).
  void charge_op_costs(int m, int k, const std::uint8_t* x,
                       MacroRunStats& stats) const;
  /// Same bookkeeping with the wordline pulse count already known (the
  /// packed path derives it from the activation bit-plane popcounts
  /// instead of a second scan of x).
  void charge_op_costs(int m, int k, std::uint64_t pulses,
                       MacroRunStats& stats) const;

  void check_packed_tile(const PackedRomWeights& packed,
                         int tile_index) const;

  MacroConfig config_;
  CimArrayModel array_;
  /// Constructed only when config_.faults.any(); shared so macro copies
  /// see one active flag. Both mvm paths hoist ONE null/active check per
  /// call — the fault-off instruction stream is otherwise unchanged.
  std::shared_ptr<FaultModel> faults_;

  // Analog read chain constants, derived by CimArrayModel (next to the
  // canonical read_count they mirror) and cached here for the inlined
  // packed read path; sqrt of the integer ON-cell count is
  // pre-tabulated (<= 128 rows).
  CimArrayModel::ReadChainConsts read_;
  std::array<double, 129> sqrt_count_{};
  bool noise_free_ = false;
  // Noise-free transfer tables indexed by exact count (<= 128 rows):
  // code * counts_per_code and the matching precharge energy.
  std::array<double, 129> ideal_estimate_{};
  std::array<double, 129> ideal_precharge_pj_{};
};

}  // namespace yoloc
