#include "macro/cim_macro.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "common/check.hpp"

namespace yoloc {

void MacroRunStats::accumulate(const MacroRunStats& other) {
  array.accumulate(other.array);
  macro_ops += other.macro_ops;
  macs += other.macs;
  latency_ns += other.latency_ns;
}

CimMacro::CimMacro(MacroConfig config)
    : config_(std::move(config)),
      array_(config_.bitline, config_.adc, config_.energy,
             config_.geometry.rows_per_activation) {
  YOLOC_CHECK(config_.geometry.rows <= 128,
              "cim macro: row masks support up to 128 rows");
  // The bit-serial paths index fixed RowMask xbits[8] / wbits[8] arrays;
  // wider operands would silently corrupt the stack, so reject them here
  // rather than relying on the (laxer) MacroConfig::validate bound.
  YOLOC_CHECK(config_.geometry.input_bits >= 1 &&
                  config_.geometry.input_bits <= 8,
              "cim macro: input_bits out of [1, 8]");
  YOLOC_CHECK(config_.geometry.weight_bits >= 1 &&
                  config_.geometry.weight_bits <= 8,
              "cim macro: weight_bits out of [1, 8]");
  YOLOC_CHECK(config_.geometry.rows % config_.geometry.rows_per_activation ==
                  0,
              "cim macro: rows must divide evenly into activation groups");

  // Analog read chain constants for the packed path, derived by
  // CimArrayModel next to the canonical read_count(); sqrt_count_
  // pre-tabulates sqrt of the integer ON-cell count.
  read_ = array_.read_chain_consts();
  for (int c = 0; c <= 128; ++c) {
    sqrt_count_[static_cast<std::size_t>(c)] =
        std::sqrt(static_cast<double>(c));
  }

  // Noise-free transfer tables: with both noise sources at zero every
  // draw in read_count is scaled by 0.0, so the estimate collapses to a
  // pure function of the exact count. Tabulating it through the real
  // bitline/ADC models keeps the table bit-identical to the legacy path.
  noise_free_ = read_.sigma_cell == 0.0 && read_.noise_sigma_v == 0.0;
  if (config_.faults.any()) {
    faults_ = std::make_shared<FaultModel>(
        config_.faults, static_cast<std::uint64_t>(config_.kind),
        config_.geometry.rows);
  }
  for (int c = 0; c <= 128; ++c) {
    const double v =
        array_.bitline().voltage_for_count(static_cast<double>(c));
    const int code = array_.adc().quantize_ideal(v);
    ideal_estimate_[static_cast<std::size_t>(c)] =
        code * read_.counts_per_code;
    ideal_precharge_pj_[static_cast<std::size_t>(c)] =
        array_.bitline().precharge_energy_pj(static_cast<double>(c));
  }
}

double CimMacro::single_pass_latency_ns() const {
  return config_.geometry.input_bits * config_.geometry.clock_ns;
}

void CimMacro::charge_op_costs(int m, int k, const std::uint8_t* x,
                               MacroRunStats& stats) const {
  const auto& g = config_.geometry;
  // Wordline pulses: one per active row per input cycle with bit set; the
  // pulse is shared by every column of the subarray, so it is charged
  // once per row-cycle (not per output).
  std::uint64_t pulses = 0;
  for (int t = 0; t < g.input_bits; ++t) {
    for (int i = 0; i < k; ++i) {
      if ((x[i] >> t) & 1u) ++pulses;
    }
  }
  charge_op_costs(m, k, pulses, stats);
}

void CimMacro::charge_op_costs(int m, int k, std::uint64_t pulses,
                               MacroRunStats& stats) const {
  const auto& g = config_.geometry;
  const int groups = (k + g.rows_per_activation - 1) / g.rows_per_activation;

  array_.charge_wl_pulses(pulses, stats.array);

  // Shift-add: one digital accumulation per ADC conversion result.
  const std::uint64_t conversions =
      static_cast<std::uint64_t>(m) * g.weight_bits * g.input_bits * groups;
  array_.charge_shift_adds(conversions, stats.array);

  // Latency: conversions are served by the per-subarray ADC bank.
  const double slots =
      std::ceil(static_cast<double>(conversions) / g.adc_per_subarray);
  stats.latency_ns += slots * config_.adc.t_conv_ns;
  stats.macro_ops += 1;
  stats.macs += static_cast<std::uint64_t>(m) * k;
}

void CimMacro::mvm(const std::int8_t* w, int m, int k, const std::uint8_t* x,
                   std::int32_t* y, Rng& rng, MacroRunStats& stats) const {
  const auto& g = config_.geometry;
  YOLOC_CHECK(k >= 1 && k <= g.rows, "cim macro: k exceeds subarray rows");
  YOLOC_CHECK(m >= 1, "cim macro: m >= 1");

  // Input bit-planes.
  RowMask xbits[8];
  for (int t = 0; t < g.input_bits; ++t) {
    for (int i = 0; i < k; ++i) {
      if ((x[i] >> t) & 1u) xbits[t].set(i);
    }
  }

  // Fault overlay (nullptr in the common fault-off case: the hot loop
  // then only pays this one pointer test per call). Coordinates are
  // local tile coordinates — see macro/fault_model.hpp for why that
  // keeps this path bit-identical to the packed path under faults.
  const FaultModel* faults =
      faults_ != nullptr && faults_->active() ? faults_.get() : nullptr;
  const bool transients = faults != nullptr && faults->has_transients();

  const int groups = (k + g.rows_per_activation - 1) / g.rows_per_activation;
  for (int j = 0; j < m; ++j) {
    // Weight bit-planes for output j: ROM columns store the raw
    // two's-complement bit pattern.
    RowMask wbits[8];
    for (int i = 0; i < k; ++i) {
      const std::uint8_t wv = static_cast<std::uint8_t>(
          w[static_cast<std::size_t>(j) * k + i]);
      for (int b = 0; b < g.weight_bits; ++b) {
        if ((wv >> b) & 1u) wbits[b].set(i);
      }
    }
    if (faults != nullptr) {
      for (int b = 0; b < g.weight_bits; ++b) {
        const FaultModel::PlaneFaults pf = faults->plane(j, b);
        wbits[b].or_with(pf.force_one);
        wbits[b].and_not(pf.force_zero);
      }
    }

    double acc = 0.0;
    for (int b = 0; b < g.weight_bits; ++b) {
      const double bit_weight =
          (b == g.weight_bits - 1) ? -static_cast<double>(1 << b)
                                   : static_cast<double>(1 << b);
      AdcDrift drift;
      if (faults != nullptr) drift = faults->adc_drift(j, b);
      for (int t = 0; t < g.input_bits; ++t) {
        RowMask wb = wbits[b];
        if (transients) wb.xor_with(faults->transient_flips(j, b, t));
        for (int grp = 0; grp < groups; ++grp) {
          const int lo = grp * g.rows_per_activation;
          const int hi = std::min(k, lo + g.rows_per_activation);
          const int exact = wb.count_and(xbits[t], lo, hi);
          // The drift overload multiplies/offsets AFTER the canonical
          // chain; taking the base overload when fault-off keeps that
          // path's instruction stream (and FP rounding) untouched.
          const double est =
              faults != nullptr
                  ? array_.read_count(exact, hi - lo, rng, stats.array,
                                      drift)
                  : array_.read_count(exact, hi - lo, rng, stats.array);
          acc += est * bit_weight * static_cast<double>(1 << t);
        }
      }
    }
    y[j] = static_cast<std::int32_t>(std::llround(acc));
  }
  charge_op_costs(m, k, x, stats);
}

void CimMacro::mvm_exact_cost(const std::int8_t* w, int m, int k,
                              const std::uint8_t* x, std::int32_t* y,
                              MacroRunStats& stats) const {
  const auto& g = config_.geometry;
  YOLOC_CHECK(k >= 1 && k <= g.rows, "cim macro: k exceeds subarray rows");
  for (int j = 0; j < m; ++j) {
    std::int64_t acc = 0;
    for (int i = 0; i < k; ++i) {
      acc += static_cast<std::int64_t>(w[static_cast<std::size_t>(j) * k + i]) *
             x[i];
    }
    y[j] = static_cast<std::int32_t>(acc);
  }
  // Pay the analog read energy at the average activity level without
  // drawing noise samples (cost-only path).
  const int groups = (k + g.rows_per_activation - 1) / g.rows_per_activation;
  const std::uint64_t conversions =
      static_cast<std::uint64_t>(m) * g.weight_bits * g.input_bits * groups;
  stats.array.adc_conversions += conversions;
  stats.array.adc_energy_pj +=
      static_cast<double>(conversions) * config_.adc.energy_pj;
  // Average discharge ~ quarter of the group (random data assumption).
  stats.array.precharge_energy_pj +=
      static_cast<double>(conversions) *
      array_.bitline().precharge_energy_pj(0.25 * g.rows_per_activation);
  charge_op_costs(m, k, x, stats);
}

void CimMacro::check_packed_tile(const PackedRomWeights& packed,
                                 int tile_index) const {
  const auto& g = config_.geometry;
  YOLOC_CHECK(packed.rows() == g.rows &&
                  packed.weight_bits() == g.weight_bits &&
                  packed.input_bits() == g.input_bits &&
                  packed.rows_per_activation() == g.rows_per_activation,
              "cim macro: packed weights built for a different geometry");
  YOLOC_CHECK(tile_index >= 0 && tile_index < packed.tile_count(),
              "cim macro: packed tile index out of range");
}

void CimMacro::mvm_packed(const PackedRomWeights& packed, int tile_index,
                          const std::uint8_t* x, std::int32_t* y, Rng& rng,
                          MacroRunStats& stats) const {
  check_packed_tile(packed, tile_index);
  YOLOC_CHECK(packed.has_planes(),
              "cim macro: analog packed path needs weight bit-planes "
              "(packing was built boundaries-only for exact-cost)");
  const PackedRomWeights::Tile& tile = packed.tile(tile_index);
  const int m = packed.m();
  const int k = tile.k_size;
  const int groups = tile.groups;
  const int weight_bits = packed.weight_bits();
  const int input_bits = packed.input_bits();

  // Activation bit-planes: ONE scan of x builds both the planes and the
  // wordline pulse count (the legacy path scans x a second time inside
  // charge_op_costs).
  RowMask xbits[8];
  for (int i = 0; i < k; ++i) {
    const unsigned v = x[i];
    const int lane = i >> 6;
    const int shift = i & 63;
    for (int t = 0; t < input_bits; ++t) {
      xbits[t].lane[lane] |= static_cast<std::uint64_t>((v >> t) & 1u)
                             << shift;
    }
  }
  std::uint64_t pulses = 0;
  for (int t = 0; t < input_bits; ++t) {
    pulses += static_cast<std::uint64_t>(xbits[t].count());
  }

  const double* bcw = packed.bit_cycle_weight();
  const RowMask* gmasks = tile.group_masks.data();
  const CimArrayModel::ReadChainConsts& rc = read_;

  // Fault overlay — same local-coordinate pattern as the legacy path
  // (the packed tile's rows ARE the legacy chunk's rows), so outputs and
  // stats stay bit-identical between the two paths under faults.
  const FaultModel* faults =
      faults_ != nullptr && faults_->active() ? faults_.get() : nullptr;
  const bool transients = faults != nullptr && faults->has_transients();

  // Energy accumulators chained from the current stats values so the
  // add sequence (and therefore the floating-point rounding) is
  // identical to the legacy per-read += updates.
  std::uint64_t conversions = stats.array.adc_conversions;
  double adc_energy = stats.array.adc_energy_pj;
  double precharge_energy = stats.array.precharge_energy_pj;

  if (noise_free_) {
    // Draw-free fast path: every noise term is scaled by 0.0 in the
    // legacy chain, so the ADC estimate is a pure table lookup on the
    // exact count. (The session RNG is intentionally not advanced.)
    for (int j = 0; j < m; ++j) {
      const RowMask* wrow =
          tile.wbits.data() + static_cast<std::size_t>(j) * weight_bits;
      double acc = 0.0;
      for (int b = 0; b < weight_bits; ++b) {
        RowMask wb = wrow[b];
        AdcDrift drift;
        if (faults != nullptr) {
          const FaultModel::PlaneFaults pf = faults->plane(j, b);
          wb.or_with(pf.force_one);
          wb.and_not(pf.force_zero);
          drift = faults->adc_drift(j, b);
        }
        for (int t = 0; t < input_bits; ++t) {
          RowMask wbt = wb;
          if (transients) wbt.xor_with(faults->transient_flips(j, b, t));
          const RowMask xt = xbits[t];
          const double cycle_weight =
              bcw[static_cast<std::size_t>(b) * input_bits + t];
          for (int grp = 0; grp < groups; ++grp) {
            const int exact = wbt.count_and3(xt, gmasks[grp]);
            double est = ideal_estimate_[static_cast<std::size_t>(exact)];
            if (faults != nullptr) {
              est = est * drift.gain + drift.offset_counts;
            }
            acc += est * cycle_weight;
            ++conversions;
            adc_energy += rc.adc_energy_pj;
            precharge_energy +=
                ideal_precharge_pj_[static_cast<std::size_t>(exact)];
          }
        }
      }
      y[j] = static_cast<std::int32_t>(std::llround(acc));
    }
  } else {
    for (int j = 0; j < m; ++j) {
      const RowMask* wrow =
          tile.wbits.data() + static_cast<std::size_t>(j) * weight_bits;
      double acc = 0.0;
      for (int b = 0; b < weight_bits; ++b) {
        RowMask wb = wrow[b];
        AdcDrift drift;
        if (faults != nullptr) {
          const FaultModel::PlaneFaults pf = faults->plane(j, b);
          wb.or_with(pf.force_one);
          wb.and_not(pf.force_zero);
          drift = faults->adc_drift(j, b);
        }
        for (int t = 0; t < input_bits; ++t) {
          RowMask wbt = wb;
          if (transients) wbt.xor_with(faults->transient_flips(j, b, t));
          const RowMask xt = xbits[t];
          const double cycle_weight =
              bcw[static_cast<std::size_t>(b) * input_bits + t];
          for (int grp = 0; grp < groups; ++grp) {
            const int exact = wbt.count_and3(xt, gmasks[grp]);
            // Inlined CimArrayModel::read_count — identical operations
            // in identical order, same RNG draws.
            double effective = exact;
            if (rc.sigma_cell > 0.0 && exact > 0) {
              effective += rng.normal(
                  0.0, rc.sigma_cell *
                           sqrt_count_[static_cast<std::size_t>(exact)]);
              if (effective < 0.0) effective = 0.0;
            }
            const double v =
                std::max(rc.v_precharge - effective * rc.delta_v, rc.v_floor);
            const double noisy = v + rng.normal(0.0, rc.noise_sigma_v);
            const double clamped = std::clamp(noisy, rc.v_lo, rc.v_hi);
            int code =
                static_cast<int>(std::lround((rc.v_hi - clamped) / rc.lsb));
            code = std::clamp(code, 0, rc.levels - 1);
            double est = code * rc.counts_per_code;
            if (faults != nullptr) {
              est = est * drift.gain + drift.offset_counts;
            }
            acc += est * cycle_weight;
            ++conversions;
            adc_energy += rc.adc_energy_pj;
            const double dv =
                std::min(effective * rc.delta_v, rc.bl_range);
            precharge_energy += rc.cv * dv * 1e-3;
          }
        }
      }
      y[j] = static_cast<std::int32_t>(std::llround(acc));
    }
  }

  stats.array.adc_conversions = conversions;
  stats.array.adc_energy_pj = adc_energy;
  stats.array.precharge_energy_pj = precharge_energy;
  charge_op_costs(m, k, pulses, stats);
}

void CimMacro::mvm_packed_exact_cost(const PackedRomWeights& packed,
                                     int tile_index, const std::int8_t* w,
                                     const std::uint8_t* x, std::int32_t* y,
                                     MacroRunStats& stats) const {
  check_packed_tile(packed, tile_index);
  const auto& g = config_.geometry;
  const PackedRomWeights::Tile& tile = packed.tile(tile_index);
  const int m = packed.m();
  const int k = tile.k_size;
  const int full_k = packed.k();

  // The exact product stays a plain integer MAC over the raw weight rows
  // (the compiler vectorizes it far better than a bit-plane
  // reconstruction) — the fast-path win here is skipping the per-call
  // weight chunk copy and replacing charge_op_costs' branchy second scan
  // of x with a byte-popcount over the input_bits window.
  for (int j = 0; j < m; ++j) {
    const std::int8_t* wrow =
        w + static_cast<std::size_t>(j) * full_k + tile.k0;
    std::int64_t acc = 0;
    for (int i = 0; i < k; ++i) {
      acc += static_cast<std::int64_t>(wrow[i]) * x[i];
    }
    y[j] = static_cast<std::int32_t>(acc);
  }

  // Wordline pulses = set bits of x inside the input_bits window. A
  // byte-replicated window mask turns this into 8-bytes-per-popcount:
  // sum_i popcount(x[i] & win) == sum_words popcount(word & win*0x0101..).
  const std::uint64_t pulse_window =
      ((1ull << g.input_bits) - 1ull) * 0x0101010101010101ull;
  std::uint64_t pulses = 0;
  int i = 0;
  for (; i + 8 <= k; i += 8) {
    std::uint64_t word;
    std::memcpy(&word, x + i, sizeof(word));
    pulses += static_cast<unsigned>(std::popcount(word & pulse_window));
  }
  for (; i < k; ++i) {
    pulses += static_cast<unsigned>(
        std::popcount(x[i] & static_cast<unsigned>(pulse_window & 0xFFu)));
  }

  const int groups = tile.groups;
  const std::uint64_t conversions =
      static_cast<std::uint64_t>(m) * g.weight_bits * g.input_bits * groups;
  stats.array.adc_conversions += conversions;
  stats.array.adc_energy_pj +=
      static_cast<double>(conversions) * config_.adc.energy_pj;
  stats.array.precharge_energy_pj +=
      static_cast<double>(conversions) *
      array_.bitline().precharge_energy_pj(0.25 * g.rows_per_activation);
  charge_op_costs(m, k, pulses, stats);
}

}  // namespace yoloc
