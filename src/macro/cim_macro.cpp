#include "macro/cim_macro.hpp"

#include <bit>
#include <cmath>

#include "common/check.hpp"

namespace yoloc {
namespace {

/// 128 rows fit two 64-bit lanes; mask type for row bitsets.
struct RowMask {
  std::uint64_t lane[2] = {0, 0};
  void set(int i) { lane[i >> 6] |= (1ull << (i & 63)); }
  [[nodiscard]] int count_and(const RowMask& other, int lo, int hi) const {
    // Popcount of (this & other) over bit range [lo, hi).
    int total = 0;
    for (int l = 0; l < 2; ++l) {
      const int base = l * 64;
      const int a = std::max(lo - base, 0);
      const int b = std::min(hi - base, 64);
      if (a >= b) continue;
      std::uint64_t m = lane[l] & other.lane[l];
      if (a > 0) m &= ~0ull << a;
      if (b < 64) m &= (b == 64) ? ~0ull : ((1ull << b) - 1);
      total += std::popcount(m);
    }
    return total;
  }
};

}  // namespace

void MacroRunStats::accumulate(const MacroRunStats& other) {
  array.accumulate(other.array);
  macro_ops += other.macro_ops;
  macs += other.macs;
  latency_ns += other.latency_ns;
}

CimMacro::CimMacro(MacroConfig config)
    : config_(std::move(config)),
      array_(config_.bitline, config_.adc, config_.energy,
             config_.geometry.rows_per_activation) {
  YOLOC_CHECK(config_.geometry.rows <= 128,
              "cim macro: row masks support up to 128 rows");
  YOLOC_CHECK(config_.geometry.rows % config_.geometry.rows_per_activation ==
                  0,
              "cim macro: rows must divide evenly into activation groups");
}

double CimMacro::single_pass_latency_ns() const {
  return config_.geometry.input_bits * config_.geometry.clock_ns;
}

void CimMacro::charge_op_costs(int m, int k, const std::uint8_t* x,
                               MacroRunStats& stats) const {
  const auto& g = config_.geometry;
  const int groups = (k + g.rows_per_activation - 1) / g.rows_per_activation;

  // Wordline pulses: one per active row per input cycle with bit set; the
  // pulse is shared by every column of the subarray, so it is charged
  // once per row-cycle (not per output).
  std::uint64_t pulses = 0;
  for (int t = 0; t < g.input_bits; ++t) {
    for (int i = 0; i < k; ++i) {
      if ((x[i] >> t) & 1u) ++pulses;
    }
  }
  array_.charge_wl_pulses(pulses, stats.array);

  // Shift-add: one digital accumulation per ADC conversion result.
  const std::uint64_t conversions =
      static_cast<std::uint64_t>(m) * g.weight_bits * g.input_bits * groups;
  array_.charge_shift_adds(conversions, stats.array);

  // Latency: conversions are served by the per-subarray ADC bank.
  const double slots =
      std::ceil(static_cast<double>(conversions) / g.adc_per_subarray);
  stats.latency_ns += slots * config_.adc.t_conv_ns;
  stats.macro_ops += 1;
  stats.macs += static_cast<std::uint64_t>(m) * k;
}

void CimMacro::mvm(const std::int8_t* w, int m, int k, const std::uint8_t* x,
                   std::int32_t* y, Rng& rng, MacroRunStats& stats) const {
  const auto& g = config_.geometry;
  YOLOC_CHECK(k >= 1 && k <= g.rows, "cim macro: k exceeds subarray rows");
  YOLOC_CHECK(m >= 1, "cim macro: m >= 1");

  // Input bit-planes.
  RowMask xbits[8];
  for (int t = 0; t < g.input_bits; ++t) {
    for (int i = 0; i < k; ++i) {
      if ((x[i] >> t) & 1u) xbits[t].set(i);
    }
  }

  const int groups = (k + g.rows_per_activation - 1) / g.rows_per_activation;
  for (int j = 0; j < m; ++j) {
    // Weight bit-planes for output j: ROM columns store the raw
    // two's-complement bit pattern.
    RowMask wbits[8];
    for (int i = 0; i < k; ++i) {
      const std::uint8_t wv = static_cast<std::uint8_t>(
          w[static_cast<std::size_t>(j) * k + i]);
      for (int b = 0; b < g.weight_bits; ++b) {
        if ((wv >> b) & 1u) wbits[b].set(i);
      }
    }

    double acc = 0.0;
    for (int b = 0; b < g.weight_bits; ++b) {
      const double bit_weight =
          (b == g.weight_bits - 1) ? -static_cast<double>(1 << b)
                                   : static_cast<double>(1 << b);
      for (int t = 0; t < g.input_bits; ++t) {
        for (int grp = 0; grp < groups; ++grp) {
          const int lo = grp * g.rows_per_activation;
          const int hi = std::min(k, lo + g.rows_per_activation);
          const int exact = wbits[b].count_and(xbits[t], lo, hi);
          const double est =
              array_.read_count(exact, hi - lo, rng, stats.array);
          acc += est * bit_weight * static_cast<double>(1 << t);
        }
      }
    }
    y[j] = static_cast<std::int32_t>(std::llround(acc));
  }
  charge_op_costs(m, k, x, stats);
}

void CimMacro::mvm_exact_cost(const std::int8_t* w, int m, int k,
                              const std::uint8_t* x, std::int32_t* y,
                              MacroRunStats& stats) const {
  const auto& g = config_.geometry;
  YOLOC_CHECK(k >= 1 && k <= g.rows, "cim macro: k exceeds subarray rows");
  for (int j = 0; j < m; ++j) {
    std::int64_t acc = 0;
    for (int i = 0; i < k; ++i) {
      acc += static_cast<std::int64_t>(w[static_cast<std::size_t>(j) * k + i]) *
             x[i];
    }
    y[j] = static_cast<std::int32_t>(acc);
  }
  // Pay the analog read energy at the average activity level without
  // drawing noise samples (cost-only path).
  const int groups = (k + g.rows_per_activation - 1) / g.rows_per_activation;
  const std::uint64_t conversions =
      static_cast<std::uint64_t>(m) * g.weight_bits * g.input_bits * groups;
  stats.array.adc_conversions += conversions;
  stats.array.adc_energy_pj +=
      static_cast<double>(conversions) * config_.adc.energy_pj;
  // Average discharge ~ quarter of the group (random data assumption).
  stats.array.precharge_energy_pj +=
      static_cast<double>(conversions) *
      array_.bitline().precharge_energy_pj(0.25 * g.rows_per_activation);
  charge_op_costs(m, k, x, stats);
}

}  // namespace yoloc
