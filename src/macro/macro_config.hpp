#pragma once
// Macro-level configuration for the ROM-CiM macro (paper Sec. 3.1,
// Table I) and the SRAM-CiM baseline macro (ISSCC'21 [3], as cited by the
// paper).
//
// A macro is a set of identical subarrays (rows x cols cells each)
// sharing input drivers, column ADCs and the digital shift-add. Weights
// are bit-sliced: one 8-bit weight occupies `weight_bits` adjacent
// columns of one row. Inputs arrive bit-serially over `input_bits`
// cycles. Rows are activated in groups of `rows_per_activation`; the ADC
// full-scale tracks the group discharge range (see circuit/cim_array.hpp
// for the accuracy implications of large groups).

#include <cstdint>

#include "circuit/adc.hpp"
#include "circuit/bitline.hpp"
#include "circuit/cim_array.hpp"

namespace yoloc {

enum class MacroKind { kRom, kSram };

/// Deterministic fault-injection knobs for one macro (see
/// macro/fault_model.hpp for the mechanics). All-zero rates (the
/// default) mean NO fault model is constructed at all — the fault-off
/// MVM paths stay bit-identical to a build without this struct.
///
/// Faults live in the physical subarray the engine time-multiplexes
/// reduction tiles onto, so coordinates are LOCAL tile coordinates
/// (output column j, weight bit b, row i, input cycle t) — the same
/// cell pattern afflicts every k-tile, every call, every replay.
struct FaultModelConfig {
  /// Seed of the fault pattern. Two macros with the same seed, kind and
  /// rates carry identical fault maps; changing the seed redraws them.
  std::uint64_t seed = 0;
  /// Per-cell probability that a ROM bit-plane cell reads as 0 / as 1
  /// regardless of the stored weight bit (stuck-at faults).
  double stuck_at_zero_rate = 0.0;
  double stuck_at_one_rate = 0.0;
  /// Per-(cell, input-cycle) probability of a residual bit flip — the
  /// SRAM transient model. The pattern is a fixed function of
  /// (column, bit, cycle, row), so replays stay bit-exact.
  double transient_flip_rate = 0.0;
  /// Per-column ADC transfer drift: offset uniform in +-offset counts,
  /// gain uniform in 1 +- gain (relative). Drawn once per (j, b) column.
  double adc_offset_max = 0.0;
  double adc_gain_max = 0.0;
  /// Whether the faults apply from construction. Runtime-togglable via
  /// FaultModel::set_active() (chaos drills flip it mid-traffic).
  bool start_active = true;

  /// True when any knob would actually perturb a read — the gate for
  /// constructing a FaultModel at all.
  [[nodiscard]] bool any() const {
    return stuck_at_zero_rate > 0.0 || stuck_at_one_rate > 0.0 ||
           transient_flip_rate > 0.0 || adc_offset_max > 0.0 ||
           adc_gain_max > 0.0;
  }

  bool operator==(const FaultModelConfig&) const = default;
};

struct MacroGeometry {
  int rows = 128;
  int cols = 256;
  int subarrays = 36;        // 36 x 32 kb ~= 1.18 Mb (paper: "1.2 Mb")
  int adc_per_subarray = 16; // column-sharing ADCs (16 columns per ADC)
  int adc_bits = 5;
  int weight_bits = 8;
  int input_bits = 8;
  int rows_per_activation = 32;
  double clock_ns = 1.1125;  // 8 input cycles -> 8.9 ns (Table I)

  [[nodiscard]] double subarray_bits() const {
    return static_cast<double>(rows) * cols;
  }
  [[nodiscard]] double capacity_bits() const {
    return subarray_bits() * subarrays;
  }
  /// Weights stored per subarray row (cols / weight_bits).
  [[nodiscard]] int weights_per_row() const { return cols / weight_bits; }

  bool operator==(const MacroGeometry&) const = default;
};

struct MacroAreaParams {
  double cell_area_um2 = 0.014;
  /// Peripheral area per subarray [um^2]: ADCs, drivers, shift-add, IO.
  double adc_area_um2 = 310.0;
  double driver_area_per_row_um2 = 4.0;
  double shift_add_area_um2 = 450.0;
  /// Fixed macro-level overhead (controller, decoder, R/W IO) [um^2].
  double macro_overhead_um2 = 16000.0;

  bool operator==(const MacroAreaParams&) const = default;
};

struct MacroConfig {
  MacroKind kind = MacroKind::kRom;
  MacroGeometry geometry;
  BitlineParams bitline;
  AdcParams adc;
  ArrayEnergyParams energy;
  MacroAreaParams area;
  /// SRAM-only: cost of reloading weights (ROM cannot be written).
  double write_energy_pj_per_bit = 0.0;
  double write_bandwidth_bits_per_ns = 0.0;
  /// Leakage of the retained array [uW] (ROM: 0, non-volatile).
  double standby_power_uw = 0.0;
  /// Deterministic fault injection (all-zero = no model constructed).
  FaultModelConfig faults;

  [[nodiscard]] bool writable() const { return kind == MacroKind::kSram; }

  /// Field-wise equality — two configs that compare equal produce
  /// bit-identical macro behaviour (geometry, analog params, costs).
  bool operator==(const MacroConfig&) const = default;

  /// Fail-fast sanity checks on every field the functional and cost
  /// models consume. Called when a DeploymentPlan is built AND when a
  /// serialized plan is loaded, so a corrupt or hand-edited artifact
  /// cannot smuggle in unphysical hardware parameters.
  void validate() const;

  /// Total macro area [mm^2] from the component model.
  [[nodiscard]] double area_mm2() const;
  /// Storage density [Mb/mm^2].
  [[nodiscard]] double density_mb_per_mm2() const;
  /// Area fractions {array, adc, driver+shiftadd, overhead} summing to 1.
  struct AreaBreakdown {
    double array = 0.0;
    double adc = 0.0;
    double periphery = 0.0;  // drivers + shift-add
    double overhead = 0.0;   // controller / IO / decode
  };
  [[nodiscard]] AreaBreakdown area_breakdown() const;
};

/// ROM-CiM macro calibrated to Table I: 1.2 Mb, ~0.24 mm^2, 5 Mb/mm^2,
/// 0.014 um^2/cell, 8b x 8b, 8.9 ns, 28.8 GOPS, ~11.5 TOPS/W.
MacroConfig default_rom_macro();

/// SRAM-CiM macro modeled after the cited ISSCC'21 baseline: 384 kb, 6T
/// cells at 0.259 um^2 (18.5x the ROM cell), writable, with a heavier
/// read/write interface and higher cell mismatch.
MacroConfig default_sram_macro();

}  // namespace yoloc
