#include "macro/fault_model.hpp"

#include "common/check.hpp"

namespace yoloc {

namespace {

// Fault stream ids: distinct fault classes draw from disjoint hash
// streams so e.g. raising the stuck-at-one rate never moves the
// stuck-at-zero pattern.
constexpr std::uint64_t kStreamStuckZero = 1;
constexpr std::uint64_t kStreamStuckOne = 2;
constexpr std::uint64_t kStreamFlip = 3;
constexpr std::uint64_t kStreamAdcOffset = 4;
constexpr std::uint64_t kStreamAdcGain = 5;

std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Fold `v` into hash state `h` (splitmix as the mixing function).
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  return splitmix(h ^ v);
}

/// Uniform double in [0, 1) from a hash value (53 mantissa bits).
double hash01(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultModel::FaultModel(const FaultModelConfig& config, std::uint64_t salt,
                       int rows)
    : config_(config), salt_(salt), rows_(rows),
      active_(config.start_active) {
  YOLOC_CHECK(rows_ >= 1 && rows_ <= 128,
              "fault model: rows out of [1, 128]");
}

RowMask FaultModel::bernoulli_mask(std::uint64_t stream, int j, int b, int t,
                                   double rate) const {
  RowMask mask;
  if (rate <= 0.0) return mask;
  std::uint64_t h = mix(config_.seed, salt_);
  h = mix(h, stream);
  h = mix(h, static_cast<std::uint64_t>(j));
  h = mix(h, static_cast<std::uint64_t>(b));
  h = mix(h, static_cast<std::uint64_t>(t));
  for (int i = 0; i < rows_; ++i) {
    if (hash01(mix(h, static_cast<std::uint64_t>(i))) < rate) mask.set(i);
  }
  return mask;
}

FaultModel::PlaneFaults FaultModel::plane(int j, int b) const {
  PlaneFaults f;
  f.force_one = bernoulli_mask(kStreamStuckOne, j, b, 0,
                               config_.stuck_at_one_rate);
  f.force_zero = bernoulli_mask(kStreamStuckZero, j, b, 0,
                                config_.stuck_at_zero_rate);
  return f;
}

RowMask FaultModel::transient_flips(int j, int b, int t) const {
  return bernoulli_mask(kStreamFlip, j, b, t, config_.transient_flip_rate);
}

AdcDrift FaultModel::adc_drift(int j, int b) const {
  AdcDrift drift;
  if (config_.adc_gain_max > 0.0) {
    std::uint64_t h = mix(config_.seed, salt_);
    h = mix(h, kStreamAdcGain);
    h = mix(h, static_cast<std::uint64_t>(j));
    h = mix(h, static_cast<std::uint64_t>(b));
    drift.gain = 1.0 + (2.0 * hash01(h) - 1.0) * config_.adc_gain_max;
  }
  if (config_.adc_offset_max > 0.0) {
    std::uint64_t h = mix(config_.seed, salt_);
    h = mix(h, kStreamAdcOffset);
    h = mix(h, static_cast<std::uint64_t>(j));
    h = mix(h, static_cast<std::uint64_t>(b));
    drift.offset_counts = (2.0 * hash01(h) - 1.0) * config_.adc_offset_max;
  }
  return drift;
}

std::uint64_t FaultModel::stuck_cell_count(int m_cols, int weight_bits) const {
  std::uint64_t total = 0;
  for (int j = 0; j < m_cols; ++j) {
    for (int b = 0; b < weight_bits; ++b) {
      const PlaneFaults f = plane(j, b);
      // force_zero wins on overlap, so count the union, not the sum.
      RowMask u = f.force_one;
      u.or_with(f.force_zero);
      total += static_cast<std::uint64_t>(u.count());
    }
  }
  return total;
}

}  // namespace yoloc
